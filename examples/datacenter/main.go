// Datacenter: a diurnal arrival pattern on an 8-processor cluster —
// the scenario from the paper's introduction. PD decides online which
// customer jobs to run and how fast; we compare its cost against the
// certified lower bound and look at how the energy/lost-value split
// moves across value regimes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	const m, n = 8, 200
	pm := power.New(3) // cube-root rule: CMOS-like power curve

	fmt.Println("γ = value scale (customer payment vs energy cost of a solo run)")
	fmt.Printf("%6s %10s %10s %10s %8s %9s\n",
		"γ", "energy", "lost", "cost", "rejected", "ratio ≤")
	for _, gamma := range []float64{0.2, 0.5, 1, 2, 5} {
		in := workload.Diurnal(workload.Config{
			N: n, M: m, Alpha: pm.Alpha, Seed: 2026, Horizon: 24,
			ValueScale: gamma, ValueSigma: 0.6,
		})
		res, err := core.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.Verify(in, res.Schedule); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f %10.2f %10.2f %10.2f %8d %9.3f\n",
			gamma, res.Energy, res.LostValue, res.Cost,
			len(res.Schedule.Rejected), res.CertifiedRatio())
	}
	fmt.Printf("\nTheorem 3 bound: α^α = %.0f — the certified ratios above stay far below it.\n",
		pm.CompetitiveBound())
	fmt.Println("Low γ: the cluster sheds most work (cost ≈ lost value).")
	fmt.Println("High γ: everything runs (cost ≈ energy), speeds rise with load.")
}
