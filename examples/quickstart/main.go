// Quickstart: schedule a handful of valuable jobs on two
// speed-scalable processors with the paper's PD algorithm, observe the
// accept/reject decisions online, and check the α^α certificate.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
)

func main() {
	const m = 2
	pm := power.New(2) // P(s) = s², the textbook setting

	// Jobs arrive online: (release, deadline, workload, value).
	arrivals := []job.Job{
		{ID: 0, Release: 0.0, Deadline: 4.0, Work: 2.0, Value: 9.0},
		{ID: 1, Release: 0.5, Deadline: 2.0, Work: 1.5, Value: 6.0},
		{ID: 2, Release: 1.0, Deadline: 2.5, Work: 3.0, Value: 1.2}, // steep: likely rejected
		{ID: 3, Release: 2.0, Deadline: 5.0, Work: 1.0, Value: 4.0},
		{ID: 4, Release: 2.5, Deadline: 3.5, Work: 2.0, Value: 8.0},
	}

	scheduler := core.New(m, pm)
	fmt.Println("online decisions:")
	for _, j := range arrivals {
		dec, err := scheduler.Arrive(j)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "accept"
		if !dec.Accepted {
			verdict = "REJECT"
		}
		fmt.Printf("  t=%.1f job %d (w=%.1f, v=%.1f): %s  planned speed %.3f, λ=%.3f\n",
			j.Release, j.ID, j.Work, j.Value, verdict, dec.Speed, dec.Lambda)
	}

	schedule := scheduler.Schedule()
	in := &job.Instance{M: m, Alpha: pm.Alpha, Jobs: arrivals}
	if err := sched.Verify(in, schedule); err != nil {
		log.Fatal("schedule verification failed: ", err)
	}

	fmt.Printf("\nenergy        %.4f\nlost value    %.4f\ncost          %.4f\n",
		scheduler.Energy(), scheduler.LostValue(), scheduler.Cost())
	dual := scheduler.DualValue()
	fmt.Printf("dual bound    %.4f (≤ cost of ANY schedule)\n", dual)
	fmt.Printf("ratio ≤       %.4f (Theorem 3 guarantees ≤ α^α = %.0f)\n",
		scheduler.Cost()/dual, pm.CompetitiveBound())
}
