// Custompolicy: plug your own scheduler into the replay engine and
// compare it with PD on the same trace. The example policy is a naive
// greedy heuristic — accept a job iff running it alone at its density
// costs less than its value, then run everything at per-interval
// average rates on processor 0 — and the comparison shows how much the
// primal-dual machinery buys over exactly this kind of first instinct.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

// naive is an engine.Policy: solo-energy admission + AVR-style
// execution on a single processor.
type naive struct {
	pm       power.Model
	accepted []job.Job
	rejected []int
}

func (n *naive) Name() string { return "naive-greedy" }

func (n *naive) Arrive(j job.Job) error {
	solo := j.Span() * n.pm.Power(j.Density())
	if solo <= j.Value {
		n.accepted = append(n.accepted, j)
	} else {
		n.rejected = append(n.rejected, j.ID)
	}
	return nil
}

func (n *naive) Close() (*sched.Schedule, error) {
	out := &sched.Schedule{M: 1, Rejected: n.rejected}
	bset := map[float64]struct{}{}
	for _, j := range n.accepted {
		bset[j.Release] = struct{}{}
		bset[j.Deadline] = struct{}{}
	}
	bounds := make([]float64, 0, len(bset))
	for t := range bset {
		bounds = append(bounds, t)
	}
	sort.Float64s(bounds)
	for k := 0; k+1 < len(bounds); k++ {
		t0, t1 := bounds[k], bounds[k+1]
		var total float64
		var active []job.Job
		for _, j := range n.accepted {
			if j.Release <= t0 && j.Deadline >= t1 {
				active = append(active, j)
				total += j.Density()
			}
		}
		t := t0
		for _, j := range active {
			share := (t1 - t0) * j.Density() / total
			out.Segments = append(out.Segments, sched.Segment{
				Proc: 0, Job: j.ID, T0: t, T1: t + share, Speed: total,
			})
			t += share
		}
	}
	return out, nil
}

func main() {
	// Registering the policy by name makes it a first-class citizen of
	// the engine: it is constructible via engine.New(Spec), raceable
	// via RaceSpecs, listed by `profsched -list`-style tables, and the
	// registry refuses specs outside its declared capabilities.
	err := engine.Register(engine.Registration{
		Name:    "naive-greedy",
		Summary: "solo-energy admission + average-rate execution",
		Caps:    engine.Caps{MinM: 1, MaxM: 1, Profit: true, Online: true},
		Build: func(spec engine.Spec) (engine.Policy, error) {
			return &naive{pm: spec.PowerModel()}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	in := workload.Poisson(workload.Config{N: 60, M: 1, Alpha: 2, Seed: 99, ValueScale: 1.5})
	results, err := engine.RaceSpecs(in,
		engine.Spec{Name: "naive-greedy", M: 1, Alpha: 2},
		engine.Spec{Name: "pd", M: 1, Alpha: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %10s %10s %10s %9s\n", "policy", "energy", "lost", "cost", "rejected")
	for _, res := range results {
		fmt.Printf("%-14s %10.3f %10.3f %10.3f %9d\n",
			res.Policy, res.Energy, res.LostValue, res.Cost, res.Rejected)
	}
	fmt.Println("\nBoth schedules pass the same independent verifier; PD's primal-dual")
	fmt.Println("water-filling beats solo-energy admission + average-rate execution.")
}
