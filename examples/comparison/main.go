// Comparison: run the whole single-processor algorithm zoo — PD, CLL,
// OA, AVR, BKP, qOA and the offline optimum — on one workload and
// compare costs. The classical algorithms must finish everything, so
// the workload uses finite but generous values for PD/CLL and the same
// jobs with infinite values for the rest.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/cll"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
	"repro/internal/yds"
)

func main() {
	pm := power.New(2)
	in := workload.Poisson(workload.Config{
		N: 40, M: 1, Alpha: pm.Alpha, Seed: 7, ValueScale: 3,
	})
	finishAll := in.Clone()
	for i := range finishAll.Jobs {
		finishAll.Jobs[i].Value = math.Inf(1)
	}

	optSched, err := yds.YDS(finishAll)
	if err != nil {
		log.Fatal(err)
	}
	optE := optSched.Energy(pm)

	fmt.Printf("%-22s %10s %10s %10s %8s\n", "algorithm", "energy", "lost", "cost", "vs OPT")
	report := func(name string, s *sched.Schedule, lost float64) {
		if err := sched.Verify(in, s); err != nil {
			log.Fatalf("%s failed verification: %v", name, err)
		}
		e := s.Energy(pm)
		fmt.Printf("%-22s %10.3f %10.3f %10.3f %8.3f\n", name, e, lost, e+lost, (e+lost)/optE)
	}

	pdRes, err := core.Run(in)
	if err != nil {
		log.Fatal(err)
	}
	report("PD (values)", pdRes.Schedule, pdRes.LostValue)

	cllRes, err := cll.Run(in, pm)
	if err != nil {
		log.Fatal(err)
	}
	report("CLL (values)", cllRes.Schedule, cllRes.LostValue)

	for _, alg := range []struct {
		name string
		run  func() (*sched.Schedule, error)
	}{
		{"OA (finish all)", func() (*sched.Schedule, error) { return yds.OA(finishAll) }},
		{"AVR (finish all)", func() (*sched.Schedule, error) { return yds.AVR(finishAll) }},
		{"BKP (finish all)", func() (*sched.Schedule, error) { return yds.BKP(finishAll) }},
		{"qOA (finish all)", func() (*sched.Schedule, error) { return yds.QOA(finishAll, pm) }},
	} {
		s, err := alg.run()
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.Verify(finishAll, s); err != nil {
			log.Fatalf("%s: %v", alg.name, err)
		}
		e := s.Energy(pm)
		fmt.Printf("%-22s %10.3f %10.3f %10.3f %8.3f\n", alg.name, e, 0.0, e, e/optE)
	}
	fmt.Printf("%-22s %10.3f %10.3f %10.3f %8.3f\n", "YDS (offline OPT)", optE, 0.0, optE, 1.0)
	fmt.Println("\nPD and CLL may shed low-value jobs, so their cost can undercut the finish-all optimum.")
}
