// Adversarial: replay the lower-bound instance from Theorem 3 — the
// workload that forces PD (and OA) towards the α^α barrier — and watch
// the measured ratio climb with n while never crossing the bound.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/workload"
	"repro/internal/yds"
)

func main() {
	alpha := 2.0
	pm := power.New(alpha)
	bound := pm.CompetitiveBound()

	fmt.Printf("adversarial instance (α=%.0f): job j arrives at j-1, work (n-j+1)^{-1/α}, deadline n\n\n", alpha)
	fmt.Printf("%6s %12s %12s %8s %12s\n", "n", "cost(PD)", "cost(OPT)", "ratio", "of bound")
	for _, n := range []int{5, 10, 20, 40, 80, 160, 320} {
		in := workload.LowerBound(n, alpha)
		res, err := core.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		optSched, err := yds.YDS(in)
		if err != nil {
			log.Fatal(err)
		}
		optE := optSched.Energy(pm)
		ratio := res.Cost / optE
		fmt.Printf("%6d %12.4f %12.4f %8.4f %11.1f%%\n",
			n, res.Cost, optE, ratio, 100*ratio/bound)
	}
	fmt.Printf("\nThe ratio approaches α^α = %.0f only as n → ∞ (Theorem 3: the bound is tight).\n", bound)
}
