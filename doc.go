// Package repro is a from-scratch Go reproduction of
//
//	Kling & Pietrzyk, "Profitable Scheduling on Multiple Speed-Scalable
//	Processors", SPAA 2013 (arXiv:1209.3868).
//
// The paper's contribution — the online greedy primal-dual algorithm PD
// with a tight α^α competitive ratio for profit-oriented scheduling on
// m speed-scalable processors — lives in internal/core. Everything it
// depends on is built here as well: Chen et al.'s per-interval optimal
// multiprocessor assignment (internal/chen), the atomic-interval
// machinery (internal/interval), the dual certificate (internal/dual),
// the classical single-processor algorithms YDS/OA/AVR/BKP/qOA
// (internal/yds), the Chan-Lam-Li profitable baseline (internal/cll),
// offline reference solvers (internal/opt), the registry-driven
// concurrent replay engine (internal/engine: New(Spec) resolves any
// registered policy, Replay/Race/ReplayAll drive traces over the
// bounded worker pool in internal/pool, and truly-online OA/AVR/qOA
// sessions expose per-arrival state), the experiment harness
// (internal/experiments) that regenerates every table and figure of the
// reproduction, and a serving stack: internal/serve hosts live
// streaming sessions for many tenants behind cmd/schedd's HTTP API,
// and internal/load (cmd/loadgen) replays generated workloads against
// it as live traffic in scaled wall-clock time.
//
// See README.md for a guided tour and CLI usage, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for how
// to regenerate and read the tables. The benchmarks in bench_test.go
// cover each experiment and the engine/YDS hot paths.
package repro
