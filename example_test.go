package repro_test

import (
	"fmt"

	"repro/internal/chen"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/power"
)

// ExampleRun schedules two jobs with PD and prints the certified
// competitive ratio — the machine-checked form of Theorem 3.
func Example_run() {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: 100},
		{ID: 1, Release: 0, Deadline: 1, Work: 10, Value: 0.5},
	}}
	res, err := core.Run(in)
	if err != nil {
		panic(err)
	}
	// Decisions are in arrival order (ties broken by deadline), so the
	// tight job 1 is decided first.
	for _, d := range res.Decisions {
		fmt.Printf("job %d accepted: %v\n", d.JobID, d.Accepted)
	}
	fmt.Printf("cost %.2f, certified ratio ≤ %.2f (bound 4)\n",
		res.Cost, res.CertifiedRatio())
	// Output:
	// job 1 accepted: false
	// job 0 accepted: true
	// cost 1.00, certified ratio ≤ 1.14 (bound 4)
}

// Example_partition shows Chen et al.'s dedicated/pool split on one
// atomic interval: the big job gets its own processor, the small ones
// share the other at their average speed.
func Example_partition() {
	sys := chen.System{M: 2, Power: power.New(2)}
	p := sys.Partition(1, []chen.Item{
		{ID: 0, Work: 10}, {ID: 1, Work: 1}, {ID: 2, Work: 1},
	})
	fmt.Printf("dedicated: job %d at speed %.0f\n", p.Dedicated[0].ID, p.Dedicated[0].Work/p.L)
	fmt.Printf("pool: %d jobs at speed %.0f\n", len(p.Pool), p.PoolSpeed)
	// Output:
	// dedicated: job 0 at speed 10
	// pool: 2 jobs at speed 2
}

// Example_online drives PD one arrival at a time, the way a datacenter
// front-end would use it.
func Example_online() {
	pm := power.New(2)
	s := core.New(2, pm)
	for _, j := range []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 10},
		{ID: 1, Release: 0, Deadline: 1, Work: 1, Value: 10},
		{ID: 2, Release: 0.5, Deadline: 1, Work: 5, Value: 0.1},
	} {
		d, err := s.Arrive(j)
		if err != nil {
			panic(err)
		}
		fmt.Printf("job %d accepted=%v\n", d.JobID, d.Accepted)
	}
	fmt.Printf("energy %.0f, lost %.1f\n", s.Energy(), s.LostValue())
	// Output:
	// job 0 accepted=true
	// job 1 accepted=true
	// job 2 accepted=false
	// energy 2, lost 0.1
}
