package repro

import (
	"fmt"
	"io"
	"math"
	"testing"

	"repro/internal/chen"
	"repro/internal/cll"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yds"
)

// benchScale keeps the per-iteration work of the experiment benchmarks
// moderate; cmd/experiments runs the full default scale.
var benchScale = experiments.Scale{Seeds: 2, N: 24}

// --- One benchmark per table/figure (T1-T7, F2, F3) ---

func benchExperiment(b *testing.B, fn func(experiments.Scale) (*stats.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fn(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1CertifiedRatio(b *testing.B) {
	benchExperiment(b, experiments.T1CertifiedRatio)
}

func BenchmarkT2LowerBound(b *testing.B) {
	benchExperiment(b, experiments.T2LowerBound)
}

func BenchmarkT3VsCLL(b *testing.B) {
	benchExperiment(b, experiments.T3VsCLL)
}

func BenchmarkT4Multiproc(b *testing.B) {
	benchExperiment(b, experiments.T4Multiproc)
}

func BenchmarkT5DeltaAblation(b *testing.B) {
	benchExperiment(b, experiments.T5DeltaAblation)
}

func BenchmarkT6ValueSweep(b *testing.B) {
	benchExperiment(b, experiments.T6ValueSweep)
}

func BenchmarkT7RejectionPolicy(b *testing.B) {
	benchExperiment(b, experiments.T7RejectionEquivalence)
}

func BenchmarkT8VsMultiOA(b *testing.B) {
	benchExperiment(b, experiments.T8VsMultiOA)
}

func BenchmarkT9DualTightening(b *testing.B) {
	benchExperiment(b, experiments.T9DualTightening)
}

func BenchmarkT10Latency(b *testing.B) {
	benchExperiment(b, experiments.T10Latency)
}

func BenchmarkF2ChenStructure(b *testing.B) {
	benchExperiment(b, experiments.F2ChenStructure)
}

func BenchmarkF3PDvsOA(b *testing.B) {
	benchExperiment(b, experiments.F3PDvsOA)
}

// --- Microbenchmarks of the load-bearing primitives ---

func BenchmarkPDOnlineArrivals(b *testing.B) {
	in := workload.Uniform(workload.Config{N: 100, M: 4, Alpha: 2.5, Seed: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDScalingN measures how PD's runtime scales with the number
// of jobs (the partition grows with every arrival, so per-arrival work
// is superlinear in n).
func BenchmarkPDScalingN(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		in := workload.Uniform(workload.Config{N: n, M: 4, Alpha: 2.5, Seed: 5})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPDScalingM measures sensitivity to the processor count at
// fixed n (the Chen partition and capacity inversion touch every job in
// an interval regardless of m).
func BenchmarkPDScalingM(b *testing.B) {
	for _, m := range []int{1, 4, 16, 64} {
		in := workload.Uniform(workload.Config{N: 150, M: m, Alpha: 2.5, Seed: 6})
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChenPartition(b *testing.B) {
	sys := chen.System{M: 8, Power: power.New(3)}
	items := make([]chen.Item, 32)
	for i := range items {
		items[i] = chen.Item{ID: i, Work: float64(1+i%7) * 0.37}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Partition(1, items)
	}
}

func BenchmarkChenWorkAtSpeed(b *testing.B) {
	sys := chen.System{M: 8, Power: power.New(3)}
	items := make([]chen.Item, 32)
	for i := range items {
		items[i] = chen.Item{ID: i, Work: float64(1+i%7) * 0.37}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.WorkAtSpeed(1, items, 2.5)
	}
}

func BenchmarkYDSOffline(b *testing.B) {
	in := workload.Uniform(workload.Config{N: 40, M: 1, Alpha: 2, Seed: 6, ValueScale: math.Inf(1)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yds.YDS(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYDSOfflineScaling tracks the heap-based offline solver
// across trace sizes; run it together with BenchmarkYDSReference to
// measure the speedup over the seed algorithm in the same run.
func BenchmarkYDSOfflineScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		in := workload.Uniform(workload.Config{
			N: n, M: 1, Alpha: 2, Seed: 6, Horizon: float64(n) / 10, ValueScale: math.Inf(1),
		})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := yds.YDS(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkYDSReference measures the seed's O(n³)-rescan solver on the
// same instances as BenchmarkYDSOfflineScaling (n=4000 is omitted: a
// single iteration takes minutes).
func BenchmarkYDSReference(b *testing.B) {
	for _, n := range []int{100, 1000} {
		in := workload.Uniform(workload.Config{
			N: n, M: 1, Alpha: 2, Seed: 6, Horizon: float64(n) / 10, ValueScale: math.Inf(1),
		})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := yds.YDSReference(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplayAll measures the parallel replay of a fleet against
// the same work done sequentially (workers=1): the ratio of the two is
// the engine's parallel speedup.
func BenchmarkReplayAll(b *testing.B) {
	fleet := workload.Fleet(workload.HeavyTail, workload.Config{
		N: 300, M: 1, Alpha: 2, Seed: 12, ValueScale: math.Inf(1),
	}, 8)
	spec := engine.Spec{Name: "oa", M: 1, Alpha: 2}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.ReplayAllSpec(fleet, spec, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRace measures the concurrent policy comparison that backs
// profsched's -algos mode and experiment T11.
func BenchmarkRace(b *testing.B) {
	in := workload.HeavyTail(workload.Config{N: 200, M: 1, Alpha: 2, Seed: 13, ValueScale: math.Inf(1)})
	specs := []engine.Spec{
		{Name: "pd", M: 1, Alpha: 2}, {Name: "oa", M: 1, Alpha: 2},
		{Name: "avr", M: 1, Alpha: 2}, {Name: "qoa", M: 1, Alpha: 2},
		{Name: "yds", M: 1, Alpha: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RaceSpecs(in, specs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionPerArrival tracks the streaming hot path: one full
// arrival stream through a truly-online session per iteration,
// normalised to ns/arrival (the per-arrival replanning cost T10
// reports). The horizon scales with n so the live backlog stays
// realistic instead of growing with the trace; ns/arrival staying flat
// across the n decades is the amortized-sublinear claim, and
// allocs/op divided by n is the (amortized) allocs-per-arrival, with
// Close and verification excluded from both timer and allocation
// accounting.
func BenchmarkSessionPerArrival(b *testing.B) {
	for _, name := range []string{"oa", "avr", "qoa"} {
		for _, n := range []int{1_000, 10_000, 100_000} {
			in := workload.HeavyTail(workload.Config{
				N: n, M: 1, Alpha: 2, Seed: 17, Horizon: float64(n) / 10, ValueScale: math.Inf(1),
			})
			in.Normalize()
			spec := engine.Spec{Name: name, M: 1, Alpha: 2}
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					p, err := engine.New(spec)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for _, j := range in.Jobs {
						if err := p.Arrive(j); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					if _, err := p.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/arrival")
			})
		}
	}
}

func BenchmarkOAOnline(b *testing.B) {
	in := workload.Uniform(workload.Config{N: 60, M: 1, Alpha: 2, Seed: 7, ValueScale: math.Inf(1)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yds.OA(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCLL(b *testing.B) {
	pm := power.New(2)
	in := workload.Uniform(workload.Config{N: 60, M: 1, Alpha: 2, Seed: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cll.Run(in, pm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvexSolver(b *testing.B) {
	in := workload.Uniform(workload.Config{N: 20, M: 4, Alpha: 2.5, Seed: 9, ValueScale: math.Inf(1)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.SolveAccepted(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegralOPT(b *testing.B) {
	in := workload.Uniform(workload.Config{N: 8, M: 2, Alpha: 2, Seed: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Integral(in); err != nil {
			b.Fatal(err)
		}
	}
}
