package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/serve"
	"repro/internal/wal"
	"repro/internal/workload"
)

// BenchmarkClusterIngest measures aggregate ingest through the full
// cluster stack at 2, 3 and 4 workers: a live controller owns
// placement, one durable tenant per worker, and every arrival stream
// enters at the controller's URL and follows its 307 redirect to the
// owning worker — the deployment's actual data path. The committed
// trajectory (BENCH_pr10.json) records the series, so the scale-out
// claim — aggregate arrivals/sec growing with workers rather than
// collapsing on the control plane — is visible in one run.
func BenchmarkClusterIngest(b *testing.B) {
	const n = 20_000 // arrivals per tenant per iteration
	in := workload.HeavyTail(workload.Config{
		N: n, M: 1, Alpha: 2, Seed: 17, Horizon: float64(n) / 10, ValueScale: math.Inf(1),
	})
	for i := range in.Jobs {
		in.Jobs[i].Release = math.Floor(in.Jobs[i].Release)
	}
	in.Normalize()
	body := make([]byte, 0, 64*n)
	for _, j := range in.Jobs {
		body = job.AppendJSON(body, j)
		body = append(body, '\n')
	}

	for _, workers := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cluster.NewController(cluster.Options{})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			c.Start(ctx)
			ctrl := httptest.NewServer(cluster.NewHTTPHandler(c))
			defer ctrl.Close()
			for w := 0; w < workers; w++ {
				st, err := wal.Open(b.TempDir(), wal.Options{FsyncInterval: 5 * time.Millisecond})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				h := serve.NewHost(serve.Config{MaxSessions: 64, MaxBacklog: 4096, WAL: st})
				fence := cluster.NewEpochFence()
				name := fmt.Sprintf("w%d", w)
				srv := httptest.NewServer(cluster.NewNodeHandler(name, h, st, fence))
				defer srv.Close()
				agent := cluster.NewAgent(cluster.NodeConfig{
					Name: name, Advertise: srv.URL, Controller: ctrl.URL, Fence: fence,
				}, h, st)
				if _, err := agent.Join(ctx); err != nil {
					b.Fatal(err)
				}
			}

			do := func(method, path string, payload []byte, want int) {
				b.Helper()
				req, err := http.NewRequest(method, ctrl.URL+path, bytes.NewReader(payload))
				if err != nil {
					b.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != want {
					b.Fatalf("%s %s: %s", method, path, resp.Status)
				}
			}

			spec := `{"id":%q,"spec":{"name":"oa","m":1,"alpha":2}}`
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ids := make([]string, workers)
				for t := range ids {
					ids[t] = fmt.Sprintf("cb-%d-%d", i, t)
					do("POST", "/v1/sessions", []byte(fmt.Sprintf(spec, ids[t])), http.StatusCreated)
				}
				b.StartTimer()
				// One concurrent stream per tenant, every one entering at
				// the controller and redirected to its owning worker.
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for _, id := range ids {
					wg.Add(1)
					go func(id string) {
						defer wg.Done()
						req, err := http.NewRequest(http.MethodPost,
							ctrl.URL+"/v1/sessions/"+id+"/arrivals", bytes.NewReader(body))
						if err != nil {
							errs <- err
							return
						}
						resp, err := http.DefaultClient.Do(req)
						if err != nil {
							errs <- err
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errs <- fmt.Errorf("ingest %s: %s", id, resp.Status)
						}
					}(id)
				}
				wg.Wait()
				close(errs)
				b.StopTimer()
				for err := range errs {
					b.Fatal(err)
				}
				for _, id := range ids {
					do("DELETE", "/v1/sessions/"+id, nil, http.StatusOK)
				}
				b.StartTimer()
			}
			total := float64(b.N) * float64(workers) * float64(n)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/arrival")
			b.ReportMetric(total/b.Elapsed().Seconds(), "arrivals/sec")
		})
	}
}
