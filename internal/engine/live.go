// Live is the streaming counterpart of Replay: the same lifecycle —
// validate every arrival, meter the policy's decision latency, verify
// the final schedule independently — but driven by arrivals delivered
// one at a time over a session's lifetime instead of a finished trace.
// The serving daemon hosts one Live per tenant; fed the same jobs in
// the same order, Live and Replay produce byte-identical Results
// (modulo wall-clock timings), which the differential tests pin.

package engine

import (
	"fmt"
	"time"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
)

// Live drives one policy through a stream of arrivals. It accumulates
// the implied instance as jobs arrive so that Close can verify the
// schedule against exactly what the policy was shown. Live is not
// synchronized: callers feeding it from multiple goroutines must
// serialize (the serve package does, per tenant).
type Live struct {
	p       Policy
	m       int
	alpha   float64
	jobs    []job.Job
	seen    map[int]struct{}
	lastRel float64
	res     Result
	closed  bool
}

// NewLive validates the spec against the registry and opens a
// streaming run with a fresh policy.
func (r *Registry) NewLive(spec Spec) (*Live, error) {
	p, err := r.New(spec)
	if err != nil {
		return nil, err
	}
	return &Live{
		p: p, m: spec.M, alpha: spec.Alpha,
		seen: make(map[int]struct{}),
		res:  Result{Policy: p.Name()},
	}, nil
}

// NewLive opens a streaming run from the default registry.
func NewLive(spec Spec) (*Live, error) { return DefaultRegistry().NewLive(spec) }

// Policy returns the resolved policy's name.
func (l *Live) Policy() string { return l.p.Name() }

// Arrivals returns the number of jobs accepted so far.
func (l *Live) Arrivals() int { return len(l.jobs) }

// History returns the accepted arrivals in application order — the
// run's full deterministic input, which together with the Spec is
// everything a byte-identical rebuild needs (the WAL's checkpoint
// writer persists exactly this). The slice aliases live state: callers
// must not mutate it and must not hold it across further arrivals.
func (l *Live) History() []job.Job { return l.jobs }

// Arrive validates the job (well-formed, unique ID, nondecreasing
// release — the order every online algorithm here assumes) and hands
// it to the policy, metering the decision latency. A rejected or
// invalid arrival does not corrupt the run: the session stays usable
// for further arrivals and Close.
func (l *Live) Arrive(j job.Job) error {
	if l.closed {
		return fmt.Errorf("engine: live run already closed, cannot accept job %d", j.ID)
	}
	if err := j.Validate(); err != nil {
		return err
	}
	if _, dup := l.seen[j.ID]; dup {
		return fmt.Errorf("engine: duplicate job ID %d", j.ID)
	}
	if len(l.jobs) > 0 && j.Release < l.lastRel {
		return fmt.Errorf("engine: job %d released at %v arrives after frontier %v (arrivals must be in release order)",
			j.ID, j.Release, l.lastRel)
	}
	start := time.Now()
	if err := l.p.Arrive(j); err != nil {
		return fmt.Errorf("engine: %s rejected arrival of job %d: %w", l.p.Name(), j.ID, err)
	}
	d := time.Since(start)
	l.res.TotalArrive += d
	if d > l.res.MaxArrive {
		l.res.MaxArrive = d
	}
	l.seen[j.ID] = struct{}{}
	l.jobs = append(l.jobs, j)
	l.lastRel = j.Release
	return nil
}

// ApplyBatch validates and applies a run of arrivals in one call —
// the serving daemon's batched ingest path: the per-tenant applier
// drains everything queued and hands it here, paying one latency
// measurement and (through BatchArriver policies) one coalesced
// replan per same-release group instead of per job. It returns how
// many jobs were applied. On an error the batch stops there: the
// applied prefix stays, the offending and remaining jobs are dropped,
// and the caller records the error (the host fails later submits fast
// and surfaces it at Close, so a poisoned stream cannot masquerade as
// a clean run). Fed the same jobs, ApplyBatch and one-at-a-time
// Arrive produce byte-identical Results (modulo wall-clock timings) —
// pinned by differential tests.
func (l *Live) ApplyBatch(js []job.Job) (int, error) {
	if l.closed {
		return 0, fmt.Errorf("engine: live run already closed, cannot accept a batch of %d jobs", len(js))
	}
	if len(js) == 0 {
		return 0, nil
	}
	// Validate the maximal clean prefix, recording it optimistically
	// (the duplicate check must see earlier jobs of this same batch).
	base := len(l.jobs)
	valid := 0
	var verr error
	for _, j := range js {
		if err := j.Validate(); err != nil {
			verr = err
			break
		}
		if _, dup := l.seen[j.ID]; dup {
			verr = fmt.Errorf("engine: duplicate job ID %d", j.ID)
			break
		}
		if len(l.jobs) > 0 && j.Release < l.lastRel {
			verr = fmt.Errorf("engine: job %d released at %v arrives after frontier %v (arrivals must be in release order)",
				j.ID, j.Release, l.lastRel)
			break
		}
		l.seen[j.ID] = struct{}{}
		l.jobs = append(l.jobs, j)
		l.lastRel = j.Release
		valid++
	}

	applied := valid
	var perr error
	if valid > 0 {
		start := time.Now()
		if ba, ok := l.p.(BatchArriver); ok {
			applied, perr = ba.ArriveBatch(l.jobs[base : base+valid])
		} else {
			applied = 0
			for _, j := range l.jobs[base : base+valid] {
				if err := l.p.Arrive(j); err != nil {
					perr = err
					break
				}
				applied++
			}
		}
		d := time.Since(start)
		l.res.TotalArrive += d
		if d > l.res.MaxArrive {
			l.res.MaxArrive = d
		}
	}
	if applied < valid {
		// The policy refused mid-batch: unrecord what it did not absorb
		// so Close verifies against exactly what the policy saw.
		for _, j := range l.jobs[base+applied:] {
			delete(l.seen, j.ID)
		}
		l.jobs = l.jobs[:base+applied]
		if len(l.jobs) > 0 {
			l.lastRel = l.jobs[len(l.jobs)-1].Release
		} else {
			l.lastRel = 0
		}
	}
	if perr != nil {
		return applied, fmt.Errorf("engine: %s rejected arrival: %w", l.p.Name(), perr)
	}
	if verr != nil {
		return applied, verr
	}
	return applied, nil
}

// Snapshot observes the live plan mid-stream through the policy's
// Session face; policies without one (custom batch registrations) get
// a backlog-only view with Buffered set, mirroring batchPolicy.
func (l *Live) Snapshot() Snapshot {
	if s, ok := SessionOf(l.p); ok {
		return s.Snapshot()
	}
	snap := Snapshot{At: l.lastRel, Arrivals: len(l.jobs), Pending: len(l.jobs), Buffered: true}
	for _, j := range l.jobs {
		snap.PendingWork += j.Work
	}
	return snap
}

// Close finalises the run: the policy plans (PlanTime), the schedule
// is verified against the accumulated instance, and the uniform
// Result is returned — the same post-processing Replay performs.
// Close is one-shot; a second call errors.
func (l *Live) Close() (*Result, error) {
	if l.closed {
		return nil, fmt.Errorf("engine: live run already closed")
	}
	l.closed = true
	start := time.Now()
	s, err := l.p.Close()
	l.res.PlanTime = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("engine: %s close: %w", l.p.Name(), err)
	}
	if b, ok := l.p.(Buffered); ok && b.Buffered() {
		l.res.MaxArrive, l.res.TotalArrive = 0, 0
	}
	inst := &job.Instance{M: l.m, Alpha: l.alpha, Jobs: l.jobs}
	if err := sched.Verify(inst, s); err != nil {
		return nil, fmt.Errorf("engine: %s produced an infeasible schedule: %w", l.p.Name(), err)
	}
	pm := power.Model{Alpha: inst.Alpha}
	l.res.Schedule = s
	l.res.Energy = s.Energy(pm)
	l.res.LostValue = s.LostValue(inst)
	l.res.Cost = l.res.Energy + l.res.LostValue
	l.res.Rejected = len(s.Rejected)
	res := l.res
	return &res, nil
}
