package engine

import (
	"bytes"
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/workload"
)

// scheduleBytes serialises the scheduling-relevant part of a Result so
// parallel and sequential runs can be compared byte for byte (the
// latency fields are wall-clock and legitimately differ).
func scheduleBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Policy                  string
		Segments                interface{}
		Rejected                interface{}
		Energy, LostValue, Cost float64
		RejectedCount           int
	}{r.Policy, r.Schedule.Segments, r.Schedule.Rejected, r.Energy, r.LostValue, r.Cost, r.Rejected})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestReplayAllMatchesSequentialByteForByte(t *testing.T) {
	traces := workload.Fleet(workload.Uniform, workload.Config{
		N: 40, M: 2, Alpha: 2, Seed: 1, ValueScale: 2,
	}, 9)

	var sequential [][]byte
	for _, in := range traces {
		res, err := Replay(in, mustNew(t, Spec{Name: "pd", M: 2, Alpha: 2}))
		if err != nil {
			t.Fatal(err)
		}
		sequential = append(sequential, scheduleBytes(t, res))
	}
	for _, workers := range []int{1, 3, 8} {
		results, err := ReplayAll(traces, func() Policy { return mustNew(t, Spec{Name: "pd", M: 2, Alpha: 2}) }, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, res := range results {
			if res == nil {
				t.Fatalf("workers=%d: missing result %d", workers, i)
			}
			if !bytes.Equal(scheduleBytes(t, res), sequential[i]) {
				t.Fatalf("workers=%d: trace %d diverges from sequential replay", workers, i)
			}
		}
	}
}

func TestReplayAllJoinsErrorsAndKeepsSuccesses(t *testing.T) {
	good := workload.Uniform(workload.Config{N: 10, M: 1, Alpha: 2, Seed: 3})
	bad1 := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 1, Deadline: 0.5, Work: 1, Value: 1}, // deadline before release
	}}
	bad2 := &job.Instance{M: 0, Alpha: 2} // no processors
	results, err := ReplayAll([]*job.Instance{bad1, good, bad2}, func() Policy { return mustNew(t, Spec{Name: "pd", M: 1, Alpha: 2}) }, 2)
	if err == nil {
		t.Fatal("invalid traces must surface an error")
	}
	if !strings.Contains(err.Error(), "trace 0") || !strings.Contains(err.Error(), "trace 2") {
		t.Fatalf("joined error must name both failing traces: %v", err)
	}
	if results[0] != nil || results[2] != nil {
		t.Fatal("failed traces must leave nil slots")
	}
	if results[1] == nil || results[1].Cost <= 0 {
		t.Fatalf("healthy trace must still be replayed: %+v", results[1])
	}
}

func TestRaceMatchesIndividualReplays(t *testing.T) {
	in := workload.Poisson(workload.Config{N: 20, M: 1, Alpha: 2, Seed: 5, ValueScale: math.Inf(1)})
	mks := []func() Policy{
		func() Policy { return mustNew(t, Spec{Name: "pd", M: 1, Alpha: 2}) },
		func() Policy { return mustNew(t, Spec{Name: "oa", M: 1, Alpha: 2}) },
		func() Policy { return mustNew(t, Spec{Name: "avr", M: 1, Alpha: 2}) },
		func() Policy { return mustNew(t, Spec{Name: "qoa", M: 1, Alpha: 2}) },
		func() Policy { return mustNew(t, Spec{Name: "yds", M: 1, Alpha: 2}) },
	}
	policies := make([]Policy, len(mks))
	for i, mk := range mks {
		policies[i] = mk()
	}
	results, err := Race(in, policies...)
	if err != nil {
		t.Fatal(err)
	}
	for i, mk := range mks {
		solo, err := Replay(in, mk())
		if err != nil {
			t.Fatal(err)
		}
		if results[i] == nil || results[i].Policy != solo.Policy {
			t.Fatalf("slot %d: got %+v want policy %s", i, results[i], solo.Policy)
		}
		if !bytes.Equal(scheduleBytes(t, results[i]), scheduleBytes(t, solo)) {
			t.Fatalf("%s: race result diverges from solo replay", solo.Policy)
		}
		// The offline optimum must not be beaten by any online policy.
		if results[i].Energy < results[len(results)-1].Energy-1e-9 {
			t.Fatalf("%s energy %v below offline optimum %v",
				results[i].Policy, results[i].Energy, results[len(results)-1].Energy)
		}
	}
}

func TestRacePropagatesPolicyErrorsByName(t *testing.T) {
	in := workload.Uniform(workload.Config{N: 8, M: 1, Alpha: 2, Seed: 6})
	results, err := Race(in, mustNew(t, Spec{Name: "pd", M: 1, Alpha: 2}), failingPolicy{})
	if err == nil {
		t.Fatal("broken policy must fail the race")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Fatalf("error must carry the failing policy's name: %v", err)
	}
	if results[0] == nil || results[1] != nil {
		t.Fatalf("want PD result and nil broken slot, got %v / %v", results[0], results[1])
	}
	invalid := &job.Instance{M: 0, Alpha: 2}
	if _, err := Race(invalid, mustNew(t, Spec{Name: "pd", M: 1, Alpha: 2})); err == nil {
		t.Fatal("invalid instance must be rejected before racing")
	}
}

// TestReplayAllParallelSpeedup drives an 8-trace fleet sequentially
// and with a worker pool and checks wall-clock actually drops. The
// speedup bar is conservative (the ideal is ~min(workers, cores)) to
// stay robust on loaded CI machines; the test skips where there is no
// parallel hardware to show it on.
func TestReplayAllParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need ≥ 4 CPUs to demonstrate parallel speedup, have %d", cores)
	}
	fleet := workload.Fleet(workload.HeavyTail, workload.Config{
		N: 400, M: 1, Alpha: 2, Seed: 21, ValueScale: math.Inf(1),
	}, 8)
	mk := func() Policy { return mustNew(t, Spec{Name: "oa", M: 1, Alpha: 2}) }

	start := time.Now()
	seqResults, err := ReplayAll(fleet, mk, 1)
	seq := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	parResults, err := ReplayAll(fleet, mk, 4)
	par := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fleet {
		if !bytes.Equal(scheduleBytes(t, seqResults[i]), scheduleBytes(t, parResults[i])) {
			t.Fatalf("trace %d: parallel replay changed the result", i)
		}
	}
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, 4 workers %v (%.2f× speedup)", seq, par, speedup)
	if speedup < 2 {
		t.Fatalf("4 workers on %d cores only reached %.2f× over sequential", cores, speedup)
	}
}

func TestNewBatchPoliciesReplay(t *testing.T) {
	in := workload.Poisson(workload.Config{N: 12, M: 1, Alpha: 2, Seed: 7, ValueScale: math.Inf(1)})
	for _, name := range []string{"yds", "avr", "bkp", "qoa"} {
		p := mustNew(t, Spec{Name: name, M: 1, Alpha: 2})
		res, err := Replay(in, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.LostValue != 0 || res.Rejected != 0 {
			t.Fatalf("%s dropped work on a finish-all instance: %+v", p.Name(), res)
		}
	}
}
