package engine

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestLiveMatchesReplay pins the streaming lifecycle to the batch one:
// feeding a normalized instance arrival by arrival through Live must
// produce a byte-identical schedule and identical cost metrics to
// Replay for every built-in policy.
func TestLiveMatchesReplay(t *testing.T) {
	in := workload.Poisson(workload.Config{N: 40, M: 1, Alpha: 2.2, Seed: 3, ValueScale: 2})
	for _, name := range DefaultRegistry().Names() {
		if name == "opt" {
			continue // exponential; 40 jobs is out of reach
		}
		spec := Spec{Name: name, M: 1, Alpha: in.Alpha}
		batch, err := ReplayAllSpec([]*job.Instance{in}, spec, 1)
		if err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}

		l, err := NewLive(spec)
		if err != nil {
			t.Fatalf("%s: NewLive: %v", name, err)
		}
		norm := in.Clone()
		norm.Normalize()
		for _, j := range norm.Jobs {
			if err := l.Arrive(j); err != nil {
				t.Fatalf("%s: arrive job %d: %v", name, j.ID, err)
			}
		}
		if got := l.Arrivals(); got != len(norm.Jobs) {
			t.Fatalf("%s: arrivals = %d, want %d", name, got, len(norm.Jobs))
		}
		live, err := l.Close()
		if err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}

		a, b := *batch[0], *live
		// Wall-clock timings differ run to run; mask them.
		a.MaxArrive, a.TotalArrive, a.PlanTime = 0, 0, 0
		b.MaxArrive, b.TotalArrive, b.PlanTime = 0, 0, 0
		aj, errA := json.Marshal(a)
		bj, errB := json.Marshal(b)
		if errA != nil || errB != nil {
			t.Fatalf("%s: marshal: %v %v", name, errA, errB)
		}
		if !bytes.Equal(aj, bj) {
			t.Fatalf("%s: live result differs from replay:\n%s\nvs\n%s", name, aj, bj)
		}
	}
}

func TestLiveLifecycleErrors(t *testing.T) {
	spec := Spec{Name: "oa", M: 1, Alpha: 2}
	mk := func() *Live {
		l, err := NewLive(spec)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	ok := job.Job{ID: 0, Release: 1, Deadline: 2, Work: 1, Value: math.Inf(1)}

	l := mk()
	if err := l.Arrive(job.Job{ID: 1, Release: 0, Deadline: 1, Work: -1}); err == nil {
		t.Fatal("invalid job accepted")
	}
	if err := l.Arrive(ok); err != nil {
		t.Fatal(err)
	}
	if err := l.Arrive(ok); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := l.Arrive(job.Job{ID: 2, Release: 0.5, Deadline: 3, Work: 1}); err == nil {
		t.Fatal("out-of-order release accepted")
	}
	// A refused arrival must not corrupt the run.
	if _, err := l.Close(); err != nil {
		t.Fatalf("close after refused arrivals: %v", err)
	}
	if _, err := l.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	if err := l.Arrive(job.Job{ID: 3, Release: 5, Deadline: 6, Work: 1}); err == nil {
		t.Fatal("arrive after close accepted")
	}

	if _, err := NewLive(Spec{Name: "nope", M: 1, Alpha: 2}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestLiveSnapshot(t *testing.T) {
	l, err := NewLive(Spec{Name: "oa", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Arrive(job.Job{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if snap.Arrivals != 1 || snap.Pending != 1 || snap.Buffered {
		t.Fatalf("online snapshot = %+v", snap)
	}
	// A batch policy behind Live reports its backlog as buffered.
	lb, err := NewLive(Spec{Name: "yds", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.Arrive(job.Job{ID: 0, Release: 0, Deadline: 2, Work: 1.5, Value: math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	snap = lb.Snapshot()
	if !snap.Buffered || snap.PendingWork != 1.5 {
		t.Fatalf("batch snapshot = %+v", snap)
	}
}

// TestWireRoundTrip pins the JSON wire format of Spec, Snapshot and
// Result: lowerCamel names, durations as nanoseconds, and lossless
// round-trips, so the HTTP API needs no parallel DTO layer.
func TestWireRoundTrip(t *testing.T) {
	spec := Spec{Name: "pd", M: 3, Alpha: 2.5, Params: map[string]float64{"delta": 0.125}}
	sj, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"pd","m":3,"alpha":2.5,"params":{"delta":0.125}}`
	if string(sj) != want {
		t.Fatalf("spec wire = %s, want %s", sj, want)
	}
	var spec2 Spec
	if err := json.Unmarshal(sj, &spec2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, spec2) {
		t.Fatalf("spec round-trip changed: %+v vs %+v", spec, spec2)
	}

	snap := Snapshot{At: 1.5, Arrivals: 7, Pending: 2, PendingWork: 0.75, Speed: 1.25, Buffered: true}
	nj, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"at":1.5,"arrivals":7,"pending":2,"pendingWork":0.75,"speed":1.25,"buffered":true}`
	if string(nj) != want {
		t.Fatalf("snapshot wire = %s, want %s", nj, want)
	}
	var snap2 Snapshot
	if err := json.Unmarshal(nj, &snap2); err != nil {
		t.Fatal(err)
	}
	if snap != snap2 {
		t.Fatalf("snapshot round-trip changed: %+v vs %+v", snap, snap2)
	}

	res := Result{
		Policy: "oa",
		Schedule: &sched.Schedule{M: 1,
			Segments: []sched.Segment{{Proc: 0, Job: 4, T0: 0.1, T1: 0.9, Speed: 1.375}},
			Rejected: []int{9},
		},
		Energy: 1.51, LostValue: 0.25, Cost: 1.76, Rejected: 1,
		MaxArrive: 1500 * time.Nanosecond, TotalArrive: 4 * time.Microsecond,
		PlanTime: time.Millisecond,
	}
	rj, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"policy"`, `"schedule"`, `"segments"`, `"proc"`, `"t0"`,
		`"lostValue"`, `"maxArrive":1500`, `"totalArrive":4000`, `"planTime":1000000`} {
		if !bytes.Contains(rj, []byte(key)) {
			t.Fatalf("result wire %s misses %s", rj, key)
		}
	}
	var res2 Result
	if err := json.Unmarshal(rj, &res2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("result round-trip changed: %+v vs %+v", res, res2)
	}
}

// TestLiveArriveSteadyStateAllocFree guards the serving hot path end
// to end: a warm Live.Arrive — validation, duplicate check, latency
// metering and the policy's own replanning — must not allocate per
// arrival beyond the amortized growth of its bookkeeping (jobs slice,
// seen map, session buffers).
func TestLiveArriveSteadyStateAllocFree(t *testing.T) {
	in := workload.HeavyTail(workload.Config{
		N: 6000, M: 1, Alpha: 2, Seed: 9, Horizon: 600, ValueScale: math.Inf(1),
	})
	in.Normalize()
	const warm, runs = 5000, 500
	l, err := NewLive(Spec{Name: "oa", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs[:warm] {
		if err := l.Arrive(j); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	i := warm
	avg := testing.AllocsPerRun(runs, func() {
		if err := l.Arrive(in.Jobs[i]); err != nil {
			t.Fatalf("arrive %d: %v", i, err)
		}
		i++
	})
	if avg > 0.5 {
		t.Errorf("%.3f allocs per steady-state Live arrival, want ~0", avg)
	}
	if _, err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestApplyBatchMatchesSequentialArrive pins the batched ingest path
// at the engine layer: a trace fed through ApplyBatch under arbitrary
// batch boundaries must close to a Result byte-identical to feeding
// the same jobs through Arrive one at a time, for every built-in
// policy shape (truly-online sessions with coalesced replans, the
// buffering shims, and pd's generic per-job fallback).
func TestApplyBatchMatchesSequentialArrive(t *testing.T) {
	// The same instance TestLiveMatchesReplay replays: every built-in
	// (including the float-sensitive moa shim) closes it cleanly.
	in := workload.Poisson(workload.Config{N: 40, M: 1, Alpha: 2.2, Seed: 3, ValueScale: 2})
	norm := in.Clone()
	norm.Normalize()
	for _, name := range DefaultRegistry().Names() {
		if name == "opt" {
			continue // exponential; 60 jobs is out of reach
		}
		spec := Spec{Name: name, M: 1, Alpha: in.Alpha}
		seq, err := NewLive(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, j := range norm.Jobs {
			if err := seq.Arrive(j); err != nil {
				t.Fatalf("%s: arrive: %v", name, err)
			}
		}
		want, err := seq.Close()
		if err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		for _, sizes := range [][]int{{len(norm.Jobs)}, {1}, {3, 7, 1, 13}} {
			bat, err := NewLive(spec)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			k := 0
			for lo := 0; lo < len(norm.Jobs); {
				hi := lo + sizes[k%len(sizes)]
				k++
				if hi > len(norm.Jobs) {
					hi = len(norm.Jobs)
				}
				n, err := bat.ApplyBatch(norm.Jobs[lo:hi])
				if n != hi-lo || err != nil {
					t.Fatalf("%s: ApplyBatch[%d:%d] = %d, %v", name, lo, hi, n, err)
				}
				lo = hi
			}
			if bat.Arrivals() != len(norm.Jobs) {
				t.Fatalf("%s: arrivals = %d", name, bat.Arrivals())
			}
			got, err := bat.Close()
			if err != nil {
				t.Fatalf("%s: batch close: %v", name, err)
			}
			a, b := *want, *got
			a.MaxArrive, a.TotalArrive, a.PlanTime = 0, 0, 0
			b.MaxArrive, b.TotalArrive, b.PlanTime = 0, 0, 0
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if !bytes.Equal(aj, bj) {
				t.Fatalf("%s: batched result differs from sequential:\n%s\nvs\n%s", name, aj, bj)
			}
		}
	}
}

// TestApplyBatchStopsAtFirstError pins the batch error contract: the
// clean prefix is applied and counted, the offending job and the rest
// of the batch are dropped, and the engine's bookkeeping (seen set,
// accumulated instance, frontier) reflects exactly the applied jobs.
func TestApplyBatchStopsAtFirstError(t *testing.T) {
	mk := func(id int, rel float64) job.Job {
		return job.Job{ID: id, Release: rel, Deadline: rel + 2, Work: 1, Value: 1}
	}
	l, err := NewLive(Spec{Name: "oa", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid job mid-batch: release-order violation.
	n, err := l.ApplyBatch([]job.Job{mk(0, 0), mk(1, 1), mk(2, 0.5), mk(3, 2)})
	if n != 2 || err == nil {
		t.Fatalf("ApplyBatch = %d, %v; want 2 and a release-order error", n, err)
	}
	if l.Arrivals() != 2 {
		t.Fatalf("arrivals = %d after partial batch", l.Arrivals())
	}
	// The dropped jobs must not pollute the duplicate set: job 2 can
	// arrive later (in order) under its own ID.
	if n, err := l.ApplyBatch([]job.Job{mk(2, 1.5), mk(3, 2)}); n != 2 || err != nil {
		t.Fatalf("re-apply dropped jobs: %d, %v", n, err)
	}
	// A malformed job fails validation without reaching the policy.
	if n, err := l.ApplyBatch([]job.Job{{ID: 9, Release: 3, Deadline: 2, Work: 1}}); n != 0 || err == nil {
		t.Fatalf("invalid job: %d, %v", n, err)
	}
	// Duplicates inside one batch are caught against each other.
	if n, err := l.ApplyBatch([]job.Job{mk(10, 4), mk(10, 4)}); n != 1 || err == nil {
		t.Fatalf("intra-batch duplicate: %d, %v", n, err)
	}
	res, err := l.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if res.Schedule == nil || len(res.Schedule.Rejected) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if _, err := l.ApplyBatch([]job.Job{mk(11, 9)}); err == nil {
		t.Fatal("ApplyBatch after Close must fail")
	}
}
