package engine

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/job"
)

// TestSpecAppendJSON pins the hand encoder byte-identical to
// json.Marshal across the param-map and escaping corners.
func TestSpecAppendJSON(t *testing.T) {
	specs := []Spec{
		{Name: "pd", M: 1, Alpha: 2},
		{Name: "oa", M: 4, Alpha: 2.2},
		{Name: "qoa", M: 1, Alpha: 3, Params: map[string]float64{"q": 1.5}},
		{Name: "pd", M: 2, Alpha: 2, Params: map[string]float64{"delta": 0.125, "b": 2, "a": 1e-9}},
		{Name: `we"ird<name>&`, M: 1, Alpha: 1.0000001},
		{Name: "", M: 0, Alpha: 0},
		{Name: "x", M: 1, Alpha: 2, Params: map[string]float64{}},
	}
	for _, s := range specs {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", s, err)
		}
		got := s.AppendJSON(nil)
		if string(got) != string(want) {
			t.Errorf("Spec%+v:\n got %s\nwant %s", s, got, want)
		}
	}
}

// TestSnapshotAppendJSON pins the snapshot encoder byte-identical to
// json.Marshal, including the omitempty buffered flag and the float
// formats the wire uses.
func TestSnapshotAppendJSON(t *testing.T) {
	snaps := []Snapshot{
		{},
		{At: 12.5, Arrivals: 3, Pending: 2, PendingWork: 7.25, Speed: 1.5},
		{At: 1e-9, Arrivals: 1, Pending: 1, PendingWork: 1e21, Speed: 0.1},
		{At: 4, Arrivals: 10, Pending: 10, PendingWork: 100, Buffered: true},
		{At: math.MaxFloat64, Arrivals: 1 << 30, Pending: -1, PendingWork: -0.5, Speed: 3},
	}
	for _, sn := range snaps {
		want, err := json.Marshal(sn)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", sn, err)
		}
		got := sn.AppendJSON(nil)
		if string(got) != string(want) {
			t.Errorf("Snapshot%+v:\n got %s\nwant %s", sn, got, want)
		}
	}
}

// TestLiveHistory checks History tracks exactly the accepted arrivals,
// unwinding the refused suffix of a poisoned batch.
func TestLiveHistory(t *testing.T) {
	l, err := NewLive(Spec{Name: "oa", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	inf := math.Inf(1)
	batch := []job.Job{
		{ID: 1, Release: 0, Deadline: 10, Work: 1, Value: inf},
		{ID: 2, Release: 1, Deadline: 11, Work: 2, Value: inf},
		{ID: 2, Release: 2, Deadline: 12, Work: 3, Value: inf},
	}
	n, err := l.ApplyBatch(batch)
	if err == nil || n != 2 {
		t.Fatalf("ApplyBatch = %d, %v; want 2 applied and a duplicate-ID error", n, err)
	}
	h := l.History()
	if len(h) != 2 || h[0].ID != 1 || h[1].ID != 2 {
		t.Fatalf("History after poisoned batch = %+v; want jobs 1,2", h)
	}
}
