// The policy registry: every algorithm registers a name, capability
// metadata and a constructor taking a uniform Spec, and callers
// resolve policies declaratively with New(spec) instead of wiring
// per-algorithm constructors. Incompatible specs are refused with an
// error that says why (m out of range, unknown parameter); unknown
// names are refused with the list of what is registered.

package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cll"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/moa"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/yds"
)

// Spec declaratively selects and parameterises a policy: the
// registered name, the machine environment (processors and energy
// exponent), and optional named parameters the policy accepts. The
// JSON tags are the stable wire names of the serving daemon's
// session-creation endpoint.
type Spec struct {
	// Name is the registry name, e.g. "pd" or "oa".
	Name string `json:"name"`
	// M is the number of processors the policy schedules on, m ≥ 1.
	M int `json:"m"`
	// Alpha is the energy exponent of the power function, α > 1.
	Alpha float64 `json:"alpha"`
	// Params carries optional policy-specific parameters (e.g. PD's
	// "delta"). Keys a policy does not declare are refused.
	Params map[string]float64 `json:"params,omitempty"`
}

// PowerModel returns the power function the spec's environment implies.
func (s Spec) PowerModel() power.Model { return power.Model{Alpha: s.Alpha} }

// Caps is a policy's capability metadata: which specs it can serve and
// how reports should label it.
type Caps struct {
	// MinM and MaxM bound the supported processor count; MaxM == 0
	// means unbounded above.
	MinM, MaxM int
	// Profit policies optimise energy plus lost value and may reject
	// jobs; non-profit policies ignore values and finish everything
	// (the classical model).
	Profit bool
	// Online policies plan incrementally per arrival (their replay
	// latency is the real algorithmic cost); otherwise the policy is a
	// buffering shim that plans at Close.
	Online bool
	// Clairvoyant policies see the whole trace before planning — the
	// offline baselines the online policies race against.
	Clairvoyant bool
}

// Mode labels the policy for reports: online, batch or clairvoyant.
func (c Caps) Mode() string {
	switch {
	case c.Clairvoyant:
		return "clairvoyant"
	case c.Online:
		return "online"
	default:
		return "batch"
	}
}

// Model labels the objective: profit (energy + lost value) or the
// classical finish-all model.
func (c Caps) Model() string {
	if c.Profit {
		return "profit"
	}
	return "finish-all"
}

// MRange renders the supported processor range, e.g. "1" or "≥1".
func (c Caps) MRange() string {
	switch {
	case c.MaxM == 0:
		return fmt.Sprintf("≥%d", c.MinM)
	case c.MaxM == c.MinM:
		return fmt.Sprintf("%d", c.MinM)
	default:
		return fmt.Sprintf("%d–%d", c.MinM, c.MaxM)
	}
}

// check explains why a spec is incompatible with the capabilities, or
// returns nil.
func (c Caps) check(spec Spec) error {
	if spec.M < c.MinM || (c.MaxM > 0 && spec.M > c.MaxM) {
		return fmt.Errorf("engine: policy %q supports m in range %s, spec asks for m=%d",
			spec.Name, c.MRange(), spec.M)
	}
	return nil
}

// Registration ties a policy name to its capabilities and constructor.
type Registration struct {
	// Name is the unique registry key.
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// Caps declares what specs the policy accepts and how to label it.
	Caps Caps
	// Params lists the Spec.Params keys the policy understands.
	Params []string
	// Build constructs a fresh policy for one replay. It is called
	// only with specs that passed the capability check.
	Build func(Spec) (Policy, error)
}

// accepts reports whether the registration declares the parameter key.
func (r Registration) accepts(key string) bool {
	for _, k := range r.Params {
		if k == key {
			return true
		}
	}
	return false
}

// Registry maps policy names to registrations. The zero value is not
// usable; use NewRegistry. A Registry is safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	regs map[string]Registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{regs: map[string]Registration{}}
}

// Register adds a policy to the registry. Names must be unique and
// nonempty, Build non-nil, and the processor range well-formed.
func (r *Registry) Register(reg Registration) error {
	if reg.Name == "" {
		return fmt.Errorf("engine: registration needs a name")
	}
	if reg.Build == nil {
		return fmt.Errorf("engine: policy %q registered without a constructor", reg.Name)
	}
	if reg.Caps.MinM < 1 {
		reg.Caps.MinM = 1
	}
	if reg.Caps.MaxM != 0 && reg.Caps.MaxM < reg.Caps.MinM {
		return fmt.Errorf("engine: policy %q has inverted processor range [%d, %d]",
			reg.Name, reg.Caps.MinM, reg.Caps.MaxM)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.regs[reg.Name]; dup {
		return fmt.Errorf("engine: policy %q already registered", reg.Name)
	}
	r.regs[reg.Name] = reg
	return nil
}

// Names returns the registered policy names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.regs))
	for name := range r.regs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registration, sorted by name.
func (r *Registry) All() []Registration {
	names := r.Names()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Registration, 0, len(names))
	for _, name := range names {
		out = append(out, r.regs[name])
	}
	return out
}

// Lookup returns the registration for name; an unknown name errors
// with the list of registered policies.
func (r *Registry) Lookup(name string) (Registration, error) {
	r.mu.RLock()
	reg, ok := r.regs[name]
	r.mu.RUnlock()
	if !ok {
		return Registration{}, fmt.Errorf("engine: unknown policy %q (registered: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return reg, nil
}

// validate resolves the spec's registration and checks the spec
// against it: the name must be registered, the environment must
// satisfy the policy's capabilities, and every parameter must be
// declared.
func (r *Registry) validate(spec Spec) (Registration, error) {
	reg, err := r.Lookup(spec.Name)
	if err != nil {
		return Registration{}, err
	}
	if spec.M < 1 {
		return Registration{}, fmt.Errorf("engine: spec for %q needs at least one processor, got m=%d", spec.Name, spec.M)
	}
	if err := (power.Model{Alpha: spec.Alpha}).Validate(); err != nil {
		return Registration{}, fmt.Errorf("engine: spec for %q: %w", spec.Name, err)
	}
	if err := reg.Caps.check(spec); err != nil {
		return Registration{}, err
	}
	for key := range spec.Params {
		if !reg.accepts(key) {
			accepted := "none"
			if len(reg.Params) > 0 {
				accepted = strings.Join(reg.Params, ", ")
			}
			return Registration{}, fmt.Errorf("engine: policy %q does not take parameter %q (accepted: %s)",
				spec.Name, key, accepted)
		}
	}
	return reg, nil
}

// Validate checks a spec against the registry without building.
func (r *Registry) Validate(spec Spec) error {
	_, err := r.validate(spec)
	return err
}

// New validates the spec and builds a fresh policy for one replay.
func (r *Registry) New(spec Spec) (Policy, error) {
	reg, err := r.validate(spec)
	if err != nil {
		return nil, err
	}
	p, err := reg.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("engine: building %q: %w", spec.Name, err)
	}
	return p, nil
}

// --- Default registry and built-in policies ---

var defaultRegistry = newBuiltinRegistry()

// DefaultRegistry returns the process-wide registry holding the
// built-in policies plus anything added through Register.
func DefaultRegistry() *Registry { return defaultRegistry }

// Register adds a policy to the default registry (see Registry.Register).
func Register(reg Registration) error { return defaultRegistry.Register(reg) }

// New builds a policy from the default registry (see Registry.New).
func New(spec Spec) (Policy, error) { return defaultRegistry.New(spec) }

// batchShim registers a whole-instance algorithm behind the buffering
// adapter; the registry labels it batch (or clairvoyant) so reports
// can tell honest per-arrival latency from buffering.
func batchShim(name string, run func(*job.Instance, power.Model) (*sched.Schedule, error)) func(Spec) (Policy, error) {
	return func(spec Spec) (Policy, error) {
		return &batchPolicy{name: name, m: spec.M, pm: spec.PowerModel(), run: run}, nil
	}
}

func newBuiltinRegistry() *Registry {
	r := NewRegistry()
	must := func(reg Registration) {
		if err := r.Register(reg); err != nil {
			panic(err)
		}
	}
	must(Registration{
		Name:    "pd",
		Summary: "the paper's primal-dual algorithm (certified α^α-competitive)",
		Caps:    Caps{MinM: 1, Profit: true, Online: true},
		Params:  []string{"delta"},
		Build: func(spec Spec) (Policy, error) {
			var opts []core.Option
			if d, ok := spec.Params["delta"]; ok {
				if d <= 0 {
					return nil, fmt.Errorf("delta must be positive, got %v", d)
				}
				opts = append(opts, core.WithDelta(d))
			}
			return newPD(spec.M, spec.PowerModel(), opts...), nil
		},
	})
	must(Registration{
		Name:    "cll",
		Summary: "Chan-Lam-Li, the single-processor profitable baseline",
		Caps:    Caps{MinM: 1, MaxM: 1, Profit: true},
		Build: batchShim("cll", func(in *job.Instance, pm power.Model) (*sched.Schedule, error) {
			res, err := cll.Run(in, pm)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		}),
	})
	must(Registration{
		Name:    "oa",
		Summary: "Optimal Available, replanning the staircase per arrival",
		Caps:    Caps{MinM: 1, MaxM: 1, Online: true},
		Build: func(Spec) (Policy, error) {
			return &onlinePolicy{name: "oa", s: yds.NewOASession()}, nil
		},
	})
	must(Registration{
		Name:    "avr",
		Summary: "Average Rate, accumulating density increments per arrival",
		Caps:    Caps{MinM: 1, MaxM: 1, Online: true},
		Build: func(Spec) (Policy, error) {
			return &onlinePolicy{name: "avr", s: yds.NewAVRSession()}, nil
		},
	})
	must(Registration{
		Name:    "qoa",
		Summary: "qOA, the OA staircase sped up by q = 2 - 1/α",
		Caps:    Caps{MinM: 1, MaxM: 1, Online: true},
		Build: func(spec Spec) (Policy, error) {
			return &onlinePolicy{name: "qoa", s: yds.NewQOASession(spec.PowerModel())}, nil
		},
	})
	must(Registration{
		Name:    "bkp",
		Summary: "Bansal-Kimbrel-Pruhs, simulated on the interval grid",
		Caps:    Caps{MinM: 1, MaxM: 1},
		Build: batchShim("bkp", func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
			return yds.BKP(in)
		}),
	})
	must(Registration{
		Name:    "moa",
		Summary: "multiprocessor Optimal Available (Albers et al.)",
		Caps:    Caps{MinM: 1},
		Build: batchShim("moa", func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
			return moa.Run(in)
		}),
	})
	must(Registration{
		Name:    "yds",
		Summary: "the exact offline optimum of Yao, Demers and Shenker",
		Caps:    Caps{MinM: 1, MaxM: 1, Clairvoyant: true},
		Build: batchShim("yds", func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
			return yds.YDS(in)
		}),
	})
	must(Registration{
		Name:    "opt",
		Summary: "exact accept-set enumeration (exponential; small traces)",
		Caps:    Caps{MinM: 1, Profit: true, Clairvoyant: true},
		Build: func(spec Spec) (Policy, error) {
			p := &optPolicy{}
			p.name, p.m, p.pm = "opt", spec.M, spec.PowerModel()
			p.run = func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
				sol, err := opt.Integral(in)
				if err != nil {
					return nil, err
				}
				p.gap = sol.Cost - sol.LowerBound
				return sol.Schedule, nil
			}
			return p, nil
		},
	})
	return r
}

// optPolicy is the batch shim around the exponential exact solver; it
// additionally remembers the certified optimality gap for reporting.
type optPolicy struct {
	batchPolicy
	gap float64
}

// OptimalityGap returns cost minus the certified lower bound of the
// last Close (zero before planning).
func (p *optPolicy) OptimalityGap() float64 { return p.gap }
