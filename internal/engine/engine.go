// Package engine provides the online replay driver: it feeds a job
// trace to any scheduling policy in release order, measures per-arrival
// decision latency, verifies the produced schedule independently, and
// reports a uniform result. It is the seam where downstream users plug
// in their own policies next to the built-in ones (PD, CLL, OA,
// multiprocessor OA, ...).
package engine

import (
	"fmt"
	"time"

	"repro/internal/cll"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/moa"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/yds"
)

// Policy is an online scheduling algorithm: it receives jobs one by one
// in release order and finally emits a schedule. Implementations may
// reject jobs (profit model) or must finish everything (classical
// model) — the engine only cares that the final schedule verifies.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Arrive hands the policy the next job; jobs arrive in
	// nondecreasing release order.
	Arrive(j job.Job) error
	// Close finalises the run and returns the complete schedule.
	Close() (*sched.Schedule, error)
}

// Result is the uniform outcome of one replay.
type Result struct {
	Policy    string
	Schedule  *sched.Schedule
	Energy    float64
	LostValue float64
	Cost      float64
	Rejected  int
	// MaxArrive and TotalArrive measure the policy's decision latency
	// (wall clock) — the online algorithm's own overhead.
	MaxArrive, TotalArrive time.Duration
}

// Replay drives the policy over the instance and verifies the result.
func Replay(in *job.Instance, p Policy) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	inst := in.Clone()
	inst.Normalize()
	res := &Result{Policy: p.Name()}
	for _, j := range inst.Jobs {
		start := time.Now()
		if err := p.Arrive(j); err != nil {
			return nil, fmt.Errorf("engine: %s rejected arrival of job %d: %w", p.Name(), j.ID, err)
		}
		d := time.Since(start)
		res.TotalArrive += d
		if d > res.MaxArrive {
			res.MaxArrive = d
		}
	}
	s, err := p.Close()
	if err != nil {
		return nil, fmt.Errorf("engine: %s close: %w", p.Name(), err)
	}
	if err := sched.Verify(inst, s); err != nil {
		return nil, fmt.Errorf("engine: %s produced an infeasible schedule: %w", p.Name(), err)
	}
	pm := power.Model{Alpha: inst.Alpha}
	res.Schedule = s
	res.Energy = s.Energy(pm)
	res.LostValue = s.LostValue(inst)
	res.Cost = res.Energy + res.LostValue
	res.Rejected = len(s.Rejected)
	return res, nil
}

// --- Built-in policy adapters ---

// pdPolicy adapts core.Scheduler.
type pdPolicy struct {
	s *core.Scheduler
}

// PD returns the paper's algorithm as an engine policy.
func PD(m int, pm power.Model, opts ...core.Option) Policy {
	return &pdPolicy{s: core.New(m, pm, opts...)}
}

func (p *pdPolicy) Name() string { return "pd" }

func (p *pdPolicy) Arrive(j job.Job) error {
	_, err := p.s.Arrive(j)
	return err
}

func (p *pdPolicy) Close() (*sched.Schedule, error) { return p.s.Schedule(), nil }

// batchPolicy adapts whole-instance algorithms (they see arrivals only
// through the recorded instance and plan at Close). Their per-arrival
// latency is not meaningful; Replay still measures the buffering cost.
type batchPolicy struct {
	name string
	m    int
	pm   power.Model
	jobs []job.Job
	run  func(*job.Instance, power.Model) (*sched.Schedule, error)
}

func (b *batchPolicy) Name() string { return b.name }

func (b *batchPolicy) Arrive(j job.Job) error {
	b.jobs = append(b.jobs, j)
	return nil
}

func (b *batchPolicy) Close() (*sched.Schedule, error) {
	in := &job.Instance{M: b.m, Alpha: b.pm.Alpha, Jobs: b.jobs}
	return b.run(in, b.pm)
}

// CLL returns the Chan-Lam-Li policy (single processor).
func CLL(pm power.Model) Policy {
	return &batchPolicy{name: "cll", m: 1, pm: pm,
		run: func(in *job.Instance, pm power.Model) (*sched.Schedule, error) {
			r, err := cll.Run(in, pm)
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		}}
}

// OA returns the classical Optimal Available policy (single processor,
// finish-all: all values must be +Inf or completion is still enforced).
func OA(pm power.Model) Policy {
	return &batchPolicy{name: "oa", m: 1, pm: pm,
		run: func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
			return yds.OA(in)
		}}
}

// MOA returns the multiprocessor Optimal Available policy (finish-all).
func MOA(m int, pm power.Model) Policy {
	return &batchPolicy{name: "moa", m: m, pm: pm,
		run: func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
			return moa.Run(in)
		}}
}

// YDSOffline returns the exact offline optimum as a policy: it buffers
// the whole trace and plans at Close. It is the clairvoyant baseline
// the online policies race against (single processor, finish-all).
func YDSOffline(pm power.Model) Policy {
	return &batchPolicy{name: "yds", m: 1, pm: pm,
		run: func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
			return yds.YDS(in)
		}}
}

// AVR returns the Average Rate policy (single processor, finish-all).
func AVR(pm power.Model) Policy {
	return &batchPolicy{name: "avr", m: 1, pm: pm,
		run: func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
			return yds.AVR(in)
		}}
}

// BKP returns the Bansal-Kimbrel-Pruhs policy (single processor,
// finish-all).
func BKP(pm power.Model) Policy {
	return &batchPolicy{name: "bkp", m: 1, pm: pm,
		run: func(in *job.Instance, _ power.Model) (*sched.Schedule, error) {
			return yds.BKP(in)
		}}
}

// QOA returns the qOA policy, OA sped up by q = 2 - 1/α (single
// processor, finish-all).
func QOA(pm power.Model) Policy {
	return &batchPolicy{name: "qoa", m: 1, pm: pm,
		run: func(in *job.Instance, pm power.Model) (*sched.Schedule, error) {
			return yds.QOA(in, pm)
		}}
}
