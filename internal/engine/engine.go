// Package engine provides the online replay driver and the policy
// registry: it feeds a job trace to any scheduling policy in release
// order, measures per-arrival decision latency, verifies the produced
// schedule independently, and reports a uniform result. Policies are
// resolved by declarative Spec through a Registry carrying capability
// metadata (processor range, profit vs finish-all model, online vs
// batch vs clairvoyant), so callers never touch per-algorithm
// constructors; downstream users plug their own policies in next to
// the built-in ones (PD, CLL, OA, multiprocessor OA, ...) by
// registering them under a name.
package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/yds"
)

// Policy is an online scheduling algorithm: it receives jobs one by one
// in release order and finally emits a schedule. Implementations may
// reject jobs (profit model) or must finish everything (classical
// model) — the engine only cares that the final schedule verifies.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Arrive hands the policy the next job; jobs arrive in
	// nondecreasing release order.
	Arrive(j job.Job) error
	// Close finalises the run and returns the complete schedule.
	Close() (*sched.Schedule, error)
}

// Snapshot is a mid-stream observation of a policy's live state,
// taken between arrivals without disturbing the run. The JSON tags
// are the stable wire names of the serving daemon's snapshot endpoint.
type Snapshot struct {
	// At is the release time of the latest arrival (the frontier).
	At float64 `json:"at"`
	// Arrivals counts jobs handed to the policy so far.
	Arrivals int `json:"arrivals"`
	// Pending counts jobs with unfinished work in the live state.
	Pending int `json:"pending"`
	// PendingWork is the total unfinished work.
	PendingWork float64 `json:"pendingWork"`
	// Speed is the speed the current plan runs at the frontier.
	Speed float64 `json:"speed"`
	// Buffered reports that the policy has not planned anything yet —
	// it buffers the trace and plans only at Close, so Pending and
	// PendingWork describe the buffered backlog and Speed is zero.
	Buffered bool `json:"buffered,omitempty"`
}

// Session extends Policy with mid-stream observability: a truly online
// policy maintains its plan per arrival and can report it at any
// point. All built-in policies implement Session; for buffering shims
// the snapshot shows the backlog with Buffered set.
type Session interface {
	Policy
	Snapshot() Snapshot
}

// SessionOf reports the policy's Session face, if it has one.
func SessionOf(p Policy) (Session, bool) {
	s, ok := p.(Session)
	return s, ok
}

// BatchArriver is an optional Policy face for the batched ingest
// path: absorb a run of release-ordered arrivals in one call,
// returning how many were fully absorbed. On an error, jobs js[:n]
// are applied and the rest are not; implementations must leave the
// emitted schedule byte-identical to feeding the same jobs through
// Arrive one at a time (differential tests pin this for every
// built-in). Policies without this face are driven by a plain loop.
type BatchArriver interface {
	ArriveBatch(js []job.Job) (n int, err error)
}

// Buffered marks policies that buffer the whole trace and plan only at
// Close (batch shims around whole-instance algorithms). Replay zeroes
// their per-arrival latency columns — the interesting cost is PlanTime.
type Buffered interface {
	Buffered() bool
}

// Result is the uniform outcome of one replay. The JSON tags are the
// stable wire names of the serving daemon's close endpoint; durations
// marshal as integer nanoseconds (encoding/json's time.Duration
// default).
type Result struct {
	Policy    string          `json:"policy"`
	Schedule  *sched.Schedule `json:"schedule,omitempty"`
	Energy    float64         `json:"energy"`
	LostValue float64         `json:"lostValue"`
	Cost      float64         `json:"cost"`
	Rejected  int             `json:"rejected"`
	// MaxArrive and TotalArrive measure the policy's decision latency
	// (wall clock) — the online algorithm's own per-arrival overhead.
	// For Buffered policies both are zero: an append to a buffer says
	// nothing about the algorithm, so publishing it would be
	// misleading.
	MaxArrive   time.Duration `json:"maxArrive"`
	TotalArrive time.Duration `json:"totalArrive"`
	// PlanTime is the wall clock spent in Close — for buffered and
	// clairvoyant policies this is where all planning happens; for
	// online policies it is the cost of finishing the last plan.
	PlanTime time.Duration `json:"planTime"`
}

// Replay drives the policy over the instance and verifies the result.
func Replay(in *job.Instance, p Policy) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	inst := in.Clone()
	inst.Normalize()
	res := &Result{Policy: p.Name()}
	for _, j := range inst.Jobs {
		start := time.Now()
		if err := p.Arrive(j); err != nil {
			return nil, fmt.Errorf("engine: %s rejected arrival of job %d: %w", p.Name(), j.ID, err)
		}
		d := time.Since(start)
		res.TotalArrive += d
		if d > res.MaxArrive {
			res.MaxArrive = d
		}
	}
	start := time.Now()
	s, err := p.Close()
	res.PlanTime = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("engine: %s close: %w", p.Name(), err)
	}
	if b, ok := p.(Buffered); ok && b.Buffered() {
		res.MaxArrive, res.TotalArrive = 0, 0
	}
	if err := sched.Verify(inst, s); err != nil {
		return nil, fmt.Errorf("engine: %s produced an infeasible schedule: %w", p.Name(), err)
	}
	pm := power.Model{Alpha: inst.Alpha}
	res.Schedule = s
	res.Energy = s.Energy(pm)
	res.LostValue = s.LostValue(inst)
	res.Cost = res.Energy + res.LostValue
	res.Rejected = len(s.Rejected)
	return res, nil
}

// --- Built-in policy adapters ---

// pdPolicy adapts core.Scheduler, the paper's truly-online algorithm.
type pdPolicy struct {
	s        *core.Scheduler
	arrivals int
	lastAt   float64
}

func newPD(m int, pm power.Model, opts ...core.Option) *pdPolicy {
	return &pdPolicy{s: core.New(m, pm, opts...)}
}

func (p *pdPolicy) Name() string { return "pd" }

func (p *pdPolicy) Arrive(j job.Job) error {
	_, err := p.s.Arrive(j)
	if err == nil {
		p.arrivals++
		p.lastAt = j.Release
	}
	return err
}

func (p *pdPolicy) Close() (*sched.Schedule, error) { return p.s.Schedule(), nil }

// DualValue exposes PD's dual lower bound g(λ̃) for certificate
// reporting (the CLI discovers it by interface assertion).
func (p *pdPolicy) DualValue() float64 { return p.s.DualValue() }

// IntervalStates exposes PD's per-interval primal state for -dump.
func (p *pdPolicy) IntervalStates() []core.IntervalState { return p.s.Snapshot() }

// Snapshot reports PD's committed plan from the frontier on: work the
// partition still schedules at or after the last arrival. Within the
// frontier's own interval the remaining share is prorated by time.
func (p *pdPolicy) Snapshot() Snapshot {
	snap := Snapshot{At: p.lastAt, Arrivals: p.arrivals}
	pending := map[int]struct{}{}
	for _, st := range p.s.Snapshot() {
		if st.T1 <= p.lastAt {
			continue
		}
		frac := 1.0
		if st.T0 < p.lastAt {
			frac = (st.T1 - p.lastAt) / (st.T1 - st.T0)
		}
		ids := make([]int, 0, len(st.Load))
		for id := range st.Load {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			snap.PendingWork += st.Load[id] * frac
			pending[id] = struct{}{}
		}
		if st.T0 <= p.lastAt && p.lastAt < st.T1 {
			for _, id := range ids {
				snap.Speed += st.Speeds[id]
			}
		}
	}
	snap.Pending = len(pending)
	return snap
}

// liveSession is the shape of the incremental planners in yds.
type liveSession interface {
	Arrive(job.Job) error
	Close() (*sched.Schedule, error)
	State() yds.SessionState
}

// onlinePolicy adapts a yds incremental session: per-arrival latency
// is the algorithm's real replanning cost, and snapshots observe the
// live staircase/density state.
type onlinePolicy struct {
	name string
	s    liveSession
}

func (p *onlinePolicy) Name() string { return p.name }

func (p *onlinePolicy) Arrive(j job.Job) error { return p.s.Arrive(j) }

// ArriveBatch forwards the batched ingest path to the session's own
// batch entry point when it has one (all yds sessions do).
func (p *onlinePolicy) ArriveBatch(js []job.Job) (int, error) {
	if ba, ok := p.s.(interface {
		ArriveBatch([]job.Job) (int, error)
	}); ok {
		return ba.ArriveBatch(js)
	}
	for i := range js {
		if err := p.s.Arrive(js[i]); err != nil {
			return i, err
		}
	}
	return len(js), nil
}

func (p *onlinePolicy) Close() (*sched.Schedule, error) { return p.s.Close() }

func (p *onlinePolicy) Snapshot() Snapshot {
	st := p.s.State()
	return Snapshot{
		At: st.Time, Arrivals: st.Arrivals, Pending: st.Pending,
		PendingWork: st.PendingWork, Speed: st.Speed,
	}
}

// batchPolicy adapts whole-instance algorithms (they see arrivals only
// through the recorded instance and plan at Close). Their per-arrival
// latency is meaningless, so Replay reports their cost as PlanTime.
type batchPolicy struct {
	name string
	m    int
	pm   power.Model
	jobs []job.Job
	run  func(*job.Instance, power.Model) (*sched.Schedule, error)
}

func (b *batchPolicy) Name() string { return b.name }

func (b *batchPolicy) Buffered() bool { return true }

func (b *batchPolicy) Arrive(j job.Job) error {
	b.jobs = append(b.jobs, j)
	return nil
}

// ArriveBatch buffers the whole run in one append.
func (b *batchPolicy) ArriveBatch(js []job.Job) (int, error) {
	b.jobs = append(b.jobs, js...)
	return len(js), nil
}

func (b *batchPolicy) Close() (*sched.Schedule, error) {
	in := &job.Instance{M: b.m, Alpha: b.pm.Alpha, Jobs: b.jobs}
	return b.run(in, b.pm)
}

// Snapshot shows the buffered backlog: nothing is planned before Close.
func (b *batchPolicy) Snapshot() Snapshot {
	snap := Snapshot{Arrivals: len(b.jobs), Pending: len(b.jobs), Buffered: true}
	if n := len(b.jobs); n > 0 {
		snap.At = b.jobs[n-1].Release
	}
	for _, j := range b.jobs {
		snap.PendingWork += j.Work
	}
	return snap
}
