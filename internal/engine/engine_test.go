package engine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/sched"
	"repro/internal/workload"
)

// mustNew resolves a spec through the default registry or fails the
// test — the construction path every test exercises.
func mustNew(t testing.TB, spec Spec) Policy {
	t.Helper()
	p, err := New(spec)
	if err != nil {
		t.Fatalf("New(%+v): %v", spec, err)
	}
	return p
}

func TestReplayPD(t *testing.T) {
	in := workload.Uniform(workload.Config{N: 20, M: 2, Alpha: 2, Seed: 1})
	res, err := Replay(in, mustNew(t, Spec{Name: "pd", M: 2, Alpha: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "pd" {
		t.Fatalf("policy name %q", res.Policy)
	}
	if res.Cost <= 0 || res.Cost != res.Energy+res.LostValue {
		t.Fatalf("inconsistent result %+v", res)
	}
	if res.TotalArrive < res.MaxArrive {
		t.Fatal("latency accounting broken")
	}
}

func TestReplayMatchesDirectRun(t *testing.T) {
	// The engine must not change algorithm behaviour: PD through the
	// engine equals core.Run.
	in := workload.Bursty(workload.Config{N: 30, M: 3, Alpha: 2.5, Seed: 2})
	res, err := Replay(in, mustNew(t, Spec{Name: "pd", M: 3, Alpha: 2.5}))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := directPDCost(in)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Close(res.Cost, direct, 1e-9) {
		t.Fatalf("engine cost %v vs direct %v", res.Cost, direct)
	}
}

func TestReplayAllPolicies(t *testing.T) {
	in := workload.Poisson(workload.Config{N: 15, M: 1, Alpha: 2, Seed: 3, ValueScale: math.Inf(1)})
	for _, name := range []string{"pd", "cll", "oa", "moa", "avr", "bkp", "qoa", "yds"} {
		res, err := Replay(in, mustNew(t, Spec{Name: name, M: 1, Alpha: 2}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.LostValue != 0 {
			t.Fatalf("%s lost value on an infinite-value instance", name)
		}
	}
}

// TestLatencySemantics pins the honest-latency contract: online
// policies report real per-arrival work; buffered policies report zero
// arrive columns and their full cost as PlanTime.
func TestLatencySemantics(t *testing.T) {
	in := workload.Uniform(workload.Config{N: 40, M: 1, Alpha: 2, Seed: 11, ValueScale: math.Inf(1)})
	for _, name := range []string{"pd", "oa", "avr", "qoa"} {
		res, err := Replay(in, mustNew(t, Spec{Name: name, M: 1, Alpha: 2}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TotalArrive <= 0 || res.MaxArrive <= 0 {
			t.Fatalf("%s is online but reported no per-arrival latency: %+v", name, res)
		}
	}
	for _, name := range []string{"cll", "yds", "bkp", "moa"} {
		res, err := Replay(in, mustNew(t, Spec{Name: name, M: 1, Alpha: 2}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TotalArrive != 0 || res.MaxArrive != 0 {
			t.Fatalf("%s buffers, its arrive columns must be zeroed: %+v", name, res)
		}
		if res.PlanTime <= 0 {
			t.Fatalf("%s must report its planning cost in PlanTime: %+v", name, res)
		}
	}
}

func TestReplayRejectsInvalidInstance(t *testing.T) {
	if _, err := Replay(&job.Instance{M: 0, Alpha: 2}, mustNew(t, Spec{Name: "pd", M: 1, Alpha: 2})); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

// failingPolicy produces an infeasible schedule to prove the engine's
// verification actually bites.
type failingPolicy struct{}

func (failingPolicy) Name() string         { return "broken" }
func (failingPolicy) Arrive(job.Job) error { return nil }
func (failingPolicy) Close() (*sched.Schedule, error) {
	return &sched.Schedule{M: 1}, nil // finishes nothing, rejects nothing
}

func TestReplayCatchesInfeasiblePolicy(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 5},
	}}
	if _, err := Replay(in, failingPolicy{}); err == nil {
		t.Fatal("infeasible policy passed verification")
	}
}

func directPDCost(in *job.Instance) (float64, error) {
	r, err := core.Run(in)
	if err != nil {
		return 0, err
	}
	return r.Cost, nil
}

// TestSessionSnapshotsMidStream drives the Session face of every
// built-in policy mid-replay: online policies expose their live plan
// and backlog; buffering shims expose the buffered backlog with the
// Buffered label set.
func TestSessionSnapshotsMidStream(t *testing.T) {
	jobs := []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: math.Inf(1)},
		{ID: 1, Release: 0.5, Deadline: 3, Work: 2, Value: math.Inf(1)},
	}
	for _, tc := range []struct {
		name     string
		buffered bool
	}{
		{"pd", false}, {"oa", false}, {"avr", false}, {"qoa", false},
		{"cll", true}, {"yds", true}, {"bkp", true}, {"moa", true},
	} {
		p := mustNew(t, Spec{Name: tc.name, M: 1, Alpha: 2})
		s, ok := SessionOf(p)
		if !ok {
			t.Fatalf("%s: built-in policy must implement Session", tc.name)
		}
		for _, j := range jobs {
			if err := s.Arrive(j); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		}
		snap := s.Snapshot()
		if snap.Buffered != tc.buffered {
			t.Fatalf("%s: Buffered = %v, want %v", tc.name, snap.Buffered, tc.buffered)
		}
		if snap.Arrivals != 2 || snap.At != 0.5 {
			t.Fatalf("%s: frontier not tracked: %+v", tc.name, snap)
		}
		if snap.PendingWork <= 0 {
			t.Fatalf("%s: snapshot lost the backlog: %+v", tc.name, snap)
		}
		if !tc.buffered && tc.name != "pd" && snap.Speed <= 0 {
			t.Fatalf("%s: online policy with work pending must plan a speed: %+v", tc.name, snap)
		}
		if tc.buffered && snap.Speed != 0 {
			t.Fatalf("%s: buffered policy cannot have planned a speed: %+v", tc.name, snap)
		}
		if _, err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", tc.name, err)
		}
	}
}

// TestPDSnapshotObservesPlan: PD commits work into its partition at
// arrival, so the snapshot must see pending planned work and a
// positive speed at the frontier.
func TestPDSnapshotObservesPlan(t *testing.T) {
	p := mustNew(t, Spec{Name: "pd", M: 1, Alpha: 2})
	s, _ := SessionOf(p)
	if err := s.Arrive(job.Job{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Pending != 1 || snap.PendingWork <= 0 || snap.Speed <= 0 {
		t.Fatalf("PD snapshot blind to its own plan: %+v", snap)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
