package engine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestReplayPD(t *testing.T) {
	in := workload.Uniform(workload.Config{N: 20, M: 2, Alpha: 2, Seed: 1})
	pm := power.New(2)
	res, err := Replay(in, PD(2, pm))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "pd" {
		t.Fatalf("policy name %q", res.Policy)
	}
	if res.Cost <= 0 || res.Cost != res.Energy+res.LostValue {
		t.Fatalf("inconsistent result %+v", res)
	}
	if res.TotalArrive < res.MaxArrive {
		t.Fatal("latency accounting broken")
	}
}

func TestReplayMatchesDirectRun(t *testing.T) {
	// The engine must not change algorithm behaviour: PD through the
	// engine equals core.Run.
	in := workload.Bursty(workload.Config{N: 30, M: 3, Alpha: 2.5, Seed: 2})
	pm := power.New(2.5)
	res, err := Replay(in, PD(3, pm))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := directPDCost(in)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Close(res.Cost, direct, 1e-9) {
		t.Fatalf("engine cost %v vs direct %v", res.Cost, direct)
	}
}

func TestReplayAllPolicies(t *testing.T) {
	pm := power.New(2)
	in := workload.Poisson(workload.Config{N: 15, M: 1, Alpha: 2, Seed: 3, ValueScale: math.Inf(1)})
	for _, p := range []Policy{PD(1, pm), CLL(pm), OA(pm), MOA(1, pm)} {
		res, err := Replay(in, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.LostValue != 0 {
			t.Fatalf("%s lost value on an infinite-value instance", p.Name())
		}
	}
}

func TestReplayRejectsInvalidInstance(t *testing.T) {
	if _, err := Replay(&job.Instance{M: 0, Alpha: 2}, PD(1, power.New(2))); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

// failingPolicy produces an infeasible schedule to prove the engine's
// verification actually bites.
type failingPolicy struct{}

func (failingPolicy) Name() string         { return "broken" }
func (failingPolicy) Arrive(job.Job) error { return nil }
func (failingPolicy) Close() (*sched.Schedule, error) {
	return &sched.Schedule{M: 1}, nil // finishes nothing, rejects nothing
}

func TestReplayCatchesInfeasiblePolicy(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 5},
	}}
	if _, err := Replay(in, failingPolicy{}); err == nil {
		t.Fatal("infeasible policy passed verification")
	}
}

func directPDCost(in *job.Instance) (float64, error) {
	r, err := core.Run(in)
	if err != nil {
		return 0, err
	}
	return r.Cost, nil
}
