// Concurrent replay: Race fans one trace across many policies and
// ReplayAll fans many traces across a bounded worker pool. Every run
// works on its own clone of the instance (Replay clones), and ReplayAll
// builds a fresh policy per trace through the Factory; Race requires
// the caller to pass distinct policy values, since policies are
// stateful. With that isolation results are byte-identical to the
// sequential path.

package engine

import (
	"context"
	"fmt"

	"repro/internal/job"
	"repro/internal/pool"
	"repro/internal/sched"
)

// Factory constructs a fresh Policy for one isolated run. Policies are
// stateful (they accumulate arrivals), so concurrent replays must not
// share one instance; the factory is invoked once per trace.
type Factory func() Policy

// Race replays the same instance through every policy concurrently and
// returns the results in the order the policies were given. Each
// policy runs against its own clone of the instance; the policies
// themselves must be distinct values (they are stateful — do not pass
// the same Policy twice or reuse one across calls). Failed policies
// leave a nil slot; their errors come back joined, each labelled with
// the policy's name.
func Race(in *job.Instance, policies ...Policy) ([]*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	results := make([]*Result, len(policies))
	err := pool.Run(len(policies), 0, func(i int) error {
		res, err := Replay(in, policies[i])
		if err != nil {
			return fmt.Errorf("race %s: %w", policies[i].Name(), err)
		}
		results[i] = res
		return nil
	})
	return results, err
}

// ReplayAll replays every instance through a fresh policy from the
// factory on at most workers goroutines (≤ 0 means GOMAXPROCS) and
// returns the results in input order. Errors do not abort the batch:
// every instance is attempted, failed slots stay nil, and all errors
// are returned joined, each labelled with its trace index.
func ReplayAll(instances []*job.Instance, mk Factory, workers int) ([]*Result, error) {
	return ReplayAllCtx(context.Background(), instances, mk, workers)
}

// ReplayAllCtx is ReplayAll with cooperative cancellation: once ctx is
// done no further traces are started (in-flight replays finish and
// their results are kept), unstarted slots stay nil, and ctx.Err()
// comes back joined with the per-trace errors. The serving daemon's
// drain path uses this to abandon queued replays on shutdown.
func ReplayAllCtx(ctx context.Context, instances []*job.Instance, mk Factory, workers int) ([]*Result, error) {
	results := make([]*Result, len(instances))
	err := pool.RunCtx(ctx, len(instances), workers, func(i int) error {
		res, err := Replay(instances[i], mk())
		if err != nil {
			return fmt.Errorf("trace %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	return results, err
}

// RaceSpecs resolves every spec through the registry (fresh, isolated
// policy per spec) and races them over the instance. Incompatible or
// unknown specs fail before anything runs.
func (r *Registry) RaceSpecs(in *job.Instance, specs ...Spec) ([]*Result, error) {
	policies := make([]Policy, len(specs))
	for i, spec := range specs {
		p, err := r.New(spec)
		if err != nil {
			return nil, err
		}
		policies[i] = p
	}
	return Race(in, policies...)
}

// RaceSpecs races specs resolved through the default registry.
func RaceSpecs(in *job.Instance, specs ...Spec) ([]*Result, error) {
	return DefaultRegistry().RaceSpecs(in, specs...)
}

// ReplayAllSpec replays every instance through a fresh policy built
// from the spec (the registry is the Factory). The spec is validated
// once up front so an incompatible spec fails fast instead of once per
// trace.
func (r *Registry) ReplayAllSpec(instances []*job.Instance, spec Spec, workers int) ([]*Result, error) {
	return r.ReplayAllSpecCtx(context.Background(), instances, spec, workers)
}

// ReplayAllSpecCtx is ReplayAllSpec with cooperative cancellation (see
// ReplayAllCtx).
func (r *Registry) ReplayAllSpecCtx(ctx context.Context, instances []*job.Instance, spec Spec, workers int) ([]*Result, error) {
	if _, err := r.New(spec); err != nil {
		return nil, err
	}
	return ReplayAllCtx(ctx, instances, func() Policy {
		p, err := r.New(spec)
		if err != nil {
			// The up-front build succeeded, so a per-trace failure
			// means a nondeterministic custom builder; surface it
			// through the per-trace error path instead of panicking.
			return &brokenPolicy{name: spec.Name, err: err}
		}
		return p
	}, workers)
}

// ReplayAllSpec replays a fleet through the default registry.
func ReplayAllSpec(instances []*job.Instance, spec Spec, workers int) ([]*Result, error) {
	return DefaultRegistry().ReplayAllSpec(instances, spec, workers)
}

// brokenPolicy reports a construction error at first use.
type brokenPolicy struct {
	name string
	err  error
}

func (b *brokenPolicy) Name() string                    { return b.name }
func (b *brokenPolicy) Arrive(job.Job) error            { return b.err }
func (b *brokenPolicy) Close() (*sched.Schedule, error) { return nil, b.err }
