// Concurrent replay: Race fans one trace across many policies and
// ReplayAll fans many traces across a bounded worker pool. Every run
// works on its own clone of the instance (Replay clones), and ReplayAll
// builds a fresh policy per trace through the Factory; Race requires
// the caller to pass distinct policy values, since policies are
// stateful. With that isolation results are byte-identical to the
// sequential path.

package engine

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/pool"
)

// Factory constructs a fresh Policy for one isolated run. Policies are
// stateful (they accumulate arrivals), so concurrent replays must not
// share one instance; the factory is invoked once per trace.
type Factory func() Policy

// Race replays the same instance through every policy concurrently and
// returns the results in the order the policies were given. Each
// policy runs against its own clone of the instance; the policies
// themselves must be distinct values (they are stateful — do not pass
// the same Policy twice or reuse one across calls). Failed policies
// leave a nil slot; their errors come back joined, each labelled with
// the policy's name.
func Race(in *job.Instance, policies ...Policy) ([]*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	results := make([]*Result, len(policies))
	err := pool.Run(len(policies), 0, func(i int) error {
		res, err := Replay(in, policies[i])
		if err != nil {
			return fmt.Errorf("race %s: %w", policies[i].Name(), err)
		}
		results[i] = res
		return nil
	})
	return results, err
}

// ReplayAll replays every instance through a fresh policy from the
// factory on at most workers goroutines (≤ 0 means GOMAXPROCS) and
// returns the results in input order. Errors do not abort the batch:
// every instance is attempted, failed slots stay nil, and all errors
// are returned joined, each labelled with its trace index.
func ReplayAll(instances []*job.Instance, mk Factory, workers int) ([]*Result, error) {
	results := make([]*Result, len(instances))
	err := pool.Run(len(instances), workers, func(i int) error {
		res, err := Replay(instances[i], mk())
		if err != nil {
			return fmt.Errorf("trace %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	return results, err
}
