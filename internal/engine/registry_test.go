package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
	"repro/internal/yds"
)

func TestEveryBuiltinConstructibleViaSpec(t *testing.T) {
	for _, name := range []string{"pd", "cll", "oa", "moa", "yds", "avr", "bkp", "qoa", "opt"} {
		p, err := New(Spec{Name: name, M: 1, Alpha: 2})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("New(%q) built a policy named %q", name, p.Name())
		}
	}
}

func TestUnknownNameListsRegistry(t *testing.T) {
	_, err := New(Spec{Name: "nope", M: 1, Alpha: 2})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, want := range []string{`"nope"`, "registered:", "pd", "oa", "yds"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-name error must mention %q: %v", want, err)
		}
	}
}

// TestCapabilityMismatches covers every refusal path of Validate: m
// out of range, invalid environment, undeclared parameters — and the
// compatible cases right next to them (moa with m=1 is fine, cll with
// m=4 is refused).
func TestCapabilityMismatches(t *testing.T) {
	if _, err := New(Spec{Name: "moa", M: 1, Alpha: 2}); err != nil {
		t.Fatalf("moa with m=1 must be fine: %v", err)
	}
	if _, err := New(Spec{Name: "moa", M: 16, Alpha: 2}); err != nil {
		t.Fatalf("moa is unbounded above: %v", err)
	}
	for _, name := range []string{"cll", "oa", "avr", "bkp", "qoa", "yds"} {
		_, err := New(Spec{Name: name, M: 4, Alpha: 2})
		if err == nil {
			t.Fatalf("%s with m=4 must be refused", name)
		}
		for _, want := range []string{name, "m=4", "range"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("%s refusal must explain itself (missing %q): %v", name, want, err)
			}
		}
	}
	if _, err := New(Spec{Name: "pd", M: 0, Alpha: 2}); err == nil {
		t.Fatal("m=0 must be refused")
	}
	if _, err := New(Spec{Name: "pd", M: 1, Alpha: 1}); err == nil {
		t.Fatal("α ≤ 1 must be refused")
	}
	if _, err := New(Spec{Name: "pd", M: 1, Alpha: math.NaN()}); err == nil {
		t.Fatal("NaN α must be refused")
	}
	_, err := New(Spec{Name: "oa", M: 1, Alpha: 2, Params: map[string]float64{"delta": 0.5}})
	if err == nil {
		t.Fatal("oa does not take delta; spec must be refused")
	}
	if !strings.Contains(err.Error(), "delta") {
		t.Fatalf("parameter refusal must name the parameter: %v", err)
	}
	if _, err := New(Spec{Name: "pd", M: 1, Alpha: 2, Params: map[string]float64{"delta": -1}}); err == nil {
		t.Fatal("nonpositive delta must be refused")
	}
	if _, err := New(Spec{Name: "pd", M: 2, Alpha: 2.5, Params: map[string]float64{"delta": 0.4}}); err != nil {
		t.Fatalf("valid pd spec with delta refused: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	ok := Registration{Name: "x", Build: func(Spec) (Policy, error) { return failingPolicy{}, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Fatal("duplicate name must be refused")
	}
	if err := r.Register(Registration{Build: ok.Build}); err == nil {
		t.Fatal("empty name must be refused")
	}
	if err := r.Register(Registration{Name: "y"}); err == nil {
		t.Fatal("nil constructor must be refused")
	}
	if err := r.Register(Registration{Name: "z", Build: ok.Build, Caps: Caps{MinM: 4, MaxM: 2}}); err == nil {
		t.Fatal("inverted processor range must be refused")
	}
}

// TestCustomPolicyRegistration is the README's "add your own policy"
// flow: register by name, resolve by spec, replay, and appear in the
// listing with the declared capabilities.
func TestCustomPolicyRegistration(t *testing.T) {
	r := NewRegistry()
	err := r.Register(Registration{
		Name:    "reject-all",
		Summary: "rejects every job (pays all values)",
		Caps:    Caps{MinM: 1, Profit: true, Online: true},
		Build: func(spec Spec) (Policy, error) {
			return &rejectAll{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := workload.Uniform(workload.Config{N: 8, M: 1, Alpha: 2, Seed: 4})
	p, err := r.New(Spec{Name: "reject-all", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 8 || res.Energy != 0 {
		t.Fatalf("reject-all must pay only values: %+v", res)
	}
	found := false
	for _, reg := range r.All() {
		if reg.Name == "reject-all" && reg.Caps.Mode() == "online" && reg.Caps.Model() == "profit" {
			found = true
		}
	}
	if !found {
		t.Fatal("custom policy missing from the listing with its capabilities")
	}
}

type rejectAll struct {
	ids []int
}

func (r *rejectAll) Name() string { return "reject-all" }
func (r *rejectAll) Arrive(j job.Job) error {
	r.ids = append(r.ids, j.ID)
	return nil
}
func (r *rejectAll) Close() (*sched.Schedule, error) {
	return &sched.Schedule{M: 1, Rejected: r.ids}, nil
}

// TestIncrementalMatchesOldBatchAdapters pins the API redesign's core
// promise: the truly-online oa/avr/qoa policies produce schedules
// byte-identical to the previous batch adapters (a buffering shim over
// yds.OA / yds.AVR / yds.QOA) on random and heavy-tailed traces.
func TestIncrementalMatchesOldBatchAdapters(t *testing.T) {
	pm := power.New(2)
	oldAdapters := map[string]func() Policy{
		"oa": func() Policy {
			return &batchPolicy{name: "oa", m: 1, pm: pm,
				run: func(in *job.Instance, _ power.Model) (*sched.Schedule, error) { return yds.OA(in) }}
		},
		"avr": func() Policy {
			return &batchPolicy{name: "avr", m: 1, pm: pm,
				run: func(in *job.Instance, _ power.Model) (*sched.Schedule, error) { return yds.AVR(in) }}
		},
		"qoa": func() Policy {
			return &batchPolicy{name: "qoa", m: 1, pm: pm,
				run: func(in *job.Instance, pm power.Model) (*sched.Schedule, error) { return yds.QOA(in, pm) }}
		},
	}
	var traces []*job.Instance
	for seed := int64(1); seed <= 3; seed++ {
		traces = append(traces,
			workload.Uniform(workload.Config{N: 30, M: 1, Alpha: 2, Seed: seed, ValueScale: math.Inf(1)}),
			workload.HeavyTail(workload.Config{N: 30, M: 1, Alpha: 2, Seed: seed, ValueScale: math.Inf(1)}),
		)
	}
	for name, mkOld := range oldAdapters {
		for i, in := range traces {
			oldRes, err := Replay(in, mkOld())
			if err != nil {
				t.Fatalf("%s trace %d (batch): %v", name, i, err)
			}
			newRes, err := Replay(in, mustNew(t, Spec{Name: name, M: 1, Alpha: 2}))
			if err != nil {
				t.Fatalf("%s trace %d (incremental): %v", name, i, err)
			}
			if !bytes.Equal(scheduleBytes(t, oldRes), scheduleBytes(t, newRes)) {
				t.Fatalf("%s trace %d: incremental session diverges from the old batch adapter", name, i)
			}
		}
	}
}

func TestRaceSpecsMatchesIndividualNew(t *testing.T) {
	in := workload.Poisson(workload.Config{N: 15, M: 1, Alpha: 2, Seed: 8, ValueScale: math.Inf(1)})
	specs := []Spec{
		{Name: "pd", M: 1, Alpha: 2},
		{Name: "oa", M: 1, Alpha: 2},
		{Name: "yds", M: 1, Alpha: 2},
	}
	results, err := RaceSpecs(in, specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		solo, err := Replay(in, mustNew(t, spec))
		if err != nil {
			t.Fatal(err)
		}
		if results[i] == nil || !bytes.Equal(scheduleBytes(t, results[i]), scheduleBytes(t, solo)) {
			t.Fatalf("%s: raced result diverges from solo replay", spec.Name)
		}
	}
	if _, err := RaceSpecs(in, Spec{Name: "cll", M: 4, Alpha: 2}); err == nil {
		t.Fatal("incompatible spec must fail the race up front")
	}
}

func TestReplayAllSpec(t *testing.T) {
	fleet := workload.Fleet(workload.Uniform, workload.Config{
		N: 12, M: 1, Alpha: 2, Seed: 9, ValueScale: math.Inf(1),
	}, 4)
	results, err := ReplayAllSpec(fleet, Spec{Name: "oa", M: 1, Alpha: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || res.Policy != "oa" {
			t.Fatalf("trace %d: %+v", i, res)
		}
	}
	if _, err := ReplayAllSpec(fleet, Spec{Name: "oa", M: 3, Alpha: 2}, 2); err == nil {
		t.Fatal("incompatible spec must fail before the fleet runs")
	}
}

func TestCapsLabels(t *testing.T) {
	for _, tc := range []struct {
		caps   Caps
		mode   string
		model  string
		mrange string
	}{
		{Caps{MinM: 1, MaxM: 1, Online: true}, "online", "finish-all", "1"},
		{Caps{MinM: 1, Profit: true}, "batch", "profit", "≥1"},
		{Caps{MinM: 1, MaxM: 8, Clairvoyant: true}, "clairvoyant", "finish-all", "1–8"},
	} {
		if got := tc.caps.Mode(); got != tc.mode {
			t.Fatalf("mode %q, want %q", got, tc.mode)
		}
		if got := tc.caps.Model(); got != tc.model {
			t.Fatalf("model %q, want %q", got, tc.model)
		}
		if got := tc.caps.MRange(); got != tc.mrange {
			t.Fatalf("m-range %q, want %q", got, tc.mrange)
		}
	}
}

func TestOptPolicyReportsGap(t *testing.T) {
	in := workload.Uniform(workload.Config{N: 5, M: 1, Alpha: 2, Seed: 10, ValueScale: 1})
	p := mustNew(t, Spec{Name: "opt", M: 1, Alpha: 2})
	if _, err := Replay(in, p); err != nil {
		t.Fatal(err)
	}
	g, ok := p.(interface{ OptimalityGap() float64 })
	if !ok {
		t.Fatal("opt policy must expose its certified gap")
	}
	if gap := g.OptimalityGap(); math.IsNaN(gap) || gap < -1e-9 {
		t.Fatalf("implausible optimality gap %v", gap)
	}
}
