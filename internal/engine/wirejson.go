// Hand-rolled append-encoders for the engine wire types the WAL
// persists: a session-open record carries the Spec, a checkpoint
// carries the Spec plus the Snapshot taken at the cut. Both are pinned
// byte-identical to json.Marshal (tests diff them field-combination by
// field-combination), so a log written by the hot path decodes with
// plain encoding/json on the cold recovery path, and the recovery
// integrity check — replayed-state snapshot vs the snapshot stored at
// checkpoint time — can be a byte compare instead of a float-by-float
// tolerance argument.

package engine

import (
	"sort"
	"strconv"

	"repro/internal/job"
)

// AppendJSON appends the spec's JSON encoding to dst, byte-identical
// to json.Marshal: fields in declaration order, params omitted when
// empty and rendered with sorted keys (json.Marshal's map order).
func (s Spec) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"name":`...)
	dst = job.AppendString(dst, s.Name)
	dst = append(dst, `,"m":`...)
	dst = strconv.AppendInt(dst, int64(s.M), 10)
	dst = append(dst, `,"alpha":`...)
	dst = job.AppendFloat(dst, s.Alpha)
	if len(s.Params) > 0 {
		dst = append(dst, `,"params":{`...)
		keys := make([]string, 0, len(s.Params))
		for k := range s.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = job.AppendString(dst, k)
			dst = append(dst, ':')
			dst = job.AppendFloat(dst, s.Params[k])
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// AppendJSON appends the snapshot's JSON encoding to dst,
// byte-identical to json.Marshal (buffered carries omitempty, so a
// false value vanishes exactly as the reflective encoder drops it).
func (sn Snapshot) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"at":`...)
	dst = job.AppendFloat(dst, sn.At)
	dst = append(dst, `,"arrivals":`...)
	dst = strconv.AppendInt(dst, int64(sn.Arrivals), 10)
	dst = append(dst, `,"pending":`...)
	dst = strconv.AppendInt(dst, int64(sn.Pending), 10)
	dst = append(dst, `,"pendingWork":`...)
	dst = job.AppendFloat(dst, sn.PendingWork)
	dst = append(dst, `,"speed":`...)
	dst = job.AppendFloat(dst, sn.Speed)
	if sn.Buffered {
		dst = append(dst, `,"buffered":true`...)
	}
	return append(dst, '}')
}
