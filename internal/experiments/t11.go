// T11: every single-processor policy raced over a heavy-tailed fleet
// through the concurrent replay engine.

package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// T11PolicyRace fans a fleet of heavy-tailed finish-all traces through
// the registry's spec-based race: on each trace all policies run
// concurrently against the offline optimum (YDS), and the per-trace
// energy ratios are aggregated across the fleet, together with each
// policy's honest per-arrival latency (zero for batch shims, real
// replanning cost for the online sessions). This is the
// experiment-harness face of the concurrent benchmark subsystem — the
// same machinery cmd/profsched's -algos mode uses.
func T11PolicyRace(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	alpha := 2.0
	pm := power.New(alpha)
	fleet := workload.Fleet(workload.HeavyTail, workload.Config{
		N: sc.N * 2, M: 1, Alpha: alpha, Seed: 31000, ValueScale: math.Inf(1),
	}, 2*sc.Seeds)

	specs := []engine.Spec{
		{Name: "pd", M: 1, Alpha: alpha},
		{Name: "oa", M: 1, Alpha: alpha},
		{Name: "avr", M: 1, Alpha: alpha},
		{Name: "bkp", M: 1, Alpha: alpha},
		{Name: "qoa", M: 1, Alpha: alpha},
		{Name: "yds", M: 1, Alpha: alpha}, // the clairvoyant baseline, raced alongside
	}
	ratios := make(map[string][]float64)
	maxArrive := make(map[string]time.Duration)
	maxPlan := make(map[string]time.Duration)
	order := make([]string, 0, len(specs))
	for _, in := range fleet {
		results, err := engine.RaceSpecs(in, specs...)
		if err != nil {
			return nil, fmt.Errorf("T11: %w", err)
		}
		opt := results[len(results)-1].Energy // YDS is last
		if opt <= 0 {
			return nil, fmt.Errorf("T11: offline optimum has nonpositive energy %v", opt)
		}
		for _, r := range results {
			if _, seen := ratios[r.Policy]; !seen {
				order = append(order, r.Policy)
			}
			ratios[r.Policy] = append(ratios[r.Policy], r.Energy/opt)
			if r.MaxArrive > maxArrive[r.Policy] {
				maxArrive[r.Policy] = r.MaxArrive
			}
			if r.PlanTime > maxPlan[r.Policy] {
				maxPlan[r.Policy] = r.PlanTime
			}
		}
	}

	t := &stats.Table{
		Title:   "T11: policy race over a heavy-tailed fleet (engine.RaceSpecs, finish-all, α = 2)",
		Headers: []string{"policy", "mode", "traces", "E/OPT(geo)", "E/OPT(max)", "E/OPT(min)", "max arrive", "plan(max)", "bound α^α"},
		Notes: []string{
			"each trace is replayed by all policies concurrently with per-run isolation;",
			"OPT is the offline YDS schedule of the same trace, raced alongside;",
			"arrive latency is honest: real per-arrival replanning for online policies,",
			"zero for batch shims (their cost is plan time, measured at close)",
		},
	}
	reg := engine.DefaultRegistry()
	for _, name := range order {
		rs := ratios[name]
		sm := stats.Summarize(rs)
		if name != "yds" && sm.Min < 1-1e-6 {
			return nil, fmt.Errorf("T11: %s beats the offline optimum (min ratio %v)", name, sm.Min)
		}
		r, err := reg.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("T11: %w", err)
		}
		t.AddRow(name, r.Caps.Mode(), len(rs), stats.GeoMean(rs), sm.Max, sm.Min,
			maxArrive[name].String(), maxPlan[name].String(), pm.CompetitiveBound())
	}
	return t, nil
}
