// T11: every single-processor policy raced over a heavy-tailed fleet
// through the concurrent replay engine.

package experiments

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// T11PolicyRace fans a fleet of heavy-tailed finish-all traces through
// engine.Race: on each trace all policies run concurrently against the
// offline optimum (YDS), and the per-trace energy ratios are aggregated
// across the fleet. This is the experiment-harness face of the
// concurrent benchmark subsystem — the same Race/ReplayAll machinery
// cmd/profsched's -algos mode uses.
func T11PolicyRace(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	alpha := 2.0
	pm := power.New(alpha)
	fleet := workload.Fleet(workload.HeavyTail, workload.Config{
		N: sc.N * 2, M: 1, Alpha: alpha, Seed: 31000, ValueScale: math.Inf(1),
	}, 2*sc.Seeds)

	mks := []engine.Factory{
		func() engine.Policy { return engine.PD(1, pm) },
		func() engine.Policy { return engine.OA(pm) },
		func() engine.Policy { return engine.AVR(pm) },
		func() engine.Policy { return engine.BKP(pm) },
		func() engine.Policy { return engine.QOA(pm) },
		func() engine.Policy { return engine.YDSOffline(pm) },
	}
	ratios := make(map[string][]float64)
	order := make([]string, 0, len(mks))
	for _, in := range fleet {
		policies := make([]engine.Policy, len(mks))
		for i, mk := range mks {
			policies[i] = mk()
		}
		results, err := engine.Race(in, policies...)
		if err != nil {
			return nil, fmt.Errorf("T11: %w", err)
		}
		opt := results[len(results)-1].Energy // YDS is last
		if opt <= 0 {
			return nil, fmt.Errorf("T11: offline optimum has nonpositive energy %v", opt)
		}
		for _, r := range results {
			if _, seen := ratios[r.Policy]; !seen {
				order = append(order, r.Policy)
			}
			ratios[r.Policy] = append(ratios[r.Policy], r.Energy/opt)
		}
	}

	t := &stats.Table{
		Title:   "T11: policy race over a heavy-tailed fleet (engine.Race, finish-all, α = 2)",
		Headers: []string{"policy", "traces", "E/OPT(geo)", "E/OPT(max)", "E/OPT(min)", "bound α^α"},
		Notes: []string{
			"each trace is replayed by all policies concurrently with per-run isolation;",
			"OPT is the offline YDS schedule of the same trace, raced alongside",
		},
	}
	for _, name := range order {
		rs := ratios[name]
		sm := stats.Summarize(rs)
		if name != "yds" && sm.Min < 1-1e-6 {
			return nil, fmt.Errorf("T11: %s beats the offline optimum (min ratio %v)", name, sm.Min)
		}
		t.AddRow(name, len(rs), stats.GeoMean(rs), sm.Max, sm.Min, pm.CompetitiveBound())
	}
	return t, nil
}
