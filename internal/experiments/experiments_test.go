package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quick is a reduced scale for test speed.
var quick = Scale{Seeds: 2, N: 16}

func TestT1BoundHolds(t *testing.T) {
	tab, err := T1CertifiedRatio(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 { // 4 alphas × 4 machine counts
		t.Fatalf("want 16 rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio := parse(t, row[6])
		bound := parse(t, row[8])
		if ratio > bound*(1+1e-6) {
			t.Fatalf("certified ratio %v exceeds bound %v in row %v", ratio, bound, row)
		}
		if ratio < 1-1e-9 {
			t.Fatalf("certified ratio %v below 1 in row %v", ratio, row)
		}
	}
}

func TestT2RatioMonotoneAndBounded(t *testing.T) {
	tab, err := T2LowerBound(quick)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	var prevAlpha string
	for _, row := range tab.Rows {
		if row[0] != prevAlpha {
			prev, prevAlpha = 0, row[0]
		}
		ratio := parse(t, row[4])
		bound := parse(t, row[5])
		if ratio < prev-1e-9 {
			t.Fatalf("tightness series not monotone: %v after %v", ratio, prev)
		}
		if ratio > bound+1e-9 {
			t.Fatalf("ratio %v above bound %v", ratio, bound)
		}
		prev = ratio
	}
	// The largest-n α=2 row should be well on its way towards 4.
	last := parse(t, tab.Rows[5][4])
	if last < 2.4 {
		t.Fatalf("α=2, n=160 ratio %v; expected > 2.4 on the adversarial instance", last)
	}
}

func TestT3BothAboveOne(t *testing.T) {
	tab, err := T3VsCLL(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, col := range []int{3, 4, 5, 6} {
			if r := parse(t, row[col]); r < 1-1e-6 {
				t.Fatalf("ratio below 1 in row %v", row)
			}
		}
	}
}

func TestT4CertificateAllM(t *testing.T) {
	tab, err := T4Multiproc(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if parse(t, row[6]) > parse(t, row[7])*(1+1e-6) {
			t.Fatalf("certificate violated in row %v", row)
		}
	}
}

func TestT5DefaultDeltaCompetitive(t *testing.T) {
	tab, err := T5DeltaAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(tab.Rows))
	}
	// The δ* row must have relative cost 1 by construction.
	if tab.Rows[2][6] != "1.000" {
		t.Fatalf("δ* relative cost %q", tab.Rows[2][6])
	}
}

func TestT6RejectionMonotone(t *testing.T) {
	tab, err := T6ValueSweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Rejected fraction must (weakly) fall as values grow.
	prev := 2.0
	for _, row := range tab.Rows {
		frac := parse(t, row[4])
		if frac > prev+0.15 { // allow sampling noise
			t.Fatalf("rejected fraction grew sharply with value scale: %v after %v", frac, prev)
		}
		prev = frac
	}
	// Infinite values: nothing rejected.
	if last := parse(t, tab.Rows[len(tab.Rows)-1][4]); last != 0 {
		t.Fatalf("γ=∞ still rejected %v", last)
	}
}

func TestT7NoDisagreements(t *testing.T) {
	tab, err := T7RejectionEquivalence(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "0" {
			t.Fatalf("PD and CLL disagreed beyond knife-edge: row %v", row)
		}
	}
}

func TestT8BothWithinBound(t *testing.T) {
	tab, err := T8VsMultiOA(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		bound := parse(t, row[6])
		for _, col := range []int{2, 3, 4, 5} {
			r := parse(t, row[col])
			if r < 1-1e-6 || r > bound*(1+1e-6) {
				t.Fatalf("ratio %v outside [1, αα] in row %v", r, row)
			}
		}
	}
}

func TestT9TighteningValid(t *testing.T) {
	tab, err := T9DualTightening(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		g0, g1 := parse(t, row[3]), parse(t, row[4])
		r0, r1 := parse(t, row[5]), parse(t, row[6])
		if g1 < g0*(1-1e-6) {
			t.Fatalf("tightened bound below original: row %v", row)
		}
		if r1 > r0*(1+1e-6) {
			t.Fatalf("tightened ratio above original: row %v", row)
		}
		if r1 < 1-1e-6 {
			t.Fatalf("tightened ratio below 1 (bound above OPT?): row %v", row)
		}
	}
}

func TestT10AllPoliciesRun(t *testing.T) {
	tab, err := T10Latency(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("want 7 policies, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if parse(t, row[6]) <= 0 {
			t.Fatalf("nonpositive cost in row %v", row)
		}
		// Honest latency semantics: batch/clairvoyant rows buffer, so
		// their per-arrival columns are zero and plan time carries the
		// cost; online rows report real (nonzero) per-arrival work.
		switch row[2] {
		case "batch", "clairvoyant":
			if row[3] != "0s" || row[4] != "0s" {
				t.Fatalf("buffered policy publishing arrive latency: %v", row)
			}
			if row[5] == "0s" {
				t.Fatalf("buffered policy with no plan time: %v", row)
			}
		case "online":
			if row[3] == "0s" && row[4] == "0s" {
				t.Fatalf("online policy reported no per-arrival latency: %v", row)
			}
		default:
			t.Fatalf("unknown mode label in row %v", row)
		}
	}
}

// TestT11RaceReportsModesAndLatency pins T11's structure now that its
// body carries wall-clock columns (and is therefore masked in the
// parallel-determinism test): all six policies appear with their mode
// labels, ratios stay sane, and online policies report latency.
func TestT11RaceReportsModesAndLatency(t *testing.T) {
	tab, err := T11PolicyRace(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 policies, got %d", len(tab.Rows))
	}
	modes := map[string]string{
		"pd": "online", "oa": "online", "avr": "online", "qoa": "online",
		"bkp": "batch", "yds": "clairvoyant",
	}
	for _, row := range tab.Rows {
		name := row[0]
		if modes[name] != row[1] {
			t.Fatalf("policy %s labelled %q, want %q", name, row[1], modes[name])
		}
		if ratio := parse(t, row[3]); name != "yds" && ratio < 1-1e-6 {
			t.Fatalf("%s geometric-mean ratio %v below 1", name, ratio)
		}
		if row[1] == "online" && row[6] == "0s" {
			t.Fatalf("online policy %s reported no arrive latency: %v", name, row)
		}
		if (row[1] == "batch" || row[1] == "clairvoyant") && row[6] != "0s" {
			t.Fatalf("buffered policy %s publishing arrive latency: %v", name, row)
		}
	}
}

func TestF2ShowsStructureChange(t *testing.T) {
	tab, err := F2ChenStructure(quick)
	if err != nil {
		t.Fatal(err)
	}
	var beforeDedicated, afterDedicated int
	for _, row := range tab.Rows {
		if row[2] == "dedicated" {
			if row[0] == "before" {
				beforeDedicated++
			} else {
				afterDedicated++
			}
		}
	}
	// The figure's structural event: the arrival shrinks the dedicated
	// set (a dedicated processor is absorbed into the pool).
	if beforeDedicated != 2 || afterDedicated != 1 {
		t.Fatalf("expected dedicated count 2 → 1 across the arrival, got %d → %d",
			beforeDedicated, afterDedicated)
	}
}

func TestF3Conservativeness(t *testing.T) {
	tab, err := F3PDvsOA(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "WARNING") {
			t.Fatalf("conservativeness failed: %s", n)
		}
	}
	// Last interval: PD strictly slower than OA.
	last := tab.Rows[len(tab.Rows)-1]
	if parse(t, last[1]) >= parse(t, last[2]) {
		t.Fatalf("PD %v not slower than OA %v in last interval", last[1], last[2])
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T1:", "T2:", "T3:", "T4:", "T5:", "T6:", "T7:", "T8:", "T9:", "T10:", "T11:", "F2:", "F3:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunAll output missing %s", want)
		}
	}
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	var seq, par bytes.Buffer
	if err := RunAll(&seq, quick); err != nil {
		t.Fatal(err)
	}
	if err := RunAllParallel(&par, quick, 4); err != nil {
		t.Fatal(err)
	}
	// T10 and T11 report wall-clock timings, which legitimately differ
	// between runs; every other table is deterministic and must match
	// exactly.
	if maskTiming(seq.String()) != maskTiming(par.String()) {
		t.Fatal("parallel output differs from sequential")
	}
}

// maskTiming removes the bodies of the timing-dependent tables (T10
// carries per-arrival latency columns, T11 latency aggregates).
func maskTiming(s string) string {
	for _, tag := range []string{"T10:", "T11:"} {
		start := strings.Index(s, tag)
		if start < 0 {
			continue
		}
		end := strings.Index(s[start:], "\n\n")
		if end < 0 {
			s = s[:start]
			continue
		}
		s = s[:start] + s[start+end:]
	}
	return s
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}
