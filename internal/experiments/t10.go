// T10: scheduler runtime overhead.

package experiments

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// T10Latency measures each policy's wall-clock overhead with honest
// semantics: for online policies the arrive columns are real
// per-arrival decision latency (they replan on every arrival), while
// batch and clairvoyant policies buffer the trace, report zero arrive
// latency, and carry their whole planning cost in the plan-time
// column (measured at Close). Absolute numbers are machine-dependent;
// the *relative* picture is the result: PD's incremental
// water-filling is cheap, OA-family replans cost more per arrival,
// and MOA additionally pays for the convex solver.
func T10Latency(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	reg := engine.DefaultRegistry()
	n := sc.N * 4
	t := &stats.Table{
		Title:   "T10: per-arrival latency and plan time (n = " + fmt.Sprint(n) + ", α = 2)",
		Headers: []string{"policy", "m", "mode", "arrive/job", "max arrive", "plan time", "cost"},
		Notes: []string{
			"absolute numbers are machine-dependent; compare policies relative to each other",
			"batch/clairvoyant policies buffer arrivals: their arrive columns are zero by",
			"construction and the whole planning cost lands in plan time",
		},
	}
	in1 := workload.Poisson(workload.Config{N: n, M: 1, Alpha: 2, Seed: 314, ValueScale: 5})
	in4 := workload.Poisson(workload.Config{N: n, M: 4, Alpha: 2, Seed: 314, ValueScale: 5})
	specs := []engine.Spec{
		{Name: "pd", M: 1, Alpha: 2},
		{Name: "cll", M: 1, Alpha: 2},
		{Name: "oa", M: 1, Alpha: 2},
		{Name: "avr", M: 1, Alpha: 2},
		{Name: "qoa", M: 1, Alpha: 2},
		{Name: "pd", M: 4, Alpha: 2},
		{Name: "moa", M: 4, Alpha: 2},
	}
	for _, spec := range specs {
		in := in1
		if spec.M == 4 {
			in = in4
		}
		reg1, err := reg.Lookup(spec.Name)
		if err != nil {
			return nil, fmt.Errorf("T10: %w", err)
		}
		p, err := reg.New(spec)
		if err != nil {
			return nil, fmt.Errorf("T10: %w", err)
		}
		res, err := engine.Replay(in, p)
		if err != nil {
			return nil, fmt.Errorf("T10 %s: %w", spec.Name, err)
		}
		t.AddRow(spec.Name, spec.M, reg1.Caps.Mode(),
			(res.TotalArrive / time.Duration(n)).String(),
			res.MaxArrive.String(), res.PlanTime.String(), res.Cost)
	}
	return t, nil
}
