// T10: scheduler runtime overhead.

package experiments

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// T10Latency measures each policy's end-to-end wall-clock cost per job
// (planning plus schedule materialisation). Absolute numbers are
// machine-dependent; the *relative* picture is the result: PD's
// incremental water-filling is cheap, OA-family policies pay for full
// replans, and MOA additionally pays for the convex solver.
func T10Latency(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	pm := power.New(2)
	n := sc.N * 4
	t := &stats.Table{
		Title:   "T10: scheduler runtime per job (n = " + fmt.Sprint(n) + ", α = 2)",
		Headers: []string{"policy", "m", "runtime/job", "total", "cost"},
		Notes: []string{
			"absolute numbers are machine-dependent; compare policies relative to each other",
		},
	}
	in1 := workload.Poisson(workload.Config{N: n, M: 1, Alpha: 2, Seed: 314, ValueScale: 5})
	in4 := workload.Poisson(workload.Config{N: n, M: 4, Alpha: 2, Seed: 314, ValueScale: 5})
	cases := []struct {
		mk func() engine.Policy
		m  int
	}{
		{func() engine.Policy { return engine.PD(1, pm) }, 1},
		{func() engine.Policy { return engine.CLL(pm) }, 1},
		{func() engine.Policy { return engine.OA(pm) }, 1},
		{func() engine.Policy { return engine.PD(4, pm) }, 4},
		{func() engine.Policy { return engine.MOA(4, pm) }, 4},
	}
	for _, c := range cases {
		in := in1
		if c.m == 4 {
			in = in4
		}
		p := c.mk()
		start := time.Now()
		res, err := engine.Replay(in, p)
		total := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("T10 %s: %w", p.Name(), err)
		}
		t.AddRow(p.Name(), c.m, (total / time.Duration(n)).String(), total.Round(time.Millisecond).String(), res.Cost)
	}
	return t, nil
}
