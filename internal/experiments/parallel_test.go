package experiments

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

// TestRunTablesIsBoundedPool is the regression test for the worker-pool
// restructure: the old implementation spawned one goroutine per
// experiment immediately and only gated execution on a semaphore; the
// pool must never run more than `workers` bodies at once.
func TestRunTablesIsBoundedPool(t *testing.T) {
	const workers = 2
	var cur, peak int32
	var mu sync.Mutex
	fn := func(Scale) (*stats.Table, error) {
		n := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		defer atomic.AddInt32(&cur, -1)
		return &stats.Table{Title: "t", Headers: []string{"h"}}, nil
	}
	fns := make([]func(Scale) (*stats.Table, error), 12)
	names := make([]string, len(fns))
	for i := range fns {
		fns[i], names[i] = fn, "X"
	}
	tables, err := runTables(fns, names, Scale{}, workers)
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent experiments, want ≤ %d", peak, workers)
	}
	for i, tab := range tables {
		if tab == nil {
			t.Fatalf("table %d missing", i)
		}
	}
}

// TestRunTablesJoinsAllErrors: every failing experiment must be
// reported, not just the first one the scheduler happens to finish.
func TestRunTablesJoinsAllErrors(t *testing.T) {
	okTab := &stats.Table{Title: "ok", Headers: []string{"h"}}
	e1, e2 := errors.New("boom-T2"), errors.New("boom-T7")
	fns := []func(Scale) (*stats.Table, error){
		func(Scale) (*stats.Table, error) { return okTab, nil },
		func(Scale) (*stats.Table, error) { return nil, e1 },
		func(Scale) (*stats.Table, error) { return okTab, nil },
		func(Scale) (*stats.Table, error) { return nil, e2 },
	}
	names := []string{"T1", "T2", "T3", "T7"}
	tables, err := runTables(fns, names, Scale{}, 2)
	if err == nil {
		t.Fatal("failures must surface")
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("joined error must contain both failures: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "experiment T2") || !strings.Contains(msg, "experiment T7") {
		t.Fatalf("errors must be labelled with experiment names: %v", err)
	}
	if tables[0] == nil || tables[2] == nil {
		t.Fatal("successful experiments must still produce tables")
	}
}
