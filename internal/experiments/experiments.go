// Package experiments regenerates every table and figure of the
// reproduction. The paper is a theory paper without an evaluation
// section, so each experiment operationalises one of its quantitative
// claims (see DESIGN.md §4 for the index):
//
//	T1  Theorem 3 upper bound: certified ratio ≤ α^α on random loads
//	T2  Theorem 3 tightness: the adversarial instance approaches α^α
//	T3  PD vs Chan-Lam-Li vs exact OPT (single processor)
//	T4  Multiprocessor scaling: the certificate holds for all m
//	T5  δ ablation around the optimal δ = α^{1-α}
//	T6  Rejection economics: energy vs lost value vs value scale
//	T7  Rejection-policy equivalence with CLL (Section 3 claim)
//	T8  PD vs multiprocessor OA vs offline OPT (finish-all)
//	T9  Dual-certificate tightening by coordinate ascent
//	T10 Scheduler runtime overhead per job
//	T11 Policy race over a heavy-tailed fleet via the concurrent engine
//	F2  Figure 2: dedicated/pool structure before/after an arrival
//	F3  Figure 3: PD schedules more conservatively than OA
//
// Every experiment is deterministic (fixed seeds) and returns a
// stats.Table; RunAll renders all of them to a writer.
package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cll"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yds"
)

// Scale tunes how much work the experiments do (number of seeds and
// instance sizes). 1 is the default used by cmd/experiments; tests use
// smaller values for speed.
type Scale struct {
	Seeds int // random repetitions per configuration
	N     int // jobs per random instance
}

// Default is the scale used by cmd/experiments.
var Default = Scale{Seeds: 5, N: 48}

func (s Scale) withDefaults() Scale {
	if s.Seeds <= 0 {
		s.Seeds = Default.Seeds
	}
	if s.N <= 0 {
		s.N = Default.N
	}
	return s
}

// T1CertifiedRatio measures cost(PD)/g(λ̃) across α and m on uniform
// random workloads. Theorem 3 promises the ratio never exceeds α^α.
func T1CertifiedRatio(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	t := &stats.Table{
		Title:   "T1: certified competitive ratio of PD vs the α^α bound (Theorem 3)",
		Headers: []string{"alpha", "m", "n", "seeds", "cost(PD)", "g(dual)", "ratio(max)", "ratio(geo)", "bound α^α", "headroom×"},
		Notes: []string{
			"ratio = cost(PD)/g(λ̃) upper-bounds the true competitive ratio by weak duality",
			"headroom = bound / max ratio; > 1 everywhere confirms Theorem 3 on these instances",
		},
	}
	for _, alpha := range []float64{1.5, 2, 2.5, 3} {
		for _, m := range []int{1, 2, 4, 8} {
			var ratios []float64
			var lastCost, lastDual float64
			for seed := 0; seed < sc.Seeds; seed++ {
				in := workload.Uniform(workload.Config{
					N: sc.N, M: m, Alpha: alpha, Seed: int64(1000*m + seed),
				})
				res, err := core.Run(in)
				if err != nil {
					return nil, fmt.Errorf("T1 α=%v m=%d seed=%d: %w", alpha, m, seed, err)
				}
				ratios = append(ratios, res.CertifiedRatio())
				lastCost, lastDual = res.Cost, res.Dual
			}
			bound := math.Pow(alpha, alpha)
			mx := stats.Summarize(ratios).Max
			t.AddRow(alpha, m, sc.N, sc.Seeds, lastCost, lastDual, mx, stats.GeoMean(ratios), bound, bound/mx)
		}
	}
	return t, nil
}

// T2LowerBound replays the adversarial instance from the tightness half
// of Theorem 3 and reports cost(PD)/cost(YDS) as n grows: the series
// climbs towards α^α.
func T2LowerBound(sc Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "T2: tightness — adversarial instance drives PD towards α^α (Theorem 3, lower bound)",
		Headers: []string{"alpha", "n", "cost(PD)", "cost(OPT=YDS)", "ratio", "bound α^α", "fraction of bound"},
		Notes: []string{
			"instance: job j arrives at j-1, work (n-j+1)^{-1/α}, deadline n, values ∞ (finish-all)",
			"the ratio approaches α^α only in the limit; the fraction column shows convergence",
		},
	}
	for _, alpha := range []float64{2, 3} {
		pm := power.New(alpha)
		for _, n := range []int{5, 10, 20, 40, 80, 160} {
			in := workload.LowerBound(n, alpha)
			res, err := core.Run(in)
			if err != nil {
				return nil, fmt.Errorf("T2 α=%v n=%d: %w", alpha, n, err)
			}
			optS, err := yds.YDS(in)
			if err != nil {
				return nil, fmt.Errorf("T2 α=%v n=%d YDS: %w", alpha, n, err)
			}
			optE := optS.Energy(pm)
			ratio := res.Cost / optE
			bound := pm.CompetitiveBound()
			t.AddRow(alpha, n, res.Cost, optE, ratio, bound, ratio/bound)
		}
	}
	return t, nil
}

// T3VsCLL compares PD against Chan-Lam-Li and the exact integral
// optimum on single-processor value-calibrated workloads — the paper's
// headline improvement (α^α vs α^α + 2e^α).
func T3VsCLL(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	t := &stats.Table{
		Title:   "T3: PD vs Chan-Lam-Li vs exact OPT (m = 1)",
		Headers: []string{"alpha", "seeds", "n", "PD/OPT(geo)", "CLL/OPT(geo)", "PD/OPT(max)", "CLL/OPT(max)", "PD bound", "CLL bound"},
		Notes: []string{
			"OPT is the exact integral optimum by accept-set enumeration (small n)",
			"both algorithms sit far below their worst-case bounds on random loads;",
			"the bounds columns show the guarantee gap the paper closes: α^α vs α^α + 2e^α",
		},
	}
	n := 10
	for _, alpha := range []float64{2, 3} {
		pm := power.New(alpha)
		var pdR, cllR []float64
		for seed := 0; seed < sc.Seeds; seed++ {
			in := workload.Uniform(workload.Config{
				N: n, M: 1, Alpha: alpha, Seed: int64(7000 + seed),
			})
			res, err := core.Run(in)
			if err != nil {
				return nil, fmt.Errorf("T3 PD: %w", err)
			}
			cl, err := cll.Run(in, pm)
			if err != nil {
				return nil, fmt.Errorf("T3 CLL: %w", err)
			}
			best, err := opt.Integral(in)
			if err != nil {
				return nil, fmt.Errorf("T3 OPT: %w", err)
			}
			pdR = append(pdR, res.Cost/best.Cost)
			cllR = append(cllR, cl.Cost/best.Cost)
		}
		t.AddRow(alpha, sc.Seeds, n,
			stats.GeoMean(pdR), stats.GeoMean(cllR),
			stats.Summarize(pdR).Max, stats.Summarize(cllR).Max,
			pm.CompetitiveBound(), pm.CLLBound())
	}
	return t, nil
}

// T4Multiproc scales the processor count on bursty workloads and shows
// the certificate holds for every m (the paper's generalisation claim:
// first constant-competitive algorithm for multiple processors).
func T4Multiproc(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	alpha := 2.5
	bound := math.Pow(alpha, alpha)
	t := &stats.Table{
		Title:   "T4: multiprocessor scaling of PD (bursty workload, α = 2.5)",
		Headers: []string{"m", "n", "cost", "energy", "lost value", "rejected", "certified ratio", "bound α^α"},
		Notes: []string{
			"the certified ratio stays below the m-independent bound α^α ≈ " + fmt.Sprintf("%.3f", bound),
			"more processors absorb bursts: energy and rejections fall as m grows",
		},
	}
	for _, m := range []int{1, 2, 4, 8, 16} {
		in := workload.Bursty(workload.Config{
			N: sc.N, M: m, Alpha: alpha, Seed: 4242,
		})
		res, err := core.Run(in)
		if err != nil {
			return nil, fmt.Errorf("T4 m=%d: %w", m, err)
		}
		t.AddRow(m, sc.N, res.Cost, res.Energy, res.LostValue,
			len(res.Schedule.Rejected), res.CertifiedRatio(), bound)
	}
	return t, nil
}

// T5DeltaAblation sweeps PD's parameter δ around the analytically
// optimal α^{1-α} and reports the realised cost: the default is the
// right choice (Section 4).
func T5DeltaAblation(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	alpha := 2.0
	pm := power.New(alpha)
	t := &stats.Table{
		Title:   "T5: ablation of PD's parameter δ (α = 2, δ* = α^{1-α} = 0.5)",
		Headers: []string{"δ/δ*", "δ", "mean cost", "mean energy", "mean lost", "mean rejected", "cost vs δ*"},
		Notes: []string{
			"small δ accepts too much (energy explodes); large δ rejects too much (value lost)",
			"the certificate of Theorem 3 is only valid for δ ≤ δ*",
		},
	}
	var base float64
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		var costs, energies, losts, rejs []float64
		for seed := 0; seed < sc.Seeds; seed++ {
			in := workload.Uniform(workload.Config{
				N: sc.N, M: 2, Alpha: alpha, Seed: int64(9000 + seed), ValueScale: 0.8,
			})
			res, err := core.Run(in, core.WithDelta(mult*pm.DefaultDelta()))
			if err != nil {
				return nil, fmt.Errorf("T5 mult=%v: %w", mult, err)
			}
			costs = append(costs, res.Cost)
			energies = append(energies, res.Energy)
			losts = append(losts, res.LostValue)
			rejs = append(rejs, float64(len(res.Schedule.Rejected)))
		}
		mean := stats.Summarize(costs).Mean
		if mult == 1 { //schedlint:exactfloat mult ranges over exact literals
			base = mean
		}
		t.AddRow(mult, mult*pm.DefaultDelta(), mean,
			stats.Summarize(energies).Mean, stats.Summarize(losts).Mean,
			stats.Summarize(rejs).Mean, "")
	}
	// Fill the relative column now that the δ* row is known.
	for i, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		var mean float64
		fmt.Sscanf(t.Rows[i][2], "%g", &mean)
		t.Rows[i][6] = fmt.Sprintf("%.3f", mean/base)
		_ = mult
	}
	return t, nil
}

// T6ValueSweep varies the value scale γ: cheap values mean mass
// rejection (cost ≈ lost value), expensive values recover the
// finish-all model (cost ≈ energy) — the trade-off of Eq. (1).
func T6ValueSweep(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	t := &stats.Table{
		Title:   "T6: rejection economics under the value scale γ (α = 2, m = 2)",
		Headers: []string{"γ", "cost", "energy", "lost value", "rejected frac", "certified ratio"},
		Notes: []string{
			"γ multiplies each job's solo-energy value; γ→∞ recovers the classical model",
		},
	}
	for _, gamma := range []float64{0.1, 0.3, 1, 3, 10, math.Inf(1)} {
		var cost, energy, lost, rej, ratio float64
		for seed := 0; seed < sc.Seeds; seed++ {
			in := workload.Uniform(workload.Config{
				N: sc.N, M: 2, Alpha: 2, Seed: int64(11000 + seed),
				ValueScale: gamma, ValueSigma: 0.5,
			})
			res, err := core.Run(in)
			if err != nil {
				return nil, fmt.Errorf("T6 γ=%v: %w", gamma, err)
			}
			cost += res.Cost
			energy += res.Energy
			lost += res.LostValue
			rej += float64(len(res.Schedule.Rejected)) / float64(len(in.Jobs))
			ratio = math.Max(ratio, res.CertifiedRatio())
		}
		k := float64(sc.Seeds)
		t.AddRow(fmt.Sprintf("%v", gamma), cost/k, energy/k, lost/k, rej/k, ratio)
	}
	return t, nil
}

// T7RejectionEquivalence runs PD and CLL on solitary-job instances
// around the rejection threshold and counts decision agreement — the
// Section 3 claim that PD's policy reduces to Chan-Lam-Li's for m = 1.
func T7RejectionEquivalence(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	t := &stats.Table{
		Title:   "T7: PD's m=1 rejection policy coincides with Chan-Lam-Li's threshold (Section 3)",
		Headers: []string{"alpha", "cases", "agree", "disagree", "knife-edge", "max |Δthreshold|"},
		Notes: []string{
			"each case: a solitary job with value swept across the threshold; knife-edge = within 1e-9",
		},
	}
	for _, alpha := range []float64{1.5, 2, 2.5, 3} {
		pm := power.New(alpha)
		agree, disagree, knife := 0, 0, 0
		maxDiff := 0.0
		cases := 40 * sc.Seeds
		for i := 0; i < cases; i++ {
			frac := 0.5 + float64(i)/float64(cases) // value from 0.5× to 1.5× threshold
			w, span := 1.0+float64(i%7)*0.3, 0.5+float64(i%5)*0.4
			density := w / span
			// Value that puts the threshold exactly at `density/frac`.
			vAtThreshold := pm.DefaultDelta() * w * pm.Marginal(density) / 1.0
			v := vAtThreshold * frac
			in := &job.Instance{M: 1, Alpha: alpha, Jobs: []job.Job{
				{ID: 0, Release: 0, Deadline: span, Work: w, Value: v},
			}}
			res, err := core.Run(in)
			if err != nil {
				return nil, err
			}
			cl, err := cll.Run(in, pm)
			if err != nil {
				return nil, err
			}
			pdAccept := res.Decisions[0].Accepted
			cllAccept := len(cl.Rejected) == 0
			thPD := pm.RejectionSpeed(pm.DefaultDelta(), w, v)
			thCLL := cll.Threshold(pm, w, v)
			maxDiff = math.Max(maxDiff, math.Abs(thPD-thCLL))
			switch {
			case pdAccept == cllAccept:
				agree++
			case math.Abs(density-thPD) < 1e-6*thPD:
				knife++
			default:
				disagree++
			}
		}
		t.AddRow(alpha, cases, agree, disagree, knife, maxDiff)
	}
	return t, nil
}

// All returns every experiment in presentation order.
func All(sc Scale) ([]func(Scale) (*stats.Table, error), []string) {
	fns := []func(Scale) (*stats.Table, error){
		T1CertifiedRatio, T2LowerBound, T3VsCLL, T4Multiproc,
		T5DeltaAblation, T6ValueSweep, T7RejectionEquivalence,
		T8VsMultiOA, T9DualTightening, T10Latency, T11PolicyRace,
		F2ChenStructure, F3PDvsOA,
	}
	names := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "F2", "F3"}
	return fns, names
}

// RunAll executes every experiment at the given scale and renders the
// tables to w.
func RunAll(w io.Writer, sc Scale) error {
	fns, names := All(sc)
	for i, fn := range fns {
		t, err := fn(sc)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", names[i], err)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
