// T9: how much of PD's certified gap is certificate slack vs real cost.

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/stats"
	"repro/internal/workload"
)

// T9DualTightening re-optimises the dual certificate by coordinate
// ascent, separating two sources of the certified gap: slack in PD's
// own multipliers λ̃ versus PD's genuine distance from OPT. A large drop
// from "ratio (PD λ̃)" to "ratio (tightened)" means the algorithm is
// closer to optimal than its built-in certificate admits.
func T9DualTightening(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	t := &stats.Table{
		Title:   "T9: tightening the dual certificate by coordinate ascent",
		Headers: []string{"alpha", "m", "seeds", "g(λ̃ PD)", "g(tightened)", "ratio(PD λ̃)", "ratio(tight)", "slack removed"},
		Notes: []string{
			"both bounds are valid lower bounds on OPT (weak duality); the tightened one is",
			"closer to OPT, so the tightened ratio is a sharper certificate of PD's quality",
		},
	}
	for _, alpha := range []float64{2, 3} {
		for _, m := range []int{1, 4} {
			var g0s, g1s, r0s, r1s []float64
			for seed := 0; seed < sc.Seeds; seed++ {
				in := workload.Uniform(workload.Config{
					N: sc.N / 2, M: m, Alpha: alpha, Seed: int64(17000 + seed),
				})
				res, err := core.Run(in)
				if err != nil {
					return nil, fmt.Errorf("T9: %w", err)
				}
				lam := map[int]float64{}
				for _, d := range res.Decisions {
					lam[d.JobID] = d.Lambda
				}
				_, g1 := opt.TightenDual(in, lam, 4)
				g0s = append(g0s, res.Dual)
				g1s = append(g1s, g1)
				r0s = append(r0s, res.Cost/res.Dual)
				r1s = append(r1s, res.Cost/g1)
			}
			g0 := stats.Summarize(g0s).Mean
			g1 := stats.Summarize(g1s).Mean
			r0 := stats.GeoMean(r0s)
			r1 := stats.GeoMean(r1s)
			t.AddRow(alpha, m, sc.Seeds, g0, g1, r0, r1,
				fmt.Sprintf("%.1f%%", 100*(r0-r1)/(r0-1+1e-12)))
		}
	}
	return t, nil
}
