// Figure reproductions F2 and F3.

package experiments

import (
	"fmt"
	"math"

	"repro/internal/chen"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yds"
)

// F2ChenStructure reproduces Figure 2: the per-processor structure of
// Chen et al.'s schedule in one atomic interval before and after a new
// job arrives — dedicated processors keep their single job, the pool
// re-balances, and a dedicated job may be absorbed into the pool.
func F2ChenStructure(Scale) (*stats.Table, error) {
	before, after := workload.Figure2()
	sys := chen.System{M: 4, Power: power.New(2)}
	t := &stats.Table{
		Title:   "F2: Chen et al. schedule structure before/after a new job (Figure 2)",
		Headers: []string{"scenario", "processor", "role", "jobs", "speed"},
		Notes: []string{
			"new job (id 5, work 1.9) lifts the pool speed above job 1's dedicated speed,",
			"absorbing the formerly dedicated job 1 into the pool (Proposition 2's transition)",
		},
	}
	for _, sc := range []struct {
		name string
		jobs []chen.Item
	}{
		{"before", itemsOf(before)},
		{"after", itemsOf(after)},
	} {
		p := sys.Partition(1, sc.jobs)
		for i, it := range p.Dedicated {
			t.AddRow(sc.name, i, "dedicated", fmt.Sprintf("{%d}", it.ID), it.Work)
		}
		poolIDs := ""
		for _, it := range p.Pool {
			if poolIDs != "" {
				poolIDs += ","
			}
			poolIDs += fmt.Sprintf("%d", it.ID)
		}
		for i := len(p.Dedicated); i < sys.M; i++ {
			t.AddRow(sc.name, i, "pool", "{"+poolIDs+"}", p.PoolSpeed)
		}
	}
	return t, nil
}

// itemsOf converts an instance whose jobs share one unit interval into
// chen items (workload per interval = full workload).
func itemsOf(in *job.Instance) []chen.Item {
	items := make([]chen.Item, len(in.Jobs))
	for i, j := range in.Jobs {
		items[i] = chen.Item{ID: j.ID, Work: j.Work}
	}
	return items
}

// F3PDvsOA reproduces Figure 3: on the two-job example, PD leaves the
// last atomic interval slow (room for future jobs) while OA rebalances
// the first job into it.
func F3PDvsOA(Scale) (*stats.Table, error) {
	in := workload.Figure3()
	pm := power.New(2)
	res, err := core.Run(in)
	if err != nil {
		return nil, err
	}
	oa, err := yds.OA(in)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "F3: speed profiles of PD vs OA on the Figure 3 example (α = 2)",
		Headers: []string{"interval", "speed(PD)", "speed(OA)"},
		Notes: []string{
			fmt.Sprintf("energy: PD %.4f vs OA %.4f — PD pays more here but keeps the last interval at %.2f (OA: %.2f), leaving room for late arrivals",
				res.Energy, oa.Energy(pm),
				res.Schedule.TotalSpeedAt(1.5), oa.TotalSpeedAt(1.5)),
		},
	}
	for _, iv := range [][2]float64{{0, 0.5}, {0.5, 1}, {1, 2}} {
		mid := 0.5 * (iv[0] + iv[1])
		t.AddRow(fmt.Sprintf("[%.1f,%.1f)", iv[0], iv[1]),
			res.Schedule.TotalSpeedAt(mid), oa.TotalSpeedAt(mid))
	}
	if res.Schedule.TotalSpeedAt(1.5) >= oa.TotalSpeedAt(1.5)-1e-9 {
		t.Notes = append(t.Notes, "WARNING: conservativeness property did not hold")
	}
	if math.IsNaN(res.Energy) {
		return nil, fmt.Errorf("F3: NaN energy")
	}
	return t, nil
}
