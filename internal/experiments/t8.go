// T8: PD vs multiprocessor OA vs the offline optimum, finish-all.

package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/moa"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// T8VsMultiOA compares PD (with infinite values, i.e. the classical
// model the paper generalises) against the multiprocessor OA of Albers
// et al. and the offline optimum. Both online algorithms carry the same
// αα guarantee; the table shows their realised gap to OPT side by side
// across processor counts.
func T8VsMultiOA(sc Scale) (*stats.Table, error) {
	sc = sc.withDefaults()
	alpha := 2.0
	pm := power.New(alpha)
	t := &stats.Table{
		Title:   "T8: PD vs multiprocessor OA vs offline OPT (finish-all, α = 2)",
		Headers: []string{"m", "seeds", "PD/OPT(geo)", "MOA/OPT(geo)", "PD/OPT(max)", "MOA/OPT(max)", "bound α^α"},
		Notes: []string{
			"values set to ∞: the profit model degenerates to Yao-Demers-Shenker's, where",
			"multiprocessor OA (Albers et al.) is the prior art PD is measured against",
		},
	}
	for _, m := range []int{1, 2, 4, 8} {
		var pdR, moaR []float64
		for seed := 0; seed < sc.Seeds; seed++ {
			in := workload.Poisson(workload.Config{
				N: sc.N / 2, M: m, Alpha: alpha, Seed: int64(13000 + seed),
				ValueScale: math.Inf(1),
			})
			res, err := core.Run(in)
			if err != nil {
				return nil, fmt.Errorf("T8 PD m=%d: %w", m, err)
			}
			ms, err := moa.Run(in)
			if err != nil {
				return nil, fmt.Errorf("T8 MOA m=%d: %w", m, err)
			}
			sol, err := opt.SolveAccepted(in, nil)
			if err != nil {
				return nil, fmt.Errorf("T8 OPT m=%d: %w", m, err)
			}
			pdR = append(pdR, res.Cost/sol.Energy)
			moaR = append(moaR, ms.Energy(pm)/sol.Energy)
		}
		t.AddRow(m, sc.Seeds,
			stats.GeoMean(pdR), stats.GeoMean(moaR),
			stats.Summarize(pdR).Max, stats.Summarize(moaR).Max,
			pm.CompetitiveBound())
	}
	return t, nil
}
