// Parallel execution of the experiment suite. Every experiment is
// deterministic and independent, so they fan out across a bounded
// worker pool; tables are still rendered in presentation order.

package experiments

import (
	"fmt"
	"io"

	"repro/internal/pool"
	"repro/internal/stats"
)

// RunAllParallel executes every experiment concurrently on up to
// workers goroutines (≤ 0 means GOMAXPROCS) and renders the tables to w
// in the canonical order. Output is identical to RunAll; only wall
// clock differs. Unlike a first-error-wins scheme, every experiment is
// attempted and all failures come back joined.
func RunAllParallel(w io.Writer, sc Scale, workers int) error {
	fns, names := All(sc)
	tables, err := runTables(fns, names, sc, workers)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// runTables fans the experiment functions across a bounded worker pool
// (never more than workers goroutines exist, rather than one goroutine
// per experiment gated on a semaphore) and returns the tables in input
// order plus all errors joined, each labelled with its experiment name.
func runTables(fns []func(Scale) (*stats.Table, error), names []string, sc Scale, workers int) ([]*stats.Table, error) {
	tables := make([]*stats.Table, len(fns))
	err := pool.Run(len(fns), workers, func(i int) error {
		t, err := fns[i](sc)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", names[i], err)
		}
		tables[i] = t
		return nil
	})
	return tables, err
}
