// Parallel execution of the experiment suite. Every experiment is
// deterministic and independent, so they fan out across a bounded
// worker pool; tables are still rendered in presentation order.

package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// RunAllParallel executes every experiment concurrently on up to
// workers goroutines (≤ 0 means GOMAXPROCS) and renders the tables to w
// in the canonical order. Output is identical to RunAll; only wall
// clock differs.
func RunAllParallel(w io.Writer, sc Scale, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fns, names := All(sc)
	tables := make([]*stats.Table, len(fns))
	errs := make([]error, len(fns))

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range fns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tables[i], errs[i] = fns[i](sc)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("experiment %s: %w", names[i], err)
		}
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
