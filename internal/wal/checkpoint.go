// Checkpointing: the log's compaction primitive. A session is a
// deterministic function of (spec, accepted arrivals...), so the
// checkpoint persists exactly that — an opaque meta payload the serve
// layer fills with {id, spec, snapshot-at-cut} plus the full accepted
// history re-framed as batch records — and every segment at or below
// the cut becomes garbage. The snapshot inside meta is not replayed;
// recovery rebuilds the session from the history and byte-compares
// its snapshot against the stored one, turning "did replay diverge?"
// into an integrity check instead of a trust assumption.
//
// The file is written cold (tmp + fsync + rename + dir fsync), so a
// crash anywhere mid-checkpoint leaves either the old state (tmp
// swept at recovery) or the new one (stale segments swept at
// recovery) — never a half-checkpoint.

package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/job"
)

// ckptHeader is the first record of a checkpoint file. Meta is opaque
// to the WAL; Arrivals is the cumulative count the history encodes,
// and Seg is the cut: every segment numbered <= Seg is superseded.
type ckptHeader struct {
	Seg      uint64          `json:"seg"`
	Arrivals uint64          `json:"arrivals"`
	Meta     json.RawMessage `json:"meta"`
}

// Checkpoint compacts the log: history must be the session's full
// accepted arrival sequence (engine.Live.History) and must align with
// the logged arrival count — the serve layer guarantees alignment by
// checkpointing only from the applier, only when every logged arrival
// was accepted. On return the checkpoint is durable and the
// superseded segments are deleted; the log keeps appending to a fresh
// tail segment.
func (l *Log) Checkpoint(meta []byte, history []job.Job) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if uint64(len(history)) != l.arrivals {
		return fmt.Errorf("wal: checkpoint misaligned: %d history jobs vs %d logged arrivals", len(history), l.arrivals)
	}
	// Cut below the active segment. A non-empty active segment is
	// sealed first so the checkpoint covers everything logged; an
	// already-empty one (rotation just happened) becomes the tail.
	cut := l.seg
	if l.size > int64(len(segMagic)) {
		if err := l.rotateLocked(); err != nil {
			l.sticky = err
			l.notifyLocked()
			return err
		}
	} else if cut > 0 {
		cut--
	}

	if len(meta) == 0 {
		meta = []byte("null")
	}
	hdr, err := json.Marshal(ckptHeader{Seg: cut, Arrivals: l.arrivals, Meta: meta})
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp := filepath.Join(l.dir, "checkpoint.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	werr := func() error {
		if _, err := f.Write([]byte(ckptMagic)); err != nil {
			return err
		}
		b := appendFrame(l.scratch[:0], recCkpt, hdr)
		if _, err := f.Write(b); err != nil {
			return err
		}
		for off := 0; off < len(history); off += ckptChunk {
			end := off + ckptChunk
			if end > len(history) {
				end = len(history)
			}
			b = appendBatchFrame(l.scratch[:0], history[off:end])
			if _, err := f.Write(b); err != nil {
				return err
			}
		}
		b = appendFrame(l.scratch[:0], recCkptEnd, nil)
		if _, err := f.Write(b); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, "checkpoint")); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}

	// The rename is the commit point; everything below is cleanup that
	// recovery redoes if a crash interrupts it.
	for n := cut; n >= 1; n-- {
		path := filepath.Join(l.dir, segName(n))
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break // older segments were removed by a prior checkpoint
			}
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.ckptAt = l.arrivals
	l.store.checkpoints.Add(1)
	return nil
}

// parseCkpt reads and structurally validates a checkpoint file: magic,
// a header record, zero or more batch records, a terminator, nothing
// after. Any damage refuses recovery — the file was written atomically,
// so a bad checkpoint is disk corruption, not a torn write.
func parseCkpt(path string) (*ckptHeader, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, nil, fmt.Errorf("wal: %s: bad checkpoint magic", path)
	}
	body := data[len(ckptMagic):]
	var hdr *ckptHeader
	done := false
	valid, damage, err := walkFrames(body, func(typ byte, payload []byte) error {
		switch {
		case done:
			return fmt.Errorf("record after checkpoint terminator")
		case hdr == nil:
			if typ != recCkpt {
				return fmt.Errorf("checkpoint starts with record type %d, want header", typ)
			}
			h := new(ckptHeader)
			if err := json.Unmarshal(payload, h); err != nil {
				return fmt.Errorf("checkpoint header: %w", err)
			}
			hdr = h
		case typ == recBatch:
		case typ == recCkptEnd:
			done = true
		default:
			return fmt.Errorf("unexpected record type %d in checkpoint", typ)
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	if damage != nil {
		return nil, nil, fmt.Errorf("wal: %s: corrupt at byte %d: %w", path, len(ckptMagic)+valid, damage)
	}
	if hdr == nil || !done {
		return nil, nil, fmt.Errorf("wal: %s: incomplete checkpoint", path)
	}
	return hdr, body, nil
}
