// Recovery: turn whatever a crash left on disk back into live
// sessions, byte-identical to the uninterrupted run. The rules are
// strict because the acknowledgement contract is: an acked arrival is
// durable, an unacked one may vanish, and nothing else may change.
//
//   - A torn tail — an invalid frame suffix of the FINAL segment — is
//     the signature of a crash mid-append: those bytes were never
//     covered by an fsync, so no client holds an ack for them. They
//     are truncated away and counted, never replayed.
//   - The same damage anywhere else (a non-final segment, a
//     checkpoint, a missing segment in the chain) cannot be a torn
//     write, so it is corruption: recovery refuses and the daemon
//     exits non-zero rather than serve silently rewritten history.
//   - A close record means the session finished and was acked as
//     closed; its directory is swept, not resurrected.
//
// The store stays out of the session business: Recover hands each
// surviving tenant to a callback as a Recovered handle, and the serve
// layer streams ReplayCheckpoint + ReplayTail into a fresh
// engine.Live, then calls Resume to reopen the log for appending.

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/job"
)

// RecoveryStats summarizes one boot's Recover pass.
type RecoveryStats struct {
	Sessions    int    // live sessions handed to the callback
	Removed     int    // cleanly-closed or aborted tenants swept
	Arrivals    uint64 // jobs replayed (checkpoint + tail)
	Batches     uint64 // batch records replayed
	TornBytes   int64  // unacked tail bytes truncated away
	TornTenants int    // tenants that had a torn tail
}

// walkFrames walks the framed records in b (magic already stripped),
// calling fn per record. It returns the length of the valid prefix, a
// damage error describing the first invalid frame (nil on a clean
// walk), and fn's abort error. Damage and abort are distinct on
// purpose: damage at the end of the last segment is a torn tail to
// truncate, while an fn abort is always fatal.
func walkFrames(b []byte, fn func(typ byte, payload []byte) error) (valid int, damage, err error) {
	off := 0
	for off < len(b) {
		rest := b[off:]
		if len(rest) < frameSize {
			return off, fmt.Errorf("%d trailing bytes, short of a frame header", len(rest)), nil
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n < 1 || n > maxRecord || int(n) > len(rest)-8 {
			return off, fmt.Errorf("frame length %d out of range", n), nil
		}
		body := rest[8 : 8+int(n)]
		if crc32.Checksum(body, castagnoli) != sum {
			return off, fmt.Errorf("frame crc mismatch"), nil
		}
		if err := fn(body[0], body[1:]); err != nil {
			return off, nil, err
		}
		off += 8 + int(n)
	}
	return off, nil, nil
}

type segInfo struct {
	n    uint64
	path string
}

// Replay stages: the Recovered handle enforces checkpoint-then-tail-
// then-resume so a caller cannot resume a half-replayed session.
const (
	stageNew = iota
	stageCkpt
	stageTail
	stageResumed
)

// Recovered is one surviving tenant's on-disk state, ready to replay.
// Exactly one of Open/CkptMeta is set: Open is the session-open
// payload when the log still starts at segment 1, CkptMeta is the
// checkpoint's meta payload once a checkpoint superseded it.
type Recovered struct {
	Tenant   string
	Open     []byte
	CkptMeta []byte

	store    *Store
	dir      string
	segs     []segInfo
	ckpt     *ckptHeader
	ckptBody []byte // checkpoint records (magic stripped)

	lastValid int64 // valid record bytes in the final segment
	lastSize  int64 // actual file size of the final segment
	remagic   bool  // final segment torn before its magic completed

	tailArrivals uint64
	batches      uint64
	stage        int
}

// TornBytes reports how many unacked bytes the final segment loses at
// Resume.
func (r *Recovered) TornBytes() int64 {
	if r.remagic {
		return r.lastSize
	}
	return r.lastSize - (int64(len(segMagic)) + r.lastValid)
}

// Arrivals returns the total replayed arrival count; valid after
// ReplayTail.
func (r *Recovered) Arrivals() uint64 {
	var ck uint64
	if r.ckpt != nil {
		ck = r.ckpt.Arrivals
	}
	return ck + r.tailArrivals
}

// ReplayCheckpoint streams the checkpoint's history batches, oldest
// first, into fn. Without a checkpoint it is a no-op. Must precede
// ReplayTail.
func (r *Recovered) ReplayCheckpoint(fn func(js []job.Job) error) error {
	if r.stage != stageNew {
		return fmt.Errorf("wal: ReplayCheckpoint called twice")
	}
	r.stage = stageCkpt
	if r.ckpt == nil {
		return nil
	}
	var buf []job.Job
	_, damage, err := walkFrames(r.ckptBody, func(typ byte, payload []byte) error {
		if typ != recBatch {
			return nil // header/terminator, validated by parseCkpt
		}
		js, err := job.DecodeAll(buf[:0], payload)
		if err != nil {
			return fmt.Errorf("checkpoint batch: %w", err)
		}
		buf = js
		r.batches++
		return fn(js)
	})
	if err != nil {
		return fmt.Errorf("wal: %s: %w", r.Tenant, err)
	}
	if damage != nil { // parseCkpt already walked cleanly; unreachable
		return fmt.Errorf("wal: %s: checkpoint: %w", r.Tenant, damage)
	}
	return nil
}

// Stamp is the producer identity a stamped batch record carries. The
// zero value means the batch was appended unstamped.
type Stamp struct {
	Producer string
	Seq      uint64
}

// splitStamped decodes a recStamped payload into its stamp and the
// NDJSON jobs that follow it.
func splitStamped(payload []byte) (Stamp, []byte, error) {
	if len(payload) < 10 {
		return Stamp{}, nil, fmt.Errorf("stamped record shorter than its header")
	}
	n := int(binary.LittleEndian.Uint16(payload))
	if n == 0 || len(payload) < 2+n+8 {
		return Stamp{}, nil, fmt.Errorf("stamped record producer length %d out of range", n)
	}
	st := Stamp{
		Producer: string(payload[2 : 2+n]),
		Seq:      binary.LittleEndian.Uint64(payload[2+n:]),
	}
	return st, payload[2+n+8:], nil
}

// ReplayTail streams the tail segments' batch records, oldest first,
// into fn, validating every frame on the way. Producer-stamped batches
// hand their Stamp to fn (zero Stamp otherwise) so the caller can
// rebuild its dedup window from the same walk. Frame damage before the
// final segment's tail refuses recovery.
func (r *Recovered) ReplayTail(fn func(js []job.Job, st Stamp) error) error {
	if r.stage != stageCkpt {
		return fmt.Errorf("wal: ReplayTail must follow ReplayCheckpoint")
	}
	r.stage = stageTail
	var buf []job.Job
	for i, seg := range r.segs {
		last := i == len(r.segs)-1
		if last && r.remagic {
			break // nothing valid in it
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			return fmt.Errorf("wal: %s: bad segment magic", seg.path)
		}
		body := data[len(segMagic):]
		if last {
			body = body[:r.lastValid] // prescan located the torn tail
		}
		first := i == 0 && seg.n == 1
		rec := 0
		_, damage, err := walkFrames(body, func(typ byte, payload []byte) error {
			rec++
			switch typ {
			case recOpen:
				if !first || rec != 1 {
					return fmt.Errorf("stray open record (record %d of segment %d)", rec, seg.n)
				}
				return nil
			case recClose:
				return nil // prescan verified it is final; tenant was not swept only on prescan damage, unreachable here
			case recBatch, recStamped:
				var st Stamp
				if typ == recStamped {
					var serr error
					if st, payload, serr = splitStamped(payload); serr != nil {
						return fmt.Errorf("segment %d record %d: %w", seg.n, rec, serr)
					}
				}
				js, err := job.DecodeAll(buf[:0], payload)
				if err != nil {
					return fmt.Errorf("segment %d record %d: %w", seg.n, rec, err)
				}
				buf = js
				r.tailArrivals += uint64(len(js))
				r.batches++
				return fn(js, st)
			default:
				return fmt.Errorf("unexpected record type %d in segment %d", typ, seg.n)
			}
		})
		if err != nil {
			return fmt.Errorf("wal: %s: %w", r.Tenant, err)
		}
		if damage != nil {
			// The final segment was pre-truncated to its valid prefix, so
			// damage here is always mid-log corruption.
			return fmt.Errorf("wal: %s: corrupt mid-log: %w", seg.path, damage)
		}
		if first && rec == 0 {
			return fmt.Errorf("wal: %s: segment 1 is missing its open record", seg.path)
		}
	}
	return nil
}

// Resume truncates any torn tail from the final segment, reopens it
// for appending and registers the live Log with the store. Everything
// replayed is on disk already, so the log starts fully durable.
func (r *Recovered) Resume() (*Log, error) {
	if r.stage != stageTail {
		return nil, fmt.Errorf("wal: Resume must follow ReplayTail")
	}
	r.stage = stageResumed
	last := r.segs[len(r.segs)-1]
	size := int64(len(segMagic)) + r.lastValid
	if r.remagic {
		size = 0
	}
	if size < r.lastSize {
		if err := os.Truncate(last.path, size); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if r.remagic {
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		size = int64(len(segMagic))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	arr := r.Arrivals()
	var ckptAt uint64
	if r.ckpt != nil {
		ckptAt = r.ckpt.Arrivals
	}
	l := &Log{
		store:    r.store,
		tenant:   r.Tenant,
		dir:      r.dir,
		f:        f,
		seg:      last.n,
		size:     size,
		arrivals: arr,
		ckptAt:   ckptAt,
		durable:  arr,
		notify:   make(chan struct{}),
	}
	if err := r.store.register(l); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Recover scans the store's tenant directories and hands every
// surviving session to fn as a Recovered handle; fn must replay it
// (checkpoint, then tail) and Resume it. Cleanly closed tenants and
// aborted creations are swept; corruption anywhere aborts the whole
// pass with an error — the caller is expected to exit rather than
// serve. Recover must run before the store starts serving appends.
func (s *Store) Recover(fn func(*Recovered) error) (RecoveryStats, error) {
	var st RecoveryStats
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return st, fmt.Errorf("wal: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(s.dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// An import that never committed.
			if err := os.RemoveAll(dir); err != nil {
				return st, fmt.Errorf("wal: %w", err)
			}
			st.Removed++
			continue
		}
		tenant, err := decTenant(name)
		if err != nil {
			return st, err
		}
		r, closed, err := s.scanTenant(tenant, dir)
		if err != nil {
			return st, err
		}
		if r == nil {
			// Closed session, or an aborted creation with nothing in it.
			if err := os.RemoveAll(dir); err != nil {
				return st, fmt.Errorf("wal: %w", err)
			}
			st.Removed++
			_ = closed
			continue
		}
		torn := r.TornBytes()
		if err := fn(r); err != nil {
			return st, err
		}
		if r.stage != stageResumed {
			return st, fmt.Errorf("wal: recovery callback for %q returned without Resume", tenant)
		}
		st.Sessions++
		st.Arrivals += r.Arrivals()
		st.Batches += r.batches
		if torn > 0 {
			st.TornBytes += torn
			st.TornTenants++
		}
	}
	s.recovered = st
	return st, nil
}

// scanTenant inspects one tenant directory: parses the checkpoint,
// validates the segment chain, sweeps stale pre-checkpoint segments a
// crash left behind, and pre-walks the final segment to classify its
// tail (clean, torn, or closed). Returns (nil, true, nil) when the
// tenant should be swept, an error when recovery must refuse.
func (s *Store) scanTenant(tenant, dir string) (*Recovered, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	haveCkpt := false
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == "checkpoint":
			haveCkpt = true
		case name == "checkpoint.tmp":
			// Died before the rename: the old state is authoritative.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, false, fmt.Errorf("wal: %w", err)
			}
		case strings.HasSuffix(name, ".wal") && len(name) == 12:
			n, err := strconv.ParseUint(name[:8], 10, 64)
			if err != nil || n == 0 {
				return nil, false, fmt.Errorf("wal: %s: unrecognized segment name", filepath.Join(dir, name))
			}
			segs = append(segs, segInfo{n: n, path: filepath.Join(dir, name)})
		default:
			return nil, false, fmt.Errorf("wal: %s: unexpected file in tenant dir", filepath.Join(dir, name))
		}
	}
	if !haveCkpt && len(segs) == 0 {
		return nil, true, nil // died inside Create; nothing was acked
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })

	r := &Recovered{Tenant: tenant, store: s, dir: dir}
	first := uint64(1)
	if haveCkpt {
		hdr, body, err := parseCkpt(filepath.Join(dir, "checkpoint"))
		if err != nil {
			return nil, false, err
		}
		r.ckpt, r.ckptBody = hdr, body
		r.CkptMeta = []byte(hdr.Meta)
		first = hdr.Seg + 1
		// Sweep segments the checkpoint superseded but a crash kept.
		keep := segs[:0]
		for _, seg := range segs {
			if seg.n <= hdr.Seg {
				if err := os.Remove(seg.path); err != nil {
					return nil, false, fmt.Errorf("wal: %w", err)
				}
				continue
			}
			keep = append(keep, seg)
		}
		segs = keep
	}
	if len(segs) == 0 {
		return nil, false, fmt.Errorf("wal: %s: checkpoint names segment %d as its cut but no tail segment exists", dir, first-1)
	}
	for i, seg := range segs {
		if seg.n != first+uint64(i) {
			return nil, false, fmt.Errorf("wal: %s: segment chain broken: have segment %d, want %d", dir, seg.n, first+uint64(i))
		}
	}
	r.segs = segs

	// Pre-walk the final segment: classify its tail and spot a close
	// record. Damage here is a torn write (truncated at Resume); a
	// close record means the tenant finished cleanly and is swept.
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last.path)
	if err != nil {
		return nil, false, fmt.Errorf("wal: %w", err)
	}
	r.lastSize = int64(len(data))
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		// A strict prefix of the magic means the crash hit inside
		// openSegment (rotation died mid-create): the segment holds
		// nothing and its magic is rewritten at Resume. Anything else
		// is corruption.
		if len(data) < len(segMagic) && strings.HasPrefix(segMagic, string(data)) {
			r.remagic = true
		} else {
			return nil, false, fmt.Errorf("wal: %s: bad segment magic", last.path)
		}
	}
	sawClose := false
	if !r.remagic {
		body := data[len(segMagic):]
		rec := 0
		valid, damage, err := walkFrames(body, func(typ byte, payload []byte) error {
			rec++
			if sawClose {
				return fmt.Errorf("record after close record in segment %d", last.n)
			}
			switch typ {
			case recOpen, recBatch, recStamped:
			case recClose:
				sawClose = true
			default:
				return fmt.Errorf("unexpected record type %d in segment %d", typ, last.n)
			}
			return nil
		})
		if err != nil {
			return nil, false, fmt.Errorf("wal: %s: %w", last.path, err)
		}
		r.lastValid = int64(valid)
		_ = damage // a torn tail: TornBytes counts it, Resume truncates it
	}
	if sawClose {
		return nil, true, nil
	}
	if !haveCkpt {
		// The open record is the first record of segment 1; hand its
		// payload to the callback. A log whose only segment lost even
		// the open record to a torn tail was never acked: sweep it.
		firstSeg := segs[0]
		var openPayload []byte
		var data0 []byte
		if firstSeg.path == last.path {
			data0 = data
			if r.remagic || r.lastValid == 0 {
				return nil, true, nil
			}
		} else {
			if data0, err = os.ReadFile(firstSeg.path); err != nil {
				return nil, false, fmt.Errorf("wal: %w", err)
			}
			if len(data0) < len(segMagic) || string(data0[:len(segMagic)]) != segMagic {
				return nil, false, fmt.Errorf("wal: %s: bad segment magic", firstSeg.path)
			}
		}
		stop := fmt.Errorf("stop")
		_, damage, err := walkFrames(data0[len(segMagic):], func(typ byte, payload []byte) error {
			if typ != recOpen {
				return fmt.Errorf("segment 1 starts with record type %d, want the open record", typ)
			}
			openPayload = append([]byte(nil), payload...)
			return stop
		})
		if err != nil && err != stop {
			return nil, false, fmt.Errorf("wal: %s: %w", firstSeg.path, err)
		}
		if openPayload == nil {
			if firstSeg.path != last.path && damage != nil {
				return nil, false, fmt.Errorf("wal: %s: corrupt mid-log: %w", firstSeg.path, damage)
			}
			return nil, true, nil // only segment, open record torn: sweep
		}
		r.Open = openPayload
	}
	return r, false, nil
}
