// Export/Import: ship one tenant's durable state — checkpoint plus
// tail segments — as a single self-describing stream. This is the
// migration primitive the distributed mode will consume: Export on
// the source, Import on the target, and the target's next Recover
// pass rebuilds the session byte-identical there.
//
// The stream reuses the record framing for its structure (a file
// header record per file, then that file's raw bytes, then a
// terminator record) and adds a whole-file CRC per file, so transport
// damage is caught at Import, not at the target's recovery.
//
// Export of a live log is crash-consistent, not quiescent: the log is
// fsynced first, so every acked arrival is in the stream, and a
// concurrently appended tail beyond that behaves exactly like a torn
// tail at the target — truncated by recovery, never half-applied. A
// checkpoint racing the export can delete a listed segment mid-read;
// Export fails cleanly then and the caller retries.

package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// expFile is the per-file header record of an export stream.
type expFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
}

// exportable reports whether name is a file an export stream may
// carry — exactly the files recovery understands.
func exportable(name string) bool {
	if name == "checkpoint" {
		return true
	}
	if len(name) != 12 || !strings.HasSuffix(name, ".wal") {
		return false
	}
	for _, c := range name[:8] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Export writes the tenant's durable state to w. The tenant must
// exist on disk; if its log is open, it is fsynced first so the
// stream covers every acked arrival.
func (s *Store) Export(tenant string, w io.Writer) error {
	s.mu.Lock()
	l := s.logs[tenant]
	s.mu.Unlock()
	if l != nil {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	dir := filepath.Join(s.dir, encTenant(tenant))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if exportable(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic stream; import does not care about order
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(expMagic); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var frame []byte
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("wal: export raced a checkpoint: %w", err)
		}
		hdr, err := json.Marshal(expFile{Name: name, Size: int64(len(data)), CRC: crc32.Checksum(data, castagnoli)})
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		frame = appendFrame(frame[:0], recFile, hdr)
		if _, err := bw.Write(frame); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if _, err := bw.Write(data); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	frame = appendFrame(frame[:0], recExportEnd, nil)
	if _, err := bw.Write(frame); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// readFrame reads one framed record from br into buf, returning the
// type, payload and the (possibly grown) buffer.
func readFrame(br *bufio.Reader, buf []byte) (byte, []byte, []byte, error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, nil, buf, err
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	sum := uint32(hdr[4]) | uint32(hdr[5])<<8 | uint32(hdr[6])<<16 | uint32(hdr[7])<<24
	if n < 1 || n > maxRecord {
		return 0, nil, buf, fmt.Errorf("frame length %d out of range", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, nil, buf, err
	}
	if crc32.Checksum(buf, castagnoli) != sum {
		return 0, nil, buf, fmt.Errorf("frame crc mismatch")
	}
	return buf[0], buf[1:], buf, nil
}

// Import materialises an exported tenant into this store's data
// directory, atomically: files land in a .tmp directory that is
// renamed into place only after everything verified, so a torn import
// is swept at the next recovery, never half-adopted. The tenant must
// not already exist here, and the imported session only goes live at
// the next Recover pass — Import is a data-plane primitive, not a
// session attach.
func (s *Store) Import(tenant string, r io.Reader) error {
	if len(tenant) > maxTenant {
		return fmt.Errorf("wal: tenant id longer than %d bytes", maxTenant)
	}
	s.mu.Lock()
	_, open := s.logs[tenant]
	s.mu.Unlock()
	if open {
		return fmt.Errorf("%w: %q", ErrExists, tenant)
	}
	dir := filepath.Join(s.dir, encTenant(tenant))
	if _, err := os.Stat(dir); err == nil {
		return fmt.Errorf("%w: %q", ErrExists, tenant)
	}
	tmp := dir + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Mkdir(tmp, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err := s.importInto(tmp, r)
	if err != nil {
		os.RemoveAll(tmp)
		return err
	}
	if err := os.Rename(tmp, dir); err != nil {
		os.RemoveAll(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// RecoverTenant recovers one tenant on a live, already-serving store —
// the attach half of a migration. Import lands the files; RecoverTenant
// hands the tenant to fn as a Recovered handle exactly like a boot-time
// Recover pass would, and fn must replay and Resume it. The tenant must
// not be open here, and a tenant with nothing to recover (cleanly
// closed, or never acked) is an error rather than a silent sweep: a
// migration target that imported a stream expects a session.
func (s *Store) RecoverTenant(tenant string, fn func(*Recovered) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrStoreDown
	}
	_, open := s.logs[tenant]
	s.mu.Unlock()
	if open {
		return fmt.Errorf("%w: %q", ErrExists, tenant)
	}
	dir := filepath.Join(s.dir, encTenant(tenant))
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	r, _, err := s.scanTenant(tenant, dir)
	if err != nil {
		return err
	}
	if r == nil {
		return fmt.Errorf("wal: tenant %q has nothing to recover", tenant)
	}
	if err := fn(r); err != nil {
		return err
	}
	if r.stage != stageResumed {
		return fmt.Errorf("wal: recovery callback for %q returned without Resume", tenant)
	}
	return nil
}

// Remove deletes a detached tenant's on-disk state — the source's
// final migration step, after the target acknowledged the import. It
// refuses while the tenant's log is open: detach first (Log.Close
// keeps the directory and unregisters the log), then Remove.
func (s *Store) Remove(tenant string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrStoreDown
	}
	_, open := s.logs[tenant]
	s.mu.Unlock()
	if open {
		return fmt.Errorf("wal: tenant %q is still open; detach before Remove", tenant)
	}
	if err := os.RemoveAll(filepath.Join(s.dir, encTenant(tenant))); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func (s *Store) importInto(tmp string, r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(expMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("wal: import: %w", err)
	}
	if string(magic) != expMagic {
		return fmt.Errorf("wal: import: bad stream magic")
	}
	var buf []byte
	files := 0
	for {
		typ, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			return fmt.Errorf("wal: import: %w", err)
		}
		if typ == recExportEnd {
			break
		}
		if typ != recFile {
			return fmt.Errorf("wal: import: unexpected record type %d", typ)
		}
		var hdr expFile
		if err := json.Unmarshal(payload, &hdr); err != nil {
			return fmt.Errorf("wal: import: file header: %w", err)
		}
		if !exportable(hdr.Name) || hdr.Size < 0 || hdr.Size > 1<<40 {
			return fmt.Errorf("wal: import: stream names illegal file %q (%d bytes)", hdr.Name, hdr.Size)
		}
		data := make([]byte, hdr.Size)
		if _, err := io.ReadFull(br, data); err != nil {
			return fmt.Errorf("wal: import: %w", err)
		}
		if crc32.Checksum(data, castagnoli) != hdr.CRC {
			return fmt.Errorf("wal: import: %s: content crc mismatch", hdr.Name)
		}
		path := filepath.Join(tmp, hdr.Name)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("wal: import: %w", err)
		}
		_, werr := f.Write(data)
		if werr == nil {
			werr = f.Sync()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("wal: import: %w", werr)
		}
		files++
	}
	if files == 0 {
		return fmt.Errorf("wal: import: empty stream")
	}
	if err := syncDir(tmp); err != nil {
		return fmt.Errorf("wal: import: %w", err)
	}
	return nil
}
