package wal

import (
	"bytes"
	"io"
	"net"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/job"
)

// exportOverTCP ships one tenant's export stream across a real TCP
// connection — loopback, but a genuine socket: the bytes traverse the
// kernel, arrive in arbitrary read-sized chunks, and the writer's
// buffering is invisible to the reader. limit > 0 truncates the
// connection after that many bytes, modelling a source that dies
// mid-migration.
func exportOverTCP(t *testing.T, src *Store, tenant string, limit int64) (net.Conn, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		defer ln.Close()
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer c.Close()
		var w io.Writer = c
		if limit > 0 {
			w = &limitedWriter{w: c, n: limit}
		}
		errc <- src.Export(tenant, w)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return conn, func() {
		conn.Close()
		if err := <-errc; err != nil && limit == 0 {
			t.Errorf("export over tcp: %v", err)
		}
	}
}

type limitedWriter struct {
	w io.Writer
	n int64
}

func (l *limitedWriter) Write(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, io.ErrShortWrite
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.w.Write(p)
	l.n -= int64(n)
	if err == nil && l.n <= 0 {
		err = io.ErrShortWrite
	}
	return n, err
}

// seedTenant creates a tenant with a checkpoint and a live tail,
// returning the full arrival sequence.
func seedTenant(t *testing.T, st *Store, tenant string) ([]job.Job, *Log) {
	t.Helper()
	l, err := st.Create(tenant, []byte(`{"id":"`+tenant+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	var all []job.Job
	pre := mkJobs(0, 9)
	if _, err := l.AppendBatch(pre); err != nil {
		t.Fatal(err)
	}
	all = append(all, pre...)
	if err := l.Checkpoint([]byte(`{"id":"`+tenant+`"}`), all); err != nil {
		t.Fatal(err)
	}
	post := mkJobs(200, 5)
	if _, err := l.AppendBatch(post); err != nil {
		t.Fatal(err)
	}
	return append(all, post...), l
}

// TestExportImportOverNetwork is the migration path as the cluster
// runs it: Export streams through a real TCP connection into Import
// on a second store, the source detaches (Log.Close keeps the
// directory) and Removes, and the target attaches the session with
// RecoverTenant on a live store — no boot-time Recover pass — with
// every arrival byte-identical and the resumed log appendable.
func TestExportImportOverNetwork(t *testing.T) {
	src, _ := Open(t.TempDir(), Options{})
	defer src.Close()
	all, l := seedTenant(t, src, "mig")

	// Detach on the source: seal appends, keep the directory.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	conn, done := exportOverTCP(t, src, "mig", 0)
	dstDir := t.TempDir()
	dst, _ := Open(dstDir, Options{})
	defer dst.Close()

	// The target store is live and already serving another tenant.
	if _, err := dst.Create("resident", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := dst.Import("mig", conn); err != nil {
		t.Fatalf("import over tcp: %v", err)
	}
	done()

	// Source's final step: drop the shipped state.
	if err := src.Remove("mig"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tenantDir(src.dir, "mig")); !os.IsNotExist(err) {
		t.Fatal("Remove left the tenant directory")
	}

	// Attach on the live target.
	var got []job.Job
	var resumed *Log
	err := dst.RecoverTenant("mig", func(r *Recovered) error {
		collect := func(js []job.Job) error {
			got = append(got, append([]job.Job(nil), js...)...)
			return nil
		}
		if err := r.ReplayCheckpoint(collect); err != nil {
			return err
		}
		if err := r.ReplayTail(func(js []job.Job, _ Stamp) error { return collect(js) }); err != nil {
			return err
		}
		var err error
		resumed, err = r.Resume()
		return err
	})
	if err != nil {
		t.Fatalf("RecoverTenant: %v", err)
	}
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("migrated replay: %d arrivals, want %d identical", len(got), len(all))
	}
	if resumed.Arrivals() != uint64(len(all)) {
		t.Fatalf("resumed arrivals = %d, want %d", resumed.Arrivals(), len(all))
	}
	if _, err := resumed.AppendBatch(mkJobs(1000, 2)); err != nil {
		t.Fatalf("append on migrated log: %v", err)
	}
}

// TestImportRefusesTruncatedStream kills the source partway through
// the network transfer; the importer must refuse the stream and leave
// no tenant state behind.
func TestImportRefusesTruncatedStream(t *testing.T) {
	src, _ := Open(t.TempDir(), Options{})
	defer src.Close()
	seedTenant(t, src, "mig")

	// Measure the full stream, then cut the connection partway.
	var full bytes.Buffer
	if err := src.Export("mig", &full); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{1, int64(full.Len()) / 3, int64(full.Len()) - 1} {
		conn, done := exportOverTCP(t, src, "mig", cut)
		dstDir := t.TempDir()
		dst, _ := Open(dstDir, Options{})
		if err := dst.Import("mig", conn); err == nil {
			t.Fatalf("import accepted a stream truncated at %d of %d bytes", cut, full.Len())
		}
		done()
		if _, err := os.Stat(tenantDir(dstDir, "mig")); !os.IsNotExist(err) {
			t.Fatalf("truncated import (cut %d) left tenant state", cut)
		}
		if _, err := os.Stat(tenantDir(dstDir, "mig") + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("truncated import (cut %d) left its .tmp directory", cut)
		}
		dst.Close()
	}
}

// TestImportRefusesCorruptStream flips one byte at every position of
// the export stream and ships each damaged copy over TCP: the importer
// must refuse every one — CRC framing leaves no undetectable single
// bit-flip — and never leave tenant state behind.
func TestImportRefusesCorruptStream(t *testing.T) {
	src, _ := Open(t.TempDir(), Options{})
	defer src.Close()
	seedTenant(t, src, "mig")
	var full bytes.Buffer
	if err := src.Export("mig", &full); err != nil {
		t.Fatal(err)
	}
	stream := full.Bytes()
	dstDir := t.TempDir()
	// Stride through the stream so the test stays fast while still
	// hitting magic, frame headers, payloads and raw file bytes.
	for pos := 0; pos < len(stream); pos += 7 {
		tampered := append([]byte(nil), stream...)
		tampered[pos] ^= 0x10
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Write(tampered)
			c.Close()
		}()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		dst, _ := Open(dstDir, Options{})
		if err := dst.Import("mig", conn); err == nil {
			t.Fatalf("import accepted a stream with byte %d flipped", pos)
		}
		conn.Close()
		ln.Close()
		if _, err := os.Stat(tenantDir(dstDir, "mig")); !os.IsNotExist(err) {
			t.Fatalf("corrupt import (byte %d) left tenant state", pos)
		}
		dst.Close()
	}
}

// TestRecoverTenantRefusals pins the attach-half contract: unknown
// tenants, open tenants and cleanly-closed directories all refuse.
func TestRecoverTenantRefusals(t *testing.T) {
	st, _ := Open(t.TempDir(), Options{})
	defer st.Close()

	noop := func(r *Recovered) error { return nil }
	if err := st.RecoverTenant("ghost", noop); err == nil {
		t.Fatal("RecoverTenant of an unknown tenant succeeded")
	}

	_, l := seedTenant(t, st, "live")
	if err := st.RecoverTenant("live", noop); err == nil {
		t.Fatal("RecoverTenant of an open tenant succeeded")
	}
	// A callback that does not Resume is an error, not a silent leak.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.RecoverTenant("live", noop); err == nil || !strings.Contains(err.Error(), "without Resume") {
		t.Fatalf("non-resuming callback: err = %v, want 'without Resume'", err)
	}
}

// TestRemoveRefusesOpenTenant pins Remove's guard and the
// detach-then-remove sequence.
func TestRemoveRefusesOpenTenant(t *testing.T) {
	st, _ := Open(t.TempDir(), Options{})
	defer st.Close()
	_, l := seedTenant(t, st, "t")
	if err := st.Remove("t"); err == nil {
		t.Fatal("Remove of an open tenant succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("t"); err != nil {
		t.Fatalf("Remove after detach: %v", err)
	}
	// Removing an already-absent tenant is idempotent.
	if err := st.Remove("t"); err != nil {
		t.Fatalf("second Remove: %v", err)
	}
}
