package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRecLogRoundTrip pins the basic contract: appended records come
// back in order across a close/reopen, and a Rewrite replaces history.
func TestRecLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctl", "log")
	l, rec, err := OpenRecLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh log recovered %v", rec)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(byte(i%3+1), fmt.Appendf(nil, "payload-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 10 {
		t.Fatalf("count = %d, want 10", l.Count())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, rec, err = OpenRecLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 10 || rec.TornBytes != 0 {
		t.Fatalf("recovered %d records, %d torn", len(rec.Records), rec.TornBytes)
	}
	for i, r := range rec.Records {
		if r.Type != byte(i%3+1) || !bytes.Equal(r.Payload, fmt.Appendf(nil, "payload-%d", i)) {
			t.Fatalf("record %d = {%d %q}", i, r.Type, r.Payload)
		}
	}

	// Compaction: the whole history collapses to one snapshot record,
	// and appends continue after it.
	if err := l.Rewrite([]RecLogRecord{{Type: 9, Payload: []byte("snap")}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec, err = OpenRecLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || rec.Records[0].Type != 9 || string(rec.Records[1].Payload) != "after" {
		t.Fatalf("after rewrite: %v", rec.Records)
	}
}

// TestRecLogTornTail pins the crash contract's forgiving half: a
// record cut mid-write is truncated and reported, the records before
// it survive, and the log keeps accepting appends.
func TestRecLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, err := OpenRecLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(1, fmt.Appendf(nil, "r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Cut the final record mid-frame.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l, rec, err := OpenRecLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 4 || rec.TornBytes == 0 {
		t.Fatalf("recovered %d records, %d torn bytes", len(rec.Records), rec.TornBytes)
	}
	if err := l.Append(1, []byte("again")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec, err = OpenRecLog(path)
	if err != nil || len(rec.Records) != 5 {
		t.Fatalf("after truncation+append: %d records, err %v", len(rec.Records), err)
	}
}

// TestRecLogRefusesCorruption pins the unforgiving half: a flipped bit
// with intact records after it is rewritten history, and the log
// refuses to open rather than silently dropping the suffix.
func TestRecLogRefusesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, err := OpenRecLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(1, fmt.Appendf(nil, "record-number-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the middle of the file: the later records
	// still parse, so this cannot be a torn tail.
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenRecLog(path); !errors.Is(err, ErrRecLogCorrupt) {
		t.Fatalf("open of corrupt log: %v, want ErrRecLogCorrupt", err)
	}

	// Bad magic is corruption too.
	b[0] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenRecLog(path); !errors.Is(err, ErrRecLogCorrupt) {
		t.Fatalf("open with bad magic: %v, want ErrRecLogCorrupt", err)
	}
}
