package wal

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/job"
)

func mkJobs(base, n int) []job.Job {
	js := make([]job.Job, n)
	for i := range js {
		id := base + i
		js[i] = job.Job{ID: id, Release: float64(id), Deadline: float64(id) + 10, Work: 1.5, Value: 5}
	}
	return js
}

func tenantDir(root, tenant string) string {
	return filepath.Join(root, "tenants", encTenant(tenant))
}

// replayAll recovers every tenant of a store, collecting the replayed
// arrivals per tenant and the resumed logs.
func replayAll(t *testing.T, st *Store) (map[string][]job.Job, map[string]*Log, map[string]*Recovered, RecoveryStats) {
	t.Helper()
	got := map[string][]job.Job{}
	logs := map[string]*Log{}
	recs := map[string]*Recovered{}
	stats, err := st.Recover(func(r *Recovered) error {
		collect := func(js []job.Job) error {
			got[r.Tenant] = append(got[r.Tenant], append([]job.Job(nil), js...)...)
			return nil
		}
		if err := r.ReplayCheckpoint(collect); err != nil {
			return err
		}
		if err := r.ReplayTail(func(js []job.Job, _ Stamp) error { return collect(js) }); err != nil {
			return err
		}
		l, err := r.Resume()
		if err != nil {
			return err
		}
		logs[r.Tenant] = l
		recs[r.Tenant] = r
		return nil
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return got, logs, recs, stats
}

// TestAppendRecoverRoundTrip pins the basic durability loop: open a
// tenant, log batches, close the store as a crash would (no tenant
// removal), recover, and get the open payload and every arrival back
// in order — then keep appending on the resumed log.
func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	open := []byte(`{"id":"t-1","spec":{"name":"oa"}}`)
	l, err := st.Create("t-1", open)
	if err != nil {
		t.Fatal(err)
	}
	var want []job.Job
	for i := 0; i < 5; i++ {
		js := mkJobs(i*10, 7)
		pos, err := l.AppendBatch(js)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, js...)
		if pos != uint64(len(want)) {
			t.Fatalf("AppendBatch pos = %d, want %d", pos, len(want))
		}
		// Sync mode: the position is durable before AppendBatch returns.
		if err := l.WaitDurable(context.Background(), pos); err != nil {
			t.Fatalf("WaitDurable(%d): %v", pos, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, logs, recs, stats := replayAll(t, st2)
	if stats.Sessions != 1 || stats.Arrivals != uint64(len(want)) || stats.TornBytes != 0 {
		t.Fatalf("stats = %+v, want 1 session, %d arrivals, no torn bytes", stats, len(want))
	}
	if string(recs["t-1"].Open) != string(open) {
		t.Fatalf("open payload = %s, want %s", recs["t-1"].Open, open)
	}
	if !reflect.DeepEqual(got["t-1"], want) {
		t.Fatalf("replayed %d arrivals, want %d identical", len(got["t-1"]), len(want))
	}
	l2 := logs["t-1"]
	if l2.Arrivals() != uint64(len(want)) {
		t.Fatalf("resumed arrivals = %d, want %d", l2.Arrivals(), len(want))
	}
	if _, err := l2.AppendBatch(mkJobs(1000, 3)); err != nil {
		t.Fatalf("append on resumed log: %v", err)
	}
}

// TestGroupFsync runs the syncer path: appends are acked durable
// within an interval, and a context deadline is honored when the
// syncer never fires.
func TestGroupFsync(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FsyncInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := st.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	pos, err := l.AppendBatch(mkJobs(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := l.WaitDurable(ctx, pos); err != nil {
		t.Fatalf("WaitDurable under group fsync: %v", err)
	}
	if got := st.Stats().Fsyncs; got == 0 {
		t.Fatal("no fsyncs counted after a durable ack")
	}

	// A syncer that cannot fire in time surfaces the caller's deadline.
	st2, err := Open(t.TempDir(), Options{FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	l2, err := st2.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	pos2, err := l2.AppendBatch(mkJobs(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if err := l2.WaitDurable(ctx2, pos2); err != context.DeadlineExceeded {
		t.Fatalf("WaitDurable = %v, want context.DeadlineExceeded", err)
	}
}

// TestTornTail truncates the final record mid-frame: recovery must
// stop at the last valid record, count the dropped bytes, and resume
// a log that accepts further appends — never replay half a record.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{})
	l, err := st.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mkJobs(0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mkJobs(10, 3)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	seg := filepath.Join(tenantDir(dir, "t"), segName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2, _ := Open(dir, Options{})
	defer st2.Close()
	got, logs, _, stats := replayAll(t, st2)
	if len(got["t"]) != 3 || got["t"][0].ID != 0 {
		t.Fatalf("replayed %d arrivals after torn tail, want the first batch of 3", len(got["t"]))
	}
	// The whole half-written record is dropped, not just the missing 5
	// bytes: a partial frame can never be replayed.
	if stats.TornBytes == 0 || stats.TornTenants != 1 {
		t.Fatalf("stats = %+v, want the torn record counted in 1 tenant", stats)
	}
	if _, err := logs["t"].AppendBatch(mkJobs(10, 3)); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
}

// TestBitFlipTail flips a byte inside the final record: same contract
// as a truncated tail — the CRC rejects it and recovery truncates.
func TestBitFlipTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{})
	l, err := st.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	l.AppendBatch(mkJobs(0, 2))
	l.AppendBatch(mkJobs(10, 2))
	st.Close()

	seg := filepath.Join(tenantDir(dir, "t"), segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, _ := Open(dir, Options{})
	defer st2.Close()
	got, _, _, stats := replayAll(t, st2)
	if len(got["t"]) != 2 {
		t.Fatalf("replayed %d arrivals after tail bit-flip, want 2", len(got["t"]))
	}
	if stats.TornBytes == 0 {
		t.Fatal("tail bit-flip not counted as torn bytes")
	}
}

// TestBitFlipMidLog flips a byte in a sealed (non-final) segment:
// that cannot be a torn write, so recovery must refuse outright.
func TestBitFlipMidLog(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{SegmentBytes: 64}) // force rotation per batch
	l, err := st.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.AppendBatch(mkJobs(i*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	td := tenantDir(dir, "t")
	names, _ := os.ReadDir(td)
	if len(names) < 3 {
		t.Fatalf("expected several segments, got %d files", len(names))
	}
	seg := filepath.Join(td, segName(2))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	os.WriteFile(seg, data, 0o644)

	st2, _ := Open(dir, Options{})
	defer st2.Close()
	_, err = st2.Recover(func(r *Recovered) error {
		if err := r.ReplayCheckpoint(func([]job.Job) error { return nil }); err != nil {
			return err
		}
		if err := r.ReplayTail(func([]job.Job, Stamp) error { return nil }); err != nil {
			return err
		}
		_, err := r.Resume()
		return err
	})
	if err == nil {
		t.Fatal("recovery accepted mid-log corruption; must refuse")
	}
}

// TestCheckpointTruncate pins compaction: a checkpoint supersedes the
// old segments (they are deleted), recovery replays checkpoint history
// plus tail, and a second cycle works on the resumed log.
func TestCheckpointTruncate(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{})
	l, err := st.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var all []job.Job
	for i := 0; i < 3; i++ {
		js := mkJobs(i*10, 4)
		l.AppendBatch(js)
		all = append(all, js...)
	}
	meta := []byte(`{"id":"t","snap":"s1"}`)
	if err := l.Checkpoint(meta, all); err != nil {
		t.Fatal(err)
	}
	if got := l.SinceCheckpoint(); got != 0 {
		t.Fatalf("SinceCheckpoint after checkpoint = %d, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(tenantDir(dir, "t"), segName(1))); !os.IsNotExist(err) {
		t.Fatal("checkpoint did not delete the superseded segment")
	}
	post := mkJobs(100, 4)
	l.AppendBatch(post)
	all = append(all, post...)
	st.Close()

	st2, _ := Open(dir, Options{})
	got, logs, recs, stats := replayAll(t, st2)
	if string(recs["t"].CkptMeta) != string(meta) {
		t.Fatalf("checkpoint meta = %s, want %s", recs["t"].CkptMeta, meta)
	}
	if recs["t"].Open != nil {
		t.Fatal("open payload should be superseded by the checkpoint")
	}
	if !reflect.DeepEqual(got["t"], all) {
		t.Fatalf("replayed %d arrivals, want %d identical", len(got["t"]), len(all))
	}
	if stats.Arrivals != uint64(len(all)) {
		t.Fatalf("stats.Arrivals = %d, want %d", stats.Arrivals, len(all))
	}

	// Second cycle on the resumed log.
	l2 := logs["t"]
	if err := l2.Checkpoint(meta, all); err != nil {
		t.Fatalf("checkpoint on resumed log: %v", err)
	}
	more := mkJobs(200, 2)
	l2.AppendBatch(more)
	all = append(all, more...)
	st2.Close()

	st3, _ := Open(dir, Options{})
	defer st3.Close()
	got3, _, _, _ := replayAll(t, st3)
	if !reflect.DeepEqual(got3["t"], all) {
		t.Fatalf("after second checkpoint cycle: replayed %d arrivals, want %d", len(got3["t"]), len(all))
	}
}

// TestCheckpointMisaligned refuses a checkpoint whose history does not
// match the logged arrival count.
func TestCheckpointMisaligned(t *testing.T) {
	st, _ := Open(t.TempDir(), Options{})
	defer st.Close()
	l, err := st.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	l.AppendBatch(mkJobs(0, 3))
	if err := l.Checkpoint(nil, mkJobs(0, 2)); err == nil {
		t.Fatal("checkpoint accepted misaligned history")
	}
}

// TestCloseAndRemove removes the tenant directory; a crash between
// the durable close record and the removal recovers to "swept", not
// to a zombie session.
func TestCloseAndRemove(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{})
	l, err := st.Create("gone", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	l.AppendBatch(mkJobs(0, 2))
	if err := l.CloseAndRemove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tenantDir(dir, "gone")); !os.IsNotExist(err) {
		t.Fatal("CloseAndRemove left the tenant directory")
	}

	// Simulate the crash window: close record durable, dir still there.
	l2, err := st.Create("zombie", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	l2.AppendBatch(mkJobs(0, 2))
	l2.mu.Lock()
	l2.scratch = appendFrame(l2.scratch[:0], recClose, nil)
	l2.f.Write(l2.scratch)
	l2.f.Sync()
	l2.f.Close()
	l2.closed = true
	l2.mu.Unlock()
	st.Close()

	st2, _ := Open(dir, Options{})
	defer st2.Close()
	got, _, _, stats := replayAll(t, st2)
	if len(got) != 0 || stats.Removed != 1 {
		t.Fatalf("closed tenant not swept: replayed %v, stats %+v", got, stats)
	}
	if _, err := os.Stat(tenantDir(dir, "zombie")); !os.IsNotExist(err) {
		t.Fatal("recovery left the closed tenant's directory")
	}
}

// TestExportImport round-trips a tenant (checkpoint + live tail)
// through the migration stream into a second store, whose recovery
// must replay the identical arrival sequence.
func TestExportImport(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, _ := Open(srcDir, Options{})
	defer src.Close()
	l, err := src.Create("mig", []byte(`{"id":"mig"}`))
	if err != nil {
		t.Fatal(err)
	}
	var all []job.Job
	pre := mkJobs(0, 6)
	l.AppendBatch(pre)
	all = append(all, pre...)
	if err := l.Checkpoint([]byte(`{"id":"mig"}`), all); err != nil {
		t.Fatal(err)
	}
	post := mkJobs(100, 3)
	l.AppendBatch(post)
	all = append(all, post...)

	var buf bytes.Buffer
	if err := src.Export("mig", &buf); err != nil {
		t.Fatal(err)
	}

	dst, _ := Open(dstDir, Options{})
	defer dst.Close()
	if err := dst.Import("mig", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := dst.Import("mig", bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("second import of the same tenant must refuse")
	}
	got, _, recs, _ := replayAll(t, dst)
	if !reflect.DeepEqual(got["mig"], all) {
		t.Fatalf("imported replay: %d arrivals, want %d identical", len(got["mig"]), len(all))
	}
	if string(recs["mig"].CkptMeta) != `{"id":"mig"}` {
		t.Fatalf("imported checkpoint meta = %s", recs["mig"].CkptMeta)
	}

	// A flipped byte in the stream is caught at import, atomically.
	tampered := append([]byte(nil), buf.Bytes()...)
	tampered[len(tampered)-20] ^= 0x01
	dst2, _ := Open(t.TempDir(), Options{})
	defer dst2.Close()
	if err := dst2.Import("mig", bytes.NewReader(tampered)); err == nil {
		t.Fatal("import accepted a tampered stream")
	}
}

// TestSegmentRotation drives the log across many small segments and
// recovers every arrival back.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{SegmentBytes: 256})
	l, err := st.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var all []job.Job
	for i := 0; i < 20; i++ {
		js := mkJobs(i*10, 3)
		if _, err := l.AppendBatch(js); err != nil {
			t.Fatal(err)
		}
		all = append(all, js...)
	}
	st.Close()
	st2, _ := Open(dir, Options{})
	defer st2.Close()
	got, _, _, _ := replayAll(t, st2)
	if !reflect.DeepEqual(got["t"], all) {
		t.Fatalf("rotation replay: %d arrivals, want %d identical", len(got["t"]), len(all))
	}
}

// TestAppendBatchAllocs pins the hot append path allocation-free in
// steady state (group-fsync mode, scratch warm, log already dirty).
func TestAppendBatchAllocs(t *testing.T) {
	st, _ := Open(t.TempDir(), Options{FsyncInterval: time.Hour, SegmentBytes: 1 << 30})
	defer st.Close()
	l, err := st.Create("t", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	js := mkJobs(0, 8)
	if _, err := l.AppendBatch(js); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := l.AppendBatch(js); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.01 {
		t.Errorf("AppendBatch allocates %.3f per batch in steady state, want 0", avg)
	}
}

// TestStampedRoundTrip pins the idempotent-producer journal shape:
// stamped and unstamped batches interleave in one log, and recovery
// hands every stamp back with its jobs, in order, so the serve layer
// can rebuild its dedup window byte-identically.
func TestStampedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.Create("s", []byte(`{"id":"s"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendStamped("p1", 1, mkJobs(0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mkJobs(3, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendStamped("p2", 7, mkJobs(5, 1)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var stamps []Stamp
	var got []job.Job
	_, err = st2.Recover(func(r *Recovered) error {
		if err := r.ReplayCheckpoint(func(js []job.Job) error {
			t.Fatal("no checkpoint was written")
			return nil
		}); err != nil {
			return err
		}
		if err := r.ReplayTail(func(js []job.Job, s Stamp) error {
			stamps = append(stamps, s)
			got = append(got, append([]job.Job(nil), js...)...)
			return nil
		}); err != nil {
			return err
		}
		_, err := r.Resume()
		return err
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	want := []Stamp{{Producer: "p1", Seq: 1}, {}, {Producer: "p2", Seq: 7}}
	if !reflect.DeepEqual(stamps, want) {
		t.Fatalf("stamps = %+v, want %+v", stamps, want)
	}
	if !reflect.DeepEqual(got, mkJobs(0, 6)) {
		t.Fatalf("replayed %d arrivals, want the 6 appended ones back byte-identical", len(got))
	}
}
