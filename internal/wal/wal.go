// Package wal is schedd's durability subsystem: a per-tenant
// segmented write-ahead log of accepted arrival batches, group-fsynced
// off the appliers' drain path, with checkpoint/truncate compaction
// and byte-identical crash recovery.
//
// Layout. Every tenant owns a directory under <dir>/tenants/ (the
// tenant id hex-encoded, so arbitrary ids cannot escape the tree):
//
//	tenants/<hex(id)>/
//	  00000001.wal     segment: magic, then framed records
//	  00000002.wal     ...
//	  checkpoint       compacted prefix (atomic tmp+rename)
//
// A record is [length u32][crc32c u32][type u8][payload]; length
// counts type+payload, the CRC (Castagnoli) covers type+payload. The
// first record of segment 1 is the session-open record (an opaque
// payload the caller uses for its Spec), arrival batches are NDJSON
// payloads via job.AppendNDJSON, and a close record marks a cleanly
// finished session. A torn tail — a crash mid-write — fails the CRC
// or the length and is truncated on recovery, never replayed; the
// same damage anywhere before the final segment's tail is corruption
// and refuses recovery instead of silently skipping records.
//
// Durability contract. AppendBatch buffers nothing: the record is
// written to the segment with one write syscall, and the returned
// position becomes durable only after an fsync covers it. A dedicated
// syncer goroutine batches fsyncs across all dirty tenants every
// FsyncInterval — group commit — so the appliers' drain path never
// waits on the disk, and callers that need the ack-after-durable
// guarantee park in WaitDurable until the watermark passes their
// position. FsyncInterval <= 0 degenerates to synchronous appends
// (every AppendBatch fsyncs before returning): the simple mode tests
// use.
//
// The payloads the WAL does not interpret (open records, checkpoint
// meta) belong to the serving layer; this package deals in bytes and
// job batches only, so it sits below internal/serve next to
// internal/job.
package wal

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/job"
	"repro/internal/stats"
)

// Record types. recOpen/recBatch/recStamped/recClose live in
// segments; recCkpt/recCkptEnd frame the checkpoint file;
// recFile/recExportEnd frame an Export stream.
const (
	recOpen      = 1
	recBatch     = 2
	recClose     = 3
	recCkpt      = 4
	recCkptEnd   = 5
	recFile      = 6
	recExportEnd = 7
	recStamped   = 8 // producer-stamped batch: [u16 producer len][producer][u64 seq][NDJSON]
)

const (
	segMagic    = "SWAL0001"
	ckptMagic   = "SCKP0001"
	expMagic    = "SEXP0001"
	frameSize   = 9       // length u32 + crc u32 + type u8
	maxRecord   = 1 << 30 // sanity bound on one record's length field
	maxTenant   = 100     // id bytes; hex doubles it, filenames cap at 255
	maxProducer = 1 << 16 // producer id bytes a stamped record can carry
	ckptChunk   = 4096    // jobs per checkpoint batch record
	defSegSize  = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors.
var (
	ErrClosed    = errors.New("wal: log is closed")
	ErrStoreDown = errors.New("wal: store is closed")
	ErrExists    = errors.New("wal: tenant log already exists")
)

// Options sizes a store. The zero value gets synchronous appends and
// 4 MiB segments.
type Options struct {
	// FsyncInterval is the group-commit period of the syncer
	// goroutine; <= 0 means every append fsyncs before returning.
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold (default 4 MiB). A record
	// larger than a whole segment still goes in one segment: records
	// are never split across files.
	SegmentBytes int64
}

// Store owns one data directory of per-tenant logs plus the shared
// group-fsync syncer.
type Store struct {
	dir string // <root>/tenants
	opt Options

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool

	dirtyMu sync.Mutex
	dirty   []*Log
	spare   []*Log

	stop chan struct{}
	done chan struct{}

	// Counters the /metrics scrape renders (see AppendPrometheus).
	appends     atomic.Uint64
	appendBytes atomic.Uint64
	fsyncs      atomic.Uint64
	checkpoints atomic.Uint64
	fsyncLat    stats.AtomicHistogram

	// recovered is set once by Recover, before serving starts.
	recovered RecoveryStats
}

// Open opens (creating if needed) the store rooted at dir and starts
// the syncer when the options ask for group commit.
func Open(dir string, opt Options) (*Store, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defSegSize
	}
	tdir := filepath.Join(dir, "tenants")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &Store{
		dir:  tdir,
		opt:  opt,
		logs: make(map[string]*Log),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if opt.FsyncInterval > 0 {
		go s.syncLoop()
	} else {
		close(s.done)
	}
	return s, nil
}

// Close stops the syncer after a final group fsync and closes every
// open log (their data stays on disk for the next boot's recovery —
// a clean daemon drain removes tenant dirs itself, via each log's
// CloseAndRemove).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()

	if s.opt.FsyncInterval > 0 {
		close(s.stop)
		<-s.done
	}
	var err error
	for _, l := range logs {
		if cerr := l.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// encTenant maps an arbitrary tenant id onto a filesystem-safe
// directory name, reversibly.
func encTenant(id string) string { return hex.EncodeToString([]byte(id)) }

func decTenant(name string) (string, error) {
	b, err := hex.DecodeString(name)
	if err != nil {
		return "", fmt.Errorf("wal: tenant dir %q is not a hex id: %w", name, err)
	}
	return string(b), nil
}

// segName renders the n-th segment's file name.
func segName(n uint64) string { return fmt.Sprintf("%08d.wal", n) }

// syncDir fsyncs a directory so freshly created/renamed entries are
// durable, not just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Create opens a fresh log for the tenant and makes its open record —
// the opaque payload the caller will need to rebuild the session, in
// practice the serve layer's {id, spec} JSON — durable before
// returning. A tenant directory that already exists is refused: the
// host's duplicate-session admission owns that case.
func (s *Store) Create(tenant string, open []byte) (*Log, error) {
	if len(tenant) > maxTenant {
		return nil, fmt.Errorf("wal: tenant id longer than %d bytes", maxTenant)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStoreDown
	}
	if _, dup := s.logs[tenant]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, tenant)
	}
	s.mu.Unlock()

	dir := filepath.Join(s.dir, encTenant(tenant))
	if _, err := os.Stat(dir); err == nil {
		return nil, fmt.Errorf("%w: %q", ErrExists, tenant)
	}
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		store:  s,
		tenant: tenant,
		dir:    dir,
		seg:    1,
		notify: make(chan struct{}),
	}
	if err := l.openSegment(); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	l.scratch = appendFrame(l.scratch[:0], recOpen, open)
	if _, err := l.f.Write(l.scratch); err != nil {
		l.f.Close()
		os.RemoveAll(dir)
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.size += int64(len(l.scratch))
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		os.RemoveAll(dir)
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		l.f.Close()
		os.RemoveAll(dir)
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := s.register(l); err != nil {
		l.f.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	return l, nil
}

func (s *Store) register(l *Log) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreDown
	}
	if _, dup := s.logs[l.tenant]; dup {
		return fmt.Errorf("%w: %q", ErrExists, l.tenant)
	}
	s.logs[l.tenant] = l
	return nil
}

func (s *Store) unregister(tenant string) {
	s.mu.Lock()
	delete(s.logs, tenant)
	s.mu.Unlock()
}

// markDirty queues the log for the next group fsync. Steady state
// appends find the log already dirty and pay one flag check.
func (s *Store) markDirty(l *Log) {
	s.dirtyMu.Lock()
	s.dirty = append(s.dirty, l)
	s.dirtyMu.Unlock()
}

// syncLoop is the group-commit syncer: every tick it swaps out the
// dirty list and fsyncs each log once, advancing durable watermarks
// and waking waiters. Batching across tenants means a thousand
// sessions appending within one interval cost a thousand fsyncs per
// interval, not per batch.
func (s *Store) syncLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opt.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.syncDirty()
		case <-s.stop:
			s.syncDirty()
			return
		}
	}
}

func (s *Store) syncDirty() {
	s.dirtyMu.Lock()
	batch := s.dirty
	s.dirty = s.spare[:0]
	s.spare = batch
	s.dirtyMu.Unlock()
	for _, l := range batch {
		l.syncNow()
	}
}

// Stats is a point-in-time view of the store's counters.
type Stats struct {
	Appends     uint64
	AppendBytes uint64
	Fsyncs      uint64
	Checkpoints uint64
	Recovery    RecoveryStats
}

// FsyncLatency snapshots the fsync latency histogram (seconds) for
// the /metrics scrape.
func (s *Store) FsyncLatency() stats.Histogram { return s.fsyncLat.Snapshot() }

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Appends:     s.appends.Load(),
		AppendBytes: s.appendBytes.Load(),
		Fsyncs:      s.fsyncs.Load(),
		Checkpoints: s.checkpoints.Load(),
		Recovery:    s.recovered,
	}
}

// Log is one tenant's append log. A single writer (the session's
// applier goroutine) appends; the syncer and any number of
// WaitDurable callers synchronize through the log's mutex.
type Log struct {
	store  *Store
	tenant string
	dir    string

	mu       sync.Mutex
	f        *os.File
	seg      uint64 // active segment index
	size     int64  // bytes written to the active segment
	scratch  []byte // reused frame build buffer
	arrivals uint64 // jobs appended over the log's lifetime
	ckptAt   uint64 // arrivals covered by the checkpoint
	durable  uint64 // jobs covered by an fsync
	dirty    bool
	sticky   error // first write/sync error; the log is dead after it
	closed   bool
	notify   chan struct{} // closed+replaced when durable advances
}

// Tenant returns the id the log belongs to.
func (l *Log) Tenant() string { return l.tenant }

// Arrivals returns the number of jobs ever appended (including any
// replayed by recovery).
func (l *Log) Arrivals() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.arrivals
}

// SinceCheckpoint returns the arrivals appended after the latest
// checkpoint — the serve layer's checkpoint-due trigger.
func (l *Log) SinceCheckpoint() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.arrivals - l.ckptAt
}

func (l *Log) usableLocked() error {
	if l.sticky != nil {
		return l.sticky
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// openSegment creates the active segment file, writes its magic and
// makes the new directory entry durable.
func (l *Log) openSegment() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.size = int64(len(segMagic))
	return nil
}

// rotateLocked seals the active segment — fsyncing it so every record
// it holds is durable — and opens the next one. Called with l.mu held.
// Off the steady-state append path: once per SegmentBytes of log.
//
//schedlint:coldpath
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// Everything written so far lives in sealed, fsynced segments.
	l.advanceDurableLocked(l.arrivals)
	l.seg++
	return l.openSegment()
}

// appendFrame appends one framed record to dst.
//
//schedlint:hotpath
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc backfilled below
	at := len(dst)
	dst = append(dst, typ)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(dst[at-4:at], crc32.Checksum(dst[at:], castagnoli))
	return dst
}

// appendBatchFrame builds a batch record around the jobs' NDJSON
// encoding without an intermediate payload buffer.
//
//schedlint:hotpath
func appendBatchFrame(dst []byte, js []job.Job) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 0) // length backfilled
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc backfilled
	at := len(dst)
	dst = append(dst, recBatch)
	dst = job.AppendNDJSON(dst, js)
	binary.LittleEndian.PutUint32(dst[at-8:at-4], uint32(len(dst)-at))
	binary.LittleEndian.PutUint32(dst[at-4:at], crc32.Checksum(dst[at:], castagnoli))
	return dst
}

// appendStampedFrame builds a stamped batch record: the producer id
// and sequence ride in front of the jobs' NDJSON encoding, so replay
// rebuilds the dedup window from the same bytes that rebuild the
// session.
//
//schedlint:hotpath
func appendStampedFrame(dst []byte, producer string, seq uint64, js []job.Job) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 0) // length backfilled
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc backfilled
	at := len(dst)
	dst = append(dst, recStamped)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(producer)))
	dst = append(dst, producer...)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = job.AppendNDJSON(dst, js)
	binary.LittleEndian.PutUint32(dst[at-8:at-4], uint32(len(dst)-at))
	binary.LittleEndian.PutUint32(dst[at-4:at], crc32.Checksum(dst[at:], castagnoli))
	return dst
}

// AppendBatch logs one drained arrival batch with a single write
// syscall and returns the log position after it (cumulative arrival
// count). The position is NOT yet durable: callers that promised
// durability to a client park in WaitDurable. The record is built in
// the log's reused scratch buffer — the steady-state append path
// allocates nothing.
//
//schedlint:hotpath
func (l *Log) AppendBatch(js []job.Job) (uint64, error) {
	return l.AppendStamped("", 0, js)
}

// AppendStamped is AppendBatch for a producer-stamped batch: the
// (producer, seq) stamp is journaled with the jobs so recovery can
// rebuild the dedup window byte-identically. An empty producer writes
// a plain batch record — the unstamped path is the same code.
//
//schedlint:hotpath
func (l *Log) AppendStamped(producer string, seq uint64, js []job.Job) (uint64, error) {
	if len(js) == 0 {
		return l.Arrivals(), nil
	}
	if len(producer) >= maxProducer {
		return 0, fmt.Errorf("wal: producer id longer than %d bytes", maxProducer-1) //schedlint:allowalloc rejected-input path, never steady state
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	if producer == "" {
		l.scratch = appendBatchFrame(l.scratch[:0], js)
	} else {
		l.scratch = appendStampedFrame(l.scratch[:0], producer, seq, js)
	}
	if l.size > int64(len(segMagic)) && l.size+int64(len(l.scratch)) > l.store.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.sticky = err
			l.notifyLocked()
			return 0, err
		}
	}
	if _, err := l.f.Write(l.scratch); err != nil {
		l.sticky = fmt.Errorf("wal: %w", err) //schedlint:allowalloc terminal error path, log is dead
		l.notifyLocked()
		return 0, l.sticky
	}
	l.size += int64(len(l.scratch))
	l.arrivals += uint64(len(js))
	l.store.appends.Add(1)
	l.store.appendBytes.Add(uint64(len(l.scratch)))
	if l.store.opt.FsyncInterval <= 0 {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	} else if !l.dirty {
		l.dirty = true
		l.store.markDirty(l)
	}
	return l.arrivals, nil
}

// syncNow is the syncer's per-log step: fsync the active segment and
// advance the durable watermark to everything written before the call.
func (l *Log) syncNow() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dirty = false
	if l.closed || l.sticky != nil {
		return
	}
	l.syncLocked()
}

// syncLocked fsyncs the active segment under l.mu (so rotation and
// close cannot race the file handle) and publishes the new watermark.
// Reached from the steady-state append path only in synchronous mode,
// where the fsync dominates any allocation.
//
//schedlint:coldpath
func (l *Log) syncLocked() error {
	w := l.arrivals
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.sticky = fmt.Errorf("wal: %w", err)
		l.notifyLocked()
		return l.sticky
	}
	l.store.fsyncs.Add(1)
	l.store.fsyncLat.Observe(time.Since(start).Seconds())
	l.advanceDurableLocked(w)
	return nil
}

func (l *Log) advanceDurableLocked(w uint64) {
	if w > l.durable {
		l.durable = w
		l.notifyLocked()
	}
}

// notifyLocked wakes every WaitDurable parked on the log — the
// watermark moved, or the log died and they must stop waiting. Runs
// per fsync or per failure, never per append.
//
//schedlint:coldpath
func (l *Log) notifyLocked() {
	close(l.notify)
	l.notify = make(chan struct{})
}

// WaitDurable parks until the durable watermark reaches pos (a value
// AppendBatch returned), the ctx dies, or the log fails. This is the
// ack-after-durable edge: the HTTP layer answers an arrivals request
// only after the last arrival it queued passes this gate.
func (l *Log) WaitDurable(ctx context.Context, pos uint64) error {
	for {
		l.mu.Lock()
		if l.durable >= pos {
			l.mu.Unlock()
			return nil
		}
		if err := l.usableLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
		ch := l.notify
		l.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Sync forces an immediate fsync of the active segment — Export's
// quiesce point and a test hook.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	return l.syncLocked()
}

// Close seals the log without touching its data: the active segment
// is fsynced and closed, waiters are released, and the tenant's state
// stays on disk for the next boot's recovery. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	var err error
	if l.sticky == nil {
		err = l.syncLocked()
	}
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	l.notifyLocked()
	l.store.unregister(l.tenant)
	return err
}

// CloseAndRemove finalises a cleanly closed session: a close record
// is appended and made durable (so a crash between here and the
// directory removal still recovers to "closed", not to a zombie
// session), then the tenant's directory is deleted.
func (l *Log) CloseAndRemove() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	var err error
	if l.sticky == nil {
		l.scratch = appendFrame(l.scratch[:0], recClose, nil)
		if _, werr := l.f.Write(l.scratch); werr != nil {
			err = fmt.Errorf("wal: %w", werr)
		} else {
			l.size += int64(len(l.scratch))
			err = l.syncLocked()
		}
	} else {
		err = l.sticky
	}
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	l.notifyLocked()
	l.mu.Unlock()

	l.store.unregister(l.tenant)
	if rerr := os.RemoveAll(l.dir); err == nil && rerr != nil {
		err = fmt.Errorf("wal: %w", rerr)
	}
	return err
}
