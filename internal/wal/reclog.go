// RecLog: a single-file framed record log for small, rare control
// state — the controller's placement/node/epoch journal. It reuses the
// tenant WAL's frame format ([length u32][crc32c u32][type u8]
// [payload]) and its recovery contract: a torn tail (the one record a
// crash can cut mid-write) is truncated and reported; damage anywhere
// the file keeps valid records *after* is corruption and refuses to
// open. Where the tenant log optimizes the hot append path (group
// fsync, segment rotation), RecLog optimizes for trust: every Append
// is one write plus one fsync, because control-plane mutations are
// measured per second, not per microsecond, and each one is a fact the
// cluster must not forget.
//
// Compaction is whole-file: Rewrite replaces the log with a fresh one
// (typically a single snapshot record) via the tmp+rename+dirsync
// dance the checkpoint writer uses, so a crash anywhere leaves either
// the old log or the new one, never a hybrid.

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// recLogMagic heads every RecLog file; a file that does not start with
// it is not ours and refuses to open.
const recLogMagic = "SLOG0001"

// ErrRecLogCorrupt marks damage beyond a torn tail: valid records
// exist after the broken region, so the file was rewritten, not cut.
var ErrRecLogCorrupt = errors.New("wal: record log corrupt")

// RecLogRecord is one recovered record.
type RecLogRecord struct {
	Type    byte
	Payload []byte
}

// RecLogRecovery reports what OpenRecLog found.
type RecLogRecovery struct {
	Records []RecLogRecord
	// TornBytes is the length of the truncated torn tail (0 on a clean
	// open).
	TornBytes int64
}

// RecLog is an open record log. Append/Rewrite/Close are safe for a
// single goroutine; callers serialize (the controller appends under
// its state mutex — mutations must hit the disk in the order they hit
// memory).
type RecLog struct {
	path  string
	f     *os.File
	count int // records in the file (recovered + appended)
}

// OpenRecLog opens (creating if needed) the record log at path and
// replays it. The recovery contract matches tenant recovery: a torn
// tail is truncated, anything else refuses with ErrRecLogCorrupt.
func OpenRecLog(path string) (*RecLog, RecLogRecovery, error) {
	var rec RecLogRecovery
	b, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		f, err := createRecLog(path)
		if err != nil {
			return nil, rec, err
		}
		return &RecLog{path: path, f: f}, rec, nil
	case err != nil:
		return nil, rec, fmt.Errorf("wal: record log: %w", err)
	}
	if len(b) < len(recLogMagic) || string(b[:len(recLogMagic)]) != recLogMagic {
		return nil, rec, fmt.Errorf("%w: %s: bad magic", ErrRecLogCorrupt, path)
	}
	body := b[len(recLogMagic):]
	valid, damage, _ := walkFrames(body, func(typ byte, payload []byte) error {
		rec.Records = append(rec.Records, RecLogRecord{Type: typ, Payload: append([]byte(nil), payload...)})
		return nil
	})
	if damage != nil {
		// Torn tail or rewritten history? A crash mid-append can only
		// damage the final record, so if any complete, CRC-valid frame
		// survives past the damage point the file was corrupted, not cut.
		if off := nextValidFrame(body[valid:]); off >= 0 {
			return nil, RecLogRecovery{}, fmt.Errorf("%w: %s: %v at byte %d with intact records after it",
				ErrRecLogCorrupt, path, damage, len(recLogMagic)+valid)
		}
		rec.TornBytes = int64(len(body) - valid)
		if err := os.Truncate(path, int64(len(recLogMagic)+valid)); err != nil {
			return nil, RecLogRecovery{}, fmt.Errorf("wal: record log: truncating torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, RecLogRecovery{}, fmt.Errorf("wal: record log: %w", err)
	}
	if rec.TornBytes > 0 {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, RecLogRecovery{}, fmt.Errorf("wal: record log: %w", err)
		}
	}
	return &RecLog{path: path, f: f, count: len(rec.Records)}, rec, nil
}

// nextValidFrame scans b for any offset at which a complete,
// CRC-valid frame parses, returning -1 if none exists. It is the
// torn-vs-corrupt classifier: a torn tail is garbage to EOF; a bit
// flip mid-log leaves the later records parseable at their original
// offsets.
func nextValidFrame(b []byte) int {
	for off := 1; off+frameSize <= len(b); off++ {
		rest := b[off:]
		n := binary.LittleEndian.Uint32(rest)
		if n < 1 || n > maxRecord || int(n) > len(rest)-8 {
			continue
		}
		if crc32.Checksum(rest[8:8+int(n)], castagnoli) == binary.LittleEndian.Uint32(rest[4:]) {
			return off
		}
	}
	return -1
}

func createRecLog(path string) (*os.File, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: record log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: record log: %w", err)
	}
	if _, err := f.Write([]byte(recLogMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: record log: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: record log: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: record log: %w", err)
	}
	return f, nil
}

// Append writes one record and fsyncs before returning: when Append
// returns nil the record is durable.
func (l *RecLog) Append(typ byte, payload []byte) error {
	if l.f == nil {
		return ErrClosed
	}
	frame := appendFrame(make([]byte, 0, frameSize+len(payload)), typ, payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: record log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: record log: %w", err)
	}
	l.count++
	return nil
}

// Count reports the records currently in the file — the compaction
// trigger.
func (l *RecLog) Count() int { return l.count }

// Rewrite atomically replaces the log's contents with recs (tmp +
// fsync + rename + dirsync) and leaves the log open for appending.
func (l *RecLog) Rewrite(recs []RecLogRecord) error {
	if l.f == nil {
		return ErrClosed
	}
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: record log: %w", err)
	}
	buf := []byte(recLogMagic)
	for _, r := range recs {
		buf = appendFrame(buf, r.Type, r.Payload)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: record log: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: record log: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: record log: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: record log: %w", err)
	}
	if err := syncDir(filepath.Dir(l.path)); err != nil {
		return fmt.Errorf("wal: record log: %w", err)
	}
	old := l.f
	nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: record log: %w", err)
	}
	old.Close()
	l.f = nf
	l.count = len(recs)
	return nil
}

// Close releases the file handle. Further Appends fail with ErrClosed.
func (l *RecLog) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
