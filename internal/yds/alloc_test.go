package yds

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/workload"
)

// TestSessionArriveSteadyStateAllocFree pins the tentpole guarantee of
// the dense sessions: once warm, an arrival allocates nothing — state
// lives in reused buffers and scratch, and the only growth left is the
// amortized doubling of the output segment list. The guard fails the
// build if a per-arrival allocation sneaks back in.
func TestSessionArriveSteadyStateAllocFree(t *testing.T) {
	pm := power.New(2)
	in := workload.HeavyTail(workload.Config{
		N: 6000, M: 1, Alpha: 2, Seed: 3, Horizon: 600, ValueScale: math.Inf(1),
	})
	in.Normalize()
	const warm, runs = 5000, 500
	for name, mk := range map[string]func() session{
		"oa":  func() session { return NewOASession() },
		"avr": func() session { return NewAVRSession() },
		"qoa": func() session { return NewQOASession(pm) },
	} {
		s := mk()
		for _, j := range in.Jobs[:warm] {
			if err := s.Arrive(j); err != nil {
				t.Fatalf("%s: warmup: %v", name, err)
			}
		}
		i := warm
		avg := testing.AllocsPerRun(runs, func() {
			if err := s.Arrive(in.Jobs[i]); err != nil {
				t.Fatalf("%s: arrive %d: %v", name, i, err)
			}
			i++
		})
		// The occasional doubling of the segment buffer amortizes to
		// well under one allocation per arrival; anything near 1 means
		// a real per-arrival allocation returned.
		if avg > 0.5 {
			t.Errorf("%s: %.3f allocs per steady-state arrival, want ~0", name, avg)
		}
		if _, err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

// TestSessionStateStaysBounded pins the pruning satellite: after a
// long replay the sessions retain only the live window, not the whole
// history — finished and expired jobs must leave the dense state.
func TestSessionStateStaysBounded(t *testing.T) {
	pm := power.New(2)
	in := workload.HeavyTail(workload.Config{
		N: 6000, M: 1, Alpha: 2, Seed: 5, Horizon: 600, ValueScale: math.Inf(1),
	})
	in.Normalize()
	const bound = 1500 // live windows span ~O(rate·span) « n jobs
	oa, avr, qoa := NewOASession(), NewAVRSession(), NewQOASession(pm)
	for _, j := range in.Jobs {
		for name, s := range map[string]session{"oa": oa, "avr": avr, "qoa": qoa} {
			if err := s.Arrive(j); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	if n := len(oa.live.jobs); n > bound {
		t.Errorf("oa retains %d jobs after %d arrivals, want O(backlog)", n, len(in.Jobs))
	}
	if n := len(avr.known); n > bound {
		t.Errorf("avr retains %d jobs after %d arrivals, want O(backlog)", n, len(in.Jobs))
	}
	if n := len(qoa.live.jobs); n > bound {
		t.Errorf("qoa retains %d jobs after %d arrivals, want O(backlog)", n, len(in.Jobs))
	}
	for name, s := range map[string]session{"oa": oa, "avr": avr, "qoa": qoa} {
		if _, err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}
