// Truly-online sessions for OA, AVR and qOA: the same algorithms as
// the batch entry points in online.go, but maintained arrival by
// arrival, so per-arrival latency is the algorithm's real planning
// cost and the live plan can be observed mid-stream. The batch
// functions remain as the executable specification; differential tests
// pin every session's schedule byte-identical to its batch
// counterpart on normalized (release-ordered) instances — the order
// the engine always feeds, and the only order sessions accept. (Batch
// AVR breaks same-interval ties in raw slice order, so the claim is
// scoped to instances where the two orders coincide.)
//
// The key fact making the decomposition exact: jobs arrive in release
// order, so at the moment a job with release T arrives, every atomic-
// interval boundary of the eventual full instance inside [frontier, T]
// is already known (releases of arrived jobs, deadlines of arrived
// jobs, and T itself). A session can therefore finalise the schedule
// up to T using only its local state and still land on exactly the
// grid the batch algorithm builds from the whole trace.
//
// Sessions are built for live traffic: state is dense (sorted slices,
// no maps), scratch is reused across arrivals, finished and expired
// jobs are retired as the frontier passes them, and the boundary grid
// is maintained incrementally. Per-arrival cost is therefore
// amortized O(live backlog), independent of how many jobs the session
// has absorbed, and steady-state arrivals allocate nothing beyond the
// amortized growth of the output segment list (see hotpath.go).

package yds

import (
	"fmt"
	"math"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
)

// SessionState is a mid-stream observation of an online session: the
// arrival frontier, the live backlog and the speed the current plan
// runs at right now.
type SessionState struct {
	Time        float64 // release time of the latest arrival (the frontier)
	Arrivals    int     // jobs handed to the session so far
	Pending     int     // jobs with unfinished work
	PendingWork float64 // total unfinished work
	Speed       float64 // planned speed at Time
}

// frontier is the arrival bookkeeping shared by all sessions.
type frontier struct {
	t        float64
	started  bool
	closed   bool
	arrivals int
}

// observe validates the arrival against the session lifecycle and
// reports whether the frontier moved strictly forward (the session
// must finalise [old frontier, j.Release] before absorbing j).
//
//schedlint:hotpath
func (f *frontier) observe(j job.Job) (moved bool, err error) {
	if f.closed {
		return false, fmt.Errorf("yds: session already closed, cannot accept job %d", j.ID) //schedlint:allowalloc misuse error path, arrival rejected
	}
	if !f.started {
		f.started, f.t = true, j.Release
		f.arrivals++
		return false, nil
	}
	if j.Release < f.t {
		return false, fmt.Errorf("yds: job %d released at %v arrives behind the frontier %v (feed jobs in release order)", //schedlint:allowalloc misuse error path, arrival rejected
			j.ID, j.Release, f.t)
	}
	f.arrivals++
	return j.Release > f.t, nil
}

// --- OA ---

// OASession runs Optimal Available incrementally: every arrival
// replans the staircase over the live pending work, and the plan in
// force is executed up to each new arrival's release (and to the end
// at Close). The emitted schedule is byte-identical to OA's. Finished
// jobs are retired from the live set after every execution, so the
// per-arrival replan costs O(live backlog), allocation-free.
type OASession struct {
	fr   frontier
	live liveSet
	st   stair // current plan in st.blocks
	segs segList
}

// NewOASession returns an empty OA session.
func NewOASession() *OASession { return &OASession{} }

// Arrive absorbs the next job (release order required) and replans.
//
//schedlint:hotpath
func (s *OASession) Arrive(j job.Job) error {
	moved, err := s.fr.observe(j)
	if err != nil {
		return err
	}
	if moved {
		// The plan computed after the previous group's last arrival is
		// exactly the plan batch OA follows until this release.
		execPlan(s.st.blocks, j.Release, s.live.jobs, &s.segs)
		s.fr.t = j.Release
	}
	// Retire jobs the execution just finished, then admit the arrival
	// at its sorted position.
	s.retire()
	s.live.insert(j)
	return s.st.build(s.fr.t, s.live.jobs)
}

// retire compacts finished jobs out of the live set (rem clamped to
// exactly zero — the batch pending filter is rem > 0).
//
//schedlint:hotpath
func (s *OASession) retire() {
	w := 0
	for _, p := range s.live.jobs {
		if p.rem > 0 {
			s.live.jobs[w] = p
			w++
		}
	}
	s.live.jobs = s.live.jobs[:w]
}

// ArriveBatch absorbs a run of arrivals in one call, coalescing the
// replans of same-release groups: the sequential path rebuilds the
// staircase after every arrival, but a plan is only ever *executed*
// when the frontier moves (or at Close), so only the last build of
// each group is observable. Skipping the intermediate builds leaves
// every executed plan with bit-identical inputs — the emitted schedule
// is byte-equal to feeding the jobs one at a time, which the
// differential tests pin. It returns how many jobs the session
// absorbed into its live state; on an error the remaining jobs are
// untouched. A *build* error counts the jobs already inserted as
// absorbed (they are in the live set, exactly like the sequential
// path's post-error state), so the caller's bookkeeping never
// diverges from the policy's.
//
//schedlint:hotpath
func (s *OASession) ArriveBatch(js []job.Job) (int, error) {
	for i, j := range js {
		moved, err := s.fr.observe(j)
		if err != nil {
			// Plan the absorbed tail so the session state matches the
			// sequential path's (whose last build covered it already).
			if berr := s.st.build(s.fr.t, s.live.jobs); berr != nil {
				return i, berr
			}
			return i, err
		}
		if moved {
			if err := s.st.build(s.fr.t, s.live.jobs); err != nil {
				return i, err
			}
			execPlan(s.st.blocks, j.Release, s.live.jobs, &s.segs)
			s.fr.t = j.Release
		}
		s.retire()
		s.live.insert(j)
	}
	if err := s.st.build(s.fr.t, s.live.jobs); err != nil {
		return len(js), err
	}
	return len(js), nil
}

// Close runs the final plan to completion and returns the schedule.
func (s *OASession) Close() (*sched.Schedule, error) {
	if s.fr.closed {
		return nil, fmt.Errorf("yds: OA session closed twice")
	}
	s.fr.closed = true
	execPlan(s.st.blocks, math.Inf(1), s.live.jobs, &s.segs)
	return &sched.Schedule{M: 1, Segments: s.segs.materialize()}, nil
}

// State reports the live backlog and current plan speed.
func (s *OASession) State() SessionState {
	st := SessionState{Time: s.fr.t, Arrivals: s.fr.arrivals}
	for _, p := range s.live.jobs {
		if p.rem > 0 {
			st.Pending++
			st.PendingWork += p.rem
		}
	}
	if len(s.st.blocks) > 0 {
		st.Speed = s.st.blocks[0].speed
	}
	return st
}

// --- AVR ---

// AVRSession runs Average Rate incrementally: each arrival finalises
// the schedule up to its release (all active densities there are
// known) and adds the job's density to the live set. The emitted
// schedule is byte-identical to AVR's on a normalized instance (AVR
// orders same-interval time shares by the instance's slice order, the
// session by arrival order). Jobs whose windows the frontier has
// passed are pruned, and the atomic-interval grid is maintained
// incrementally, so each arrival costs O(live backlog), not O(jobs
// absorbed so far).
type AVRSession struct {
	fr     frontier
	known  []job.Job // live window jobs, arrival order
	grid   boundGrid
	bounds []float64 // emit scratch
	active []int     // emit scratch: indices into known
	segs   segList
}

// NewAVRSession returns an empty AVR session.
func NewAVRSession() *AVRSession { return &AVRSession{} }

// emit materialises the AVR schedule over [fr.t, T]: within each
// atomic interval the active jobs run sequentially with time shares
// proportional to their densities, exactly as the batch loop does.
// The interval boundaries come from the incremental grid, which holds
// exactly the batch grid's boundaries beyond the frontier.
//
//schedlint:hotpath
func (s *AVRSession) emit(T float64) {
	s.bounds = append(s.bounds[:0], s.fr.t)
	s.bounds = s.grid.appendUpTo(s.bounds, T)
	for k := 0; k+1 < len(s.bounds); k++ {
		t0, t1 := s.bounds[k], s.bounds[k+1]
		var total float64
		s.active = s.active[:0]
		for i, j := range s.known {
			if j.Release <= t0 && j.Deadline >= t1 {
				s.active = append(s.active, i)
				total += j.Density()
			}
		}
		if total <= 0 {
			continue
		}
		t := t0
		for _, i := range s.active {
			j := s.known[i]
			share := (t1 - t0) * j.Density() / total
			s.segs.add(sched.Segment{
				Proc: 0, Job: j.ID, T0: t, T1: t + share, Speed: total,
			})
			t += share
		}
	}
}

// prune retires jobs whose windows closed at or before the frontier:
// no future atomic interval can admit them (it would need deadline ≥
// its right endpoint > frontier), so they can never contribute again.
//
//schedlint:hotpath
func (s *AVRSession) prune() {
	w := 0
	for _, j := range s.known {
		if j.Deadline > s.fr.t {
			s.known[w] = j
			w++
		}
	}
	s.known = s.known[:w]
}

// Arrive absorbs the next job (release order required), finalising the
// schedule up to its release first.
//
//schedlint:hotpath
func (s *AVRSession) Arrive(j job.Job) error {
	moved, err := s.fr.observe(j)
	if err != nil {
		return err
	}
	if moved {
		s.emit(j.Release)
		s.fr.t = j.Release
		s.prune()
	}
	s.known = append(s.known, j)
	s.grid.insert(j.Deadline)
	return nil
}

// ArriveBatch absorbs a run of arrivals in one call. AVR does no
// per-arrival replanning beyond the frontier-move emit, so the batch
// entry point is the sequential loop without per-call overhead; it
// returns how many jobs were absorbed before the first error.
//
//schedlint:hotpath
func (s *AVRSession) ArriveBatch(js []job.Job) (int, error) {
	for i := range js {
		if err := s.Arrive(js[i]); err != nil {
			return i, err
		}
	}
	return len(js), nil
}

// Close finalises the schedule through the last deadline.
func (s *AVRSession) Close() (*sched.Schedule, error) {
	if s.fr.closed {
		return nil, fmt.Errorf("yds: AVR session closed twice")
	}
	s.fr.closed = true
	if s.fr.started {
		if T, ok := s.grid.max(); ok && T > s.fr.t {
			s.emit(T)
			s.fr.t = T
		}
	}
	return &sched.Schedule{M: 1, Segments: s.segs.materialize()}, nil
}

// State reports the live density backlog: every known job whose window
// is still open contributes its density to the current speed and its
// remaining average-rate work to the backlog.
func (s *AVRSession) State() SessionState {
	st := SessionState{Time: s.fr.t, Arrivals: s.fr.arrivals}
	for _, j := range s.known {
		if j.Deadline > s.fr.t {
			st.Pending++
			st.PendingWork += j.Density() * (j.Deadline - s.fr.t)
			st.Speed += j.Density()
		}
	}
	return st
}

// --- qOA ---

// QOASession runs qOA incrementally: each arrival advances the grid
// simulation (OA staircase speed scaled by q, executed EDF) up to its
// release over the atomic intervals of the jobs known so far. The
// emitted schedule is byte-identical to QOA's. The live set retires
// finished and expired jobs as the grid passes them and all planning
// scratch is reused, so an arrival costs O(live backlog) per grid
// step, allocation-free.
type QOASession struct {
	fr     frontier
	pol    qoaSim
	live   liveSet
	sim    gridSim
	grid   boundGrid
	bounds []float64 // advance scratch
	segs   segList
}

// NewQOASession returns an empty qOA session for the power model's
// exponent (q = 2 - 1/α).
func NewQOASession(pm power.Model) *QOASession {
	return &QOASession{pol: qoaSim{q: 2 - 1/pm.Alpha}}
}

// advance simulates [fr.t, T] on the same grid the batch simulator
// would use there.
//
//schedlint:hotpath
func (s *QOASession) advance(T float64) error {
	s.bounds = append(s.bounds[:0], s.fr.t)
	s.bounds = s.grid.appendUpTo(s.bounds, T)
	for k := 0; k+1 < len(s.bounds); k++ {
		if err := s.sim.span(s.bounds[k], s.bounds[k+1], &s.live, &s.pol, &s.segs); err != nil {
			return err
		}
	}
	return nil
}

// Arrive absorbs the next job (release order required), simulating up
// to its release first.
//
//schedlint:hotpath
func (s *QOASession) Arrive(j job.Job) error {
	moved, err := s.fr.observe(j)
	if err != nil {
		return err
	}
	if moved {
		if err := s.advance(j.Release); err != nil {
			return err
		}
		s.fr.t = j.Release
	}
	s.live.insert(j)
	s.grid.insert(j.Deadline)
	return nil
}

// ArriveBatch absorbs a run of arrivals in one call; the grid advance
// already happens only on frontier moves, so this is the sequential
// loop minus per-call overhead. It returns how many jobs were
// absorbed before the first error.
//
//schedlint:hotpath
func (s *QOASession) ArriveBatch(js []job.Job) (int, error) {
	for i := range js {
		if err := s.Arrive(js[i]); err != nil {
			return i, err
		}
	}
	return len(js), nil
}

// Close simulates through the last deadline and returns the schedule;
// like the batch simulator it fails if any job is left unfinished.
func (s *QOASession) Close() (*sched.Schedule, error) {
	if s.fr.closed {
		return nil, fmt.Errorf("yds: qOA session closed twice")
	}
	s.fr.closed = true
	if s.fr.started {
		if T, ok := s.grid.max(); ok && T > s.fr.t {
			if err := s.advance(T); err != nil {
				return nil, err
			}
			s.fr.t = T
		}
	}
	if err := s.sim.checkFinished(&s.live); err != nil {
		return nil, err
	}
	return &sched.Schedule{M: 1, Segments: s.segs.materialize()}, nil
}

// State reports the live backlog and the qOA speed at the frontier.
// The staircase is planned over the unfinished jobs only: a job that
// finished in the final grid step of the last advance lingers in the
// live set (rem 0) until the next span compacts it, and must not trip
// the planner's past-deadline check.
func (s *QOASession) State() SessionState {
	st := SessionState{Time: s.fr.t, Arrivals: s.fr.arrivals}
	pend := make([]liveJob, 0, len(s.live.jobs))
	for _, p := range s.live.jobs {
		if p.rem > 0 {
			st.Pending++
			st.PendingWork += p.rem
			pend = append(pend, p)
		}
	}
	if sp, err := s.pol.speedAt(s.fr.t, pend); err == nil {
		st.Speed = sp
	}
	return st
}
