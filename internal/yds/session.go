// Truly-online sessions for OA, AVR and qOA: the same algorithms as
// the batch entry points in online.go, but maintained arrival by
// arrival, so per-arrival latency is the algorithm's real planning
// cost and the live plan can be observed mid-stream. The batch
// functions remain as the executable specification; differential tests
// pin every session's schedule byte-identical to its batch
// counterpart on normalized (release-ordered) instances — the order
// the engine always feeds, and the only order sessions accept. (Batch
// AVR breaks same-interval ties in raw slice order, so the claim is
// scoped to instances where the two orders coincide.)
//
// The key fact making the decomposition exact: jobs arrive in release
// order, so at the moment a job with release T arrives, every atomic-
// interval boundary of the eventual full instance inside [frontier, T]
// is already known (releases of arrived jobs, deadlines of arrived
// jobs, and T itself). A session can therefore finalise the schedule
// up to T using only its local state and still land on exactly the
// grid the batch algorithm builds from the whole trace.

package yds

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
)

// SessionState is a mid-stream observation of an online session: the
// arrival frontier, the live backlog and the speed the current plan
// runs at right now.
type SessionState struct {
	Time        float64 // release time of the latest arrival (the frontier)
	Arrivals    int     // jobs handed to the session so far
	Pending     int     // jobs with unfinished work
	PendingWork float64 // total unfinished work
	Speed       float64 // planned speed at Time
}

// frontier is the arrival bookkeeping shared by all sessions.
type frontier struct {
	t        float64
	started  bool
	closed   bool
	arrivals int
}

// observe validates the arrival against the session lifecycle and
// reports whether the frontier moved strictly forward (the session
// must finalise [old frontier, j.Release] before absorbing j).
func (f *frontier) observe(j job.Job) (moved bool, err error) {
	if f.closed {
		return false, fmt.Errorf("yds: session already closed, cannot accept job %d", j.ID)
	}
	if !f.started {
		f.started, f.t = true, j.Release
		f.arrivals++
		return false, nil
	}
	if j.Release < f.t {
		return false, fmt.Errorf("yds: job %d released at %v arrives behind the frontier %v (feed jobs in release order)",
			j.ID, j.Release, f.t)
	}
	f.arrivals++
	return j.Release > f.t, nil
}

// boundsWithin collects the distinct releases and deadlines of the
// known jobs inside [t0, t1], always including t0 and t1 themselves,
// sorted ascending. Both endpoints are boundaries of the eventual full
// instance (releases of arrived jobs or the final deadline horizon),
// so slicing the global atomic-interval grid at them reproduces the
// batch grid exactly.
func boundsWithin(t0, t1 float64, known []job.Job) []float64 {
	set := map[float64]struct{}{t0: {}, t1: {}}
	for _, j := range known {
		for _, b := range [2]float64{j.Release, j.Deadline} {
			if b >= t0 && b <= t1 {
				set[b] = struct{}{}
			}
		}
	}
	out := make([]float64, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Float64s(out)
	return out
}

// maxDeadline returns the latest deadline among the known jobs.
func maxDeadline(known []job.Job) float64 {
	d := math.Inf(-1)
	for _, j := range known {
		d = math.Max(d, j.Deadline)
	}
	return d
}

// --- OA ---

// OASession runs Optimal Available incrementally: every arrival
// replans the staircase over the live pending work, and the plan in
// force is executed up to each new arrival's release (and to the end
// at Close). The emitted schedule is byte-identical to OA's.
type OASession struct {
	fr   frontier
	rem  map[int]float64
	meta map[int]job.Job
	plan []Block
	segs []sched.Segment
}

// NewOASession returns an empty OA session.
func NewOASession() *OASession {
	return &OASession{rem: map[int]float64{}, meta: map[int]job.Job{}}
}

func (s *OASession) pending() []Pending {
	pend := make([]Pending, 0, len(s.rem))
	for id, r := range s.rem {
		if r > 0 {
			pend = append(pend, Pending{ID: id, Deadline: s.meta[id].Deadline, Rem: r})
		}
	}
	return pend
}

// Arrive absorbs the next job (release order required) and replans.
func (s *OASession) Arrive(j job.Job) error {
	moved, err := s.fr.observe(j)
	if err != nil {
		return err
	}
	if moved {
		// The plan computed after the previous group's last arrival is
		// exactly the plan batch OA follows until this release.
		ExecutePlan(s.plan, j.Release, s.rem, &s.segs)
		s.fr.t = j.Release
	}
	s.rem[j.ID] = j.Work
	s.meta[j.ID] = j
	plan, err := Staircase(s.fr.t, s.pending())
	if err != nil {
		return err
	}
	s.plan = plan
	return nil
}

// Close runs the final plan to completion and returns the schedule.
func (s *OASession) Close() (*sched.Schedule, error) {
	if s.fr.closed {
		return nil, fmt.Errorf("yds: OA session closed twice")
	}
	s.fr.closed = true
	ExecutePlan(s.plan, math.Inf(1), s.rem, &s.segs)
	return &sched.Schedule{M: 1, Segments: s.segs}, nil
}

// State reports the live backlog and current plan speed.
func (s *OASession) State() SessionState {
	st := SessionState{Time: s.fr.t, Arrivals: s.fr.arrivals}
	for _, r := range s.rem {
		if r > 0 {
			st.Pending++
			st.PendingWork += r
		}
	}
	if len(s.plan) > 0 {
		st.Speed = s.plan[0].Speed
	}
	return st
}

// --- AVR ---

// AVRSession runs Average Rate incrementally: each arrival finalises
// the schedule up to its release (all active densities there are
// known) and adds the job's density to the live set. The emitted
// schedule is byte-identical to AVR's on a normalized instance (AVR
// orders same-interval time shares by the instance's slice order, the
// session by arrival order).
type AVRSession struct {
	fr    frontier
	known []job.Job
	segs  []sched.Segment
}

// NewAVRSession returns an empty AVR session.
func NewAVRSession() *AVRSession { return &AVRSession{} }

// emit materialises the AVR schedule over [fr.t, T]: within each
// atomic interval the active jobs run sequentially with time shares
// proportional to their densities, exactly as the batch loop does.
func (s *AVRSession) emit(T float64) {
	bounds := boundsWithin(s.fr.t, T, s.known)
	for k := 0; k+1 < len(bounds); k++ {
		t0, t1 := bounds[k], bounds[k+1]
		var total float64
		var active []job.Job
		for _, j := range s.known {
			if j.Release <= t0 && j.Deadline >= t1 {
				active = append(active, j)
				total += j.Density()
			}
		}
		if total <= 0 {
			continue
		}
		t := t0
		for _, j := range active {
			share := (t1 - t0) * j.Density() / total
			s.segs = append(s.segs, sched.Segment{
				Proc: 0, Job: j.ID, T0: t, T1: t + share, Speed: total,
			})
			t += share
		}
	}
}

// Arrive absorbs the next job (release order required), finalising the
// schedule up to its release first.
func (s *AVRSession) Arrive(j job.Job) error {
	moved, err := s.fr.observe(j)
	if err != nil {
		return err
	}
	if moved {
		s.emit(j.Release)
		s.fr.t = j.Release
	}
	s.known = append(s.known, j)
	return nil
}

// Close finalises the schedule through the last deadline.
func (s *AVRSession) Close() (*sched.Schedule, error) {
	if s.fr.closed {
		return nil, fmt.Errorf("yds: AVR session closed twice")
	}
	s.fr.closed = true
	if s.fr.started {
		if T := maxDeadline(s.known); T > s.fr.t {
			s.emit(T)
			s.fr.t = T
		}
	}
	return &sched.Schedule{M: 1, Segments: s.segs}, nil
}

// State reports the live density backlog: every known job whose window
// is still open contributes its density to the current speed and its
// remaining average-rate work to the backlog.
func (s *AVRSession) State() SessionState {
	st := SessionState{Time: s.fr.t, Arrivals: s.fr.arrivals}
	for _, j := range s.known {
		if j.Deadline > s.fr.t {
			st.Pending++
			st.PendingWork += j.Density() * (j.Deadline - s.fr.t)
			st.Speed += j.Density()
		}
	}
	return st
}

// --- qOA ---

// QOASession runs qOA incrementally: each arrival advances the grid
// simulation (OA staircase speed scaled by q, executed EDF) up to its
// release over the atomic intervals of the jobs known so far. The
// emitted schedule is byte-identical to QOA's.
type QOASession struct {
	fr    frontier
	speed speedFunc
	rem   map[int]float64
	meta  map[int]job.Job
	known []job.Job
	segs  []sched.Segment
}

// NewQOASession returns an empty qOA session for the power model's
// exponent (q = 2 - 1/α).
func NewQOASession(pm power.Model) *QOASession {
	return &QOASession{
		speed: qoaSpeed(2 - 1/pm.Alpha),
		rem:   map[int]float64{}, meta: map[int]job.Job{},
	}
}

// advance simulates [fr.t, T] on the same grid the batch simulator
// would use there.
func (s *QOASession) advance(T float64) error {
	bounds := boundsWithin(s.fr.t, T, s.known)
	for k := 0; k+1 < len(bounds); k++ {
		if err := simulateSpan(bounds[k], bounds[k+1], s.known, s.rem, s.meta, s.speed, &s.segs); err != nil {
			return err
		}
	}
	return nil
}

// Arrive absorbs the next job (release order required), simulating up
// to its release first.
func (s *QOASession) Arrive(j job.Job) error {
	moved, err := s.fr.observe(j)
	if err != nil {
		return err
	}
	if moved {
		if err := s.advance(j.Release); err != nil {
			return err
		}
		s.fr.t = j.Release
	}
	s.rem[j.ID] = j.Work
	s.meta[j.ID] = j
	s.known = append(s.known, j)
	return nil
}

// Close simulates through the last deadline and returns the schedule;
// like the batch simulator it fails if any job is left unfinished.
func (s *QOASession) Close() (*sched.Schedule, error) {
	if s.fr.closed {
		return nil, fmt.Errorf("yds: qOA session closed twice")
	}
	s.fr.closed = true
	if s.fr.started {
		if T := maxDeadline(s.known); T > s.fr.t {
			if err := s.advance(T); err != nil {
				return nil, err
			}
			s.fr.t = T
		}
	}
	for id, r := range s.rem {
		if r > 1e-6*s.meta[id].Work {
			return nil, fmt.Errorf("yds: simulated policy left %v work of job %d", r, id)
		}
	}
	return &sched.Schedule{M: 1, Segments: s.segs}, nil
}

// State reports the live backlog and the qOA speed at the frontier.
func (s *QOASession) State() SessionState {
	st := SessionState{Time: s.fr.t, Arrivals: s.fr.arrivals}
	pend := make([]Pending, 0, len(s.rem))
	for id, r := range s.rem {
		if r > 0 {
			st.Pending++
			st.PendingWork += r
			pend = append(pend, Pending{ID: id, Deadline: s.meta[id].Deadline, Rem: r})
		}
	}
	if sp, err := s.speed(s.fr.t, s.known, pend); err == nil {
		st.Speed = sp
	}
	return st
}
