package yds

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

// session is the shape shared by the incremental planners under test.
type session interface {
	Arrive(job.Job) error
	Close() (*sched.Schedule, error)
	State() SessionState
}

// replaySession drives a session over the instance in release order.
func replaySession(t *testing.T, s session, in *job.Instance) *sched.Schedule {
	t.Helper()
	inst := in.Clone()
	inst.Normalize()
	for _, j := range inst.Jobs {
		if err := s.Arrive(j); err != nil {
			t.Fatalf("arrive job %d: %v", j.ID, err)
		}
	}
	out, err := s.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	return out
}

// scheduleJSON serialises a schedule so two runs can be compared byte
// for byte (float64 round-trips losslessly through encoding/json).
func scheduleJSON(t *testing.T, s *sched.Schedule) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		M        int
		Segments []sched.Segment
		Rejected []int
	}{s.M, s.Segments, s.Rejected})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// diffTraces is the workload sweep the sessions are pinned on: random
// uniform/Poisson traces and heavy-tailed ones, several seeds each,
// including simultaneous releases (coarse Horizon forces ties).
func diffTraces(t *testing.T) []*job.Instance {
	t.Helper()
	var traces []*job.Instance
	for seed := int64(1); seed <= 4; seed++ {
		traces = append(traces,
			workload.Uniform(workload.Config{N: 40, M: 1, Alpha: 2, Seed: seed, ValueScale: math.Inf(1)}),
			workload.Poisson(workload.Config{N: 30, M: 1, Alpha: 2.5, Seed: seed, ValueScale: math.Inf(1)}),
			workload.HeavyTail(workload.Config{N: 35, M: 1, Alpha: 2, Seed: seed, ValueScale: math.Inf(1)}),
		)
	}
	// Hand-built trace with duplicate release times and an isolated
	// late job (an idle gap the incremental frontier must cross).
	traces = append(traces, &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 4, Work: 2, Value: math.Inf(1)},
		{ID: 1, Release: 0, Deadline: 2, Work: 1, Value: math.Inf(1)},
		{ID: 2, Release: 1, Deadline: 3, Work: 1.5, Value: math.Inf(1)},
		{ID: 3, Release: 1, Deadline: 6, Work: 0.5, Value: math.Inf(1)},
		{ID: 4, Release: 9, Deadline: 11, Work: 1, Value: math.Inf(1)},
	}})
	// Batch AVR/qOA iterate jobs in instance order; the engine always
	// feeds policies the normalized order. Compare both paths on the
	// order the engine actually uses.
	for _, in := range traces {
		in.Normalize()
	}
	return traces
}

func TestOASessionMatchesBatchByteForByte(t *testing.T) {
	for i, in := range diffTraces(t) {
		batch, err := OA(in)
		if err != nil {
			t.Fatalf("trace %d: batch OA: %v", i, err)
		}
		live := replaySession(t, NewOASession(), in)
		if !bytes.Equal(scheduleJSON(t, batch), scheduleJSON(t, live)) {
			t.Fatalf("trace %d: OA session diverges from batch OA", i)
		}
	}
}

func TestAVRSessionMatchesBatchByteForByte(t *testing.T) {
	for i, in := range diffTraces(t) {
		batch, err := AVR(in)
		if err != nil {
			t.Fatalf("trace %d: batch AVR: %v", i, err)
		}
		live := replaySession(t, NewAVRSession(), in)
		if !bytes.Equal(scheduleJSON(t, batch), scheduleJSON(t, live)) {
			t.Fatalf("trace %d: AVR session diverges from batch AVR", i)
		}
	}
}

func TestQOASessionMatchesBatchByteForByte(t *testing.T) {
	pm := power.New(2)
	for i, in := range diffTraces(t) {
		batch, err := QOA(in, pm)
		if err != nil {
			t.Fatalf("trace %d: batch qOA: %v", i, err)
		}
		live := replaySession(t, NewQOASession(pm), in)
		if !bytes.Equal(scheduleJSON(t, batch), scheduleJSON(t, live)) {
			t.Fatalf("trace %d: qOA session diverges from batch qOA", i)
		}
	}
}

func TestSessionsVerifyAndFinish(t *testing.T) {
	pm := power.New(2)
	for i, in := range diffTraces(t) {
		for name, s := range map[string]session{
			"oa": NewOASession(), "avr": NewAVRSession(), "qoa": NewQOASession(pm),
		} {
			out := replaySession(t, s, in)
			if err := sched.Verify(in, out); err != nil {
				t.Fatalf("trace %d: %s session schedule infeasible: %v", i, name, err)
			}
		}
	}
}

// TestSessionSnapshotsObserveBacklog pins the mid-stream observability
// contract: after an arrival the state reflects the live pending work
// and a positive planned speed; after Close nothing is pending for OA
// and qOA (they track remaining work exactly).
func TestSessionSnapshotsObserveBacklog(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: math.Inf(1)},
		{ID: 1, Release: 0.5, Deadline: 3, Work: 2, Value: math.Inf(1)},
	}}
	pm := power.New(2)
	for name, s := range map[string]session{
		"oa": NewOASession(), "avr": NewAVRSession(), "qoa": NewQOASession(pm),
	} {
		if err := s.Arrive(in.Jobs[0]); err != nil {
			t.Fatal(err)
		}
		st := s.State()
		if st.Arrivals != 1 || st.Pending != 1 || st.PendingWork <= 0 || st.Speed <= 0 {
			t.Fatalf("%s: implausible state after first arrival: %+v", name, st)
		}
		if err := s.Arrive(in.Jobs[1]); err != nil {
			t.Fatal(err)
		}
		st = s.State()
		if st.Time != 0.5 || st.Arrivals != 2 || st.Pending != 2 {
			t.Fatalf("%s: implausible state after second arrival: %+v", name, st)
		}
		if _, err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

func TestSessionLifecycleErrors(t *testing.T) {
	j0 := job.Job{ID: 0, Release: 1, Deadline: 2, Work: 1, Value: math.Inf(1)}
	j1 := job.Job{ID: 1, Release: 0.5, Deadline: 2, Work: 1, Value: math.Inf(1)}
	pm := power.New(2)
	for name, mk := range map[string]func() session{
		"oa":  func() session { return NewOASession() },
		"avr": func() session { return NewAVRSession() },
		"qoa": func() session { return NewQOASession(pm) },
	} {
		s := mk()
		if err := s.Arrive(j0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Arrive(j1); err == nil {
			t.Fatalf("%s: out-of-order arrival must be rejected", name)
		}
		if _, err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if _, err := s.Close(); err == nil {
			t.Fatalf("%s: double close must fail", name)
		}
		if err := s.Arrive(j0); err == nil {
			t.Fatalf("%s: arrival after close must fail", name)
		}
	}
}

// TestEmptySessions: zero arrivals must close to an empty, valid
// schedule, exactly like the batch algorithms on an empty instance.
func TestEmptySessions(t *testing.T) {
	pm := power.New(2)
	for name, s := range map[string]session{
		"oa": NewOASession(), "avr": NewAVRSession(), "qoa": NewQOASession(pm),
	} {
		out, err := s.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.M != 1 || len(out.Segments) != 0 {
			t.Fatalf("%s: want empty single-processor schedule, got %+v", name, out)
		}
	}
}
