// The allocation-free spine of the online sessions: a dense live set
// of unfinished jobs kept sorted by (deadline, id), an incremental
// boundary grid replacing the per-arrival rebuild of the atomic
// intervals, and scratch-buffer twins of Staircase and ExecutePlan
// that plan and execute over the dense state without allocating.
//
// Every routine here mirrors its map-based counterpart in online.go
// operation for operation, on the same values in the same order, so
// the floats it produces are bit-identical — that is what keeps the
// incremental sessions byte-equal to the batch entry points (the
// executable specification) while turning the per-arrival cost from
// O(arrivals so far) into O(live backlog), amortized, with zero
// steady-state allocations.

package yds

import (
	"fmt"
	"math"

	"repro/internal/job"
	"repro/internal/sched"
)

// segList is the append-only store for a session's emitted schedule
// history. A plain []sched.Segment grown by append pays Go's ~1.25×
// growth factor as a geometric series: the cumulative bytes allocated
// over a long run are ~5× the final schedule size, plus a full copy of
// the history at every growth step — that series was the whole-run
// heap growth BENCH_pr4.json showed for the AVR and qOA sessions.
// segList instead fills fixed chunks that are never copied or
// reallocated: cumulative allocation equals the final size (to within
// one chunk), and appending is O(1) with no large copies. Close
// materialises the chunks into the one contiguous slice the Schedule
// needs.
type segList struct {
	cur  []sched.Segment   // chunk being filled
	full [][]sched.Segment // filled chunks, in order
	n    int               // total segments across cur and full
}

const (
	segChunkMin = 1 << 10 // first chunk: keep small sessions cheap
	segChunkMax = 1 << 18 // later chunks: amortize chunk bookkeeping
)

// add appends one segment.
//
//schedlint:hotpath
func (l *segList) add(s sched.Segment) {
	if len(l.cur) == cap(l.cur) {
		if l.cur != nil {
			l.full = append(l.full, l.cur)
		}
		size := segChunkMin
		for size < l.n && size < segChunkMax {
			size <<= 1
		}
		l.cur = make([]sched.Segment, 0, size) //schedlint:allowalloc amortized chunk growth, doubling to segChunkMax
	}
	l.cur = append(l.cur, s)
	l.n++
}

// len returns the number of stored segments.
func (l *segList) len() int { return l.n }

// materialize concatenates the chunks into one contiguous slice — the
// Close-time hand-off to sched.Schedule.
func (l *segList) materialize() []sched.Segment {
	out := make([]sched.Segment, 0, l.n)
	for _, c := range l.full {
		out = append(out, c...)
	}
	return append(out, l.cur...)
}

// liveJob is one unfinished job in the dense live state.
type liveJob struct {
	id       int
	deadline float64
	rem      float64 // remaining work
	work     float64 // original workload, for the finish check
}

// liveSet holds the unfinished jobs sorted by (deadline, id) — the
// exact order Staircase and the grid simulator sort their pending
// snapshots into, so a set maintained incrementally replays the same
// sequence the batch code re-sorts from scratch every time.
type liveSet struct {
	jobs []liveJob
}

// insert adds an arrived job at its sorted position. The memmove is
// O(live backlog), not O(arrivals): finished and expired jobs are
// retired by the planners as the frontier passes them.
//
//schedlint:hotpath
func (ls *liveSet) insert(j job.Job) {
	lo, hi := 0, len(ls.jobs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ls.jobs[mid].deadline < j.Deadline ||
			(ls.jobs[mid].deadline == j.Deadline && ls.jobs[mid].id < j.ID) { //schedlint:exactfloat deadlines are copied bit-for-bit, ties break by ID
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ls.jobs = append(ls.jobs, liveJob{})
	copy(ls.jobs[lo+1:], ls.jobs[lo:])
	ls.jobs[lo] = liveJob{id: j.ID, deadline: j.Deadline, rem: j.Work, work: j.Work}
}

// boundGrid maintains the future atomic-interval boundaries — the
// deadlines of known jobs beyond the frontier — as a sorted queue.
// Jobs arrive in release order, so every boundary of the eventual full
// instance inside a finalised span is already in the grid when the
// span is emitted (releases never land strictly inside: a job released
// there would have arrived first and moved the frontier). Boundaries
// are consumed once as the frontier passes them, which is what makes
// the per-arrival grid work amortized O(1) entries instead of a full
// rebuild.
type boundGrid struct {
	b    []float64 // sorted; b[head:] are the live future boundaries
	head int
}

// insert registers a boundary (> frontier), keeping the queue sorted
// and deduplicated.
//
//schedlint:hotpath
func (g *boundGrid) insert(x float64) {
	lo, hi := g.head, len(g.b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.b[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.b) && g.b[lo] == x { //schedlint:exactfloat grid dedupe of bit-identical boundaries
		return
	}
	g.b = append(g.b, 0)
	copy(g.b[lo+1:], g.b[lo:])
	g.b[lo] = x
}

// appendUpTo appends the boundaries strictly inside (frontier, t1) to
// dst followed by t1 itself, consuming every entry ≤ t1. With the old
// frontier leading dst, the result is exactly the slice of the batch
// atomic-interval grid covering [frontier, t1].
//
//schedlint:hotpath
func (g *boundGrid) appendUpTo(dst []float64, t1 float64) []float64 {
	for g.head < len(g.b) && g.b[g.head] < t1 {
		dst = append(dst, g.b[g.head])
		g.head++
	}
	if g.head < len(g.b) && g.b[g.head] == t1 { //schedlint:exactfloat grid dedupe of bit-identical boundaries
		g.head++ // dedupe with t1
	}
	dst = append(dst, t1)
	// Reclaim the consumed prefix once it dominates the buffer so the
	// queue's footprint tracks the live backlog, not the session age.
	if g.head > 64 && g.head > len(g.b)-g.head {
		n := copy(g.b, g.b[g.head:])
		g.b = g.b[:n]
		g.head = 0
	}
	return dst
}

// max returns the latest future boundary, if any (the horizon Close
// must simulate to — the latest deadline of any known job beyond the
// frontier, finished or not, exactly like the batch maxDeadline scan).
func (g *boundGrid) max() (float64, bool) {
	if g.head >= len(g.b) {
		return 0, false
	}
	return g.b[len(g.b)-1], true
}

// stairPoint is one distinct deadline of the staircase input: the
// prefix work through it and the index of its last job in the live
// order (Staircase's `point`).
type stairPoint struct {
	d, w float64
	last int
}

// planBlock is one constant-speed step of a staircase plan over the
// dense live set: jobs[first..last] run back-to-back at speed during
// [start, end) — Block with index ranges instead of copied job slices.
type planBlock struct {
	start, end  float64
	speed       float64
	first, last int
}

// stair is the reusable staircase scratch: build is Staircase minus
// the sort (the live set is already in (deadline, id) order), the
// filter (live jobs all have rem > 0) and every allocation.
type stair struct {
	points []stairPoint
	hull   []stairPoint
	blocks []planBlock
}

// build computes the staircase plan for the live set at time t into
// the reused block buffer. The arithmetic is Staircase's, operation
// for operation, so the speeds are bit-identical.
//
//schedlint:hotpath
func (st *stair) build(t float64, jobs []liveJob) error {
	st.blocks = st.blocks[:0]
	if len(jobs) == 0 {
		return nil
	}
	if jobs[0].deadline <= t {
		return fmt.Errorf("yds: job %d has %v work after its deadline %v (t=%v)", //schedlint:allowalloc infeasible-instance error, session dies
			jobs[0].id, jobs[0].rem, jobs[0].deadline, t)
	}
	st.points = st.points[:0]
	var cum float64
	for i, p := range jobs {
		cum += p.rem
		if n := len(st.points); n > 0 && st.points[n-1].d == p.deadline { //schedlint:exactfloat stair group-by on bit-identical deadlines
			st.points[n-1].w, st.points[n-1].last = cum, i
		} else {
			st.points = append(st.points, stairPoint{p.deadline, cum, i})
		}
	}
	hull := st.hull[:0]
	slopeFrom := func(n int, p stairPoint) float64 {
		if n == 0 {
			return p.w / (p.d - t)
		}
		return (p.w - hull[n-1].w) / (p.d - hull[n-1].d)
	}
	for _, p := range st.points {
		for len(hull) > 0 && slopeFrom(len(hull)-1, hull[len(hull)-1]) <= slopeFrom(len(hull)-1, p) {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	st.hull = hull
	start, first := t, 0
	for _, p := range hull {
		st.blocks = append(st.blocks, planBlock{
			start: start, end: p.d, speed: slopeFrom(len(st.blocks), p),
			first: first, last: p.last,
		})
		start, first = p.d, p.last+1
	}
	return nil
}

// execPlan runs the staircase until horizon, emitting segments and
// decrementing rem in the dense live set — ExecutePlan on index
// ranges instead of a rem map, same floats.
//
//schedlint:hotpath
func execPlan(blocks []planBlock, horizon float64, jobs []liveJob, segs *segList) {
	const eps = 1e-12
	for _, b := range blocks {
		if b.start >= horizon {
			return
		}
		t := b.start
		for i := b.first; i <= b.last; i++ {
			if t >= horizon-eps {
				return
			}
			p := &jobs[i]
			r := p.rem
			if r <= eps {
				continue
			}
			dur := r / b.speed
			end := math.Min(t+dur, horizon)
			switch {
			case end > t && end < horizon:
				// Ran to completion by construction (the horizon did
				// not cut it short): retire exactly — see ExecutePlan.
				segs.add(sched.Segment{Proc: 0, Job: p.id, T0: t, T1: end, Speed: b.speed})
				p.rem = 0
				t = end
			case end > t:
				segs.add(sched.Segment{Proc: 0, Job: p.id, T0: t, T1: end, Speed: b.speed})
				p.rem -= (end - t) * b.speed
				// (r/s)·s rarely equals r in floats; clamp the residue
				// so finished jobs do not haunt later plans.
				if p.rem <= eps*(1+r) {
					p.rem = 0
				}
				t = end
			default:
				// Sub-ulp stall: retire true rounding dust; real
				// stranded work stays and fails the next replan loudly
				// (see ExecutePlan).
				if r <= 1e-6*p.work {
					p.rem = 0
				}
			}
		}
	}
}

// simPolicy is the speed seam of the dense grid simulator: observe
// sees each job as it becomes known (BKP's window scan needs them),
// speedAt returns the speed to run at until the next grid point given
// the live pending jobs (sorted by deadline, all rem > eps).
type simPolicy interface {
	observe(j job.Job)
	speedAt(t float64, pend []liveJob) (float64, error)
}

// gridSim is the reusable state of the dense grid simulator — the
// counterpart of simulateSpan's per-step map scan, rem map and sort,
// with jobs retired from the live set the moment the per-step filter
// can never admit them again (finished, or deadline behind the grid).
type gridSim struct {
	unfin    bool // a retired job kept unfinished work
	unfinID  int
	unfinRem float64
}

// span advances the simulation across one atomic interval [t0, t1),
// dividing it into stepsPerInterval steps exactly like simulateSpan:
// at every step it compacts the live set (the batch per-step filter,
// made permanent — rem only decreases and the grid only advances),
// asks the policy for a speed, and executes EDF at that speed with the
// same deadline-pressure guard.
//
//schedlint:hotpath
func (g *gridSim) span(t0, t1 float64, ls *liveSet, pol simPolicy, segs *segList) error {
	const eps = 1e-12
	dt := (t1 - t0) / stepsPerInterval
	for step := 0; step < stepsPerInterval; step++ {
		u0, u1 := t0+float64(step)*dt, t0+float64(step+1)*dt
		w := 0
		for _, p := range ls.jobs {
			if p.rem <= eps || p.deadline <= u0 {
				// Retired for good; remember the first job that leaves
				// with real work — the batch end-of-run check, pulled
				// forward to the moment the outcome is sealed.
				if !g.unfin && p.rem > 1e-6*p.work {
					g.unfin, g.unfinID, g.unfinRem = true, p.id, p.rem
				}
				continue
			}
			ls.jobs[w] = p
			w++
		}
		ls.jobs = ls.jobs[:w]
		if w == 0 {
			continue
		}
		s, err := pol.speedAt(u0, ls.jobs)
		if err != nil {
			return err
		}
		t := u0
		for i := range ls.jobs {
			if t >= u1-eps {
				break
			}
			p := &ls.jobs[i]
			sp := s
			// Deadline pressure: if this is the job's last chance,
			// run fast enough to finish (discretization guard).
			if p.deadline <= u1+eps {
				sp = math.Max(sp, p.rem/(p.deadline-t))
			}
			if sp <= 0 {
				break
			}
			end := math.Min(u1, t+p.rem/sp)
			if end <= t {
				// Sub-ulp stall (see execPlan): retire true rounding
				// dust so it cannot pin the live set; real stranded
				// work stays pending and surfaces through the
				// unfinished-work check exactly as it always has —
				// under deadline pressure sp = rem/(deadline-t), a
				// window collapsed below one ulp strands the job's
				// whole remaining workload here, which must not be
				// silently zeroed.
				if p.rem <= 1e-6*p.work {
					p.rem = 0
				}
				continue
			}
			segs.add(sched.Segment{Proc: 0, Job: p.id, T0: t, T1: end, Speed: sp})
			if end < u1 {
				// Ran to completion at speed sp before the grid point:
				// retire exactly (see execPlan on residue rounding).
				p.rem = 0
			} else {
				p.rem -= (end - t) * sp
			}
			t = end
		}
	}
	return nil
}

// checkFinished is the batch simulator's end-of-run guarantee: every
// job — retired or still live — must have finished within tolerance.
func (g *gridSim) checkFinished(ls *liveSet) error {
	if g.unfin {
		return fmt.Errorf("yds: simulated policy left %v work of job %d", g.unfinRem, g.unfinID)
	}
	for _, p := range ls.jobs {
		if p.rem > 1e-6*p.work {
			return fmt.Errorf("yds: simulated policy left %v work of job %d", p.rem, p.id)
		}
	}
	return nil
}

// qoaSim is qOA's dense policy: the staircase speed over the pending
// work scaled by q, planned in reused scratch (qoaSpeed without the
// per-step allocations).
type qoaSim struct {
	q  float64
	st stair
}

func (p *qoaSim) observe(job.Job) {}

//schedlint:hotpath
func (p *qoaSim) speedAt(t float64, pend []liveJob) (float64, error) {
	if err := p.st.build(t, pend); err != nil {
		return 0, err
	}
	if len(p.st.blocks) == 0 {
		return 0, nil
	}
	return p.q * p.st.blocks[0].speed, nil
}
