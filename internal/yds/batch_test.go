package yds

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"unsafe"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

// batchSession is the batch face the serving engine drives.
type batchSession interface {
	session
	ArriveBatch([]job.Job) (int, error)
}

// TestArriveBatchByteIdenticalToSequential pins the tentpole claim of
// the batched ingest path at the policy layer: feeding a trace through
// ArriveBatch under arbitrary batch boundaries — including boundaries
// that split same-release groups, the case OA's replan coalescing must
// get right — produces a schedule byte-identical to one-at-a-time
// Arrive.
func TestArriveBatchByteIdenticalToSequential(t *testing.T) {
	pm := power.New(2)
	mk := map[string]func() batchSession{
		"oa":  func() batchSession { return NewOASession() },
		"avr": func() batchSession { return NewAVRSession() },
		"qoa": func() batchSession { return NewQOASession(pm) },
	}
	for _, tc := range []struct {
		name    string
		horizon float64
		n       int
	}{
		{"spread", 120, 1200},
		{"dense-ties", 6, 800}, // many same-release groups
	} {
		in := workload.HeavyTail(workload.Config{
			N: tc.n, M: 1, Alpha: 2, Seed: 11, Horizon: tc.horizon, ValueScale: math.Inf(1),
		})
		// Quantize releases so ties are common and groups span batches.
		for i := range in.Jobs {
			in.Jobs[i].Release = math.Floor(in.Jobs[i].Release*8) / 8
			if in.Jobs[i].Deadline <= in.Jobs[i].Release {
				in.Jobs[i].Deadline = in.Jobs[i].Release + 0.125
			}
		}
		in.Normalize()
		for name, make := range mk {
			seq := make()
			for _, j := range in.Jobs {
				if err := seq.Arrive(j); err != nil {
					t.Fatalf("%s/%s: sequential arrive: %v", tc.name, name, err)
				}
			}
			want, err := seq.Close()
			if err != nil {
				t.Fatalf("%s/%s: sequential close: %v", tc.name, name, err)
			}
			for trial := 0; trial < 4; trial++ {
				rng := rand.New(rand.NewSource(int64(trial) * 977))
				bat := make()
				for lo := 0; lo < len(in.Jobs); {
					hi := lo + 1 + rng.Intn(37)
					if trial == 0 {
						hi = len(in.Jobs) // one giant batch
					}
					if hi > len(in.Jobs) {
						hi = len(in.Jobs)
					}
					n, err := bat.ArriveBatch(in.Jobs[lo:hi])
					if err != nil || n != hi-lo {
						t.Fatalf("%s/%s: batch arrive [%d,%d): n=%d err=%v", tc.name, name, lo, hi, n, err)
					}
					lo = hi
				}
				got, err := bat.Close()
				if err != nil {
					t.Fatalf("%s/%s: batch close: %v", tc.name, name, err)
				}
				assertSchedulesBitEqual(t, tc.name+"/"+name, want, got)
			}
		}
	}
}

func assertSchedulesBitEqual(t *testing.T, name string, want, got *sched.Schedule) {
	t.Helper()
	if len(want.Segments) != len(got.Segments) {
		t.Fatalf("%s: %d segments sequential vs %d batched", name, len(want.Segments), len(got.Segments))
	}
	for i := range want.Segments {
		a, b := want.Segments[i], got.Segments[i]
		if a.Proc != b.Proc || a.Job != b.Job ||
			math.Float64bits(a.T0) != math.Float64bits(b.T0) ||
			math.Float64bits(a.T1) != math.Float64bits(b.T1) ||
			math.Float64bits(a.Speed) != math.Float64bits(b.Speed) {
			t.Fatalf("%s: segment %d diverges:\nsequential %+v\nbatched    %+v", name, i, a, b)
		}
	}
}

// TestArriveBatchStopsAtFirstError pins the error contract: the batch
// applies its valid prefix and reports how much.
func TestArriveBatchStopsAtFirstError(t *testing.T) {
	s := NewOASession()
	js := []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 1},
		{ID: 1, Release: 1, Deadline: 3, Work: 1},
		{ID: 2, Release: 0.5, Deadline: 9, Work: 1}, // behind the frontier
		{ID: 3, Release: 2, Deadline: 9, Work: 1},
	}
	n, err := s.ArriveBatch(js)
	if n != 2 || err == nil {
		t.Fatalf("ArriveBatch = %d, %v; want 2 jobs and a release-order error", n, err)
	}
	// The session remains usable for in-order arrivals and closes clean.
	if err := s.Arrive(js[3]); err != nil {
		t.Fatalf("arrive after batch error: %v", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSessionWholeRunBytesBounded extends the alloc guards from counts
// to bytes: a session's cumulative heap allocation over a whole run
// must track the schedule it actually emits (one chunk's worth of
// slack plus per-arrival bookkeeping), not a geometric multiple of it.
// The pre-chunking storage allocated ~5× the final schedule bytes and
// fails this bound.
func TestSessionWholeRunBytesBounded(t *testing.T) {
	pm := power.New(2)
	in := workload.HeavyTail(workload.Config{
		N: 20000, M: 1, Alpha: 2, Seed: 9, Horizon: 2000, ValueScale: math.Inf(1),
	})
	in.Normalize()
	segBytes := int(unsafe.Sizeof(sched.Segment{}))
	for name, mk := range map[string]func() session{
		"oa":  func() session { return NewOASession() },
		"avr": func() session { return NewAVRSession() },
		"qoa": func() session { return NewQOASession(pm) },
	} {
		s := mk()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for _, j := range in.Jobs {
			if err := s.Arrive(j); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		runtime.ReadMemStats(&after)
		res, err := s.Close()
		if err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		grew := int(after.TotalAlloc - before.TotalAlloc)
		// Budget: the emitted history itself, one max-size chunk of
		// slack, and modest per-arrival bookkeeping (live set, grid,
		// scratch growth).
		budget := len(res.Segments)*segBytes + segChunkMax*segBytes + len(in.Jobs)*64
		if grew > budget {
			t.Errorf("%s: whole-run heap growth %d B for %d segments (budget %d B) — schedule history storage regressed",
				name, grew, len(res.Segments), budget)
		}
	}
}
