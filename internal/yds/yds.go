// Package yds implements the classical single-processor speed-scaling
// algorithms that the paper builds on and compares against:
//
//   - YDS (Yao, Demers, Shenker 1995): the exact offline optimal
//     schedule finishing all jobs, by iteratively peeling the
//     maximum-density interval.
//   - OA ("Optimal Available"): the online algorithm that, at every
//     arrival, recomputes the optimal schedule for the remaining work;
//     αα-competitive (Bansal, Kimbrel, Pruhs 2007).
//   - AVR ("Average Rate"): every job is processed at its density
//     across its whole window.
//   - BKP (Bansal, Kimbrel, Pruhs): the ~2e^{α+1}-competitive algorithm
//     based on maximum scaled interval density.
//   - qOA (Bansal, Chan, Katz, Pruhs): OA sped up by q = 2 - 1/α.
//
// All of these finish every job (the classical model without values);
// the profitable schedulers in internal/core and internal/cll reduce to
// variations of them when values are high.
package yds

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/sched"
)

// span is a half-open time window [A, B).
type span struct{ A, B float64 }

// overlap returns |s ∩ [a,b)|.
func (s span) overlap(a, b float64) float64 {
	lo, hi := math.Max(s.A, a), math.Min(s.B, b)
	if hi > lo {
		return hi - lo
	}
	return 0
}

// spanSet is a sorted union of disjoint spans with a prefix-length
// cache, so coverage queries and availability clamps are logarithmic.
type spanSet struct {
	spans []span
	// prefix[i] is the total length of spans[:i]; len(prefix) is
	// len(spans)+1. Rebuilt by add, which is called once per YDS round.
	prefix []float64
}

// add unions [a,b) into the set, merging neighbours.
func (ss *spanSet) add(a, b float64) {
	ss.spans = append(ss.spans, span{a, b})
	sort.Slice(ss.spans, func(i, k int) bool { return ss.spans[i].A < ss.spans[k].A })
	merged := ss.spans[:0]
	for _, s := range ss.spans {
		if n := len(merged); n > 0 && s.A <= merged[n-1].B {
			if s.B > merged[n-1].B {
				merged[n-1].B = s.B
			}
			continue
		}
		merged = append(merged, s)
	}
	ss.spans = merged
	ss.prefix = append(ss.prefix[:0], 0)
	for _, s := range ss.spans {
		ss.prefix = append(ss.prefix, ss.prefix[len(ss.prefix)-1]+(s.B-s.A))
	}
}

// coveredBefore returns the total covered length in (-inf, t).
func (ss *spanSet) coveredBefore(t float64) float64 {
	if len(ss.spans) == 0 {
		return 0
	}
	// First span with A >= t; everything before it may contribute.
	i := sort.Search(len(ss.spans), func(k int) bool { return ss.spans[k].A >= t })
	total := ss.prefix[i]
	if i > 0 && ss.spans[i-1].B > t {
		total -= ss.spans[i-1].B - t
	}
	return total
}

// covered returns the total covered length inside [a,b).
func (ss *spanSet) covered(a, b float64) float64 {
	if b <= a {
		return 0
	}
	return ss.coveredBefore(b) - ss.coveredBefore(a)
}

// gaps returns the uncovered sub-spans of [a,b), in order.
func (ss *spanSet) gaps(a, b float64) []span {
	var out []span
	cur := a
	for _, s := range ss.spans {
		if s.B <= cur || s.A >= b {
			continue
		}
		if s.A > cur {
			out = append(out, span{cur, math.Min(s.A, b)})
		}
		cur = math.Max(cur, s.B)
		if cur >= b {
			break
		}
	}
	if cur < b {
		out = append(out, span{cur, b})
	}
	return out
}

// firstAvailable returns the smallest t' ≥ t not strictly inside a
// removed span.
func (ss *spanSet) firstAvailable(t float64) float64 {
	// Last span with A <= t is the only one that can contain t.
	i := sort.Search(len(ss.spans), func(k int) bool { return ss.spans[k].A > t })
	if i > 0 && t < ss.spans[i-1].B {
		return ss.spans[i-1].B
	}
	return t
}

// lastAvailable returns the largest t' ≤ t not strictly inside a
// removed span.
func (ss *spanSet) lastAvailable(t float64) float64 {
	i := sort.Search(len(ss.spans), func(k int) bool { return ss.spans[k].A >= t })
	if i > 0 && t <= ss.spans[i-1].B {
		return ss.spans[i-1].A
	}
	return t
}

// cand is one candidate critical interval [t1, t2) together with its
// work density at the time it was computed. Entries are only trusted
// while their stamp matches the solver's per-t1 stamp.
type cand struct {
	density float64
	t1, t2  float64
	stamp   int
}

// candHeap is a max-heap of candidates ordered by density, with ties
// broken towards smaller (t1, t2) so peeling order is deterministic.
type candHeap []cand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, k int) bool {
	if h[i].density != h[k].density { //schedlint:exactfloat heap tie-break on bit-identical densities
		return h[i].density > h[k].density
	}
	if h[i].t1 != h[k].t1 { //schedlint:exactfloat heap tie-break on bit-identical times
		return h[i].t1 < h[k].t1
	}
	return h[i].t2 < h[k].t2
}
func (h candHeap) Swap(i, k int)       { h[i], h[k] = h[k], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// effJob is a remaining job together with its effective window: release
// and deadline clipped to time not yet claimed by earlier critical
// intervals.
type effJob struct {
	j          job.Job
	effR, effD float64
}

// YDS computes the exact offline minimum-energy single-processor
// schedule finishing all jobs of the instance (values are ignored).
// The schedule is returned as explicit segments on processor 0.
//
// The implementation peels maximum-density intervals in *original* time
// coordinates (instead of the textbook trick of compressing time after
// every round): each round works with jobs' effective windows — release
// and deadline clipped to time not yet claimed by earlier, faster
// critical intervals — and densities are measured against the available
// (unclaimed) duration. This is the same algorithm under a coordinate
// change and keeps the emitted segments directly verifiable.
//
// Unlike the reference implementation (see YDSReference), the maximum-
// density interval is not found by rescanning all O(n²) candidate
// intervals with an O(n) work sum each round. Instead the solver keeps,
// for every candidate left endpoint t1, its champion interval (the
// densest [t1, t2)) in a max-heap; work sums come from one cumulative
// pass over the deadline-sorted remaining jobs, and coverage from the
// span prefix sums. After peeling [T1, T2) only champions with
// t1 ≤ end of the merged removed span can change (intervals strictly to
// the right see neither their job set nor their available time change),
// so exactly those are recomputed and restamped; everything else stays
// valid across rounds. Worst case O(n²) per peel — O(n³) total like the
// classical bound — but each round's rescan is a single prefix-sum
// sweep per dirty endpoint, which in practice cuts large instances from
// cubic rescans to roughly O(n² log n) end to end.
func YDS(in *job.Instance) (*sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	remaining := append([]job.Job(nil), in.Jobs...)
	var removed spanSet
	out := &sched.Schedule{M: 1}

	h := &candHeap{}
	stamps := map[float64]int{}
	dirtyBound := math.Inf(1) // first round: every left endpoint is dirty

	eff := make([]effJob, 0, len(remaining))
	for len(remaining) > 0 {
		// Effective windows of the remaining jobs, sorted by effective
		// deadline so each champion scan is one cumulative pass.
		eff = eff[:0]
		for _, j := range remaining {
			r, d := removed.firstAvailable(j.Release), removed.lastAvailable(j.Deadline)
			if d <= r {
				return nil, fmt.Errorf("yds: job %d has no available time left", j.ID)
			}
			eff = append(eff, effJob{j, r, d})
		}
		sort.Slice(eff, func(a, b int) bool { return eff[a].effD < eff[b].effD })

		// Invalidate and recompute champions for dirty left endpoints.
		for v := range stamps {
			if v <= dirtyBound {
				stamps[v]++
			}
		}
		seen := map[float64]bool{}
		for _, e := range eff {
			t1 := e.effR
			if t1 > dirtyBound || seen[t1] {
				continue
			}
			seen[t1] = true
			if _, ok := stamps[t1]; !ok {
				stamps[t1] = 0 // materialise so later invalidations reach it
			}
			best := cand{density: -1}
			var cum float64
			for k := 0; k < len(eff); {
				t2 := eff[k].effD
				for k < len(eff) && eff[k].effD == t2 { //schedlint:exactfloat group-by on bit-identical effective deadlines
					if eff[k].effR >= t1 {
						cum += eff[k].j.Work
					}
					k++
				}
				if t2 <= t1 || cum == 0 { //schedlint:exactfloat zero-work sentinel, sums of zero terms are exactly zero
					continue
				}
				avail := (t2 - t1) - removed.covered(t1, t2)
				if avail <= 0 {
					return nil, fmt.Errorf("yds: zero available time in [%v,%v) with %v work", t1, t2, cum)
				}
				if g := cum / avail; g > best.density {
					best = cand{density: g, t1: t1, t2: t2}
				}
			}
			if best.density > 0 {
				best.stamp = stamps[t1]
				heap.Push(h, best)
			}
		}
		// Prune stale entries when they dominate the heap, so memory
		// stays linear in the number of live endpoints.
		if h.Len() > 4*len(eff)+16 {
			live := (*h)[:0]
			for _, c := range *h {
				if c.stamp == stamps[c.t1] {
					live = append(live, c)
				}
			}
			*h = live
			heap.Init(h)
		}

		// The freshest maximum is the critical interval of this round.
		var top cand
		for {
			if h.Len() == 0 {
				return nil, fmt.Errorf("yds: no critical interval found for %d jobs", len(remaining))
			}
			top = heap.Pop(h).(cand)
			if top.stamp == stamps[top.t1] {
				break
			}
		}
		bestT1, bestT2, bestG := top.t1, top.t2, top.density

		var crit []job.Job
		rest := remaining[:0]
		for _, e := range eff {
			if e.effR >= bestT1 && e.effD <= bestT2 {
				crit = append(crit, e.j)
			} else {
				rest = append(rest, e.j)
			}
		}
		slots := removed.gaps(bestT1, bestT2)
		segs, err := edfPlace(crit, slots, bestG)
		if err != nil {
			return nil, fmt.Errorf("yds: placing critical set in [%v,%v): %w", bestT1, bestT2, err)
		}
		out.Segments = append(out.Segments, segs...)
		removed.add(bestT1, bestT2)
		remaining = rest
		// Champions strictly right of the merged span containing the
		// peel are untouched; everything up to its end must be redone.
		dirtyBound = removed.firstAvailable(bestT1)
	}
	sort.Slice(out.Segments, func(i, k int) bool { return out.Segments[i].T0 < out.Segments[k].T0 })
	return out, nil
}

// YDSReference is the original O(n³)-per-round solver: every round
// rescans all candidate (release, deadline) pairs and sums the enclosed
// work from scratch. It is retained as the executable specification —
// differential tests check YDS against it, and the scaling benchmarks
// measure both in the same run to track the speedup.
func YDSReference(in *job.Instance) (*sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	remaining := append([]job.Job(nil), in.Jobs...)
	var removed spanSet
	out := &sched.Schedule{M: 1}

	for len(remaining) > 0 {
		effR := make(map[int]float64, len(remaining))
		effD := make(map[int]float64, len(remaining))
		var t1s, t2s []float64
		for _, j := range remaining {
			r, d := removed.firstAvailable(j.Release), removed.lastAvailable(j.Deadline)
			if d <= r {
				return nil, fmt.Errorf("yds: job %d has no available time left", j.ID)
			}
			effR[j.ID], effD[j.ID] = r, d
			t1s = append(t1s, r)
			t2s = append(t2s, d)
		}
		sort.Float64s(t1s)
		sort.Float64s(t2s)

		bestG := -1.0
		var bestT1, bestT2 float64
		for _, t1 := range t1s {
			for _, t2 := range t2s {
				if t2 <= t1 {
					continue
				}
				var work float64
				for _, j := range remaining {
					if effR[j.ID] >= t1 && effD[j.ID] <= t2 {
						work += j.Work
					}
				}
				if work == 0 { //schedlint:exactfloat zero-work sentinel, sums of zero terms are exactly zero
					continue
				}
				avail := (t2 - t1) - removed.covered(t1, t2)
				if avail <= 0 {
					return nil, fmt.Errorf("yds: zero available time in [%v,%v) with %v work", t1, t2, work)
				}
				if g := work / avail; g > bestG {
					bestG, bestT1, bestT2 = g, t1, t2
				}
			}
		}
		if bestG <= 0 {
			return nil, fmt.Errorf("yds: no critical interval found for %d jobs", len(remaining))
		}

		var crit, rest []job.Job
		for _, j := range remaining {
			if effR[j.ID] >= bestT1 && effD[j.ID] <= bestT2 {
				crit = append(crit, j)
			} else {
				rest = append(rest, j)
			}
		}
		slots := removed.gaps(bestT1, bestT2)
		segs, err := edfPlace(crit, slots, bestG)
		if err != nil {
			return nil, fmt.Errorf("yds: placing critical set in [%v,%v): %w", bestT1, bestT2, err)
		}
		out.Segments = append(out.Segments, segs...)
		removed.add(bestT1, bestT2)
		remaining = rest
	}
	sort.Slice(out.Segments, func(i, k int) bool { return out.Segments[i].T0 < out.Segments[k].T0 })
	return out, nil
}

// edfPlace schedules the jobs preemptively at constant speed g inside
// the given time slots using earliest-deadline-first. The caller
// guarantees feasibility (YDS critical sets are feasible at their
// density by construction).
func edfPlace(jobs []job.Job, slots []span, g float64) ([]sched.Segment, error) {
	rem := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		rem[j.ID] = j.Work
	}
	var segs []sched.Segment
	const eps = 1e-12
	for _, slot := range slots {
		t := slot.A
		for t < slot.B-eps {
			// Pick the released, unfinished job with earliest deadline.
			pick := -1
			var pickJob job.Job
			nextRelease := math.Inf(1)
			for _, j := range jobs {
				if rem[j.ID] <= eps*j.Work {
					continue
				}
				if j.Release > t+eps {
					nextRelease = math.Min(nextRelease, j.Release)
					continue
				}
				if pick == -1 || j.Deadline < pickJob.Deadline {
					pick, pickJob = j.ID, j
				}
			}
			if pick == -1 {
				if nextRelease >= slot.B {
					break // idle to slot end
				}
				t = nextRelease
				continue
			}
			end := math.Min(slot.B, t+rem[pick]/g)
			if nextRelease < end {
				end = nextRelease // preempt to re-evaluate EDF
			}
			if end <= t {
				// Sub-ulp progress: at high speeds the residue of an
				// almost-finished job needs less time than one float
				// ulp at this coordinate, so t+rem/g == t. Declare the
				// job numerically done if the residue is below the
				// same tolerance the final guard enforces.
				if rem[pick] <= 1e-7 {
					rem[pick] = 0
					continue
				}
				return nil, fmt.Errorf("edf stuck at t=%v", t)
			}
			segs = append(segs, sched.Segment{Proc: 0, Job: pick, T0: t, T1: end, Speed: g})
			rem[pick] -= (end - t) * g
			t = end
		}
	}
	for id, r := range rem {
		if r > 1e-7 {
			return nil, fmt.Errorf("edf left %v work of job %d unplaced", r, id)
		}
	}
	return segs, nil
}
