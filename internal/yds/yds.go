// Package yds implements the classical single-processor speed-scaling
// algorithms that the paper builds on and compares against:
//
//   - YDS (Yao, Demers, Shenker 1995): the exact offline optimal
//     schedule finishing all jobs, by iteratively peeling the
//     maximum-density interval.
//   - OA ("Optimal Available"): the online algorithm that, at every
//     arrival, recomputes the optimal schedule for the remaining work;
//     αα-competitive (Bansal, Kimbrel, Pruhs 2007).
//   - AVR ("Average Rate"): every job is processed at its density
//     across its whole window.
//   - BKP (Bansal, Kimbrel, Pruhs): the ~2e^{α+1}-competitive algorithm
//     based on maximum scaled interval density.
//   - qOA (Bansal, Chan, Katz, Pruhs): OA sped up by q = 2 - 1/α.
//
// All of these finish every job (the classical model without values);
// the profitable schedulers in internal/core and internal/cll reduce to
// variations of them when values are high.
package yds

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/sched"
)

// span is a half-open time window [A, B).
type span struct{ A, B float64 }

// overlap returns |s ∩ [a,b)|.
func (s span) overlap(a, b float64) float64 {
	lo, hi := math.Max(s.A, a), math.Min(s.B, b)
	if hi > lo {
		return hi - lo
	}
	return 0
}

// spanSet is a sorted union of disjoint spans.
type spanSet struct{ spans []span }

// add unions [a,b) into the set, merging neighbours.
func (ss *spanSet) add(a, b float64) {
	ss.spans = append(ss.spans, span{a, b})
	sort.Slice(ss.spans, func(i, k int) bool { return ss.spans[i].A < ss.spans[k].A })
	merged := ss.spans[:0]
	for _, s := range ss.spans {
		if n := len(merged); n > 0 && s.A <= merged[n-1].B {
			if s.B > merged[n-1].B {
				merged[n-1].B = s.B
			}
			continue
		}
		merged = append(merged, s)
	}
	ss.spans = merged
}

// covered returns the total covered length inside [a,b).
func (ss *spanSet) covered(a, b float64) float64 {
	var total float64
	for _, s := range ss.spans {
		total += s.overlap(a, b)
	}
	return total
}

// gaps returns the uncovered sub-spans of [a,b), in order.
func (ss *spanSet) gaps(a, b float64) []span {
	var out []span
	cur := a
	for _, s := range ss.spans {
		if s.B <= cur || s.A >= b {
			continue
		}
		if s.A > cur {
			out = append(out, span{cur, math.Min(s.A, b)})
		}
		cur = math.Max(cur, s.B)
		if cur >= b {
			break
		}
	}
	if cur < b {
		out = append(out, span{cur, b})
	}
	return out
}

// firstAvailable returns the smallest t' ≥ t not strictly inside a
// removed span.
func (ss *spanSet) firstAvailable(t float64) float64 {
	for _, s := range ss.spans {
		if s.A <= t && t < s.B {
			return s.B
		}
	}
	return t
}

// lastAvailable returns the largest t' ≤ t not strictly inside a
// removed span.
func (ss *spanSet) lastAvailable(t float64) float64 {
	for _, s := range ss.spans {
		if s.A < t && t <= s.B {
			return s.A
		}
	}
	return t
}

// YDS computes the exact offline minimum-energy single-processor
// schedule finishing all jobs of the instance (values are ignored).
// Complexity O(n^3); the schedule is returned as explicit segments on
// processor 0.
//
// The implementation peels maximum-density intervals in *original* time
// coordinates (instead of the textbook trick of compressing time after
// every round): each round works with jobs' effective windows — release
// and deadline clipped to time not yet claimed by earlier, faster
// critical intervals — and densities are measured against the available
// (unclaimed) duration. This is the same algorithm under a coordinate
// change and keeps the emitted segments directly verifiable.
func YDS(in *job.Instance) (*sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	remaining := append([]job.Job(nil), in.Jobs...)
	var removed spanSet
	out := &sched.Schedule{M: 1}

	for len(remaining) > 0 {
		// Effective windows of the remaining jobs, and candidate
		// interval endpoints taken from them.
		effR := make(map[int]float64, len(remaining))
		effD := make(map[int]float64, len(remaining))
		var t1s, t2s []float64
		for _, j := range remaining {
			r, d := removed.firstAvailable(j.Release), removed.lastAvailable(j.Deadline)
			if d <= r {
				return nil, fmt.Errorf("yds: job %d has no available time left", j.ID)
			}
			effR[j.ID], effD[j.ID] = r, d
			t1s = append(t1s, r)
			t2s = append(t2s, d)
		}
		sort.Float64s(t1s)
		sort.Float64s(t2s)

		bestG := -1.0
		var bestT1, bestT2 float64
		for _, t1 := range t1s {
			for _, t2 := range t2s {
				if t2 <= t1 {
					continue
				}
				var work float64
				for _, j := range remaining {
					if effR[j.ID] >= t1 && effD[j.ID] <= t2 {
						work += j.Work
					}
				}
				if work == 0 {
					continue
				}
				avail := (t2 - t1) - removed.covered(t1, t2)
				if avail <= 0 {
					return nil, fmt.Errorf("yds: zero available time in [%v,%v) with %v work", t1, t2, work)
				}
				if g := work / avail; g > bestG {
					bestG, bestT1, bestT2 = g, t1, t2
				}
			}
		}
		if bestG <= 0 {
			return nil, fmt.Errorf("yds: no critical interval found for %d jobs", len(remaining))
		}

		var crit, rest []job.Job
		for _, j := range remaining {
			if effR[j.ID] >= bestT1 && effD[j.ID] <= bestT2 {
				crit = append(crit, j)
			} else {
				rest = append(rest, j)
			}
		}
		slots := removed.gaps(bestT1, bestT2)
		segs, err := edfPlace(crit, slots, bestG)
		if err != nil {
			return nil, fmt.Errorf("yds: placing critical set in [%v,%v): %w", bestT1, bestT2, err)
		}
		out.Segments = append(out.Segments, segs...)
		removed.add(bestT1, bestT2)
		remaining = rest
	}
	sort.Slice(out.Segments, func(i, k int) bool { return out.Segments[i].T0 < out.Segments[k].T0 })
	return out, nil
}

// edfPlace schedules the jobs preemptively at constant speed g inside
// the given time slots using earliest-deadline-first. The caller
// guarantees feasibility (YDS critical sets are feasible at their
// density by construction).
func edfPlace(jobs []job.Job, slots []span, g float64) ([]sched.Segment, error) {
	rem := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		rem[j.ID] = j.Work
	}
	var segs []sched.Segment
	const eps = 1e-12
	for _, slot := range slots {
		t := slot.A
		for t < slot.B-eps {
			// Pick the released, unfinished job with earliest deadline.
			pick := -1
			var pickJob job.Job
			nextRelease := math.Inf(1)
			for _, j := range jobs {
				if rem[j.ID] <= eps*j.Work {
					continue
				}
				if j.Release > t+eps {
					nextRelease = math.Min(nextRelease, j.Release)
					continue
				}
				if pick == -1 || j.Deadline < pickJob.Deadline {
					pick, pickJob = j.ID, j
				}
			}
			if pick == -1 {
				if nextRelease >= slot.B {
					break // idle to slot end
				}
				t = nextRelease
				continue
			}
			end := math.Min(slot.B, t+rem[pick]/g)
			if nextRelease < end {
				end = nextRelease // preempt to re-evaluate EDF
			}
			if end <= t {
				return nil, fmt.Errorf("edf stuck at t=%v", t)
			}
			segs = append(segs, sched.Segment{Proc: 0, Job: pick, T0: t, T1: end, Speed: g})
			rem[pick] -= (end - t) * g
			t = end
		}
	}
	for id, r := range rem {
		if r > 1e-7 {
			return nil, fmt.Errorf("edf left %v work of job %d unplaced", r, id)
		}
	}
	return segs, nil
}
