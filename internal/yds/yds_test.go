package yds

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sched"
)

func finishAll(rng *rand.Rand, n int) *job.Instance {
	in := &job.Instance{M: 1, Alpha: 2}
	for i := 0; i < n; i++ {
		r := rng.Float64() * 8
		span := 0.3 + rng.Float64()*3
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: r, Deadline: r + span,
			Work: 0.1 + rng.Float64()*2, Value: math.Inf(1),
		})
	}
	in.Normalize()
	return in
}

func TestYDSSingleJob(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 1, Deadline: 3, Work: 4, Value: 1},
	}}
	s, err := YDS(in)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.New(2)
	if got := s.Energy(pm); math.Abs(got-8) > 1e-9 { // 2·2^2
		t.Fatalf("energy %v want 8", got)
	}
	if err := sched.Verify(in, s); err != nil {
		t.Fatal(err)
	}
}

func TestYDSNestedJobs(t *testing.T) {
	// j0: [0,4) w=2; j1: [1,2) w=2. Critical interval [1,2) at speed 2;
	// j0 then uses the remaining 3 time units at speed 2/3.
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 4, Work: 2, Value: 1},
		{ID: 1, Release: 1, Deadline: 2, Work: 2, Value: 1},
	}}
	s, err := YDS(in)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.New(2)
	want := 4.0 + 3.0*(4.0/9.0) // 1·2^2 + 3·(2/3)^2
	if got := s.Energy(pm); math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy %v want %v", got, want)
	}
	if err := sched.Verify(in, s); err != nil {
		t.Fatal(err)
	}
	// Speed inside the critical interval must be 2.
	if got := s.TotalSpeedAt(1.5); math.Abs(got-2) > 1e-9 {
		t.Fatalf("speed in critical interval %v want 2", got)
	}
}

// TestYDSAdjacentCriticalIntervals is a regression test for effective
// windows: after peeling [0,2) and [2,4), a job spanning [1,3) must be
// recognised as confined to removed-adjacent time.
func TestYDSAdjacentCriticalIntervals(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 10, Value: 1},
		{ID: 1, Release: 2, Deadline: 4, Work: 8, Value: 1},
		{ID: 2, Release: 1, Deadline: 3, Work: 1, Value: 1},
	}}
	s, err := YDS(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Verify(in, s); err != nil {
		t.Fatal(err)
	}
}

// TestYDSMatchesConvexSolver cross-validates the combinatorial YDS
// against the independent block-coordinate-descent solver: both must
// find the same minimum energy (they share no code path beyond the
// power model).
func TestYDSMatchesConvexSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pm := power.New(2)
	for trial := 0; trial < 40; trial++ {
		in := finishAll(rng, 1+rng.Intn(10))
		s, err := YDS(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Verify(in, s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, err := opt.SolveAccepted(in, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !numeric.Close(s.Energy(pm), sol.Energy, 1e-5) {
			t.Fatalf("trial %d: YDS %v vs convex solver %v", trial, s.Energy(pm), sol.Energy)
		}
	}
}

func TestStaircaseKnownPlan(t *testing.T) {
	blocks, err := Staircase(0, []Pending{
		{ID: 0, Deadline: 1, Rem: 2},
		{ID: 1, Deadline: 2, Rem: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("want 2 blocks, got %+v", blocks)
	}
	if blocks[0].Speed != 2 || blocks[0].End != 1 {
		t.Fatalf("block 0: %+v", blocks[0])
	}
	if blocks[1].Speed != 1 || blocks[1].Start != 1 {
		t.Fatalf("block 1: %+v", blocks[1])
	}
}

func TestStaircaseMergesIntoOneBlock(t *testing.T) {
	// Earlier-deadline job with low density is absorbed into a single
	// block when the combined density dominates.
	blocks, err := Staircase(0, []Pending{
		{ID: 0, Deadline: 1, Rem: 0.1},
		{ID: 1, Deadline: 2, Rem: 3.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || math.Abs(blocks[0].Speed-2) > 1e-12 {
		t.Fatalf("want one block at speed 2: %+v", blocks)
	}
}

func TestStaircaseInfeasible(t *testing.T) {
	if _, err := Staircase(5, []Pending{{ID: 0, Deadline: 4, Rem: 1}}); err == nil {
		t.Fatal("past-deadline pending work must error")
	}
}

func TestOAEqualsYDSForSimultaneousReleases(t *testing.T) {
	// When all jobs arrive at once, OA's first plan is already optimal
	// and never changes: OA energy == YDS energy.
	rng := rand.New(rand.NewSource(22))
	pm := power.New(2)
	for trial := 0; trial < 20; trial++ {
		in := finishAll(rng, 1+rng.Intn(8))
		for i := range in.Jobs {
			in.Jobs[i].Release = 0
			if in.Jobs[i].Deadline < 0.2 {
				in.Jobs[i].Deadline = 0.2
			}
		}
		in.Normalize()
		oa, err := OA(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := YDS(in)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.Close(oa.Energy(pm), opt.Energy(pm), 1e-9) {
			t.Fatalf("trial %d: OA %v vs YDS %v", trial, oa.Energy(pm), opt.Energy(pm))
		}
	}
}

func TestOAWithinCompetitiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pm := power.New(2)
	bound := pm.CompetitiveBound()
	for trial := 0; trial < 25; trial++ {
		in := finishAll(rng, 1+rng.Intn(12))
		oa, err := OA(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Verify(in, oa); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ydsS, err := YDS(in)
		if err != nil {
			t.Fatal(err)
		}
		eOA, eOPT := oa.Energy(pm), ydsS.Energy(pm)
		if eOA < eOPT-1e-9 {
			t.Fatalf("trial %d: OA %v beats optimal %v", trial, eOA, eOPT)
		}
		if eOA > bound*eOPT*(1+1e-9) {
			t.Fatalf("trial %d: OA %v above αα·OPT %v", trial, eOA, bound*eOPT)
		}
	}
}

// lowerBoundInstance is the Bansal-Kimbrel-Pruhs adversarial sequence
// used in Theorem 3's tightness proof: job j arrives at j-1 with
// workload (n-j+1)^{-1/α} and common deadline n.
func lowerBoundInstance(n int, alpha float64) *job.Instance {
	in := &job.Instance{M: 1, Alpha: alpha}
	for j := 1; j <= n; j++ {
		in.Jobs = append(in.Jobs, job.Job{
			ID: j - 1, Release: float64(j - 1), Deadline: float64(n),
			Work: math.Pow(float64(n-j+1), -1/alpha), Value: math.Inf(1),
		})
	}
	return in
}

func TestOALowerBoundInstanceRatioGrows(t *testing.T) {
	pm := power.New(2)
	prev := 1.0
	for _, n := range []int{4, 16, 64} {
		in := lowerBoundInstance(n, 2)
		oa, err := OA(in)
		if err != nil {
			t.Fatal(err)
		}
		ydsS, err := YDS(in)
		if err != nil {
			t.Fatal(err)
		}
		ratio := oa.Energy(pm) / ydsS.Energy(pm)
		if ratio < prev-1e-9 {
			t.Fatalf("n=%d: ratio %v decreased (prev %v)", n, ratio, prev)
		}
		if ratio > pm.CompetitiveBound()+1e-9 {
			t.Fatalf("n=%d: ratio %v above αα", n, ratio)
		}
		prev = ratio
	}
	if prev < 2.4 {
		t.Fatalf("ratio at n=64 is %v; expected the adversarial instance to approach αα=4", prev)
	}
}

func TestAVRFeasibleAndKnownEnergy(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 2, Value: 1}, // density 1
		{ID: 1, Release: 1, Deadline: 2, Work: 1, Value: 1}, // density 1
	}}
	s, err := AVR(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Verify(in, s); err != nil {
		t.Fatal(err)
	}
	pm := power.New(2)
	// [0,1): speed 1, energy 1; [1,2): speed 2, energy 4.
	if got := s.Energy(pm); math.Abs(got-5) > 1e-9 {
		t.Fatalf("AVR energy %v want 5", got)
	}
}

func TestAVRAtLeastYDS(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pm := power.New(2)
	for trial := 0; trial < 20; trial++ {
		in := finishAll(rng, 1+rng.Intn(10))
		avr, err := AVR(in)
		if err != nil {
			t.Fatal(err)
		}
		ydsS, err := YDS(in)
		if err != nil {
			t.Fatal(err)
		}
		if avr.Energy(pm) < ydsS.Energy(pm)*(1-1e-9) {
			t.Fatalf("trial %d: AVR %v below optimal %v", trial, avr.Energy(pm), ydsS.Energy(pm))
		}
	}
}

func TestBKPCompletesAndVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pm := power.New(2)
	for trial := 0; trial < 10; trial++ {
		in := finishAll(rng, 1+rng.Intn(8))
		s, err := BKP(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Verify(in, s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ydsS, err := YDS(in)
		if err != nil {
			t.Fatal(err)
		}
		if s.Energy(pm) < ydsS.Energy(pm)*(1-1e-6) {
			t.Fatalf("trial %d: BKP %v below optimal %v", trial, s.Energy(pm), ydsS.Energy(pm))
		}
	}
}

func TestQOACompletesAndVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	pm := power.New(2)
	for trial := 0; trial < 10; trial++ {
		in := finishAll(rng, 1+rng.Intn(8))
		s, err := QOA(in, pm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Verify(in, s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBKPSpeedDominatesDensity(t *testing.T) {
	// On a single active job, BKP's speed at its release is at least
	// e/(e-1) times the job's density (the window ending at the
	// deadline with t at the 1/e point), hence strictly above OA.
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: math.Inf(1)},
	}}
	s, err := BKP(in)
	if err != nil {
		t.Fatal(err)
	}
	early := s.TotalSpeedAt(0.01)
	want := math.E / (math.E - 1) // ≈ 1.582
	if early < want*(1-0.05) {
		t.Fatalf("BKP early speed %v; want ≈ %v (e/(e-1)·density)", early, want)
	}
	pm := power.New(2)
	if s.Energy(pm) <= 1 {
		t.Fatalf("BKP energy %v must exceed the optimal 1", s.Energy(pm))
	}
}

func TestSpanSetOperations(t *testing.T) {
	var ss spanSet
	ss.add(0, 2)
	ss.add(4, 6)
	ss.add(2, 4) // merges all three
	if len(ss.spans) != 1 || ss.spans[0] != (span{0, 6}) {
		t.Fatalf("merge failed: %+v", ss.spans)
	}
	if got := ss.covered(1, 7); got != 5 {
		t.Fatalf("covered %v want 5", got)
	}
	gaps := ss.gaps(-1, 8)
	if len(gaps) != 2 || gaps[0] != (span{-1, 0}) || gaps[1] != (span{6, 8}) {
		t.Fatalf("gaps %+v", gaps)
	}
	if ss.firstAvailable(3) != 6 || ss.firstAvailable(7) != 7 {
		t.Fatal("firstAvailable broken")
	}
	if ss.lastAvailable(3) != 0 || ss.lastAvailable(-0.5) != -0.5 {
		t.Fatal("lastAvailable broken")
	}
}
