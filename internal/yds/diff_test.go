package yds

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sched"
)

// randInstance draws a finish-all instance with assorted degeneracies:
// shared releases, shared deadlines, nested and adjacent windows.
func randInstance(rng *rand.Rand, n int) *job.Instance {
	in := &job.Instance{M: 1, Alpha: 2}
	for i := 0; i < n; i++ {
		var r, span float64
		switch rng.Intn(4) {
		case 0: // grid-aligned: forces ties between releases/deadlines
			r = float64(rng.Intn(8))
			span = float64(1 + rng.Intn(3))
		case 1: // nested around the middle of the horizon
			c := 4 + rng.Float64()
			half := 0.25 + rng.Float64()*2
			r, span = c-half, 2*half
		default:
			r = rng.Float64() * 8
			span = 0.3 + rng.Float64()*3
		}
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: r, Deadline: r + span,
			Work: 0.1 + rng.Float64()*2, Value: math.Inf(1),
		})
	}
	in.Normalize()
	return in
}

// TestYDSMatchesReference differentially tests the heap-based solver
// against the retained O(n³) reference on instances rich in ties and
// nesting: both must verify and agree on the (unique) optimal energy.
func TestYDSMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pm := power.New(2)
	for trial := 0; trial < 120; trial++ {
		in := randInstance(rng, 1+rng.Intn(40))
		fast, err := YDS(in)
		if err != nil {
			t.Fatalf("trial %d: YDS: %v", trial, err)
		}
		if err := sched.Verify(in, fast); err != nil {
			t.Fatalf("trial %d: YDS verify: %v", trial, err)
		}
		ref, err := YDSReference(in)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		if err := sched.Verify(in, ref); err != nil {
			t.Fatalf("trial %d: reference verify: %v", trial, err)
		}
		if !numeric.Close(fast.Energy(pm), ref.Energy(pm), 1e-9) {
			t.Fatalf("trial %d: YDS energy %v vs reference %v",
				trial, fast.Energy(pm), ref.Energy(pm))
		}
	}
}

// TestStaircaseMatchesPeeling checks the hull-based staircase against a
// direct reimplementation of the quadratic max-density-prefix peel: the
// executed schedules (speed over time per job) must coincide even when
// equal-density prefixes collapse into one hull block.
func TestStaircaseMatchesPeeling(t *testing.T) {
	peel := func(start float64, left []Pending) []Block {
		var blocks []Block
		for len(left) > 0 {
			var cum float64
			bestK, bestG := -1, -1.0
			for k, p := range left {
				cum += p.Rem
				if g := cum / (p.Deadline - start); g > bestG {
					bestK, bestG = k, g
				}
			}
			blocks = append(blocks, Block{
				Start: start, End: left[bestK].Deadline, Speed: bestG,
				Jobs: append([]Pending(nil), left[:bestK+1]...),
			})
			start = left[bestK].Deadline
			left = left[bestK+1:]
		}
		return blocks
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		pend := make([]Pending, n)
		for i := range pend {
			d := 0.5 + rng.Float64()*6
			if rng.Intn(3) == 0 {
				d = float64(1 + rng.Intn(5)) // force deadline ties
			}
			pend[i] = Pending{ID: i, Deadline: d, Rem: 0.1 + rng.Float64()*2}
		}
		blocks, err := Staircase(0, pend)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Same job set sorted the same way both times.
		sorted := append([]Pending(nil), pend...)
		cmpBlocks := peel(0, sortPending(sorted))
		// Compare per-job planned speed and the executed segments.
		for _, p := range pend {
			a, b := PlannedSpeedOf(blocks, p.ID), PlannedSpeedOf(cmpBlocks, p.ID)
			if math.Abs(a-b) > 1e-9*(1+b) {
				t.Fatalf("trial %d: job %d planned %v vs peel %v", trial, p.ID, a, b)
			}
		}
		segsA := execAll(blocks, pend)
		segsB := execAll(cmpBlocks, pend)
		if len(segsA) != len(segsB) {
			t.Fatalf("trial %d: %d vs %d segments", trial, len(segsA), len(segsB))
		}
		for i := range segsA {
			a, b := segsA[i], segsB[i]
			if a.Job != b.Job || math.Abs(a.T0-b.T0) > 1e-9 || math.Abs(a.T1-b.T1) > 1e-9 ||
				math.Abs(a.Speed-b.Speed) > 1e-9*(1+b.Speed) {
				t.Fatalf("trial %d: segment %d differs: %+v vs %+v", trial, i, a, b)
			}
		}
	}
}

func sortPending(ps []Pending) []Pending {
	for i := 1; i < len(ps); i++ {
		for k := i; k > 0; k-- {
			a, b := ps[k-1], ps[k]
			if b.Deadline < a.Deadline || (b.Deadline == a.Deadline && b.ID < a.ID) {
				ps[k-1], ps[k] = b, a
			} else {
				break
			}
		}
	}
	return ps
}

func execAll(blocks []Block, pend []Pending) []sched.Segment {
	rem := map[int]float64{}
	for _, p := range pend {
		rem[p.ID] = p.Rem
	}
	var segs []sched.Segment
	ExecutePlan(blocks, math.Inf(1), rem, &segs)
	return segs
}

// TestSessionsMatchBatchOnRandomTraces is the incremental-state
// property test: on randomized release-ordered traces rich in
// degeneracies — duplicate releases, deadline ties, nested windows,
// long idle gaps the frontier must cross, and horizons long enough
// that pruning and grid consumption actually fire — the pruned,
// incremental sessions must stay byte-identical to the batch OA, AVR
// and qOA entry points.
func TestSessionsMatchBatchOnRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	pm := power.New(2)
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(80)
		in := &job.Instance{M: 1, Alpha: 2}
		base := 0.0
		for i := 0; i < n; i++ {
			switch rng.Intn(8) {
			case 0: // idle gap: the next cluster starts far ahead
				base += 5 + rng.Float64()*20
			case 1: // drift so windows retire behind the frontier
				base += rng.Float64() * 2
			}
			var r, span float64
			switch rng.Intn(4) {
			case 0: // grid-aligned: forces release/deadline ties
				r = base + float64(rng.Intn(4))
				span = float64(1 + rng.Intn(3))
			case 1: // nested around a common center
				c := base + 2 + rng.Float64()
				half := 0.25 + rng.Float64()*1.5
				r, span = c-half, 2*half
			default:
				r = base + rng.Float64()*4
				span = 0.3 + rng.Float64()*3
			}
			in.Jobs = append(in.Jobs, job.Job{
				ID: i, Release: r, Deadline: r + span,
				Work: 0.1 + rng.Float64()*2, Value: math.Inf(1),
			})
		}
		in.Normalize()

		type pair struct {
			batch func(*job.Instance) (*sched.Schedule, error)
			mk    func() session
		}
		for name, p := range map[string]pair{
			"oa":  {OA, func() session { return NewOASession() }},
			"avr": {AVR, func() session { return NewAVRSession() }},
			"qoa": {func(in *job.Instance) (*sched.Schedule, error) { return QOA(in, pm) },
				func() session { return NewQOASession(pm) }},
		} {
			batch, err := p.batch(in)
			if err != nil {
				t.Fatalf("trial %d: batch %s: %v", trial, name, err)
			}
			live := replaySession(t, p.mk(), in)
			if !bytes.Equal(scheduleJSON(t, batch), scheduleJSON(t, live)) {
				t.Fatalf("trial %d: %s session diverges from batch on a randomized trace (n=%d)",
					trial, name, n)
			}
		}
	}
}

// TestYDSSpeedupOverReference measures, in the same run, the heap-based
// solver against the reference at n = 1000 — the PR's acceptance floor
// is a 3× improvement; the structured rescan typically lands orders of
// magnitude beyond it.
func TestYDSSpeedupOverReference(t *testing.T) {
	if testing.Short() {
		t.Skip("reference solver at n=1000 takes minutes of CPU; skipped in -short")
	}
	rng := rand.New(rand.NewSource(1))
	in := randInstance(rng, 1000)
	pm := power.New(2)

	start := time.Now()
	fast, err := YDS(in)
	fastDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	ref, err := YDSReference(in)
	refDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Close(fast.Energy(pm), ref.Energy(pm), 1e-9) {
		t.Fatalf("energies diverge: %v vs %v", fast.Energy(pm), ref.Energy(pm))
	}
	t.Logf("n=1000: YDS %v, reference %v (%.1f× faster)",
		fastDur, refDur, float64(refDur)/float64(fastDur))
	if refDur < 3*fastDur {
		t.Fatalf("YDS %v not ≥3× faster than reference %v", fastDur, refDur)
	}
}
