// Online single-processor algorithms: OA, AVR, BKP and qOA.

package yds

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
)

// Pending is one unfinished job in an online planner's state.
type Pending struct {
	ID       int
	Deadline float64
	Rem      float64 // remaining work
	// Work is the job's original workload. ExecutePlan uses it to tell
	// rounding dust from real stranded work (see its default branch);
	// zero (from legacy constructors) disables the dust drop, which is
	// always the conservative choice.
	Work float64
}

// Block is one constant-speed step of an OA staircase plan: Jobs (in
// deadline order) run back-to-back at Speed during [Start, End).
type Block struct {
	Start, End float64
	Speed      float64
	Jobs       []Pending
}

// Staircase computes the optimal plan for finishing the pending jobs on
// one processor when all of them are available from time t on (the
// YDS structure degenerates to a staircase of prefix densities when all
// releases coincide). This is OA's planning step.
//
// The plan is the upper concave envelope of cumulative remaining work
// versus deadline, anchored at (t, 0): block speeds are the envelope's
// slopes, which decrease left to right. Building the envelope over the
// prefix work sums takes O(n) after the deadline sort, replacing the
// quadratic peel-the-densest-prefix loop; prefixes achieving the same
// density collapse into one block, which executes identically.
func Staircase(t float64, pend []Pending) ([]Block, error) {
	left := make([]Pending, 0, len(pend))
	for _, p := range pend {
		if p.Rem > 0 {
			left = append(left, p)
		}
	}
	if len(left) == 0 {
		return nil, nil
	}
	sort.Slice(left, func(i, k int) bool {
		if left[i].Deadline != left[k].Deadline { //schedlint:exactfloat sort tie-break on bit-identical deadlines
			return left[i].Deadline < left[k].Deadline
		}
		return left[i].ID < left[k].ID
	})
	if left[0].Deadline <= t {
		return nil, fmt.Errorf("yds: job %d has %v work after its deadline %v (t=%v)",
			left[0].ID, left[0].Rem, left[0].Deadline, t)
	}
	// One point per distinct deadline: (deadline, prefix work through
	// it, index of its last job in deadline order).
	type point struct {
		d, w float64
		last int
	}
	points := make([]point, 0, len(left))
	var cum float64
	for i, p := range left {
		cum += p.Rem
		if n := len(points); n > 0 && points[n-1].d == p.Deadline { //schedlint:exactfloat stair group-by on bit-identical deadlines
			points[n-1].w, points[n-1].last = cum, i
		} else {
			points = append(points, point{p.Deadline, cum, i})
		}
	}
	// Upper concave envelope anchored at (t, 0): pop while the new point
	// would not turn the chain clockwise (slopes must strictly decrease).
	hull := make([]point, 0, len(points))
	slopeFrom := func(n int, p point) float64 {
		if n == 0 {
			return p.w / (p.d - t)
		}
		return (p.w - hull[n-1].w) / (p.d - hull[n-1].d)
	}
	for _, p := range points {
		for len(hull) > 0 && slopeFrom(len(hull)-1, hull[len(hull)-1]) <= slopeFrom(len(hull)-1, p) {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	blocks := make([]Block, 0, len(hull))
	start, first := t, 0
	for _, p := range hull {
		blocks = append(blocks, Block{
			Start: start, End: p.d, Speed: slopeFrom(len(blocks), p),
			Jobs: append([]Pending(nil), left[first:p.last+1]...),
		})
		start, first = p.d, p.last+1
	}
	return blocks, nil
}

// PlannedSpeedOf returns the speed of the block containing job id in
// the plan, or 0 if the job is not planned.
func PlannedSpeedOf(blocks []Block, id int) float64 {
	for _, b := range blocks {
		for _, p := range b.Jobs {
			if p.ID == id {
				return b.Speed
			}
		}
	}
	return 0
}

// ExecutePlan runs the staircase from its start until horizon, emitting
// segments and decrementing rem. Jobs inside a block run in deadline
// order (EDF within the block).
func ExecutePlan(blocks []Block, horizon float64, rem map[int]float64, segs *[]sched.Segment) {
	const eps = 1e-12
	for _, b := range blocks {
		if b.Start >= horizon {
			return
		}
		t := b.Start
		for _, p := range b.Jobs {
			if t >= horizon-eps {
				return
			}
			r := rem[p.ID]
			if r <= eps {
				continue
			}
			dur := r / b.Speed
			end := math.Min(t+dur, horizon)
			switch {
			case end > t && end < horizon:
				// The horizon did not cut the job short: it ran to
				// completion by construction. Retiring it exactly
				// avoids trusting the residue of (end-t)·s − r, whose
				// time-axis rounding (ulp(t)·s, absolute) can exceed
				// any r-relative clamp at large t and leave ghost dust
				// that blows up the replan once the deadline passes.
				*segs = append(*segs, sched.Segment{Proc: 0, Job: p.ID, T0: t, T1: end, Speed: b.Speed})
				rem[p.ID] = 0
				t = end
			case end > t:
				*segs = append(*segs, sched.Segment{Proc: 0, Job: p.ID, T0: t, T1: end, Speed: b.Speed})
				rem[p.ID] -= (end - t) * b.Speed
				// (r/s)·s rarely equals r in floats; clamp the residue
				// so finished jobs do not haunt later plans.
				if rem[p.ID] <= eps*(1+r) {
					rem[p.ID] = 0
				}
				t = end
			default:
				// t+dur == t: the leftover work runs for less than one
				// ulp of the clock — no representable segment can carry
				// it, and it would stall forever. If it is true rounding
				// dust (within the simulators' finish tolerance), retire
				// it; real stranded work stays, so the next replan still
				// fails loudly instead of silently dropping workload
				// (deadline pressure can strand arbitrary work when a
				// window collapses below one ulp).
				if r <= 1e-6*p.Work {
					rem[p.ID] = 0
				}
			}
		}
	}
}

// arrivalGroups returns the distinct release times of the instance in
// order together with the jobs released at each.
func arrivalGroups(in *job.Instance) ([]float64, map[float64][]job.Job) {
	groups := map[float64][]job.Job{}
	for _, j := range in.Jobs {
		groups[j.Release] = append(groups[j.Release], j)
	}
	times := make([]float64, 0, len(groups))
	for t := range groups {
		times = append(times, t)
	}
	sort.Float64s(times)
	return times, groups
}

// OA runs the Optimal Available algorithm: at every arrival it
// recomputes the optimal plan for the remaining work (all of it
// available now) and follows the plan until the next arrival. Values
// are ignored; every job is finished. Exactly αα-competitive.
func OA(in *job.Instance) (*sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	out := &sched.Schedule{M: 1}
	times, groups := arrivalGroups(in)
	rem := map[int]float64{}
	meta := map[int]job.Job{}

	for i, t := range times {
		for _, j := range groups[t] {
			rem[j.ID] = j.Work
			meta[j.ID] = j
		}
		var pend []Pending
		for id, r := range rem {
			if r > 0 {
				pend = append(pend, Pending{ID: id, Deadline: meta[id].Deadline, Rem: r, Work: meta[id].Work})
			}
		}
		blocks, err := Staircase(t, pend)
		if err != nil {
			return nil, err
		}
		horizon := math.Inf(1)
		if i+1 < len(times) {
			horizon = times[i+1]
		}
		ExecutePlan(blocks, horizon, rem, &out.Segments)
	}
	return out, nil
}

// AVR runs the Average Rate algorithm: each job is processed at its
// density w/(d-r) across its whole window; the processor speed is the
// sum of active densities. Within each atomic interval the active jobs
// run sequentially with time shares proportional to their densities,
// which realises exactly the per-job average rates.
func AVR(in *job.Instance) (*sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	out := &sched.Schedule{M: 1}
	bounds := make([]float64, 0, 2*len(in.Jobs))
	for _, j := range in.Jobs {
		bounds = append(bounds, j.Release, j.Deadline)
	}
	sort.Float64s(bounds)
	bounds = slices.Compact(bounds)

	for k := 0; k+1 < len(bounds); k++ {
		t0, t1 := bounds[k], bounds[k+1]
		var total float64
		var active []job.Job
		for _, j := range in.Jobs {
			if j.Release <= t0 && j.Deadline >= t1 {
				active = append(active, j)
				total += j.Density()
			}
		}
		if total <= 0 {
			continue
		}
		t := t0
		for _, j := range active {
			share := (t1 - t0) * j.Density() / total
			out.Segments = append(out.Segments, sched.Segment{
				Proc: 0, Job: j.ID, T0: t, T1: t + share, Speed: total,
			})
			t += share
		}
	}
	return out, nil
}

// stepsPerInterval is the sub-grid used by the simulated baselines
// (BKP, qOA) inside each atomic interval. Their speed functions are not
// piecewise constant on atomic intervals, so energy is integrated on
// this grid; the deadline-pressure guard in gridSim.span absorbs the
// discretization error (which shrinks as the grid refines).
const stepsPerInterval = 32

// bkpSim is BKP's dense policy: at time t the speed is  max over
// windows [t1, t2) with t = t1 + (t2-t1)/e  of  e·w(t, t1, t2)/(t2-t1),
// where w(t, t1, t2) is the total work of jobs known at t with release
// ≥ t1 and deadline ≤ t2. It keeps every observed job: past windows
// still contribute work to candidate windows reaching beyond t.
type bkpSim struct {
	known []job.Job
}

func (p *bkpSim) observe(j job.Job) { p.known = append(p.known, j) }

func (p *bkpSim) speedAt(t float64, _ []liveJob) (float64, error) {
	var best float64
	consider := func(u float64) {
		if u <= 0 {
			return
		}
		t1 := t - u/math.E
		t2 := t + u*(math.E-1)/math.E
		// Candidate u values are derived from releases and
		// deadlines; boundary jobs must count despite float
		// round-off in the reconstruction of t1/t2.
		slack := 1e-9 * (1 + u)
		var w float64
		for _, j := range p.known {
			if j.Release >= t1-slack && j.Release <= t && j.Deadline <= t2+slack {
				w += j.Work
			}
		}
		if s := math.E * w / u; s > best {
			best = s
		}
	}
	for _, j := range p.known {
		if j.Release <= t {
			consider(math.E * (t - j.Release))
		}
		if j.Deadline > t {
			consider((j.Deadline - t) * math.E / (math.E - 1))
		}
	}
	return best, nil
}

// BKP runs the algorithm of Bansal, Kimbrel and Pruhs, simulated on
// the interval grid, processing jobs EDF. Essentially
// 2e^{α+1}-competitive.
func BKP(in *job.Instance) (*sched.Schedule, error) {
	return simulate(in, &bkpSim{})
}

// QOA runs qOA: the OA plan speed scaled by q = 2 - 1/α, executing EDF.
// Designed for small α where it beats both OA and BKP.
func QOA(in *job.Instance, pm power.Model) (*sched.Schedule, error) {
	return simulate(in, &qoaSim{q: 2 - 1/pm.Alpha})
}

// simulate drives a grid policy on the atomic-interval grid,
// processing pending work EDF at the policy's speed. It shares
// gridSim.span with the incremental sessions, so both produce
// identical floats on identical arrival sequences.
func simulate(in *job.Instance, pol simPolicy) (*sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return &sched.Schedule{M: 1}, nil
	}
	bounds := make([]float64, 0, 2*len(in.Jobs))
	for _, j := range in.Jobs {
		bounds = append(bounds, j.Release, j.Deadline)
	}
	sort.Float64s(bounds)
	bounds = slices.Compact(bounds)

	// Jobs become known grouped by release in slice order — the order
	// BKP's window scan sums work in — so release them through a
	// stable sort instead of rescanning the instance per interval.
	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Jobs[order[a]].Release < in.Jobs[order[b]].Release
	})

	var ls liveSet
	var sim gridSim
	var segs segList
	next := 0
	for k := 0; k+1 < len(bounds); k++ {
		t0, t1 := bounds[k], bounds[k+1]
		for next < len(order) && in.Jobs[order[next]].Release == t0 { //schedlint:exactfloat releases sit exactly on grid boundaries by construction
			j := in.Jobs[order[next]]
			ls.insert(j)
			pol.observe(j)
			next++
		}
		if err := sim.span(t0, t1, &ls, pol, &segs); err != nil {
			return nil, err
		}
	}
	if err := sim.checkFinished(&ls); err != nil {
		return nil, err
	}
	return &sched.Schedule{M: 1, Segments: segs.materialize()}, nil
}
