package chaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newUpstream starts an HTTP server that counts requests and echoes
// the body length.
func newUpstream(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Value) {
	t.Helper()
	var hits atomic.Int64
	var lastBody atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			// Torn body: the request never completed — not a hit.
			return
		}
		hits.Add(1)
		lastBody.Store(string(b))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits, &lastBody
}

func target(srv *httptest.Server) string { return strings.TrimPrefix(srv.URL, "http://") }

func TestProxyPassThrough(t *testing.T) {
	srv, hits, body := newUpstream(t)
	p, err := New("127.0.0.1:0", target(srv), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := http.Post("http://"+p.Addr(), "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(out) != "ok" {
		t.Fatalf("through proxy: %d %q", resp.StatusCode, out)
	}
	if hits.Load() != 1 || body.Load().(string) != "hello" {
		t.Fatalf("upstream saw hits=%d body=%v", hits.Load(), body.Load())
	}
}

func TestProxyDropResponse(t *testing.T) {
	srv, hits, _ := newUpstream(t)
	p, err := New("127.0.0.1:0", target(srv), Config{Seed: 1, DropResponse: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// The request reaches the server (it applies), but the ack never
	// comes back — the canonical ambiguous outcome.
	_, err = http.Post("http://"+p.Addr(), "text/plain", strings.NewReader("applied"))
	if err == nil {
		t.Fatal("expected the response to be dropped")
	}
	for deadline := time.Now().Add(5 * time.Second); hits.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("request never reached upstream")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProxyDuplicateReplaysRequest(t *testing.T) {
	srv, hits, _ := newUpstream(t)
	p, err := New("127.0.0.1:0", target(srv), Config{Seed: 1, Duplicate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Use an explicit Connection: close so the recorded bytes form one
	// complete, replayable HTTP request.
	req, _ := http.NewRequest("POST", "http://"+p.Addr(), strings.NewReader("twice"))
	req.Close = true
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// The original plus the replay.
	for deadline := time.Now().Add(5 * time.Second); hits.Load() < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("upstream hits = %d, want 2 (original + replay)", hits.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if p.Stats().Replayed.Load() != 1 {
		t.Fatalf("replayed = %d, want 1", p.Stats().Replayed.Load())
	}
}

func TestProxyTruncateTearsRequest(t *testing.T) {
	srv, hits, _ := newUpstream(t)
	p, err := New("127.0.0.1:0", target(srv), Config{Seed: 1, Truncate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	big := strings.Repeat("x", 64<<10)
	_, err = http.Post("http://"+p.Addr(), "text/plain", strings.NewReader(big))
	if err == nil {
		t.Fatal("expected the truncated request to fail")
	}
	if hits.Load() != 0 {
		t.Fatalf("upstream completed %d requests from a torn body", hits.Load())
	}
	if p.Stats().Truncated.Load() != 1 {
		t.Fatalf("truncated = %d, want 1", p.Stats().Truncated.Load())
	}
}

func TestProxySetTargetRepoints(t *testing.T) {
	a, aHits, _ := newUpstream(t)
	b, bHits, _ := newUpstream(t)
	p, err := New("127.0.0.1:0", target(a), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	post := func() {
		t.Helper()
		req, _ := http.NewRequest("POST", "http://"+p.Addr(), strings.NewReader("x"))
		req.Close = true // one connection per request, so SetTarget takes effect
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	post()
	p.SetTarget(target(b))
	post()
	if aHits.Load() != 1 || bHits.Load() != 1 {
		t.Fatalf("hits a=%d b=%d, want 1 each", aHits.Load(), bHits.Load())
	}
}

func TestProxySetConfigDisablesFaults(t *testing.T) {
	srv, _, _ := newUpstream(t)
	p, err := New("127.0.0.1:0", target(srv), Config{Seed: 1, DropEarly: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := http.Post("http://"+p.Addr(), "text/plain", strings.NewReader("x")); err == nil {
		t.Fatal("drop-early did not fire")
	}
	p.SetConfig(Config{})
	// All clean from here.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", "http://"+p.Addr(), strings.NewReader("x"))
	req.Close = true
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("clean config still faulted: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
