// Package chaos is a programmable in-process TCP fault proxy: it sits
// between a client and a server and injects the network's pathologies
// on purpose — dropped connections, delayed bytes, duplicated
// requests, mid-stream resets, truncated writes. The e2e differential
// drives a load generator through it against a SIGKILL-prone daemon
// and asserts the final results are byte-identical to an offline
// replay with zero duplicate applications; that assertion is only as
// strong as the faults are nasty, so the proxy aims each fault at the
// spot that historically breaks exactly-once systems (the ack path —
// request applied, response lost).
//
// Faults are decided per accepted connection from a seeded PRNG, so a
// failing run replays exactly with the same seed. The proxy is plain
// net + goroutines: no raw sockets, no privileges, works in any test
// environment that can dial localhost.
package chaos

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is one injected network pathology.
type Fault int

const (
	// FaultNone passes the connection through untouched.
	FaultNone Fault = iota
	// FaultDropEarly resets the connection after a few request bytes —
	// before the server can have seen a full batch.
	FaultDropEarly
	// FaultDropResponse proxies the full request upstream, then cuts
	// the connection before relaying the response — the ambiguous ack
	// loss idempotency exists for: the server applied, the client
	// cannot know.
	FaultDropResponse
	// FaultDelay stalls each direction briefly mid-stream, forcing
	// client attempt timeouts to race real progress.
	FaultDelay
	// FaultDuplicate relays the connection normally while recording
	// the client's request bytes, then replays them on a second
	// upstream connection (response discarded) — a duplicate delivery
	// the dedup window must suppress.
	FaultDuplicate
	// FaultTruncate forwards only a prefix of the request and then
	// resets — a torn write the server must refuse atomically.
	FaultTruncate
	faultCount
)

var faultNames = [...]string{"none", "drop-early", "drop-response", "delay", "duplicate", "truncate"}

func (f Fault) String() string {
	if f >= 0 && int(f) < len(faultNames) {
		return faultNames[f]
	}
	return "unknown"
}

// Config sets the per-connection fault mix. Rates are probabilities in
// [0,1], evaluated in order (drop-early, drop-response, delay,
// duplicate, truncate); whatever is left is a clean pass-through.
type Config struct {
	Seed         int64
	DropEarly    float64
	DropResponse float64
	Delay        float64
	Duplicate    float64
	Truncate     float64
	// DelayFor is how long FaultDelay stalls (default 50ms).
	DelayFor time.Duration
	// DupBuffer caps how many request bytes FaultDuplicate retains for
	// replay (default 1 MiB; a request larger than the cap is not
	// replayed — duplication needs the whole request to be a valid
	// duplicate delivery).
	DupBuffer int
}

// Stats counts injected faults, by kind.
type Stats struct {
	Conns     atomic.Uint64
	Faults    [faultCount]atomic.Uint64
	Replayed  atomic.Uint64 // duplicate requests actually re-sent
	Truncated atomic.Uint64
}

// Proxy is a live fault-injecting TCP forwarder.
type Proxy struct {
	ln    net.Listener
	stats Stats

	mu     sync.Mutex
	cfg    Config
	target string
	rng    *rand.Rand
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// New starts a proxy listening on addr (use "127.0.0.1:0" for an
// ephemeral port) forwarding to target. Faults apply per Config.
func New(addr, target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.DelayFor <= 0 {
		cfg.DelayFor = 50 * time.Millisecond
	}
	if cfg.DupBuffer <= 0 {
		cfg.DupBuffer = 1 << 20
	}
	p := &Proxy{ln: ln, cfg: cfg, target: target, rng: rand.New(rand.NewSource(cfg.Seed)), conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats exposes the fault counters.
func (p *Proxy) Stats() *Stats { return &p.stats }

// SetTarget repoints the upstream (a migrated tenant's new owner, or
// a restarted daemon on a fresh port). Existing connections keep their
// old upstream; new accepts dial the new one.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// SetConfig swaps the fault mix (seed is kept; DelayFor/DupBuffer
// defaults are re-applied). Use Config{} to turn all faults off, e.g.
// for a test's clean verification phase.
func (p *Proxy) SetConfig(cfg Config) {
	if cfg.DelayFor <= 0 {
		cfg.DelayFor = 50 * time.Millisecond
	}
	if cfg.DupBuffer <= 0 {
		cfg.DupBuffer = 1 << 20
	}
	p.mu.Lock()
	cfg.Seed = p.cfg.Seed
	p.cfg = cfg
	p.mu.Unlock()
}

// Close stops accepting, severs live connections (idle keep-alive
// streams would otherwise park a relay forever) and waits for the
// relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// track registers a live connection for Close to sever; it reports
// false (and closes the conn) when the proxy is already closing.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// pick draws the connection's fault and upstream under the lock — the
// single rng is the proxy's only shared mutable state besides config.
func (p *Proxy) pick() (Fault, string, Config) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cfg := p.cfg
	r := p.rng.Float64()
	f := FaultNone
	switch {
	case r < cfg.DropEarly:
		f = FaultDropEarly
	case r < cfg.DropEarly+cfg.DropResponse:
		f = FaultDropResponse
	case r < cfg.DropEarly+cfg.DropResponse+cfg.Delay:
		f = FaultDelay
	case r < cfg.DropEarly+cfg.DropResponse+cfg.Delay+cfg.Duplicate:
		f = FaultDuplicate
	case r < cfg.DropEarly+cfg.DropResponse+cfg.Delay+cfg.Duplicate+cfg.Truncate:
		f = FaultTruncate
	}
	return f, p.target, cfg
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		fault, target, cfg := p.pick()
		p.stats.Conns.Add(1)
		p.stats.Faults[fault].Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.relay(conn, fault, target, cfg)
		}()
	}
}

// abort resets a TCP connection (RST, not FIN) so the peer sees a
// hard failure immediately instead of a half-closed stream.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) relay(down net.Conn, fault Fault, target string, cfg Config) {
	if !p.track(down) {
		return
	}
	defer p.untrack(down)
	defer down.Close()
	up, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		abort(down)
		return
	}
	if !p.track(up) {
		abort(down)
		return
	}
	defer p.untrack(up)
	defer up.Close()

	switch fault {
	case FaultDropEarly:
		// Let a sliver of the request through, then reset both sides.
		io.CopyN(up, down, 64)
		abort(up)
		abort(down)
	case FaultTruncate:
		// Forward a prefix, then reset: the server sees a torn body.
		io.CopyN(up, down, 512)
		p.stats.Truncated.Add(1)
		abort(up)
		abort(down)
	case FaultDropResponse:
		// Relay request bytes upstream as the client writes them; the
		// moment the server starts answering — proof it processed the
		// request — cut the client off without the ack. (Waiting for
		// client EOF would deadlock: an HTTP client holds the stream
		// open while it waits for the response.)
		go func() {
			io.Copy(up, down)
			if tc, ok := up.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}()
		var first [1]byte
		up.SetReadDeadline(time.Now().Add(10 * time.Second))
		up.Read(first[:])
		abort(down)
		abort(up)
	case FaultDelay:
		pipeDelayed(up, down, cfg.DelayFor)
	case FaultDuplicate:
		p.relayDuplicating(down, up, target, cfg)
	default:
		pipe(up, down)
	}
}

// pipe relays both directions until either side closes.
func pipe(up, down net.Conn) {
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(up, down)
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(down, up)
		if tc, ok := down.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

// pipeDelayed is pipe with a one-shot stall on each direction's first
// byte, long enough to trip per-attempt timeouts but not wedge.
func pipeDelayed(up, down net.Conn, d time.Duration) {
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn) {
		var buf [4096]byte
		first := true
		for {
			n, err := src.Read(buf[:])
			if n > 0 {
				if first {
					time.Sleep(d)
					first = false
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		if tc, ok := dst.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}
	go cp(up, down)
	go cp(down, up)
	<-done
	<-done
}

// relayDuplicating relays normally while teeing the client's request
// bytes; once the connection finishes it replays the recorded bytes on
// a fresh upstream connection and discards that response — a duplicate
// delivery of the same batch, which the server's dedup window must
// suppress for the differential to hold.
func (p *Proxy) relayDuplicating(down, up net.Conn, target string, cfg Config) {
	var reqMu sync.Mutex
	var req []byte
	overflow := false
	done := make(chan struct{}, 2)
	go func() {
		var buf [4096]byte
		for {
			n, err := down.Read(buf[:])
			if n > 0 {
				reqMu.Lock()
				if len(req)+n <= cfg.DupBuffer {
					req = append(req, buf[:n]...)
				} else {
					overflow = true
				}
				reqMu.Unlock()
				if _, werr := up.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(down, up)
		if tc, ok := down.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done

	reqMu.Lock()
	replay := req
	ok := !overflow && len(replay) > 0
	reqMu.Unlock()
	if !ok {
		return
	}
	dup, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return
	}
	defer dup.Close()
	if _, err := dup.Write(replay); err != nil {
		return
	}
	if tc, ok := dup.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	p.stats.Replayed.Add(1)
	dup.SetReadDeadline(time.Now().Add(5 * time.Second))
	io.Copy(io.Discard, dup)
}
