package chen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sched"
)

func sys(m int, alpha float64) System {
	return System{M: m, Power: power.New(alpha)}
}

func items(ws ...float64) []Item {
	out := make([]Item, len(ws))
	for i, w := range ws {
		out[i] = Item{ID: i, Work: w}
	}
	return out
}

func randomItems(rng *rand.Rand, n int) []Item {
	out := make([]Item, n)
	for i := range out {
		out[i] = Item{ID: i, Work: rng.Float64() * 10}
	}
	return out
}

func TestPartitionSingleProcessorPoolsEverything(t *testing.T) {
	s := sys(1, 2)
	p := s.Partition(2, items(3, 1, 2))
	if len(p.Dedicated) != 0 || len(p.Pool) != 3 {
		t.Fatalf("m=1 with 3 jobs must be all-pool: %+v", p)
	}
	if math.Abs(p.PoolSpeed-3) > 1e-12 { // (3+1+2)/2
		t.Fatalf("pool speed %v want 3", p.PoolSpeed)
	}
}

func TestPartitionFewJobsAllDedicated(t *testing.T) {
	s := sys(4, 2)
	p := s.Partition(1, items(5, 1))
	if len(p.Dedicated) != 2 || len(p.Pool) != 0 {
		t.Fatalf("2 jobs on 4 procs must all be dedicated: %+v", p)
	}
	if p.Dedicated[0].Work != 5 {
		t.Fatal("dedicated not sorted desc")
	}
	if p.PoolSpeed != 0 {
		t.Fatalf("no pool work but pool speed %v", p.PoolSpeed)
	}
}

func TestPartitionMixed(t *testing.T) {
	// m=2, workloads 10, 1, 1: job 10 dominates (10 ≥ (1+1)/1), the
	// two small jobs pool on the second processor.
	s := sys(2, 2)
	p := s.Partition(1, items(10, 1, 1))
	if len(p.Dedicated) != 1 || p.Dedicated[0].Work != 10 {
		t.Fatalf("want one dedicated job of 10: %+v", p)
	}
	if math.Abs(p.PoolSpeed-2) > 1e-12 {
		t.Fatalf("pool speed %v want 2", p.PoolSpeed)
	}
}

func TestPartitionBalancedJobsAllPool(t *testing.T) {
	// Equal workloads never satisfy the strict majority condition
	// unless they fit one per processor.
	s := sys(2, 2)
	p := s.Partition(1, items(3, 3, 3))
	if len(p.Dedicated) != 1 {
		// 3 ≥ (3+3)/(2-1)=6? No. So zero dedicated.
		if len(p.Dedicated) != 0 {
			t.Fatalf("unexpected dedicated set: %+v", p)
		}
	}
	if math.Abs(p.PoolSpeed-4.5) > 1e-12 {
		t.Fatalf("pool speed %v want 4.5", p.PoolSpeed)
	}
}

func TestPartitionEmptyAndZeroWork(t *testing.T) {
	s := sys(3, 2)
	p := s.Partition(1, nil)
	if len(p.Dedicated) != 0 || len(p.Pool) != 0 || p.PoolSpeed != 0 {
		t.Fatalf("empty partition wrong: %+v", p)
	}
	if e := s.Energy(1, nil); e != 0 {
		t.Fatalf("P_k(0)=%v want 0 (Proposition 1a)", e)
	}
	p = s.Partition(1, items(0, 0))
	if p.PoolSpeed != 0 {
		t.Fatalf("zero work pool speed %v", p.PoolSpeed)
	}
}

func TestEnergyKnownValue(t *testing.T) {
	// m=2, l=2, workloads 8 and 2: 8/2=4 vs rem 2: 8 ≥ 2 dedicated;
	// pool speed 2/2=1. E = 2·4^2 + 2·1^2 = 34 for α=2.
	s := sys(2, 2)
	got := s.Energy(2, items(8, 2))
	if math.Abs(got-34) > 1e-12 {
		t.Fatalf("energy %v want 34", got)
	}
}

func TestEnergyEqualSplitBeatsImbalance(t *testing.T) {
	// With convex power, balancing identical total work across
	// processors is optimal; Partition must find that for pool jobs.
	s := sys(2, 3)
	balanced := s.Energy(1, items(2, 2))
	if math.Abs(balanced-2*8) > 1e-12 { // two procs at speed 2: 2·2^3
		t.Fatalf("balanced energy %v want 16", balanced)
	}
	// Same total as one job: must cost more (single job cannot split).
	single := s.Energy(1, items(4))
	if single <= balanced {
		t.Fatalf("single job %v should cost more than split %v", single, balanced)
	}
}

func TestSpeedOfAndMinProcessorSpeed(t *testing.T) {
	s := sys(2, 2)
	p := s.Partition(1, items(10, 1, 1))
	if p.SpeedOf(0) != 10 {
		t.Fatalf("dedicated speed %v", p.SpeedOf(0))
	}
	if p.SpeedOf(1) != 2 || p.SpeedOf(2) != 2 {
		t.Fatalf("pool speeds %v %v", p.SpeedOf(1), p.SpeedOf(2))
	}
	if p.SpeedOf(99) != 0 {
		t.Fatal("absent job must have speed 0")
	}
	if got := s.MinProcessorSpeed(p); got != 2 {
		t.Fatalf("min proc speed %v want 2", got)
	}
	// All processors dedicated: min = slowest dedicated.
	p = s.Partition(1, items(10, 4))
	if got := s.MinProcessorSpeed(p); got != 4 {
		t.Fatalf("min proc speed %v want 4", got)
	}
	// Idle processor: min speed 0.
	p = s.Partition(1, items(10))
	if got := s.MinProcessorSpeed(p); got != 0 {
		t.Fatalf("min proc speed %v want 0", got)
	}
}

// TestDerivativeMatchesFiniteDifference verifies Proposition 1(b):
// ∂E/∂W_j = α·s_j^{α-1}, including across partition-type boundaries.
func TestDerivativeMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(4)
		alpha := 1.3 + 2.5*rng.Float64()
		s := sys(m, alpha)
		l := 0.2 + 2*rng.Float64()
		n := 1 + rng.Intn(6)
		it := randomItems(rng, n)
		j := rng.Intn(n)

		p := s.Partition(l, it)
		analytic := s.Marginal(p, it[j].ID)

		h := 1e-7 * (1 + it[j].Work)
		plus := make([]Item, n)
		minus := make([]Item, n)
		copy(plus, it)
		copy(minus, it)
		plus[j].Work += h
		minus[j].Work = math.Max(0, minus[j].Work-h)
		fd := (s.Energy(l, plus) - s.Energy(l, minus)) / (plus[j].Work - minus[j].Work)
		if math.Abs(fd-analytic) > 1e-3*(1+math.Abs(analytic)) {
			t.Fatalf("trial %d (m=%d α=%.2f): analytic %v vs fd %v (items %+v, j=%d)",
				trial, m, alpha, analytic, fd, it, j)
		}
	}
}

// TestEnergyConvexity samples Proposition 1(a): P_k is convex. We check
// midpoint convexity along random segments in assignment space.
func TestEnergyConvexity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(4)
		s := sys(m, 1.2+3*rng.Float64())
		l := 0.5 + rng.Float64()
		n := 1 + rng.Intn(6)
		a := randomItems(rng, n)
		b := randomItems(rng, n)
		mid := make([]Item, n)
		for i := range mid {
			mid[i] = Item{ID: i, Work: 0.5 * (a[i].Work + b[i].Work)}
		}
		ea, eb, em := s.Energy(l, a), s.Energy(l, b), s.Energy(l, mid)
		if em > 0.5*(ea+eb)+1e-9*(1+ea+eb) {
			t.Fatalf("convexity violated: E(mid)=%v > (E(a)+E(b))/2=%v", em, 0.5*(ea+eb))
		}
	}
}

// TestProposition2 verifies 0 ≤ L'_i − L_i ≤ z: adding a new job of
// workload z never decreases any processor's load and never increases
// one by more than z (loads compared in sorted order).
func TestProposition2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	loadsOf := func(s System, l float64, it []Item) []float64 {
		p := s.Partition(l, it)
		loads := make([]float64, s.M)
		for i, d := range p.Dedicated {
			loads[i] = d.Work
		}
		var pool float64
		for _, q := range p.Pool {
			pool += q.Work
		}
		free := s.M - len(p.Dedicated)
		for i := 0; i < free; i++ {
			loads[len(p.Dedicated)+i] = pool / float64(free)
		}
		return loads // already sorted descending by construction
	}
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(5)
		s := sys(m, 2)
		l := 0.5 + rng.Float64()
		n := rng.Intn(7)
		it := randomItems(rng, n)
		z := rng.Float64() * 12
		before := loadsOf(s, l, it)
		after := loadsOf(s, l, append(append([]Item{}, it...), Item{ID: 99, Work: z}))
		for i := 0; i < m; i++ {
			d := after[i] - before[i]
			if d < -1e-9 || d > z+1e-9 {
				t.Fatalf("Prop 2 violated at proc %d: before %v after %v z=%v", i, before, after, z)
			}
		}
	}
}

// TestWorkAtSpeedInverts checks the central capacity-inversion
// primitive: if z = WorkAtSpeed(l, others, s) is positive, inserting a
// new job with workload z yields speed exactly s for it.
func TestWorkAtSpeedInverts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 1000; trial++ {
		m := 1 + rng.Intn(5)
		s := sys(m, 2.3)
		l := 0.3 + 2*rng.Float64()
		others := randomItems(rng, rng.Intn(7))
		sp := rng.Float64() * 15
		z := s.WorkAtSpeed(l, others, sp)
		if z < 0 {
			t.Fatalf("negative capacity %v", z)
		}
		if z == 0 {
			continue
		}
		p := s.Partition(l, append(append([]Item{}, others...), Item{ID: 42, Work: z}))
		got := p.SpeedOf(42)
		if math.Abs(got-sp) > 1e-9*(1+sp) {
			t.Fatalf("trial %d: inserted z=%v, wanted speed %v got %v (m=%d l=%v others=%+v)",
				trial, z, sp, got, m, l, others)
		}
	}
}

// TestWorkAtSpeedMonotoneContinuous checks z_k(s) is nondecreasing and
// has no jumps (samples on a fine grid).
func TestWorkAtSpeedMonotoneContinuous(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(4)
		s := sys(m, 2)
		l := 0.5 + rng.Float64()
		others := randomItems(rng, rng.Intn(6))
		prev := 0.0
		prevS := 0.0
		for i := 0; i <= 4000; i++ {
			sp := float64(i) * 0.005
			z := s.WorkAtSpeed(l, others, sp)
			if z < prev-1e-9 {
				t.Fatalf("z(s) decreased: z(%v)=%v z(%v)=%v", prevS, prev, sp, z)
			}
			// Lipschitz in s with constant m·l: a jump violates this.
			if z-prev > float64(m)*l*(sp-prevS)+1e-9 {
				t.Fatalf("z(s) jumped: z(%v)=%v z(%v)=%v", prevS, prev, sp, z)
			}
			prev, prevS = z, sp
		}
	}
}

// TestWorkAtSpeedBelowFloor: at or below the current slowest-processor
// speed there is no capacity.
func TestWorkAtSpeedBelowFloor(t *testing.T) {
	s := sys(2, 2)
	others := items(10, 4) // both dedicated; min speed 4 at l=1
	if z := s.WorkAtSpeed(1, others, 3.9); z != 0 {
		t.Fatalf("capacity below floor must be 0, got %v", z)
	}
	if z := s.WorkAtSpeed(1, others, 4.5); z <= 0 {
		t.Fatalf("capacity just above floor must be positive, got %v", z)
	}
}

func TestWorkAtSpeedZeroOrNegativeSpeed(t *testing.T) {
	s := sys(2, 2)
	if s.WorkAtSpeed(1, items(1), 0) != 0 || s.WorkAtSpeed(1, items(1), -1) != 0 {
		t.Fatal("nonpositive speed must have zero capacity")
	}
}

func TestWorkAtSpeedEmptyMachine(t *testing.T) {
	s := sys(3, 2)
	// Empty machine at speed s: capacity m·l·s but capped at cutoff
	// s·l (the new job cannot use more than one processor).
	if z := s.WorkAtSpeed(2, nil, 1.5); math.Abs(z-3) > 1e-12 {
		t.Fatalf("empty machine capacity %v want 3 (=s·l)", z)
	}
}

// TestMarginalForNewMatchesLimit: the marginal cost of the first unit
// of a new job equals the derivative of energy in the direction of a
// new job at z→0.
func TestMarginalForNewMatchesLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(4)
		s := sys(m, 2)
		l := 0.5 + rng.Float64()
		others := randomItems(rng, rng.Intn(6))
		p := s.Partition(l, others)
		analytic := s.MarginalForNew(p)
		h := 1e-8
		e0 := s.Energy(l, others)
		e1 := s.Energy(l, append(append([]Item{}, others...), Item{ID: 77, Work: h}))
		fd := (e1 - e0) / h
		if math.Abs(fd-analytic) > 1e-4*(1+analytic) {
			t.Fatalf("marginal-for-new %v vs fd %v (others %+v m=%d)", analytic, fd, others, m)
		}
	}
}

func TestTimelineConservesWorkAndEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(5)
		s := sys(m, 2.7)
		t0 := rng.Float64() * 5
		l := 0.2 + 2*rng.Float64()
		n := rng.Intn(8)
		it := randomItems(rng, n)
		segs := s.Timeline(t0, t0+l, it)

		done := map[int]float64{}
		var energy float64
		for _, seg := range segs {
			if seg.T0 < t0-1e-12 || seg.T1 > t0+l+1e-12 {
				t.Fatalf("segment outside interval: %+v", seg)
			}
			if seg.Proc < 0 || seg.Proc >= m {
				t.Fatalf("segment on bad processor: %+v", seg)
			}
			done[seg.Job] += seg.Work()
			energy += s.Power.Energy(seg.Speed, seg.T1-seg.T0)
		}
		for _, item := range it {
			if math.Abs(done[item.ID]-item.Work) > 1e-9*(1+item.Work) {
				t.Fatalf("work not conserved for job %d: got %v want %v", item.ID, done[item.ID], item.Work)
			}
		}
		want := s.Energy(l, it)
		if !numeric.Close(energy, want, 1e-9) {
			t.Fatalf("timeline energy %v != P_k %v", energy, want)
		}
	}
}

// TestTimelineNoParallelism: McNaughton wrap-around must never run one
// job on two processors at once.
func TestTimelineNoParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(5)
		s := sys(m, 2)
		l := 0.2 + 2*rng.Float64()
		it := randomItems(rng, rng.Intn(9))
		segs := s.Timeline(0, l, it)
		byJob := map[int][][2]float64{}
		byProc := map[int][][2]float64{}
		for _, seg := range segs {
			byJob[seg.Job] = append(byJob[seg.Job], [2]float64{seg.T0, seg.T1})
			byProc[seg.Proc] = append(byProc[seg.Proc], [2]float64{seg.T0, seg.T1})
		}
		check := func(spans [][2]float64, what string) {
			for i := range spans {
				for k := i + 1; k < len(spans); k++ {
					lo := math.Max(spans[i][0], spans[k][0])
					hi := math.Min(spans[i][1], spans[k][1])
					if hi-lo > 1e-9*l {
						t.Fatalf("%s overlaps: %v and %v", what, spans[i], spans[k])
					}
				}
			}
		}
		for id, spans := range byJob {
			check(spans, "job "+string(rune('0'+id%10)))
		}
		for p, spans := range byProc {
			check(spans, "proc "+string(rune('0'+p%10)))
		}
	}
}

// TestTimelineWrapAround pins down McNaughton's rule on a concrete
// case: 3 pool jobs of 2 units each on 2 processors (l=3, speed 1).
// Job B must wrap from processor 0 to processor 1 without overlapping
// itself.
func TestTimelineWrapAround(t *testing.T) {
	s := sys(2, 2)
	segs := s.Timeline(0, 3, items(2, 2, 2))
	if len(segs) != 4 {
		t.Fatalf("want 4 segments (one job wraps), got %+v", segs)
	}
	// All at pool speed 1.
	for _, seg := range segs {
		if math.Abs(seg.Speed-1) > 1e-12 {
			t.Fatalf("pool speed %v want 1", seg.Speed)
		}
	}
	// The wrapped job: its two pieces are [2,3) on cpu0 and [0,1) on
	// cpu1 — disjoint in time.
	var wrapped int = -1
	count := map[int]int{}
	for _, seg := range segs {
		count[seg.Job]++
	}
	for id, c := range count {
		if c == 2 {
			wrapped = id
		}
	}
	if wrapped == -1 {
		t.Fatalf("no job wrapped: %+v", segs)
	}
	var pieces []sched.Segment
	for _, seg := range segs {
		if seg.Job == wrapped {
			pieces = append(pieces, seg)
		}
	}
	if pieces[0].Proc == pieces[1].Proc {
		t.Fatalf("wrap stayed on one processor: %+v", pieces)
	}
	lo := math.Max(pieces[0].T0, pieces[1].T0)
	hi := math.Min(pieces[0].T1, pieces[1].T1)
	if hi > lo+1e-12 {
		t.Fatalf("wrapped pieces overlap in time: %+v", pieces)
	}
}

// TestPartitionOptimality cross-checks Chen's assignment against a
// brute-force water-filling: for small cases the energy must match the
// true minimum over all ways to balance work across processors,
// computed here by convex search over pool/dedicated splits.
func TestPartitionOptimality(t *testing.T) {
	// For two processors and two jobs (a ≥ b), the optimal energy is:
	// separate processors (speeds a/l, b/l). For three jobs the choice
	// is which single job (if any) gets a dedicated processor.
	s := sys(2, 2)
	l := 1.0
	cases := [][]float64{
		{4, 1, 1}, {2, 2, 2}, {9, 5, 4}, {1, 0.2, 0.1}, {6, 3, 3},
	}
	for _, ws := range cases {
		got := s.Energy(l, items(ws...))
		best := math.Inf(1)
		total := ws[0] + ws[1] + ws[2]
		mx := math.Max(ws[0], math.Max(ws[1], ws[2]))
		// Perfectly balanced split is feasible only if no single job
		// needs more than one processor's worth of time (McNaughton).
		if mx <= total/2 {
			best = math.Min(best, 2*math.Pow(total/2, 2))
		}
		// Job i alone on processor 0, the rest sequential on processor
		// 1 — always feasible.
		for i := 0; i < 3; i++ {
			rest := total - ws[i]
			best = math.Min(best, math.Pow(ws[i], 2)+math.Pow(rest, 2))
		}
		if math.Abs(got-best) > 1e-9*(1+best) {
			t.Fatalf("ws=%v: Chen %v != feasible optimum %v", ws, got, best)
		}
	}
}

func TestPartitionQuickNeverWorseThanBalanced(t *testing.T) {
	// Property: Chen's energy is never worse than the "perfectly
	// balanced" lower bound (total/m)^α·m·l, and never better than the
	// single-processor upper bound — basic sanity envelope.
	err := quick.Check(func(raw []float64, mRaw uint8) bool {
		m := int(mRaw%4) + 1
		s := sys(m, 2)
		var it []Item
		var total float64
		for i, w := range raw {
			if len(it) == 8 {
				break
			}
			w = math.Abs(w)
			if math.IsNaN(w) || math.IsInf(w, 0) || w > 1e6 {
				continue
			}
			it = append(it, Item{ID: i, Work: w})
			total += w
		}
		e := s.Energy(1, it)
		lower := float64(m) * math.Pow(total/float64(m), 2)
		upper := math.Pow(total, 2)
		return e >= lower-1e-9*(1+lower) && e <= upper+1e-9*(1+upper)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}
