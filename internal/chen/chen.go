// Package chen implements the algorithm of Chen, Hsu, Chuang, Yang,
// Pang and Kuo (ECRTS 2004) that the paper uses as its per-interval
// substrate: given an atomic interval of length l, m speed-scalable
// processors and a work assignment (workload W_j for each job inside
// the interval), compute the energy-minimal feasible schedule.
//
// The structure (Eq. 5 and 6 of the paper) is: sort jobs by workload
// descending; a prefix of "dedicated" jobs each occupies its own
// processor at speed W_j/l, and all remaining "pool" jobs share the
// remaining processors at the common average speed. Job j (1-based in
// sorted order) is dedicated iff
//
//	j ≤ m  ∧  W_j > 0  ∧  W_j ≥ (Σ_{j'>j} W_{j'}) / (m − j).
//
// The condition has a prefix property: if it fails for j it fails for
// every j' > j (assume W_{j+1} ≥ rem_{j+1}/(m−j−1); substituting
// rem_{j+1} = rem_j − W_{j+1} gives W_{j+1} ≥ rem_j/(m−j) > W_j, a
// contradiction with the sort order). The implementation relies on it.
//
// Beyond evaluating the assignment, this package exposes the three
// operations the paper's analysis needs:
//
//   - Energy and per-job speeds (the function P_k, Eq. 6);
//   - the partial derivative ∂E/∂W_j = α·s_j^{α-1} (Proposition 1);
//   - the capacity inversion WorkAtSpeed: the workload z a *new* job
//     must receive in the interval so that its resulting speed is
//     exactly s (the primitive from which PD's water-filling is built);
//   - an explicit McNaughton wrap-around timeline realising the
//     assignment with migratory, non-parallel execution.
package chen

import (
	"math"
	"sort"

	"repro/internal/power"
	"repro/internal/sched"
)

// System couples a processor count with a power model.
type System struct {
	M     int
	Power power.Model
}

// Item is a job's workload inside one atomic interval.
type Item struct {
	ID   int
	Work float64
}

// Partition is the dedicated/pool split for one interval.
type Partition struct {
	L float64
	// Dedicated jobs, sorted by workload descending. Job i runs alone
	// on processor i at speed Dedicated[i].Work/L.
	Dedicated []Item
	// Pool jobs share the remaining processors at PoolSpeed each.
	Pool []Item
	// PoolSpeed is Σ pool work / ((m-|Dedicated|)·L); zero if no pool.
	PoolSpeed float64
}

// sortItems returns items sorted by workload descending (ties by ID for
// determinism).
func sortItems(items []Item) []Item {
	s := make([]Item, len(items))
	copy(s, items)
	sort.Slice(s, func(a, b int) bool {
		if s[a].Work != s[b].Work { //schedlint:exactfloat sort tie-break on values copied bit-for-bit
			return s[a].Work > s[b].Work
		}
		return s[a].ID < s[b].ID
	})
	return s
}

// Partition computes the dedicated/pool split of Eq. (5) for an
// interval of length l > 0.
func (sys System) Partition(l float64, items []Item) Partition {
	sorted := sortItems(items)
	var total float64
	for _, it := range sorted {
		total += it.Work
	}
	rem := total
	d := 0
	for j := 1; j <= len(sorted) && j <= sys.M; j++ {
		w := sorted[j-1].Work
		rem -= w
		// Dedicated iff W_j·(m−j) ≥ rem; for j = m this degenerates to
		// rem ≤ 0, i.e. nothing is left over for a pool.
		if w > 0 && w*float64(sys.M-j) >= rem {
			d = j
		} else {
			rem += w
			break
		}
	}
	p := Partition{
		L:         l,
		Dedicated: sorted[:d],
		Pool:      sorted[d:],
	}
	if d < sys.M && rem > 0 {
		p.PoolSpeed = rem / (float64(sys.M-d) * l)
	}
	return p
}

// SpeedOf returns the speed at which job id runs, or 0 if absent.
func (p Partition) SpeedOf(id int) float64 {
	for _, it := range p.Dedicated {
		if it.ID == id {
			return it.Work / p.L
		}
	}
	for _, it := range p.Pool {
		if it.ID == id {
			return p.PoolSpeed
		}
	}
	return 0
}

// MinProcessorSpeed returns the speed of the slowest processor: the
// pool speed if any processor is a pool processor, otherwise the
// smallest dedicated speed (all m processors dedicated), otherwise 0.
func (sys System) MinProcessorSpeed(p Partition) float64 {
	if len(p.Dedicated) < sys.M {
		return p.PoolSpeed // possibly 0 when idle processors exist and no pool work
	}
	return p.Dedicated[len(p.Dedicated)-1].Work / p.L
}

// Energy evaluates P_k (Eq. 6): the energy of the energy-minimal
// schedule of the assignment over the interval.
func (sys System) Energy(l float64, items []Item) float64 {
	p := sys.Partition(l, items)
	var e float64
	for _, it := range p.Dedicated {
		e += l * sys.Power.Power(it.Work/l)
	}
	free := sys.M - len(p.Dedicated)
	if free > 0 && p.PoolSpeed > 0 {
		e += float64(free) * l * sys.Power.Power(p.PoolSpeed)
	}
	return e
}

// Marginal returns ∂E/∂W for the workload of job id in the interval:
// α·s^{α-1} with s the job's current speed (Proposition 1, stated per
// unit of workload rather than per unit of x_jk; the paper's
// ∂P_k/∂x_jk equals w_j times this value).
func (sys System) Marginal(p Partition, id int) float64 {
	return sys.Power.Marginal(p.SpeedOf(id))
}

// MarginalForNew returns the marginal energy cost of giving the *first*
// unit of workload to a job not yet present in the interval: α·s^{α-1}
// where s is the speed of the slowest processor (the new job starts as
// a pool job, or shares with the slowest dedicated job when all
// processors are dedicated).
func (sys System) MarginalForNew(p Partition) float64 {
	return sys.Power.Marginal(sys.MinProcessorSpeed(p))
}

// WorkAtSpeed returns the workload z ≥ 0 that a new job must be
// assigned in an interval of length l already carrying `others` so that
// the new job's speed under Partition becomes exactly s. The function
// is continuous, piecewise linear and nondecreasing in s, and zero
// whenever s is at or below the current slowest-processor speed.
//
// Derivation: fix the target speed s and let cutoff = s·l. Existing
// jobs with W > cutoff stay dedicated above the new job; all others
// join the pool. With d such dedicated jobs and P the pool workload of
// the others, the new job can absorb z = (m−d)·l·s − P as a pool job.
// If that exceeds cutoff, the new job is itself dedicated at speed s,
// i.e. z = cutoff (the leftover pool then runs strictly slower than s).
// If d ≥ m there is no capacity at level s at all.
func (sys System) WorkAtSpeed(l float64, others []Item, s float64) float64 {
	if s <= 0 {
		return 0
	}
	cutoff := s * l
	d := 0
	var pool float64
	for _, it := range others {
		if it.Work > cutoff {
			d++
		} else {
			pool += it.Work
		}
	}
	if d >= sys.M {
		return 0
	}
	z := float64(sys.M-d)*l*s - pool
	if z <= 0 {
		return 0
	}
	return math.Min(z, cutoff)
}

// Timeline realises the assignment as explicit segments over the
// original time window [t0, t1). Dedicated jobs occupy processors
// 0..d-1 for the whole interval; pool jobs are packed onto processors
// d..m-1 with McNaughton's wrap-around rule, which is feasible because
// every pool job's processing time W/PoolSpeed is strictly less than
// the interval length (its workload is strictly below the pool
// average — see the prefix-property argument above).
func (sys System) Timeline(t0, t1 float64, items []Item) []sched.Segment {
	l := t1 - t0
	p := sys.Partition(l, items)
	var segs []sched.Segment
	for i, it := range p.Dedicated {
		if it.Work <= 0 {
			continue
		}
		segs = append(segs, sched.Segment{
			Proc: i, Job: it.ID, T0: t0, T1: t1, Speed: it.Work / l,
		})
	}
	if p.PoolSpeed <= 0 {
		return segs
	}
	proc := len(p.Dedicated)
	offset := 0.0 // time already filled on current pool processor
	const tiny = 1e-12
	for _, it := range p.Pool {
		if it.Work <= 0 {
			continue
		}
		dur := it.Work / p.PoolSpeed
		for dur > tiny*l && proc < sys.M {
			avail := l - offset
			if avail <= tiny*l {
				proc++
				offset = 0
				continue
			}
			take := math.Min(dur, avail)
			segs = append(segs, sched.Segment{
				Proc: proc, Job: it.ID,
				T0: t0 + offset, T1: t0 + offset + take,
				Speed: p.PoolSpeed,
			})
			dur -= take
			offset += take
		}
	}
	return segs
}
