package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/stats"
	"repro/internal/workload"
)

// newTestTenant builds a tenantClient over an httptest server with the
// shared resilient client wired in, as Run would.
func newTestTenant(srv *httptest.Server) *tenantClient {
	cfg := Config{BaseURL: srv.URL, Client: srv.Client()}.withDefaults()
	var dups atomic.Uint64
	return &tenantClient{
		cfg: cfg, id: "t-0", base: srv.URL,
		rc:   client.New(client.Config{HTTPClient: cfg.Client}),
		dups: &dups,
	}
}

func TestGeneratorKinds(t *testing.T) {
	for _, kind := range []string{"uniform", "poisson", "diurnal", "bursty", "heavytail"} {
		gen, err := Generator(kind)
		if err != nil {
			t.Fatalf("Generator(%q): %v", kind, err)
		}
		in := gen(workload.Config{N: 3, Seed: 1})
		if len(in.Jobs) != 3 {
			t.Fatalf("Generator(%q) produced %d jobs, want 3", kind, len(in.Jobs))
		}
	}
	if _, err := Generator("zipf"); err == nil || !strings.Contains(err.Error(), "zipf") {
		t.Fatalf("Generator(zipf) error = %v, want unknown-kind error naming it", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Spec: engine.Spec{M: 4, Alpha: 2.5}, Tenants: 8, Workers: 99}.withDefaults()
	if c.Batch != 1 || c.Prefix != "lg" || c.Client == nil || c.Gen == nil {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.Workers != 8 {
		t.Fatalf("Workers = %d, want clamped to Tenants (8)", c.Workers)
	}
	if c.Workload.M != 4 || c.Workload.Alpha != 2.5 {
		t.Fatalf("Workload did not inherit Spec's M/Alpha: %+v", c.Workload)
	}
}

// TestPostBatchBody pins the request wire format: one NDJSON line per
// arrival, built with the zero-allocation codec, decodable by the
// daemon's own decoder.
func TestPostBatchBody(t *testing.T) {
	var got []job.Job
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dec := job.GetDecoder(r.Body)
		defer job.PutDecoder(dec)
		var j job.Job
		for {
			if err := dec.Next(&j); err != nil {
				break
			}
			got = append(got, j)
		}
		fmt.Fprintf(w, `{"accepted":%d}`, len(got))
	}))
	defer srv.Close()

	tc := newTestTenant(srv)
	batch := []job.Job{
		{ID: 7, Release: 0.5, Deadline: 1.5, Work: 0.25},
		{ID: 8, Release: 0.75, Deadline: 2, Work: 0.5},
	}
	var hist stats.Histogram
	if err := tc.postBatch(context.Background(), batch, &hist); err != nil {
		t.Fatalf("postBatch: %v", err)
	}
	if len(got) != len(batch) {
		t.Fatalf("daemon decoded %d arrivals, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("arrival %d decoded as %+v, want %+v", i, got[i], batch[i])
		}
	}
	if hist.Count() != uint64(len(batch)) {
		t.Fatalf("latency histogram counted %d, want one entry per arrival (%d)", hist.Count(), len(batch))
	}
}

// TestPostBatchRejectionAttribution pins the failed-line attribution:
// a partial accept must name the first rejected arrival by job ID,
// decoded back out of the request body the client just sent.
func TestPostBatchRejectionAttribution(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"accepted":1,"error":"policy refused"}`)
	}))
	defer srv.Close()

	tc := newTestTenant(srv)
	batch := []job.Job{
		{ID: 41, Release: 0, Deadline: 1, Work: 0.1},
		{ID: 42, Release: 1, Deadline: 2, Work: 0.1},
		{ID: 43, Release: 2, Deadline: 3, Work: 0.1},
	}
	var hist stats.Histogram
	err := tc.postBatch(context.Background(), batch, &hist)
	if err == nil {
		t.Fatal("postBatch accepted a partial ack without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "job 42") {
		t.Fatalf("error %q does not name the first rejected arrival (job 42)", msg)
	}
	if !strings.Contains(msg, "policy refused") || !strings.Contains(msg, "1 of 3") {
		t.Fatalf("error %q should carry the server message and the accepted count", msg)
	}
}

func TestScrapeArrivalsTotal(t *testing.T) {
	metrics := "# TYPE schedd_arrivals_total counter\nschedd_arrivals_total 12345\nother 1\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, metrics)
	}))
	defer srv.Close()

	cfg := Config{BaseURL: srv.URL, Client: srv.Client()}.withDefaults()
	v, ok := scrapeArrivalsTotal(context.Background(), cfg, cfg.BaseURL)
	if !ok || v != 12345 {
		t.Fatalf("scrapeArrivalsTotal = %d, %v; want 12345, true", v, ok)
	}

	metrics = "schedd_arrivals_total not-a-number\n"
	if _, ok := scrapeArrivalsTotal(context.Background(), cfg, cfg.BaseURL); ok {
		t.Fatal("scrapeArrivalsTotal parsed a garbage counter")
	}

	cfg.BaseURL = srv.URL + "/missing"
	if _, ok := scrapeArrivalsTotal(context.Background(), cfg, cfg.BaseURL); ok {
		t.Fatal("scrapeArrivalsTotal reported ok for a 404 endpoint")
	}
}

// stubDaemon fakes just enough of schedd's HTTP surface for Run: it
// counts arrivals by decoding the NDJSON bodies and answers closes
// with a canned verified result.
type stubDaemon struct {
	arrivals atomic.Uint64
	rejected int
}

func (d *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{}`)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/arrivals", func(w http.ResponseWriter, r *http.Request) {
		dec := job.GetDecoder(r.Body)
		defer job.PutDecoder(dec)
		var j job.Job
		n := 0
		for dec.Next(&j) == nil {
			n++
		}
		d.arrivals.Add(uint64(n))
		fmt.Fprintf(w, `{"accepted":%d}`, n)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		res := engine.Result{Policy: "stub", Energy: 1, Rejected: d.rejected}
		_ = json.NewEncoder(w).Encode(map[string]any{"result": res})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "schedd_arrivals_total %d\n", d.arrivals.Load())
	})
	return mux
}

func TestRunAgainstStubDaemon(t *testing.T) {
	daemon := &stubDaemon{rejected: 1}
	srv := httptest.NewServer(daemon.handler())
	defer srv.Close()

	const tenants, jobsPerTenant = 3, 8
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Client:   srv.Client(),
		Spec:     engine.Spec{Name: "stub", M: 1, Alpha: 2},
		Workload: workload.Config{N: jobsPerTenant, Seed: 42},
		Tenants:  tenants,
		Batch:    3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Tenants != tenants || rep.Arrivals != tenants*jobsPerTenant {
		t.Fatalf("report counted %d tenants / %d arrivals, want %d / %d",
			rep.Tenants, rep.Arrivals, tenants, tenants*jobsPerTenant)
	}
	if got := daemon.arrivals.Load(); got != tenants*jobsPerTenant {
		t.Fatalf("daemon decoded %d arrivals, want %d", got, tenants*jobsPerTenant)
	}
	if rep.Rejected != tenants*daemon.rejected {
		t.Fatalf("Rejected = %d, want %d (aggregated across tenants)", rep.Rejected, tenants*daemon.rejected)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("Throughput = %v, want > 0", rep.Throughput)
	}
	if rep.ServerThroughput <= 0 {
		t.Fatalf("ServerThroughput = %v, want > 0 (scraped off the stub's /metrics)", rep.ServerThroughput)
	}
	if rep.Latency.Count() != uint64(rep.Arrivals) {
		t.Fatalf("latency histogram counted %d, want one entry per arrival (%d)", rep.Latency.Count(), rep.Arrivals)
	}
	if len(rep.Results) != tenants {
		t.Fatalf("Results has %d tenants, want %d", len(rep.Results), tenants)
	}
	for i, tr := range rep.Results {
		if tr.Result == nil {
			t.Fatalf("tenant %d has no verified result", i)
		}
		if want := fmt.Sprintf("lg-%d", i); tr.ID != want {
			t.Fatalf("tenant %d id = %q, want %q", i, tr.ID, want)
		}
		if tr.Arrivals != jobsPerTenant {
			t.Fatalf("tenant %d delivered %d arrivals, want %d", i, tr.Arrivals, jobsPerTenant)
		}
	}
}

// TestRunMultiEndpoint pins the fleet mode: tenants spread round-robin
// across endpoints, the per-node breakdown accounts for every arrival,
// and the fleet numbers are the exact sum of the nodes.
func TestRunMultiEndpoint(t *testing.T) {
	d1, d2 := &stubDaemon{}, &stubDaemon{}
	s1 := httptest.NewServer(d1.handler())
	defer s1.Close()
	s2 := httptest.NewServer(d2.handler())
	defer s2.Close()

	const tenants, jobsPerTenant = 5, 6
	rep, err := Run(context.Background(), Config{
		Endpoints: []string{s1.URL, s2.URL},
		Spec:      engine.Spec{Name: "stub", M: 1, Alpha: 2},
		Workload:  workload.Config{N: jobsPerTenant, Seed: 9},
		Tenants:   tenants,
		Batch:     4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Arrivals != tenants*jobsPerTenant {
		t.Fatalf("fleet arrivals = %d, want %d", rep.Arrivals, tenants*jobsPerTenant)
	}
	if len(rep.PerNode) != 2 {
		t.Fatalf("PerNode has %d entries, want 2", len(rep.PerNode))
	}
	// Round-robin over 5 tenants: 3 on the first endpoint, 2 on the
	// second — and each daemon saw exactly its tenants' arrivals.
	if rep.PerNode[0].Tenants != 3 || rep.PerNode[1].Tenants != 2 {
		t.Fatalf("tenant split = %d/%d, want 3/2", rep.PerNode[0].Tenants, rep.PerNode[1].Tenants)
	}
	if got := d1.arrivals.Load(); got != uint64(rep.PerNode[0].Arrivals) {
		t.Fatalf("node 1 decoded %d arrivals, report says %d", got, rep.PerNode[0].Arrivals)
	}
	if got := d2.arrivals.Load(); got != uint64(rep.PerNode[1].Arrivals) {
		t.Fatalf("node 2 decoded %d arrivals, report says %d", got, rep.PerNode[1].Arrivals)
	}
	sum := rep.PerNode[0].Arrivals + rep.PerNode[1].Arrivals
	if sum != rep.Arrivals {
		t.Fatalf("per-node arrivals sum to %d, fleet says %d", sum, rep.Arrivals)
	}
	if rep.PerNode[0].Latency.Count()+rep.PerNode[1].Latency.Count() != rep.Latency.Count() {
		t.Fatal("per-node latency counts do not sum to the fleet merge")
	}
	// The server-side view sums both daemons' counters.
	if rep.ServerThroughput <= 0 {
		t.Fatalf("ServerThroughput = %v, want > 0 (summed across endpoints)", rep.ServerThroughput)
	}
	var out bytes.Buffer
	if err := rep.Render(&out, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "node "+s1.URL) || !strings.Contains(out.String(), "node "+s2.URL) {
		t.Fatalf("render missing the per-node breakdown:\n%s", out.String())
	}
}

func TestRenderReport(t *testing.T) {
	rep := &Report{
		Tenants:          2,
		Arrivals:         16,
		Rejected:         1,
		Elapsed:          123 * time.Millisecond,
		Throughput:       130.1,
		ServerThroughput: 128.4,
		Results: []TenantResult{
			{ID: "lg-0", Arrivals: 8, Result: &engine.Result{Energy: 2.5, Rejected: 1}},
			{ID: "lg-1", Arrivals: 8},
		},
	}
	var quiet bytes.Buffer
	if err := rep.Render(&quiet, false); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := quiet.String()
	for _, want := range []string{"2 tenants", "16 arrivals", "1 rejected", "server-reported: 128.4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("quiet render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "lg-0") {
		t.Fatalf("quiet render should not include the tenant table:\n%s", out)
	}

	var verbose bytes.Buffer
	if err := rep.Render(&verbose, true); err != nil {
		t.Fatalf("Render verbose: %v", err)
	}
	vout := verbose.String()
	for _, want := range []string{"lg-0", "lg-1", "per-tenant results"} {
		if !strings.Contains(vout, want) {
			t.Fatalf("verbose render missing %q:\n%s", want, vout)
		}
	}
}
