// Package load turns the workload generators into live traffic
// against a running schedd daemon: K concurrent tenants, each
// replaying a generated instance through workload.Stream in scaled
// wall-clock time over the HTTP API, then closing the session and
// collecting the final verified Result. It backs cmd/loadgen and
// doubles as the end-to-end test driver.
//
// Two delivery modes share one lifecycle: the default posts one
// arrival per request (per-arrival HTTP latency is the measurement),
// while Batch > 1 is the sustained-throughput mode — arrivals are
// encoded into NDJSON bodies with the zero-allocation job codec and
// posted Batch lines at a time, with the request/response buffers
// reused across the whole run. The report carries both the
// client-observed throughput and the server's own arrival counter
// over the same window, side by side, so a daemon bottleneck and a
// driver bottleneck cannot be confused.
package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/pool"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Generator resolves a workload kind name to its generator, sharing
// tracegen's vocabulary.
func Generator(kind string) (func(workload.Config) *job.Instance, error) {
	switch kind {
	case "uniform":
		return workload.Uniform, nil
	case "poisson":
		return workload.Poisson, nil
	case "diurnal":
		return workload.Diurnal, nil
	case "bursty":
		return workload.Bursty, nil
	case "heavytail":
		return workload.HeavyTail, nil
	default:
		return nil, fmt.Errorf("load: unknown workload kind %q (want uniform, poisson, diurnal, bursty or heavytail)", kind)
	}
}

// Config shapes one load run.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8080".
	// Pointing it at a cluster controller also works as-is: arrivals
	// and snapshots come back as 307 redirects, and the client
	// re-sends the NDJSON body (a bytes.Reader, so replayable)
	// straight at the owning worker.
	BaseURL string
	// Endpoints, when non-empty, spreads tenants round-robin across
	// several daemons (tenant i drives Endpoints[i%len]) and the
	// report adds a per-node breakdown next to the fleet-merged view.
	// BaseURL is ignored when set.
	Endpoints []string
	// Client issues the HTTP requests (default http.DefaultClient).
	Client *http.Client
	// Spec is the policy every tenant's session is created from.
	Spec engine.Spec
	// Gen generates each tenant's instance (default workload.Poisson).
	Gen func(workload.Config) *job.Instance
	// Workload is the per-tenant shape; seeds are strided per tenant
	// exactly like workload.Fleet. M and Alpha follow Spec.
	Workload workload.Config
	// Tenants is the number of concurrent sessions K (default 1).
	Tenants int
	// Scale is the wall-clock duration of one unit of model time; 0
	// replays as fast as possible (see workload.NewStream).
	Scale time.Duration
	// Batch is how many arrivals each POST carries (default 1, the
	// per-arrival latency mode). Larger batches are the sustained-
	// throughput mode: NDJSON bodies built with the zero-allocation
	// codec, one request per Batch arrivals.
	Batch int
	// Workers bounds concurrently active tenants (default: all).
	Workers int
	// Prefix namespaces the tenant ids (default "lg").
	Prefix string
	// Unstamped turns producer stamping off. By default every arrival
	// request carries an idempotency stamp (producer = tenant id,
	// monotone sequence), which is what makes the resilient client's
	// retries of ambiguous outcomes exactly-once on the server.
	Unstamped bool
	// Retry tunes the resilient client's backoff loop; the zero value
	// uses internal/client defaults (4 retries, 50ms base, 2s cap).
	// The HTTPClient field is overridden by Config.Client when set.
	Retry client.Config
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Gen == nil {
		c.Gen = workload.Poisson
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Workers <= 0 || c.Workers > c.Tenants {
		c.Workers = c.Tenants
	}
	if c.Prefix == "" {
		c.Prefix = "lg"
	}
	c.Workload.M = c.Spec.M
	c.Workload.Alpha = c.Spec.Alpha
	return c
}

// TenantResult is one tenant's outcome.
type TenantResult struct {
	// ID is the session id the tenant ran under.
	ID string
	// Instance is the trace the tenant streamed (for re-verification).
	Instance *job.Instance
	// Arrivals counts delivered arrivals.
	Arrivals int
	// Result is the daemon's final verified result.
	Result *engine.Result
}

// Report aggregates one load run.
type Report struct {
	Tenants  int
	Arrivals int
	Rejected int
	Elapsed  time.Duration
	// Throughput is client-observed arrivals per wall-clock second:
	// acknowledged arrivals divided by the run's elapsed time.
	Throughput float64
	// ServerThroughput is the daemon's own story over the same window:
	// the delta of its schedd_arrivals_total counter divided by the
	// elapsed time. Zero when /metrics was unreachable (not a schedd).
	// Client and server throughput disagreeing is the signal to look
	// for a driver bottleneck (client) or a queueing backlog (server).
	ServerThroughput float64
	// Latency is the per-arrival HTTP round-trip histogram (seconds),
	// merged across tenants. In batch mode each arrival is charged its
	// request's amortized share, so the count stays one per arrival.
	Latency stats.Histogram
	// AllocsPerArrival is the client process's heap allocations per
	// delivered arrival over the run (runtime.MemStats mallocs delta
	// divided by arrivals) — a cheap canary for allocation regressions
	// anywhere in the driver stack. It counts the whole process, so
	// treat it as a trend line, not an exact attribution.
	AllocsPerArrival float64
	// Retries counts HTTP attempts beyond each request's first — the
	// resilient client riding out faults.
	Retries uint64
	// DupsSuppressed counts acks the server marked deduped: retried
	// deliveries whose original had already been applied, suppressed
	// by the idempotency window. Nonzero DupsSuppressed with correct
	// results is exactly-once working as designed.
	DupsSuppressed uint64
	// Shed429 counts 429/503 answers — the server shedding load
	// instead of stalling.
	Shed429 uint64
	// RetryAfterWaits counts backoff sleeps that honored a server
	// Retry-After hint rather than the local schedule.
	RetryAfterWaits uint64
	// NetErrors counts attempts that died on the wire (connection cut,
	// reset, truncated response) — the ambiguous outcomes that forced
	// idempotent retries.
	NetErrors uint64
	// Results holds every tenant's outcome, in tenant index order
	// (the numeric suffix of the ids).
	Results []TenantResult
	// PerNode breaks the run down by endpoint when Endpoints spread
	// tenants across several daemons; empty on single-endpoint runs.
	// The fleet-level fields above are the exact merge across nodes
	// (Latency merges losslessly; counts add).
	PerNode []NodeReport
}

// NodeReport is one endpoint's share of a multi-endpoint run.
type NodeReport struct {
	URL      string
	Tenants  int
	Arrivals int
	// Throughput is this node's acknowledged arrivals over the run's
	// shared wall-clock window.
	Throughput float64
	// Latency is the per-arrival round-trip histogram of this node's
	// tenants only.
	Latency stats.Histogram
}

// Run drives the full load: create K sessions, stream every tenant's
// arrivals at the configured time scale, close each session and
// collect its verified result. Tenants run concurrently on a bounded
// pool; a done ctx stops the remaining work. Partial failures do not
// abort other tenants — all errors come back joined.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	targets := cfg.Endpoints
	if len(targets) == 0 {
		targets = []string{cfg.BaseURL}
	}
	instances := workload.Fleet(cfg.Gen, cfg.Workload, cfg.Tenants)
	results := make([]TenantResult, cfg.Tenants)
	hists := make([]stats.Histogram, cfg.Tenants)

	serverBefore, serverOK := scrapeFleetArrivals(ctx, cfg, targets)
	// One resilient client for the whole run: its stats are the
	// report's resilience columns, and sharing the transport keeps
	// connection reuse across tenants.
	retry := cfg.Retry
	if cfg.Client != http.DefaultClient {
		retry.HTTPClient = cfg.Client
	}
	rc := client.New(retry)
	var dups atomic.Uint64
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	err := pool.RunCtx(ctx, cfg.Tenants, cfg.Workers, func(i int) error {
		id := fmt.Sprintf("%s-%d", cfg.Prefix, i)
		results[i] = TenantResult{ID: id, Instance: instances[i]}
		tc := &tenantClient{cfg: cfg, id: id, base: targets[i%len(targets)], rc: rc, dups: &dups}
		return tc.run(ctx, instances[i], &results[i], &hists[i])
	})
	rep := &Report{Tenants: cfg.Tenants, Elapsed: time.Since(start)}
	rep.Retries = rc.Stats.Retries.Load()
	rep.Shed429 = rc.Stats.Sheds.Load()
	rep.RetryAfterWaits = rc.Stats.RetryAfterWaits.Load()
	rep.NetErrors = rc.Stats.NetErrors.Load()
	rep.DupsSuppressed = dups.Load()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	for i := range results {
		rep.Arrivals += results[i].Arrivals
		if r := results[i].Result; r != nil {
			rep.Rejected += r.Rejected
		}
		rep.Latency.Merge(&hists[i])
	}
	if s := rep.Elapsed.Seconds(); s > 0 {
		rep.Throughput = float64(rep.Arrivals) / s
		if serverOK {
			if serverAfter, ok := scrapeFleetArrivals(ctx, cfg, targets); ok && serverAfter >= serverBefore {
				rep.ServerThroughput = float64(serverAfter-serverBefore) / s
			}
		}
	}
	if rep.Arrivals > 0 {
		rep.AllocsPerArrival = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(rep.Arrivals)
	}
	rep.Results = results
	if len(targets) > 1 {
		rep.PerNode = make([]NodeReport, len(targets))
		for n := range targets {
			rep.PerNode[n].URL = targets[n]
		}
		for i := range results {
			nr := &rep.PerNode[i%len(targets)]
			nr.Tenants++
			nr.Arrivals += results[i].Arrivals
			nr.Latency.Merge(&hists[i])
		}
		if s := rep.Elapsed.Seconds(); s > 0 {
			for n := range rep.PerNode {
				rep.PerNode[n].Throughput = float64(rep.PerNode[n].Arrivals) / s
			}
		}
	}
	return rep, err
}

// tenantClient is one tenant's connection state: the NDJSON body
// under construction (reused for every request of the tenant's life —
// the client-side mirror of the daemon's pooled decode/encode), the
// shared resilient client, and the tenant's producer sequence. The
// tenant id doubles as the producer id: one session, one producer,
// one monotone sequence — which is exactly the server's dedup-window
// contract.
type tenantClient struct {
	cfg  Config
	id   string
	base string // this tenant's endpoint
	rc   *client.Client
	dups *atomic.Uint64 // run-wide deduped-ack counter
	seq  uint64         // producer sequence; next batch is seq+1
	body []byte
}

// run is one tenant's whole lifecycle against the daemon.
func (tc *tenantClient) run(ctx context.Context, in *job.Instance, out *TenantResult, hist *stats.Histogram) error {
	if err := tc.create(ctx); err != nil {
		return fmt.Errorf("tenant %s: create: %w", tc.id, err)
	}
	batch := make([]job.Job, 0, tc.cfg.Batch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := tc.postBatch(ctx, batch, hist); err != nil {
			return err
		}
		out.Arrivals += len(batch)
		batch = batch[:0]
		return nil
	}
	err := workload.NewStream(in, tc.cfg.Scale).Play(ctx, func(j job.Job) error {
		batch = append(batch, j)
		if len(batch) >= tc.cfg.Batch {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err != nil {
		return fmt.Errorf("tenant %s: stream: %w", tc.id, err)
	}
	res, err := tc.close(ctx)
	if err != nil {
		return fmt.Errorf("tenant %s: close: %w", tc.id, err)
	}
	out.Result = res
	return nil
}

// do issues one request through the resilient client — retries,
// backoff, Retry-After and redirects included — and returns the final
// response body. Non-2xx outcomes become errors carrying the server's
// message.
func (tc *tenantClient) do(ctx context.Context, method, path string, body []byte, headers map[string]string) ([]byte, error) {
	resp, err := tc.rc.Do(ctx, method, tc.base+path, body, headers)
	if err != nil {
		return nil, err
	}
	if resp.Status/100 != 2 {
		return nil, fmt.Errorf("%s %s: status %d: %s", method, path, resp.Status, bytes.TrimSpace(resp.Body))
	}
	return resp.Body, nil
}

func (tc *tenantClient) create(ctx context.Context) error {
	body, err := json.Marshal(map[string]any{"id": tc.id, "spec": tc.cfg.Spec})
	if err != nil {
		return err
	}
	// Create is retry-safe without a stamp: the server acks a
	// byte-identical duplicate create with 200.
	_, err = tc.do(ctx, http.MethodPost, "/v1/sessions", body, nil)
	return err
}

// postBatch delivers one NDJSON request of arrivals and charges each
// its amortized share of the round trip. Unless Unstamped, the batch
// carries the tenant's producer stamp, so a retried delivery (lost
// ack, duplicated connection) is suppressed server-side and acked
// deduped — which this client counts but treats as success.
func (tc *tenantClient) postBatch(ctx context.Context, batch []job.Job, hist *stats.Histogram) error {
	tc.body = tc.body[:0]
	for _, j := range batch {
		tc.body = job.AppendJSON(tc.body, j)
		tc.body = append(tc.body, '\n')
	}
	var headers map[string]string
	if !tc.cfg.Unstamped {
		tc.seq++
		headers = map[string]string{
			"X-Producer-Id":  tc.id,
			"X-Producer-Seq": strconv.FormatUint(tc.seq, 10),
		}
	}
	t0 := time.Now()
	raw, err := tc.do(ctx, http.MethodPost, "/v1/sessions/"+tc.id+"/arrivals", tc.body, headers)
	if err != nil {
		return err
	}
	hist.ObserveN(time.Since(t0).Seconds()/float64(len(batch)), uint64(len(batch)))
	var ack struct {
		Accepted int    `json:"accepted"`
		Deduped  bool   `json:"deduped"`
		Error    string `json:"error"`
	}
	if err := json.Unmarshal(raw, &ack); err != nil {
		return err
	}
	if ack.Deduped {
		tc.dups.Add(1)
	}
	if ack.Accepted != len(batch) {
		return fmt.Errorf("batch partially accepted (%d of %d): job %d: %s",
			ack.Accepted, len(batch), tc.rejectedJobID(ack.Accepted), ack.Error)
	}
	return nil
}

// rejectedJobID decodes the request body it just sent back through
// the NDJSON decoder to name the first arrival the daemon did not
// accept — error reporting that costs nothing until something fails.
func (tc *tenantClient) rejectedJobID(accepted int) int {
	dec := job.GetDecoder(bytes.NewReader(tc.body))
	defer job.PutDecoder(dec)
	var j job.Job
	for i := 0; i <= accepted; i++ {
		if err := dec.Next(&j); err != nil {
			return -1
		}
	}
	return j.ID
}

func (tc *tenantClient) close(ctx context.Context) (*engine.Result, error) {
	// Close is retry-safe: a lost DELETE ack is re-served from the
	// daemon's closed-result cache on the retry.
	raw, err := tc.do(ctx, http.MethodDelete, "/v1/sessions/"+tc.id, nil, nil)
	if err != nil {
		return nil, err
	}
	var closed struct {
		Result *engine.Result `json:"result"`
	}
	if err := json.Unmarshal(raw, &closed); err != nil {
		return nil, err
	}
	if closed.Result == nil {
		return nil, fmt.Errorf("close returned no result")
	}
	return closed.Result, nil
}

// scrapeFleetArrivals sums the applied-arrival counter across every
// target's /metrics; ok is false when no target exposed one. A single
// daemon answers schedd_arrivals_total, a cluster controller answers
// the fleet-merged schedd_fleet_arrivals_total — both count the same
// thing, arrivals applied, so the sum is coherent either way.
func scrapeFleetArrivals(ctx context.Context, cfg Config, targets []string) (uint64, bool) {
	var total uint64
	any := false
	for _, base := range targets {
		if v, ok := scrapeArrivalsTotal(ctx, cfg, base); ok {
			total += v
			any = true
		}
	}
	return total, any
}

// scrapeArrivalsTotal reads one daemon's applied-arrival counter off
// /metrics; ok is false when the endpoint is unreachable or does not
// expose the counter.
func scrapeArrivalsTotal(ctx context.Context, cfg Config, base string) (uint64, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return 0, false
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, "schedd_arrivals_total ")
		if !ok {
			rest, ok = strings.CutPrefix(line, "schedd_fleet_arrivals_total ")
		}
		if ok {
			v, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// Render writes the human-readable report: the aggregate line plus a
// tenant table when verbose.
func (r *Report) Render(w io.Writer, verbose bool) error {
	if _, err := fmt.Fprintf(w,
		"loadgen: %d tenants, %d arrivals in %v (%.1f arrivals/s), %d rejected\n",
		r.Tenants, r.Arrivals, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Rejected); err != nil {
		return err
	}
	if r.ServerThroughput > 0 {
		if _, err := fmt.Fprintf(w, "server-reported: %.1f arrivals/s (client-observed %.1f)\n",
			r.ServerThroughput, r.Throughput); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "latency (s): %s\nclient allocs/arrival: %.1f\n",
		r.Latency.String(), r.AllocsPerArrival); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"resilience: %d retries, %d duplicates suppressed, %d shed (429/503), %d retry-after waits, %d net errors\n",
		r.Retries, r.DupsSuppressed, r.Shed429, r.RetryAfterWaits, r.NetErrors); err != nil {
		return err
	}
	for _, nr := range r.PerNode {
		if _, err := fmt.Fprintf(w, "node %s: %d tenants, %d arrivals (%.1f arrivals/s), latency (s): %s\n",
			nr.URL, nr.Tenants, nr.Arrivals, nr.Throughput, nr.Latency.String()); err != nil {
			return err
		}
	}
	if !verbose {
		return nil
	}
	tbl := &stats.Table{
		Title:   "per-tenant results",
		Headers: []string{"tenant", "arrivals", "energy", "lost", "cost", "rejected"},
	}
	for _, tr := range r.Results {
		if tr.Result == nil {
			tbl.AddRow(tr.ID, tr.Arrivals, "-", "-", "-", "-")
			continue
		}
		tbl.AddRow(tr.ID, tr.Arrivals, tr.Result.Energy, tr.Result.LostValue, tr.Result.Cost, tr.Result.Rejected)
	}
	return tbl.Render(w)
}
