// Package load turns the workload generators into live traffic
// against a running schedd daemon: K concurrent tenants, each
// replaying a generated instance through workload.Stream in scaled
// wall-clock time over the HTTP API, then closing the session and
// collecting the final verified Result. It backs cmd/loadgen and
// doubles as the end-to-end test driver.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/pool"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Generator resolves a workload kind name to its generator, sharing
// tracegen's vocabulary.
func Generator(kind string) (func(workload.Config) *job.Instance, error) {
	switch kind {
	case "uniform":
		return workload.Uniform, nil
	case "poisson":
		return workload.Poisson, nil
	case "diurnal":
		return workload.Diurnal, nil
	case "bursty":
		return workload.Bursty, nil
	case "heavytail":
		return workload.HeavyTail, nil
	default:
		return nil, fmt.Errorf("load: unknown workload kind %q (want uniform, poisson, diurnal, bursty or heavytail)", kind)
	}
}

// Config shapes one load run.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the HTTP requests (default http.DefaultClient).
	Client *http.Client
	// Spec is the policy every tenant's session is created from.
	Spec engine.Spec
	// Gen generates each tenant's instance (default workload.Poisson).
	Gen func(workload.Config) *job.Instance
	// Workload is the per-tenant shape; seeds are strided per tenant
	// exactly like workload.Fleet. M and Alpha follow Spec.
	Workload workload.Config
	// Tenants is the number of concurrent sessions K (default 1).
	Tenants int
	// Scale is the wall-clock duration of one unit of model time; 0
	// replays as fast as possible (see workload.NewStream).
	Scale time.Duration
	// Workers bounds concurrently active tenants (default: all).
	Workers int
	// Prefix namespaces the tenant ids (default "lg").
	Prefix string
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Gen == nil {
		c.Gen = workload.Poisson
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.Workers <= 0 || c.Workers > c.Tenants {
		c.Workers = c.Tenants
	}
	if c.Prefix == "" {
		c.Prefix = "lg"
	}
	c.Workload.M = c.Spec.M
	c.Workload.Alpha = c.Spec.Alpha
	return c
}

// TenantResult is one tenant's outcome.
type TenantResult struct {
	// ID is the session id the tenant ran under.
	ID string
	// Instance is the trace the tenant streamed (for re-verification).
	Instance *job.Instance
	// Arrivals counts delivered arrivals.
	Arrivals int
	// Result is the daemon's final verified result.
	Result *engine.Result
}

// Report aggregates one load run.
type Report struct {
	Tenants  int
	Arrivals int
	Rejected int
	Elapsed  time.Duration
	// Throughput is achieved arrivals per wall-clock second.
	Throughput float64
	// Latency is the per-arrival HTTP round-trip histogram (seconds),
	// merged across tenants.
	Latency stats.Histogram
	// AllocsPerArrival is the client process's heap allocations per
	// delivered arrival over the run (runtime.MemStats mallocs delta
	// divided by arrivals) — a cheap canary for allocation regressions
	// anywhere in the driver stack. It counts the whole process, so
	// treat it as a trend line, not an exact attribution.
	AllocsPerArrival float64
	// Results holds every tenant's outcome, in tenant index order
	// (the numeric suffix of the ids).
	Results []TenantResult
}

// Run drives the full load: create K sessions, stream every tenant's
// arrivals at the configured time scale, close each session and
// collect its verified result. Tenants run concurrently on a bounded
// pool; a done ctx stops the remaining work. Partial failures do not
// abort other tenants — all errors come back joined.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	instances := workload.Fleet(cfg.Gen, cfg.Workload, cfg.Tenants)
	results := make([]TenantResult, cfg.Tenants)
	hists := make([]stats.Histogram, cfg.Tenants)

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	err := pool.RunCtx(ctx, cfg.Tenants, cfg.Workers, func(i int) error {
		id := fmt.Sprintf("%s-%d", cfg.Prefix, i)
		results[i] = TenantResult{ID: id, Instance: instances[i]}
		return runTenant(ctx, cfg, id, instances[i], &results[i], &hists[i])
	})
	rep := &Report{Tenants: cfg.Tenants, Elapsed: time.Since(start)}
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	for i := range results {
		rep.Arrivals += results[i].Arrivals
		if r := results[i].Result; r != nil {
			rep.Rejected += r.Rejected
		}
		rep.Latency.Merge(&hists[i])
	}
	if s := rep.Elapsed.Seconds(); s > 0 {
		rep.Throughput = float64(rep.Arrivals) / s
	}
	if rep.Arrivals > 0 {
		rep.AllocsPerArrival = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(rep.Arrivals)
	}
	rep.Results = results
	return rep, err
}

// runTenant is one tenant's whole lifecycle against the daemon.
func runTenant(ctx context.Context, cfg Config, id string, in *job.Instance, out *TenantResult, hist *stats.Histogram) error {
	if err := createSession(ctx, cfg, id); err != nil {
		return fmt.Errorf("tenant %s: create: %w", id, err)
	}
	err := workload.NewStream(in, cfg.Scale).Play(ctx, func(j job.Job) error {
		t0 := time.Now()
		if err := postArrival(ctx, cfg, id, j); err != nil {
			return err
		}
		hist.Observe(time.Since(t0).Seconds())
		out.Arrivals++
		return nil
	})
	if err != nil {
		return fmt.Errorf("tenant %s: stream: %w", id, err)
	}
	res, err := closeSession(ctx, cfg, id)
	if err != nil {
		return fmt.Errorf("tenant %s: close: %w", id, err)
	}
	out.Result = res
	return nil
}

// doJSON issues one request and decodes the JSON response; non-2xx
// responses become errors carrying the server's message.
func doJSON(ctx context.Context, cfg Config, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, cfg.BaseURL+path, body)
	if err != nil {
		return err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(raw))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func createSession(ctx context.Context, cfg Config, id string) error {
	body, err := json.Marshal(map[string]any{"id": id, "spec": cfg.Spec})
	if err != nil {
		return err
	}
	return doJSON(ctx, cfg, http.MethodPost, "/v1/sessions", bytes.NewReader(body), nil)
}

func postArrival(ctx context.Context, cfg Config, id string, j job.Job) error {
	line, err := json.Marshal(j)
	if err != nil {
		return err
	}
	var ack struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := doJSON(ctx, cfg, http.MethodPost, "/v1/sessions/"+id+"/arrivals", bytes.NewReader(line), &ack); err != nil {
		return err
	}
	if ack.Accepted != 1 {
		return fmt.Errorf("arrival not accepted: %s", ack.Error)
	}
	return nil
}

func closeSession(ctx context.Context, cfg Config, id string) (*engine.Result, error) {
	var closed struct {
		Result *engine.Result `json:"result"`
	}
	if err := doJSON(ctx, cfg, http.MethodDelete, "/v1/sessions/"+id, nil, &closed); err != nil {
		return nil, err
	}
	if closed.Result == nil {
		return nil, fmt.Errorf("close returned no result")
	}
	return closed.Result, nil
}

// Render writes the human-readable report: the aggregate line plus a
// tenant table when verbose.
func (r *Report) Render(w io.Writer, verbose bool) error {
	if _, err := fmt.Fprintf(w,
		"loadgen: %d tenants, %d arrivals in %v (%.1f arrivals/s), %d rejected\nlatency (s): %s\nclient allocs/arrival: %.1f\n",
		r.Tenants, r.Arrivals, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Rejected, r.Latency.String(), r.AllocsPerArrival); err != nil {
		return err
	}
	if !verbose {
		return nil
	}
	tbl := &stats.Table{
		Title:   "per-tenant results",
		Headers: []string{"tenant", "arrivals", "energy", "lost", "cost", "rejected"},
	}
	for _, tr := range r.Results {
		if tr.Result == nil {
			tbl.AddRow(tr.ID, tr.Arrivals, "-", "-", "-", "-")
			continue
		}
		tbl.AddRow(tr.ID, tr.Arrivals, tr.Result.Energy, tr.Result.LostValue, tr.Result.Cost, tr.Result.Rejected)
	}
	return tbl.Render(w)
}
