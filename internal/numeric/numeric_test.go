package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBisectIncreasingLinear(t *testing.T) {
	f := func(x float64) float64 { return 3*x - 1 }
	got := BisectIncreasing(f, 0, 10, 5, 1e-12)
	if !Close(got, 2, 1e-9) {
		t.Fatalf("root of 3x-1=5: got %v want 2", got)
	}
}

func TestBisectIncreasingSaturation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got := BisectIncreasing(f, 2, 5, 1, 1e-12); got != 2 {
		t.Fatalf("target below range: got %v want lo=2", got)
	}
	if got := BisectIncreasing(f, 2, 5, 9, 1e-12); got != 5 {
		t.Fatalf("target above range: got %v want hi=5", got)
	}
}

func TestBisectIncreasingPiecewise(t *testing.T) {
	// Flat then steep: the solver must cope with zero-derivative spans.
	f := func(x float64) float64 {
		if x < 1 {
			return 0
		}
		return (x - 1) * (x - 1)
	}
	got := BisectIncreasing(f, 0, 10, 4, 1e-12)
	if !Close(got, 3, 1e-9) {
		t.Fatalf("got %v want 3", got)
	}
}

func TestBisectIncreasingQuick(t *testing.T) {
	// Property: for random increasing cubics and random targets inside
	// the range, |f(root) - target| is tiny.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b, c := rng.Float64()+0.1, rng.Float64(), rng.Float64()
		f := func(x float64) float64 { return a*x*x*x + b*x + c }
		lo, hi := 0.0, 1+10*rng.Float64()
		target := f(lo) + rng.Float64()*(f(hi)-f(lo))
		x := BisectIncreasing(f, lo, hi, target, 1e-13)
		if math.Abs(f(x)-target) > 1e-7*(1+math.Abs(target)) {
			t.Fatalf("iteration %d: f(%v)=%v target %v", i, x, f(x), target)
		}
	}
}

func TestSolveIncreasingGrowsBracket(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	x, err := SolveIncreasing(f, 1, 1e6, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !Close(x, 1000, 1e-6) {
		t.Fatalf("got %v want 1000", x)
	}
}

func TestSolveIncreasingUnreachable(t *testing.T) {
	f := func(x float64) float64 { return math.Min(x, 1) }
	if _, err := SolveIncreasing(f, 1, 5, 1e-12); err == nil {
		t.Fatal("expected ErrBracket for bounded function")
	}
}

func TestSumCompensated(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms.
	xs := make([]float64, 0, 1_000_001)
	xs = append(xs, 1)
	for i := 0; i < 1_000_000; i++ {
		xs = append(xs, 1e-16)
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Fatalf("kahan sum got %v want %v", got, want)
	}
}

func TestAccumulatorMatchesSum(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		var acc Accumulator
		for _, x := range clean {
			acc.Add(x)
		}
		return acc.Value() == Sum(clean)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClose(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1.1, 1e-12, false},
		{0, 1e-13, 1e-12, true}, // absolute near zero
		{1e12, 1e12 + 1, 1e-9, true},
		{-1, 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := Close(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Close(%v,%v,%v)=%v want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestLessEqual(t *testing.T) {
	if !LessEqual(1, 2, 1e-12) {
		t.Error("1 <= 2 must hold")
	}
	if !LessEqual(1+1e-14, 1, 1e-12) {
		t.Error("tiny excess within tolerance must pass")
	}
	if LessEqual(1.1, 1, 1e-12) {
		t.Error("clear violation must fail")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
}
