// Package numeric provides the small numeric kernel used throughout the
// repository: monotone root finding by bisection, compensated summation,
// and tolerant floating-point comparisons.
//
// The repository deliberately depends only on the standard library; this
// package stands in for the pieces of a numeric library the algorithms
// need (the paper's algorithms require only monotone scalar inversion).
package numeric

import (
	"errors"
	"math"
)

// DefaultTol is the relative tolerance used by most solvers in this
// repository. It is far below any difference the experiments care about
// while staying well clear of float64 round-off for the magnitudes that
// occur in schedules.
const DefaultTol = 1e-12

// ErrBracket is returned when a root finder is called with an interval
// that does not bracket a sign change.
var ErrBracket = errors.New("numeric: interval does not bracket a root")

// BisectIncreasing finds x in [lo, hi] with f(x) = target for a
// nondecreasing f. It returns the midpoint of the final bracket. If
// f(lo) > target it returns lo; if f(hi) < target it returns hi. The
// caller is expected to handle those saturation cases (they encode
// "water level below the floor" and "above the ceiling" in the
// scheduling code paths).
func BisectIncreasing(f func(float64) float64, lo, hi, target, tol float64) float64 {
	if tol <= 0 {
		tol = DefaultTol
	}
	flo := f(lo)
	if flo >= target {
		return lo
	}
	fhi := f(hi)
	if fhi <= target {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break // bracket collapsed to adjacent floats
		}
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= tol*math.Max(1, math.Abs(hi)) {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// SolveIncreasing is like BisectIncreasing but grows the upper bracket
// geometrically until it encloses the target, starting from hint (or 1
// if hint <= 0). f must be nondecreasing and unbounded enough to reach
// target, otherwise ErrBracket is returned after 200 doublings.
func SolveIncreasing(f func(float64) float64, hint, target, tol float64) (float64, error) {
	hi := hint
	if hi <= 0 {
		hi = 1
	}
	for i := 0; i < 200; i++ {
		if f(hi) >= target {
			return BisectIncreasing(f, 0, hi, target, tol), nil
		}
		hi *= 2
	}
	return 0, ErrBracket
}

// Sum returns the Kahan-compensated sum of xs. Schedules accumulate
// energy over many short intervals; compensation keeps certificate
// comparisons (cost ≤ α^α·g) honest rather than drowned in round-off.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Accumulator is an incremental Kahan summer.
type Accumulator struct {
	sum, comp float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	y := x - a.comp
	t := a.sum + y
	a.comp = (t - a.sum) - y
	a.sum = t
}

// Value reports the compensated total so far.
func (a *Accumulator) Value() float64 { return a.sum }

// Close reports whether a and b agree to relative tolerance tol
// (absolute for values near zero).
func Close(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

// LessEqual reports a ≤ b up to relative slack tol. Invariant checks
// use it so that exact theoretical inequalities survive float round-off.
func LessEqual(a, b, tol float64) bool {
	return a <= b || Close(a, b, tol)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
