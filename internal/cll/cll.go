// Package cll implements the profitable single-processor scheduler of
// Chan, Lam and Li (WAOA 2010), the (αα + 2e^α)-competitive algorithm
// that the paper's PD improves upon.
//
// CLL is OA plus an admission test. When a job j arrives, the scheduler
// tentatively inserts it into the current OA plan (all remaining work
// available now). If j's planned speed s exceeds the threshold
//
//	s > α^{(α-2)/(α-1)} · (v_j/w_j)^{1/(α-1)}
//
// — equivalently, if the energy the plan would invest into j exceeds
// α^{α-2}·v_j — the job is rejected outright and its value is lost.
// Otherwise j is admitted permanently and the plan proceeds as in OA.
// Section 3 of the paper shows PD's rejection policy for m = 1
// coincides with this threshold.
package cll

import (
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/yds"
)

// Threshold returns the admission speed threshold
// α^{(α-2)/(α-1)}·(v/w)^{1/(α-1)} for a job with workload w and value v.
func Threshold(pm power.Model, w, v float64) float64 {
	if w <= 0 || v <= 0 {
		return 0
	}
	a := pm.Alpha
	return math.Pow(a, (a-2)/(a-1)) * math.Pow(v/w, 1/(a-1))
}

// Result is the outcome of a CLL run.
type Result struct {
	Schedule  *sched.Schedule
	Energy    float64
	LostValue float64
	Cost      float64
	Rejected  []int
}

// Run executes CLL over the instance (which must have M = 1 semantics;
// extra processors are left idle, matching the original single-
// processor algorithm).
func Run(in *job.Instance, pm power.Model) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	inst := in.Clone()
	inst.Normalize()

	out := &sched.Schedule{M: 1}
	rem := map[int]float64{}
	meta := map[int]job.Job{}
	var rejected []int
	var lost float64

	times := make([]float64, 0)
	groups := map[float64][]job.Job{}
	for _, j := range inst.Jobs {
		if _, ok := groups[j.Release]; !ok {
			times = append(times, j.Release)
		}
		groups[j.Release] = append(groups[j.Release], j)
	}
	sort.Float64s(times)

	for i, t := range times {
		for _, j := range groups[t] {
			// Tentative plan with j included.
			pend := pendingAt(rem, meta, j)
			blocks, err := yds.Staircase(t, pend)
			if err != nil {
				return nil, err
			}
			s := yds.PlannedSpeedOf(blocks, j.ID)
			if s > Threshold(pm, j.Work, j.Value) {
				rejected = append(rejected, j.ID)
				lost += j.Value
				continue
			}
			rem[j.ID] = j.Work
			meta[j.ID] = j
		}
		// Re-plan with the admitted set and execute to the next arrival.
		pend := pendingAt(rem, meta, job.Job{ID: -1})
		blocks, err := yds.Staircase(t, pend)
		if err != nil {
			return nil, err
		}
		horizon := math.Inf(1)
		if i+1 < len(times) {
			horizon = times[i+1]
		}
		yds.ExecutePlan(blocks, horizon, rem, &out.Segments)
	}

	out.Rejected = rejected
	res := &Result{
		Schedule:  out,
		Energy:    out.Energy(pm),
		LostValue: lost,
		Rejected:  rejected,
	}
	res.Cost = res.Energy + res.LostValue
	return res, nil
}

// pendingAt builds the pending list from remaining work, optionally
// including a tentative job (ID ≥ 0).
func pendingAt(rem map[int]float64, meta map[int]job.Job, tentative job.Job) []yds.Pending {
	var pend []yds.Pending
	for id, r := range rem {
		if r > 0 {
			pend = append(pend, yds.Pending{ID: id, Deadline: meta[id].Deadline, Rem: r, Work: meta[id].Work})
		}
	}
	if tentative.ID >= 0 {
		pend = append(pend, yds.Pending{ID: tentative.ID, Deadline: tentative.Deadline, Rem: tentative.Work, Work: tentative.Work})
	}
	return pend
}
