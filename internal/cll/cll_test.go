package cll

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sched"
)

func TestThresholdFormula(t *testing.T) {
	pm := power.New(2)
	// α=2: threshold = 2^0·(v/w)^1 = v/w.
	if got := Threshold(pm, 2, 6); math.Abs(got-3) > 1e-12 {
		t.Fatalf("threshold %v want 3", got)
	}
	if Threshold(pm, 0, 1) != 0 || Threshold(pm, 1, 0) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestThresholdEqualsPDRejectionSpeed(t *testing.T) {
	// The Section 3 equivalence, checked at formula level across α.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		alpha := 1.2 + 3*rng.Float64()
		pm := power.Model{Alpha: alpha}
		w := 0.01 + rng.Float64()*10
		v := 0.01 + rng.Float64()*10
		pd := pm.RejectionSpeed(pm.DefaultDelta(), w, v)
		th := Threshold(pm, w, v)
		if math.Abs(pd-th) > 1e-9*(1+th) {
			t.Fatalf("alpha=%v w=%v v=%v: PD %v vs CLL %v", alpha, w, v, pd, th)
		}
	}
}

func TestAdmitAndReject(t *testing.T) {
	pm := power.New(2)
	// Solitary job with density 2: threshold v/w; admitted iff v ≥ 2w.
	mk := func(v float64) *job.Instance {
		return &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
			{ID: 0, Release: 0, Deadline: 1, Work: 2, Value: v},
		}}
	}
	res, err := Run(mk(100), pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 0 || math.Abs(res.Cost-4) > 1e-9 {
		t.Fatalf("valuable job: rejected=%v cost=%v", res.Rejected, res.Cost)
	}
	res, err = Run(mk(0.1), pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 1 || math.Abs(res.Cost-0.1) > 1e-12 {
		t.Fatalf("worthless job: rejected=%v cost=%v", res.Rejected, res.Cost)
	}
}

func TestCLLFeasibleOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pm := power.New(2)
	for trial := 0; trial < 30; trial++ {
		in := &job.Instance{M: 1, Alpha: 2}
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			r := rng.Float64() * 8
			span := 0.3 + rng.Float64()*2
			w := 0.1 + rng.Float64()*2
			solo := span * pm.Power(w/span)
			in.Jobs = append(in.Jobs, job.Job{
				ID: i, Release: r, Deadline: r + span, Work: w,
				Value: solo * math.Exp(rng.NormFloat64()),
			})
		}
		in.Normalize()
		res, err := Run(in, pm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Verify(in, res.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !numeric.Close(res.Cost, res.Energy+res.LostValue, 1e-12) {
			t.Fatalf("trial %d: cost inconsistency", trial)
		}
	}
}

// TestCLLAboveDualBound: PD's dual certificate lower-bounds every
// schedule's cost, including CLL's.
func TestCLLAboveDualBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pm := power.New(2)
	for trial := 0; trial < 20; trial++ {
		in := &job.Instance{M: 1, Alpha: 2}
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			r := rng.Float64() * 6
			span := 0.3 + rng.Float64()*2
			w := 0.1 + rng.Float64()
			solo := span * pm.Power(w/span)
			in.Jobs = append(in.Jobs, job.Job{
				ID: i, Release: r, Deadline: r + span, Work: w,
				Value: solo * math.Exp(rng.NormFloat64()),
			})
		}
		in.Normalize()
		cllRes, err := Run(in, pm)
		if err != nil {
			t.Fatal(err)
		}
		pdRes, err := core.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.LessEqual(pdRes.Dual, cllRes.Cost, 1e-6) {
			t.Fatalf("trial %d: dual %v above CLL cost %v (dual must lower-bound every schedule)",
				trial, pdRes.Dual, cllRes.Cost)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(&job.Instance{M: 0, Alpha: 2}, power.New(2)); err == nil {
		t.Fatal("invalid instance accepted")
	}
}
