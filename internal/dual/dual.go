// Package dual evaluates the Lagrangian dual function g(λ) of the
// convex program (CP) from Section 2.1 of the paper. By weak duality,
// g(λ) lower-bounds the optimal cost of (CP) — and therefore of the
// integral program (IMP) and of every feasible schedule — for *any*
// λ ⪰ 0. Algorithm PD's analysis (Lemmas 4-6) reduces g(λ) to a closed
// form, which this package computes directly:
//
//	g(λ) = Σ_j min(λ_j, v_j)                        (ŷ contribution)
//	     + Σ_k (1-α)·l_k·Σ_{j ∈ top_k} ŝ_j^α        (x̂ contribution)
//
// where ŝ_j = (λ_j/(α·w_j))^{1/(α-1)} and top_k is the set of the
// min(m, n_k) jobs available in atomic interval T_k with the largest
// ŝ_j (Lemma 5(c)). The x̂ term is the optimal *infeasible* solution's
// energy scaled by (1-α) (Lemma 6).
//
// Evaluated at PD's multipliers λ̃ this is the certificate behind
// Theorem 3; evaluated at arbitrary λ it provides certified lower
// bounds on OPT for instances far beyond enumeration reach.
package dual

import (
	"math"
	"sort"

	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/power"
)

// Value computes g(λ) for the given environment. lambda is indexed by
// job ID; jobs with λ_j ≤ 0 contribute nothing to the energy term.
// Infinite v_j (finish-all instances) are handled by min(λ_j, v_j).
func Value(pm power.Model, m int, jobs []job.Job, lambda map[int]float64) float64 {
	var g float64
	for _, j := range jobs {
		g += math.Min(lambda[j.ID], j.Value)
	}
	g += (1 - pm.Alpha) * InfeasibleEnergy(pm, m, jobs, lambda)
	return g
}

// InfeasibleEnergy returns Σ_j E_λ(j), the total energy of the optimal
// infeasible (x̂, ŷ)-schedule of Section 4.1: in every atomic interval,
// the min(m, n_k) available jobs with the largest ŝ_j each run on their
// own dedicated processor at constant speed ŝ_j.
func InfeasibleEnergy(pm power.Model, m int, jobs []job.Job, lambda map[int]float64) float64 {
	windows := make([][2]float64, len(jobs))
	for i, j := range jobs {
		windows[i] = [2]float64{j.Release, j.Deadline}
	}
	bounds := interval.BoundariesOf(windows)

	shat := make([]float64, len(jobs))
	for i, j := range jobs {
		l := lambda[j.ID]
		if l > 0 {
			shat[i] = math.Pow(l/(pm.Alpha*j.Work), 1/(pm.Alpha-1))
		}
	}

	var total float64
	speeds := make([]float64, 0, len(jobs))
	for k := 0; k+1 < len(bounds); k++ {
		t0, t1 := bounds[k], bounds[k+1]
		speeds = speeds[:0]
		for i, j := range jobs {
			if j.Release <= t0 && j.Deadline >= t1 && shat[i] > 0 {
				speeds = append(speeds, shat[i])
			}
		}
		if len(speeds) == 0 {
			continue
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(speeds)))
		top := speeds
		if len(top) > m {
			top = top[:m]
		}
		var e float64
		for _, s := range top {
			e += pm.Power(s)
		}
		total += (t1 - t0) * e
	}
	return total
}
