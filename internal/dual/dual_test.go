package dual

import (
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/power"
)

func TestValueSingleJobHandComputed(t *testing.T) {
	// One job on [0,1), w=1, v=5, α=2, λ=2: ŝ = (2/(2·1))^{1/1} = 1.
	// g = min(2,5) + (1-2)·1·1^2 = 2 - 1 = 1.
	pm := power.New(2)
	jobs := []job.Job{{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 5}}
	got := Value(pm, 1, jobs, map[int]float64{0: 2})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("g = %v want 1", got)
	}
}

func TestValueCapsAtJobValue(t *testing.T) {
	// λ above v contributes only v to the linear term (ŷ_j = 0 case).
	pm := power.New(2)
	jobs := []job.Job{{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 0.5}}
	got := Value(pm, 1, jobs, map[int]float64{0: 2})
	want := 0.5 - 1.0 // min(2, 0.5) + (1-2)·ŝ^2 with ŝ = 1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("g = %v want %v", got, want)
	}
}

func TestValueZeroLambdaIsZero(t *testing.T) {
	pm := power.New(3)
	jobs := []job.Job{{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: 4}}
	if got := Value(pm, 2, jobs, map[int]float64{}); got != 0 {
		t.Fatalf("g(0) = %v want 0", got)
	}
}

func TestInfeasibleEnergyTopMSelection(t *testing.T) {
	// Three identical-window jobs, m=2: only the two largest ŝ count.
	pm := power.New(2)
	jobs := []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 100},
		{ID: 1, Release: 0, Deadline: 1, Work: 1, Value: 100},
		{ID: 2, Release: 0, Deadline: 1, Work: 1, Value: 100},
	}
	lam := map[int]float64{0: 2, 1: 4, 2: 6} // ŝ = λ/(α·w) = 1, 2, 3 for α=2, w=1
	got := InfeasibleEnergy(pm, 2, jobs, lam)
	want := 1.0 * (9 + 4) // top two: 3^2 + 2^2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy %v want %v", got, want)
	}
	// With m=3 all three contribute.
	got = InfeasibleEnergy(pm, 3, jobs, lam)
	want = 9 + 4 + 1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy %v want %v", got, want)
	}
}

func TestInfeasibleEnergyRespectsAvailability(t *testing.T) {
	// Job 1 is only available in [1,2); its ŝ must not contribute in
	// [0,1) even if it is the largest.
	pm := power.New(2)
	jobs := []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: 1},
		{ID: 1, Release: 1, Deadline: 2, Work: 1, Value: 1},
	}
	lam := map[int]float64{0: 2, 1: 10} // ŝ0 = 1, ŝ1 = 5
	got := InfeasibleEnergy(pm, 1, jobs, lam)
	want := 1.0*1 + 1.0*25 // [0,1): job 0 alone; [1,2): job 1 wins top-1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy %v want %v", got, want)
	}
}

func TestValueInfiniteJobValues(t *testing.T) {
	// min(λ, +Inf) = λ; finish-all instances work unchanged.
	pm := power.New(2)
	jobs := []job.Job{{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: math.Inf(1)}}
	got := Value(pm, 1, jobs, map[int]float64{0: 2})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("g = %v want 1", got)
	}
}
