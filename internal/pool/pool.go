// Package pool provides the bounded worker pool shared by the replay
// engine and the experiment harness: a fixed number of goroutines
// drain an index stream, every task's error is kept, and all of them
// are reported joined rather than first-error-wins.
package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Run executes fn(0), …, fn(n-1) on at most workers goroutines (≤ 0
// means GOMAXPROCS) and blocks until all calls return. Exactly
// min(workers, n) goroutines are started up front — tasks are handed
// out through a shared channel, so no goroutine exists per task and a
// slow task never blocks the others — and every error is returned,
// joined with errors.Join, not just the first.
func Run(n, workers int, fn func(i int) error) error {
	return RunCtx(context.Background(), n, workers, fn)
}

// RunCtx is Run with cooperative cancellation: once ctx is done no
// further indices are handed out, already-running calls finish
// undisturbed, and ctx.Err() comes back joined with the task errors.
// Indices that were never handed out are not reported individually —
// the joined ctx.Err() stands for all of them.
func RunCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n+1)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		// The plain Err check first: select picks randomly among ready
		// cases, so without it a done ctx could keep losing the coin
		// toss and leak several more indices to idle workers.
		if err := ctx.Err(); err != nil {
			errs[n] = err
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			errs[n] = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return errors.Join(errs...)
}
