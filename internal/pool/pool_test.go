package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesAll(t *testing.T) {
	var done [100]int32
	if err := Run(len(done), 7, func(i int) error {
		atomic.StoreInt32(&done[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if d != 1 {
			t.Fatalf("task %d not executed", i)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int32
	var mu sync.Mutex
	err := Run(50, workers, func(int) error {
		n := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		defer atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks, want ≤ %d", peak, workers)
	}
}

func TestRunJoinsAllErrors(t *testing.T) {
	e3, e7 := errors.New("task 3 broke"), errors.New("task 7 broke")
	err := Run(10, 2, func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if !errors.Is(err, e3) || !errors.Is(err, e7) {
		t.Fatalf("joined error misses a task error: %v", err)
	}
	if n := strings.Count(err.Error(), "broke"); n != 2 {
		t.Fatalf("want exactly the 2 failures in %q", err)
	}
}

func TestRunEdgeCases(t *testing.T) {
	if err := Run(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 must be a no-op, got %v", err)
	}
	// workers ≤ 0 falls back to GOMAXPROCS; workers > n is clamped.
	for _, w := range []int{-1, 0, 1, 99} {
		var count int32
		if err := Run(5, w, func(int) error { atomic.AddInt32(&count, 1); return nil }); err != nil {
			t.Fatal(err)
		}
		if count != 5 {
			t.Fatalf("workers=%d: executed %d of 5", w, count)
		}
	}
	if err := Run(4, 2, func(i int) error { return fmt.Errorf("fail %d", i) }); err == nil {
		t.Fatal("all-failing run must error")
	}
}

func TestRunCtxStopsHandingOutOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 100
	var started int32
	// One worker: cancel after the third task, so the feeder is blocked
	// handing out task 3 when the cancellation lands.
	err := RunCtx(ctx, n, 1, func(i int) error {
		if atomic.AddInt32(&started, 1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled joined, got %v", err)
	}
	// In-flight tasks finish; nothing new starts once ctx is done. The
	// feeder may have already parked one more index in the channel, so
	// allow a single extra task.
	if s := atomic.LoadInt32(&started); s > 4 {
		t.Fatalf("started %d tasks after cancelling at 3", s)
	}
}

func TestRunCtxKeepsTaskErrorsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("task 0 broke")
	err := RunCtx(ctx, 10, 1, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want task error and ctx error joined, got %v", err)
	}
}

func TestRunCtxUncancelledMatchesRun(t *testing.T) {
	var count int32
	if err := RunCtx(context.Background(), 50, 4, func(int) error {
		atomic.AddInt32(&count, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("executed %d of 50", count)
	}
}
