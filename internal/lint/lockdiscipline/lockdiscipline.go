// Package lockdiscipline enforces two serving-layer concurrency
// rules that code review has had to carry by hand since PR 3:
//
//  1. No call-outs under infrastructure locks. A sync.Mutex field
//     whose doc comment carries //schedlint:nocallout (the serve
//     shard map lock, the MPSC ring lock, the host admission lock)
//     is a short-critical-section lock shared across tenants.
//     While one is held, calling into another module package —
//     engine.Live.ApplyBatch can run an arbitrary policy — or into
//     serve.Session methods turns "bounded ring push" into "every
//     tenant waits for one tenant's policy". The analyzer tracks
//     Lock/Unlock (including defer) through straight-line control
//     flow and flags such calls inside the held region.
//
//  2. No mixed atomic/plain field access. A field passed by address
//     to a sync/atomic function anywhere in the package must be
//     accessed only that way; plain reads or writes of the same field
//     elsewhere are racy-by-construction (the typed atomic.* wrappers
//     make this impossible, which is why the repo prefers them —
//     this catches the raw-uint64 backslide).
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "no module call-outs under //schedlint:nocallout mutexes; no mixed atomic/plain field access",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.NewDirectives(pass.Fset, pass.Files)
	guarded := nocalloutMutexes(pass, dirs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCallouts(pass, guarded, fd)
		}
	}
	checkMixedAtomics(pass)
	return nil, nil
}

// nocalloutMutexes collects the field objects of sync.Mutex (and
// RWMutex) fields annotated //schedlint:nocallout.
func nocalloutMutexes(pass *analysis.Pass, dirs *analysis.Directives) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !dirs.GroupHas(fld.Doc, "nocallout") && !dirs.GroupHas(fld.Comment, "nocallout") {
					continue
				}
				for _, name := range fld.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && isMutex(obj.Type()) {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// checkCallouts walks one function tracking which nocallout mutexes
// are held, flagging module call-outs inside held regions. The
// tracking is branch-aware in one specific way: a block that ends in
// return/panic does not leak its lock-state changes to the code after
// it (the unlock-and-early-return idiom).
func checkCallouts(pass *analysis.Pass, guarded map[types.Object]bool, fd *ast.FuncDecl) {
	if len(guarded) == 0 {
		return
	}
	c := &callouts{pass: pass, guarded: guarded, held: map[types.Object]token.Pos{}}
	c.stmts(fd.Body.List)
}

type callouts struct {
	pass    *analysis.Pass
	guarded map[types.Object]bool
	// held maps a guarded mutex field to the position of its Lock.
	held map[types.Object]token.Pos
}

// stmts processes a statement list in order, mutating c.held.
func (c *callouts) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *callouts) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() → the lock is held until function exit;
		// keep it held for the remainder of the walk. Other deferred
		// calls are checked as expressions (they run eventually).
		if obj, op := c.lockOp(s.Call); obj != nil && op == "Unlock" {
			return
		}
		c.expr(s.Call)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e)
		}
		for _, e := range s.Lhs {
			c.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond)
		c.branch(s.Body.List)
		if s.Else != nil {
			c.branch([]ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.branch(s.Body.List)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.branch(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.branch(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.branch(cl.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.branch(cl.Body)
			}
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.GoStmt:
		// The goroutine runs without our locks; check its body with a
		// clean slate.
		saved := c.save()
		c.held = map[types.Object]token.Pos{}
		c.expr(s.Call)
		c.held = saved
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.IncDecStmt:
		c.expr(s.X)
	}
}

// branch runs a conditional body. Lock-state changes propagate out of
// the branch only when the branch can fall through (its last statement
// is not return/panic) — the unlock-and-early-return idiom must not
// unlock the main path.
func (c *callouts) branch(list []ast.Stmt) {
	saved := c.save()
	c.stmts(list)
	if terminates(list) {
		c.held = saved
	}
}

func (c *callouts) save() map[types.Object]token.Pos {
	cp := make(map[types.Object]token.Pos, len(c.held))
	for k, v := range c.held {
		cp[k] = v
	}
	return cp
}

func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// expr scans one expression for Lock/Unlock transitions and for
// forbidden calls while a guarded mutex is held.
func (c *callouts) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, op := c.lockOp(call); obj != nil {
			switch op {
			case "Lock", "RLock":
				c.held[obj] = call.Pos()
			case "Unlock", "RUnlock":
				delete(c.held, obj)
			}
			return true
		}
		if len(c.held) > 0 {
			c.checkCall(call)
		}
		return true
	})
}

// lockOp matches <expr>.<field>.Lock()/Unlock() where field is a
// guarded mutex, returning the field object and the method name.
func (c *callouts) lockOp(call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "Unlock" && op != "RLock" && op != "RUnlock" {
		return nil, ""
	}
	fieldSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := c.pass.TypesInfo.Selections[fieldSel]
	if !ok {
		return nil, ""
	}
	obj := s.Obj()
	if !c.guarded[obj] {
		return nil, ""
	}
	return obj, op
}

// checkCall flags calls that must not happen under a guarded lock:
// anything into another module package (policy code may block or
// re-enter) and serve.Session methods.
func (c *callouts) checkCall(call *ast.CallExpr) {
	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = c.pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[fun]; ok {
			callee, _ = sel.Obj().(*types.Func)
		} else {
			callee, _ = c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		}
	}
	if callee == nil || callee.Pkg() == nil {
		return
	}
	path := callee.Pkg().Path()
	inModule := path == c.pass.Module || strings.HasPrefix(path, c.pass.Module+"/")
	crossPackage := inModule && path != c.pass.Pkg.Path()
	sessionMethod := path == c.pass.Pkg.Path() && receiverNamed(callee, "Session")
	if crossPackage || sessionMethod {
		for obj, at := range c.held {
			c.pass.Reportf(call.Pos(),
				"call to %s.%s while %s (a //schedlint:nocallout mutex locked at %s) is held",
				callee.Pkg().Name(), callee.Name(), obj.Name(),
				c.pass.Fset.Position(at))
			return
		}
	}
}

func receiverNamed(f *types.Func, name string) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// --- mixed atomic/plain field access ---

type fieldAccess struct {
	atomicPos token.Pos
	plainPos  token.Pos
}

// checkMixedAtomics flags struct fields accessed both through
// sync/atomic functions (by address) and directly.
func checkMixedAtomics(pass *analysis.Pass) {
	acc := map[types.Object]*fieldAccess{}
	get := func(obj types.Object) *fieldAccess {
		a := acc[obj]
		if a == nil {
			a = &fieldAccess{}
			acc[obj] = a
		}
		return a
	}
	// atomicArgs marks the &x.f arguments consumed by atomic calls so
	// the plain-access walk below does not double-count them.
	atomicArgs := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && isAtomicCall(pass, call) {
				for _, arg := range call.Args {
					if obj := addrOfField(pass, arg); obj != nil {
						a := get(obj)
						if a.atomicPos == token.NoPos {
							a.atomicPos = arg.Pos()
						}
						atomicArgs[arg] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || atomicArgs[n] {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			obj := s.Obj()
			if a, tracked := acc[obj]; tracked && a.plainPos == token.NoPos {
				a.plainPos = sel.Pos()
			}
			return true
		})
	}
	for obj, a := range acc {
		if a.atomicPos != token.NoPos && a.plainPos != token.NoPos {
			pass.Reportf(a.plainPos,
				"field %s is accessed with sync/atomic at %s but plainly here (racy mixed access; use the typed atomic wrappers)",
				obj.Name(), pass.Fset.Position(a.atomicPos))
		}
	}
}

func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic"
}

// addrOfField matches &x.f and returns f's field object.
func addrOfField(pass *analysis.Pass, arg ast.Expr) types.Object {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := un.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
