package lockdiscipline_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockdiscipline"
)

func TestLockdisciplineGolden(t *testing.T) {
	linttest.Run(t, "testdata", lockdiscipline.Analyzer)
}
