// Package eng stands in for the engine: the module package hot code
// must never call into while holding a nocallout lock.
package eng

// Apply models engine.Live.ApplyBatch — arbitrary policy work.
func Apply() {}
