// Package s exercises the lock-discipline rules.
package s

import (
	"sync"
	"sync/atomic"

	"sandbox/eng"
)

type ring struct {
	mu sync.Mutex //schedlint:nocallout
	n  int
}

// plain is an unannotated mutex: no restrictions.
type plain struct {
	mu sync.Mutex
}

// Session models serve.Session: its methods must not run under a
// guarded lock even from the same package.
type Session struct{}

// Apply models Session.apply.
func (s *Session) Apply() {}

func local(r *ring) {}

func (r *ring) bad(sess *Session) {
	r.mu.Lock()
	eng.Apply()  // want `call to eng.Apply while mu`
	sess.Apply() // want `call to s.Apply while mu`
	local(r)     // same-package non-Session call: fine
	r.n++
	r.mu.Unlock()
	eng.Apply() // released: fine
}

func (r *ring) deferred() {
	r.mu.Lock()
	defer r.mu.Unlock()
	eng.Apply() // want `call to eng.Apply while mu`
}

func (r *ring) earlyReturn(ok bool) {
	r.mu.Lock()
	if ok {
		r.mu.Unlock()
		return
	}
	eng.Apply() // want `call to eng.Apply while mu`
	r.mu.Unlock()
}

func (r *ring) unlockedBranch(ok bool) {
	r.mu.Lock()
	r.mu.Unlock()
	if ok {
		eng.Apply() // not held: fine
	}
}

func (r *ring) goroutine() {
	r.mu.Lock()
	go func() {
		eng.Apply() // the goroutine does not inherit the lock: fine
	}()
	r.mu.Unlock()
}

func (p *plain) unannotated() {
	p.mu.Lock()
	eng.Apply() // mutex not marked nocallout: fine
	p.mu.Unlock()
}

// counter mixes atomic and plain access to n — the backslide the
// typed atomic wrappers exist to prevent.
type counter struct {
	n uint64
	m uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
	atomic.AddUint64(&c.m, 1)
}

func (c *counter) read() uint64 {
	return c.n // want `field n is accessed with sync/atomic`
}

func (c *counter) readAtomic() uint64 {
	return atomic.LoadUint64(&c.m) // address-taken for atomics only: fine
}
