// Package a exercises every hotalloc rule.
package a

import "fmt"

type T struct{ x int }

func take(func()) {}

// allocHelper allocates and carries no role annotation: hot callers
// must be flagged.
func allocHelper() []int {
	return make([]int, 4)
}

// AllocHelper is the exported twin for the cross-package fact test.
func AllocHelper() []int {
	return make([]int, 4)
}

// cleanHelper does not allocate; hot callers are fine.
func cleanHelper(x int) int { return x + 1 }

//schedlint:coldpath
func coldHelper() []int { return make([]int, 8) }

//schedlint:hotpath
func hotLiterals() {
	m := map[int]int{1: 2} // want `map literal allocates`
	_ = m
	sl := []int{1} // want `slice literal allocates`
	_ = sl
	p := &T{x: 1} // want `pointer literal allocates`
	_ = p
	v := T{x: 1} // value struct literal stays on the stack
	_ = v
}

//schedlint:hotpath
func hotBuiltins() {
	b := make([]byte, 8) // want `make allocates`
	_ = b
	_ = new(T) // want `new allocates`
}

//schedlint:hotpath
func hotStrings(s string) string {
	t := s + "x" // want `string concatenation allocates`
	t += "y"     // want `string \+= allocates`
	return t
}

//schedlint:hotpath
func hotStdlib(s string) {
	fmt.Println(s) // want `call to fmt.Println allocates`
}

//schedlint:hotpath
func hotAppend(dst []int) []int {
	var fresh []int
	fresh = append(fresh, 1) // want `append onto nil local fresh grows on every call`
	_ = fresh
	dst = append(dst, 1) // amortized append onto a parameter: fine
	buf := dst[:0]
	buf = append(buf, 2) // reslice scratch: fine
	return dst
}

//schedlint:hotpath
func hotClosures(n int) int {
	take(func() { _ = n }) // want `capturing closure escapes`
	take(func() {})        // capture-free: a static func value, fine
	f := func() int { return n }
	return f() // local, directly invoked: stays on the stack
}

//schedlint:hotpath
func hotCalls() int {
	_ = allocHelper() // want `calls allocHelper, which allocates`
	_ = coldHelper()  // declared cold path: fine
	return cleanHelper(1)
}

//schedlint:hotpath
func hotAllowed() []int {
	return make([]int, 4) //schedlint:allowalloc one-time setup per session
}

//schedlint:hotpath
func hotEmptyReason() {
	_ = make([]int, 1) /* want `needs a reason` `make allocates` */ //schedlint:allowalloc
}
