// Package b checks that allocation facts cross package boundaries.
package b

import "sandbox/a"

//schedlint:hotpath
func hotCross() {
	_ = a.AllocHelper() // want `calls AllocHelper, which allocates`
}
