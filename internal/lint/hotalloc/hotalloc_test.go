package hotalloc_test

import (
	"testing"

	"repro/internal/lint/hotalloc"
	"repro/internal/lint/linttest"
)

func TestHotallocGolden(t *testing.T) {
	linttest.Run(t, "testdata", hotalloc.Analyzer)
}
