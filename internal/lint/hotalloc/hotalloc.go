// Package hotalloc enforces the repo's zero-allocation hot-path
// contract: a function whose doc comment carries //schedlint:hotpath
// must not contain allocating constructs. The bug class is real — the
// PR 4/5 work got the per-arrival session path to ~0 allocs/arrival,
// and a single stray map literal or fmt call quietly gives it back.
//
// Flagged inside a hotpath function:
//
//   - map and slice composite literals, and &Struct{...} pointer
//     literals (value struct literals are stack-friendly and allowed)
//   - make and new
//   - append onto a slice variable freshly declared nil in the same
//     function (guaranteed per-call growth; append onto fields,
//     parameters or sliced scratch is the amortized idiom and allowed)
//   - calls into fmt, encoding/json and reflect
//   - string concatenation (+ / += on strings)
//   - closures that escape (passed as arguments, returned, stored);
//     a func literal assigned to a local and called directly stays
//     legal — the compiler keeps it off the heap
//   - calls to in-module functions that themselves allocate and are
//     neither //schedlint:hotpath (checked on their own) nor
//     //schedlint:coldpath (a declared slow/error path) — the
//     one-level interprocedural check, carried by facts
//
// A justified exception is written on the line itself:
// //schedlint:allowalloc <reason>. Directives without a reason are
// themselves diagnostics.
//
// Limits (documented, deliberate): stdlib callees outside the fmt/
// json/reflect denylist are trusted; []byte(s)/string(b) conversions
// are not flagged (the compiler elides the copy in the non-escaping
// cases this repo uses); the interprocedural check is one level deep.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "forbid allocating constructs in //schedlint:hotpath functions",
	Run:       run,
	FactTypes: []analysis.Fact{(*allocatesFact)(nil), (*roleFact)(nil)},
}

// allocatesFact marks a function whose body directly contains an
// allocating construct.
type allocatesFact struct {
	// What names the first allocating construct, for diagnostics.
	What string
}

func (*allocatesFact) AFact() {}

// roleFact records a function's declared role (hotpath or coldpath).
type roleFact struct {
	Hot, Cold bool
}

func (*roleFact) AFact() {}

// denied are the stdlib packages that always allocate on call.
var denied = map[string]string{
	"fmt":           "fmt",
	"encoding/json": "encoding/json",
	"reflect":       "reflect",
}

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.NewDirectives(pass.Fset, pass.Files)
	dirs.CheckReasons(func(pos token.Pos, verb string) {
		pass.Reportf(pos, "//schedlint:%s needs a reason", verb)
	}, "allowalloc")

	// Pass 1: export facts for every declared function — its role and
	// whether its body allocates — so importing packages (and pass 2
	// below) can run the one-level interprocedural check.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			role := &roleFact{Hot: dirs.FuncHas(fd, "hotpath"), Cold: dirs.FuncHas(fd, "coldpath")}
			if role.Hot || role.Cold {
				pass.ExportObjectFact(obj, role)
			}
			if what := firstAllocation(pass, fd); what != "" {
				pass.ExportObjectFact(obj, &allocatesFact{What: what})
			}
		}
	}

	// Pass 2: check every hotpath function.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !dirs.FuncHas(fd, "hotpath") {
				continue
			}
			checkHot(pass, dirs, fd)
		}
	}
	return nil, nil
}

// firstAllocation reports the first unconditional allocating construct
// in the function body ("" when clean) — the fact callers consult.
// Line directives are ignored here on purpose: the fact records what
// the function does; whether a caller may rely on it is the caller's
// check.
func firstAllocation(pass *analysis.Pass, fd *ast.FuncDecl) string {
	var what string
	w := &walker{
		pass: pass,
		flag: func(pos token.Pos, msg string) {
			if what == "" {
				what = msg
			}
		},
		fresh: freshNilSlices(pass, fd),
		fn:    fd,
	}
	w.walk(fd.Body, nil)
	return what
}

// checkHot reports every allocating construct in a hotpath function,
// honoring //schedlint:allowalloc lines, and applies the one-level
// interprocedural call check.
func checkHot(pass *analysis.Pass, dirs *analysis.Directives, fd *ast.FuncDecl) {
	w := &walker{
		pass: pass,
		flag: func(pos token.Pos, msg string) {
			if dirs.LineAllows(pos, "allowalloc") {
				return
			}
			pass.Reportf(pos, "hotpath function %s: %s", fd.Name.Name, msg)
		},
		fresh:      freshNilSlices(pass, fd),
		fn:         fd,
		checkCalls: true,
	}
	w.walk(fd.Body, nil)
}

// walker finds allocating constructs. flag receives each finding;
// checkCalls additionally applies the interprocedural rule.
type walker struct {
	pass       *analysis.Pass
	flag       func(pos token.Pos, msg string)
	fresh      map[types.Object]bool
	fn         *ast.FuncDecl
	checkCalls bool
}

func (w *walker) walk(body *ast.BlockStmt, _ []ast.Node) {
	var visit func(n ast.Node, parent ast.Node)
	visit = func(n ast.Node, parent ast.Node) {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch w.litKind(n) {
			case "map":
				w.flag(n.Pos(), "map literal allocates")
			case "slice":
				w.flag(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					w.flag(n.Pos(), "&"+exprName(cl.Type)+"{...} pointer literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && w.isString(n.X) {
				w.flag(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && w.isString(n.Lhs[0]) {
				w.flag(n.Pos(), "string += allocates")
			}
		case *ast.FuncLit:
			if escapes(parent, n) && w.captures(n) {
				w.flag(n.Pos(), "capturing closure escapes (heap-allocated func value)")
			}
		case *ast.CallExpr:
			w.call(n)
		}
		// Recurse with parent tracking.
		children(n, func(c ast.Node) { visit(c, n) })
	}
	visit(body, nil)
}

// call classifies one call expression.
func (w *walker) call(call *ast.CallExpr) {
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch {
		case w.isBuiltin(id, "make"):
			w.flag(call.Pos(), "make allocates")
			return
		case w.isBuiltin(id, "new"):
			w.flag(call.Pos(), "new allocates")
			return
		case w.isBuiltin(id, "append"):
			w.appendCall(call)
			return
		}
	}
	callee := calleeFunc(w.pass, call)
	if callee == nil {
		return
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	if name, bad := denied[pkg.Path()]; bad {
		w.flag(call.Pos(), "call to "+name+"."+callee.Name()+" allocates")
		return
	}
	if !w.checkCalls {
		return
	}
	// One-level interprocedural rule: calls into the module are fine
	// when the callee is hotpath (checked on its own) or coldpath
	// (declared slow path); otherwise an allocating callee is flagged.
	if pkg.Path() == w.pass.Module || strings.HasPrefix(pkg.Path(), w.pass.Module+"/") {
		var role roleFact
		w.pass.ImportObjectFact(callee, &role)
		if role.Hot || role.Cold {
			return
		}
		var alloc allocatesFact
		if w.pass.ImportObjectFact(callee, &alloc) {
			w.flag(call.Pos(), "calls "+callee.Name()+", which allocates ("+alloc.What+
				") and is neither //schedlint:hotpath nor //schedlint:coldpath")
		}
	}
}

// appendCall flags append onto a slice that is freshly nil in this
// function — growth guaranteed on every call. Appends onto fields,
// parameters and reused scratch are the amortized idiom and pass.
func (w *walker) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := unparen(call.Args[0])
	// Unwrap s[:0]-style reslices of fields/scratch: those reuse.
	if id, ok := base.(*ast.Ident); ok {
		if obj := w.pass.TypesInfo.Uses[id]; obj != nil && w.fresh[obj] {
			w.flag(call.Pos(), "append onto nil local "+id.Name+" grows on every call")
		}
	}
}

func (w *walker) litKind(cl *ast.CompositeLit) string {
	tv, ok := w.pass.TypesInfo.Types[cl]
	if !ok {
		return ""
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return ""
}

func (w *walker) isString(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *walker) isBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// captures reports whether the func literal references a variable
// declared in the enclosing function outside the literal — the case
// where an escaping func value drags captured state onto the heap. A
// capture-free literal compiles to a static func value and is free.
func (w *walker) captures(fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Pos() == token.NoPos {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if v.Pos() >= w.fn.Pos() && v.Pos() < w.fn.End() &&
			!(v.Pos() >= fl.Pos() && v.Pos() < fl.End()) {
			captured = true
		}
		return true
	})
	return captured
}

// freshNilSlices collects local slice variables declared with no
// initial storage (var s []T, s := []T(nil)) — appending to those
// allocates on every call.
func freshNilSlices(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// escapes reports whether a func literal's syntactic context forces it
// onto the heap: passed as a call argument, returned, stored into a
// composite/field/channel. Direct invocation and assignment to a
// local keep it stack-allocated in practice.
func escapes(parent ast.Node, fl *ast.FuncLit) bool {
	switch p := parent.(type) {
	case *ast.CallExpr:
		if p.Fun == fl {
			return false // immediately-invoked
		}
		return true // argument
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
		return true
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs == fl && i < len(p.Lhs) {
				if _, isIdent := unparen(p.Lhs[i]).(*ast.Ident); !isIdent {
					return true // stored through a selector/index/deref
				}
			}
		}
		return false
	case *ast.GoStmt, *ast.DeferStmt:
		return true
	}
	return false
}

// calleeFunc resolves the called *types.Func, nil for indirect calls,
// conversions and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		// Package-qualified call: pkg.F.
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case nil:
		return "T"
	}
	return "T"
}

// children visits n's direct children (ast.Inspect descends the whole
// subtree; we need one level to track parents).
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}
