// Package driver loads a Go module from source and runs schedlint
// analyzers over its packages in dependency order. It is the stdlib
// half of what golang.org/x/tools/go/packages + the multichecker would
// provide: package discovery by directory walk, parsing with comments,
// type checking against a source importer (the stdlib is type-checked
// from GOROOT source, so the driver works with no export data and no
// network), and a shared in-process fact store so analyses of
// importing packages see facts exported by their dependencies.
//
// Scope: the driver analyzes non-test sources (_test.go files are
// skipped — the test suite deliberately compares exact floats and
// allocates freely) and skips testdata and hidden directories.
package driver

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the import path, e.g. "repro/internal/yds".
	Path string
	// Dir is the absolute directory.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Matched reports whether the package was named by the patterns
	// (diagnostics are reported for matched packages only; unmatched
	// dependencies are still analyzed so their facts exist).
	Matched bool
}

// Load parses and type-checks the module rooted at root (the directory
// containing go.mod), restricted to the packages matched by patterns:
// "./..." matches everything; "./x/y" or "x/y" matches one directory.
// Dependencies of matched packages are always loaded (facts flow from
// them) but only matched packages are returned for analysis.
func Load(fset *token.FileSet, root string, patterns []string) (module string, pkgs []*Package, err error) {
	root, err = filepath.Abs(root)
	if err != nil {
		return "", nil, err
	}
	module, err = modulePath(root)
	if err != nil {
		return "", nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return "", nil, err
	}
	matched, err := matchPatterns(root, dirs, patterns)
	if err != nil {
		return "", nil, err
	}

	ld := &loader{
		fset:   fset,
		root:   root,
		module: module,
		dirOf:  map[string]string{},
		loaded: map[string]*Package{},
		source: importer.ForCompiler(fset, "source", nil),
	}
	for _, d := range dirs {
		rel, _ := filepath.Rel(root, d)
		ip := module
		if rel != "." {
			ip = module + "/" + filepath.ToSlash(rel)
		}
		ld.dirOf[ip] = d
	}

	// Load matched packages (dependencies load recursively through the
	// importer) in a deterministic order.
	var matchedPaths []string
	for ip, dir := range ld.dirOf {
		if matched[dir] {
			matchedPaths = append(matchedPaths, ip)
		}
	}
	sort.Strings(matchedPaths)
	for _, ip := range matchedPaths {
		if _, err := ld.load(ip, nil); err != nil {
			return "", nil, err
		}
	}

	// Return every loaded package in load (dependency-first) order so
	// facts exported by a dependency are in place before its importers
	// run; Matched marks the ones diagnostics should be reported for.
	for _, p := range ld.order {
		p.Matched = matched[p.Dir]
		pkgs = append(pkgs, p)
	}
	return module, pkgs, nil
}

// Analyze runs the analyzers over the packages (which must come from
// one Load call, in the order Load returned) and returns the
// diagnostics sorted by position.
func Analyze(fset *token.FileSet, module string, pkgs []*Package, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	facts := analysis.NewFactStore()
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		for _, p := range pkgs {
			report := func(d analysis.Diagnostic) {
				if p.Matched {
					diags = append(diags, d)
				}
			}
			pass := analysis.NewPass(a, fset, p.Files, p.Types, p.Info, module, facts, report)
			if _, err := a.Run(pass); err != nil {
				diags = append(diags, analysis.Diagnostic{
					Pos:      p.Files[0].Pos(),
					Message:  fmt.Sprintf("analyzer error: %v", err),
					Analyzer: a.Name,
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// loader loads module packages on demand, memoized, detecting cycles.
type loader struct {
	fset    *token.FileSet
	root    string
	module  string
	dirOf   map[string]string   // import path → dir, module packages only
	loaded  map[string]*Package // import path → package (nil while in progress)
	order   []*Package          // completed packages, dependency-first
	source  types.Importer      // stdlib fallback
	loading []string            // cycle diagnostics
}

func (ld *loader) load(path string, from []string) (*Package, error) {
	if p, ok := ld.loaded[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle: %s", strings.Join(append(ld.loading, path), " -> "))
		}
		return p, nil
	}
	dir, ok := ld.dirOf[path]
	if !ok {
		return nil, fmt.Errorf("no package %q in module %s", path, ld.module)
	}
	ld.loaded[path] = nil
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	files, err := parseDir(ld.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if ip == "unsafe" {
				return types.Unsafe, nil
			}
			if _, isModule := ld.dirOf[ip]; isModule {
				p, err := ld.load(ip, append(from, path))
				if err != nil {
					return nil, err
				}
				return p.Types, nil
			}
			return ld.source.Import(ip)
		}),
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.loaded[path] = p
	ld.order = append(ld.order, p)
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// parseDir parses the non-test Go files of one directory, in name
// order, with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs walks the module for directories containing buildable Go
// files, skipping testdata, vendor and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
				!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// matchPatterns resolves the CLI patterns onto the discovered package
// dirs. Supported: "./..." (everything), "dir/..." (subtree), plain
// directories relative to the working directory or the module root.
func matchPatterns(root string, dirs []string, patterns []string) (map[string]bool, error) {
	matched := map[string]bool{}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, d := range dirs {
				matched[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base, err := resolveDir(root, strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				if d == base || strings.HasPrefix(d, base+string(filepath.Separator)) {
					matched[d] = true
				}
			}
		default:
			d, err := resolveDir(root, pat)
			if err != nil {
				return nil, err
			}
			matched[d] = true
		}
	}
	return matched, nil
}

func resolveDir(root, pat string) (string, error) {
	cand := pat
	if !filepath.IsAbs(cand) {
		// Try relative to the working directory first (the go tool's
		// behaviour), then relative to the module root.
		if abs, err := filepath.Abs(pat); err == nil {
			if st, err := os.Stat(abs); err == nil && st.IsDir() {
				return abs, nil
			}
		}
		cand = filepath.Join(root, pat)
	}
	st, err := os.Stat(cand)
	if err != nil || !st.IsDir() {
		return "", fmt.Errorf("pattern %q: no such directory", pat)
	}
	return cand, nil
}

// modulePath reads the module path out of root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.TrimSuffix(rest, "// indirect")), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
