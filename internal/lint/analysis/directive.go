// schedlint's annotation contract, shared by every analyzer:
//
//	//schedlint:hotpath            (function doc) — the function must not allocate
//	//schedlint:coldpath           (function doc) — declared slow/error path; hot
//	                               code may call it even though it allocates
//	//schedlint:allowalloc <why>   (line) — justified allocation on this line
//	//schedlint:exactfloat <why>   (line) — justified exact float comparison
//	//schedlint:nocallout          (mutex field doc) — while this mutex is held,
//	                               no calls into other module packages or into
//	                               session/engine methods
//	//schedlint:poolget            (function doc) — returns a pooled value the
//	                               caller must release
//	//schedlint:poolput            (function doc) — releases a pooled value
//
// Line directives must carry a reason (everything after the verb);
// analyzers report directives whose reason is empty rather than
// honoring them, so justifications cannot silently rot into bare
// switches.

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //schedlint:... comment.
type Directive struct {
	// Verb is the word after "schedlint:", e.g. "hotpath".
	Verb string
	// Reason is the remainder of the comment, trimmed.
	Reason string
	Pos    token.Pos
}

const prefix = "//schedlint:"

// parseDirective decodes one comment, reporting whether it is a
// schedlint directive at all.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, prefix)
	if !ok {
		return Directive{}, false
	}
	verb, reason, _ := strings.Cut(text, " ")
	return Directive{Verb: verb, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// Directives indexes a package's schedlint comments two ways: by the
// source line they govern (trailing comments govern their own line, a
// comment alone on a line governs the next line) and by the doc
// comment group they belong to.
type Directives struct {
	fset    *token.FileSet
	byLine  map[lineKey][]Directive
	byGroup map[*ast.CommentGroup][]Directive
}

type lineKey struct {
	file string
	line int
}

// NewDirectives scans the files' comments.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:    fset,
		byLine:  map[lineKey][]Directive{},
		byGroup: map[*ast.CommentGroup][]Directive{},
	}
	for _, f := range files {
		// Column 1 comments start their own line: the directive governs
		// the following line. Anything else is a trailing comment
		// governing its own line.
		for _, g := range f.Comments {
			for _, c := range g.List {
				dir, ok := parseDirective(c)
				if !ok {
					continue
				}
				d.byGroup[g] = append(d.byGroup[g], dir)
				pos := fset.Position(c.Pos())
				line := pos.Line
				if pos.Column == 1 || startsLine(fset, f, c) {
					line++
				}
				k := lineKey{pos.Filename, line}
				d.byLine[k] = append(d.byLine[k], dir)
			}
		}
	}
	return d
}

// startsLine reports whether c is the first token on its line (no code
// precedes it), in which case the directive governs the next line.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	if pos.Column == 1 {
		return true
	}
	// Find whether any node of the file starts on this line before the
	// comment. A cheap over-approximation: inspect declarations whose
	// span covers the line.
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if fset.Position(n.Pos()).Line == pos.Line && n.Pos() < c.Pos() {
			found = true
			return false
		}
		return n.Pos() <= c.Pos() && c.Pos() <= n.End()
	})
	return !found
}

// OnLine returns the directives governing the line containing pos.
func (d *Directives) OnLine(pos token.Pos) []Directive {
	p := d.fset.Position(pos)
	return d.byLine[lineKey{p.Filename, p.Line}]
}

// LineAllows reports whether a directive with the verb governs the
// line of pos. Directives with an empty reason do not count (the
// caller should have reported them via CheckReasons).
func (d *Directives) LineAllows(pos token.Pos, verb string) bool {
	for _, dir := range d.OnLine(pos) {
		if dir.Verb == verb && dir.Reason != "" {
			return true
		}
	}
	return false
}

// FuncHas reports whether fn's doc comment carries the verb.
func (d *Directives) FuncHas(fn *ast.FuncDecl, verb string) bool {
	return d.GroupHas(fn.Doc, verb)
}

// GroupHas reports whether the comment group carries the verb.
func (d *Directives) GroupHas(g *ast.CommentGroup, verb string) bool {
	if g == nil {
		return false
	}
	for _, dir := range d.byGroup[g] {
		if dir.Verb == verb {
			return true
		}
	}
	return false
}

// CheckReasons reports (via report) every directive with one of the
// verbs whose reason is empty. Reason-carrying verbs must justify
// themselves; the diagnostic keeps annotations honest.
func (d *Directives) CheckReasons(report func(pos token.Pos, verb string), verbs ...string) {
	seen := map[lineKey]bool{}
	for k, dirs := range d.byLine {
		if seen[k] {
			continue
		}
		seen[k] = true
		for _, dir := range dirs {
			for _, v := range verbs {
				if dir.Verb == v && dir.Reason == "" {
					report(dir.Pos, v)
				}
			}
		}
	}
}
