// Package analysis is a deliberately small, stdlib-only re-creation
// of the golang.org/x/tools/go/analysis surface the schedlint
// analyzers need: an Analyzer runs once per package over parsed and
// type-checked syntax, reports position-tagged diagnostics, and may
// attach facts to objects that analyses of importing packages can read
// back (the one-level interprocedural seam hotalloc uses). The module
// vendors nothing and the build environment is offline, so depending
// on x/tools is not an option; the subset below is API-shaped like the
// real thing on purpose — if the module ever grows a tools dependency,
// the analyzers port by changing imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid identifier.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Reportf; the result value is unused by the driver (kept for
	// x/tools shape).
	Run func(*Pass) (any, error)
	// FactTypes lists the fact types Run may export, one zero value
	// each. Exporting an undeclared fact type panics, exactly like the
	// real framework, so fact plumbing mistakes fail loudly in tests.
	FactTypes []Fact
}

// Fact is a serializable-in-spirit datum attached to a types.Object by
// one package's pass and visible to passes over importing packages.
type Fact interface{ AFact() }

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer names the producing analyzer (filled by the driver).
	Analyzer string
}

// Pass carries one package's syntax, types and fact store to an
// analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax, comments included,
	// in deterministic (file name) order.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the module path of the tree under analysis, so
	// analyzers can distinguish in-module callees from the stdlib.
	Module string

	report func(Diagnostic)
	facts  *FactStore
}

// NewPass assembles a pass; the driver and the test harness share it.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, module string, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg,
		TypesInfo: info, Module: module, report: report, facts: facts}
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// ExportObjectFact attaches fact to obj for importing packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("ExportObjectFact: nil object")
	}
	p.checkDeclared(fact)
	p.facts.set(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact attached to obj into *fact,
// reporting whether one was found. The pointee type selects the fact.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	p.checkDeclared(fact)
	return p.facts.get(p.Analyzer, obj, fact)
}

func (p *Pass) checkDeclared(fact Fact) {
	t := reflect.TypeOf(fact)
	for _, ft := range p.Analyzer.FactTypes {
		if reflect.TypeOf(ft) == t {
			return
		}
	}
	panic("analysis: fact type " + t.String() + " not declared in " + p.Analyzer.Name + ".FactTypes")
}

// FactStore holds every analyzer's object facts for one driver run.
// The driver analyzes packages in dependency order within a single
// process, so "export then import downstream" is just a shared map;
// no serialization is needed.
type FactStore struct {
	m map[factKey]Fact
}

type factKey struct {
	analyzer *Analyzer
	obj      types.Object
	typ      reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: map[factKey]Fact{}} }

func (s *FactStore) set(a *Analyzer, obj types.Object, fact Fact) {
	s.m[factKey{a, obj, reflect.TypeOf(fact)}] = fact
}

func (s *FactStore) get(a *Analyzer, obj types.Object, fact Fact) bool {
	got, ok := s.m[factKey{a, obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	// Copy *got into *fact so callers own their value, mirroring the
	// real framework's decode-into-pointer contract.
	rv := reflect.ValueOf(fact)
	gv := reflect.ValueOf(got)
	if rv.Type() != gv.Type() {
		return false
	}
	rv.Elem().Set(gv.Elem())
	return true
}
