// Package linttest is the repo's analysistest: it loads a sandbox
// module from a testdata directory, runs analyzers over it, and
// compares the diagnostics against `want` comments in the sources.
//
// Expectation syntax, on the line the diagnostic lands on:
//
//	x := map[int]int{} // want `map literal allocates`
//
// Multiple backquoted regexes on one line expect multiple
// diagnostics. When the line also carries a schedlint directive, the
// want must ride in a block comment before it so the directive's
// reason stays what the analyzer sees:
//
//	_ = make([]int, 1) /* want `needs a reason` */ //schedlint:allowalloc
//
// Every diagnostic must be wanted and every want must fire — both
// directions fail the test, so golden files cannot silently rot.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
)

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	used bool
}

// Run loads the module rooted at dir (which must contain a go.mod),
// analyzes every package in it, and checks want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	module, pkgs, err := driver.Load(fset, dir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := driver.Analyze(fset, module, pkgs, analyzers)

	var wants []*expectation
	seen := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			ws, err := scanWants(name)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.used, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)",
				rel(dir, pos.Filename), pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", rel(dir, w.file), w.line, w.raw)
		}
	}
}

var (
	wantRe = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)$`)
	rxRe   = regexp.MustCompile("`([^`]*)`")
)

func scanWants(path string) ([]*expectation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		spec := m[1]
		if cut := strings.Index(spec, "*/"); cut >= 0 {
			spec = spec[:cut]
		}
		for _, g := range rxRe.FindAllStringSubmatch(spec, -1) {
			rx, err := regexp.Compile(g[1])
			if err != nil {
				return nil, err
			}
			wants = append(wants, &expectation{file: path, line: i + 1, rx: rx, raw: g[1]})
		}
	}
	return wants, nil
}

func rel(dir, path string) string {
	if r, err := filepath.Rel(dir, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}
