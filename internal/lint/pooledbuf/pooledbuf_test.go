package pooledbuf_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/pooledbuf"
)

func TestPooledbufGolden(t *testing.T) {
	linttest.Run(t, "testdata", pooledbuf.Analyzer)
}
