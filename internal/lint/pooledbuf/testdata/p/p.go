// Package p exercises the pooled-value lifecycle rules.
package p

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

var global *[]byte

type holder struct{ b *[]byte }

// write models serve.writeRaw: takes ownership of the pooled buffer.
func write(bp *[]byte) { pool.Put(bp) }

//schedlint:poolget
func getBuf() *[]byte {
	bp := pool.Get().(*[]byte)
	return bp // a poolget constructor hands ownership out: fine
}

//schedlint:poolput
func putBuf(bp *[]byte) { pool.Put(bp) }

func useAfter() {
	bp := pool.Get().(*[]byte)
	pool.Put(bp)
	_ = *bp // want `used after Put`
}

func doublePut() {
	bp := pool.Get().(*[]byte)
	pool.Put(bp)
	pool.Put(bp) // want `released twice`
}

func skipPut(fail bool) bool {
	bp := pool.Get().(*[]byte)
	if fail {
		return true // want `return while pooled value bp has not been released`
	}
	pool.Put(bp)
	return false
}

func deferredPut(fail bool) bool {
	bp := pool.Get().(*[]byte)
	defer pool.Put(bp)
	if fail {
		return true // covered by the defer: fine
	}
	return false
}

func deferredClosure() {
	bp := pool.Get().(*[]byte)
	defer func() { pool.Put(bp) }()
	*bp = append(*bp, 'x')
}

func leak() *[]byte {
	bp := pool.Get().(*[]byte)
	return bp // want `pooled value bp returned`
}

func storeGlobal() {
	bp := pool.Get().(*[]byte)
	global = bp // want `stored outside the function`
	pool.Put(bp)
}

func storeField(h *holder) {
	bp := pool.Get().(*[]byte)
	h.b = bp // want `stored outside the function`
	pool.Put(bp)
}

func send(ch chan *[]byte) {
	bp := pool.Get().(*[]byte)
	ch <- bp // want `sent on a channel`
	pool.Put(bp)
}

func transfer() {
	bp := getBuf()
	write(bp) // ownership moves to the callee: fine
}

func roundTrip() {
	bp := getBuf()
	*bp = append(*bp, 'x')
	putBuf(bp)
}
