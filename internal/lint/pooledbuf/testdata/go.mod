module sandbox

go 1.24
