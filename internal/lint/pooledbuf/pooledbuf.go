// Package pooledbuf checks the lifecycle of pooled values — the
// sync.Pool render buffers and the //schedlint:poolget/poolput
// decoder pool that PR 5's zero-allocation paths lean on. A pooled
// value that leaks past its Put is a use-after-free with extra steps
// (the next Get hands the same memory to another request); a pooled
// value that never reaches Put on an error path silently shrinks the
// pool until the hot path allocates again.
//
// Tracked sources (per function, locals only):
//
//	v := pool.Get()          // any sync.Pool, through type asserts
//	v := GetX(...)           // module functions marked //schedlint:poolget
//
// Flagged:
//
//   - any mention of v after pool.Put(v) / PutX(v) in straight-line
//     order (use after release)
//   - returning v (unless the function is itself //schedlint:poolget —
//     that is how pooled constructors hand ownership out)
//   - storing v into anything that is not a plain local (field,
//     global, map/slice element, channel send): the pool must stay
//     the only long-term owner
//   - a return statement while v is still live: the error path that
//     skips Put. defer Put(v) (directly or inside a deferred closure)
//     keeps every path covered; passing v as a plain argument to
//     another module function transfers ownership and ends tracking
//     (method calls on v do not).
package pooledbuf

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the pooledbuf pass.
var Analyzer = &analysis.Analyzer{
	Name:      "pooledbuf",
	Doc:       "pooled values must reach Put on every path and never escape past it",
	Run:       run,
	FactTypes: []analysis.Fact{(*poolRoleFact)(nil)},
}

// poolRoleFact marks module functions that hand out / take back pooled
// values, so cross-package Get/Put pairs (job.GetDecoder from
// internal/load) participate.
type poolRoleFact struct{ Get, Put bool }

func (*poolRoleFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.NewDirectives(pass.Fset, pass.Files)

	// Export pool roles for this package's functions.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			get, put := dirs.FuncHas(fd, "poolget"), dirs.FuncHas(fd, "poolput")
			if !get && !put {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(obj, &poolRoleFact{Get: get, Put: put})
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			t := &tracker{pass: pass, dirs: dirs, fn: fd, state: map[types.Object]*varState{}}
			t.stmts(fd.Body.List)
		}
	}
	return nil, nil
}

type phase int

const (
	live        phase = iota // obtained, not yet released
	deferredPut              // a defer guarantees release at exit
	released                 // Put already executed (or ownership transferred)
)

type varState struct {
	phase phase
	// putPos/putEnd bracket the releasing call: putPos names it in
	// diagnostics, putEnd is the cutoff after which mentions are
	// use-after-release (the Put's own argument is before it).
	putPos token.Pos
	putEnd token.Pos
}

type tracker struct {
	pass  *analysis.Pass
	dirs  *analysis.Directives
	fn    *ast.FuncDecl
	state map[types.Object]*varState
}

func (t *tracker) stmts(list []ast.Stmt) {
	for _, s := range list {
		t.stmt(s)
	}
}

func (t *tracker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// v := pool.Get() / v := GetX(...)?
		if s.Tok == token.DEFINE && len(s.Rhs) == 1 {
			if lhs, ok := s.Lhs[0].(*ast.Ident); ok && t.isPoolGet(s.Rhs[0]) {
				if obj := t.pass.TypesInfo.Defs[lhs]; obj != nil {
					t.scanExprs(s.Rhs) // the Get expr itself is clean
					t.state[obj] = &varState{phase: live}
					return
				}
			}
		}
		t.scanExprs(s.Rhs)
		t.checkStores(s)
	case *ast.ExprStmt:
		t.scan(s.X)
	case *ast.DeferStmt:
		// defer Put(v) / defer pool.Put(v) / defer func(){ ... Put(v) ... }()
		for _, obj := range t.putTargets(s.Call) {
			if st := t.state[obj]; st != nil && st.phase == live {
				st.phase = deferredPut
			}
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, obj := range t.putTargets(call) {
					if st := t.state[obj]; st != nil && st.phase == live {
						st.phase = deferredPut
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			t.checkReturn(e)
			t.scan(e)
		}
		for obj, st := range t.state {
			if st.phase == live {
				t.pass.Reportf(s.Pos(),
					"return while pooled value %s has not been released (error path skips Put; use defer)",
					obj.Name())
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			t.stmt(s.Init)
		}
		t.scan(s.Cond)
		t.branch(s.Body.List)
		if s.Else != nil {
			t.branch([]ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		if s.Init != nil {
			t.stmt(s.Init)
		}
		t.scan(s.Cond)
		t.branch(s.Body.List)
	case *ast.RangeStmt:
		t.scan(s.X)
		t.branch(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			t.stmt(s.Init)
		}
		t.scan(s.Tag)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				t.branch(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				t.branch(cl.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				t.branch(cl.Body)
			}
		}
	case *ast.BlockStmt:
		t.stmts(s.List)
	case *ast.SendStmt:
		t.scan(s.Chan)
		if obj := t.localOf(s.Value); obj != nil && t.state[obj] != nil {
			t.pass.Reportf(s.Pos(), "pooled value %s sent on a channel (escapes its pool lifecycle)", obj.Name())
		}
		t.scan(s.Value)
	case *ast.GoStmt:
		t.scan(s.Call)
	case *ast.LabeledStmt:
		t.stmt(s.Stmt)
	case *ast.IncDecStmt:
		t.scan(s.X)
	}
}

// branch walks a conditional body; state mutations inside it persist
// (a Put on one branch conservatively counts — the use-after-Put rule
// is about textual order, and the skipped-Put rule is driven by
// return statements, which each branch checks with its own state).
func (t *tracker) branch(list []ast.Stmt) {
	saved := t.snapshot()
	t.stmts(list)
	if terminates(list) {
		t.restore(saved)
	}
}

func (t *tracker) snapshot() map[types.Object]varState {
	cp := make(map[types.Object]varState, len(t.state))
	for k, v := range t.state {
		cp[k] = *v
	}
	return cp
}

func (t *tracker) restore(snap map[types.Object]varState) {
	for k, v := range snap {
		vv := v
		t.state[k] = &vv
	}
	for k := range t.state {
		if _, ok := snap[k]; !ok {
			delete(t.state, k)
		}
	}
}

func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scanExprs / scan walk expressions looking for Put calls, ownership
// transfers and uses of already-released values.
func (t *tracker) scanExprs(list []ast.Expr) {
	for _, e := range list {
		t.scan(e)
	}
}

func (t *tracker) scan(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, obj := range t.putTargets(n) {
				if st := t.state[obj]; st != nil {
					if st.phase == released {
						t.pass.Reportf(n.Pos(), "pooled value %s released twice", obj.Name())
					}
					st.phase = released
					st.putPos = n.Pos()
					st.putEnd = n.End()
				}
			}
			t.transfers(n)
		case *ast.Ident:
			obj, ok := t.pass.TypesInfo.Uses[n].(*types.Var)
			if !ok {
				return true
			}
			if st := t.state[obj]; st != nil && st.phase == released && st.putEnd <= n.Pos() {
				t.pass.Reportf(n.Pos(), "pooled value %s used after Put at %s",
					obj.Name(), t.pass.Fset.Position(st.putPos))
				st.phase = live // one report per leak, not one per use
			}
		}
		return true
	})
}

// checkStores flags assignments whose RHS is a tracked pooled local
// and whose LHS is not a plain local identifier (field, global, index,
// deref of something else). Writing *through* the pooled pointer
// (*bp = ...) is fine — that mutates the pooled object, not its
// ownership.
func (t *tracker) checkStores(s *ast.AssignStmt) {
	for i, rhs := range s.Rhs {
		obj := t.localOf(rhs)
		if obj == nil || t.state[obj] == nil || i >= len(s.Lhs) {
			continue
		}
		switch lhs := unparen(s.Lhs[i]).(type) {
		case *ast.Ident:
			// Aliasing to another local is not tracked (documented
			// limit) and not an escape — but a package-level variable
			// outlives the function and is.
			if v, ok := t.pass.TypesInfo.Uses[lhs].(*types.Var); ok &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				t.pass.Reportf(s.Pos(), "pooled value %s stored outside the function (escapes its pool lifecycle)", obj.Name())
			}
		case *ast.StarExpr:
			_ = lhs
		default:
			t.pass.Reportf(s.Pos(), "pooled value %s stored outside the function (escapes its pool lifecycle)", obj.Name())
		}
	}
}

func (t *tracker) checkReturn(e ast.Expr) {
	obj := t.localOf(e)
	if obj == nil || t.state[obj] == nil {
		return
	}
	if t.dirs.FuncHas(t.fn, "poolget") {
		// Pooled constructors hand ownership to the caller; the value
		// is no longer this function's to release.
		t.state[obj].phase = deferredPut
		return
	}
	t.pass.Reportf(e.Pos(), "pooled value %s returned (caller cannot see its pool; mark the function //schedlint:poolget or release before returning)", obj.Name())
	// One diagnostic per leak: don't also report "not released".
	t.state[obj].phase = deferredPut
}

// transfers ends tracking for pooled locals passed as plain arguments
// to other module functions (ownership moved — writeRaw(w, status, bp)
// is the idiom) and flags composite-literal captures.
func (t *tracker) transfers(call *ast.CallExpr) {
	if len(t.state) == 0 {
		return
	}
	if t.putTargetsLen(call) > 0 || t.isPoolGet(call) {
		return
	}
	callee := t.calleeFunc(call)
	for _, arg := range call.Args {
		obj := t.localOf(arg)
		if obj == nil || t.state[obj] == nil || t.state[obj].phase == released {
			continue
		}
		if callee != nil && callee.Pkg() != nil && t.inModule(callee.Pkg().Path()) {
			// Ownership transferred to a module function: no later-use
			// or skipped-Put reports for this value.
			t.state[obj].phase = deferredPut
		}
	}
}

func (t *tracker) putTargetsLen(call *ast.CallExpr) int { return len(t.putTargets(call)) }

// putTargets returns the tracked locals released by this call:
// pool.Put(v) on a sync.Pool, or f(v) where f is //schedlint:poolput.
func (t *tracker) putTargets(call *ast.CallExpr) []types.Object {
	isPut := false
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" {
		if t.isSyncPool(sel.X) {
			isPut = true
		}
	}
	if !isPut {
		if f := t.calleeFunc(call); f != nil {
			var role poolRoleFact
			if t.pass.ImportObjectFact(f, &role) && role.Put {
				isPut = true
			}
		}
	}
	if !isPut {
		return nil
	}
	var out []types.Object
	for _, arg := range call.Args {
		if obj := t.localOf(arg); obj != nil && t.state[obj] != nil {
			out = append(out, obj)
		}
	}
	return out
}

// isPoolGet matches pool.Get() on a sync.Pool (through type asserts
// and pointer derefs) and calls to //schedlint:poolget functions.
func (t *tracker) isPoolGet(e ast.Expr) bool {
	e = unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		return t.isPoolGet(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" && t.isSyncPool(sel.X) {
		return true
	}
	if f := t.calleeFunc(call); f != nil {
		var role poolRoleFact
		if t.pass.ImportObjectFact(f, &role) && role.Get {
			return true
		}
	}
	return false
}

func (t *tracker) isSyncPool(e ast.Expr) bool {
	tv, ok := t.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	typ := tv.Type
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

func (t *tracker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := t.pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := t.pass.TypesInfo.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := t.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func (t *tracker) localOf(e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, _ := t.pass.TypesInfo.Uses[id].(*types.Var)
	if obj == nil {
		return nil
	}
	return obj
}

func (t *tracker) inModule(path string) bool {
	return path == t.pass.Module || strings.HasPrefix(path, t.pass.Module+"/")
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
