package floateq_test

import (
	"testing"

	"repro/internal/lint/floateq"
	"repro/internal/lint/linttest"
)

func TestFloateqGolden(t *testing.T) {
	linttest.Run(t, "testdata", floateq.Analyzer)
}
