// Package floateq enforces the repo's float-comparison discipline:
// raw == or != on float operands (and switches over a float tag) are
// errors outside internal/numeric unless the line carries a
// //schedlint:exactfloat <reason> justification. PR 4 fixed two real
// executor bugs that were sub-ulp float-equality mistakes; the
// surviving exact comparisons in the tree are each deliberate
// (dedupe/ordering invariants on values copied bit-for-bit), and this
// analyzer makes "deliberate" a written, reviewable property instead
// of tribal knowledge.
//
// Allowed without annotation:
//
//   - both operands constant (folded at compile time, no runtime ulp)
//   - x != x / x == x on the syntactically identical expression (the
//     NaN self-test idiom is exact by IEEE construction)
//   - anything inside internal/numeric, whose whole purpose is owning
//     tolerant comparison
//
// The driver analyzes non-test files only; tests pin byte-identical
// schedules and compare exact floats on purpose.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the floateq pass.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "require //schedlint:exactfloat justification for raw float == / != / switch",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/numeric") {
		return nil, nil
	}
	dirs := analysis.NewDirectives(pass.Fset, pass.Files)
	dirs.CheckReasons(func(pos token.Pos, verb string) {
		pass.Reportf(pos, "//schedlint:%s needs a reason", verb)
	}, "exactfloat")

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(pass, n.X) && !isFloat(pass, n.Y) {
					return true
				}
				if bothConstant(pass, n.X, n.Y) || sameExpr(n.X, n.Y) {
					return true
				}
				if dirs.LineAllows(n.Pos(), "exactfloat") {
					return true
				}
				pass.Reportf(n.OpPos, "raw float %s comparison (use a tolerant compare from internal/numeric, or justify with //schedlint:exactfloat <reason>)", n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil || !isFloat(pass, n.Tag) {
					return true
				}
				if dirs.LineAllows(n.Pos(), "exactfloat") {
					return true
				}
				pass.Reportf(n.Pos(), "switch on float tag compares exactly (justify with //schedlint:exactfloat <reason>)")
			}
			return true
		})
	}
	return nil, nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func bothConstant(pass *analysis.Pass, x, y ast.Expr) bool {
	return pass.TypesInfo.Types[x].Value != nil && pass.TypesInfo.Types[y].Value != nil
}

// sameExpr reports syntactic identity of two simple expressions — the
// x != x NaN idiom. Only identifier/selector chains qualify; calls are
// not pure, so f() == f() stays flagged.
func sameExpr(x, y ast.Expr) bool {
	switch x := x.(type) {
	case *ast.Ident:
		y, ok := y.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := y.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	}
	return false
}
