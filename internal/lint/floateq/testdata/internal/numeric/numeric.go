// Package numeric owns tolerant comparison; exact floats are its
// business and the analyzer skips it entirely.
package numeric

func Eq(a, b float64) bool { return a == b }
