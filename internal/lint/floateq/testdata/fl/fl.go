// Package fl exercises the float-comparison rules.
package fl

func compare(a, b float64, i, j int) {
	_ = a == b // want `raw float == comparison`
	_ = a != b // want `raw float != comparison`
	_ = i == j // ints compare exactly by nature
	_ = a != a // NaN self-test idiom: exact by IEEE construction
	_ = 1.5 == 2.5
	_ = a == b //schedlint:exactfloat values copied bit-for-bit upstream
	switch a { // want `switch on float tag`
	case 1:
	}
	switch i {
	case 1:
	}
}

func emptyReason(a, b float64) {
	_ = a == b /* want `needs a reason` `raw float == comparison` */ //schedlint:exactfloat
}

type wrap float64

func typed(x, y wrap) bool {
	return x == y // want `raw float == comparison`
}
