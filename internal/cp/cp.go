// Package cp materialises the mathematical programs of Section 2.1 of
// the paper — the integral program (IMP) and its convex relaxation
// (CP) — as evaluatable code:
//
//	min  Σ_k P_k(x_1k,...,x_nk) + Σ_j (1-y_j)·v_j
//	s.t. y_j - Σ_k c_jk·x_jk ≤ 0          for all j
//	     x ⪰ 0,  y_j ∈ [0,1]  (CP)  /  y_j ∈ {0,1}  (IMP)
//
// together with the Lagrangian L(x, y, λ) (Eq. 3). The package exists
// to make the duality story testable end to end: PD's output is a
// feasible primal point whose objective is PD's cost, and for any
// feasible point and any λ ⪰ 0 the chain
//
//	g(λ) ≤ L(x, y, λ) ≤ objective(x, y)
//
// must hold — weak duality, the inequality Theorem 3 stands on.
package cp

import (
	"fmt"
	"math"

	"repro/internal/chen"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
)

// Program is the (CP) instance induced by a job set: atomic intervals
// from all releases and deadlines, and the per-interval power function
// P_k evaluated through Chen et al.'s algorithm.
type Program struct {
	Sys    chen.System
	Jobs   []job.Job
	Bounds []float64 // τ_0 < ... < τ_N
	jobsBy map[int]job.Job
}

// New builds the program for the given environment and job set.
func New(pm power.Model, m int, jobs []job.Job) *Program {
	windows := make([][2]float64, len(jobs))
	byID := make(map[int]job.Job, len(jobs))
	for i, j := range jobs {
		windows[i] = [2]float64{j.Release, j.Deadline}
		byID[j.ID] = j
	}
	return &Program{
		Sys:    chen.System{M: m, Power: pm},
		Jobs:   jobs,
		Bounds: interval.BoundariesOf(windows),
		jobsBy: byID,
	}
}

// Intervals returns the number N of atomic intervals.
func (p *Program) Intervals() int { return len(p.Bounds) - 1 }

// Covers reports c_jk: whether atomic interval k lies inside job j's
// feasibility window.
func (p *Program) Covers(j job.Job, k int) bool {
	return j.Release <= p.Bounds[k] && j.Deadline >= p.Bounds[k+1]
}

// Assignment is a primal point: per-job workloads z_jk = x_jk·w_j in
// each atomic interval, and the completion indicators y_j.
type Assignment struct {
	// Z maps job ID to its per-interval workload vector (length N).
	Z map[int][]float64
	// Y maps job ID to y_j; (CP) allows [0,1], (IMP) requires {0,1}.
	Y map[int]float64
}

// XFraction returns x_jk = z_jk / w_j for job id in interval k.
func (p *Program) XFraction(a Assignment, id, k int) float64 {
	zs, ok := a.Z[id]
	if !ok || k >= len(zs) {
		return 0
	}
	return zs[k] / p.jobsBy[id].Work
}

// Residual returns the constraint value y_j − Σ_k c_jk·x_jk for job j;
// feasibility requires it to be ≤ 0.
func (p *Program) Residual(a Assignment, j job.Job) float64 {
	var sum float64
	for k := 0; k < p.Intervals(); k++ {
		if p.Covers(j, k) {
			sum += p.XFraction(a, j.ID, k)
		}
	}
	return a.Y[j.ID] - sum
}

// CheckFeasible verifies the point against (CP)'s constraint set: all
// z ⪰ 0 and only where c_jk = 1, y ∈ [0,1], residuals ≤ tol.
func (p *Program) CheckFeasible(a Assignment, tol float64) error {
	for id, zs := range a.Z {
		j, ok := p.jobsBy[id]
		if !ok {
			return fmt.Errorf("cp: assignment references unknown job %d", id)
		}
		if len(zs) != p.Intervals() {
			return fmt.Errorf("cp: job %d has %d interval entries, want %d", id, len(zs), p.Intervals())
		}
		for k, z := range zs {
			if z < -tol || math.IsNaN(z) {
				return fmt.Errorf("cp: job %d has negative load %v in interval %d", id, z, k)
			}
			if z > tol*math.Max(1, j.Work) && !p.Covers(j, k) {
				return fmt.Errorf("cp: job %d loaded outside its window (interval %d)", id, k)
			}
		}
	}
	for _, j := range p.Jobs {
		y := a.Y[j.ID]
		if y < -tol || y > 1+tol {
			return fmt.Errorf("cp: y_%d = %v outside [0,1]", j.ID, y)
		}
		if r := p.Residual(a, j); r > tol {
			return fmt.Errorf("cp: constraint of job %d violated by %v", j.ID, r)
		}
	}
	return nil
}

// Objective evaluates Σ_k P_k + Σ_j (1-y_j)·v_j at the point.
func (p *Program) Objective(a Assignment) float64 {
	var acc numeric.Accumulator
	for k := 0; k < p.Intervals(); k++ {
		l := p.Bounds[k+1] - p.Bounds[k]
		var items []chen.Item
		for id, zs := range a.Z {
			if zs[k] > 0 {
				items = append(items, chen.Item{ID: id, Work: zs[k]})
			}
		}
		if len(items) > 0 {
			acc.Add(p.Sys.Energy(l, items))
		}
	}
	for _, j := range p.Jobs {
		acc.Add((1 - a.Y[j.ID]) * j.Value)
	}
	return acc.Value()
}

// Lagrangian evaluates L(x, y, λ) = objective + Σ_j λ_j·residual_j
// (Eq. 3 of the paper).
func (p *Program) Lagrangian(a Assignment, lambda map[int]float64) float64 {
	v := p.Objective(a)
	for _, j := range p.Jobs {
		v += lambda[j.ID] * p.Residual(a, j)
	}
	return v
}
