package cp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dual"
	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/workload"
)

// fromPD converts a finished PD scheduler's state into a primal point
// of the program. The scheduler's online partition has exactly the
// program's boundaries once all jobs have arrived.
func fromPD(t *testing.T, p *Program, s *core.Scheduler, in *job.Instance) Assignment {
	t.Helper()
	a := Assignment{Z: map[int][]float64{}, Y: map[int]float64{}}
	for _, j := range in.Jobs {
		a.Z[j.ID] = make([]float64, p.Intervals())
	}
	snap := s.Snapshot()
	if len(snap) != p.Intervals() {
		t.Fatalf("partition mismatch: scheduler has %d intervals, program %d", len(snap), p.Intervals())
	}
	for k, st := range snap {
		if st.T0 != p.Bounds[k] || st.T1 != p.Bounds[k+1] {
			t.Fatalf("interval %d bounds mismatch: [%v,%v) vs [%v,%v)",
				k, st.T0, st.T1, p.Bounds[k], p.Bounds[k+1])
		}
		for id, z := range st.Load {
			a.Z[id][k] = z
		}
	}
	for _, j := range in.Jobs {
		a.Y[j.ID] = 0
	}
	for _, d := range decisionsOf(s, in) {
		if d.Accepted {
			a.Y[d.JobID] = 1
		}
	}
	return a
}

func decisionsOf(s *core.Scheduler, in *job.Instance) []core.Decision {
	var out []core.Decision
	rej := map[int]bool{}
	for _, id := range s.Rejected() {
		rej[id] = true
	}
	for _, j := range in.Jobs {
		out = append(out, core.Decision{JobID: j.ID, Accepted: !rej[j.ID]})
	}
	return out
}

func runPD(t *testing.T, in *job.Instance) (*Program, *core.Scheduler, Assignment) {
	t.Helper()
	pm := power.Model{Alpha: in.Alpha}
	s := core.New(in.M, pm)
	inst := in.Clone()
	inst.Normalize()
	for _, j := range inst.Jobs {
		if _, err := s.Arrive(j); err != nil {
			t.Fatal(err)
		}
	}
	p := New(pm, in.M, inst.Jobs)
	return p, s, fromPD(t, p, s, inst)
}

// TestPDIsFeasiblePrimalPoint: PD's final variables satisfy (CP)'s
// constraints and its objective value is exactly PD's cost.
func TestPDIsFeasiblePrimalPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		in := workload.Uniform(workload.Config{
			N: 1 + rng.Intn(15), M: 1 + rng.Intn(3), Alpha: 2 + rng.Float64(),
			Seed: int64(trial),
		})
		p, s, a := runPD(t, in)
		if err := p.CheckFeasible(a, 1e-7); err != nil {
			t.Fatalf("trial %d: PD's point infeasible: %v", trial, err)
		}
		if !numeric.Close(p.Objective(a), s.Cost(), 1e-7) {
			t.Fatalf("trial %d: objective %v != PD cost %v", trial, p.Objective(a), s.Cost())
		}
	}
}

// TestWeakDualityChain: for PD's multipliers λ̃ and any feasible point,
// g(λ̃) ≤ L(x, y, λ̃) ≤ objective(x, y). Checked at PD's own point and
// at randomly perturbed feasible points.
func TestWeakDualityChain(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 15; trial++ {
		in := workload.Uniform(workload.Config{
			N: 1 + rng.Intn(10), M: 1 + rng.Intn(2), Alpha: 2.3,
			Seed: int64(100 + trial),
		})
		p, s, a := runPD(t, in)
		lam := s.Lambdas()
		pm := power.Model{Alpha: in.Alpha}
		g := dual.Value(pm, in.M, p.Jobs, lam)

		points := []Assignment{a}
		// Perturb: scale up loads (stays feasible: y unchanged,
		// residual only decreases) and flip accepted y downward.
		perturbed := Assignment{Z: map[int][]float64{}, Y: map[int]float64{}}
		for id, zs := range a.Z {
			cp := make([]float64, len(zs))
			for k, z := range zs {
				cp[k] = z * (1 + rng.Float64())
			}
			perturbed.Z[id] = cp
		}
		for id, y := range a.Y {
			perturbed.Y[id] = y * rng.Float64()
		}
		points = append(points, perturbed)

		for i, pt := range points {
			if err := p.CheckFeasible(pt, 1e-7); err != nil {
				t.Fatalf("trial %d point %d infeasible: %v", trial, i, err)
			}
			l := p.Lagrangian(pt, lam)
			obj := p.Objective(pt)
			if !numeric.LessEqual(g, l, 1e-6) {
				t.Fatalf("trial %d point %d: g=%v > L=%v", trial, i, g, l)
			}
			if !numeric.LessEqual(l, obj, 1e-6) {
				t.Fatalf("trial %d point %d: L=%v > obj=%v (λ ⪰ 0, residual ≤ 0)", trial, i, l, obj)
			}
		}
	}
}

// TestObjectiveHandComputed pins the objective on a tiny instance.
func TestObjectiveHandComputed(t *testing.T) {
	pm := power.New(2)
	jobs := []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 2, Value: 5},
		{ID: 1, Release: 0, Deadline: 2, Work: 1, Value: 3},
	}
	p := New(pm, 1, jobs)
	if p.Intervals() != 2 {
		t.Fatalf("want 2 intervals, got %d", p.Intervals())
	}
	a := Assignment{
		Z: map[int][]float64{
			0: {2, 0}, // job 0 fully in [0,1)
			1: {0, 1}, // job 1 fully in [1,2)
		},
		Y: map[int]float64{0: 1, 1: 0}, // job 1 declared unfinished
	}
	if err := p.CheckFeasible(a, 1e-12); err != nil {
		t.Fatal(err)
	}
	// Energy: 1·2² + 1·1² = 5; lost value: (1-0)·3 = 3.
	if got := p.Objective(a); math.Abs(got-8) > 1e-12 {
		t.Fatalf("objective %v want 8", got)
	}
	// Residuals: job 0: 1-1 = 0; job 1: 0-1 = -1.
	if r := p.Residual(a, jobs[0]); math.Abs(r) > 1e-12 {
		t.Fatalf("residual 0: %v", r)
	}
	if r := p.Residual(a, jobs[1]); math.Abs(r+1) > 1e-12 {
		t.Fatalf("residual 1: %v", r)
	}
	// Lagrangian with λ = (2, 4): 8 + 2·0 + 4·(-1) = 4.
	if l := p.Lagrangian(a, map[int]float64{0: 2, 1: 4}); math.Abs(l-4) > 1e-12 {
		t.Fatalf("lagrangian %v want 4", l)
	}
}

// TestCheckFeasibleCatchesViolations exercises each constraint check.
func TestCheckFeasibleCatchesViolations(t *testing.T) {
	pm := power.New(2)
	jobs := []job.Job{{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 1}}
	p := New(pm, 1, jobs)
	ok := Assignment{Z: map[int][]float64{0: {1}}, Y: map[int]float64{0: 1}}
	if err := p.CheckFeasible(ok, 1e-12); err != nil {
		t.Fatal(err)
	}
	cases := map[string]Assignment{
		"negative load": {Z: map[int][]float64{0: {-1}}, Y: map[int]float64{0: 0}},
		"y above one":   {Z: map[int][]float64{0: {1}}, Y: map[int]float64{0: 1.5}},
		"y below zero":  {Z: map[int][]float64{0: {1}}, Y: map[int]float64{0: -0.5}},
		"short vector":  {Z: map[int][]float64{0: {}}, Y: map[int]float64{0: 0}},
		"violated":      {Z: map[int][]float64{0: {0.5}}, Y: map[int]float64{0: 1}},
		"unknown job":   {Z: map[int][]float64{9: {1}}, Y: map[int]float64{}},
	}
	for name, a := range cases {
		if err := p.CheckFeasible(a, 1e-9); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
