// Package client is the resilient HTTP client the load generator and
// the cluster's pull path speak through: per-attempt deadlines, capped
// exponential backoff with jitter, Retry-After honoring, and
// redirect-aware retry. It exists because the paper's serving story is
// exactly-once over an unreliable network — and exactly-once is a
// two-party contract. The server side (idempotent stamped batches,
// dedup windows) only closes the loop if the client side retries every
// ambiguous outcome: a connection cut mid-response, a 503 from a
// drained node, a 307 from a tenant that migrated mid-request. This
// client retries all of them with the SAME body bytes, which is
// precisely what makes the server's (producer, seq) suppression safe.
//
// The client is deliberately dumb about payloads: it moves opaque
// []byte bodies and returns status + body. Idempotency stamps are the
// caller's concern (internal/load owns the producer/seq counters); the
// client's concern is that every attempt of one Do call carries
// identical bytes and headers, so a duplicate delivery is detectable
// downstream.
package client

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the retry loop. The zero value is usable: 4 retries,
// 50ms initial backoff doubling to a 2s cap, 10s per-attempt timeout.
type Config struct {
	// MaxRetries is how many times a failed attempt is retried (so a
	// Do issues at most MaxRetries+1 attempts). Negative disables
	// retries entirely.
	MaxRetries int
	// BaseBackoff is the first retry's backoff; each subsequent retry
	// doubles it up to MaxBackoff. Full jitter is applied: the actual
	// sleep is uniform in [0, backoff).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt (dial + write +
	// response). The Do ctx still bounds the whole call.
	AttemptTimeout time.Duration
	// HTTPClient is the transport to use; nil means a private
	// http.Client with redirects disabled (the retry loop follows 307s
	// itself so redirected attempts count against MaxRetries and
	// re-send the same body).
	HTTPClient *http.Client
	// Rand supplies jitter; nil seeds a private source. Tests inject a
	// fixed seed for determinism.
	Rand *rand.Rand
}

// Stats counts what the retry loop did, for loadgen's report columns
// and the e2e assertions. All fields are atomics: one Client is shared
// across every tenant goroutine of a load run.
type Stats struct {
	// Attempts counts every HTTP attempt issued, including retries.
	Attempts atomic.Uint64
	// Retries counts attempts beyond each Do's first.
	Retries atomic.Uint64
	// RetryAfterWaits counts sleeps that honored a server Retry-After
	// hint (shed with 429/503) instead of the backoff schedule.
	RetryAfterWaits atomic.Uint64
	// Redirects counts 307/308 ownership redirects followed.
	Redirects atomic.Uint64
	// NetErrors counts attempts that died on the wire (dial, reset,
	// truncated response) — the ambiguous outcomes idempotency exists
	// for.
	NetErrors atomic.Uint64
	// Sheds counts 429/503 answers — the server degrading gracefully
	// under overload or drain.
	Sheds atomic.Uint64
}

// Client issues resilient requests. Safe for concurrent use.
type Client struct {
	cfg   Config
	httpc *http.Client
	Stats Stats

	mu  sync.Mutex // guards rng (rand.Rand is not concurrency-safe)
	rng *rand.Rand
}

// New builds a Client, filling Config defaults.
func New(cfg Config) *Client {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 10 * time.Second
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{
			// The loop follows redirects itself so the body is re-sent
			// from the retained bytes, not replayed from a consumed
			// reader.
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		}
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return &Client{cfg: cfg, httpc: httpc, rng: rng}
}

// Response is the terminal outcome of a Do: the final attempt's status
// and body (already read and closed).
type Response struct {
	Status int
	Body   []byte
}

// retryStatus reports whether a status is worth another attempt: the
// shed statuses (429, 503) and transient server faults (5xx). 4xx
// (other than 429) are the caller's bug and fail fast.
func retryStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// Do issues method url with body, retrying transient failures with the
// same bytes until success, a terminal status, retry exhaustion, or
// ctx death. headers are applied to every attempt. A nil error with
// Status >= 400 means the server answered and the answer is final —
// callers branch on Status, not error.
func (c *Client) Do(ctx context.Context, method, url string, body []byte, headers map[string]string) (Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.Stats.Retries.Add(1)
		}
		resp, err := c.attempt(ctx, method, url, body, headers)
		if err == nil {
			if resp.Status == http.StatusTooManyRequests || resp.Status == http.StatusServiceUnavailable {
				c.Stats.Sheds.Add(1)
			}
			switch {
			case resp.Status == http.StatusTemporaryRedirect || resp.Status == http.StatusPermanentRedirect:
				// Ownership moved (tenant migration): chase the
				// Location with the same body. Counts as an attempt so
				// a redirect loop cannot spin forever.
				if loc := resp.header; loc != "" {
					c.Stats.Redirects.Add(1)
					url = loc
					if attempt >= c.cfg.MaxRetries {
						return Response{Status: resp.Status, Body: resp.body}, nil
					}
					continue
				}
				return Response{Status: resp.Status, Body: resp.body}, nil
			case !retryStatus(resp.Status):
				return Response{Status: resp.Status, Body: resp.body}, nil
			default:
				// Shed or transient server fault: back off and retry.
				if attempt >= c.cfg.MaxRetries {
					return Response{Status: resp.Status, Body: resp.body}, nil
				}
				if err := c.sleep(ctx, attempt, resp.retryAfter); err != nil {
					return Response{Status: resp.Status, Body: resp.body}, nil
				}
				continue
			}
		}
		// The wire died: ambiguous — the server may or may not have
		// applied the batch. Idempotency upstream makes the retry safe.
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
		c.Stats.NetErrors.Add(1)
		lastErr = err
		if attempt >= c.cfg.MaxRetries {
			return Response{}, lastErr
		}
		if err := c.sleep(ctx, attempt, 0); err != nil {
			return Response{}, lastErr
		}
	}
}

// attemptResult is one attempt's outcome before retry policy.
type attemptResult struct {
	Status     int
	body       []byte
	header     string        // Location, for redirects
	retryAfter time.Duration // parsed Retry-After, 0 if absent
}

func (c *Client) attempt(ctx context.Context, method, url string, body []byte, headers map[string]string) (attemptResult, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return attemptResult{}, err
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	c.Stats.Attempts.Add(1)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return attemptResult{}, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		// A truncated response is a wire fault, not an answer: the
		// status line arrived but the ack did not. Treat as ambiguous.
		return attemptResult{}, err
	}
	res := attemptResult{Status: resp.StatusCode, body: out, header: resp.Header.Get("Location")}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
			res.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return res, nil
}

// sleep parks between attempts: the server's Retry-After hint when
// present (capped at MaxBackoff — a hinted wait is still bounded),
// otherwise full-jitter exponential backoff. ctx death cuts it short.
func (c *Client) sleep(ctx context.Context, attempt int, hint time.Duration) error {
	var d time.Duration
	if hint > 0 {
		c.Stats.RetryAfterWaits.Add(1)
		d = hint
		if d > c.cfg.MaxBackoff {
			d = c.cfg.MaxBackoff
		}
	} else {
		backoff := c.cfg.BaseBackoff << uint(attempt)
		if backoff > c.cfg.MaxBackoff || backoff <= 0 {
			backoff = c.cfg.MaxBackoff
		}
		c.mu.Lock()
		d = time.Duration(c.rng.Int63n(int64(backoff) + 1))
		c.mu.Unlock()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
