package client

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient(retries int) *Client {
	return New(Config{
		MaxRetries:     retries,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		Rand:           rand.New(rand.NewSource(1)),
	})
}

func TestDoRetriesTransientFailures(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != "payload" {
			t.Errorf("attempt %d body = %q, want payload", hits.Load(), body)
		}
		switch hits.Add(1) {
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("done"))
		}
	}))
	defer srv.Close()

	c := fastClient(4)
	resp, err := c.Do(context.Background(), "POST", srv.URL, []byte("payload"), nil)
	if err != nil || resp.Status != http.StatusOK || string(resp.Body) != "done" {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	if got := c.Stats.Retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := c.Stats.Attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestDoHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	// MaxBackoff 5ms caps the hinted 1s wait, keeping the test quick
	// while still exercising the Retry-After branch.
	c := fastClient(2)
	resp, err := c.Do(context.Background(), "POST", srv.URL, nil, nil)
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	if got := c.Stats.RetryAfterWaits.Load(); got != 1 {
		t.Fatalf("retry-after waits = %d, want 1", got)
	}
}

func TestDoFailsFastOnClientErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"seq gap"}`))
	}))
	defer srv.Close()

	c := fastClient(5)
	resp, err := c.Do(context.Background(), "POST", srv.URL, nil, nil)
	if err != nil || resp.Status != http.StatusConflict {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	if hits.Load() != 1 {
		t.Fatalf("4xx retried: %d attempts", hits.Load())
	}
}

func TestDoFollowsRedirectWithSameBody(t *testing.T) {
	var ownerBody atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		ownerBody.Store(string(b))
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Location", owner.URL)
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	c := fastClient(3)
	resp, err := c.Do(context.Background(), "POST", front.URL, []byte("ndjson"), map[string]string{"X-Producer-Id": "p"})
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	if got, _ := ownerBody.Load().(string); got != "ndjson" {
		t.Fatalf("owner saw body %q, want the original bytes", got)
	}
	if got := c.Stats.Redirects.Load(); got != 1 {
		t.Fatalf("redirects = %d, want 1", got)
	}
}

func TestDoRetriesConnectionFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Cut the connection mid-response: the client must treat
			// the ambiguous outcome as retryable.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := fastClient(3)
	resp, err := c.Do(context.Background(), "POST", srv.URL, []byte("x"), nil)
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	if got := c.Stats.NetErrors.Load(); got == 0 {
		t.Fatal("connection cut not counted as a net error")
	}
}

func TestDoExhaustsRetriesAndReportsLastStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := fastClient(2)
	resp, err := c.Do(context.Background(), "POST", srv.URL, nil, nil)
	if err != nil || resp.Status != http.StatusServiceUnavailable {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	if got := c.Stats.Attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestDoStopsOnContextDeath(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(Config{
		MaxRetries:  100,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(1)),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Do(ctx, "POST", srv.URL, nil, nil)
	if err != nil && ctx.Err() == nil {
		t.Fatalf("Do = %v before ctx death", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("Do outlived its context by far")
	}
}
