// Package moa implements the multiprocessor extension of Optimal
// Available (OA) in the spirit of Albers, Antoniadis and Greiner: at
// every job arrival, recompute the energy-optimal schedule for all
// *remaining* work (as if everything were released now) using the
// offline convex solver, and follow that plan until the next arrival.
// Like OA it finishes every job and ignores values; Albers et al.
// proved the same αα competitive ratio as in the single-processor case.
//
// The paper uses this algorithm family as the prior state of the art
// for multiprocessors (without values); in this repository it is the
// finish-all baseline for PD in the multiprocessor experiments, and for
// m = 1 it coincides with classical OA (cross-checked in tests).
package moa

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/opt"
	"repro/internal/sched"
)

// Run executes multiprocessor OA over the instance. Values are
// ignored; all jobs are finished.
func Run(in *job.Instance) (*sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	groups := map[float64][]job.Job{}
	var times []float64
	for _, j := range in.Jobs {
		if _, ok := groups[j.Release]; !ok {
			times = append(times, j.Release)
		}
		groups[j.Release] = append(groups[j.Release], j)
	}
	sort.Float64s(times)

	rem := map[int]float64{}
	meta := map[int]job.Job{}
	out := &sched.Schedule{M: in.M}
	const eps = 1e-12

	for i, t := range times {
		for _, j := range groups[t] {
			rem[j.ID] = j.Work
			meta[j.ID] = j
		}
		// Remaining work, all available from t. IDs are visited in
		// sorted order: map iteration would leak into the convex
		// solver's float summation order and make replans differ in
		// the last ulp from run to run.
		ids := make([]int, 0, len(rem))
		for id := range rem {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		plan := &job.Instance{M: in.M, Alpha: in.Alpha}
		for _, id := range ids {
			r := rem[id]
			if r <= eps*(1+meta[id].Work) {
				continue
			}
			d := meta[id].Deadline
			if d <= t {
				return nil, fmt.Errorf("moa: job %d missed its deadline with %v work left", id, r)
			}
			plan.Jobs = append(plan.Jobs, job.Job{
				ID: id, Release: t, Deadline: d, Work: r, Value: math.Inf(1),
			})
		}
		if len(plan.Jobs) == 0 {
			continue
		}
		sol, err := opt.SolveAccepted(plan, nil)
		if err != nil {
			return nil, fmt.Errorf("moa: replanning at t=%v: %w", t, err)
		}
		horizon := math.Inf(1)
		if i+1 < len(times) {
			horizon = times[i+1]
		}
		// Execute the plan until the next arrival, clipping segments.
		for _, seg := range sol.Schedule.Segments {
			if seg.T0 >= horizon {
				continue
			}
			end := math.Min(seg.T1, horizon)
			if end <= seg.T0 {
				continue
			}
			clipped := seg
			clipped.T1 = end
			out.Segments = append(out.Segments, clipped)
			rem[seg.Job] -= clipped.Work()
			if rem[seg.Job] <= eps*(1+meta[seg.Job].Work) {
				rem[seg.Job] = 0
			}
		}
	}
	for id, r := range rem {
		if r > 1e-7*(1+meta[id].Work) {
			return nil, fmt.Errorf("moa: job %d left with %v work", id, r)
		}
	}
	return out, nil
}
