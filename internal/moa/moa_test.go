package moa

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/yds"
)

func finishAll(rng *rand.Rand, n, m int, alpha float64) *job.Instance {
	in := &job.Instance{M: m, Alpha: alpha}
	for i := 0; i < n; i++ {
		r := rng.Float64() * 6
		span := 0.3 + rng.Float64()*2.5
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: r, Deadline: r + span,
			Work: 0.1 + rng.Float64()*2, Value: math.Inf(1),
		})
	}
	in.Normalize()
	return in
}

func TestSingleJob(t *testing.T) {
	in := &job.Instance{M: 2, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 3, Value: math.Inf(1)},
	}}
	s, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.New(2)
	if got := s.Energy(pm); math.Abs(got-4.5) > 1e-9 { // 2·1.5²
		t.Fatalf("energy %v want 4.5", got)
	}
	if err := sched.Verify(in, s); err != nil {
		t.Fatal(err)
	}
}

// TestMatchesOAOnSingleProcessor: for m = 1, multiprocessor OA must
// coincide with the classical OA (independent implementations).
func TestMatchesOAOnSingleProcessor(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pm := power.New(2)
	for trial := 0; trial < 15; trial++ {
		in := finishAll(rng, 1+rng.Intn(9), 1, 2)
		a, err := Run(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, err := yds.OA(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !numeric.Close(a.Energy(pm), b.Energy(pm), 1e-4) {
			t.Fatalf("trial %d: MOA %v vs OA %v", trial, a.Energy(pm), b.Energy(pm))
		}
	}
}

func TestFeasibleAndWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 15; trial++ {
		alpha := 2 + rng.Float64()
		pm := power.New(alpha)
		in := finishAll(rng, 1+rng.Intn(10), 1+rng.Intn(4), alpha)
		s, err := Run(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Verify(in, s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, err := opt.SolveAccepted(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		e := s.Energy(pm)
		if e < sol.Energy*(1-1e-6) {
			t.Fatalf("trial %d: MOA %v beats offline optimum %v", trial, e, sol.Energy)
		}
		if e > pm.CompetitiveBound()*sol.Energy*(1+1e-6) {
			t.Fatalf("trial %d: MOA %v above αα·OPT %v", trial, e, pm.CompetitiveBound()*sol.Energy)
		}
	}
}

func TestSimultaneousArrivalsEqualOffline(t *testing.T) {
	// All jobs released together: the first plan is final, so MOA's
	// energy equals the offline optimum.
	rng := rand.New(rand.NewSource(53))
	pm := power.New(2.5)
	in := finishAll(rng, 8, 3, 2.5)
	for i := range in.Jobs {
		in.Jobs[i].Release = 0
	}
	in.Normalize()
	s, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := opt.SolveAccepted(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Close(s.Energy(pm), sol.Energy, 1e-6) {
		t.Fatalf("MOA %v vs offline %v", s.Energy(pm), sol.Energy)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(&job.Instance{M: 0, Alpha: 2}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}
