package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("zero value must be empty")
	}
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram must report NaN quantiles and mean")
	}
	b := h.Buckets()
	if len(b) != 1 || !math.IsInf(b[0].UpperBound, 1) || b[0].Count != 0 {
		t.Fatalf("empty histogram buckets = %v, want single empty +Inf bucket", b)
	}
	if h.String() != "n=0" {
		t.Fatalf("empty String = %q", h.String())
	}
}

func TestHistogramExactAggregates(t *testing.T) {
	var h Histogram
	xs := []float64{1e-6, 3e-6, 2e-3, 0.5, 0.5, 7}
	var sum float64
	for _, x := range xs {
		h.Observe(x)
		sum += x
	}
	if h.Count() != uint64(len(xs)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(xs))
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
	if h.Min() != 1e-6 || h.Max() != 7 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-sum/6) > 1e-15 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramQuantileWithinOneBucket(t *testing.T) {
	// The log-bucket estimate must be within one bucket factor of the
	// true sample quantile.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	xs := make([]float64, 5000)
	for i := range xs {
		// Log-uniform over 9 decades.
		xs[i] = math.Pow(10, -6+9*rng.Float64())
		h.Observe(xs[i])
	}
	sort.Float64s(xs)
	factor := math.Pow(10, 1.0/HistBucketsPerDecade)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		est := h.Quantile(q)
		truth := Quantile(xs, q)
		if est < truth/factor || est > truth*factor {
			t.Fatalf("q=%v: estimate %v not within factor %v of true %v", q, est, factor, truth)
		}
	}
	if h.Quantile(0) < h.Min() {
		t.Fatal("q=0 below observed min")
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q=1 = %v, want max %v", h.Quantile(1), h.Max())
	}
}

func TestHistogramMergeIsExact(t *testing.T) {
	// Merging per-shard histograms must equal one histogram fed all
	// observations — the property that lets serve aggregate per-tenant
	// recordings and loadgen aggregate per-worker recordings.
	rng := rand.New(rand.NewSource(7))
	var whole Histogram
	parts := make([]Histogram, 4)
	for i := 0; i < 10000; i++ {
		x := math.Pow(10, -9+14*rng.Float64())
		whole.Observe(x)
		parts[i%len(parts)].Observe(x)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("merged aggregates differ from whole")
	}
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum %v != whole sum %v", merged.Sum(), whole.Sum())
	}
	wb, mb := whole.Buckets(), merged.Buckets()
	if len(wb) != len(mb) {
		t.Fatalf("bucket series lengths differ: %d vs %d", len(wb), len(mb))
	}
	for i := range wb {
		if wb[i] != mb[i] {
			t.Fatalf("bucket %d differs: %v vs %v", i, wb[i], mb[i])
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := merged.Count()
	merged.Merge(nil)
	merged.Merge(&Histogram{})
	if merged.Count() != before {
		t.Fatal("merging empty changed the histogram")
	}
}

func TestHistogramOutOfRangeAndJunk(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Fatal("NaN must be ignored")
	}
	h.Observe(-5)   // clamps to zero
	h.Observe(0)    // below range → first bucket
	h.Observe(1e99) // above range → overflow bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1e99 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	b := h.Buckets()
	last := b[len(b)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 3 {
		t.Fatalf("overflow bucket = %v", last)
	}
}

func TestHistogramBucketsCumulativeAndSorted(t *testing.T) {
	var h Histogram
	for _, x := range []float64{1e-6, 1e-3, 1e-3, 1, 1000} {
		h.Observe(x)
	}
	b := h.Buckets()
	for i := 1; i < len(b); i++ {
		if b[i].UpperBound <= b[i-1].UpperBound {
			t.Fatalf("bucket bounds not increasing at %d: %v", i, b)
		}
		if b[i].Count < b[i-1].Count {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, b)
		}
	}
	if b[len(b)-1].Count != h.Count() {
		t.Fatal("final cumulative count must equal total")
	}
	if !strings.Contains(h.String(), "n=5") {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramBoundaryObservations(t *testing.T) {
	// Exact bucket boundaries must never land in a bucket whose upper
	// bound equals the observation (buckets are half-open).
	var h Histogram
	for i := 0; i < histNumBuckets; i += 7 {
		x := histUpperBound(i)
		if bi := bucketOf(x); bi <= i {
			t.Fatalf("observation %v at boundary of bucket %d landed in %d", x, i, bi)
		}
		h.Observe(x)
	}
	if h.Count() == 0 {
		t.Fatal("no boundary observations recorded")
	}
}

// TestObserveNMatchesRepeatedObserve pins the batch observation: one
// ObserveN(x, n) must be indistinguishable from n Observe(x) calls —
// buckets, count, sum, extremes and quantiles.
func TestObserveNMatchesRepeatedObserve(t *testing.T) {
	var batched, looped Histogram
	cases := []struct {
		x float64
		n uint64
	}{{1e-3, 7}, {2.5e-3, 1}, {0, 3}, {-1, 2}, {4.2, 1000}, {9e99, 5}}
	for _, c := range cases {
		batched.ObserveN(c.x, c.n)
		for i := uint64(0); i < c.n; i++ {
			looped.Observe(c.x)
		}
	}
	batched.ObserveN(1, 0) // n=0 must be a no-op
	batched.ObserveN(math.NaN(), 9)
	if batched != looped {
		t.Fatalf("ObserveN diverges from repeated Observe:\n%+v\nvs\n%+v", batched, looped)
	}
	if got, want := batched.String(), looped.String(); got != want {
		t.Fatalf("summary diverges: %q vs %q", got, want)
	}
}

// TestVisitBucketsMatchesBuckets pins the alloc-free iteration against
// the allocating Buckets slice, including the +Inf terminator on
// histograms that never hit the overflow bucket.
func TestVisitBucketsMatchesBuckets(t *testing.T) {
	for name, fill := range map[string]func(h *Histogram){
		"empty":    func(h *Histogram) {},
		"typical":  func(h *Histogram) { h.Observe(1e-4); h.Observe(3e-2); h.Observe(3e-2) },
		"overflow": func(h *Histogram) { h.Observe(1e99); h.Observe(2) },
	} {
		var h Histogram
		fill(&h)
		want := h.Buckets()
		var got []Bucket
		h.VisitBuckets(func(ub float64, cum uint64) {
			got = append(got, Bucket{UpperBound: ub, Count: cum})
		})
		if len(got) != len(want) {
			t.Fatalf("%s: VisitBuckets emitted %d entries, Buckets %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: bucket %d: %+v vs %+v", name, i, got[i], want[i])
			}
		}
	}
}
