package stats

import (
	"math"
	"sync"
	"testing"
)

// TestAtomicHistogramMatchesHistogram pins the snapshot to the plain
// histogram fed the same observations: identical buckets, count,
// extremes and quantiles (sum exactly too — same addition order when
// sequential).
func TestAtomicHistogramMatchesHistogram(t *testing.T) {
	obs := []float64{0, 1e-9, 3e-7, 4.2e-5, 1e-3, 0.5, 2, 1500, -3, math.NaN(), 1e12}
	var a AtomicHistogram
	var h Histogram
	for _, x := range obs {
		a.Observe(x)
		h.Observe(x)
	}
	snap := a.Snapshot()
	if snap.Count() != h.Count() || snap.Sum() != h.Sum() ||
		snap.Min() != h.Min() || snap.Max() != h.Max() {
		t.Fatalf("snapshot (n=%d sum=%v min=%v max=%v) != histogram (n=%d sum=%v min=%v max=%v)",
			snap.Count(), snap.Sum(), snap.Min(), snap.Max(),
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if snap.counts != h.counts {
		t.Fatal("bucket counts diverge")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if snap.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q%v: %v vs %v", q, snap.Quantile(q), h.Quantile(q))
		}
	}
}

// TestAtomicHistogramConcurrent hammers Observe from many goroutines
// and checks that nothing is lost: exact count, exact extremes, exact
// per-bucket totals, and the sum within float reassociation noise.
func TestAtomicHistogramConcurrent(t *testing.T) {
	const goroutines, per = 16, 2000
	var a AtomicHistogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Observe(1e-6 * float64(1+(g*per+i)%1000))
			}
		}(g)
	}
	wg.Wait()
	var want Histogram
	for k := 0; k < goroutines*per; k++ {
		want.Observe(1e-6 * float64(1+k%1000))
	}
	snap := a.Snapshot()
	if snap.Count() != want.Count() {
		t.Fatalf("count %d, want %d", snap.Count(), want.Count())
	}
	if snap.counts != want.counts {
		t.Fatal("bucket counts diverge under concurrency")
	}
	if snap.Min() != want.Min() || snap.Max() != want.Max() {
		t.Fatalf("extremes %v/%v, want %v/%v", snap.Min(), snap.Max(), want.Min(), want.Max())
	}
	if math.Abs(snap.Sum()-want.Sum()) > 1e-9*want.Sum() {
		t.Fatalf("sum %v, want %v", snap.Sum(), want.Sum())
	}
	// The snapshot merges exactly like any other fixed-layout histogram.
	var merged Histogram
	merged.Merge(&snap)
	merged.Merge(&snap)
	if merged.Count() != 2*want.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), 2*want.Count())
	}
}

// TestAtomicHistogramEmpty: the zero value snapshots to the zero
// histogram.
func TestAtomicHistogramEmpty(t *testing.T) {
	var a AtomicHistogram
	snap := a.Snapshot()
	if snap.Count() != 0 || snap.Sum() != 0 || snap.Min() != 0 || snap.Max() != 0 {
		t.Fatalf("zero value snapshot not empty: %+v", snap)
	}
}

// TestAtomicObserveNMatchesHistogram pins the atomic batch observation
// against the plain histogram fed the same batches.
func TestAtomicObserveNMatchesHistogram(t *testing.T) {
	var a AtomicHistogram
	var plain Histogram
	for _, c := range []struct {
		x float64
		n uint64
	}{{5e-4, 3}, {0.12, 1}, {-3, 4}, {7e88, 2}, {1, 0}} {
		a.ObserveN(c.x, c.n)
		plain.ObserveN(c.x, c.n)
	}
	a.ObserveN(math.NaN(), 5)
	if snap := a.Snapshot(); snap != plain {
		t.Fatalf("atomic ObserveN snapshot diverges:\n%+v\nvs\n%+v", snap, plain)
	}
}
