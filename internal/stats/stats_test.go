package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v want %v", s.Std, math.Sqrt(2.5))
	}
	if s.P50 != 3 {
		t.Fatalf("median %v want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Q(%v)=%v want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile must be NaN")
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean %v want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) || !math.IsNaN(GeoMean(nil)) {
		t.Fatal("invalid inputs must give NaN")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"a", "b"},
		Notes:   []string{"hello"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 0.333333333)
	out := tab.String()
	for _, want := range []string{"demo", "====", "a", "b", "1", "2.5", "x", "0.3333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
