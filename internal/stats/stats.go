// Package stats provides the summary statistics and plain-text table
// rendering used by the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Summary holds the usual aggregate statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	P50, P90  float64
}

// Summarize computes a Summary; an empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.P50 = Quantile(xs, 0.5)
	s.P90 = Quantile(xs, 0.9)
	return s
}

// Quantile returns the q-th sample quantile (linear interpolation
// between order statistics); q is clamped to [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// GeoMean returns the geometric mean of positive samples (NaN if any
// sample is nonpositive or the slice is empty). Competitive ratios are
// aggregated geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Table is a rendered experiment result: a title, one row of column
// headers, data rows, and free-form notes.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell: floats with %.4g, the
// rest with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
