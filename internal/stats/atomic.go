// AtomicHistogram is the contention-free twin of Histogram for hot
// write paths: many goroutines Observe concurrently without a lock
// (the serving daemon records one observation per arrival, across all
// tenants), and readers take a mergeable Histogram snapshot. It shares
// Histogram's fixed bucket layout, so snapshots merge exactly with any
// other Histogram.

package stats

import (
	"math"
	"sync/atomic"
)

// AtomicHistogram counts observations into the shared fixed log-spaced
// bucket layout using only atomic operations. The zero value is ready
// to use. Observe is lock-free and wait-free per bucket; Snapshot is
// not a point-in-time cut — concurrent observations may straddle it —
// but every observation lands in exactly one snapshot eventually,
// which is all a metrics scrape needs.
type AtomicHistogram struct {
	counts [histNumBuckets + 1]atomic.Uint64
	count  atomic.Uint64
	// sum is a float64 maintained by CAS on its bits.
	sum atomic.Uint64
	// Extremes exploit that observations are clamped non-negative:
	// for non-negative float64s the IEEE bit pattern orders like the
	// value, so max is an atomic max over bits (zero value = 0, the
	// smallest admissible observation) and min is an atomic max over
	// the complemented bits (zero value = "nothing seen": any real
	// observation's complement is larger).
	maxBits    atomic.Uint64
	minBitsInv atomic.Uint64
}

// Observe records one observation; NaN is ignored and negative values
// count as zero, exactly like Histogram.Observe.
//
//schedlint:hotpath
func (h *AtomicHistogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < 0 {
		x = 0
	}
	// Sum and extremes land before the bucket increment: Snapshot
	// counts an observation exactly when its bucket is visible, so
	// every counted observation already has its extremes in place.
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			break
		}
	}
	bits := math.Float64bits(x)
	for {
		old := h.maxBits.Load()
		if old >= bits || h.maxBits.CompareAndSwap(old, bits) {
			break
		}
	}
	for inv := ^bits; ; {
		old := h.minBitsInv.Load()
		if old >= inv || h.minBitsInv.CompareAndSwap(old, inv) {
			break
		}
	}
	h.counts[bucketOf(x)].Add(1)
	h.count.Add(1)
}

// ObserveN records n identical observations in O(1) — the batch twin
// of Histogram.ObserveN: one CAS on the sum, one max/min update and
// one bucket add of n, however large the batch. The daemon uses it to
// charge a drained batch's amortized per-arrival latency to all of its
// arrivals without n atomic updates.
//
//schedlint:hotpath
func (h *AtomicHistogram) ObserveN(x float64, n uint64) {
	if n == 0 || math.IsNaN(x) {
		return
	}
	if x < 0 {
		x = 0
	}
	add := x * float64(n)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+add)) {
			break
		}
	}
	bits := math.Float64bits(x)
	for {
		old := h.maxBits.Load()
		if old >= bits || h.maxBits.CompareAndSwap(old, bits) {
			break
		}
	}
	for inv := ^bits; ; {
		old := h.minBitsInv.Load()
		if old >= inv || h.minBitsInv.CompareAndSwap(old, inv) {
			break
		}
	}
	h.counts[bucketOf(x)].Add(n)
	h.count.Add(n)
}

// Count returns the number of observations recorded so far.
func (h *AtomicHistogram) Count() uint64 { return h.count.Load() }

// Snapshot materialises the current state as a plain Histogram, ready
// to render, query or merge. The snapshot's count is the sum of its
// buckets — not a separate load of the total — so the Prometheus
// invariant `_count == le="+Inf" bucket` holds even when a scrape
// races in-flight observations.
//
//schedlint:hotpath
func (h *AtomicHistogram) Snapshot() Histogram {
	var out Histogram
	for i := range h.counts {
		out.counts[i] = h.counts[i].Load()
		out.count += out.counts[i]
	}
	out.sum = math.Float64frombits(h.sum.Load())
	if out.count > 0 {
		out.max = math.Float64frombits(h.maxBits.Load())
		if inv := h.minBitsInv.Load(); inv != 0 {
			out.min = math.Float64frombits(^inv)
		}
	}
	return out
}
