// Striped twins of the hot write-path counters, against cache-line
// false sharing. AtomicHistogram made per-arrival observation
// lock-free, but on a many-core ingest every applier goroutine still
// lands its adds on the same cache lines — the count/sum words and
// whatever latency bucket the fleet's arrivals cluster in — so the
// lines ping-pong between cores and the "contention-free" path pays
// coherence traffic per batch. StripedHistogram and Int64Cell spread
// the writes: each writer owns a stripe (the serve layer hands every
// session a stripe index at creation), stripes are padded a full
// cache line apart so no two ever share one, and readers merge — which
// the fixed bucket layout makes exact, so striping is invisible in the
// numbers.

package stats

import "sync/atomic"

// HistStripes is the stripe count of a StripedHistogram — a power of
// two so stripe selection is a mask, sized past the core counts the
// ingest benchmarks sweep (GOMAXPROCS 1/4/16).
const HistStripes = 16

// paddedAtomicHistogram keeps neighbouring stripes at least a cache
// line apart; 64 bytes of padding guarantees no byte of one stripe
// shares a line with the next regardless of struct alignment.
type paddedAtomicHistogram struct {
	h AtomicHistogram
	_ [64]byte
}

// StripedHistogram is an AtomicHistogram sharded into cache-line
// padded stripes. Writers pass a stripe index (any int; it is masked)
// and should keep using the same one — a stable writer→stripe mapping
// is what turns contended lines into core-local ones. The zero value
// is ready to use.
type StripedHistogram struct {
	stripes [HistStripes]paddedAtomicHistogram
}

// Observe records one observation on the stripe.
//
//schedlint:hotpath
func (s *StripedHistogram) Observe(stripe int, x float64) {
	s.stripes[stripe&(HistStripes-1)].h.Observe(x)
}

// ObserveN records n identical observations on the stripe in O(1).
//
//schedlint:hotpath
func (s *StripedHistogram) ObserveN(stripe int, x float64, n uint64) {
	s.stripes[stripe&(HistStripes-1)].h.ObserveN(x, n)
}

// Count returns the total observation count across stripes.
func (s *StripedHistogram) Count() uint64 {
	var n uint64
	for i := range s.stripes {
		n += s.stripes[i].h.Count()
	}
	return n
}

// Snapshot merges every stripe into one mergeable Histogram — exact,
// because all stripes share the fixed bucket layout.
func (s *StripedHistogram) Snapshot() Histogram {
	var out Histogram
	for i := range s.stripes {
		snap := s.stripes[i].h.Snapshot()
		out.Merge(&snap)
	}
	return out
}

// Int64Cell is one cache-line padded cell of a sharded counter. The
// padding puts successive cells 64 bytes apart, so two writers on
// different cells never invalidate each other's line.
type Int64Cell struct {
	v atomic.Int64
	_ [56]byte
}

// Add adds d to the cell.
//
//schedlint:hotpath
func (c *Int64Cell) Add(d int64) { c.v.Add(d) }

// Load returns the cell's value.
func (c *Int64Cell) Load() int64 { return c.v.Load() }

// ShardedInt64 is one logical gauge/counter spread over padded cells:
// writers Add through the cell a stable index hands them, readers sum.
// The read is not a point-in-time cut across cells — exactly the
// contract a metrics gauge needs, nothing stronger.
type ShardedInt64 struct {
	cells []Int64Cell
}

// NewShardedInt64 builds a sharded counter with at least n cells,
// rounded up to a power of two so Cell's index math is a mask.
func NewShardedInt64(n int) *ShardedInt64 {
	if n < 1 {
		n = 1
	}
	k := 1
	for k < n {
		k <<= 1
	}
	return &ShardedInt64{cells: make([]Int64Cell, k)}
}

// Cell returns the cell for a stable writer index (any int; masked).
func (s *ShardedInt64) Cell(i int) *Int64Cell {
	return &s.cells[i&(len(s.cells)-1)]
}

// Load sums every cell.
func (s *ShardedInt64) Load() int64 {
	var n int64
	for i := range s.cells {
		n += s.cells[i].v.Load()
	}
	return n
}
