// The histogram's JSON wire format: the exact state — every bucket
// count plus sum and extremes — so a histogram shipped between
// processes merges on the far side exactly as if the observations had
// been recorded there. This is what makes cluster-wide p50/p99 exact
// rather than approximated: each worker serializes its latency
// histogram, the controller unmarshals and Merges, and because every
// Histogram shares one fixed bucket layout (guarded by the layout tag)
// the merged quantiles equal those of a single histogram fed the union
// of all observations.
//
// Counts are serialized with trailing zeros trimmed; sum/min/max ride
// as plain JSON numbers, which Go encodes in shortest round-trip form,
// so decode(encode(h)) == h bit for bit.

package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// histLayout names the fixed bucket layout; a histogram serialized by
// a binary with a different layout is refused at decode instead of
// merged wrong.
const histLayout = "log5x16"

// histogramWire is the JSON shape of a Histogram.
type histogramWire struct {
	Layout string   `json:"layout"`
	Counts []uint64 `json:"counts"`
	Sum    float64  `json:"sum"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
}

// MarshalJSON encodes the histogram's exact state. Observations are
// finite by construction (NaN dropped, negatives clamped at Observe),
// but a histogram whose sum overflowed to +Inf is refused rather than
// emitted as invalid JSON.
func (h Histogram) MarshalJSON() ([]byte, error) {
	if math.IsInf(h.sum, 0) || math.IsNaN(h.sum) {
		return nil, fmt.Errorf("stats: histogram sum %v is not JSON-encodable", h.sum)
	}
	last := -1
	for i, c := range h.counts {
		if c > 0 {
			last = i
		}
	}
	w := histogramWire{
		Layout: histLayout,
		Counts: h.counts[:last+1],
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a histogram serialized by MarshalJSON; the
// count is rederived from the buckets, so the invariant
// count == Σ counts cannot be broken by a forged payload.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Layout != histLayout {
		return fmt.Errorf("stats: histogram layout %q, this binary speaks %q", w.Layout, histLayout)
	}
	if len(w.Counts) > len(h.counts) {
		return fmt.Errorf("stats: histogram carries %d buckets, layout has %d", len(w.Counts), len(h.counts))
	}
	*h = Histogram{sum: w.Sum, min: w.Min, max: w.Max}
	for i, c := range w.Counts {
		h.counts[i] = c
		h.count += c
	}
	if h.count == 0 && (w.Min != 0 || w.Max != 0) { //schedlint:exactfloat zero sentinels of the empty histogram
		return fmt.Errorf("stats: empty histogram claims extremes [%v, %v]", w.Min, w.Max)
	}
	return nil
}
