// The latency histogram shared by the serving daemon's /metrics
// endpoint and the load generator's report: fixed log-spaced buckets,
// so two histograms recorded independently (per tenant, per process)
// merge exactly, bucket by bucket, with no resampling.

package stats

import (
	"fmt"
	"math"
)

// The fixed bucket layout: HistBucketsPerDecade buckets per decade
// from histMin upward. With 5 per decade each bucket spans a factor of
// 10^0.2 ≈ 1.58× — quantile estimates are off by at most that factor,
// plenty for latency reporting. The range covers 1ns … ~10^7s when
// observations are in seconds, but the histogram is unit-agnostic:
// anything below the range lands in the first bucket, anything above
// in the overflow bucket, and Sum/Count/Min/Max stay exact.
const (
	HistBucketsPerDecade = 5
	histMin              = 1e-9
	histDecades          = 16
	histNumBuckets       = HistBucketsPerDecade * histDecades
)

// Histogram counts observations into fixed log-spaced buckets. The
// zero value is ready to use. Histogram is not synchronized; callers
// recording from multiple goroutines must hold their own lock.
type Histogram struct {
	// counts[i] counts observations in bucket i; the trailing slot is
	// the overflow bucket for observations beyond the layout's range.
	counts [histNumBuckets + 1]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(x float64) int {
	if x < histMin {
		return 0
	}
	i := int(math.Floor(math.Log10(x/histMin) * HistBucketsPerDecade))
	if i < 0 {
		i = 0
	}
	if i >= histNumBuckets {
		return histNumBuckets // overflow
	}
	// Floating-point log can land one bucket off at exact boundaries;
	// nudge so x < upperBound(i) always holds.
	if x >= histUpperBound(i) {
		i++
		if i >= histNumBuckets {
			return histNumBuckets
		}
	}
	return i
}

// histUpperBound returns the exclusive upper bound of bucket i.
func histUpperBound(i int) float64 {
	if i >= histNumBuckets {
		return math.Inf(1)
	}
	return histMin * math.Pow(10, float64(i+1)/HistBucketsPerDecade)
}

// Observe records one observation. NaN is ignored; negative values
// count as zero (first bucket) so a clock hiccup cannot poison the
// layout-invariant merge.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < 0 {
		x = 0
	}
	h.counts[bucketOf(x)]++
	h.count++
	h.sum += x
	if h.count == 1 || x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// ObserveN records n identical observations in O(1): one bucket
// bump of n instead of n bumps. The serving daemon uses it to charge a
// batch's amortized per-arrival latency to every arrival in the batch
// without paying one histogram update per job.
func (h *Histogram) ObserveN(x float64, n uint64) {
	if n == 0 || math.IsNaN(x) {
		return
	}
	if x < 0 {
		x = 0
	}
	h.counts[bucketOf(x)] += n
	wasEmpty := h.count == 0
	h.count += n
	h.sum += x * float64(n)
	if wasEmpty || x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// Merge folds o into h, bucket by bucket. Because every Histogram
// shares one fixed layout, the merge is exact: Merge then Quantile
// equals recording all observations into a single histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extremes (zero when empty).
func (h *Histogram) Min() float64 { return h.min }
func (h *Histogram) Max() float64 { return h.max }

// HistQuantile estimates the q-th quantile from the buckets: the upper
// bound of the bucket holding the q-th observation, clamped to the
// exact observed [Min, Max]. The estimate is within one bucket width
// (a factor of 10^(1/HistBucketsPerDecade)) of the true quantile.
// Returns NaN when empty; q is clamped to [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			ub := histUpperBound(i)
			// Clamp: the bucket bound can overshoot the true extremes.
			return math.Min(math.Max(ub, h.min), h.max)
		}
	}
	return h.max
}

// Bucket is one cumulative bucket for Prometheus-style rendering:
// Count observations were ≤ UpperBound.
type Bucket struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      uint64  // cumulative
}

// Buckets returns the cumulative nonempty buckets plus the +Inf
// terminator — the `le` series of a Prometheus histogram. Empty
// buckets are skipped (cumulative counts make them redundant), so the
// series stays short however wide the fixed layout is.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, Bucket{UpperBound: histUpperBound(i), Count: cum})
	}
	if len(out) == 0 || !math.IsInf(out[len(out)-1].UpperBound, 1) {
		out = append(out, Bucket{UpperBound: math.Inf(1), Count: cum})
	}
	return out
}

// VisitBuckets walks the cumulative nonempty buckets plus the +Inf
// terminator in upper-bound order — the same series Buckets returns,
// but without allocating, for the daemon's pooled metrics scrape.
//
// Callers on allocation-free paths should prefer Cursor: a closure
// that captures locals is itself a heap allocation at the call site.
func (h *Histogram) VisitBuckets(visit func(upperBound float64, cum uint64)) {
	for c := h.Cursor(); ; {
		ub, cum, ok := c.Next()
		if !ok {
			return
		}
		visit(ub, cum)
	}
}

// BucketCursor iterates the same cumulative bucket series as
// VisitBuckets, closure-free: the cursor is a plain value the caller
// keeps on its stack, so hot render paths pay zero allocations.
type BucketCursor struct {
	h          *Histogram
	i          int
	cum        uint64
	emittedInf bool
}

// Cursor returns a bucket cursor positioned before the first nonempty
// bucket.
func (h *Histogram) Cursor() BucketCursor { return BucketCursor{h: h} }

// Next returns the next cumulative bucket, or ok=false when the
// series (including the +Inf terminator) is exhausted.
func (c *BucketCursor) Next() (ub float64, cum uint64, ok bool) {
	for c.i < len(c.h.counts) {
		i := c.i
		c.i++
		cnt := c.h.counts[i]
		if cnt == 0 {
			continue
		}
		c.cum += cnt
		ub = histUpperBound(i)
		if math.IsInf(ub, 1) {
			c.emittedInf = true
		}
		return ub, c.cum, true
	}
	if !c.emittedInf {
		c.emittedInf = true
		return math.Inf(1), c.cum, true
	}
	return 0, 0, false
}

// String renders a compact one-line summary for reports.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}
