package stats

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// TestHistogramWireRoundTrip pins the exactness claim the cluster's
// fleet metrics rest on: decode(encode(h)) reproduces every bucket,
// the count, the sum bits and the extremes, so a merge on the far side
// of a network hop equals a local one.
func TestHistogramWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for i := 0; i < 10_000; i++ {
		h.Observe(rng.ExpFloat64() * 1e-3)
	}
	h.ObserveN(3.5e-6, 1234)

	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, h)
	}

	// Pointer marshal (the common struct-field case) matches too.
	b2, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("value and pointer marshal differ")
	}
}

func TestHistogramWireEmpty(t *testing.T) {
	var h Histogram
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("empty round trip diverged: %+v", got)
	}
}

// TestHistogramWireMergeExact is the end-to-end exactness argument:
// two histograms shipped through JSON and merged equal one histogram
// fed the union of observations.
func TestHistogramWireMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, union Histogram
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64() * 1e-4
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
		union.Observe(x)
	}
	ship := func(h Histogram) Histogram {
		raw, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var out Histogram
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Shipping is invisible: merging the decoded copies is bit-identical
	// to merging the originals locally.
	merged := ship(a)
	sb := ship(b)
	merged.Merge(&sb)
	local := a
	local.Merge(&b)
	if merged != local {
		t.Fatalf("shipped merge != local merge:\n got %+v\nwant %+v", merged, local)
	}
	// And the merge itself is exact against the union in everything
	// quantiles are computed from (buckets, count, extremes); only the
	// sum carries accumulation-order noise in its last ulps.
	mSum, uSum := merged.Sum(), union.Sum()
	merged.sum, union.sum = 0, 0
	if merged != union {
		t.Fatalf("merge != union:\n got %+v\nwant %+v", merged, union)
	}
	if d := (mSum - uSum) / uSum; d > 1e-12 || d < -1e-12 {
		t.Fatalf("sums diverged beyond accumulation-order noise: %v vs %v", mSum, uSum)
	}
	if merged.Quantile(0.99) != union.Quantile(0.99) { //schedlint:exactfloat exactness is the claim under test
		t.Fatalf("p99 diverged")
	}
}

func TestHistogramWireRefusals(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"layout", `{"layout":"log10x8","counts":[1],"sum":1,"min":1,"max":1}`},
		{"too many buckets", `{"layout":"log5x16","counts":[` + strings.Repeat("1,", 99) + `1],"sum":1,"min":1,"max":1}`},
		{"forged extremes", `{"layout":"log5x16","counts":[],"sum":0,"min":3,"max":9}`},
	}
	for _, tc := range cases {
		var h Histogram
		if err := json.Unmarshal([]byte(tc.in), &h); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// TestStripedHistogram pins that striping is invisible in the merged
// numbers: buckets, count, extremes and every quantile match a plain
// histogram fed the same observations exactly. Only the sum may differ
// in its last ulps — float addition is not associative and stripes
// accumulate in their own order — so it is compared relatively.
func TestStripedHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s StripedHistogram
	var want Histogram
	for i := 0; i < 20_000; i++ {
		x := rng.ExpFloat64() * 1e-5
		s.Observe(i, x)
		want.Observe(x)
	}
	s.ObserveN(-1, 2e-6, 77) // negative stripe indexes must mask, not panic
	want.ObserveN(2e-6, 77)
	got := s.Snapshot()
	gotSum, wantSum := got.Sum(), want.Sum()
	got.sum, want.sum = 0, 0
	if got != want {
		t.Fatalf("striped snapshot diverged:\n got %+v\nwant %+v", got, want)
	}
	if d := (gotSum - wantSum) / wantSum; d > 1e-12 || d < -1e-12 {
		t.Fatalf("sums diverged beyond accumulation-order noise: %v vs %v", gotSum, wantSum)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got.Quantile(q) != want.Quantile(q) { //schedlint:exactfloat exact-quantile claim under test
			t.Fatalf("q%v diverged", q)
		}
	}
	if s.Count() != want.Count() {
		t.Fatalf("count %d != %d", s.Count(), want.Count())
	}
}

func TestShardedInt64(t *testing.T) {
	s := NewShardedInt64(10) // rounds up to 16
	for i := 0; i < 64; i++ {
		s.Cell(i).Add(int64(i))
	}
	var want int64
	for i := 0; i < 64; i++ {
		want += int64(i)
	}
	if got := s.Load(); got != want {
		t.Fatalf("Load() = %d, want %d", got, want)
	}
	s.Cell(-5).Add(1) // negative index masks
	if got := s.Load(); got != want+1 {
		t.Fatalf("Load() = %d, want %d", got, want+1)
	}
	if NewShardedInt64(0).Load() != 0 {
		t.Fatal("zero-cell counter")
	}
}
