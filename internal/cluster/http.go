// The controller's HTTP face:
//
//	POST   /v1/cluster/join         worker join/rejoin (name, addr, tenant list)
//	POST   /v1/cluster/heartbeat    lease renewal
//	GET    /v1/cluster              topology (nodes, liveness, placements)
//	GET    /v1/cluster/topology     alias of GET /v1/cluster
//	GET    /v1/cluster/tenants      tenant → node placement map
//	GET    /v1/cluster/state        full durable state (ClusterState)
//	GET    /v1/cluster/stream       NDJSON state stream (the standby tail)
//	GET    /v1/cluster/migrations   supervisor queue: progress handle for 202s
//	POST   /v1/cluster/move         migrate one tenant ({tenant, to}), synchronous
//	POST   /v1/cluster/rebalance    queue convergence onto the ring → 202
//	POST   /v1/cluster/drain        queue emptying a node ({node}) → 202
//	POST   /v1/sessions             proxied create (controller picks the node)
//	DELETE /v1/sessions/{id}        proxied close (relays the final Result)
//	POST   /v1/sessions/{id}/arrivals   307 → the tenant's node
//	GET    /v1/sessions/{id}/snapshot   307 → the tenant's node
//	GET    /v1/sessions             all placed tenants
//	GET    /metrics                 fleet-merged Prometheus scrape
//
// Rebalance and drain answer 202 with the planned tenants and a
// progress handle: execution belongs to the migration supervisor
// (bounded concurrency, retries, parking), not the request goroutine
// — a long drain no longer holds an HTTP request open past proxy
// timeouts. Poll /v1/cluster/migrations (or the topology's counts)
// for convergence.
//
// On a standby controller every mutating route answers 503 with the
// primary's URL; the read routes serve the mirrored state.
//
// The tenant data plane stays off the controller: arrivals and
// snapshots are 307 redirects — the client re-issues the identical
// request (Go's http.Client does this transparently for replayable
// bodies) straight at the owning worker, so stream bytes never
// traverse the controller. Create and close are proxied instead:
// they are cold, and the controller must update placement exactly
// when the node commits the operation.
//
// The fleet /metrics scrape leans on the histogram's exact-merge
// property: each worker ships its latency histogram in wire form
// (every bucket, bit-exact sum and extremes), the controller Merges —
// so fleet p50/p99 are the true quantiles of the union stream, not an
// approximation over pre-computed per-node quantiles.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/promtext"
	"repro/internal/stats"
)

// NewHTTPHandler returns the controller daemon's handler.
func NewHTTPHandler(c *Controller) http.Handler {
	// primary wraps a mutating handler: a standby refuses with the
	// primary's address rather than diverging the mirrored state.
	primary := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if !c.IsPrimary() {
				writeNodeErr(w, http.StatusServiceUnavailable, notPrimaryErr(c))
				return
			}
			h(w, r)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/join", primary(func(w http.ResponseWriter, r *http.Request) {
		handleJoin(c, w, r)
	}))
	mux.HandleFunc("POST /v1/cluster/heartbeat", primary(func(w http.ResponseWriter, r *http.Request) {
		handleHeartbeat(c, w, r)
	}))
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeNodeJSON(w, http.StatusOK, c.Topology())
	})
	mux.HandleFunc("GET /v1/cluster/topology", func(w http.ResponseWriter, r *http.Request) {
		writeNodeJSON(w, http.StatusOK, c.Topology())
	})
	mux.HandleFunc("GET /v1/cluster/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeNodeJSON(w, http.StatusOK, map[string]any{"tenants": c.Tenants()})
	})
	mux.HandleFunc("GET /v1/cluster/state", func(w http.ResponseWriter, r *http.Request) {
		handleState(c, w)
	})
	mux.HandleFunc("GET /v1/cluster/stream", func(w http.ResponseWriter, r *http.Request) {
		handleStateStream(c, w, r)
	})
	mux.HandleFunc("GET /v1/cluster/migrations", func(w http.ResponseWriter, r *http.Request) {
		writeNodeJSON(w, http.StatusOK, c.Migrations())
	})
	mux.HandleFunc("POST /v1/cluster/move", primary(func(w http.ResponseWriter, r *http.Request) {
		handleMove(c, w, r)
	}))
	mux.HandleFunc("POST /v1/cluster/rebalance", primary(func(w http.ResponseWriter, r *http.Request) {
		planned := c.Rebalance()
		writeNodeJSON(w, http.StatusAccepted, map[string]any{
			"planned": planned, "watch": "/v1/cluster/migrations",
		})
	}))
	mux.HandleFunc("POST /v1/cluster/drain", primary(func(w http.ResponseWriter, r *http.Request) {
		handleDrain(c, w, r)
	}))
	mux.HandleFunc("POST /v1/sessions", primary(func(w http.ResponseWriter, r *http.Request) {
		handleProxyCreate(c, w, r)
	}))
	mux.HandleFunc("DELETE /v1/sessions/{id}", primary(func(w http.ResponseWriter, r *http.Request) {
		handleProxyClose(c, w, r)
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/arrivals", func(w http.ResponseWriter, r *http.Request) {
		redirectToOwner(c, w, r, "/arrivals")
	})
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		redirectToOwner(c, w, r, "/snapshot")
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		handleListSessions(c, w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleFleetMetrics(c, w, r)
	})
	return mux
}

// clusterStatus maps controller errors onto HTTP statuses.
func clusterStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant), errors.Is(err, ErrUnknownNode):
		return http.StatusNotFound
	case errors.Is(err, ErrNodeDown), errors.Is(err, ErrNoNodes), errors.Is(err, ErrNotPrimary):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrMigrating):
		return http.StatusConflict
	default:
		return http.StatusBadGateway
	}
}

func writeClusterErr(w http.ResponseWriter, err error) {
	writeNodeErr(w, clusterStatus(err), err)
}

func handleJoin(c *Controller, w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeNodeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" || req.Addr == "" {
		writeNodeErr(w, http.StatusBadRequest, errors.New("join needs name and addr"))
		return
	}
	purge := c.Join(req.Name, req.Addr, req.Tenants)
	writeNodeJSON(w, http.StatusOK, joinResponse{
		LeaseMs: c.Lease().Milliseconds(), Purge: purge,
		Epoch: c.Epoch(), Controller: c.ID(), Standbys: c.Standbys(),
	})
}

func handleHeartbeat(c *Controller, w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeNodeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Heartbeat(req.Name); err != nil {
		writeNodeErr(w, http.StatusNotFound, err)
		return
	}
	// The ack carries the reign and the failover list: heartbeats are
	// how a long-lived worker learns about a standby that arrived (or
	// an epoch that moved) after its join.
	writeNodeJSON(w, http.StatusOK, joinResponse{
		LeaseMs: c.Lease().Milliseconds(),
		Epoch:   c.Epoch(), Controller: c.ID(), Standbys: c.Standbys(),
	})
}

func handleMove(c *Controller, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant string `json:"tenant"`
		To     string `json:"to"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeNodeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Move(r.Context(), req.Tenant, req.To); err != nil {
		writeClusterErr(w, err)
		return
	}
	writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": req.Tenant, "node": req.To})
}

func handleDrain(c *Controller, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Node string `json:"node"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeNodeErr(w, http.StatusBadRequest, err)
		return
	}
	planned, err := c.Drain(req.Node)
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	writeNodeJSON(w, http.StatusAccepted, map[string]any{
		"node": req.Node, "planned": planned, "watch": "/v1/cluster/migrations",
	})
}

func handleListSessions(c *Controller, w http.ResponseWriter) {
	placed := c.Tenants()
	ids := make([]string, 0, len(placed))
	for t := range placed {
		ids = append(ids, t)
	}
	// Same shape as a worker's GET /v1/sessions, so clients need not
	// care which tier they talk to.
	sort.Strings(ids)
	writeNodeJSON(w, http.StatusOK, map[string]any{"sessions": ids})
}

// redirectPool recycles the Location build buffers of the redirect hot
// path — the one per-request cost the controller pays on the data
// plane.
var redirectPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// redirectToOwner answers 307 with the owning worker's URL for the
// same tenant endpoint. Clients with replayable bodies (Go's
// http.Client sets GetBody for bytes readers) re-send transparently;
// everyone else follows by hand. The ingest stream itself never
// touches the controller.
//
//schedlint:hotpath
func redirectToOwner(c *Controller, w http.ResponseWriter, r *http.Request, suffix string) {
	id := r.PathValue("id")
	n, err := c.Lookup(id) //schedlint:allowalloc Lookup allocates only on its unknown-tenant/dead-node error paths
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	bp := redirectPool.Get().(*[]byte)
	b := append((*bp)[:0], n.Addr...)
	b = append(b, "/v1/sessions/"...)
	b = append(b, id...)
	b = append(b, suffix...)
	w.Header().Set("Location", string(b))
	*bp = b[:0]
	redirectPool.Put(bp)
	w.WriteHeader(http.StatusTemporaryRedirect)
}

// handleProxyCreate decodes enough of the create to learn the tenant
// id, places it, and forwards the create to the chosen node. The
// placement is recorded only if the node commits the create.
func handleProxyCreate(c *Controller, w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID   string          `json:"id,omitempty"`
		Spec json.RawMessage `json:"spec"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeNodeErr(w, http.StatusBadRequest, err)
		return
	}
	id, node, fresh, err := c.place(req.ID)
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	req.ID = id
	body, err := json.Marshal(req)
	if err != nil {
		writeNodeErr(w, http.StatusInternalServerError, err)
		return
	}
	status, respBody, err := c.forward(r.Context(), http.MethodPost, node.Addr+"/v1/sessions", body)
	if err != nil {
		if fresh {
			c.dropPlacement(id)
		}
		writeNodeErr(w, http.StatusBadGateway, err)
		return
	}
	if status != http.StatusCreated && fresh {
		c.dropPlacement(id)
	}
	relayJSON(w, status, respBody)
}

// handleProxyClose forwards the close and un-places the tenant when
// the node confirms, relaying the final verified Result either way.
func handleProxyClose(c *Controller, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	n, err := c.Lookup(id)
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	status, respBody, err := c.forward(r.Context(), http.MethodDelete, n.Addr+"/v1/sessions/"+id, nil)
	if err != nil {
		writeNodeErr(w, http.StatusBadGateway, err)
		return
	}
	if status == http.StatusOK || status == http.StatusNotFound {
		c.dropPlacement(id)
	}
	relayJSON(w, status, respBody)
}

// forward issues one proxied call and returns the node's status and
// body. Bounded by CallTimeout (a hung worker must not wedge the
// proxy handler) and fenced like every controller-originated call.
func (c *Controller) forward(ctx context.Context, method, url string, body []byte) (int, []byte, error) {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.fenceHeaders(req)
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

func relayJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// place is Place plus a freshness bit so the proxy can roll back a
// placement the node never committed.
func (c *Controller) place(id string) (string, Node, bool, error) {
	c.mu.Lock()
	_, existed := c.placement[id]
	c.mu.Unlock()
	tenant, n, err := c.Place(id)
	return tenant, n, err == nil && !existed, err
}

// fleetScrapePool recycles the fleet /metrics render buffers.
var fleetScrapePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// handleFleetMetrics aggregates every live node's stats into one
// scrape. The per-node latency histograms arrive in exact wire form
// and Merge losslessly, so the fleet p50/p99 rendered here equal the
// quantiles of one histogram fed every arrival in the fleet.
func handleFleetMetrics(c *Controller, w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	nodes := make([]Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, *n)
	}
	placements := len(c.placement)
	c.mu.Unlock()

	var (
		fleet    stats.Histogram
		arrivals uint64
		dedup    uint64
		shed     uint64
		backlog  int64
		sessions int64
		alive    int
		scraped  int
	)
	for _, n := range nodes {
		if !n.Alive {
			continue
		}
		alive++
		ns, err := c.nodeStats(r.Context(), n.Addr)
		if err != nil {
			continue // a node mid-crash is the lease checker's problem
		}
		scraped++
		fleet.Merge(&ns.Latency)
		arrivals += ns.Arrivals
		dedup += ns.Dedup
		shed += ns.Shed
		backlog += int64(ns.Backlog)
		sessions += ns.SessionsLive
	}

	bp := fleetScrapePool.Get().(*[]byte)
	b := (*bp)[:0]
	b = promtext.AppendInt(b, "schedd_cluster_nodes", "Workers known to the controller.", "gauge", int64(len(nodes)))
	b = promtext.AppendInt(b, "schedd_cluster_nodes_alive", "Workers holding a live lease.", "gauge", int64(alive))
	b = promtext.AppendInt(b, "schedd_cluster_nodes_scraped", "Workers whose stats the fleet view merged this scrape.", "gauge", int64(scraped))
	b = promtext.AppendInt(b, "schedd_cluster_placements", "Tenants placed on the cluster.", "gauge", int64(placements))
	b = promtext.AppendInt(b, "schedd_fleet_sessions_live", "Live sessions across the fleet.", "gauge", sessions)
	b = promtext.AppendInt(b, "schedd_fleet_backlog", "Queued-but-unapplied arrivals across the fleet.", "gauge", backlog)
	b = promtext.AppendUint(b, "schedd_fleet_arrivals_total", "Arrivals applied across the fleet.", "counter", arrivals)
	b = promtext.AppendUint(b, "schedd_fleet_dedup_suppressed_total", "Duplicate stamped batches suppressed across the fleet.", "counter", dedup)
	b = promtext.AppendUint(b, "schedd_fleet_shed_total", "Submits shed with 429 across the fleet.", "counter", shed)
	b = promtext.AppendHistogram(b, "schedd_fleet_arrival_latency_seconds",
		"Fleet-wide per-arrival apply latency (exact merge of per-node histograms).", fleet)
	p50, p99 := 0.0, 0.0
	if fleet.Count() > 0 {
		p50, p99 = fleet.Quantile(0.5), fleet.Quantile(0.99)
	}
	b = promtext.AppendGauge(b, "schedd_fleet_arrival_latency_seconds_p50", p50)
	b = promtext.AppendGauge(b, "schedd_fleet_arrival_latency_seconds_p99", p99)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write(b)
	*bp = b[:0]
	fleetScrapePool.Put(bp)
}
