package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is the controller's injectable time source for lease
// tests: no sleeps, no flakes — the test owns the clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestLeaseExpiry is the failure detector's unit test: a worker that
// stops heartbeating is marked dead exactly when its lease runs out,
// leaves the placement ring, and comes back on its next heartbeat.
func TestLeaseExpiry(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Options{Lease: 5 * time.Second, Now: clock.now})
	c.Join("n1", "http://n1", nil)
	c.Join("n2", "http://n2", nil)

	// Both inside their lease: nothing expires.
	clock.advance(3 * time.Second)
	if got := c.CheckLeases(); len(got) != 0 {
		t.Fatalf("expired %v inside the lease", got)
	}
	if err := c.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}

	// n2 is now 6s silent (lease 5s); n1 renewed 3s ago.
	clock.advance(3 * time.Second)
	if got := c.CheckLeases(); len(got) != 1 || got[0] != "n2" {
		t.Fatalf("expired %v, want [n2]", got)
	}
	// Expiry is edge-triggered: a dead node does not expire again.
	if got := c.CheckLeases(); len(got) != 0 {
		t.Fatalf("re-expired %v", got)
	}

	// New tenants never land on the corpse.
	for i := 0; i < 200; i++ {
		_, n, err := c.Place("")
		if err != nil {
			t.Fatal(err)
		}
		if n.Name == "n2" {
			t.Fatal("placed a tenant on a dead node")
		}
	}

	// Routing at a tenant whose home is dead refuses loudly.
	c.mu.Lock()
	c.placement["stranded"] = "n2"
	c.mu.Unlock()
	if _, err := c.Lookup("stranded"); err == nil {
		t.Fatal("lookup of a tenant on a dead node succeeded")
	}

	// A heartbeat resurrects the node and its tenant.
	if err := c.Heartbeat("n2"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Lookup("stranded"); err != nil || n.Name != "n2" {
		t.Fatalf("after resurrection: node %v err %v", n, err)
	}

	// An unknown node's heartbeat demands a rejoin.
	if err := c.Heartbeat("ghost"); err == nil {
		t.Fatal("heartbeat for unknown node succeeded")
	}
}

// TestJoinReconciliation pins the rejoin contract: tenants the
// controller still places on the joining node survive, tenants that
// migrated away while it was gone come back as purge orders, and
// tenants the controller never knew are adopted.
func TestJoinReconciliation(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Options{Lease: time.Second, Now: clock.now})
	c.Join("a", "http://a", []string{"t1"})
	c.Join("b", "http://b", []string{"t2"})
	if got := c.Tenants(); got["t1"] != "a" || got["t2"] != "b" {
		t.Fatalf("adopted placements = %v", got)
	}

	// While a was dead, t1 moved to b (placement says so); a rejoins
	// still holding its stale copy plus an unknown tenant t3.
	c.mu.Lock()
	c.placement["t1"] = "b"
	c.mu.Unlock()
	purge := c.Join("a", "http://a2", []string{"t1", "t3"})
	if len(purge) != 1 || purge[0] != "t1" {
		t.Fatalf("purge = %v, want [t1]", purge)
	}
	got := c.Tenants()
	if got["t3"] != "a" {
		t.Fatalf("unknown tenant not adopted: %v", got)
	}
	// The rejoin updated the advertised address.
	if n, err := c.Lookup("t3"); err != nil || n.Addr != "http://a2" {
		t.Fatalf("addr after rejoin = %v, %v", n, err)
	}
}

// TestPlaceStability pins that placement is sticky: a placed tenant
// keeps its home even when the ring changes under it.
func TestPlaceStability(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Options{Lease: time.Minute, Now: clock.now})
	c.Join("n1", "http://n1", nil)
	id, n1, err := c.Place("sticky")
	if err != nil || id != "sticky" {
		t.Fatalf("place: %v %v", id, err)
	}
	c.Join("n2", "http://n2", nil)
	c.Join("n3", "http://n3", nil)
	_, n2, err := c.Place("sticky")
	if err != nil || n2.Name != n1.Name {
		t.Fatalf("tenant moved from %s to %s without a migration", n1.Name, n2.Name)
	}
	// Fresh ids get distinct generated names.
	a, _, _ := c.Place("")
	b, _, _ := c.Place("")
	if a == b || a == "" {
		t.Fatalf("generated ids collide: %q %q", a, b)
	}
}

// TestDrainRejoinReturnsToService pins the drain lifecycle: a drained
// node takes no new tenants, an explicit rejoin puts it back in
// service, and a drain with nowhere to move to rolls itself back
// instead of stranding the node outside the ring.
func TestDrainRejoinReturnsToService(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Options{Lease: 5 * time.Second, Now: clock.now})
	c.Join("n1", "http://n1", nil)
	c.Join("n2", "http://n2", nil)

	// Draining an empty node moves nothing but marks it out.
	if moved, err := c.Drain("n2"); err != nil || len(moved) != 0 {
		t.Fatalf("drain n2: moved %v, err %v", moved, err)
	}
	for i := 0; i < 200; i++ {
		_, n, err := c.Place("")
		if err != nil {
			t.Fatal(err)
		}
		if n.Name == "n2" {
			t.Fatal("placed a tenant on a draining node")
		}
	}

	// The node restarts and rejoins: that is its declaration of being
	// back in service, so the drain flag clears and placements resume.
	c.Join("n2", "http://n2", nil)
	landed := false
	for i := 0; i < 200 && !landed; i++ {
		_, n, err := c.Place("")
		if err != nil {
			t.Fatal(err)
		}
		landed = n.Name == "n2"
	}
	if !landed {
		t.Fatal("no tenant landed on n2 after its rejoin")
	}

	// Discard the probe placements: the phases above only asked where
	// new tenants would land, and a later drain would otherwise try to
	// migrate them over real HTTP.
	c.mu.Lock()
	c.placement = map[string]string{}
	c.mu.Unlock()

	// Drain the other node, leaving n2 the only ring member, then try
	// to drain n2 too while it holds a tenant: there is no destination,
	// so the drain must fail AND undo itself — n2 keeps serving.
	if _, err := c.Drain("n1"); err != nil {
		t.Fatal(err)
	}
	tenant, n, err := c.Place("")
	if err != nil || n.Name != "n2" {
		t.Fatalf("place with only n2 in the ring: node %v err %v", n, err)
	}
	if _, err := c.Drain("n2"); err == nil {
		t.Fatal("draining the last node with a tenant succeeded")
	}
	if got, err := c.Lookup(tenant); err != nil || got.Name != "n2" {
		t.Fatalf("after failed drain: lookup %v err %v", got, err)
	}
	if _, n, err := c.Place(""); err != nil || n.Name != "n2" {
		t.Fatalf("after failed drain, place: node %v err %v", n, err)
	}
}
