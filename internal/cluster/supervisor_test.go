// Supervisor tests against instrumented fake workers: migrations run
// at most MaxMigrations at a time, transient pull failures retry with
// backoff until they converge, and permanent failures park visibly —
// until a rebalance re-queues them.

package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWorker fakes the node endpoints the controller drives during a
// migration, instrumenting pull concurrency and failing the first
// failFirst pull attempts per tenant.
type fakeWorker struct {
	mu          sync.Mutex
	pulls       map[string]int
	failFirst   int
	delay       time.Duration
	inflight    atomic.Int32
	maxInflight atomic.Int32
	srv         *httptest.Server
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	f := &fakeWorker{pulls: map[string]int{}}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/node/pull":
			cur := f.inflight.Add(1)
			for {
				max := f.maxInflight.Load()
				if cur <= max || f.maxInflight.CompareAndSwap(max, cur) {
					break
				}
			}
			if f.delay > 0 {
				time.Sleep(f.delay)
			}
			f.inflight.Add(-1)
			tenant := r.URL.Query().Get("tenant")
			f.mu.Lock()
			f.pulls[tenant]++
			fail := f.pulls[tenant] <= f.failFirst
			f.mu.Unlock()
			if fail {
				http.Error(w, `{"error":"injected pull failure"}`, http.StatusBadGateway)
				return
			}
			w.WriteHeader(http.StatusOK)
		case "/v1/node/adopt", "/v1/node/data":
			w.WriteHeader(http.StatusOK)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeWorker) attempts(tenant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pulls[tenant]
}

func (f *fakeWorker) setFailFirst(n int) {
	f.mu.Lock()
	f.failFirst = n
	f.mu.Unlock()
}

func waitCond(t *testing.T, why string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("never reached: %s", why)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSupervisorBoundedConcurrencyAndRetry drives six migrations whose
// first pull each fails: all converge, every tenant took exactly one
// retry, and the destination never saw more than MaxMigrations pulls
// in flight.
func TestSupervisorBoundedConcurrencyAndRetry(t *testing.T) {
	src, dst := newFakeWorker(t), newFakeWorker(t)
	dst.failFirst = 1
	dst.delay = 20 * time.Millisecond

	c := NewController(Options{MaxMigrations: 2, RetryBase: 2 * time.Millisecond, MigrateTimeout: 5 * time.Second})
	c.Start(t.Context())
	c.Join("src", src.srv.URL, []string{"m-a", "m-b", "m-c", "m-d", "m-e", "m-f"})
	c.Join("dst", dst.srv.URL, nil)

	tenants := []string{"m-a", "m-b", "m-c", "m-d", "m-e", "m-f"}
	for _, id := range tenants {
		if !c.sup.enqueue(id, "src", "dst", false) {
			t.Fatalf("enqueue %s refused", id)
		}
	}
	waitCond(t, "all migrations done", func() bool {
		mc := c.sup.counts()
		return mc.Running+mc.Queued+mc.Waiting+mc.Parked == 0 && mc.Done == uint64(len(tenants))
	})
	placed := c.Tenants()
	for _, id := range tenants {
		if placed[id] != "dst" {
			t.Fatalf("tenant %s placed on %q after migration", id, placed[id])
		}
		if got := dst.attempts(id); got != 2 {
			t.Fatalf("tenant %s pulled %d times, want 2 (one injected failure, one retry)", id, got)
		}
	}
	if max := dst.maxInflight.Load(); max > 2 {
		t.Fatalf("observed %d concurrent pulls, bound is 2", max)
	}
	// The journal held up: no intent left open.
	if st := c.State(); len(st.Intents) != 0 {
		t.Fatalf("intents left open after convergence: %+v", st.Intents)
	}
}

// TestSupervisorParksPermanentFailure drains a node whose tenant can
// never be pulled: after MaxAttempts the migration parks with its
// reason in the topology — and a later rebalance, once the fault is
// fixed, re-queues it to convergence.
func TestSupervisorParksPermanentFailure(t *testing.T) {
	src, dst := newFakeWorker(t), newFakeWorker(t)
	dst.failFirst = 1 << 30 // every pull fails

	c := NewController(Options{MaxMigrations: 2, MaxAttempts: 3, RetryBase: time.Millisecond, MigrateTimeout: 5 * time.Second})
	c.Start(t.Context())
	c.Join("src", src.srv.URL, []string{"p-a"})
	c.Join("dst", dst.srv.URL, nil)

	planned, err := c.Drain("src")
	if err != nil || len(planned) != 1 || planned[0] != "p-a" {
		t.Fatalf("drain planned %v, err %v", planned, err)
	}
	waitCond(t, "migration parked", func() bool {
		return c.sup.counts().Parked == 1
	})
	if got := dst.attempts("p-a"); got != 3 {
		t.Fatalf("pull attempted %d times before parking, want MaxAttempts=3", got)
	}
	top := c.Topology()
	if len(top.Parked) != 1 || top.Parked[0].Tenant != "p-a" || top.Parked[0].Reason == "" {
		t.Fatalf("topology parked = %+v, want p-a with a reason", top.Parked)
	}
	if top.Parked[0].Attempts != 3 {
		t.Fatalf("parked attempts = %d, want 3", top.Parked[0].Attempts)
	}
	// The tenant never moved and still serves from its source.
	if got := c.Tenants()["p-a"]; got != "src" {
		t.Fatalf("parked tenant placed on %q, want src", got)
	}

	// Operator fixes the target and rebalances: the park clears and the
	// migration converges (src is draining, so the ring says dst).
	dst.setFailFirst(0)
	if planned := c.Rebalance(); len(planned) != 1 || planned[0] != "p-a" {
		t.Fatalf("rebalance planned %v, want [p-a]", planned)
	}
	waitCond(t, "parked migration retried to done", func() bool {
		mc := c.sup.counts()
		return mc.Parked == 0 && mc.Running+mc.Queued+mc.Waiting == 0 && c.Tenants()["p-a"] == "dst"
	})
	if top := c.Topology(); len(top.Parked) != 0 {
		t.Fatalf("parked list not cleared by rebalance: %+v", top.Parked)
	}
}
