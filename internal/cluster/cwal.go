// The controller's write-ahead log: the placement map, the node
// table, the epoch and every migration intent, journaled through a
// wal.RecLog in the controller's data dir so a controller restart is
// a non-event for the cluster — workers keep heartbeating into a
// brain that still knows them, tenants keep routing to the homes they
// had, and a migration the crash cut mid-flight is resumed or rolled
// back from its intent record instead of being forgotten.
//
// Record types (payloads are JSON):
//
//	snapshot    full ClusterState — the compaction unit; replaces
//	            everything before it on replay
//	node-join   {name, addr}: upsert, alive, in the ring, not draining
//	node-alive  {name}: a lease-expired node heartbeat back to life
//	node-dead   {name}: lease expired; out of the ring
//	node-drain  {name, draining}: drain flag flip (both directions)
//	place       {tenant, node, seq}: placement written or adopted
//	drop        {tenant}: placement forgotten (close, rollback)
//	epoch       {epoch}: fencing token; bumped on every boot/takeover
//	intent      {tenant, from, to, phase}: migration begin/done/abort
//	park        {tenant, to, reason, attempts}: permanent failure
//	unpark      {tenant}: a parked migration re-queued
//
// Write order is state-then-record under the controller mutex, and a
// mutation is acknowledged only after its record's fsync returned —
// so everything a client or worker ever observed is in the log. A
// controller that cannot write its log stops instead of diverging
// from its own history (fail-stop; see mustLog).

package cluster

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/wal"
)

// Controller record types (the wal.RecLog type byte).
const (
	crecSnapshot  = 1
	crecNodeJoin  = 2
	crecNodeAlive = 3
	crecNodeDead  = 4
	crecNodeDrain = 5
	crecPlace     = 6
	crecDrop      = 7
	crecEpoch     = 8
	crecIntent    = 9
	crecPark      = 10
	crecUnpark    = 11
)

// compactEvery is how many records accumulate before the log is
// rewritten as one snapshot record.
const compactEvery = 512

// Intent phases.
const (
	intentBegin = "begin"
	intentDone  = "done"
	intentAbort = "abort"
)

// NodeState is one node's durable row: everything about it except the
// ephemeral heartbeat clock, which restarts from "just beat" on
// recovery and re-expires on its own if the node is truly gone.
type NodeState struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Alive    bool   `json:"alive"`
	Draining bool   `json:"draining,omitempty"`
}

// Intent is one in-flight migration's crash record.
type Intent struct {
	Tenant string `json:"tenant"`
	From   string `json:"from"`
	To     string `json:"to"`
}

// ParkedMigration is a migration the supervisor gave up retrying,
// surfaced in the topology until an operator (or a new rebalance)
// re-queues it.
type ParkedMigration struct {
	Tenant   string `json:"tenant"`
	To       string `json:"to"`
	Reason   string `json:"reason"`
	Attempts int    `json:"attempts"`
}

// ClusterState is the controller's full durable state: the snapshot
// record's payload, the standby stream's line format, and the GET
// /v1/cluster/state body. json.Marshal sorts the placement map and
// Nodes are sorted by name, so equal states are byte-equal — the
// property the kill-and-restore differential leans on.
type ClusterState struct {
	Epoch     uint64            `json:"epoch"`
	Seq       uint64            `json:"seq"`
	LeaseMs   int64             `json:"leaseMs"`
	Primary   bool              `json:"primary"`
	Nodes     []NodeState       `json:"nodes"`
	Placement map[string]string `json:"placement"`
	Intents   []Intent          `json:"intents,omitempty"`
	Parked    []ParkedMigration `json:"parked,omitempty"`
}

type nodeRec struct {
	Name     string `json:"name"`
	Addr     string `json:"addr,omitempty"`
	Draining bool   `json:"draining,omitempty"`
}

type placeRec struct {
	Tenant string `json:"tenant"`
	Node   string `json:"node"`
	Seq    uint64 `json:"seq,omitempty"`
}

type epochRec struct {
	Epoch uint64 `json:"epoch"`
}

type intentRec struct {
	Tenant string `json:"tenant"`
	From   string `json:"from"`
	To     string `json:"to"`
	Phase  string `json:"phase"`
}

// controllerWALPath is where a controller journals inside its data
// dir; the name is distinct from the tenants/ tree so one dir could
// host both roles without collision.
func controllerWALPath(dataDir string) string {
	return filepath.Join(dataDir, "controller.wal")
}

// mustLog appends one record to the controller WAL (no-op without
// one). Called with c.mu held, after the in-memory mutation: the
// mutation is observable only once the record is durable because the
// mutex is released after the fsync. A controller that cannot append
// panics — fail-stop keeps the invariant that served state is logged
// state; restarting on a healed disk recovers everything it ever
// acknowledged.
func (c *Controller) mustLog(typ byte, v any) {
	if c.log == nil {
		return
	}
	payload, err := json.Marshal(v)
	if err == nil {
		err = c.log.Append(typ, payload)
	}
	if err != nil {
		panic(fmt.Sprintf("cluster: controller wal append: %v", err))
	}
	if c.log.Count() >= compactEvery {
		c.compactLocked()
	}
}

// compactLocked rewrites the log as one snapshot record.
func (c *Controller) compactLocked() {
	if c.log == nil {
		return
	}
	payload, err := json.Marshal(c.stateLocked())
	if err == nil {
		err = c.log.Rewrite([]wal.RecLogRecord{{Type: crecSnapshot, Payload: payload}})
	}
	if err != nil {
		panic(fmt.Sprintf("cluster: controller wal compaction: %v", err))
	}
}

// stateLocked snapshots the controller's durable state. c.mu held.
func (c *Controller) stateLocked() ClusterState {
	st := ClusterState{
		Epoch:     c.epoch,
		Seq:       c.seq,
		LeaseMs:   c.opt.Lease.Milliseconds(),
		Primary:   c.primary,
		Placement: make(map[string]string, len(c.placement)),
	}
	for t, n := range c.placement {
		st.Placement[t] = n
	}
	for _, n := range c.nodes {
		st.Nodes = append(st.Nodes, NodeState{Name: n.Name, Addr: n.Addr, Alive: n.Alive, Draining: n.Draining})
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].Name < st.Nodes[j].Name })
	for _, in := range c.intents {
		st.Intents = append(st.Intents, *in)
	}
	sort.Slice(st.Intents, func(i, j int) bool { return st.Intents[i].Tenant < st.Intents[j].Tenant })
	for _, p := range c.parked {
		st.Parked = append(st.Parked, *p)
	}
	sort.Slice(st.Parked, func(i, j int) bool { return st.Parked[i].Tenant < st.Parked[j].Tenant })
	return st
}

// State snapshots the controller's durable state (the
// /v1/cluster/state body and the standby stream line).
func (c *Controller) State() ClusterState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateLocked()
}

// adoptStateLocked replaces the controller's durable state wholesale —
// snapshot-record replay and the standby's mirror path. The heartbeat
// clocks restart at now. c.mu held.
func (c *Controller) adoptStateLocked(st ClusterState) {
	now := c.opt.Now()
	c.epoch = st.Epoch
	c.seq = st.Seq
	c.nodes = make(map[string]*Node, len(st.Nodes))
	c.ring = NewRing(c.opt.VNodes)
	for _, ns := range st.Nodes {
		c.nodes[ns.Name] = &Node{Name: ns.Name, Addr: ns.Addr, Alive: ns.Alive, Draining: ns.Draining, lastBeat: now}
		if ns.Alive && !ns.Draining {
			c.ring.Add(ns.Name)
		}
	}
	c.placement = make(map[string]string, len(st.Placement))
	for t, n := range st.Placement {
		c.placement[t] = n
	}
	c.intents = make(map[string]*Intent, len(st.Intents))
	for _, in := range st.Intents {
		in := in
		c.intents[in.Tenant] = &in
	}
	c.parked = make(map[string]*ParkedMigration, len(st.Parked))
	for _, p := range st.Parked {
		p := p
		c.parked[p.Tenant] = &p
	}
}

// applyRecord folds one recovered record into the in-memory state —
// the replay half of every mustLog call site. No logging, no version
// bumps: recovery rebuilds, it does not re-journal.
func (c *Controller) applyRecord(typ byte, payload []byte) error {
	switch typ {
	case crecSnapshot:
		var st ClusterState
		if err := json.Unmarshal(payload, &st); err != nil {
			return fmt.Errorf("snapshot record: %w", err)
		}
		c.adoptStateLocked(st)
	case crecNodeJoin:
		var r nodeRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("node-join record: %w", err)
		}
		n := c.nodes[r.Name]
		if n == nil {
			n = &Node{Name: r.Name}
			c.nodes[r.Name] = n
		}
		n.Addr = r.Addr
		n.Alive = true
		n.Draining = false
		n.lastBeat = c.opt.Now()
		c.ring.Add(r.Name)
	case crecNodeAlive:
		var r nodeRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("node-alive record: %w", err)
		}
		if n := c.nodes[r.Name]; n != nil {
			n.Alive = true
			n.lastBeat = c.opt.Now()
			if !n.Draining {
				c.ring.Add(r.Name)
			}
		}
	case crecNodeDead:
		var r nodeRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("node-dead record: %w", err)
		}
		if n := c.nodes[r.Name]; n != nil {
			n.Alive = false
			c.ring.Remove(r.Name)
		}
	case crecNodeDrain:
		var r nodeRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("node-drain record: %w", err)
		}
		if n := c.nodes[r.Name]; n != nil {
			n.Draining = r.Draining
			if r.Draining {
				c.ring.Remove(r.Name)
			} else if n.Alive {
				c.ring.Add(r.Name)
			}
		}
	case crecPlace:
		var r placeRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("place record: %w", err)
		}
		c.placement[r.Tenant] = r.Node
		if r.Seq > c.seq {
			c.seq = r.Seq
		}
	case crecDrop:
		var r placeRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("drop record: %w", err)
		}
		delete(c.placement, r.Tenant)
	case crecEpoch:
		var r epochRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("epoch record: %w", err)
		}
		c.epoch = r.Epoch
	case crecIntent:
		var r intentRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("intent record: %w", err)
		}
		if r.Phase == intentBegin {
			c.intents[r.Tenant] = &Intent{Tenant: r.Tenant, From: r.From, To: r.To}
		} else {
			delete(c.intents, r.Tenant)
		}
	case crecPark:
		var p ParkedMigration
		if err := json.Unmarshal(payload, &p); err != nil {
			return fmt.Errorf("park record: %w", err)
		}
		c.parked[p.Tenant] = &p
	case crecUnpark:
		var p ParkedMigration
		if err := json.Unmarshal(payload, &p); err != nil {
			return fmt.Errorf("unpark record: %w", err)
		}
		delete(c.parked, p.Tenant)
	default:
		return fmt.Errorf("unknown record type %d", typ)
	}
	return nil
}

// bumpSeqFromID keeps the fresh-id counter ahead of every generated id
// the log replayed, so a recovered controller never reissues one.
func (c *Controller) bumpSeqFromID(id string) {
	rest, ok := strings.CutPrefix(id, "c-")
	if !ok {
		return
	}
	if n, err := strconv.ParseUint(rest, 10, 64); err == nil && n > c.seq {
		c.seq = n
	}
}
