package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/serve"
	"repro/internal/wal"
	"repro/internal/workload"
)

// testWorker is one in-process worker: WAL store, host, node handler
// behind an httptest server, and an agent joined to the controller.
type testWorker struct {
	name  string
	store *wal.Store
	host  *serve.Host
	srv   *httptest.Server
	agent *Agent
}

func newTestWorker(t *testing.T, name, controllerURL string) *testWorker {
	t.Helper()
	st, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := serve.NewHost(serve.Config{WAL: st, CheckpointEvery: 25})
	fence := NewEpochFence()
	srv := httptest.NewServer(NewNodeHandler(name, h, st, fence))
	w := &testWorker{name: name, store: st, host: h, srv: srv}
	w.agent = NewAgent(NodeConfig{
		Name: name, Advertise: srv.URL, Controller: controllerURL, Fence: fence,
	}, h, st)
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	if _, err := w.agent.Join(context.Background()); err != nil {
		t.Fatalf("join %s: %v", name, err)
	}
	return w
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func maskResult(r *engine.Result) *engine.Result {
	cp := *r
	cp.MaxArrive, cp.TotalArrive, cp.PlanTime = 0, 0, 0
	return &cp
}

// waitMigrated polls until the supervisor's queue is empty — the
// rebalance/drain verbs answer 202 and converge in the background.
func waitMigrated(t *testing.T, c *Controller) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mc := c.sup.counts()
		if mc.Running+mc.Queued+mc.Waiting == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("migrations did not converge: %+v", c.sup.counts())
}

// TestClusterMigrationDifferential drives the full cluster surface in
// process: create through the controller's proxy, ingest through its
// 307 redirects, migrate the tenant mid-stream between two live
// workers, ingest the rest at its new home, and require the final
// verified Result byte-identical to an uninterrupted single-engine
// replay of the same workload.
func TestClusterMigrationDifferential(t *testing.T) {
	c := NewController(Options{})
	ctrl := httptest.NewServer(NewHTTPHandler(c))
	defer ctrl.Close()

	newTestWorker(t, "w1", ctrl.URL)
	newTestWorker(t, "w2", ctrl.URL)

	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.2}
	in := workload.Poisson(workload.Config{N: 140, M: 1, Alpha: 2.2, Seed: 23, ValueScale: 2})
	cut := len(in.Jobs) / 2

	// Create through the controller; it picks the home.
	resp := postJSON(t, ctrl.URL+"/v1/sessions", map[string]any{"id": "mig-1", "spec": spec})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("proxied create: status %d: %s", resp.StatusCode, b)
	}
	resp.Body.Close()
	home := c.Tenants()["mig-1"]
	if home != "w1" && home != "w2" {
		t.Fatalf("tenant placed on %q", home)
	}

	// The data plane is a redirect, not a proxy: pin the 307 and its
	// Location before letting the real client follow it.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	probe, err := noFollow.Post(ctrl.URL+"/v1/sessions/mig-1/arrivals", "application/x-ndjson", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, probe.Body)
	probe.Body.Close()
	if probe.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("arrivals at the controller: status %d, want 307", probe.StatusCode)
	}
	loc := probe.Header.Get("Location")
	if !strings.HasSuffix(loc, "/v1/sessions/mig-1/arrivals") {
		t.Fatalf("redirect Location = %q", loc)
	}

	// First half of the stream: the default client follows the 307 and
	// replays the bytes.Reader body at the owning worker.
	feed := func(js []job.Job) {
		t.Helper()
		resp, err := http.Post(ctrl.URL+"/v1/sessions/mig-1/arrivals", "application/x-ndjson",
			bytes.NewReader(job.AppendNDJSON(nil, js)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ack struct {
			Accepted int    `json:"accepted"`
			Error    string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || ack.Accepted != len(js) {
			t.Fatalf("ingest: status %d accepted %d/%d err %q", resp.StatusCode, ack.Accepted, len(js), ack.Error)
		}
	}
	feed(in.Jobs[:cut])

	// Migrate mid-stream to the other worker, through the HTTP surface.
	target := "w2"
	if home == "w2" {
		target = "w1"
	}
	mresp := postJSON(t, ctrl.URL+"/v1/cluster/move", map[string]string{"tenant": "mig-1", "to": target})
	if mresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(mresp.Body)
		t.Fatalf("move: status %d: %s", mresp.StatusCode, b)
	}
	mresp.Body.Close()
	if got := c.Tenants()["mig-1"]; got != target {
		t.Fatalf("after move, placement = %q, want %q", got, target)
	}

	// The tenant serves at its new home through the same client-visible
	// URL — and the rest of the stream lands there.
	sresp, err := http.Get(ctrl.URL + "/v1/sessions/mig-1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot after move: status %d", sresp.StatusCode)
	}
	feed(in.Jobs[cut:])

	// Fleet observability: both workers alive, the merged arrivals
	// counter sees the whole stream no matter where each half landed.
	fm, err := http.Get(ctrl.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fleet, _ := io.ReadAll(fm.Body)
	fm.Body.Close()
	for _, want := range []string{
		"schedd_cluster_nodes_alive 2",
		"schedd_fleet_arrivals_total 140",
		"schedd_fleet_sessions_live 1",
		"schedd_fleet_arrival_latency_seconds_count 140",
	} {
		if !strings.Contains(string(fleet), want) {
			t.Fatalf("fleet scrape missing %q:\n%s", want, fleet)
		}
	}

	// Close through the proxy and compare the relayed verified Result
	// byte-for-byte against an uninterrupted replay.
	req, err := http.NewRequest(http.MethodDelete, ctrl.URL+"/v1/sessions/mig-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(dresp.Body)
		t.Fatalf("proxied close: status %d: %s", dresp.StatusCode, b)
	}
	var closed struct {
		ID     string         `json:"id"`
		Result *engine.Result `json:"result"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&closed); err != nil {
		t.Fatal(err)
	}
	if closed.Result == nil {
		t.Fatal("close relayed no result")
	}
	wantRes, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both sides go through one JSON round-trip so float formatting is
	// identical; only wall-clock fields are masked.
	wantJSON, _ := json.Marshal(maskResult(wantRes[0]))
	var wantRT engine.Result
	if err := json.Unmarshal(wantJSON, &wantRT); err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(&wantRT)
	bj, _ := json.Marshal(maskResult(closed.Result))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("migrated cluster result differs from uninterrupted replay:\n%s\nvs\n%s", aj, bj)
	}
	if _, ok := c.Tenants()["mig-1"]; ok {
		t.Fatal("closed tenant still placed")
	}
}

// TestClusterRebalanceAfterJoin pins Rebalance: tenants created while
// one worker was alone spread onto a newcomer, each arriving via a
// real migration (WAL shipped, session adopted), and every one still
// serves through the controller afterwards.
func TestClusterRebalanceAfterJoin(t *testing.T) {
	c := NewController(Options{})
	c.Start(t.Context())
	ctrl := httptest.NewServer(NewHTTPHandler(c))
	defer ctrl.Close()

	w1 := newTestWorker(t, "w1", ctrl.URL)
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.2}
	tenants := []string{"rb-a", "rb-b", "rb-c", "rb-d", "rb-e", "rb-f"}
	for _, id := range tenants {
		resp := postJSON(t, ctrl.URL+"/v1/sessions", map[string]any{"id": id, "spec": spec})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
		in := workload.Poisson(workload.Config{N: 10, M: 1, Alpha: 2.2, Seed: 7, ValueScale: 2})
		ar, err := http.Post(ctrl.URL+"/v1/sessions/"+id+"/arrivals", "application/x-ndjson",
			bytes.NewReader(job.AppendNDJSON(nil, in.Jobs)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, ar.Body)
		ar.Body.Close()
	}

	w2 := newTestWorker(t, "w2", ctrl.URL)
	resp := postJSON(t, ctrl.URL+"/v1/cluster/rebalance", map[string]string{})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("rebalance: status %d: %s", resp.StatusCode, b)
	}
	var reb struct {
		Planned []string `json:"planned"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(reb.Planned) == 0 {
		t.Fatal("rebalance planned nothing onto the new worker")
	}
	waitMigrated(t, c)
	// Rebalance converged placement onto the ring, and moved tenants
	// really live on w2 now (adopted sessions, shipped WALs).
	placed := c.Tenants()
	movedToW2 := 0
	for _, id := range reb.Planned {
		if placed[id] == "w2" {
			movedToW2++
			if _, err := w2.host.Get(id); err != nil {
				t.Fatalf("moved tenant %s not live on w2: %v", id, err)
			}
			if _, err := w1.host.Get(id); !errors.Is(err, serve.ErrNotFound) {
				t.Fatalf("moved tenant %s still live on w1: %v", id, err)
			}
		}
	}
	if movedToW2 == 0 {
		t.Fatalf("no moved tenant landed on w2: planned=%v placed=%v", reb.Planned, placed)
	}
	// A second rebalance is a no-op: placement already matches the ring.
	resp2 := postJSON(t, ctrl.URL+"/v1/cluster/rebalance", map[string]string{})
	var reb2 struct {
		Planned []string `json:"planned"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&reb2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(reb2.Planned) != 0 {
		t.Fatalf("second rebalance planned %v", reb2.Planned)
	}
	// Every tenant still closes with a verified result through the
	// controller, wherever it ended up.
	for _, id := range tenants {
		req, _ := http.NewRequest(http.MethodDelete, ctrl.URL+"/v1/sessions/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("close %s after rebalance: status %d", id, dresp.StatusCode)
		}
	}
}
