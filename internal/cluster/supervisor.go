// The migration supervisor: the queue between deciding a tenant
// should move and actually moving it. Rebalance and Drain used to
// execute their plans inline on the request goroutine — one failed
// pull aborted the whole convergence, and nothing bounded how many
// multi-megabyte WAL transfers ran at once. Now the verbs enqueue and
// return, and the supervisor executes:
//
//   - bounded: at most Options.MaxMigrations migrations run
//     concurrently; the rest wait their turn,
//   - deadlined: each attempt runs under Options.MigrateTimeout, so a
//     hung worker costs one slot for one deadline, not forever,
//   - retried: a failed attempt backs off exponentially
//     (Options.RetryBase, doubling, capped, ±50% jitter so a herd of
//     retries against a recovering node spreads out),
//   - parked: after Options.MaxAttempts failures — or immediately on
//     a fencing rejection, which no retry can fix — the migration is
//     parked with its reason, surfaced in the topology, and stays
//     visible until a rebalance re-queues it.
//
// One job per tenant at a time: a tenant is either where it is or
// mid-flight to exactly one destination. Jobs survive controller
// crashes by proxy — not the queue itself, but the intent records
// Move journals; OpenController turns every open intent into a
// resolve job that commits or rolls back the interrupted transfer.
//
// The state machine per job:
//
//	queued -> running -> (gone: success)
//	                  -> waiting(backoff) -> queued
//	                  -> parked -> (rebalance) -> queued
package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Migration job states (MigrationInfo.State).
const (
	migQueued  = "queued"
	migRunning = "running"
	migWaiting = "waiting" // backing off between attempts
	migParked  = "parked"
)

// MigrationInfo is one queue entry in the progress endpoint.
type MigrationInfo struct {
	Tenant   string `json:"tenant"`
	From     string `json:"from,omitempty"`
	To       string `json:"to"`
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	Reason   string `json:"reason,omitempty"` // last failure
	// Resolve marks a crash-recovery job: committing or rolling back
	// an intent found open in the WAL rather than starting a transfer.
	Resolve bool `json:"resolve,omitempty"`
}

// MigrationCounts is the topology's one-line queue summary.
type MigrationCounts struct {
	Running int `json:"running"`
	Queued  int `json:"queued"`
	Waiting int `json:"waiting"`
	Parked  int `json:"parked"`
	// Done counts migrations completed since this controller started.
	Done uint64 `json:"done"`
}

// MigrationsProgress is the GET /v1/cluster/migrations body.
type MigrationsProgress struct {
	Counts MigrationCounts `json:"counts"`
	Jobs   []MigrationInfo `json:"jobs,omitempty"`
}

type migJob struct {
	tenant, from, to string
	resolve          bool
	state            string
	attempts         int
	notBefore        time.Time
	reason           string
}

type supervisor struct {
	c *Controller

	mu      sync.Mutex
	jobs    map[string]*migJob
	running int
	done    uint64
	started bool

	wake chan struct{}
	quit chan struct{}
	dead chan struct{}
}

func newSupervisor(c *Controller) *supervisor {
	return &supervisor{
		c:    c,
		jobs: make(map[string]*migJob),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		dead: make(chan struct{}),
	}
}

// enqueue adds a migration (or intent-resolve) job for a tenant,
// deduplicating: a tenant already queued, running or waiting keeps
// its existing job. Parked jobs are superseded — enqueueing is the
// retry. Reports whether a job was added.
func (s *supervisor) enqueue(tenant, from, to string, resolve bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[tenant]; ok && j.state != migParked {
		return false
	}
	s.jobs[tenant] = &migJob{tenant: tenant, from: from, to: to, resolve: resolve, state: migQueued}
	s.kick()
	return true
}

// kick wakes the dispatcher (never blocks). s.mu held.
func (s *supervisor) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// start launches the dispatcher; idempotent. The supervisor stops
// when ctx ends or stopWait is called.
func (s *supervisor) start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.dispatch(ctx)
}

func (s *supervisor) stopWait() {
	s.mu.Lock()
	started := s.started
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	s.mu.Unlock()
	if started {
		<-s.dead
	}
}

// dispatch is the scheduler loop: launch due jobs while slots remain,
// sleep until the next backoff expires or something wakes it.
func (s *supervisor) dispatch(ctx context.Context) {
	defer close(s.dead)
	for {
		s.mu.Lock()
		now := s.c.opt.Now()
		var nextDue time.Time
		var launch []*migJob
		// Deterministic launch order: oldest-state first by tenant so
		// tests (and operators reading the queue) see a stable order.
		var due []*migJob
		for _, j := range s.jobs {
			switch j.state {
			case migQueued:
				due = append(due, j)
			case migWaiting:
				if !j.notBefore.After(now) {
					due = append(due, j)
				} else if nextDue.IsZero() || j.notBefore.Before(nextDue) {
					nextDue = j.notBefore
				}
			}
		}
		sort.Slice(due, func(i, k int) bool { return due[i].tenant < due[k].tenant })
		for _, j := range due {
			if s.running >= s.c.opt.MaxMigrations {
				break
			}
			j.state = migRunning
			s.running++
			launch = append(launch, j)
		}
		s.mu.Unlock()
		for _, j := range launch {
			go s.run(ctx, j)
		}

		var timer <-chan time.Time
		if !nextDue.IsZero() {
			d := nextDue.Sub(s.c.opt.Now())
			if d < time.Millisecond {
				d = time.Millisecond
			}
			t := time.NewTimer(d)
			timer = t.C
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-s.quit:
				t.Stop()
				return
			case <-s.wake:
				t.Stop()
			case <-timer:
			}
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-s.quit:
			return
		case <-s.wake:
		}
	}
}

// run executes one attempt of one job under the migration deadline
// and files the outcome.
func (s *supervisor) run(ctx context.Context, j *migJob) {
	actx, cancel := context.WithTimeout(ctx, s.c.opt.MigrateTimeout)
	var err error
	if j.resolve {
		err = s.c.resolveIntent(actx, Intent{Tenant: j.tenant, From: j.from, To: j.to})
	} else {
		err = s.c.Move(actx, j.tenant, j.to)
	}
	cancel()

	var park *ParkedMigration
	s.mu.Lock()
	s.running--
	switch {
	case err == nil, errors.Is(err, ErrUnknownTenant):
		// Success — or the tenant closed while queued, which is the
		// same thing: nothing left to move.
		delete(s.jobs, j.tenant)
		s.done++
	case errors.Is(err, ErrFenced):
		// Non-retryable: a newer controller owns the cluster; no retry
		// under this epoch can ever land. Park with the reason — a
		// rebalance under the surviving controller re-queues what
		// still needs moving.
		j.state = migParked
		j.attempts++
		j.reason = err.Error()
		park = &ParkedMigration{Tenant: j.tenant, To: j.to, Reason: j.reason, Attempts: j.attempts}
	default:
		j.attempts++
		j.reason = err.Error()
		if j.attempts >= s.c.opt.MaxAttempts {
			j.state = migParked
			park = &ParkedMigration{Tenant: j.tenant, To: j.to, Reason: j.reason, Attempts: j.attempts}
		} else {
			j.state = migWaiting
			j.notBefore = s.c.opt.Now().Add(backoff(s.c.opt.RetryBase, j.attempts))
		}
	}
	s.kick()
	s.mu.Unlock()
	if park != nil {
		// Outside s.mu: park journals under the controller mutex, and
		// no lock order between the two may exist.
		s.c.park(*park)
	}
}

// backoff is the retry delay after the n-th failed attempt (n >= 1):
// base doubling per attempt, capped at 10s, jittered ±50% so retries
// against a shared recovering node decorrelate.
func backoff(base time.Duration, n int) time.Duration {
	d := base << (n - 1)
	if d > 10*time.Second || d <= 0 {
		d = 10 * time.Second
	}
	// Jitter in [0.5d, 1.5d). Not crypto, not seeded for replay: pure
	// decorrelation.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// counts summarizes the queue.
func (s *supervisor) counts() MigrationCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countsLocked()
}

func (s *supervisor) countsLocked() MigrationCounts {
	mc := MigrationCounts{Done: s.done}
	for _, j := range s.jobs {
		switch j.state {
		case migQueued:
			mc.Queued++
		case migRunning:
			mc.Running++
		case migWaiting:
			mc.Waiting++
		case migParked:
			mc.Parked++
		}
	}
	return mc
}

// progress snapshots the queue for GET /v1/cluster/migrations.
func (s *supervisor) progress() MigrationsProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := MigrationsProgress{Counts: s.countsLocked()}
	for _, j := range s.jobs {
		p.Jobs = append(p.Jobs, MigrationInfo{
			Tenant: j.tenant, From: j.from, To: j.to, State: j.state,
			Attempts: j.attempts, Reason: j.reason, Resolve: j.resolve,
		})
	}
	sort.Slice(p.Jobs, func(i, k int) bool { return p.Jobs[i].Tenant < p.Jobs[k].Tenant })
	return p
}
