// The worker side of the cluster: today's serve.Host unchanged, plus
// the node endpoints migration needs and the agent loop that keeps
// the controller's lease fed.
//
// Node endpoints (mounted next to the serve API):
//
//	GET    /v1/node/export?tenant=X         detach the tenant and stream its WAL
//	POST   /v1/node/pull?tenant=X&from=URL  pull a tenant from another node and adopt it
//	POST   /v1/node/adopt?tenant=X          (re-)attach a tenant from the local WAL
//	DELETE /v1/node/data?tenant=X           drop a detached tenant's WAL state
//	GET    /v1/node/stats                   JSON stats incl. the exact latency histogram
//
// Export streams with a 200 already committed, so a mid-stream failure
// cannot change the status — that is fine by design: the stream's CRC
// framing means the *importer* is the integrity gate, and a truncated
// or damaged transfer is refused there, atomically.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/client"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/wal"
)

// pullClient carries the migration pull path's export fetches: capped
// backoff with jitter over a private transport, shared by every pull
// this process serves. A 30s attempt budget covers a large tenant's
// WAL stream.
var pullClient = client.New(client.Config{AttemptTimeout: 30 * time.Second})

// NodeStats is one worker's stat snapshot: the counters the fleet
// view aggregates, with the latency histogram in its exact wire form
// so the controller's merge loses nothing.
type NodeStats struct {
	Node         string          `json:"node"`
	SessionsLive int64           `json:"sessionsLive"`
	Backlog      int             `json:"backlog"`
	Arrivals     uint64          `json:"arrivals"`
	Dedup        uint64          `json:"dedup,omitempty"`
	Shed         uint64          `json:"shed,omitempty"`
	Latency      stats.Histogram `json:"latency"`
}

// NodeConfig wires a worker into a cluster.
type NodeConfig struct {
	// Name is the worker's stable identity; reusing a name across
	// restarts is what makes rejoin-reconciliation work.
	Name string
	// Advertise is the base URL peers reach this worker at.
	Advertise string
	// Controller is the controller's base URL (the first entry of the
	// failover list; joins and heartbeats extend it with the standbys
	// the controller advertises).
	Controller string
	// Client issues the agent's calls (default http.DefaultClient).
	Client *http.Client
	// Fence is the worker's controller-epoch fence, shared with
	// NewNodeHandler so the agent's observations (join/heartbeat
	// responses) govern the node endpoints. Defaults to a fresh fence.
	Fence *EpochFence
}

// NewNodeHandler mounts the node endpoints over the serve API. fence
// (nil for an unfenced, single-controller setup) guards every request
// that carries controller fencing headers: a deposed controller's
// migration verbs are refused with 403.
func NewNodeHandler(name string, h *serve.Host, st *wal.Store, fence *EpochFence) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(h))
	mux.HandleFunc("GET /v1/node/export", func(w http.ResponseWriter, r *http.Request) {
		handleExport(h, st, w, r)
	})
	mux.HandleFunc("POST /v1/node/pull", func(w http.ResponseWriter, r *http.Request) {
		handlePull(h, st, w, r)
	})
	mux.HandleFunc("POST /v1/node/adopt", func(w http.ResponseWriter, r *http.Request) {
		handleAdopt(h, w, r)
	})
	mux.HandleFunc("DELETE /v1/node/data", func(w http.ResponseWriter, r *http.Request) {
		handleDrop(st, w, r)
	})
	mux.HandleFunc("GET /v1/node/stats", func(w http.ResponseWriter, r *http.Request) {
		m := h.Metrics()
		writeNodeJSON(w, http.StatusOK, NodeStats{
			Node:         name,
			SessionsLive: m.SessionsLive(),
			Backlog:      h.Backlog(),
			Arrivals:     m.Arrivals(),
			Dedup:        m.DedupSuppressed(),
			Shed:         m.Sheds(),
			Latency:      m.Latency(),
		})
	})
	if fence == nil {
		return mux
	}
	return fenceMiddleware(fence, mux)
}

func writeNodeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeNodeErr(w http.ResponseWriter, status int, err error) {
	writeNodeJSON(w, status, map[string]string{"error": err.Error()})
}

func tenantParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	t := r.URL.Query().Get("tenant")
	if t == "" {
		writeNodeErr(w, http.StatusBadRequest, errors.New("missing tenant parameter"))
		return "", false
	}
	return t, true
}

// handleExport is the source half of a migration: detach the tenant
// (idempotent — a retry after a failed pull finds it already
// detached) and stream its WAL. After this the tenant serves nowhere
// on this node until re-adopted or dropped.
func handleExport(h *serve.Host, st *wal.Store, w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	if err := h.Detach(r.Context(), tenant); err != nil && !errors.Is(err, serve.ErrNotFound) {
		writeNodeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := st.Export(tenant, w); err != nil {
		// Either the tenant never existed here (the 404 case, headers
		// not yet written) or the stream died mid-flight (the importer
		// will refuse the truncation).
		if r.Context().Err() == nil {
			writeNodeErr(w, http.StatusNotFound, err)
		}
	}
}

// handlePull is the target half: fetch the tenant's WAL from the
// source node, import it atomically, and adopt the session live.
func handlePull(h *serve.Host, st *wal.Store, w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	from := r.URL.Query().Get("from")
	if from == "" {
		writeNodeErr(w, http.StatusBadRequest, errors.New("missing from parameter"))
		return
	}
	// The export fetch rides the resilient client: a reset or stalled
	// source is retried with backoff, which is safe because export is
	// idempotent on a detached tenant and the import's CRC framing
	// refuses any truncated transfer atomically.
	resp, err := pullClient.Do(r.Context(), http.MethodGet,
		from+"/v1/node/export?tenant="+tenant, nil, nil)
	if err != nil {
		writeNodeErr(w, http.StatusBadGateway, fmt.Errorf("fetching export from %s: %w", from, err))
		return
	}
	if resp.Status != http.StatusOK {
		writeNodeErr(w, http.StatusBadGateway, fmt.Errorf("source %s refused export: status %d", from, resp.Status))
		return
	}
	if err := st.Import(tenant, bytes.NewReader(resp.Body)); err != nil {
		writeNodeErr(w, http.StatusConflict, err)
		return
	}
	if _, err := h.Adopt(tenant); err != nil {
		writeNodeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": tenant, "pulled": from})
}

// handleAdopt re-attaches a tenant from the local WAL — the failure
// recovery path after a pull that never completed. Already live is
// success: adopt is about the end state, not the transition.
func handleAdopt(h *serve.Host, w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	if _, err := h.Get(tenant); err == nil {
		writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": tenant})
		return
	}
	if _, err := h.Adopt(tenant); err != nil {
		writeNodeErr(w, http.StatusNotFound, err)
		return
	}
	writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": tenant})
}

// handleDrop deletes a detached tenant's WAL state — the source's
// final migration step, or a purge order at rejoin.
func handleDrop(st *wal.Store, w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	if err := st.Remove(tenant); err != nil {
		writeNodeErr(w, http.StatusConflict, err)
		return
	}
	writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": tenant, "removed": "true"})
}

// Agent is the worker's control-plane loop: join with the recovered
// tenant list, purge what the controller says moved away, then
// heartbeat until the context ends; a controller that forgot us (a
// restart) triggers a rejoin. The agent holds a failover list — the
// controller it joined plus every standby that controller advertises
// — and rotates to the next entry when the current one goes silent,
// so a standby takeover needs no worker configuration at all.
type Agent struct {
	cfg   NodeConfig
	host  *serve.Host
	store *wal.Store
	lease time.Duration
	urls  []string // failover list; urls[cur] is the reigning controller
	cur   int
}

// NewAgent builds a worker agent.
func NewAgent(cfg NodeConfig, h *serve.Host, st *wal.Store) *Agent {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Fence == nil {
		cfg.Fence = NewEpochFence()
	}
	return &Agent{cfg: cfg, host: h, store: st, urls: []string{cfg.Controller}}
}

// Fence returns the agent's controller-epoch fence — hand it to
// NewNodeHandler so agent observations govern the node endpoints.
func (a *Agent) Fence() *EpochFence { return a.cfg.Fence }

// joinRequest is the body of POST /v1/cluster/join.
type joinRequest struct {
	Name    string   `json:"name"`
	Addr    string   `json:"addr"`
	Tenants []string `json:"tenants,omitempty"`
}

// joinResponse acknowledges a join or a heartbeat: the lease, the
// purge orders (join only), the controller's fencing reign, and the
// standby list the agent fails over to.
type joinResponse struct {
	LeaseMs    int64    `json:"leaseMs"`
	Purge      []string `json:"purge,omitempty"`
	Epoch      uint64   `json:"epoch,omitempty"`
	Controller string   `json:"controller,omitempty"`
	Standbys   []string `json:"standbys,omitempty"`
}

// observe folds a response's reign and standby list into the agent:
// the fence learns the epoch, and the failover list becomes [current
// controller, its standbys...].
func (a *Agent) observe(jr joinResponse) {
	a.cfg.Fence.Observe(jr.Epoch, jr.Controller)
	urls := []string{a.urls[a.cur]}
	for _, s := range jr.Standbys {
		if s != urls[0] {
			urls = append(urls, s)
		}
	}
	a.urls, a.cur = urls, 0
}

// rotate advances to the next controller in the failover list.
func (a *Agent) rotate() { a.cur = (a.cur + 1) % len(a.urls) }

// Join registers with the current controller and executes its purge
// orders. It returns the granted lease. On failure the agent has
// already rotated to the next failover candidate, so the caller's
// retry tries somewhere new.
func (a *Agent) Join(ctx context.Context) (time.Duration, error) {
	body, err := json.Marshal(joinRequest{Name: a.cfg.Name, Addr: a.cfg.Advertise, Tenants: a.host.SessionIDs()})
	if err != nil {
		return 0, err
	}
	resp, err := a.post(ctx, "/v1/cluster/join", body, 10*time.Second)
	if err != nil {
		a.rotate()
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		a.rotate()
		return 0, nodeErr("join", resp)
	}
	var jr joinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return 0, fmt.Errorf("cluster: join response: %w", err)
	}
	a.observe(jr)
	for _, tenant := range jr.Purge {
		// This tenant moved to another node while we were dead; our copy
		// is stale history. Detach (sealing its applier) and drop it.
		if err := a.host.Detach(ctx, tenant); err != nil && !errors.Is(err, serve.ErrNotFound) {
			return 0, fmt.Errorf("cluster: purging %q: %w", tenant, err)
		}
		if err := a.store.Remove(tenant); err != nil {
			return 0, fmt.Errorf("cluster: purging %q: %w", tenant, err)
		}
	}
	a.lease = time.Duration(jr.LeaseMs) * time.Millisecond
	if a.lease <= 0 {
		a.lease = 5 * time.Second
	}
	return a.lease, nil
}

// post issues one bounded control call to the current controller.
func (a *Agent) post(ctx context.Context, path string, body []byte, timeout time.Duration) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.urls[a.cur]+path, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The cancel rides the body: callers close it promptly.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// hbTimeout bounds one heartbeat: a beat slower than the tick is a
// missed beat, so there is no point waiting longer than the interval
// (floored at 1s for tiny test leases).
func (a *Agent) hbTimeout() time.Duration {
	d := a.lease / 3
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Run joins and heartbeats at a third of the lease until ctx ends.
// A heartbeat the controller refuses (it restarted and forgot us)
// triggers a rejoin; a transient transport error is retried at the
// next tick — the lease absorbs it — but two consecutive failures
// rotate to the next controller in the failover list: that is the
// standby-takeover path, driven by the same silence the standby saw.
func (a *Agent) Run(ctx context.Context) error {
	if _, err := a.Join(ctx); err != nil {
		return err
	}
	hb, err := json.Marshal(joinRequest{Name: a.cfg.Name})
	if err != nil {
		return err
	}
	t := time.NewTicker(a.lease / 3)
	defer t.Stop()
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		resp, err := a.post(ctx, "/v1/cluster/heartbeat", hb, a.hbTimeout())
		if err != nil {
			fails++
			if fails >= 2 && len(a.urls) > 1 {
				a.rotate()
				if _, err := a.Join(ctx); err == nil {
					fails = 0
				} else if ctx.Err() != nil {
					return ctx.Err()
				}
			}
			continue
		}
		var jr joinResponse
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&jr)
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case code == http.StatusOK:
			fails = 0
			if derr == nil {
				a.observe(jr)
			}
		case code == http.StatusNotFound:
			// The controller forgot us (a restart): rejoin right here.
			if _, err := a.Join(ctx); err != nil && ctx.Err() != nil {
				return ctx.Err()
			}
		default:
			// A standby answering 503, a proxy in the way — either way
			// not a renewal. Treat like silence.
			fails++
			if fails >= 2 && len(a.urls) > 1 {
				a.rotate()
				if _, err := a.Join(ctx); err == nil {
					fails = 0
				} else if ctx.Err() != nil {
					return ctx.Err()
				}
			}
		}
	}
}
