// The worker side of the cluster: today's serve.Host unchanged, plus
// the node endpoints migration needs and the agent loop that keeps
// the controller's lease fed.
//
// Node endpoints (mounted next to the serve API):
//
//	GET    /v1/node/export?tenant=X         detach the tenant and stream its WAL
//	POST   /v1/node/pull?tenant=X&from=URL  pull a tenant from another node and adopt it
//	POST   /v1/node/adopt?tenant=X          (re-)attach a tenant from the local WAL
//	DELETE /v1/node/data?tenant=X           drop a detached tenant's WAL state
//	GET    /v1/node/stats                   JSON stats incl. the exact latency histogram
//
// Export streams with a 200 already committed, so a mid-stream failure
// cannot change the status — that is fine by design: the stream's CRC
// framing means the *importer* is the integrity gate, and a truncated
// or damaged transfer is refused there, atomically.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/wal"
)

// NodeStats is one worker's stat snapshot: the counters the fleet
// view aggregates, with the latency histogram in its exact wire form
// so the controller's merge loses nothing.
type NodeStats struct {
	Node         string          `json:"node"`
	SessionsLive int64           `json:"sessionsLive"`
	Backlog      int             `json:"backlog"`
	Arrivals     uint64          `json:"arrivals"`
	Latency      stats.Histogram `json:"latency"`
}

// NodeConfig wires a worker into a cluster.
type NodeConfig struct {
	// Name is the worker's stable identity; reusing a name across
	// restarts is what makes rejoin-reconciliation work.
	Name string
	// Advertise is the base URL peers reach this worker at.
	Advertise string
	// Controller is the controller's base URL.
	Controller string
	// Client issues the agent's calls (default http.DefaultClient).
	Client *http.Client
}

// NewNodeHandler mounts the node endpoints over the serve API.
func NewNodeHandler(name string, h *serve.Host, st *wal.Store) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(h))
	mux.HandleFunc("GET /v1/node/export", func(w http.ResponseWriter, r *http.Request) {
		handleExport(h, st, w, r)
	})
	mux.HandleFunc("POST /v1/node/pull", func(w http.ResponseWriter, r *http.Request) {
		handlePull(h, st, w, r)
	})
	mux.HandleFunc("POST /v1/node/adopt", func(w http.ResponseWriter, r *http.Request) {
		handleAdopt(h, w, r)
	})
	mux.HandleFunc("DELETE /v1/node/data", func(w http.ResponseWriter, r *http.Request) {
		handleDrop(st, w, r)
	})
	mux.HandleFunc("GET /v1/node/stats", func(w http.ResponseWriter, r *http.Request) {
		m := h.Metrics()
		writeNodeJSON(w, http.StatusOK, NodeStats{
			Node:         name,
			SessionsLive: m.SessionsLive(),
			Backlog:      h.Backlog(),
			Arrivals:     m.Arrivals(),
			Latency:      m.Latency(),
		})
	})
	return mux
}

func writeNodeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeNodeErr(w http.ResponseWriter, status int, err error) {
	writeNodeJSON(w, status, map[string]string{"error": err.Error()})
}

func tenantParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	t := r.URL.Query().Get("tenant")
	if t == "" {
		writeNodeErr(w, http.StatusBadRequest, errors.New("missing tenant parameter"))
		return "", false
	}
	return t, true
}

// handleExport is the source half of a migration: detach the tenant
// (idempotent — a retry after a failed pull finds it already
// detached) and stream its WAL. After this the tenant serves nowhere
// on this node until re-adopted or dropped.
func handleExport(h *serve.Host, st *wal.Store, w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	if err := h.Detach(r.Context(), tenant); err != nil && !errors.Is(err, serve.ErrNotFound) {
		writeNodeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := st.Export(tenant, w); err != nil {
		// Either the tenant never existed here (the 404 case, headers
		// not yet written) or the stream died mid-flight (the importer
		// will refuse the truncation).
		if r.Context().Err() == nil {
			writeNodeErr(w, http.StatusNotFound, err)
		}
	}
}

// handlePull is the target half: fetch the tenant's WAL from the
// source node, import it atomically, and adopt the session live.
func handlePull(h *serve.Host, st *wal.Store, w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	from := r.URL.Query().Get("from")
	if from == "" {
		writeNodeErr(w, http.StatusBadRequest, errors.New("missing from parameter"))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		from+"/v1/node/export?tenant="+tenant, nil)
	if err != nil {
		writeNodeErr(w, http.StatusBadRequest, err)
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		writeNodeErr(w, http.StatusBadGateway, fmt.Errorf("fetching export from %s: %w", from, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		writeNodeErr(w, http.StatusBadGateway, fmt.Errorf("source %s refused export: status %d", from, resp.StatusCode))
		return
	}
	if err := st.Import(tenant, resp.Body); err != nil {
		writeNodeErr(w, http.StatusConflict, err)
		return
	}
	if _, err := h.Adopt(tenant); err != nil {
		writeNodeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": tenant, "pulled": from})
}

// handleAdopt re-attaches a tenant from the local WAL — the failure
// recovery path after a pull that never completed. Already live is
// success: adopt is about the end state, not the transition.
func handleAdopt(h *serve.Host, w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	if _, err := h.Get(tenant); err == nil {
		writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": tenant})
		return
	}
	if _, err := h.Adopt(tenant); err != nil {
		writeNodeErr(w, http.StatusNotFound, err)
		return
	}
	writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": tenant})
}

// handleDrop deletes a detached tenant's WAL state — the source's
// final migration step, or a purge order at rejoin.
func handleDrop(st *wal.Store, w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	if err := st.Remove(tenant); err != nil {
		writeNodeErr(w, http.StatusConflict, err)
		return
	}
	writeNodeJSON(w, http.StatusOK, map[string]string{"tenant": tenant, "removed": "true"})
}

// Agent is the worker's control-plane loop: join with the recovered
// tenant list, purge what the controller says moved away, then
// heartbeat until the context ends; a controller that forgot us (a
// restart) triggers a rejoin.
type Agent struct {
	cfg   NodeConfig
	host  *serve.Host
	store *wal.Store
	lease time.Duration
}

// NewAgent builds a worker agent.
func NewAgent(cfg NodeConfig, h *serve.Host, st *wal.Store) *Agent {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	return &Agent{cfg: cfg, host: h, store: st}
}

// joinRequest is the body of POST /v1/cluster/join.
type joinRequest struct {
	Name    string   `json:"name"`
	Addr    string   `json:"addr"`
	Tenants []string `json:"tenants,omitempty"`
}

// joinResponse acknowledges a join.
type joinResponse struct {
	LeaseMs int64    `json:"leaseMs"`
	Purge   []string `json:"purge,omitempty"`
}

// Join registers with the controller and executes its purge orders.
// It returns the granted lease.
func (a *Agent) Join(ctx context.Context) (time.Duration, error) {
	body, err := json.Marshal(joinRequest{Name: a.cfg.Name, Addr: a.cfg.Advertise, Tenants: a.host.SessionIDs()})
	if err != nil {
		return 0, err
	}
	resp, err := a.post(ctx, "/v1/cluster/join", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nodeErr("join", resp)
	}
	var jr joinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return 0, fmt.Errorf("cluster: join response: %w", err)
	}
	for _, tenant := range jr.Purge {
		// This tenant moved to another node while we were dead; our copy
		// is stale history. Detach (sealing its applier) and drop it.
		if err := a.host.Detach(ctx, tenant); err != nil && !errors.Is(err, serve.ErrNotFound) {
			return 0, fmt.Errorf("cluster: purging %q: %w", tenant, err)
		}
		if err := a.store.Remove(tenant); err != nil {
			return 0, fmt.Errorf("cluster: purging %q: %w", tenant, err)
		}
	}
	a.lease = time.Duration(jr.LeaseMs) * time.Millisecond
	if a.lease <= 0 {
		a.lease = 5 * time.Second
	}
	return a.lease, nil
}

func (a *Agent) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Controller+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return a.cfg.Client.Do(req)
}

// Run joins and heartbeats at a third of the lease until ctx ends.
// A heartbeat the controller refuses (it restarted and forgot us)
// triggers a rejoin; transient transport errors are retried at the
// next tick — the lease absorbs them.
func (a *Agent) Run(ctx context.Context) error {
	if _, err := a.Join(ctx); err != nil {
		return err
	}
	hb, err := json.Marshal(joinRequest{Name: a.cfg.Name})
	if err != nil {
		return err
	}
	t := time.NewTicker(a.lease / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		resp, err := a.post(ctx, "/v1/cluster/heartbeat", hb)
		if err != nil {
			continue // transient; the lease absorbs a missed beat or two
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusNotFound {
			if _, err := a.Join(ctx); err != nil && ctx.Err() != nil {
				return ctx.Err()
			}
		}
	}
}
