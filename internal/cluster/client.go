// The controller's node-facing client: small JSON/stream calls against
// the worker endpoints node.go serves. Every call carries a deadline —
// Options.CallTimeout unless the caller's ctx already has one (the
// supervisor's migration deadline does) — and the controller's fencing
// headers, so a hung worker costs a bounded wait and a deposed
// controller's calls are refused at the door. Bodies are always
// drained and closed so connections recycle.

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// statusError is a non-2xx node reply: the status survives so callers
// can distinguish "tenant not there" (a clean 404 probe answer) from
// transport trouble, and a fencing 403 unwraps to ErrFenced.
type statusError struct {
	op     string
	status int
	msg    string
	fenced bool
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("cluster: %s: %s (status %d)", e.op, e.msg, e.status)
	}
	return fmt.Sprintf("cluster: %s: status %d", e.op, e.status)
}

func (e *statusError) Unwrap() error {
	if e.fenced {
		return ErrFenced
	}
	return nil
}

// isNodeStatus reports whether err is a node reply with this status.
func isNodeStatus(err error, status int) bool {
	var se *statusError
	return errors.As(err, &se) && se.status == status
}

// nodeErr extracts the {"error": ...} payload of a non-2xx node reply.
func nodeErr(op string, resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &statusError{op: op, status: resp.StatusCode, msg: msg,
		fenced: resp.Header.Get(fencedHeader) != ""}
}

// callCtx bounds a control call: the caller's deadline if it has one,
// Options.CallTimeout otherwise.
func (c *Controller) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.opt.CallTimeout)
}

func (c *Controller) nodePost(ctx context.Context, addr, path string, q url.Values) error {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	u := addr + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	c.fenceHeaders(req)
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return nodeErr("POST "+path, resp)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// nodePull asks the target node to pull a tenant from the source node.
// The caller's ctx is expected to carry the migration deadline.
func (c *Controller) nodePull(ctx context.Context, targetAddr, tenant, fromAddr string) error {
	return c.nodePost(ctx, targetAddr, "/v1/node/pull", url.Values{"tenant": {tenant}, "from": {fromAddr}})
}

// nodeAdopt asks a node to (re-)attach a tenant from its local WAL.
func (c *Controller) nodeAdopt(ctx context.Context, addr, tenant string) error {
	return c.nodePost(ctx, addr, "/v1/node/adopt", url.Values{"tenant": {tenant}})
}

// nodeDrop asks a node to delete a detached tenant's local WAL state.
func (c *Controller) nodeDrop(ctx context.Context, addr, tenant string) error {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		addr+"/v1/node/data?"+url.Values{"tenant": {tenant}}.Encode(), nil)
	if err != nil {
		return err
	}
	c.fenceHeaders(req)
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return nodeErr("DELETE /v1/node/data", resp)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// nodeStats scrapes one node's stats endpoint.
func (c *Controller) nodeStats(ctx context.Context, addr string) (NodeStats, error) {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	var ns NodeStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/node/stats", nil)
	if err != nil {
		return ns, err
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return ns, err
	}
	if resp.StatusCode != http.StatusOK {
		return ns, nodeErr("GET /v1/node/stats", resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&ns)
	resp.Body.Close()
	return ns, err
}
