// The controller's node-facing client: small JSON/stream calls against
// the worker endpoints node.go serves. All calls honor the caller's
// ctx; bodies are always drained and closed so connections recycle.

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// nodeErr extracts the {"error": ...} payload of a non-2xx node reply.
func nodeErr(op string, resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("cluster: %s: %s (status %d)", op, e.Error, resp.StatusCode)
	}
	return fmt.Errorf("cluster: %s: status %d: %s", op, resp.StatusCode, strings.TrimSpace(string(body)))
}

func (c *Controller) nodePost(ctx context.Context, addr, path string, q url.Values) error {
	u := addr + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return nodeErr("POST "+path, resp)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// nodePull asks the target node to pull a tenant from the source node.
func (c *Controller) nodePull(ctx context.Context, targetAddr, tenant, fromAddr string) error {
	return c.nodePost(ctx, targetAddr, "/v1/node/pull", url.Values{"tenant": {tenant}, "from": {fromAddr}})
}

// nodeAdopt asks a node to (re-)attach a tenant from its local WAL.
func (c *Controller) nodeAdopt(ctx context.Context, addr, tenant string) error {
	return c.nodePost(ctx, addr, "/v1/node/adopt", url.Values{"tenant": {tenant}})
}

// nodeDrop asks a node to delete a detached tenant's local WAL state.
func (c *Controller) nodeDrop(ctx context.Context, addr, tenant string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		addr+"/v1/node/data?"+url.Values{"tenant": {tenant}}.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return nodeErr("DELETE /v1/node/data", resp)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// nodeStats scrapes one node's stats endpoint.
func (c *Controller) nodeStats(ctx context.Context, addr string) (NodeStats, error) {
	var ns NodeStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/node/stats", nil)
	if err != nil {
		return ns, err
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return ns, err
	}
	if resp.StatusCode != http.StatusOK {
		return ns, nodeErr("GET /v1/node/stats", resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&ns)
	resp.Body.Close()
	return ns, err
}
