// The placement ring: consistent hashing of tenants onto worker
// nodes. Each node contributes VNodes virtual points (fnv-1a of
// "name#i") on a 64-bit circle; a tenant hashes to a point and walks
// clockwise to the first node point. Virtual nodes smooth the split —
// with enough of them each node owns many small arcs, so adding or
// removing one node only re-homes the tenants in its arcs instead of
// reshuffling the world.
//
// The ring decides where *new* tenants go. Existing tenants move only
// by explicit migration: the controller's placement map is the source
// of truth for where a tenant lives, and Rebalance computes the
// ring-ideal home to drive migrations toward it. That separation is
// deliberate — a ring change must never silently re-route traffic for
// a tenant whose state still lives on its old node.

package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringPoint is one virtual node: a position on the hash circle owned
// by a named node.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring. Not safe for concurrent use; the
// controller guards it with its own lock.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
}

// NewRing builds an empty ring with the given virtual-node count per
// node (minimum 1; 64 is a good default).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	return &Ring{vnodes: vnodes}
}

func hash64(s string, i int) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	if i >= 0 {
		f.Write([]byte{'#'})
		f.Write([]byte(strconv.Itoa(i)))
	}
	return mix64(f.Sum64())
}

// mix64 is a finalizing avalanche (murmur3's fmix64): raw fnv-1a of
// short, similar strings ("n2#17") leaves the high bits correlated,
// which clumps virtual nodes into contiguous arcs and wrecks the
// balance the vnodes exist to provide. The mix spreads every input
// bit across the word.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a node's virtual points. Adding a present node is a
// no-op.
func (r *Ring) Add(node string) {
	for _, p := range r.points {
		if p.node == node {
			return
		}
	}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is
// a no-op.
func (r *Ring) Remove(node string) {
	keep := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Nodes returns the distinct node names on the ring, sorted.
func (r *Ring) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.points {
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct nodes.
func (r *Ring) Len() int { return len(r.Nodes()) }

// Lookup returns the node owning the tenant's position, or "" on an
// empty ring.
func (r *Ring) Lookup(tenant string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(tenant, -1)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point means the first point owns it
	}
	return r.points[i].node
}
