// Standby failover, in process: a standby tails the primary's state
// stream and mirrors it into its own WAL; when the primary goes
// silent past the lease it takes over with the mirrored placement
// intact and an epoch that outranks the dead primary's next boot.

package cluster

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestStandbyMirrorsAndTakesOver(t *testing.T) {
	lease := 400 * time.Millisecond
	primary, err := OpenController(Options{Lease: lease, DataDir: t.TempDir(), Advertise: "http://primary"})
	if err != nil {
		t.Fatal(err)
	}
	primary.Start(t.Context())
	psrv := httptest.NewServer(NewHTTPHandler(primary))

	standby, err := OpenController(Options{
		Lease: lease, DataDir: t.TempDir(),
		Advertise: "http://standby", Standby: psrv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	standby.Start(t.Context())
	if standby.IsPrimary() {
		t.Fatal("a -standby controller booted as primary")
	}

	// Mutations on the primary: two nodes, three tenants.
	primary.Join("n1", "http://n1", []string{"s-a"})
	primary.Join("n2", "http://n2", []string{"s-b", "s-c"})
	wantEpoch := primary.Epoch()

	sctx, scancel := context.WithCancel(t.Context())
	done := make(chan error, 1)
	go func() { done <- standby.RunStandby(sctx) }()
	defer scancel()

	// The standby mirrors the primary's state — epochs included.
	waitCond(t, "standby mirrored primary state", func() bool {
		st := standby.State()
		return st.Epoch == wantEpoch && len(st.Nodes) == 2 && len(st.Placement) == 3
	})
	// And the primary learned who is tailing it: the failover list its
	// join/heartbeat responses hand every worker.
	waitCond(t, "primary lists the standby", func() bool {
		sb := primary.Standbys()
		return len(sb) == 1 && sb[0] == "http://standby"
	})
	wantState, _ := json.Marshal(maskEpoch(primary.State()))

	// The primary dies without a word.
	psrv.CloseClientConnections()
	psrv.Close()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	// The standby takes over within the failover window.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunStandby: %v", err)
		}
	case <-time.After(10 * lease):
		t.Fatal("standby never took over")
	}
	if !standby.IsPrimary() {
		t.Fatal("takeover did not promote the standby")
	}
	// The mirrored placement survived the transition byte-identically.
	gotState, _ := json.Marshal(maskEpoch(standby.State()))
	if string(gotState) != string(wantState) {
		t.Fatalf("post-takeover state differs:\n got %s\nwant %s", gotState, wantState)
	}
	// The new reign outranks the dead primary's next boot (+1): the
	// takeover jumped +2.
	if got := standby.Epoch(); got != wantEpoch+2 {
		t.Fatalf("takeover epoch = %d, want %d", got, wantEpoch+2)
	}
	// A worker that saw the new reign fences the old one out.
	f := NewEpochFence()
	f.Observe(standby.Epoch(), standby.ID())
	if err := f.Admit(wantEpoch+1, "http://primary"); err == nil {
		t.Fatal("rebooted old primary admitted past the fence")
	}
}
