// Epoch fencing: how a worker tells its real controller from a ghost.
//
// Every controller reign has an epoch — recovered from its WAL and
// bumped on every boot, jumped past the primary's on a standby
// takeover. Controller-to-node calls carry the epoch and the
// controller's identity in headers; the worker's fence remembers the
// highest (epoch, id) pair it has ever been governed by (learned from
// join/heartbeat responses and from fenced calls themselves) and
// rejects anything older with 403 — so a deposed primary that wakes
// up mid-migration cannot detach, drop or overwrite tenants the new
// reign already rearranged. Ties on the epoch (possible when a failed
// primary restarts after exactly one takeover) break by identity:
// first reign seen at this worker wins, deterministically per worker.

package cluster

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// Fencing headers on controller-originated node calls.
const (
	epochHeader  = "X-Schedd-Epoch"
	ctlIDHeader  = "X-Schedd-Controller"
	fencedHeader = "X-Schedd-Fenced" // set on 403s the fence issues
)

// EpochFence is a worker's record of the newest controller reign it
// has observed. The zero value admits everything until an epoch is
// observed.
type EpochFence struct {
	mu    sync.Mutex
	epoch uint64
	id    string
}

// NewEpochFence returns an empty fence.
func NewEpochFence() *EpochFence { return &EpochFence{} }

// Observe raises the fence to (epoch, id) if it is newer than what is
// held. Called with join/heartbeat response data and by Admit.
func (f *EpochFence) Observe(epoch uint64, id string) {
	if epoch == 0 {
		return
	}
	f.mu.Lock()
	if epoch > f.epoch {
		f.epoch, f.id = epoch, id
	}
	f.mu.Unlock()
}

// Admit decides whether a call from (epoch, id) may act on this
// worker: yes if it is the held reign or a newer one (which also
// raises the fence), no if it is older — or the same epoch under a
// different identity, the restarted-twin tie, where the reign seen
// first keeps the worker.
func (f *EpochFence) Admit(epoch uint64, id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case epoch > f.epoch:
		f.epoch, f.id = epoch, id
		return nil
	case epoch == f.epoch && id == f.id:
		return nil
	default:
		return fmt.Errorf("%w: caller epoch %d (%s), worker governed by epoch %d (%s)",
			ErrFenced, epoch, id, f.epoch, f.id)
	}
}

// Current returns the held reign.
func (f *EpochFence) Current() (uint64, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch, f.id
}

// fenceMiddleware checks the fencing headers on every request that
// carries them; requests without (data-plane clients, operators
// poking a node directly) pass untouched.
func fenceMiddleware(f *EpochFence, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(epochHeader); v != "" {
			epoch, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeNodeErr(w, http.StatusBadRequest, fmt.Errorf("bad %s header: %w", epochHeader, err))
				return
			}
			if err := f.Admit(epoch, r.Header.Get(ctlIDHeader)); err != nil {
				w.Header().Set(fencedHeader, "1")
				writeNodeErr(w, http.StatusForbidden, err)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// fenceHeaders stamps the controller's reign onto a node-facing call.
func (c *Controller) fenceHeaders(req *http.Request) {
	c.mu.Lock()
	epoch := c.epoch
	c.mu.Unlock()
	req.Header.Set(epochHeader, strconv.FormatUint(epoch, 10))
	req.Header.Set(ctlIDHeader, c.id)
}
