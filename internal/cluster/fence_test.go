// Epoch-fence tests: a worker governed by a reign rejects older (and
// tied-but-different) controllers, admits newer ones, and the
// middleware turns a stale caller into a marked 403 while leaving
// unfenced traffic alone.

package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestEpochFenceAdmit(t *testing.T) {
	f := NewEpochFence()
	// The zero fence admits anything and adopts it.
	if err := f.Admit(3, "c-a"); err != nil {
		t.Fatal(err)
	}
	// The same reign keeps working.
	if err := f.Admit(3, "c-a"); err != nil {
		t.Fatal(err)
	}
	// An older epoch is a ghost.
	if err := f.Admit(2, "c-old"); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale epoch admitted: %v", err)
	}
	// A tied epoch under a different identity is the restarted twin:
	// first reign seen keeps the worker.
	if err := f.Admit(3, "c-b"); !errors.Is(err, ErrFenced) {
		t.Fatalf("tied twin admitted: %v", err)
	}
	// A newer reign takes over and raises the fence.
	if err := f.Admit(5, "c-b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Admit(3, "c-a"); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed reign re-admitted: %v", err)
	}
	// Observe never lowers.
	f.Observe(4, "c-x")
	if e, id := f.Current(); e != 5 || id != "c-b" {
		t.Fatalf("fence lowered to (%d, %s)", e, id)
	}
}

func TestFenceMiddleware(t *testing.T) {
	f := NewEpochFence()
	f.Observe(7, "c-new")
	h := fenceMiddleware(f, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))

	do := func(epoch, id string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/node/pull", nil)
		if epoch != "" {
			req.Header.Set(epochHeader, epoch)
			req.Header.Set(ctlIDHeader, id)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	// Unfenced traffic (data plane, operators) passes untouched.
	if rr := do("", ""); rr.Code != http.StatusNoContent {
		t.Fatalf("unfenced request: %d", rr.Code)
	}
	// The reigning controller passes.
	if rr := do("7", "c-new"); rr.Code != http.StatusNoContent {
		t.Fatalf("reigning controller refused: %d", rr.Code)
	}
	// A deposed controller gets a marked 403 the client maps to
	// ErrFenced.
	rr := do("6", "c-old")
	if rr.Code != http.StatusForbidden || rr.Header().Get(fencedHeader) == "" {
		t.Fatalf("stale controller: code %d, fenced header %q", rr.Code, rr.Header().Get(fencedHeader))
	}
	// A garbage epoch is a 400, not a fence verdict.
	if rr := do("not-a-number", "c"); rr.Code != http.StatusBadRequest {
		t.Fatalf("garbage epoch: %d", rr.Code)
	}
}
