// The standby controller: a second schedd -controller process that
// tails the primary's state stream (GET /v1/cluster/stream — NDJSON,
// one full ClusterState per line, sent on every mutation and at least
// every lease/3 as a liveness beat) and mirrors it into its own WAL.
// While the primary answers, the standby refuses mutations and points
// callers at the primary. When the primary falls silent past the
// lease, the standby takes over: it bumps the epoch past anything the
// dead primary could boot back up with, starts judging worker leases
// and supervising migrations, and re-resolves every migration intent
// the primary left open. Workers find it because every join and
// heartbeat response carries the current standby list — their agents
// fail over on the same silence that triggered the takeover.
//
// Split brain is bounded, not impossible: a partitioned-but-alive
// primary keeps serving reads and may attempt migrations, and those
// are what the epoch fence stops — every worker that has seen the new
// reign rejects the old one's calls with 403, which the old
// supervisor parks as permanently failed. Epoch arithmetic makes the
// common collision benign: a takeover jumps +2 while a reboot bumps
// +1, so the deposed primary's next boot still loses, and an exact
// tie (two takeovers vs. two reboots) breaks by first-reign-seen at
// each worker.

package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"
)

// failoverAfter is how much primary silence the standby tolerates
// before taking over: the lease, the same verdict workers get.
func (c *Controller) failoverAfter() time.Duration { return c.opt.Lease }

// RunStandby tails the primary until either the context ends (error
// returned) or the primary's lease lapses and this controller takes
// over (nil returned — the caller now runs a primary).
func (c *Controller) RunStandby(ctx context.Context) error {
	if c.opt.Standby == "" {
		return errors.New("cluster: RunStandby without Options.Standby")
	}
	last := c.opt.Now()
	for {
		c.tailPrimary(ctx, &last)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if c.opt.Now().Sub(last) > c.failoverAfter() {
			c.Takeover()
			return nil
		}
		// The stream dropped inside the grace window: reconnect fast,
		// the primary may just have restarted.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// tailPrimary holds one stream connection open, mirroring every state
// line, until the stream breaks or the watchdog (no line for a full
// failover window — a wedged-but-connected primary) kills it.
func (c *Controller) tailPrimary(ctx context.Context, last *time.Time) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	u := c.opt.Standby + "/v1/cluster/stream"
	if c.opt.Advertise != "" {
		u += "?advertise=" + url.QueryEscape(c.opt.Advertise)
	}
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	watchdog := time.AfterFunc(c.failoverAfter(), cancel)
	defer watchdog.Stop()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var st ClusterState
		if err := json.Unmarshal(line, &st); err != nil {
			return
		}
		c.mirror(st)
		*last = c.opt.Now()
		watchdog.Reset(c.failoverAfter())
	}
}

// mirror adopts one streamed state wholesale and persists it as the
// standby WAL's single snapshot record — so a standby that restarts
// (or takes over) while the primary is already gone still knows the
// cluster as of the last line it ever saw.
func (c *Controller) mirror(st ClusterState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.primary {
		return // took over already; a straggling line must not demote us
	}
	c.adoptStateLocked(st)
	c.compactLocked()
	c.bumpLocked()
}

// Takeover promotes the standby: a new fenced reign over the mirrored
// state. Worker heartbeat clocks restart at now (a worker that is
// truly gone re-expires after one lease under the new management),
// and every migration intent the primary left open is queued for
// resolution, exactly as a primary restart would.
func (c *Controller) Takeover() {
	c.mu.Lock()
	if c.primary {
		c.mu.Unlock()
		return
	}
	c.primary = true
	// +2, not +1: the dead primary's own next boot bumps +1 off the
	// same history, and the reign that carried the cluster forward
	// must outrank it.
	c.epoch += 2
	c.mustLog(crecEpoch, epochRec{Epoch: c.epoch})
	now := c.opt.Now()
	for _, n := range c.nodes {
		n.lastBeat = now
	}
	var resolves []Intent
	for _, in := range c.intents {
		resolves = append(resolves, *in)
	}
	c.compactLocked()
	c.bumpLocked()
	c.mu.Unlock()
	for _, in := range resolves {
		c.sup.enqueue(in.Tenant, in.From, in.To, true)
	}
}

// touchStandby records stream activity from a standby's advertise URL
// so joins and heartbeats can hand workers the failover list.
func (c *Controller) touchStandby(url string) {
	if url == "" {
		return
	}
	c.mu.Lock()
	c.standbys[url] = c.opt.Now()
	c.mu.Unlock()
}

// PrimaryURL is where a standby points refused callers.
func (c *Controller) PrimaryURL() string { return c.opt.Standby }

// handleStateStream is the primary half of the standby protocol: an
// NDJSON stream of full ClusterStates, one line immediately, then a
// line on every state change and at least one per lease/3 as the
// liveness beat the standby's watchdog feeds on.
func handleStateStream(c *Controller, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeNodeErr(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	adv := r.URL.Query().Get("advertise")
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	beat := c.Lease() / 3
	for {
		_, watch := c.WatchVersion()
		if err := enc.Encode(c.State()); err != nil {
			return
		}
		fl.Flush()
		c.touchStandby(adv)
		select {
		case <-r.Context().Done():
			return
		case <-watch:
		case <-time.After(beat):
		}
	}
}

// handleState serves the one-shot GET /v1/cluster/state body.
func handleState(c *Controller, w http.ResponseWriter) {
	writeNodeJSON(w, http.StatusOK, c.State())
}

// notPrimaryErr is the 503 body a standby answers mutations with.
func notPrimaryErr(c *Controller) error {
	return fmt.Errorf("%w; primary is %s", ErrNotPrimary, c.PrimaryURL())
}
