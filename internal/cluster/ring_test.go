package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterminism pins that placement is a pure function of the
// node set: same nodes in any insertion order, same lookups.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3"} {
		a.Add(n)
	}
	b := NewRing(64)
	for _, n := range []string{"n3", "n1", "n2"} {
		b.Add(n)
	}
	for i := 0; i < 1000; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if a.Lookup(tenant) != b.Lookup(tenant) {
			t.Fatalf("insertion order changed placement of %s", tenant)
		}
	}
	a.Add("n2") // duplicate add is a no-op
	if got := a.Len(); got != 3 {
		t.Fatalf("Len = %d after duplicate add", got)
	}
}

// TestRingBalance checks virtual nodes spread tenants: across 3 nodes
// and 3000 tenants, no node owns more than twice its fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	nodes := []string{"n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const tenants = 3000
	for i := 0; i < tenants; i++ {
		counts[r.Lookup(fmt.Sprintf("tenant-%d", i))]++
	}
	for _, n := range nodes {
		if c := counts[n]; c > 2*tenants/len(nodes) || c < tenants/(2*len(nodes)) {
			t.Fatalf("node %s owns %d of %d tenants — ring is unbalanced: %v", n, c, tenants, counts)
		}
	}
}

// TestRingMinimalDisruption pins the consistent-hashing property: when
// one of three nodes leaves, only the tenants it owned move.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	before := map[string]string{}
	const tenants = 2000
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		before[id] = r.Lookup(id)
	}
	r.Remove("n2")
	for id, owner := range before {
		got := r.Lookup(id)
		if owner != "n2" && got != owner {
			t.Fatalf("%s moved from %s to %s although its node never left", id, owner, got)
		}
		if owner == "n2" && got == "n2" {
			t.Fatalf("%s still maps to the removed node", id)
		}
	}
	if r.Lookup("anything") == "" {
		t.Fatal("non-empty ring returned no owner")
	}
	r.Remove("n1")
	r.Remove("n3")
	if got := r.Lookup("anything"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
}
