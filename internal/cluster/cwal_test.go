// Controller WAL tests: the placement journal round-trips a
// controller's whole life byte-identically, compacts itself, and
// refuses corrupt history — the same contract the tenant logs pin.

package cluster

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
)

func openTestController(t *testing.T, dir string, clock *fakeClock) *Controller {
	t.Helper()
	c, err := OpenController(Options{Lease: 5 * time.Second, DataDir: dir, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// maskEpoch clears the fields a reboot legitimately changes: the epoch
// (every boot is a new fenced reign) so the rest compares byte-equal.
func maskEpoch(st ClusterState) ClusterState {
	st.Epoch = 0
	return st
}

// TestControllerWALRoundTrip pins recovery: a controller that joined
// nodes, placed tenants, judged a lease, opened an intent and parked a
// failure reopens from its WAL with byte-identical state.
func TestControllerWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	c := openTestController(t, dir, clock)
	c.Join("n1", "http://n1", []string{"t1", "t2"})
	c.Join("n2", "http://n2", nil)
	if _, _, err := c.Place("t3"); err != nil {
		t.Fatal(err)
	}

	// n2 dies; t-dead was its tenant (hand-placed so no HTTP happens).
	c.mu.Lock()
	c.placement["t-dead"] = "n2"
	c.mustLog(crecPlace, placeRec{Tenant: "t-dead", Node: "n2"})
	c.mu.Unlock()
	clock.advance(3 * time.Second)
	if err := c.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	clock.advance(3 * time.Second)
	if got := c.CheckLeases(); len(got) != 1 || got[0] != "n2" {
		t.Fatalf("expired %v, want [n2]", got)
	}

	// An intent opens (crash-safe record) and a migration parks.
	c.mu.Lock()
	c.placement["t-move"] = "n1"
	c.mustLog(crecPlace, placeRec{Tenant: "t-move", Node: "n1"})
	c.intents["t-move"] = &Intent{Tenant: "t-move", From: "n1", To: "n2"}
	c.mustLog(crecIntent, intentRec{Tenant: "t-move", From: "n1", To: "n2", Phase: intentBegin})
	c.mu.Unlock()
	c.park(ParkedMigration{Tenant: "t2", To: "n2", Reason: "pull refused", Attempts: 5})

	want, err := json.Marshal(maskEpoch(c.State()))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestController(t, dir, clock)
	defer re.Close()
	got, err := json.Marshal(maskEpoch(re.State()))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
	// The reboot is a new fenced reign that outranks the old one.
	if re.Epoch() <= c.epoch {
		t.Fatalf("reboot epoch %d did not advance past %d", re.Epoch(), c.epoch)
	}
	// The crash-open intent is queued for resolution, not forgotten.
	if mc := re.sup.counts(); mc.Queued+mc.Running != 1 {
		t.Fatalf("open intent not queued for resolution: %+v", mc)
	}
	// Generated tenant ids never collide with recovered ones.
	id, _, err := re.Place("")
	if err != nil {
		t.Fatal(err)
	}
	if _, taken := map[string]string{"t1": "", "t2": "", "t3": "", "t-dead": "", "t-move": ""}[id]; taken {
		t.Fatalf("generated id %q collides with a recovered tenant", id)
	}
}

// TestControllerWALCompaction pins that the journal folds itself into
// a snapshot instead of growing without bound.
func TestControllerWALCompaction(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	c := openTestController(t, dir, clock)
	c.Join("n1", "http://n1", nil)
	// Far more records than compactEvery: heartbeat resurrections and
	// placements both journal.
	for i := 0; i < 3*compactEvery; i++ {
		if _, _, err := c.Place(""); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.log.Count(); n > compactEvery {
		t.Fatalf("log holds %d records after compaction threshold %d", n, compactEvery)
	}
	want, _ := json.Marshal(maskEpoch(c.State()))
	c.Close()
	re := openTestController(t, dir, clock)
	defer re.Close()
	got, _ := json.Marshal(maskEpoch(re.State()))
	if string(got) != string(want) {
		t.Fatalf("state differs after compaction:\n got %s\nwant %s", got, want)
	}
}

// TestControllerWALRefusesCorruption: a flipped byte in the middle of
// the journal must refuse recovery, not silently truncate it.
func TestControllerWALRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	c := openTestController(t, dir, clock)
	c.Join("n1", "http://n1", nil)
	for i := 0; i < 20; i++ {
		if _, _, err := c.Place(""); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	path := filepath.Join(dir, "controller.wal")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenController(Options{Lease: 5 * time.Second, DataDir: dir, Now: clock.now})
	if !errors.Is(err, wal.ErrRecLogCorrupt) {
		t.Fatalf("corrupt controller WAL: err = %v, want ErrRecLogCorrupt", err)
	}
}
