// The controller: the cluster's placement brain. It owns three pieces
// of state — the node table (who is in the fleet and when they last
// proved it), the ring (where new tenants go), and the placement map
// (where every existing tenant actually lives) — and the migration
// machinery that keeps the last two converging.
//
// Failure detection is lease-based: a worker joins, then heartbeats;
// a node silent past its lease is marked dead and drained from the
// ring so no new tenant lands on it. Its placements survive — the
// tenants' durable state is on its disk and nowhere else — and when
// the node rejoins (same name, recovered sessions in hand) the
// controller reconciles: tenants still placed on it resume service,
// tenants migrated elsewhere while it was gone are returned as a
// purge list for the worker to discard.
//
// A migration is controller-initiated but target-executed: the
// controller asks the target node to pull the tenant (the source
// detaches, exports its WAL over the wire, the target imports and
// adopts), then tells the source to drop the shipped state. If the
// pull fails the controller re-adopts the tenant on the source, so a
// failed migration degrades to "nothing happened" rather than "tenant
// lost". Bulk migration (Rebalance, Drain) is supervised, not inline:
// the verbs enqueue and return, and the supervisor (supervisor.go)
// executes with bounded concurrency, deadlines, backoff and parking.
//
// With Options.DataDir set the controller is durable (cwal.go): every
// mutation is journaled, a restart recovers the placement map and
// node table byte-identically, and each boot bumps a fenced epoch so
// workers reject a superseded controller (fence.go, standby.go).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/wal"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	ErrUnknownNode   = errors.New("cluster: unknown node")
	ErrUnknownTenant = errors.New("cluster: tenant not placed")
	ErrNodeDown      = errors.New("cluster: node is down")
	ErrNoNodes       = errors.New("cluster: no live nodes")
	ErrNotPrimary    = errors.New("cluster: standby controller")
	ErrFenced        = errors.New("cluster: fenced by a newer controller epoch")
	ErrMigrating     = errors.New("cluster: tenant migration already in flight")
)

// Options configures a Controller. The zero value gets defaults.
type Options struct {
	// Lease is how long a silent node stays alive (default 5s).
	// Workers heartbeat at a third of this; a standby takes over after
	// this much primary silence.
	Lease time.Duration
	// VNodes is the virtual-node count per worker (default 64).
	VNodes int
	// Now is the clock, injectable for lease tests (default time.Now).
	Now func() time.Time
	// Client issues the controller's node-facing calls (migrations,
	// fleet stat scrapes). Default http.DefaultClient.
	Client *http.Client

	// DataDir, when set, makes the controller durable: mutations are
	// journaled to <DataDir>/controller.wal and recovered on boot (use
	// OpenController).
	DataDir string
	// Advertise is this controller's own base URL — its fencing
	// identity and the address workers fail over to when it is the
	// standby.
	Advertise string
	// Standby, when set, boots this controller as a hot standby
	// tailing the primary at this URL (see RunStandby).
	Standby string

	// MaxMigrations bounds concurrently executing migrations
	// (default 2).
	MaxMigrations int
	// MigrateTimeout is the per-migration deadline (default 60s).
	MigrateTimeout time.Duration
	// CallTimeout bounds every other node-facing call — adopt, drop,
	// stats, proxied create/close (default 10s).
	CallTimeout time.Duration
	// MaxAttempts is how many times a migration is tried before it is
	// parked (default 5).
	MaxAttempts int
	// RetryBase is the exponential backoff base between attempts
	// (default 250ms, doubling per attempt, capped at 10s, ±50%
	// jitter).
	RetryBase time.Duration
}

func (o Options) withDefaults() Options {
	if o.Lease <= 0 {
		o.Lease = 5 * time.Second
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.MaxMigrations <= 0 {
		o.MaxMigrations = 2
	}
	if o.MigrateTimeout <= 0 {
		o.MigrateTimeout = 60 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 250 * time.Millisecond
	}
	return o
}

// Node is one worker's control-plane state.
type Node struct {
	Name string `json:"name"`
	Addr string `json:"addr"` // base URL, e.g. http://10.0.0.7:8080
	// Alive reports the lease verdict as of the last CheckLeases.
	Alive bool `json:"alive"`
	// Draining marks a node being emptied: it serves its tenants but
	// receives no new ones.
	Draining bool `json:"draining"`

	lastBeat time.Time
}

// Controller owns cluster placement. All methods are safe for
// concurrent use.
type Controller struct {
	opt Options
	id  string      // fencing identity (Advertise, or a fixed default)
	sup *supervisor // migration queue; runs once Start is called

	mu        sync.Mutex
	nodes     map[string]*Node
	ring      *Ring
	placement map[string]string // tenant -> node name
	seq       uint64            // fresh tenant-id counter for unnamed creates
	epoch     uint64            // fencing token; bumps on boot/takeover
	primary   bool              // false while a standby mirrors the primary
	intents   map[string]*Intent
	parked    map[string]*ParkedMigration
	standbys  map[string]time.Time // standby URL -> last stream activity
	log       *wal.RecLog          // nil without DataDir
	version   uint64               // bumped on every mutation
	watch     chan struct{}        // closed+replaced on version bump

	// crashAfterIntent is the chaos failpoint the mid-migration crash
	// e2e uses: exit hard right after an intent-begin record is
	// durable (set via SCHEDD_CRASH_AFTER_INTENT=1, OpenController
	// only).
	crashAfterIntent bool
}

// NewController builds an in-memory controller (no WAL). Tests and
// embedded uses; daemons with a data dir use OpenController.
func NewController(opt Options) *Controller {
	opt = opt.withDefaults()
	c := &Controller{
		opt:       opt,
		id:        opt.Advertise,
		nodes:     make(map[string]*Node),
		ring:      NewRing(opt.VNodes),
		placement: make(map[string]string),
		intents:   make(map[string]*Intent),
		parked:    make(map[string]*ParkedMigration),
		standbys:  make(map[string]time.Time),
		watch:     make(chan struct{}),
		epoch:     1,
		primary:   opt.Standby == "",
	}
	if c.id == "" {
		c.id = "controller"
	}
	if !c.primary {
		c.epoch = 0 // a standby adopts the primary's epoch, then bumps past it
	}
	c.sup = newSupervisor(c)
	return c
}

// OpenController builds a durable controller: it recovers the journal
// at <DataDir>/controller.wal (same contract as tenant recovery — a
// torn tail is truncated, anything else refuses), bumps the fenced
// epoch when booting as primary, and queues resolution of every
// migration intent the crash left open. Callers then Start it.
func OpenController(opt Options) (*Controller, error) {
	if opt.DataDir == "" {
		return nil, errors.New("cluster: OpenController needs Options.DataDir")
	}
	c := NewController(opt)
	log, rec, err := wal.OpenRecLog(controllerWALPath(opt.DataDir))
	if err != nil {
		return nil, fmt.Errorf("cluster: controller recovery refused: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	recoveredEpoch := uint64(0)
	for i, r := range rec.Records {
		if err := c.applyRecord(r.Type, r.Payload); err != nil {
			log.Close()
			return nil, fmt.Errorf("cluster: controller recovery refused: record %d: %w", i, err)
		}
	}
	recoveredEpoch = c.epoch
	for t := range c.placement {
		c.bumpSeqFromID(t)
	}
	c.log = log
	c.crashAfterIntent = os.Getenv("SCHEDD_CRASH_AFTER_INTENT") != ""
	if c.primary {
		// A fresh boot is a new reign: anything still acting on the old
		// epoch (a pre-crash standby that took over and then lost, or a
		// partitioned twin) must not be mistaken for us.
		c.epoch = recoveredEpoch + 1
		c.mustLog(crecEpoch, epochRec{Epoch: c.epoch})
		for _, in := range c.intents {
			c.sup.enqueue(in.Tenant, in.From, in.To, true)
		}
	} else {
		c.epoch = recoveredEpoch
	}
	c.compactLocked()
	return c, nil
}

// Start launches the migration supervisor. Stop with Close (or ctx).
func (c *Controller) Start(ctx context.Context) { c.sup.start(ctx) }

// Close stops the supervisor and releases the WAL.
func (c *Controller) Close() error {
	c.sup.stopWait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log != nil {
		err := c.log.Close()
		c.log = nil
		return err
	}
	return nil
}

// Lease returns the configured lease duration.
func (c *Controller) Lease() time.Duration { return c.opt.Lease }

// Epoch returns the controller's fencing epoch.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// ID returns the controller's fencing identity.
func (c *Controller) ID() string { return c.id }

// IsPrimary reports whether this controller currently owns the
// cluster (false while a standby mirrors).
func (c *Controller) IsPrimary() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// bumpLocked advances the state version and wakes watchers (the
// standby stream). c.mu held.
func (c *Controller) bumpLocked() {
	c.version++
	close(c.watch)
	c.watch = make(chan struct{})
}

// WatchVersion returns the current state version and a channel closed
// at the next mutation — the standby stream's change signal.
func (c *Controller) WatchVersion() (uint64, <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version, c.watch
}

// Join registers (or re-registers) a worker. tenants is the worker's
// recovered tenant list; the return value is the subset it must purge
// — tenants the cluster migrated elsewhere while the worker was gone.
// Tenants the controller never heard of (a worker from a previous
// cluster life) are adopted into the placement map: their durable
// state is real, and the controller's job is to route to it.
func (c *Controller) Join(name, addr string, tenants []string) (purge []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[name]
	if n == nil {
		n = &Node{Name: name}
		c.nodes[name] = n
	}
	n.Addr = addr
	n.Alive = true
	n.lastBeat = c.opt.Now()
	// An explicit (re)join declares the node back in service: a drain
	// takes a node out of the ring until it is stopped, and joining
	// again is how it returns. Heartbeats deliberately do not do this
	// — they keep flowing while the drain itself is in progress.
	n.Draining = false
	c.ring.Add(name)
	c.mustLog(crecNodeJoin, nodeRec{Name: name, Addr: addr})
	for _, t := range tenants {
		owner, ok := c.placement[t]
		switch {
		case !ok:
			c.placement[t] = name
			c.mustLog(crecPlace, placeRec{Tenant: t, Node: name})
		case owner != name:
			purge = append(purge, t)
		}
	}
	c.bumpLocked()
	sort.Strings(purge)
	return purge
}

// Heartbeat renews a worker's lease. An unknown name errors — the
// worker must rejoin (the controller may have restarted).
func (c *Controller) Heartbeat(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[name]
	if n == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	n.lastBeat = c.opt.Now()
	if !n.Alive {
		// A lease-expired node heartbeating again without a rejoin:
		// treat it as alive — its state never left.
		n.Alive = true
		if !n.Draining {
			c.ring.Add(name)
		}
		c.mustLog(crecNodeAlive, nodeRec{Name: name})
		c.bumpLocked()
	}
	return nil
}

// CheckLeases marks every node silent past its lease dead and drains
// it from the ring, returning the names it expired. The node's
// placements stay: its tenants' only durable copy is on its disk.
func (c *Controller) CheckLeases() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	var expired []string
	for name, n := range c.nodes {
		if n.Alive && now.Sub(n.lastBeat) > c.opt.Lease {
			n.Alive = false
			c.ring.Remove(name)
			expired = append(expired, name)
			c.mustLog(crecNodeDead, nodeRec{Name: name})
		}
	}
	if len(expired) > 0 {
		c.bumpLocked()
	}
	sort.Strings(expired)
	return expired
}

// Place picks (and records) the home node for a tenant id. An already
// placed tenant keeps its home. Empty id gets a fresh "c-<n>" id.
// The returned node is alive — placement never routes at a corpse.
func (c *Controller) Place(id string) (tenant string, n Node, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == "" {
		c.seq++
		id = fmt.Sprintf("c-%d", c.seq)
	}
	if owner, ok := c.placement[id]; ok {
		n := c.nodes[owner]
		if !n.Alive {
			return id, Node{}, fmt.Errorf("%w: %q on %q", ErrNodeDown, id, owner)
		}
		return id, *n, nil
	}
	owner := c.ring.Lookup(id)
	if owner == "" {
		return id, Node{}, ErrNoNodes
	}
	c.placement[id] = owner
	c.mustLog(crecPlace, placeRec{Tenant: id, Node: owner, Seq: c.seq})
	c.bumpLocked()
	return id, *c.nodes[owner], nil
}

// dropPlacement forgets a tenant's placement — the rollback when the
// chosen node never committed the create, or the cleanup when a close
// succeeded.
func (c *Controller) dropPlacement(tenant string) {
	c.mu.Lock()
	delete(c.placement, tenant)
	c.mustLog(crecDrop, placeRec{Tenant: tenant})
	c.bumpLocked()
	c.mu.Unlock()
}

// Lookup resolves a tenant's current home.
func (c *Controller) Lookup(tenant string) (Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner, ok := c.placement[tenant]
	if !ok {
		return Node{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	n := c.nodes[owner]
	if !n.Alive {
		return Node{}, fmt.Errorf("%w: %q on %q", ErrNodeDown, tenant, owner)
	}
	return *n, nil
}

// Topology is the GET /v1/cluster (and /v1/cluster/topology) payload.
type Topology struct {
	Role       string     `json:"role"` // "primary" or "standby"
	Epoch      uint64     `json:"epoch"`
	Nodes      []NodeInfo `json:"nodes"`
	Placements int        `json:"placements"`
	VNodes     int        `json:"vnodes"`
	LeaseMs    int64      `json:"leaseMs"`
	// Migrations summarizes the supervisor queue; Parked carries the
	// migrations it permanently gave up on, with their reasons.
	Migrations MigrationCounts   `json:"migrations"`
	Parked     []ParkedMigration `json:"parked,omitempty"`
}

// NodeInfo is one node's row in the topology.
type NodeInfo struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Alive    bool   `json:"alive"`
	Draining bool   `json:"draining,omitempty"`
	Tenants  int    `json:"tenants"`
	// BeatAgeMs is how long ago the node last proved liveness.
	BeatAgeMs int64 `json:"beatAgeMs"`
}

// Topology snapshots the cluster for the topology endpoint.
func (c *Controller) Topology() Topology {
	counts := c.sup.counts()
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	perNode := map[string]int{}
	for _, owner := range c.placement {
		perNode[owner]++
	}
	role := "primary"
	if !c.primary {
		role = "standby"
	}
	top := Topology{
		Role: role, Epoch: c.epoch,
		Placements: len(c.placement), VNodes: c.opt.VNodes,
		LeaseMs: c.opt.Lease.Milliseconds(), Migrations: counts,
	}
	for _, n := range c.nodes {
		top.Nodes = append(top.Nodes, NodeInfo{
			Name: n.Name, Addr: n.Addr, Alive: n.Alive, Draining: n.Draining,
			Tenants: perNode[n.Name], BeatAgeMs: now.Sub(n.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(top.Nodes, func(i, j int) bool { return top.Nodes[i].Name < top.Nodes[j].Name })
	for _, p := range c.parked {
		top.Parked = append(top.Parked, *p)
	}
	sort.Slice(top.Parked, func(i, j int) bool { return top.Parked[i].Tenant < top.Parked[j].Tenant })
	return top
}

// Tenants lists placed tenants and their homes, sorted by tenant.
func (c *Controller) Tenants() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.placement))
	for t, n := range c.placement {
		out[t] = n
	}
	return out
}

// beginIntent validates a migration and journals its intent-begin
// record. It returns the resolved source, or ok=false with the state
// unchanged.
func (c *Controller) beginIntent(tenant, to string) (from string, src, dst Node, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	from, ok := c.placement[tenant]
	if !ok {
		return "", Node{}, Node{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	d := c.nodes[to]
	if d == nil {
		return "", Node{}, Node{}, fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	s := c.nodes[from]
	if s == nil || !s.Alive {
		return "", Node{}, Node{}, fmt.Errorf("%w: source %q", ErrNodeDown, from)
	}
	if !d.Alive {
		return "", Node{}, Node{}, fmt.Errorf("%w: target %q", ErrNodeDown, to)
	}
	if from == to {
		return from, *s, *d, nil
	}
	if _, busy := c.intents[tenant]; busy {
		return "", Node{}, Node{}, fmt.Errorf("%w: %q", ErrMigrating, tenant)
	}
	c.intents[tenant] = &Intent{Tenant: tenant, From: from, To: to}
	c.mustLog(crecIntent, intentRec{Tenant: tenant, From: from, To: to, Phase: intentBegin})
	c.bumpLocked()
	return from, *s, *d, nil
}

// endIntent journals the intent's outcome and, on success, flips the
// placement.
func (c *Controller) endIntent(tenant, from, to, phase string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.intents, tenant)
	if phase == intentDone {
		c.placement[tenant] = to
		c.mustLog(crecPlace, placeRec{Tenant: tenant, Node: to})
	}
	c.mustLog(crecIntent, intentRec{Tenant: tenant, From: from, To: to, Phase: phase})
	c.bumpLocked()
}

// Move migrates one tenant to the named target node: an intent-begin
// record makes the attempt crash-safe, then the target pulls the
// tenant's WAL from its current home (which detaches it first),
// imports, adopts — and only then is the placement flipped and the
// source told to drop its copy. On a pull failure the tenant is
// re-adopted at the source and the intent aborted — service continues
// where the state is, "nothing happened".
func (c *Controller) Move(ctx context.Context, tenant, to string) error {
	from, src, dst, err := c.beginIntent(tenant, to)
	if err != nil {
		return err
	}
	if from == to {
		return nil
	}
	if c.crashAfterIntent {
		// Chaos failpoint: the mid-migration crash the e2e injects —
		// the intent record is durable, nothing else has happened.
		os.Exit(7)
	}
	if err := c.nodePull(ctx, dst.Addr, tenant, src.Addr); err != nil {
		// Best effort: put the tenant back in service at the source.
		c.endIntent(tenant, from, to, intentAbort)
		if aerr := c.nodeAdopt(ctx, src.Addr, tenant); aerr != nil {
			return fmt.Errorf("cluster: pull of %q to %q failed (%v) and source re-adopt failed: %w", tenant, to, err, aerr)
		}
		return fmt.Errorf("cluster: pull of %q to %q: %w", tenant, to, err)
	}
	c.endIntent(tenant, from, to, intentDone)
	// The target owns the tenant now; the source's copy is garbage.
	// Failure here leaks disk on the source, not correctness: the
	// source's host no longer serves the tenant, and a later rejoin
	// reports it and gets it back as a purge order.
	if err := c.nodeDrop(ctx, src.Addr, tenant); err != nil {
		return fmt.Errorf("cluster: %q moved to %q but source cleanup failed: %w", tenant, to, err)
	}
	return nil
}

// resolveIntent finishes a migration a crash left open: if the target
// already serves (or holds) the tenant the pull completed and the
// move is committed; otherwise it is rolled back to the source. The
// probe asks the target to adopt — idempotent if the import landed,
// a clean 404 if it never did.
func (c *Controller) resolveIntent(ctx context.Context, in Intent) error {
	c.mu.Lock()
	cur, open := c.intents[in.Tenant]
	if !open || cur.From != in.From || cur.To != in.To {
		c.mu.Unlock()
		return nil // already resolved (or superseded)
	}
	dst := c.nodes[in.To]
	src := c.nodes[in.From]
	c.mu.Unlock()
	if dst != nil && dst.Alive {
		if err := c.nodeAdopt(ctx, dst.Addr, in.Tenant); err == nil {
			// The pull completed before the crash: commit the flip the
			// old controller never recorded, then clean up the source.
			c.endIntent(in.Tenant, in.From, in.To, intentDone)
			if src != nil {
				_ = c.nodeDrop(ctx, src.Addr, in.Tenant) // best effort; rejoin reconciliation sweeps leaks
			}
			return nil
		} else if !isNodeStatus(err, http.StatusNotFound) {
			return fmt.Errorf("cluster: resolving intent %q->%q: probing target: %w", in.Tenant, in.To, err)
		}
	}
	if src == nil || !src.Alive {
		return fmt.Errorf("cluster: resolving intent for %q: %w: source %q", in.Tenant, ErrNodeDown, in.From)
	}
	if err := c.nodeAdopt(ctx, src.Addr, in.Tenant); err != nil {
		return fmt.Errorf("cluster: resolving intent for %q: source re-adopt: %w", in.Tenant, err)
	}
	c.endIntent(in.Tenant, in.From, in.To, intentAbort)
	return nil
}

// Rebalance plans a move for every tenant whose ring-ideal home
// differs from its current one (both ends alive), hands the plan to
// the supervisor, and returns the planned tenants immediately —
// convergence is the supervisor's job, progress is Migrations().
// Tenants parked by earlier failures are re-queued: a rebalance is
// the operator saying "try again".
func (c *Controller) Rebalance() (planned []string) {
	c.mu.Lock()
	type mv struct{ tenant, from, to string }
	var plan []mv
	for t, owner := range c.placement {
		want := c.ring.Lookup(t)
		if want == "" || want == owner {
			continue
		}
		if src := c.nodes[owner]; src == nil || !src.Alive {
			continue // its home is down; nothing to pull from
		}
		if _, busy := c.intents[t]; busy {
			continue // already mid-flight
		}
		if _, wasParked := c.parked[t]; wasParked {
			delete(c.parked, t)
			c.mustLog(crecUnpark, ParkedMigration{Tenant: t})
		}
		plan = append(plan, mv{t, owner, want})
	}
	if len(plan) > 0 {
		c.bumpLocked()
	}
	c.mu.Unlock()
	sort.Slice(plan, func(i, j int) bool { return plan[i].tenant < plan[j].tenant })
	for _, m := range plan {
		if c.sup.enqueue(m.tenant, m.from, m.to, false) {
			planned = append(planned, m.tenant)
		}
	}
	return planned
}

// Drain empties a node: it stops receiving new tenants, is removed
// from the ring, and every tenant it hosts is queued to migrate to
// its ring-ideal home among the remaining nodes. The plan is returned
// immediately; the supervisor executes it. The node stays in the
// table (alive, draining) so it can be watched until shutdown. A
// drain with no possible destination rolls itself back.
func (c *Controller) Drain(name string) (planned []string, err error) {
	c.mu.Lock()
	n := c.nodes[name]
	if n == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	n.Draining = true
	c.ring.Remove(name)
	type mv struct{ tenant, to string }
	var plan []mv
	for t, owner := range c.placement {
		if owner != name {
			continue
		}
		to := c.ring.Lookup(t)
		if to == "" {
			// No destination exists: nothing can be drained to, now or on
			// a retry. Put the node back in service — it still holds its
			// tenants, and a stranded not-in-the-ring node serves no one.
			n.Draining = false
			if n.Alive {
				c.ring.Add(name)
			}
			c.mu.Unlock()
			return nil, fmt.Errorf("cluster: draining %q: %w", name, ErrNoNodes)
		}
		plan = append(plan, mv{t, to})
	}
	c.mustLog(crecNodeDrain, nodeRec{Name: name, Draining: true})
	c.bumpLocked()
	c.mu.Unlock()
	sort.Slice(plan, func(i, j int) bool { return plan[i].tenant < plan[j].tenant })
	for _, m := range plan {
		if c.sup.enqueue(m.tenant, name, m.to, false) {
			planned = append(planned, m.tenant)
		}
	}
	return planned, nil
}

// park records a migration the supervisor gave up on; visible in the
// topology until a rebalance re-queues it.
func (c *Controller) park(p ParkedMigration) {
	c.mu.Lock()
	c.parked[p.Tenant] = &p
	c.mustLog(crecPark, p)
	c.bumpLocked()
	c.mu.Unlock()
}

// Migrations snapshots the supervisor queue for the progress
// endpoint.
func (c *Controller) Migrations() MigrationsProgress { return c.sup.progress() }

// Standbys lists the standby controllers currently tailing this one
// (stream activity within three leases), sorted.
func (c *Controller) Standbys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	var out []string
	for url, seen := range c.standbys {
		if now.Sub(seen) <= 3*c.opt.Lease {
			out = append(out, url)
		} else {
			delete(c.standbys, url)
		}
	}
	sort.Strings(out)
	return out
}

// RunLeaseChecker ticks CheckLeases at a third of the lease until ctx
// ends — the controller daemon's failure-detector loop. A standby
// does not judge leases (it is not being heartbeated); the gate flips
// when it takes over.
func (c *Controller) RunLeaseChecker(ctx context.Context) {
	t := time.NewTicker(c.opt.Lease / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if c.IsPrimary() {
				c.CheckLeases()
			}
		}
	}
}
