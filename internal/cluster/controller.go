// The controller: the cluster's placement brain. It owns three pieces
// of state — the node table (who is in the fleet and when they last
// proved it), the ring (where new tenants go), and the placement map
// (where every existing tenant actually lives) — and the migration
// choreography that keeps the last two converging.
//
// Failure detection is lease-based: a worker joins, then heartbeats;
// a node silent past its lease is marked dead and drained from the
// ring so no new tenant lands on it. Its placements survive — the
// tenants' durable state is on its disk and nowhere else — and when
// the node rejoins (same name, recovered sessions in hand) the
// controller reconciles: tenants still placed on it resume service,
// tenants migrated elsewhere while it was gone are returned as a
// purge list for the worker to discard.
//
// A migration is controller-initiated but target-executed: the
// controller asks the target node to pull the tenant (the source
// detaches, exports its WAL over the wire, the target imports and
// adopts), then tells the source to drop the shipped state. If the
// pull fails the controller re-adopts the tenant on the source, so a
// failed migration degrades to "nothing happened" rather than "tenant
// lost".

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	ErrUnknownNode   = errors.New("cluster: unknown node")
	ErrUnknownTenant = errors.New("cluster: tenant not placed")
	ErrNodeDown      = errors.New("cluster: node is down")
	ErrNoNodes       = errors.New("cluster: no live nodes")
)

// Options configures a Controller. The zero value gets defaults.
type Options struct {
	// Lease is how long a silent node stays alive (default 5s).
	// Workers heartbeat at a third of this.
	Lease time.Duration
	// VNodes is the virtual-node count per worker (default 64).
	VNodes int
	// Now is the clock, injectable for lease tests (default time.Now).
	Now func() time.Time
	// Client issues the controller's node-facing calls (migrations,
	// fleet stat scrapes). Default http.DefaultClient.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Lease <= 0 {
		o.Lease = 5 * time.Second
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// Node is one worker's control-plane state.
type Node struct {
	Name string `json:"name"`
	Addr string `json:"addr"` // base URL, e.g. http://10.0.0.7:8080
	// Alive reports the lease verdict as of the last CheckLeases.
	Alive bool `json:"alive"`
	// Draining marks a node being emptied: it serves its tenants but
	// receives no new ones.
	Draining bool `json:"draining"`

	lastBeat time.Time
}

// Controller owns cluster placement. All methods are safe for
// concurrent use.
type Controller struct {
	opt Options

	mu        sync.Mutex
	nodes     map[string]*Node
	ring      *Ring
	placement map[string]string // tenant -> node name
	seq       uint64            // fresh tenant-id counter for unnamed creates
}

// NewController builds a controller from the options.
func NewController(opt Options) *Controller {
	opt = opt.withDefaults()
	return &Controller{
		opt:       opt,
		nodes:     make(map[string]*Node),
		ring:      NewRing(opt.VNodes),
		placement: make(map[string]string),
	}
}

// Lease returns the configured lease duration.
func (c *Controller) Lease() time.Duration { return c.opt.Lease }

// Join registers (or re-registers) a worker. tenants is the worker's
// recovered tenant list; the return value is the subset it must purge
// — tenants the cluster migrated elsewhere while the worker was gone.
// Tenants the controller never heard of (a worker from a previous
// cluster life) are adopted into the placement map: their durable
// state is real, and the controller's job is to route to it.
func (c *Controller) Join(name, addr string, tenants []string) (purge []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[name]
	if n == nil {
		n = &Node{Name: name}
		c.nodes[name] = n
	}
	n.Addr = addr
	n.Alive = true
	n.lastBeat = c.opt.Now()
	// An explicit (re)join declares the node back in service: a drain
	// takes a node out of the ring until it is stopped, and joining
	// again is how it returns. Heartbeats deliberately do not do this
	// — they keep flowing while the drain itself is in progress.
	n.Draining = false
	c.ring.Add(name)
	for _, t := range tenants {
		owner, ok := c.placement[t]
		switch {
		case !ok:
			c.placement[t] = name
		case owner != name:
			purge = append(purge, t)
		}
	}
	sort.Strings(purge)
	return purge
}

// Heartbeat renews a worker's lease. An unknown name errors — the
// worker must rejoin (the controller may have restarted).
func (c *Controller) Heartbeat(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[name]
	if n == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	n.lastBeat = c.opt.Now()
	if !n.Alive {
		// A lease-expired node heartbeating again without a rejoin:
		// treat it as alive — its state never left.
		n.Alive = true
		if !n.Draining {
			c.ring.Add(name)
		}
	}
	return nil
}

// CheckLeases marks every node silent past its lease dead and drains
// it from the ring, returning the names it expired. The node's
// placements stay: its tenants' only durable copy is on its disk.
func (c *Controller) CheckLeases() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	var expired []string
	for name, n := range c.nodes {
		if n.Alive && now.Sub(n.lastBeat) > c.opt.Lease {
			n.Alive = false
			c.ring.Remove(name)
			expired = append(expired, name)
		}
	}
	sort.Strings(expired)
	return expired
}

// Place picks (and records) the home node for a tenant id. An already
// placed tenant keeps its home. Empty id gets a fresh "c-<n>" id.
// The returned node is alive — placement never routes at a corpse.
func (c *Controller) Place(id string) (tenant string, n Node, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == "" {
		c.seq++
		id = fmt.Sprintf("c-%d", c.seq)
	}
	if owner, ok := c.placement[id]; ok {
		n := c.nodes[owner]
		if !n.Alive {
			return id, Node{}, fmt.Errorf("%w: %q on %q", ErrNodeDown, id, owner)
		}
		return id, *n, nil
	}
	owner := c.ring.Lookup(id)
	if owner == "" {
		return id, Node{}, ErrNoNodes
	}
	c.placement[id] = owner
	return id, *c.nodes[owner], nil
}

// dropPlacement forgets a tenant's placement — the rollback when the
// chosen node never committed the create, or the cleanup when a close
// succeeded.
func (c *Controller) dropPlacement(tenant string) {
	c.mu.Lock()
	delete(c.placement, tenant)
	c.mu.Unlock()
}

// Lookup resolves a tenant's current home.
func (c *Controller) Lookup(tenant string) (Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner, ok := c.placement[tenant]
	if !ok {
		return Node{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	n := c.nodes[owner]
	if !n.Alive {
		return Node{}, fmt.Errorf("%w: %q on %q", ErrNodeDown, tenant, owner)
	}
	return *n, nil
}

// Topology is the GET /v1/cluster payload.
type Topology struct {
	Nodes      []NodeInfo `json:"nodes"`
	Placements int        `json:"placements"`
	VNodes     int        `json:"vnodes"`
	LeaseMs    int64      `json:"leaseMs"`
}

// NodeInfo is one node's row in the topology.
type NodeInfo struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Alive    bool   `json:"alive"`
	Draining bool   `json:"draining,omitempty"`
	Tenants  int    `json:"tenants"`
	// BeatAgeMs is how long ago the node last proved liveness.
	BeatAgeMs int64 `json:"beatAgeMs"`
}

// Topology snapshots the cluster for the topology endpoint.
func (c *Controller) Topology() Topology {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	perNode := map[string]int{}
	for _, owner := range c.placement {
		perNode[owner]++
	}
	top := Topology{Placements: len(c.placement), VNodes: c.opt.VNodes, LeaseMs: c.opt.Lease.Milliseconds()}
	for _, n := range c.nodes {
		top.Nodes = append(top.Nodes, NodeInfo{
			Name: n.Name, Addr: n.Addr, Alive: n.Alive, Draining: n.Draining,
			Tenants: perNode[n.Name], BeatAgeMs: now.Sub(n.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(top.Nodes, func(i, j int) bool { return top.Nodes[i].Name < top.Nodes[j].Name })
	return top
}

// Tenants lists placed tenants and their homes, sorted by tenant.
func (c *Controller) Tenants() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.placement))
	for t, n := range c.placement {
		out[t] = n
	}
	return out
}

// Move migrates one tenant to the named target node: the target pulls
// the tenant's WAL from its current home (which detaches it first),
// imports, adopts, and only then does the source drop its copy. On a
// pull failure the tenant is re-adopted at the source — service
// continues where the state is.
func (c *Controller) Move(ctx context.Context, tenant, to string) error {
	c.mu.Lock()
	from, ok := c.placement[tenant]
	src := c.nodes[from]
	dst := c.nodes[to]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	if dst == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if src == nil || !src.Alive {
		return fmt.Errorf("%w: source %q", ErrNodeDown, from)
	}
	if !dst.Alive {
		return fmt.Errorf("%w: target %q", ErrNodeDown, to)
	}
	if from == to {
		return nil
	}
	if err := c.nodePull(ctx, dst.Addr, tenant, src.Addr); err != nil {
		// Best effort: put the tenant back in service at the source.
		if aerr := c.nodeAdopt(ctx, src.Addr, tenant); aerr != nil {
			return fmt.Errorf("cluster: pull of %q to %q failed (%v) and source re-adopt failed: %w", tenant, to, err, aerr)
		}
		return fmt.Errorf("cluster: pull of %q to %q: %w", tenant, to, err)
	}
	c.mu.Lock()
	c.placement[tenant] = to
	c.mu.Unlock()
	// The target owns the tenant now; the source's copy is garbage.
	// Failure here leaks disk on the source, not correctness: the
	// source's host no longer serves the tenant, and a later rejoin
	// reports it and gets it back as a purge order.
	if err := c.nodeDrop(ctx, src.Addr, tenant); err != nil {
		return fmt.Errorf("cluster: %q moved to %q but source cleanup failed: %w", tenant, to, err)
	}
	return nil
}

// Rebalance migrates every tenant whose ring-ideal home differs from
// its current one (and both ends are alive), returning the tenants
// moved. Called after a node joins to spread load, or any time to
// converge placement onto the ring.
func (c *Controller) Rebalance(ctx context.Context) (moved []string, err error) {
	c.mu.Lock()
	type mv struct{ tenant, to string }
	var plan []mv
	for t, owner := range c.placement {
		want := c.ring.Lookup(t)
		if want == "" || want == owner {
			continue
		}
		if src := c.nodes[owner]; src == nil || !src.Alive {
			continue // its home is down; nothing to pull from
		}
		plan = append(plan, mv{t, want})
	}
	c.mu.Unlock()
	sort.Slice(plan, func(i, j int) bool { return plan[i].tenant < plan[j].tenant })
	for _, m := range plan {
		if err := c.Move(ctx, m.tenant, m.to); err != nil {
			return moved, err
		}
		moved = append(moved, m.tenant)
	}
	return moved, nil
}

// Drain empties a node: it stops receiving new tenants, every tenant
// it hosts is migrated to its ring-ideal home among the remaining
// nodes, and the node is removed from the ring. The node stays in the
// table (alive, draining) so it can be watched until shutdown.
func (c *Controller) Drain(ctx context.Context, name string) (moved []string, err error) {
	c.mu.Lock()
	n := c.nodes[name]
	if n == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	n.Draining = true
	c.ring.Remove(name)
	var tenants []string
	for t, owner := range c.placement {
		if owner == name {
			tenants = append(tenants, t)
		}
	}
	c.mu.Unlock()
	sort.Strings(tenants)
	for _, t := range tenants {
		c.mu.Lock()
		to := c.ring.Lookup(t)
		c.mu.Unlock()
		if to == "" {
			// No destination exists: nothing can be drained to, now or on
			// a retry. Put the node back in service — it still holds its
			// tenants, and a stranded not-in-the-ring node serves no one.
			c.mu.Lock()
			n.Draining = false
			if n.Alive {
				c.ring.Add(name)
			}
			c.mu.Unlock()
			return moved, fmt.Errorf("cluster: draining %q: %w", name, ErrNoNodes)
		}
		if err := c.Move(ctx, t, to); err != nil {
			return moved, err
		}
		moved = append(moved, t)
	}
	return moved, nil
}

// RunLeaseChecker ticks CheckLeases at a third of the lease until ctx
// ends — the controller daemon's failure-detector loop.
func (c *Controller) RunLeaseChecker(ctx context.Context) {
	t := time.NewTicker(c.opt.Lease / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.CheckLeases()
		}
	}
}
