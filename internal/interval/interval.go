// Package interval maintains the atomic-interval partition of Section
// 2.1 of the paper: time is cut at every release time and deadline seen
// so far, yielding intervals T_k = [τ_{k-1}, τ_k) on which optimal
// schedules run at constant speeds. The partition refines online as new
// jobs arrive; per-interval payloads are split proportionally, which the
// paper shows leaves the algorithm's behaviour unchanged ("Concerning
// the Time Partitioning", Section 3).
package interval

import (
	"fmt"
	"sort"
)

// Interval is one atomic interval [T0, T1).
type Interval struct {
	T0, T1 float64
	// Load maps job ID to the workload (in work units, x_jk·w_j)
	// currently assigned to this interval.
	Load map[int]float64
}

// Len returns the interval length l_k.
func (iv *Interval) Len() float64 { return iv.T1 - iv.T0 }

// TotalLoad returns the summed workload assigned to the interval.
func (iv *Interval) TotalLoad() float64 {
	var s float64
	for _, w := range iv.Load {
		s += w
	}
	return s
}

// clone deep-copies the interval with loads scaled by frac.
func (iv *Interval) scaledCopy(t0, t1, frac float64) *Interval {
	cp := &Interval{T0: t0, T1: t1, Load: make(map[int]float64, len(iv.Load))}
	for id, w := range iv.Load {
		cp.Load[id] = w * frac
	}
	return cp
}

// Partition is the ordered list of atomic intervals covering the time
// horizon seen so far. The zero value is empty and ready to use.
type Partition struct {
	ivs []*Interval
}

// Len returns the number of atomic intervals.
func (p *Partition) Len() int { return len(p.ivs) }

// At returns the k-th interval (0-based).
func (p *Partition) At(k int) *Interval { return p.ivs[k] }

// All returns the intervals in time order. The slice is owned by the
// partition; callers must not mutate its structure.
func (p *Partition) All() []*Interval { return p.ivs }

// Observe inserts boundaries t0 < t1 (a job's release and deadline)
// into the partition, splitting existing intervals proportionally and
// extending coverage where [t0,t1) is not covered yet.
func (p *Partition) Observe(t0, t1 float64) error {
	if t1 <= t0 {
		return fmt.Errorf("interval: empty window [%v,%v)", t0, t1)
	}
	// Extend coverage first: boundary insertion can only split
	// intervals that exist, so a window beyond current coverage must
	// grow the partition before t0/t1 are cut in.
	p.extend(t0, t1)
	p.insertBoundary(t0)
	p.insertBoundary(t1)
	return nil
}

// insertBoundary splits the interval containing t at t. Loads are split
// in proportion to the sub-lengths, matching the paper's refinement.
func (p *Partition) insertBoundary(t float64) {
	k := sort.Search(len(p.ivs), func(i int) bool { return p.ivs[i].T1 > t })
	if k == len(p.ivs) {
		return // t at or beyond current coverage; extend handles it
	}
	iv := p.ivs[k]
	if t <= iv.T0 || t >= iv.T1 {
		return // already a boundary (or before coverage starts)
	}
	l := iv.Len()
	left := iv.scaledCopy(iv.T0, t, (t-iv.T0)/l)
	right := iv.scaledCopy(t, iv.T1, (iv.T1-t)/l)
	p.ivs = append(p.ivs, nil)
	copy(p.ivs[k+2:], p.ivs[k+1:])
	p.ivs[k] = left
	p.ivs[k+1] = right
}

// extend adds empty intervals so that [t0,t1) is fully covered.
func (p *Partition) extend(t0, t1 float64) {
	if len(p.ivs) == 0 {
		p.ivs = append(p.ivs, &Interval{T0: t0, T1: t1, Load: map[int]float64{}})
		return
	}
	first, last := p.ivs[0], p.ivs[len(p.ivs)-1]
	if t0 < first.T0 {
		head := &Interval{T0: t0, T1: first.T0, Load: map[int]float64{}}
		p.ivs = append([]*Interval{head}, p.ivs...)
	}
	if t1 > last.T1 {
		p.ivs = append(p.ivs, &Interval{T0: last.T1, T1: t1, Load: map[int]float64{}})
	}
	// A window strictly inside a gap cannot occur: intervals are
	// contiguous by construction (gaps are never created).
}

// Covering returns the indices k of all intervals with
// [T0,T1) ⊆ [t0,t1), i.e. those with c_jk = 1 for a job with window
// [t0, t1).
func (p *Partition) Covering(t0, t1 float64) []int {
	var ks []int
	for k, iv := range p.ivs {
		if iv.T0 >= t0 && iv.T1 <= t1 {
			ks = append(ks, k)
		}
	}
	return ks
}

// Boundaries returns τ_0 < τ_1 < ... < τ_N.
func (p *Partition) Boundaries() []float64 {
	if len(p.ivs) == 0 {
		return nil
	}
	bs := make([]float64, 0, len(p.ivs)+1)
	bs = append(bs, p.ivs[0].T0)
	for _, iv := range p.ivs {
		bs = append(bs, iv.T1)
	}
	return bs
}

// FromBoundaries builds a static partition from sorted unique times.
// It is used by offline algorithms that know the whole job set.
func FromBoundaries(times []float64) (*Partition, error) {
	if len(times) < 2 {
		return nil, fmt.Errorf("interval: need at least two boundaries, got %d", len(times))
	}
	p := &Partition{}
	for i := 0; i+1 < len(times); i++ {
		if times[i+1] <= times[i] {
			return nil, fmt.Errorf("interval: boundaries not strictly increasing at %d", i)
		}
		p.ivs = append(p.ivs, &Interval{T0: times[i], T1: times[i+1], Load: map[int]float64{}})
	}
	return p, nil
}

// BoundariesOf collects the sorted unique releases and deadlines of a
// set of (release, deadline) windows.
func BoundariesOf(windows [][2]float64) []float64 {
	set := make(map[float64]struct{}, 2*len(windows))
	for _, w := range windows {
		set[w[0]] = struct{}{}
		set[w[1]] = struct{}{}
	}
	out := make([]float64, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}
