package interval

import (
	"math"
	"math/rand"
	"testing"
)

func TestObserveBuildsPartition(t *testing.T) {
	var p Partition
	if err := p.Observe(0, 2); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.At(0).T0 != 0 || p.At(0).T1 != 2 {
		t.Fatalf("unexpected partition: %+v", p.ivs)
	}
}

func TestObserveRejectsEmptyWindow(t *testing.T) {
	var p Partition
	if err := p.Observe(1, 1); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestRefinementSplitsLoadProportionally(t *testing.T) {
	var p Partition
	if err := p.Observe(0, 4); err != nil {
		t.Fatal(err)
	}
	p.At(0).Load[7] = 8 // job 7 carries 8 units on [0,4)
	if err := p.Observe(1, 4); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("want 2 intervals, got %d", p.Len())
	}
	if got := p.At(0).Load[7]; math.Abs(got-2) > 1e-12 {
		t.Fatalf("left split got %v want 2", got)
	}
	if got := p.At(1).Load[7]; math.Abs(got-6) > 1e-12 {
		t.Fatalf("right split got %v want 6", got)
	}
}

func TestObserveExtendsCoverage(t *testing.T) {
	var p Partition
	if err := p.Observe(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(0, 6); err != nil {
		t.Fatal(err)
	}
	bs := p.Boundaries()
	want := []float64{0, 2, 4, 6}
	if len(bs) != len(want) {
		t.Fatalf("boundaries %v want %v", bs, want)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("boundaries %v want %v", bs, want)
		}
	}
}

func TestCovering(t *testing.T) {
	var p Partition
	if err := p.Observe(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(2, 5); err != nil {
		t.Fatal(err)
	}
	// intervals: [0,2) [2,5) [5,10)
	ks := p.Covering(2, 5)
	if len(ks) != 1 || p.At(ks[0]).T0 != 2 {
		t.Fatalf("covering [2,5): %v", ks)
	}
	ks = p.Covering(0, 10)
	if len(ks) != 3 {
		t.Fatalf("covering [0,10): %v", ks)
	}
	ks = p.Covering(3, 4) // strictly inside an atomic interval
	if len(ks) != 0 {
		t.Fatalf("covering [3,4) should be empty before refinement: %v", ks)
	}
}

func TestRandomizedConservation(t *testing.T) {
	// Property: total load per job is preserved by arbitrary sequences
	// of refinements, and intervals stay contiguous.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var p Partition
		totals := map[int]float64{}
		if err := p.Observe(0, 100); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 40; step++ {
			// add load for a random job on a random interval
			k := rng.Intn(p.Len())
			id := rng.Intn(5)
			w := rng.Float64()
			p.At(k).Load[id] += w
			totals[id] += w
			// refine with a random window
			a := rng.Float64() * 100
			b := a + rng.Float64()*(100-a) + 1e-3
			if err := p.Observe(a, b); err != nil {
				t.Fatal(err)
			}
		}
		// contiguity
		for i := 1; i < p.Len(); i++ {
			if p.At(i).T0 != p.At(i-1).T1 {
				t.Fatalf("gap between intervals %d and %d", i-1, i)
			}
		}
		// conservation
		got := map[int]float64{}
		for _, iv := range p.All() {
			for id, w := range iv.Load {
				got[id] += w
			}
		}
		for id, want := range totals {
			if math.Abs(got[id]-want) > 1e-9*(1+want) {
				t.Fatalf("job %d load drifted: got %v want %v", id, got[id], want)
			}
		}
	}
}

func TestObserveWindowBeyondCoverage(t *testing.T) {
	// Regression: a job window starting past current coverage must
	// still get boundaries at both endpoints (a dropped release
	// boundary makes Covering come back empty and the scheduler
	// reject the job unconditionally).
	var p Partition
	if err := p.Observe(0, 6); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(7, 9); err != nil {
		t.Fatal(err)
	}
	ks := p.Covering(7, 9)
	if len(ks) != 1 || p.At(ks[0]).T0 != 7 || p.At(ks[0]).T1 != 9 {
		t.Fatalf("covering [7,9) after gap: %v (boundaries %v)", ks, p.Boundaries())
	}
	// And before coverage:
	if err := p.Observe(-3, -1); err != nil {
		t.Fatal(err)
	}
	ks = p.Covering(-3, -1)
	if len(ks) != 1 || p.At(ks[0]).T0 != -3 || p.At(ks[0]).T1 != -1 {
		t.Fatalf("covering [-3,-1): %v (boundaries %v)", ks, p.Boundaries())
	}
}

func TestFromBoundaries(t *testing.T) {
	p, err := FromBoundaries([]float64{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.At(1).Len() != 2 {
		t.Fatalf("bad partition: %+v", p.ivs)
	}
	if _, err := FromBoundaries([]float64{0}); err == nil {
		t.Fatal("single boundary accepted")
	}
	if _, err := FromBoundaries([]float64{0, 0, 1}); err == nil {
		t.Fatal("non-increasing boundaries accepted")
	}
}

func TestBoundariesOf(t *testing.T) {
	bs := BoundariesOf([][2]float64{{0, 2}, {1, 2}, {0, 3}})
	want := []float64{0, 1, 2, 3}
	if len(bs) != len(want) {
		t.Fatalf("got %v", bs)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("got %v want %v", bs, want)
		}
	}
}
