// The serving daemon's arrival wire format is NDJSON: one Job object
// per line. encoding/json decodes it correctly but pays reflection,
// per-token allocation and interface boxing on every line — at
// millions of arrivals per second the decoder, not the scheduling
// policy, becomes the daemon's ceiling. This file is the hand-rolled
// twin: a pooled line scanner over a reused read buffer and a
// non-reflective field parser that writes straight into the caller's
// Job, allocating nothing on the steady-state path.
//
// The parser is not a new dialect: it accepts exactly what
// json.Unmarshal into Job accepts — case-insensitive keys, ignored
// unknown fields (with their syntax still validated), null no-ops,
// the "inf"/"+inf" value strings of the trace format, last-wins
// duplicate keys — and rejects what it rejects. Differential tests
// (including a fuzzer) pin both directions, value-for-value on valid
// lines and error-for-error on malformed ones. AppendJSON is the
// encoding twin, pinned byte-identical to json.Marshal.

package job

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

const (
	// decoderBufSize is the read-ahead window (it also amortizes read
	// syscalls on big streams). It bounds how far the
	// daemon reads past the arrivals it has queued, so backpressure
	// from a full session queue reaches the client quickly.
	decoderBufSize = 64 << 10
	// maxLineBytes bounds a single arrival line so a malicious stream
	// cannot balloon the buffer.
	maxLineBytes = 1 << 20
)

// Decoder reads an NDJSON stream of jobs line by line. Acquire one
// with NewDecoder (or the pooled GetDecoder) and call Next per
// arrival; a fully drained stream returns io.EOF. Blank lines are
// skipped; the final line may omit its trailing newline. Decoder is
// not safe for concurrent use.
type Decoder struct {
	r     io.Reader
	buf   []byte
	start int // unconsumed window is buf[start:end]
	end   int
	rdErr error // sticky read error, surfaced once the window drains
	line  int   // lines consumed, for error context
	p     lineParser
}

// NewDecoder returns a decoder over r with a fresh buffer.
func NewDecoder(r io.Reader) *Decoder {
	d := &Decoder{buf: make([]byte, decoderBufSize)}
	d.Reset(r)
	return d
}

// Reset rebinds the decoder to a new stream, keeping its buffers.
func (d *Decoder) Reset(r io.Reader) {
	d.r = r
	d.start, d.end, d.rdErr, d.line = 0, 0, nil, 0
}

var decoderPool = sync.Pool{New: func() any { return NewDecoder(nil) }}

// GetDecoder hands out a pooled decoder bound to r. Return it with
// PutDecoder when the stream is done so its buffers are reused — the
// daemon's per-request path allocates no decoder state at all.
//
//schedlint:poolget
func GetDecoder(r io.Reader) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.Reset(r)
	return d
}

// PutDecoder returns a decoder to the pool.
//
//schedlint:poolput
func PutDecoder(d *Decoder) {
	d.Reset(nil)
	decoderPool.Put(d)
}

// Line returns the 1-based line number of the last line Next consumed
// — the error context for "arrival %d failed" reporting.
func (d *Decoder) Line() int { return d.line }

// Next parses the next arrival into *j. It returns io.EOF when the
// stream is fully drained, and a descriptive error (with the line
// number) for a malformed line. After an error the decoder continues
// with the following line, but the daemon treats the first error as
// fatal for the request.
//
//schedlint:hotpath
func (d *Decoder) Next(j *Job) error {
	for {
		line, err := d.nextLine()
		if err != nil {
			return err
		}
		d.line++
		if allWhitespace(line) {
			continue
		}
		if parseCanonical(line, j) {
			return nil
		}
		if err := d.p.parseJob(line, j); err != nil {
			return fmt.Errorf("job: ndjson line %d: %w", d.line, err) //schedlint:allowalloc terminal error path, request aborts
		}
		return nil
	}
}

// nextLine returns the next raw line (without its '\n'), reading more
// of the stream as needed into the reused buffer.
//
//schedlint:hotpath
func (d *Decoder) nextLine() ([]byte, error) {
	searched := 0 // bytes of the window already known '\n'-free
	for {
		window := d.buf[d.start:d.end]
		if i := bytes.IndexByte(window[searched:], '\n'); i >= 0 {
			i += searched
			line := window[:i]
			d.start += i + 1
			return line, nil
		}
		searched = len(window)
		if d.rdErr != nil {
			if len(window) == 0 {
				if d.rdErr == io.EOF {
					return nil, io.EOF
				}
				return nil, d.rdErr
			}
			// Final line without a trailing newline.
			d.start = d.end
			return window, nil
		}
		// Need more bytes: compact the window to the front, grow if it
		// already fills the buffer, then read.
		if d.start > 0 {
			copy(d.buf, window)
			d.start, d.end = 0, len(window)
		}
		if d.end == len(d.buf) {
			if len(d.buf) >= maxLineBytes {
				return nil, fmt.Errorf("job: ndjson line %d exceeds %d bytes", d.line+1, maxLineBytes) //schedlint:allowalloc terminal error path, request aborts
			}
			grown := make([]byte, min(2*len(d.buf), maxLineBytes)) //schedlint:allowalloc amortized doubling, capped at maxLineBytes
			copy(grown, d.buf[:d.end])
			d.buf = grown
		}
		n, err := d.r.Read(d.buf[d.end:])
		d.end += n
		if err != nil {
			d.rdErr = err
		} else if n == 0 {
			// A zero-byte, nil-error read: try again rather than spin
			// forever on a broken reader.
			d.rdErr = io.ErrNoProgress
		}
	}
}

func allWhitespace(b []byte) bool {
	for _, c := range b {
		if !isSpace(c) {
			return false
		}
	}
	return true
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// parseCanonical is the wire-shape fast path: the exact byte layout
// AppendJSON (and therefore every round-tripping client) emits —
//
//	{"id":N,"release":F,"deadline":F,"work":F,"value":F-or-"inf"}
//
// matched by literal prefix compares and grammar-validated number
// scans over local indices, with none of the general parser's
// per-byte dispatch. Any deviation (reordered or unusual keys,
// whitespace, escapes, null) reports false and falls back to the
// general parser, so the fast path changes nothing about the accepted
// language — only the cost of its common sentence.
//
//schedlint:hotpath
func parseCanonical(b []byte, j *Job) bool {
	i := 0
	match := func(lit string) bool {
		if len(b)-i >= len(lit) && string(b[i:i+len(lit)]) == lit {
			i += len(lit)
			return true
		}
		return false
	}
	num := func() (float64, bool) {
		tok, ni, ok := scanJSONNumber(b, i)
		if !ok {
			return 0, false
		}
		v, err := strconv.ParseFloat(string(tok), 64)
		if err != nil {
			return 0, false
		}
		i = ni
		return v, true
	}
	if !match(`{"id":`) {
		return false
	}
	tok, ni, ok := scanJSONNumber(b, i)
	if !ok {
		return false
	}
	id, err := strconv.ParseInt(string(tok), 10, 64)
	if err != nil {
		return false
	}
	i = ni
	if !match(`,"release":`) {
		return false
	}
	release, ok := num()
	if !ok {
		return false
	}
	if !match(`,"deadline":`) {
		return false
	}
	deadline, ok := num()
	if !ok {
		return false
	}
	if !match(`,"work":`) {
		return false
	}
	work, ok := num()
	if !ok {
		return false
	}
	if !match(`,"value":`) {
		return false
	}
	value := 0.0
	if match(`"inf"`) {
		value = math.Inf(1)
	} else if v, ok := num(); ok {
		value = v
	} else {
		return false
	}
	if i >= len(b) || b[i] != '}' {
		return false
	}
	for i++; i < len(b); i++ {
		if !isSpace(b[i]) {
			return false
		}
	}
	j.ID, j.Release, j.Deadline, j.Work, j.Value = int(id), release, deadline, work, value
	return true
}

// scanJSONNumber scans one JSON-grammar number token starting at i
// (stricter than strconv: no leading zeros, no "+", no bare-dot
// forms, no hex/underscores/Inf), returning the token and the index
// past it.
//
//schedlint:hotpath
func scanJSONNumber(b []byte, i int) ([]byte, int, bool) {
	start := i
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && '1' <= b[i] && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return nil, i, false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, i, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, i, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	return b[start:i], i, true
}

// lineParser is the non-reflective field parser for one line. The
// scratch buffer (for unescaping rare escaped strings) lives in the
// Decoder so the steady-state path allocates nothing.
type lineParser struct {
	b       []byte
	i       int
	scratch []byte
}

// parseJob parses one JSON object into *j with json.Unmarshal's
// semantics for the Job wire format.
//
//schedlint:hotpath
func (p *lineParser) parseJob(line []byte, j *Job) error {
	p.b, p.i = line, 0
	*j = Job{}
	var valueRaw []byte
	p.ws()
	if p.peek() == 'n' {
		// A top-level null is a no-op in encoding/json: the job keeps
		// its zero value and no error is reported.
		if err := p.lit("null"); err != nil {
			return err
		}
		p.ws()
		if p.i != len(p.b) {
			return p.errAt("after top-level value")
		}
		return nil
	}
	if err := p.expect('{'); err != nil {
		return err
	}
	p.ws()
	if p.peek() == '}' {
		p.i++
	} else {
		for {
			p.ws()
			key, err := p.str()
			if err != nil {
				return err
			}
			p.ws()
			if err := p.expect(':'); err != nil {
				return err
			}
			p.ws()
			switch {
			case keyIs(key, "id"):
				if p.peek() == 'n' {
					if err := p.lit("null"); err != nil {
						return err
					}
					break // null leaves the field untouched
				}
				tok, err := p.number()
				if err != nil {
					return err
				}
				v, err := strconv.ParseInt(string(tok), 10, 64)
				if err != nil {
					return fmt.Errorf("cannot decode number %s into job id", tok) //schedlint:allowalloc terminal error path, request aborts
				}
				j.ID = int(v)
			case keyIs(key, "release"), keyIs(key, "deadline"), keyIs(key, "work"):
				if p.peek() == 'n' {
					if err := p.lit("null"); err != nil {
						return err
					}
					break
				}
				tok, err := p.number()
				if err != nil {
					return err
				}
				v, err := strconv.ParseFloat(string(tok), 64)
				if err != nil {
					return fmt.Errorf("cannot decode number %s", tok) //schedlint:allowalloc terminal error path, request aborts
				}
				switch {
				case keyIs(key, "release"):
					j.Release = v
				case keyIs(key, "deadline"):
					j.Deadline = v
				default:
					j.Work = v
				}
			case keyIs(key, "value"):
				// Job.UnmarshalJSON captures the value field raw and
				// interprets only the last occurrence after the whole
				// object parses; mirror that by recording the span here
				// and deferring interpretation to the end.
				from := p.i
				if err := p.skipValue(0); err != nil {
					return err
				}
				valueRaw = p.b[from:p.i]
			default:
				if err := p.skipValue(0); err != nil {
					return err
				}
			}
			p.ws()
			if c := p.peek(); c == ',' {
				p.i++
				continue
			} else if c == '}' {
				p.i++
				break
			}
			return p.errAt("after object member")
		}
	}
	p.ws()
	if p.i != len(p.b) {
		return p.errAt("after top-level object")
	}
	return p.applyValue(valueRaw, j)
}

// applyValue interprets the raw value span with Job.UnmarshalJSON's
// semantics: absent leaves zero, a number parses, null resolves to
// zero, and the strings "inf"/"+inf" (any case) mean +Inf.
//
//schedlint:coldpath
func (p *lineParser) applyValue(raw []byte, j *Job) error {
	if raw == nil {
		return nil
	}
	switch c := raw[0]; {
	case c == '"':
		p.b, p.i = raw, 0
		s, err := p.str()
		if err != nil {
			return err
		}
		if !foldIsInf(s) {
			return fmt.Errorf("job %d: unsupported value %q (want a number or \"inf\")", j.ID, s)
		}
		j.Value = math.Inf(1)
	case c == 'n': // null: the raw value decodes as a no-op onto zero
		j.Value = 0
	case c == '-' || ('0' <= c && c <= '9'):
		v, err := strconv.ParseFloat(string(raw), 64)
		if err != nil {
			return fmt.Errorf("cannot decode number %s", raw)
		}
		j.Value = v
	default: // true/false/objects/arrays cannot decode into a float64
		return fmt.Errorf("cannot decode %s into job value", raw)
	}
	return nil
}

// keyIs matches a decoded key against a lower-case field name with
// json.Unmarshal's case-insensitive fallback. The hot path is a plain
// ASCII fold; keys containing non-ASCII bytes take the full Unicode
// fold (characters like U+017F fold into ASCII, and encoding/json
// would match them).
//
//schedlint:hotpath
func keyIs(key []byte, name string) bool {
	nonASCII := false
	if len(key) == len(name) {
		match := true
		for i := 0; i < len(key); i++ {
			c := key[i]
			if c >= utf8.RuneSelf {
				nonASCII = true
				match = false
				break
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != name[i] {
				match = false
			}
		}
		if match {
			return true
		}
	} else {
		for _, c := range key {
			if c >= utf8.RuneSelf {
				nonASCII = true
				break
			}
		}
	}
	return nonASCII && strings.EqualFold(string(key), name)
}

// foldIsInf reports whether the string is "inf" or "+inf" in any case.
func foldIsInf(s []byte) bool {
	if len(s) > 0 && s[0] == '+' {
		s = s[1:]
	}
	return keyIs(s, "inf")
}

//schedlint:hotpath
func (p *lineParser) peek() byte {
	if p.i < len(p.b) {
		return p.b[p.i]
	}
	return 0
}

//schedlint:hotpath
func (p *lineParser) ws() {
	for p.i < len(p.b) && isSpace(p.b[p.i]) {
		p.i++
	}
}

//schedlint:hotpath
func (p *lineParser) expect(c byte) error {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return nil
	}
	return p.errAt(fmt.Sprintf("looking for %q", c)) //schedlint:allowalloc terminal error path, request aborts
}

//schedlint:hotpath
func (p *lineParser) lit(s string) error {
	if len(p.b)-p.i >= len(s) && string(p.b[p.i:p.i+len(s)]) == s {
		p.i += len(s)
		return nil
	}
	return p.errAt("in literal")
}

//schedlint:coldpath
func (p *lineParser) errAt(ctx string) error {
	if p.i >= len(p.b) {
		return fmt.Errorf("unexpected end of line %s", ctx)
	}
	return fmt.Errorf("invalid character %q at offset %d %s", p.b[p.i], p.i, ctx)
}

// number scans one JSON number token via the shared grammar scanner
// (stricter than strconv: no leading zeros, no "+", no bare "."
// forms, no hex/underscores/Inf).
//
//schedlint:hotpath
func (p *lineParser) number() ([]byte, error) {
	tok, ni, ok := scanJSONNumber(p.b, p.i)
	p.i = ni
	if !ok {
		return nil, p.errAt("in numeric literal")
	}
	return tok, nil
}

// str parses a JSON string. The fast path returns a subslice of the
// line; escapes fall back to unescaping into the reused scratch.
//
//schedlint:hotpath
func (p *lineParser) str() ([]byte, error) {
	if err := p.expect('"'); err != nil {
		return nil, err
	}
	start := p.i
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c == '"':
			s := p.b[start:p.i]
			p.i++
			return s, nil
		case c == '\\':
			return p.strSlow(start)
		case c < 0x20:
			return nil, p.errAt("in string literal (unescaped control character)")
		default:
			p.i++
		}
	}
	return nil, p.errAt("in unterminated string")
}

// strSlow unescapes from the first backslash on, mirroring
// encoding/json: named escapes, \uXXXX with UTF-16 surrogate pairs,
// and lone surrogates replaced by U+FFFD without error.
//
//schedlint:coldpath
func (p *lineParser) strSlow(start int) ([]byte, error) {
	p.scratch = append(p.scratch[:0], p.b[start:p.i]...)
	for p.i < len(p.b) {
		c := p.b[p.i]
		switch {
		case c == '"':
			p.i++
			return p.scratch, nil
		case c < 0x20:
			return nil, p.errAt("in string literal (unescaped control character)")
		case c != '\\':
			p.scratch = append(p.scratch, c)
			p.i++
		default:
			p.i++
			if p.i >= len(p.b) {
				return nil, p.errAt("in string escape")
			}
			e := p.b[p.i]
			p.i++
			switch e {
			case '"', '\\', '/':
				p.scratch = append(p.scratch, e)
			case 'b':
				p.scratch = append(p.scratch, '\b')
			case 'f':
				p.scratch = append(p.scratch, '\f')
			case 'n':
				p.scratch = append(p.scratch, '\n')
			case 'r':
				p.scratch = append(p.scratch, '\r')
			case 't':
				p.scratch = append(p.scratch, '\t')
			case 'u':
				r, err := p.hex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					// A high surrogate pairs with an immediately
					// following low-surrogate escape; anything else
					// (including a lone low surrogate) becomes U+FFFD
					// without consuming the next escape — exactly
					// encoding/json's behaviour.
					if dec, ok := p.pairLowSurrogate(r); ok {
						r = dec
					} else {
						r = utf8.RuneError
					}
				}
				p.scratch = utf8.AppendRune(p.scratch, r)
			default:
				return nil, fmt.Errorf("invalid escape \\%c in string literal", e)
			}
		}
	}
	return nil, p.errAt("in unterminated string")
}

// pairLowSurrogate consumes a following \uXXXX escape if (and only
// if) r1 is a high surrogate and the escape is a low surrogate,
// returning the decoded rune.
//
//schedlint:coldpath
func (p *lineParser) pairLowSurrogate(r1 rune) (rune, bool) {
	if r1 >= 0xDC00 { // low surrogate first: never pairs
		return 0, false
	}
	save := p.i
	if p.i+1 < len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
		p.i += 2
		if r2, err := p.hex4(); err == nil && 0xDC00 <= r2 && r2 < 0xE000 {
			return utf16.DecodeRune(r1, r2), true
		}
	}
	p.i = save
	return 0, false
}

//schedlint:coldpath
func (p *lineParser) hex4() (rune, error) {
	if p.i+4 > len(p.b) {
		return 0, p.errAt("in \\u escape")
	}
	var r rune
	for k := 0; k < 4; k++ {
		c := p.b[p.i+k]
		switch {
		case '0' <= c && c <= '9':
			r = r<<4 | rune(c-'0')
		case 'a' <= c && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case 'A' <= c && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, fmt.Errorf("invalid character %q in \\u escape", c)
		}
	}
	p.i += 4
	return r, nil
}

// skipValue validates and discards one JSON value of any type — the
// unknown-field path. Depth is bounded so a pathological line cannot
// blow the stack.
//
//schedlint:coldpath
func (p *lineParser) skipValue(depth int) error {
	if depth > 64 {
		return fmt.Errorf("value nested deeper than 64 levels")
	}
	p.ws()
	switch c := p.peek(); {
	case c == '"':
		_, err := p.str()
		return err
	case c == '-' || ('0' <= c && c <= '9'):
		_, err := p.number()
		return err
	case c == 't':
		return p.lit("true")
	case c == 'f':
		return p.lit("false")
	case c == 'n':
		return p.lit("null")
	case c == '{':
		p.i++
		p.ws()
		if p.peek() == '}' {
			p.i++
			return nil
		}
		for {
			p.ws()
			if _, err := p.str(); err != nil {
				return err
			}
			p.ws()
			if err := p.expect(':'); err != nil {
				return err
			}
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.ws()
			if c := p.peek(); c == ',' {
				p.i++
				continue
			} else if c == '}' {
				p.i++
				return nil
			}
			return p.errAt("after object member")
		}
	case c == '[':
		p.i++
		p.ws()
		if p.peek() == ']' {
			p.i++
			return nil
		}
		for {
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.ws()
			if c := p.peek(); c == ',' {
				p.i++
				continue
			} else if c == ']' {
				p.i++
				return nil
			}
			return p.errAt("after array element")
		}
	default:
		return p.errAt("looking for a value")
	}
}

// AppendJSON appends the job's JSON encoding to dst, byte-identical to
// json.Marshal (including the "inf" value string) but without
// reflection or intermediate allocation. The job must be Validate-
// clean: NaN or -Inf fields — which json.Marshal refuses — are the
// caller's bug, not an encodable state.
//
//schedlint:hotpath
func AppendJSON(dst []byte, j Job) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendInt(dst, int64(j.ID), 10)
	dst = append(dst, `,"release":`...)
	dst = AppendFloat(dst, j.Release)
	dst = append(dst, `,"deadline":`...)
	dst = AppendFloat(dst, j.Deadline)
	dst = append(dst, `,"work":`...)
	dst = AppendFloat(dst, j.Work)
	dst = append(dst, `,"value":`...)
	if math.IsInf(j.Value, 1) {
		dst = append(dst, `"inf"`...)
	} else {
		dst = AppendFloat(dst, j.Value)
	}
	return append(dst, '}')
}

// AppendNDJSON appends one NDJSON line per job — AppendJSON plus a
// trailing newline each — the exact stream shape the ingest endpoint
// consumes and the WAL's batch records store.
//
//schedlint:hotpath
func AppendNDJSON(dst []byte, js []Job) []byte {
	for i := range js {
		dst = AppendJSON(dst, js[i])
		dst = append(dst, '\n')
	}
	return dst
}

// DecodeAll parses a complete NDJSON byte slice, appending every job
// onto dst. It is the cold-path counterpart of the streaming Decoder
// — WAL recovery and tests use it to rehydrate batch records in one
// call. The first malformed line fails the whole slice.
func DecodeAll(dst []Job, b []byte) ([]Job, error) {
	d := GetDecoder(bytes.NewReader(b))
	defer PutDecoder(d)
	for {
		var j Job
		if err := d.Next(&j); err != nil {
			if err == io.EOF {
				return dst, nil
			}
			return dst, err
		}
		dst = append(dst, j)
	}
}

// AppendString appends s as a JSON string literal with
// encoding/json-compatible escaping: control characters, quotes,
// backslashes, the HTML-sensitive runes, the JS line separators
// U+2028/U+2029, and invalid UTF-8 replaced by the escaped replacement
// character — byte-identical to json.Marshal of the same string,
// pinned by test. It is the single source of the wire string format;
// the daemon's hand-rolled response paths and the engine's spec and
// snapshot encoders all render strings through it.
//
//schedlint:hotpath
func AppendString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			switch {
			case c == '"':
				b = append(b, '\\', '"')
			case c == '\\':
				b = append(b, '\\', '\\')
			case c == '\n':
				b = append(b, '\\', 'n')
			case c == '\r':
				b = append(b, '\\', 'r')
			case c == '\t':
				b = append(b, '\\', 't')
			case c < 0x20, c == '<', c == '>', c == '&':
				b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xF])
			default:
				b = append(b, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case r == utf8.RuneError && size == 1:
			b = append(b, `\ufffd`...)
		case r == '\u2028', r == '\u2029':
			b = append(b, '\\', 'u', '2', '0', '2', byte('8'+r-'\u2028'))
		default:
			b = append(b, s[i:i+size]...)
		}
		i += size
	}
	return append(b, '"')
}

// AppendFloat appends a finite float64 formatted exactly like
// encoding/json: the shortest 'f' form in mid-range, 'e' with a
// trimmed one-digit exponent outside it. It is the single source of
// the wire float format — the daemon's hand-rolled snapshot encoding
// uses it too, so hot- and cold-path responses cannot drift apart.
//
//schedlint:hotpath
func AppendFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) { //schedlint:exactfloat zero sentinel picks the wire format
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}
