package job

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func valid() Job {
	return Job{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: 3}
}

func TestJobValidate(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := map[string]func(*Job){
		"deadline==release": func(j *Job) { j.Deadline = j.Release },
		"deadline<release":  func(j *Job) { j.Deadline = j.Release - 1 },
		"zero work":         func(j *Job) { j.Work = 0 },
		"negative work":     func(j *Job) { j.Work = -1 },
		"negative value":    func(j *Job) { j.Value = -0.5 },
		"NaN release":       func(j *Job) { j.Release = math.NaN() },
		"Inf deadline":      func(j *Job) { j.Deadline = math.Inf(1) },
		"NaN work":          func(j *Job) { j.Work = math.NaN() },
		"NaN value":         func(j *Job) { j.Value = math.NaN() },
		"-Inf value":        func(j *Job) { j.Value = math.Inf(-1) },
	}
	for name, mut := range cases {
		j := valid()
		mut(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestSpanDensity(t *testing.T) {
	j := Job{Release: 1, Deadline: 5, Work: 8}
	if j.Span() != 4 {
		t.Fatalf("span=%v", j.Span())
	}
	if j.Density() != 2 {
		t.Fatalf("density=%v", j.Density())
	}
}

func TestInstanceValidate(t *testing.T) {
	in := &Instance{M: 0, Alpha: 2, Jobs: []Job{valid()}}
	if err := in.Validate(); err == nil {
		t.Error("m=0 must be rejected")
	}
	in = &Instance{M: 1, Alpha: 1, Jobs: []Job{valid()}}
	if err := in.Validate(); err == nil {
		t.Error("alpha=1 must be rejected")
	}
	bad := valid()
	bad.Work = -1
	in = &Instance{M: 1, Alpha: 2, Jobs: []Job{bad}}
	if err := in.Validate(); err == nil {
		t.Error("bad job must be rejected")
	}
	in = &Instance{M: 2, Alpha: 2.5, Jobs: []Job{valid()}}
	if err := in.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestNormalizeSortsKeepingIDs(t *testing.T) {
	in := &Instance{M: 1, Alpha: 2, Jobs: []Job{
		{ID: 9, Release: 3, Deadline: 5, Work: 1, Value: 1},
		{ID: 7, Release: 1, Deadline: 9, Work: 1, Value: 1},
		{ID: 4, Release: 1, Deadline: 2, Work: 1, Value: 1},
	}}
	in.Normalize()
	if in.Jobs[0].Release != 1 || in.Jobs[0].Deadline != 2 {
		t.Fatalf("sort order wrong: %+v", in.Jobs)
	}
	// IDs are stable identifiers and must survive normalization.
	if in.Jobs[0].ID != 4 || in.Jobs[1].ID != 7 || in.Jobs[2].ID != 9 {
		t.Fatalf("IDs were rewritten: %+v", in.Jobs)
	}
}

func TestValidateRejectsDuplicateIDs(t *testing.T) {
	in := &Instance{M: 1, Alpha: 2, Jobs: []Job{
		{ID: 3, Release: 0, Deadline: 1, Work: 1, Value: 1},
		{ID: 3, Release: 1, Deadline: 2, Work: 1, Value: 1},
	}}
	if err := in.Validate(); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := &Instance{M: 1, Alpha: 2, Jobs: []Job{valid()}}
	cp := in.Clone()
	cp.Jobs[0].Work = 42
	if in.Jobs[0].Work == 42 {
		t.Fatal("clone shares job slice")
	}
}

func TestAggregates(t *testing.T) {
	in := &Instance{M: 1, Alpha: 2, Jobs: []Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 2, Value: 10},
		{ID: 1, Release: 3, Deadline: 7, Work: 3, Value: 5},
	}}
	if in.TotalWork() != 5 {
		t.Errorf("total work %v", in.TotalWork())
	}
	if in.TotalValue() != 15 {
		t.Errorf("total value %v", in.TotalValue())
	}
	t0, t1 := in.Horizon()
	if t0 != 0 || t1 != 7 {
		t.Errorf("horizon [%v,%v]", t0, t1)
	}
}

func TestHorizonEmpty(t *testing.T) {
	in := &Instance{M: 1, Alpha: 2}
	if t0, t1 := in.Horizon(); t0 != 0 || t1 != 0 {
		t.Fatalf("empty horizon [%v,%v]", t0, t1)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := &Instance{M: 3, Alpha: 2.5, Jobs: []Job{
		{ID: 1, Release: 0.5, Deadline: 2.25, Work: 1.5, Value: 4},
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 2},
	}}
	var buf bytes.Buffer
	if err := in.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != 3 || back.Alpha != 2.5 || len(back.Jobs) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// ReadTrace normalizes: release order.
	if back.Jobs[0].Release != 0 {
		t.Fatalf("not normalized: %+v", back.Jobs)
	}
}

func TestReadTraceRejectsInvalid(t *testing.T) {
	_, err := ReadTrace(strings.NewReader(`{"m":1,"alpha":2,"jobs":[{"id":0,"release":0,"deadline":0,"work":1,"value":1}]}`))
	if err == nil {
		t.Fatal("invalid trace accepted")
	}
	_, err = ReadTrace(strings.NewReader(`not json`))
	if err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestJSONRoundTripsInfiniteValues(t *testing.T) {
	in := &Instance{M: 1, Alpha: 2, Jobs: []Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: math.Inf(1)},
		{ID: 1, Release: 0.5, Deadline: 2, Work: 0.3, Value: 4.25},
	}}
	var buf bytes.Buffer
	if err := in.WriteTrace(&buf); err != nil {
		t.Fatalf("finish-all instances must serialise: %v", err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.Jobs[0].Value, 1) {
		t.Fatalf("infinite value lost: %+v", back.Jobs[0])
	}
	if back.Jobs[1].Value != 4.25 {
		t.Fatalf("finite value mangled: %+v", back.Jobs[1])
	}
	// The wire form is the string "inf", accepted case-insensitively.
	var j Job
	if err := json.Unmarshal([]byte(`{"id":7,"release":0,"deadline":1,"work":1,"value":"INF"}`), &j); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(j.Value, 1) {
		t.Fatalf("want +Inf, got %v", j.Value)
	}
	if err := json.Unmarshal([]byte(`{"id":7,"release":0,"deadline":1,"work":1,"value":"lots"}`), &j); err == nil {
		t.Fatal("garbage value string must be rejected")
	}
}
