// CSV trace support: a flat interchange format for job sets, easier to
// produce from spreadsheets or log processors than the JSON trace.

package job

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// csvHeader is the required first row of a CSV trace.
var csvHeader = []string{"id", "release", "deadline", "work", "value"}

// WriteCSV serialises the instance's jobs as CSV with a header row.
// The machine environment (m, α) is not part of the CSV format; callers
// provide it again when reading.
func (in *Instance) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string {
		if math.IsInf(v, 1) {
			return "inf"
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for _, j := range in.Jobs {
		rec := []string{strconv.Itoa(j.ID), f(j.Release), f(j.Deadline), f(j.Work), f(j.Value)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace (header + one row per job) into an
// instance with the given machine environment, validating and
// normalizing the result. The value column accepts "inf" for the
// classical finish-all model.
func ReadCSV(r io.Reader, m int, alpha float64) (*Instance, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("job: reading CSV trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("job: empty CSV trace")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("job: CSV header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, h := range csvHeader {
		if rows[0][i] != h {
			return nil, fmt.Errorf("job: CSV column %d is %q, want %q", i, rows[0][i], h)
		}
	}
	in := &Instance{M: m, Alpha: alpha}
	for line, rec := range rows[1:] {
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("job: CSV line %d: bad id %q", line+2, rec[0])
		}
		fs := make([]float64, 4)
		for i, cell := range rec[1:] {
			if cell == "inf" {
				fs[i] = math.Inf(1)
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("job: CSV line %d: bad %s %q", line+2, csvHeader[i+1], cell)
			}
			fs[i] = v
		}
		in.Jobs = append(in.Jobs, Job{ID: id, Release: fs[0], Deadline: fs[1], Work: fs[2], Value: fs[3]})
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	in.Normalize()
	return in, nil
}
