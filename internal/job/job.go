// Package job defines the job model of the paper: preemptable,
// migratable jobs with a release time, deadline, workload and value,
// arriving online. It also provides instance containers, validation and
// JSON trace I/O so workloads can be generated once and replayed across
// algorithms.
package job

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Job is a single unit of work. A scheduler that finishes Work units of
// it inside [Release, Deadline) earns Value; otherwise it loses Value.
type Job struct {
	// ID identifies the job within its instance. IDs must be unique
	// (checked by Instance.Validate) and are stable: schedules refer to
	// jobs by these IDs.
	ID int `json:"id"`
	// Release is the arrival time r_j; the job and all its attributes
	// become known to an online scheduler exactly at this moment.
	Release float64 `json:"release"`
	// Deadline is d_j; work processed at or after it is worthless.
	Deadline float64 `json:"deadline"`
	// Work is the workload w_j > 0 in machine-speed units × time.
	Work float64 `json:"work"`
	// Value is v_j ≥ 0, the loss suffered if the job is not finished.
	Value float64 `json:"value"`
}

// jobWire mirrors Job on the JSON wire with Value loosened: JSON
// numbers cannot encode +Inf, which is how the classical finish-all
// model is expressed, so infinite values round-trip as the string
// "inf" (the CSV format already does the same).
type jobWire struct {
	ID       int             `json:"id"`
	Release  float64         `json:"release"`
	Deadline float64         `json:"deadline"`
	Work     float64         `json:"work"`
	Value    json.RawMessage `json:"value,omitempty"`
}

// MarshalJSON encodes the job, writing +Inf values as "inf".
func (j Job) MarshalJSON() ([]byte, error) {
	w := jobWire{ID: j.ID, Release: j.Release, Deadline: j.Deadline, Work: j.Work}
	if math.IsInf(j.Value, 1) {
		w.Value = json.RawMessage(`"inf"`)
	} else {
		v, err := json.Marshal(j.Value)
		if err != nil {
			return nil, err
		}
		w.Value = v
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a job, accepting a number or the string "inf"
// (in any case) for the value field.
func (j *Job) UnmarshalJSON(data []byte) error {
	var w jobWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	j.ID, j.Release, j.Deadline, j.Work = w.ID, w.Release, w.Deadline, w.Work
	j.Value = 0
	if len(w.Value) == 0 {
		return nil
	}
	if w.Value[0] == '"' {
		var s string
		if err := json.Unmarshal(w.Value, &s); err != nil {
			return err
		}
		if !strings.EqualFold(s, "inf") && !strings.EqualFold(s, "+inf") {
			return fmt.Errorf("job %d: unsupported value %q (want a number or \"inf\")", j.ID, s)
		}
		j.Value = math.Inf(1)
		return nil
	}
	return json.Unmarshal(w.Value, &j.Value)
}

// Span returns the length of the job's feasibility window d_j - r_j.
func (j Job) Span() float64 { return j.Deadline - j.Release }

// Density returns w_j / (d_j - r_j), the minimum average speed needed
// to finish the job using its whole window.
func (j Job) Density() float64 { return j.Work / j.Span() }

// Validate reports the first structural problem with the job, if any.
// It sits on the serving daemon's per-arrival path, so it must not
// allocate on the happy path.
func (j Job) Validate() error {
	for i, v := range [...]float64{j.Release, j.Deadline, j.Work} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("job %d: %s is not finite", j.ID, [...]string{"release", "deadline", "work"}[i])
		}
	}
	// Value may be +Inf: that encodes the classical "must finish"
	// model of Yao, Demers and Shenker, which the profit model
	// generalises.
	if math.IsNaN(j.Value) || math.IsInf(j.Value, -1) {
		return fmt.Errorf("job %d: value is NaN or -Inf", j.ID)
	}
	if j.Deadline <= j.Release {
		return fmt.Errorf("job %d: deadline %v not after release %v", j.ID, j.Deadline, j.Release)
	}
	if j.Work <= 0 {
		return fmt.Errorf("job %d: workload must be positive, got %v", j.ID, j.Work)
	}
	if j.Value < 0 {
		return fmt.Errorf("job %d: value must be nonnegative, got %v", j.ID, j.Value)
	}
	return nil
}

// Instance is a full problem instance: a job set together with the
// machine environment it is to be scheduled on.
type Instance struct {
	// M is the number of speed-scalable processors, m ≥ 1.
	M int `json:"m"`
	// Alpha is the energy exponent of the power function.
	Alpha float64 `json:"alpha"`
	// Jobs is the job set, sorted by release time after Normalize.
	Jobs []Job `json:"jobs"`
}

// Validate checks the environment and every job.
func (in *Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("instance: need at least one processor, got %d", in.M)
	}
	if math.IsNaN(in.Alpha) || in.Alpha <= 1 {
		return fmt.Errorf("instance: energy exponent must be > 1, got %v", in.Alpha)
	}
	seen := make(map[int]struct{}, len(in.Jobs))
	for _, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if _, dup := seen[j.ID]; dup {
			return fmt.Errorf("instance: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = struct{}{}
	}
	return nil
}

// Normalize sorts jobs by release time (stable, ties by deadline then
// ID). Online algorithms consume jobs in this order. IDs are left
// untouched — they are stable identifiers that schedules refer to.
func (in *Instance) Normalize() {
	sort.SliceStable(in.Jobs, func(a, b int) bool {
		ja, jb := in.Jobs[a], in.Jobs[b]
		if ja.Release != jb.Release { //schedlint:exactfloat sort tie-break on bit-identical inputs
			return ja.Release < jb.Release
		}
		if ja.Deadline != jb.Deadline { //schedlint:exactfloat sort tie-break on bit-identical inputs
			return ja.Deadline < jb.Deadline
		}
		return ja.ID < jb.ID
	})
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{M: in.M, Alpha: in.Alpha, Jobs: make([]Job, len(in.Jobs))}
	copy(out.Jobs, in.Jobs)
	return out
}

// TotalWork returns Σ w_j.
func (in *Instance) TotalWork() float64 {
	var s float64
	for _, j := range in.Jobs {
		s += j.Work
	}
	return s
}

// TotalValue returns Σ v_j, the cost of the trivial schedule that
// rejects everything (an upper bound on OPT).
func (in *Instance) TotalValue() float64 {
	var s float64
	for _, j := range in.Jobs {
		s += j.Value
	}
	return s
}

// Horizon returns the earliest release and latest deadline.
func (in *Instance) Horizon() (t0, t1 float64) {
	if len(in.Jobs) == 0 {
		return 0, 0
	}
	t0, t1 = in.Jobs[0].Release, in.Jobs[0].Deadline
	for _, j := range in.Jobs[1:] {
		t0 = math.Min(t0, j.Release)
		t1 = math.Max(t1, j.Deadline)
	}
	return t0, t1
}

// WriteTrace serialises the instance as indented JSON.
func (in *Instance) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadTrace parses an instance from JSON, validates and normalizes it.
func ReadTrace(r io.Reader) (*Instance, error) {
	var in Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("job: decoding trace: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	in.Normalize()
	return &in, nil
}
