package job

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestAppendString pins the wire string escaper byte-identical to
// json.Marshal across the escaping corners it special-cases.
func TestAppendString(t *testing.T) {
	cases := []string{
		"", "plain", "t-42", `quote"back\slash`, "tab\tnl\ncr\r",
		"ctl\x01\x1f", "<html>&", "unicode µ≥", "  ",
		"bad\xffutf8", "emoji 🚀", strings.Repeat("x", 300),
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q):\n got %s\nwant %s", s, got, want)
		}
	}
}

// TestAppendNDJSONDecodeAll round-trips a batch through the NDJSON
// helpers: AppendNDJSON must be line-per-job AppendJSON, and DecodeAll
// must rehydrate it value-identical.
func TestAppendNDJSONDecodeAll(t *testing.T) {
	js := []Job{
		{ID: 1, Release: 0, Deadline: 10, Work: 1.5, Value: math.Inf(1)},
		{ID: 2, Release: 0.25, Deadline: 11, Work: 2, Value: 7},
		{ID: 3, Release: 3, Deadline: 12.5, Work: 1e-9, Value: 0},
	}
	b := AppendNDJSON(nil, js)
	var want []byte
	for _, j := range js {
		want = AppendJSON(want, j)
		want = append(want, '\n')
	}
	if string(b) != string(want) {
		t.Fatalf("AppendNDJSON:\n got %q\nwant %q", b, want)
	}
	got, err := DecodeAll(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(js) {
		t.Fatalf("DecodeAll returned %d jobs, want %d", len(got), len(js))
	}
	for i := range js {
		if got[i] != js[i] {
			t.Errorf("job %d: got %+v want %+v", i, got[i], js[i])
		}
	}

	if _, err := DecodeAll(nil, []byte("{\"id\":1,\n{broken\n")); err == nil {
		t.Fatal("DecodeAll accepted a malformed stream")
	}
	if out, err := DecodeAll(js[:1], nil); err != nil || len(out) != 1 {
		t.Fatalf("DecodeAll on empty input = %v, %v; want the unchanged prefix", out, err)
	}
}
