package job

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
)

// decodeRef is the reference decoder: json.Unmarshal of one line into
// a Job, i.e. exactly what the serving daemon did before the
// hand-rolled decoder existed.
func decodeRef(line []byte) (Job, error) {
	var j Job
	err := json.Unmarshal(line, &j)
	return j, err
}

// decodeFast runs the hand-rolled parser over one line.
func decodeFast(line []byte) (Job, error) {
	var p lineParser
	var j Job
	err := p.parseJob(line, &j)
	return j, err
}

// diffLine pins one line both ways: fast and reference must agree on
// success/failure, and on success produce bit-identical jobs.
func diffLine(t *testing.T, line string) {
	t.Helper()
	want, werr := decodeRef([]byte(line))
	got, gerr := decodeFast([]byte(line))
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("line %q: error divergence: encoding/json=%v, ndjson=%v", line, werr, gerr)
	}
	if werr != nil {
		return
	}
	if !jobsBitEqual(want, got) {
		t.Fatalf("line %q: value divergence:\nencoding/json %+v\nndjson        %+v", line, want, got)
	}
}

// jobsBitEqual compares jobs bit-for-bit (NaN-safe, ±0-exact).
func jobsBitEqual(a, b Job) bool {
	return a.ID == b.ID &&
		math.Float64bits(a.Release) == math.Float64bits(b.Release) &&
		math.Float64bits(a.Deadline) == math.Float64bits(b.Deadline) &&
		math.Float64bits(a.Work) == math.Float64bits(b.Work) &&
		math.Float64bits(a.Value) == math.Float64bits(b.Value)
}

func TestNDJSONDecoderMatchesEncodingJSON(t *testing.T) {
	lines := []string{
		// Plain happy paths.
		`{"id":1,"release":0,"deadline":1,"work":0.5,"value":2}`,
		`{"id":-3,"release":1.25e2,"deadline":1e3,"work":3.25,"value":0}`,
		`{"id":0,"release":0.1,"deadline":0.2,"work":1e-9,"value":1e21}`,
		`{"id":7,"release":-5.5,"deadline":-1,"work":2,"value":1.7976931348623157e308}`,
		// The trace format's infinite values, in every accepted spelling.
		`{"id":1,"release":0,"deadline":1,"work":1,"value":"inf"}`,
		`{"id":1,"release":0,"deadline":1,"work":1,"value":"INF"}`,
		`{"id":1,"release":0,"deadline":1,"work":1,"value":"+Inf"}`,
		`{"id":1,"release":0,"deadline":1,"work":1,"value":"iNf"}`,
		// Unsupported value strings must fail in both.
		`{"id":1,"release":0,"deadline":1,"work":1,"value":"infinity"}`,
		`{"id":1,"release":0,"deadline":1,"work":1,"value":"-inf"}`,
		`{"id":1,"release":0,"deadline":1,"work":1,"value":""}`,
		// Escaped spellings of the same strings.
		`{"id":1,"release":0,"deadline":1,"work":1,"value":"\u0069nf"}`,
		`{"id":1,"release":0,"deadline":1,"work":1,"value":"i\nf"}`,
		// Absent, null and duplicate fields.
		`{"id":4,"release":1,"deadline":2,"work":3}`,
		`{"id":4,"release":1,"deadline":2,"work":3,"value":null}`,
		`{"id":null,"release":null,"deadline":null,"work":null,"value":null}`,
		`{"id":4,"id":9,"release":1,"release":2,"deadline":2,"work":3}`,
		`{"value":3,"value":null,"id":1,"release":0,"deadline":1,"work":1}`,
		`{"value":"nope","value":7,"id":1,"release":0,"deadline":1,"work":1}`,
		`{"id":4,"id":null,"release":1,"deadline":2,"work":3}`,
		`{}`,
		// Case-insensitive keys, like encoding/json.
		`{"ID":5,"Release":1,"DEADLINE":2,"Work":3,"VaLuE":4}`,
		`{"relea\u017fe":9,"id":1}`,
		// Unknown fields are ignored but still syntax-checked.
		`{"id":1,"extra":{"nested":[1,2,{"x":"y"}]},"release":2}`,
		`{"id":1,"extra":"\ud83d\ude00","release":2}`,
		`{"id":1,"extra":[true,false,null],"release":2}`,
		`{"id":1,"extra":{bad},"release":2}`,
		`{"id":1,"extra":[1,2,],"release":2}`,
		// Whitespace tolerance.
		`   { "id" : 2 , "release" : 0.5 , "deadline":1, "work":1, "value":1 }   `,
		"\t{\"id\":3,\"release\":0,\"deadline\":1,\"work\":1}\r",
		// Number grammar edges (JSON is stricter than strconv).
		`{"id":1,"release":01,"deadline":1,"work":1}`,
		`{"id":1,"release":+1,"deadline":1,"work":1}`,
		`{"id":1,"release":.5,"deadline":1,"work":1}`,
		`{"id":1,"release":1.,"deadline":1,"work":1}`,
		`{"id":1,"release":1e,"deadline":1,"work":1}`,
		`{"id":1,"release":1e+,"deadline":1,"work":1}`,
		`{"id":1,"release":-,"deadline":1,"work":1}`,
		`{"id":1,"release":0x10,"deadline":1,"work":1}`,
		`{"id":1,"release":Infinity,"deadline":1,"work":1}`,
		`{"id":1,"release":NaN,"deadline":1,"work":1}`,
		`{"id":1,"release":1_000,"deadline":1,"work":1}`,
		`{"id":1,"release":-0,"deadline":1,"work":1}`,
		`{"id":1,"release":1e999,"deadline":1,"work":1}`,
		`{"id":1,"release":1e-999,"deadline":1,"work":1}`,
		// Type errors.
		`{"id":1.5,"release":0,"deadline":1,"work":1}`,
		`{"id":1e2,"release":0,"deadline":1,"work":1}`,
		`{"id":"1","release":0,"deadline":1,"work":1}`,
		`{"id":9223372036854775807,"release":0,"deadline":1,"work":1}`,
		`{"id":9223372036854775808,"release":0,"deadline":1,"work":1}`,
		`{"id":true,"release":0,"deadline":1,"work":1}`,
		`{"id":1,"release":"0","deadline":1,"work":1}`,
		`{"id":1,"release":[],"deadline":1,"work":1}`,
		`{"id":1,"value":true}`,
		`{"id":1,"value":{"a":1}}`,
		`{"id":1,"value":[1]}`,
		// Structural errors.
		``,
		`{`,
		`}`,
		`{"id"}`,
		`{"id":}`,
		`{"id":1,}`,
		`{"id":1 "release":2}`,
		`{"id":1}}`,
		`{"id":1} extra`,
		`[1,2,3]`,
		`42`,
		`"job"`,
		`null`,
		`true`,
		`{'id':1}`,
		`{"id:1}`,
		`{"id\q":1}`,
		"{\"id\x01\":1}",
		`{"id":1,"x":"\ud800"}`,
		`{"id":1,"x":"\ud800\ud800"}`,
		`{"id":1,"x":"\udc00\udc00"}`,
		`{"id":1,"x":"\ud83d\ude00tail"}`,
		`{"id":1,"x":"\u12"}`,
		`{"id":1,"x":"broken`,
	}
	for _, line := range lines {
		diffLine(t, line)
	}
}

// TestNDJSONDecoderStreamFraming pins the line framing: blank lines
// skipped, a final unterminated line parsed, CRLF tolerated, errors
// carrying the line number, io.EOF at the end.
func TestNDJSONDecoderStreamFraming(t *testing.T) {
	stream := "{\"id\":1,\"release\":0,\"deadline\":1,\"work\":1}\n" +
		"\n   \n" +
		"{\"id\":2,\"release\":1,\"deadline\":2,\"work\":1,\"value\":\"inf\"}\r\n" +
		"{\"id\":3,\"release\":2,\"deadline\":3,\"work\":2}" // no trailing newline
	d := NewDecoder(strings.NewReader(stream))
	var got []Job
	for {
		var j Job
		err := d.Next(&j)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, j)
	}
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Fatalf("decoded %+v", got)
	}
	if !math.IsInf(got[1].Value, 1) {
		t.Fatalf("job 2 value = %v, want +Inf", got[1].Value)
	}
	if d.Line() != 5 {
		t.Fatalf("line counter = %d, want 5", d.Line())
	}

	d.Reset(strings.NewReader("{\"id\":1,\"release\":0,\"deadline\":1,\"work\":1}\n{oops\n"))
	var j Job
	if err := d.Next(&j); err != nil {
		t.Fatal(err)
	}
	err := d.Next(&j)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed second line: %v", err)
	}
	if err := d.Next(&j); err != io.EOF {
		t.Fatalf("after error: %v, want EOF", err)
	}
}

// TestNDJSONDecoderLongLines exercises buffer growth across the read
// chunk size and the hard line-length bound.
func TestNDJSONDecoderLongLines(t *testing.T) {
	pad := strings.Repeat(" ", 3*decoderBufSize)
	line := `{"id":11,` + pad + `"release":1,"deadline":2,"work":3}`
	d := NewDecoder(strings.NewReader(line + "\n"))
	var j Job
	if err := d.Next(&j); err != nil || j.ID != 11 || j.Work != 3 {
		t.Fatalf("long line: %v %+v", err, j)
	}

	over := strings.Repeat("x", maxLineBytes+1)
	d.Reset(strings.NewReader(over))
	err := d.Next(&j)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized line: %v", err)
	}
}

// TestNDJSONDecoderPoolRoundTrip covers the pooled acquire/release
// path the HTTP handler uses.
func TestNDJSONDecoderPoolRoundTrip(t *testing.T) {
	for i := 0; i < 3; i++ {
		d := GetDecoder(strings.NewReader(`{"id":8,"release":0,"deadline":1,"work":1}`))
		var j Job
		if err := d.Next(&j); err != nil || j.ID != 8 {
			t.Fatalf("pooled decode: %v %+v", err, j)
		}
		if err := d.Next(&j); err != io.EOF {
			t.Fatalf("pooled EOF: %v", err)
		}
		PutDecoder(d)
	}
}

// TestAppendJSONMatchesMarshal pins the encoder byte-identical to
// json.Marshal across representative jobs, and round-trips each
// through both decoders.
func TestAppendJSONMatchesMarshal(t *testing.T) {
	jobs := []Job{
		{ID: 1, Release: 0, Deadline: 1, Work: 0.5, Value: 2},
		{ID: -7, Release: 1.25, Deadline: 1e21, Work: 3.0000000000000004, Value: 0},
		{ID: 3, Release: 1e-7, Deadline: 2.5e-9, Work: 123456789.123456789, Value: math.Inf(1)},
		{ID: 0, Release: -0.0, Deadline: 1e20, Work: 1e-6, Value: 0.1},
		{ID: 42, Release: 1234567890123456789, Deadline: 2e300, Work: 5e-300, Value: 7},
	}
	for _, j := range jobs {
		want, err := json.Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendJSON(nil, j)
		if !bytes.Equal(want, got) {
			t.Fatalf("encoding divergence for %+v:\njson.Marshal %s\nAppendJSON   %s", j, want, got)
		}
		back, err := decodeFast(got)
		if err != nil {
			t.Fatalf("round-trip decode of %s: %v", got, err)
		}
		if !jobsBitEqual(j, back) {
			t.Fatalf("round trip changed %+v into %+v", j, back)
		}
	}
}

// TestNDJSONDecoderSteadyStateAllocFree pins the zero-allocation
// claim: decoding arrivals from a warm decoder must not allocate.
func TestNDJSONDecoderSteadyStateAllocFree(t *testing.T) {
	var body bytes.Buffer
	const n = 2000
	for i := 0; i < n; i++ {
		body.Write(AppendJSON(nil, Job{ID: i, Release: float64(i), Deadline: float64(i) + 2, Work: 1.5, Value: math.Inf(1)}))
		body.WriteByte('\n')
	}
	raw := body.Bytes()
	rd := bytes.NewReader(raw)
	d := NewDecoder(rd)
	var j Job
	// Warm up: first lines grow nothing after this.
	for i := 0; i < 50; i++ {
		if err := d.Next(&j); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(1000, func() {
		if err := d.Next(&j); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.01 {
		t.Errorf("decoder allocates %.3f per arrival in steady state, want 0", avg)
	}
}

// FuzzNDJSONDecoderDifferential drives arbitrary lines through both
// decoders: they must agree on error-ness and, on success, on every
// field bit.
func FuzzNDJSONDecoderDifferential(f *testing.F) {
	seeds := []string{
		`{"id":1,"release":0.5,"deadline":1,"work":1,"value":"inf"}`,
		`{"id":2,"release":1e-7,"deadline":3,"work":0.25,"value":null}`,
		`{"ID":3,"extra":[{"a":1}],"Work":2}`,
		`{"value":"nope"}`,
		`{"id":1,"release":01}`,
		`  {"id":9}  `,
		`{"x":"\ud83d\ude00","id":1}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		want, werr := decodeRef([]byte(line))
		got, gerr := decodeFast([]byte(line))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error divergence on %q: encoding/json=%v, ndjson=%v", line, werr, gerr)
		}
		if werr == nil && !jobsBitEqual(want, got) {
			t.Fatalf("value divergence on %q:\nencoding/json %+v\nndjson        %+v", line, want, got)
		}
	})
}

// FuzzNDJSONRoundTrip fuzzes structured jobs through AppendJSON and
// back: encoding must match json.Marshal and decode to the same bits.
func FuzzNDJSONRoundTrip(f *testing.F) {
	f.Add(1, 0.0, 1.0, 0.5, 2.0, false)
	f.Add(-9, 1e-9, 1e21, 123.456, 0.0, true)
	f.Fuzz(func(t *testing.T, id int, rel, dl, work, val float64, inf bool) {
		if math.IsNaN(rel) || math.IsInf(rel, 0) || math.IsNaN(dl) || math.IsInf(dl, 0) ||
			math.IsNaN(work) || math.IsInf(work, 0) || math.IsNaN(val) || math.IsInf(val, 0) {
			t.Skip() // json.Marshal refuses these; AppendJSON documents them out
		}
		j := Job{ID: id, Release: rel, Deadline: dl, Work: work, Value: val}
		if inf {
			j.Value = math.Inf(1)
		}
		want, err := json.Marshal(j)
		if err != nil {
			t.Skip()
		}
		got := AppendJSON(nil, j)
		if !bytes.Equal(want, got) {
			t.Fatalf("encoding divergence for %+v:\n%s\nvs\n%s", j, want, got)
		}
		back, err := decodeFast(got)
		if err != nil {
			t.Fatalf("decoding %s: %v", got, err)
		}
		if !jobsBitEqual(j, back) {
			t.Fatalf("round trip changed %+v into %+v", j, back)
		}
	})
}

var _ = fmt.Sprintf // keep fmt for debugging helpers
