package job

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	in := &Instance{M: 2, Alpha: 2.5, Jobs: []Job{
		{ID: 0, Release: 0, Deadline: 1.5, Work: 1.25, Value: 4},
		{ID: 1, Release: 0.5, Deadline: 2, Work: 0.5, Value: math.Inf(1)},
	}}
	var buf bytes.Buffer
	if err := in.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 2, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 2 {
		t.Fatalf("lost jobs: %+v", back.Jobs)
	}
	if back.Jobs[0] != in.Jobs[0] {
		t.Fatalf("job 0 changed: %+v vs %+v", back.Jobs[0], in.Jobs[0])
	}
	if !math.IsInf(back.Jobs[1].Value, 1) {
		t.Fatalf("infinite value lost: %+v", back.Jobs[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c,d,e\n0,0,1,1,1\n",
		"short header": "id,release\n",
		"bad id":       "id,release,deadline,work,value\nx,0,1,1,1\n",
		"bad float":    "id,release,deadline,work,value\n0,zero,1,1,1\n",
		"invalid job":  "id,release,deadline,work,value\n0,1,1,1,1\n",
	}
	for name, csv := range cases {
		if _, err := ReadCSV(strings.NewReader(csv), 1, 2); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVNormalizes(t *testing.T) {
	csv := "id,release,deadline,work,value\n5,3,4,1,1\n9,0,1,1,1\n"
	in, err := ReadCSV(strings.NewReader(csv), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.Jobs[0].Release != 0 || in.Jobs[0].ID != 9 {
		t.Fatalf("not normalized (or ID rewritten): %+v", in.Jobs)
	}
}
