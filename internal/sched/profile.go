// ASCII rendering of schedule speed profiles, used by the figure
// experiments and the profsched CLI.

package sched

import (
	"fmt"
	"math"
	"strings"
)

// profileGlyphs are eighth-block characters for the sparkline.
var profileGlyphs = []rune(" ▁▂▃▄▅▆▇█")

// RenderProfile draws the total-speed step function of the schedule as
// a sparkline over width columns, with a header line giving the time
// range and peak speed. An empty schedule renders as a flat line.
func (s *Schedule) RenderProfile(width int) string {
	if width < 8 {
		width = 8
	}
	bps := s.Breakpoints()
	if len(bps) < 2 {
		return "(empty schedule)"
	}
	t0, t1 := bps[0], bps[len(bps)-1]
	peak := 0.0
	samples := make([]float64, width)
	for i := 0; i < width; i++ {
		// Sample mid-column to avoid landing exactly on breakpoints.
		t := t0 + (float64(i)+0.5)/float64(width)*(t1-t0)
		samples[i] = s.TotalSpeedAt(t)
		peak = math.Max(peak, samples[i])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t ∈ [%.3g, %.3g), peak total speed %.4g\n", t0, t1, peak)
	for _, v := range samples {
		idx := 0
		if peak > 0 {
			idx = int(math.Round(v / peak * float64(len(profileGlyphs)-1)))
		}
		b.WriteRune(profileGlyphs[idx])
	}
	return b.String()
}
