// ASCII Gantt rendering: one row per processor, job IDs as glyphs.

package sched

import (
	"fmt"
	"strings"
)

// ganttGlyphs maps job IDs to display runes (cycled for IDs ≥ 62).
const ganttGlyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// RenderGantt draws the schedule as one timeline row per processor over
// width columns. Each column shows the job occupying the processor at
// the column's midpoint ('.' when idle). A final legend line maps
// glyphs back to job IDs when any were cycled.
func (s *Schedule) RenderGantt(width int) string {
	if width < 8 {
		width = 8
	}
	bps := s.Breakpoints()
	if len(bps) < 2 {
		return "(empty schedule)"
	}
	t0, t1 := bps[0], bps[len(bps)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "t ∈ [%.3g, %.3g), %d processors\n", t0, t1, s.M)
	for p := 0; p < s.M; p++ {
		fmt.Fprintf(&b, "cpu%-2d ", p)
		for c := 0; c < width; c++ {
			t := t0 + (float64(c)+0.5)/float64(width)*(t1-t0)
			glyph := byte('.')
			for _, seg := range s.Segments {
				if seg.Proc == p && seg.T0 <= t && t < seg.T1 {
					glyph = ganttGlyphs[seg.Job%len(ganttGlyphs)]
					break
				}
			}
			b.WriteByte(glyph)
		}
		if p+1 < s.M {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
