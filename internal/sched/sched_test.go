package sched

import (
	"math"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/power"
)

func instance() *job.Instance {
	return &job.Instance{
		M: 2, Alpha: 2,
		Jobs: []job.Job{
			{ID: 0, Release: 0, Deadline: 2, Work: 2, Value: 5},
			{ID: 1, Release: 0, Deadline: 1, Work: 1, Value: 3},
		},
	}
}

func feasible() *Schedule {
	return &Schedule{
		M: 2,
		Segments: []Segment{
			{Proc: 0, Job: 0, T0: 0, T1: 2, Speed: 1},
			{Proc: 1, Job: 1, T0: 0, T1: 1, Speed: 1},
		},
	}
}

func TestVerifyAcceptsFeasible(t *testing.T) {
	if err := Verify(instance(), feasible()); err != nil {
		t.Fatalf("feasible schedule rejected: %v", err)
	}
}

func TestEnergyAndCost(t *testing.T) {
	pm := power.New(2)
	s := feasible()
	if got := s.Energy(pm); math.Abs(got-3) > 1e-12 { // 2·1^2 + 1·1^2
		t.Fatalf("energy %v want 3", got)
	}
	in := instance()
	if got := s.Cost(in, pm); math.Abs(got-3) > 1e-12 {
		t.Fatalf("cost %v want 3 (no lost value)", got)
	}
}

func TestLostValueCountsUnfinished(t *testing.T) {
	in := instance()
	s := &Schedule{
		M:        2,
		Rejected: []int{1},
		Segments: []Segment{{Proc: 0, Job: 0, T0: 0, T1: 2, Speed: 1}},
	}
	if got := s.LostValue(in); got != 3 {
		t.Fatalf("lost value %v want 3", got)
	}
	if err := Verify(in, s); err != nil {
		t.Fatalf("rejecting job 1 is feasible: %v", err)
	}
}

func TestVerifyRejectsProcessorOverlap(t *testing.T) {
	s := feasible()
	s.Segments[1].Proc = 0 // both on processor 0, overlapping in time
	if err := Verify(instance(), s); err == nil {
		t.Fatal("processor overlap not detected")
	}
}

func TestVerifyRejectsParallelJob(t *testing.T) {
	in := instance()
	s := &Schedule{
		M: 2,
		Segments: []Segment{
			{Proc: 0, Job: 0, T0: 0, T1: 2, Speed: 0.5},
			{Proc: 1, Job: 0, T0: 0, T1: 2, Speed: 0.5}, // same job in parallel
		},
		Rejected: []int{1},
	}
	if err := Verify(in, s); err == nil {
		t.Fatal("parallel execution of one job not detected")
	}
}

func TestVerifyRejectsOutsideWindow(t *testing.T) {
	s := feasible()
	s.Segments[1].T1 = 1.5 // job 1's deadline is 1
	if err := Verify(instance(), s); err == nil {
		t.Fatal("execution past deadline not detected")
	}
}

func TestVerifyRejectsIncompleteWork(t *testing.T) {
	s := feasible()
	s.Segments[0].Speed = 0.5 // job 0 gets 1 of 2 units
	if err := Verify(instance(), s); err == nil {
		t.Fatal("incomplete accepted job not detected")
	}
}

func TestVerifyRejectsWorkOnRejectedJob(t *testing.T) {
	s := feasible()
	s.Rejected = []int{1} // but job 1 still has a segment
	if err := Verify(instance(), s); err == nil {
		t.Fatal("execution of rejected job not detected")
	}
}

func TestVerifyRejectsBadMetadata(t *testing.T) {
	in := instance()
	cases := map[string]func(*Schedule){
		"unknown job":      func(s *Schedule) { s.Segments[0].Job = 99 },
		"unknown rejected": func(s *Schedule) { s.Rejected = []int{99} },
		"bad processor":    func(s *Schedule) { s.Segments[0].Proc = 7 },
		"negative proc":    func(s *Schedule) { s.Segments[0].Proc = -1 },
		"negative speed":   func(s *Schedule) { s.Segments[0].Speed = -1 },
		"NaN speed":        func(s *Schedule) { s.Segments[0].Speed = math.NaN() },
		"empty duration":   func(s *Schedule) { s.Segments[0].T1 = s.Segments[0].T0 },
		"too many procs":   func(s *Schedule) { s.M = 5 },
	}
	for name, mut := range cases {
		s := feasible()
		mut(s)
		if err := Verify(in, s); err == nil {
			t.Errorf("%s: not detected", name)
		}
	}
}

func TestProcessedWork(t *testing.T) {
	s := feasible()
	done := s.ProcessedWork()
	if done[0] != 2 || done[1] != 1 {
		t.Fatalf("processed %v", done)
	}
}

func TestTotalSpeedAtAndBreakpoints(t *testing.T) {
	s := feasible()
	if got := s.TotalSpeedAt(0.5); got != 2 {
		t.Fatalf("speed at 0.5: %v want 2", got)
	}
	if got := s.TotalSpeedAt(1.5); got != 1 {
		t.Fatalf("speed at 1.5: %v want 1", got)
	}
	if got := s.TotalSpeedAt(2.5); got != 0 {
		t.Fatalf("speed at 2.5: %v want 0", got)
	}
	bps := s.Breakpoints()
	want := []float64{0, 1, 2}
	if len(bps) != len(want) {
		t.Fatalf("breakpoints %v", bps)
	}
	for i := range want {
		if bps[i] != want[i] {
			t.Fatalf("breakpoints %v want %v", bps, want)
		}
	}
}

func TestRenderProfile(t *testing.T) {
	s := feasible()
	out := s.RenderProfile(24)
	if !strings.Contains(out, "peak total speed 2") {
		t.Fatalf("profile header wrong:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || len([]rune(lines[1])) != 24 {
		t.Fatalf("profile body wrong:\n%s", out)
	}
	// First half (speed 2) must use taller glyphs than second (speed 1).
	body := []rune(lines[1])
	if body[2] <= body[20] {
		t.Fatalf("sparkline not monotone with speed:\n%s", out)
	}
	empty := &Schedule{M: 1}
	if got := empty.RenderProfile(10); got != "(empty schedule)" {
		t.Fatalf("empty profile: %q", got)
	}
	// Minimum width is enforced.
	if out := s.RenderProfile(1); len([]rune(strings.Split(out, "\n")[1])) != 8 {
		t.Fatalf("width floor not applied: %q", out)
	}
}

func TestRenderGantt(t *testing.T) {
	s := feasible()
	out := s.RenderGantt(20)
	lines := strings.Split(out, "\n")
	if len(lines) != 3 { // header + 2 processors
		t.Fatalf("gantt shape wrong:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "cpu0 ") || !strings.HasPrefix(lines[2], "cpu1 ") {
		t.Fatalf("processor labels missing:\n%s", out)
	}
	// cpu0 runs job 0 for the whole horizon; cpu1 runs job 1 for the
	// first half, then idles.
	row0 := lines[1][len("cpu0  "):]
	row1 := lines[2][len("cpu1  "):]
	if strings.Contains(row0, ".") || !strings.Contains(row0, "0") {
		t.Fatalf("cpu0 row wrong: %q", row0)
	}
	if !strings.Contains(row1, "1") || !strings.Contains(row1, ".") {
		t.Fatalf("cpu1 row wrong: %q", row1)
	}
	empty := &Schedule{M: 1}
	if empty.RenderGantt(10) != "(empty schedule)" {
		t.Fatal("empty gantt wrong")
	}
}

func TestMaxSpeed(t *testing.T) {
	s := feasible()
	s.Segments[0].Speed = 7
	if s.MaxSpeed() != 7 {
		t.Fatalf("max speed %v", s.MaxSpeed())
	}
}
