// Package sched provides the explicit schedule representation shared by
// every algorithm in this repository, together with an independent
// feasibility verifier and exact energy metering.
//
// A schedule is a set of segments: job j runs on processor p during
// [T0, T1) at constant speed s. Because optimal schedules for the
// paper's model are piecewise constant on atomic intervals, this
// representation is lossless. The verifier re-checks, from scratch, the
// model constraints of Section 2: at most one job per processor at a
// time, each job on at most one processor at a time, work only inside
// [r_j, d_j), and accepted jobs fully processed.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
)

// VerifyTol is the relative tolerance the verifier grants on workload
// completion and segment overlap. Exact algorithms (PD, YDS, OA) land
// far inside it; simulated baselines with numeric integration (BKP,
// qOA) need the slack.
const VerifyTol = 1e-6

// Segment is one maximal piece of constant-speed execution. The JSON
// tags are the stable wire names schedules use on the serving API.
type Segment struct {
	Proc  int     `json:"proc"`  // processor index, 0 ≤ Proc < M
	Job   int     `json:"job"`   // job ID
	T0    float64 `json:"t0"`    // start time (inclusive)
	T1    float64 `json:"t1"`    // end time (exclusive)
	Speed float64 `json:"speed"` // constant speed ≥ 0
}

// Work returns the work processed in the segment.
func (s Segment) Work() float64 { return (s.T1 - s.T0) * s.Speed }

// Schedule is a complete output of a scheduling algorithm.
type Schedule struct {
	M        int       `json:"m"`                  // number of processors
	Segments []Segment `json:"segments"`           // executed work
	Rejected []int     `json:"rejected,omitempty"` // IDs of jobs the algorithm chose not to finish
}

// Energy returns the total energy of the schedule under the power model.
func (s *Schedule) Energy(pm power.Model) float64 {
	var acc numeric.Accumulator
	for _, seg := range s.Segments {
		acc.Add(pm.Energy(seg.Speed, seg.T1-seg.T0))
	}
	return acc.Value()
}

// ProcessedWork returns, per job ID, the total work the schedule
// processes for it.
func (s *Schedule) ProcessedWork() map[int]float64 {
	done := make(map[int]float64)
	for _, seg := range s.Segments {
		done[seg.Job] += seg.Work()
	}
	return done
}

// LostValue returns the summed value of jobs in the instance that the
// schedule does not finish (processed work < w_j up to tolerance).
func (s *Schedule) LostValue(in *job.Instance) float64 {
	done := s.ProcessedWork()
	var lost float64
	for _, j := range in.Jobs {
		if done[j.ID] < j.Work*(1-VerifyTol) {
			lost += j.Value
		}
	}
	return lost
}

// Cost returns energy plus lost value — Eq. (1) of the paper.
func (s *Schedule) Cost(in *job.Instance, pm power.Model) float64 {
	return s.Energy(pm) + s.LostValue(in)
}

// MaxSpeed returns the largest speed any processor uses.
func (s *Schedule) MaxSpeed() float64 {
	var m float64
	for _, seg := range s.Segments {
		m = math.Max(m, seg.Speed)
	}
	return m
}

// TotalSpeedAt returns the summed speed over all processors at time t
// (used to render speed profiles for the figure experiments).
func (s *Schedule) TotalSpeedAt(t float64) float64 {
	var sum float64
	for _, seg := range s.Segments {
		if seg.T0 <= t && t < seg.T1 {
			sum += seg.Speed
		}
	}
	return sum
}

// Breakpoints returns the sorted unique segment boundaries.
func (s *Schedule) Breakpoints() []float64 {
	set := map[float64]struct{}{}
	for _, seg := range s.Segments {
		set[seg.T0] = struct{}{}
		set[seg.T1] = struct{}{}
	}
	out := make([]float64, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}

// Verify checks the schedule against the instance and returns the first
// violated model constraint, or nil if the schedule is feasible.
func Verify(in *job.Instance, s *Schedule) error {
	if s.M < 1 || s.M > in.M {
		return fmt.Errorf("sched: schedule uses %d processors, instance allows %d", s.M, in.M)
	}
	jobs := make(map[int]job.Job, len(in.Jobs))
	for _, j := range in.Jobs {
		jobs[j.ID] = j
	}
	rejected := make(map[int]bool, len(s.Rejected))
	for _, id := range s.Rejected {
		if _, ok := jobs[id]; !ok {
			return fmt.Errorf("sched: rejected job %d not in instance", id)
		}
		rejected[id] = true
	}

	byProc := make(map[int][]Segment)
	byJob := make(map[int][]Segment)
	for i, seg := range s.Segments {
		if seg.T1 <= seg.T0 {
			return fmt.Errorf("sched: segment %d has empty or negative duration [%v,%v)", i, seg.T0, seg.T1)
		}
		if seg.Speed < 0 || math.IsNaN(seg.Speed) || math.IsInf(seg.Speed, 0) {
			return fmt.Errorf("sched: segment %d has invalid speed %v", i, seg.Speed)
		}
		if seg.Proc < 0 || seg.Proc >= s.M {
			return fmt.Errorf("sched: segment %d on processor %d outside [0,%d)", i, seg.Proc, s.M)
		}
		j, ok := jobs[seg.Job]
		if !ok {
			return fmt.Errorf("sched: segment %d references unknown job %d", i, seg.Job)
		}
		slack := VerifyTol * math.Max(1, j.Span())
		if seg.T0 < j.Release-slack || seg.T1 > j.Deadline+slack {
			return fmt.Errorf("sched: segment %d runs job %d outside its window [%v,%v): [%v,%v)",
				i, seg.Job, j.Release, j.Deadline, seg.T0, seg.T1)
		}
		byProc[seg.Proc] = append(byProc[seg.Proc], seg)
		byJob[seg.Job] = append(byJob[seg.Job], seg)
	}

	for p, segs := range byProc {
		if err := noOverlap(segs, fmt.Sprintf("processor %d", p)); err != nil {
			return err
		}
	}
	for id, segs := range byJob {
		if err := noOverlap(segs, fmt.Sprintf("job %d (parallel execution)", id)); err != nil {
			return err
		}
	}

	done := s.ProcessedWork()
	for _, j := range in.Jobs {
		if rejected[j.ID] {
			// PD resets a rejected job's assignment to zero; any
			// residual execution indicates a bookkeeping bug.
			if done[j.ID] > VerifyTol*j.Work {
				return fmt.Errorf("sched: rejected job %d has %v work processed", j.ID, done[j.ID])
			}
			continue
		}
		if done[j.ID] < j.Work*(1-VerifyTol) {
			return fmt.Errorf("sched: job %d not rejected but only %v of %v work processed",
				j.ID, done[j.ID], j.Work)
		}
	}
	return nil
}

// noOverlap checks that the segments, viewed as half-open time
// intervals, are pairwise disjoint (up to tolerance relative to their
// lengths).
func noOverlap(segs []Segment, what string) error {
	sorted := make([]Segment, len(segs))
	copy(sorted, segs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].T0 < sorted[b].T0 })
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1], sorted[i]
		slack := VerifyTol * math.Max(1, prev.T1-prev.T0)
		if cur.T0 < prev.T1-slack {
			return fmt.Errorf("sched: overlapping segments on %s: [%v,%v) and [%v,%v)",
				what, prev.T0, prev.T1, cur.T0, cur.T1)
		}
	}
	return nil
}
