package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sched"
)

// randInstance generates a value-calibrated random instance: job values
// are lognormal multiples of the energy the job would cost running
// alone, so accept/reject decisions are genuinely contested.
func randInstance(rng *rand.Rand, n, m int, alpha float64) *job.Instance {
	in := &job.Instance{M: m, Alpha: alpha}
	pm := power.Model{Alpha: alpha}
	for i := 0; i < n; i++ {
		r := rng.Float64() * 10
		span := 0.2 + rng.Float64()*3
		w := 0.1 + rng.Float64()*2
		solo := span * pm.Power(w/span)
		v := solo * math.Exp(rng.NormFloat64())
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: r, Deadline: r + span, Work: w, Value: v,
		})
	}
	in.Normalize()
	return in
}

func TestSingleJobRunsAtDensity(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 3, Value: 1e9},
	}}
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Decisions[0]
	if !d.Accepted {
		t.Fatal("high-value job rejected")
	}
	if math.Abs(d.Speed-1.5) > 1e-9 {
		t.Fatalf("planned speed %v want density 1.5", d.Speed)
	}
	// Energy = l·s^α = 2·1.5^2 = 4.5.
	if math.Abs(res.Energy-4.5) > 1e-9 {
		t.Fatalf("energy %v want 4.5", res.Energy)
	}
	if err := sched.Verify(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestLowValueJobRejected(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 10, Value: 1e-6},
	}}
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0].Accepted {
		t.Fatal("hopeless job accepted")
	}
	if res.Decisions[0].Lambda != 1e-6 {
		t.Fatalf("rejected job must have λ = v, got %v", res.Decisions[0].Lambda)
	}
	if res.Cost != 1e-6 || res.Energy != 0 {
		t.Fatalf("cost %v energy %v; want pure value loss", res.Cost, res.Energy)
	}
	if len(res.Schedule.Rejected) != 1 {
		t.Fatal("rejection not recorded in schedule")
	}
}

func TestZeroValueJobRejectedImmediately(t *testing.T) {
	in := &job.Instance{M: 2, Alpha: 3, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 0},
	}}
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0].Accepted || res.Cost != 0 {
		t.Fatalf("zero-value job must be rejected at zero cost: %+v", res.Decisions[0])
	}
}

func TestTwoIdenticalJobsTwoProcessors(t *testing.T) {
	in := &job.Instance{M: 2, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 100},
		{ID: 1, Release: 0, Deadline: 1, Work: 1, Value: 100},
	}}
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	// Each job on its own processor at speed 1: energy 2.
	if math.Abs(res.Energy-2) > 1e-9 {
		t.Fatalf("energy %v want 2", res.Energy)
	}
	if err := sched.Verify(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem3Certificate is the machine-checked form of the paper's
// main theorem: on every instance, cost(PD) ≤ α^α · g(λ̃).
func TestTheorem3Certificate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		alpha := []float64{1.5, 2, 2.5, 3}[trial%4]
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(25)
		in := randInstance(rng, n, m, alpha)
		res, err := Run(in)
		if err != nil {
			t.Fatal(err)
		}
		bound := math.Pow(alpha, alpha)
		if res.Dual <= 0 {
			t.Fatalf("trial %d: nonpositive dual %v with cost %v", trial, res.Dual, res.Cost)
		}
		if !numeric.LessEqual(res.Cost, bound*res.Dual, 1e-6) {
			t.Fatalf("trial %d (α=%v m=%d n=%d): Theorem 3 violated: cost %v > %v·dual %v (ratio %v)",
				trial, alpha, m, n, res.Cost, bound, res.Dual, res.Cost/res.Dual)
		}
		if err := sched.Verify(in, res.Schedule); err != nil {
			t.Fatalf("trial %d: infeasible schedule: %v", trial, err)
		}
		// Internal consistency: assignment-based energy equals the
		// metered energy of the emitted timeline.
		pm := power.Model{Alpha: alpha}
		if !numeric.Close(res.Energy, res.Schedule.Energy(pm), 1e-8) {
			t.Fatalf("trial %d: energy mismatch: %v vs %v", trial, res.Energy, res.Schedule.Energy(pm))
		}
	}
}

// TestDualIsLowerBoundOnOPT cross-checks weak duality against the exact
// integral optimum on small instances: g(λ̃) ≤ cost(OPT) ≤ cost(PD).
func TestDualIsLowerBoundOnOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		alpha := []float64{2, 3}[trial%2]
		m := 1 + rng.Intn(2)
		n := 1 + rng.Intn(6)
		in := randInstance(rng, n, m, alpha)
		res, err := Run(in)
		if err != nil {
			t.Fatal(err)
		}
		best, err := opt.Integral(in)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.LessEqual(res.Dual, best.Cost, 1e-6) {
			t.Fatalf("trial %d: weak duality violated: g=%v > OPT=%v", trial, res.Dual, best.Cost)
		}
		if !numeric.LessEqual(best.Cost, res.Cost, 1e-6) {
			t.Fatalf("trial %d: OPT=%v above PD cost=%v", trial, best.Cost, res.Cost)
		}
	}
}

// TestFigure3Example reproduces the structural difference of Figure 3:
// PD keeps the last atomic interval slow (conservative), OA would
// rebalance the earlier job into it. Jobs: j1 = [0,2), w=1 released at
// 0; j2 = [0.5,1), w=1 released at 0.5; α=2. PD never moves j1's
// assignment, so [1,2) stays at speed 0.5 while [0.5,1) spikes to 2.5.
// OA's replanning would instead run [1,2) at 0.75.
func TestFigure3Example(t *testing.T) {
	in := &job.Instance{M: 1, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: 1e9},
		{ID: 1, Release: 0.5, Deadline: 1, Work: 1, Value: 1e9},
	}}
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schedule
	if got := s.TotalSpeedAt(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("speed in [0,0.5): %v want 0.5", got)
	}
	if got := s.TotalSpeedAt(0.75); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("speed in [0.5,1): %v want 2.5", got)
	}
	if got := s.TotalSpeedAt(1.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("speed in [1,2): %v want 0.5 (PD must not rebalance job 0)", got)
	}
	if math.Abs(res.Energy-3.5) > 1e-9 {
		t.Fatalf("energy %v want 3.5", res.Energy)
	}
}

// TestRejectionPolicyMatchesCLLThreshold verifies the Section 3 claim:
// with δ = α^{1-α}, PD's rejection speed equals the Chan-Lam-Li
// threshold α^{(α-2)/(α-1)}·(v/w)^{1/(α-1)}.
func TestRejectionPolicyMatchesCLLThreshold(t *testing.T) {
	err := quick.Check(func(aRaw, wRaw, vRaw float64) bool {
		alpha := 1.2 + math.Mod(math.Abs(aRaw), 3)
		w := 0.01 + math.Mod(math.Abs(wRaw), 50)
		v := 0.01 + math.Mod(math.Abs(vRaw), 50)
		pm := power.Model{Alpha: alpha}
		pdSpeed := pm.RejectionSpeed(pm.DefaultDelta(), w, v)
		cll := math.Pow(alpha, (alpha-2)/(alpha-1)) * math.Pow(v/w, 1/(alpha-1))
		return math.Abs(pdSpeed-cll) <= 1e-9*(1+cll)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBehaviouralRejectionEquivalence: a solitary job is rejected by PD
// exactly when its density exceeds the threshold speed.
func TestBehaviouralRejectionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		alpha := 1.5 + 2*rng.Float64()
		pm := power.Model{Alpha: alpha}
		w := 0.1 + rng.Float64()*5
		span := 0.2 + rng.Float64()*4
		v := rng.Float64() * 10
		in := &job.Instance{M: 1, Alpha: alpha, Jobs: []job.Job{
			{ID: 0, Release: 0, Deadline: span, Work: w, Value: v},
		}}
		res, err := Run(in)
		if err != nil {
			t.Fatal(err)
		}
		density := w / span
		threshold := pm.RejectionSpeed(pm.DefaultDelta(), w, v)
		wantAccept := density <= threshold*(1+1e-9)
		if res.Decisions[0].Accepted != wantAccept {
			if math.Abs(density-threshold) < 1e-6*threshold {
				continue // knife-edge tie; either decision is fine
			}
			t.Fatalf("trial %d: density %v threshold %v accepted=%v",
				trial, density, threshold, res.Decisions[0].Accepted)
		}
	}
}

func TestLaterJobDoesNotMoveEarlierAssignment(t *testing.T) {
	// PD never redistributes previously assigned work (unlike OA).
	// After j1 spreads over [0,2), j2's arrival must not change j1's
	// per-interval load, only refine it.
	s := New(1, power.New(2))
	if _, err := s.Arrive(job.Job{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: 1e9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Arrive(job.Job{ID: 1, Release: 0, Deadline: 1, Work: 1, Value: 1e9}); err != nil {
		t.Fatal(err)
	}
	var j0FirstHalf, j0SecondHalf float64
	for _, iv := range s.part.All() {
		if iv.T1 <= 1 {
			j0FirstHalf += iv.Load[0]
		} else {
			j0SecondHalf += iv.Load[0]
		}
	}
	if math.Abs(j0FirstHalf-0.5) > 1e-9 || math.Abs(j0SecondHalf-0.5) > 1e-9 {
		t.Fatalf("job 0 was redistributed: first %v second %v", j0FirstHalf, j0SecondHalf)
	}
}

// TestRefinementInvariance validates the paper's Section 3 claim: an
// algorithm knowing the final time partitioning a priori computes the
// identical schedule. We pre-observe all windows (plus extra spurious
// boundaries) and compare decisions and cost against the standard run.
func TestRefinementInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 1+rng.Intn(12), 1+rng.Intn(3), 2.3)
		pm := power.New(in.Alpha)

		plain := New(in.M, pm)
		primed := New(in.M, pm)
		// Prime with every job window and some arbitrary extra cuts.
		for _, j := range in.Jobs {
			if err := primed.ObserveWindow(j.Release, j.Deadline); err != nil {
				t.Fatal(err)
			}
			mid := 0.5 * (j.Release + j.Deadline)
			if err := primed.ObserveWindow(j.Release, mid); err != nil {
				t.Fatal(err)
			}
		}
		for _, j := range in.Jobs {
			d1, err := plain.Arrive(j)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := primed.Arrive(j)
			if err != nil {
				t.Fatal(err)
			}
			if d1.Accepted != d2.Accepted {
				t.Fatalf("trial %d job %d: decisions diverge under refinement", trial, j.ID)
			}
			if math.Abs(d1.Lambda-d2.Lambda) > 1e-6*(1+d1.Lambda) {
				t.Fatalf("trial %d job %d: λ diverges: %v vs %v", trial, j.ID, d1.Lambda, d2.Lambda)
			}
		}
		if !numeric.Close(plain.Cost(), primed.Cost(), 1e-6) {
			t.Fatalf("trial %d: cost diverges: %v vs %v", trial, plain.Cost(), primed.Cost())
		}
	}
}

// TestExtremeMagnitudes exercises numeric robustness: very small and
// very large workloads, windows and values in one instance.
func TestExtremeMagnitudes(t *testing.T) {
	in := &job.Instance{M: 2, Alpha: 2, Jobs: []job.Job{
		{ID: 0, Release: 0, Deadline: 1e-6, Work: 1e-7, Value: 1e9},
		{ID: 1, Release: 0, Deadline: 1e6, Work: 1e5, Value: 1e12},
		{ID: 2, Release: 100, Deadline: 100.001, Work: 50, Value: 1e-9},
		{ID: 3, Release: 0.5, Deadline: 2, Work: 1e-12, Value: 1},
	}}
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Verify(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.JobID == 2 && d.Accepted {
			t.Fatal("job 2 (absurd density, negligible value) must be rejected")
		}
	}
	bound := 4 * res.Dual
	if !numeric.LessEqual(res.Cost, bound, 1e-6) {
		t.Fatalf("certificate violated at extreme magnitudes: %v > %v", res.Cost, bound)
	}
}

// TestManySimultaneousJobs floods m processors with identical jobs
// arriving at once; PD must spread them evenly.
func TestManySimultaneousJobs(t *testing.T) {
	const m, n = 4, 32
	in := &job.Instance{M: m, Alpha: 2}
	for i := 0; i < n; i++ {
		in.Jobs = append(in.Jobs, job.Job{
			ID: i, Release: 0, Deadline: 1, Work: 0.25, Value: 1e9,
		})
	}
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	// Total work 8 over 4 processors in 1 time unit: balanced speed 2,
	// energy 4·2² = 16.
	if math.Abs(res.Energy-16) > 1e-6 {
		t.Fatalf("energy %v want 16 (balanced)", res.Energy)
	}
	if err := sched.Verify(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

// TestAlphaNearOne checks stability as α → 1⁺ (where exponents like
// 1/(α-1) blow up).
func TestAlphaNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := randInstance(rng, 10, 2, 1.05)
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Cost) || math.IsInf(res.Cost, 0) {
		t.Fatalf("cost not finite: %v", res.Cost)
	}
	if err := sched.Verify(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	bound := math.Pow(1.05, 1.05)
	if !numeric.LessEqual(res.Cost, bound*res.Dual, 1e-5) {
		t.Fatalf("certificate violated near α=1: cost %v dual %v", res.Cost, res.Dual)
	}
}

// TestQuickRandomInstances drives PD through testing/quick-generated
// instances, asserting the full invariant set on each.
func TestQuickRandomInstances(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8, aRaw float64) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw%5) + 1
		alpha := 1.2 + math.Mod(math.Abs(aRaw), 2.5)
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, n, m, alpha)
		res, err := Run(in)
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		if err := sched.Verify(in, res.Schedule); err != nil {
			t.Logf("verify error: %v", err)
			return false
		}
		bound := math.Pow(alpha, alpha)
		if !numeric.LessEqual(res.Cost, bound*res.Dual, 1e-6) {
			t.Logf("certificate: cost %v > %v", res.Cost, bound*res.Dual)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotReflectsAssignment(t *testing.T) {
	s := New(1, power.New(2))
	if _, err := s.Arrive(job.Job{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: 1e9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Arrive(job.Job{ID: 1, Release: 0.5, Deadline: 1, Work: 1, Value: 1e9}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("want 3 intervals, got %d", len(snap))
	}
	// [0.5,1): job 0 carries 0.25, job 1 carries 1, both pooled at 2.5.
	mid := snap[1]
	if mid.T0 != 0.5 || mid.T1 != 1 {
		t.Fatalf("interval bounds %v-%v", mid.T0, mid.T1)
	}
	if math.Abs(mid.Load[0]-0.25) > 1e-9 || math.Abs(mid.Load[1]-1) > 1e-9 {
		t.Fatalf("loads %v", mid.Load)
	}
	if math.Abs(mid.Speeds[0]-2.5) > 1e-9 || math.Abs(mid.Speeds[1]-2.5) > 1e-9 {
		t.Fatalf("speeds %v", mid.Speeds)
	}
	if math.Abs(mid.Energy-0.5*2.5*2.5) > 1e-9 {
		t.Fatalf("interval energy %v", mid.Energy)
	}
	// Sum of interval energies equals total energy.
	var sum float64
	for _, st := range snap {
		sum += st.Energy
	}
	if !numeric.Close(sum, s.Energy(), 1e-12) {
		t.Fatalf("snapshot energy %v vs scheduler %v", sum, s.Energy())
	}
	// The snapshot is a copy: mutating it must not affect the scheduler.
	before := s.Energy()
	mid.Load[0] = 999
	if s.Energy() != before {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestArriveValidation(t *testing.T) {
	s := New(1, power.New(2))
	if _, err := s.Arrive(job.Job{ID: 0, Release: 0, Deadline: 0, Work: 1, Value: 1}); err == nil {
		t.Fatal("invalid job accepted")
	}
	if _, err := s.Arrive(job.Job{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 1e9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Arrive(job.Job{ID: 0, Release: 0, Deadline: 1, Work: 1, Value: 1}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestWithDeltaOption(t *testing.T) {
	pm := power.New(2)
	s := New(1, pm, WithDelta(0.25))
	if s.Delta() != 0.25 {
		t.Fatalf("delta %v want 0.25", s.Delta())
	}
	// Nonpositive δ is ignored, keeping the default.
	s = New(1, pm, WithDelta(-1))
	if s.Delta() != pm.DefaultDelta() {
		t.Fatalf("delta %v want default %v", s.Delta(), pm.DefaultDelta())
	}
}

func TestRunRejectsInvalidInstance(t *testing.T) {
	if _, err := Run(&job.Instance{M: 0, Alpha: 2}); err == nil {
		t.Fatal("invalid instance accepted")
	}
	if _, err := Run(&job.Instance{M: 1, Alpha: 1}); err == nil {
		t.Fatal("alpha=1 accepted")
	}
}

func TestEmptyInstance(t *testing.T) {
	res, err := Run(&job.Instance{M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 || res.CertifiedRatio() != 1 {
		t.Fatalf("empty instance: cost %v ratio %v", res.Cost, res.CertifiedRatio())
	}
}

// TestAcceptedJobsComplete: the emitted schedule processes exactly w_j
// for every accepted job (quick-check over random instances).
func TestAcceptedJobsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(rng, 1+rng.Intn(15), 1+rng.Intn(3), 2.2)
		res, err := Run(in)
		if err != nil {
			t.Fatal(err)
		}
		done := res.Schedule.ProcessedWork()
		for i, d := range res.Decisions {
			j := in.Jobs[i]
			if d.Accepted {
				if math.Abs(done[j.ID]-j.Work) > 1e-7*(1+j.Work) {
					t.Fatalf("accepted job %d processed %v of %v", j.ID, done[j.ID], j.Work)
				}
			} else if done[j.ID] != 0 {
				t.Fatalf("rejected job %d has %v work", j.ID, done[j.ID])
			}
		}
	}
}

// TestMonotoneDeltaCost sanity-checks the ablation axis: extreme δ
// values must still produce feasible schedules with valid certificates
// relative to their own bound (the certificate only holds for
// δ ≤ α^{1-α}; larger δ void the guarantee but must not crash).
func TestDeltaExtremesStillFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	in := randInstance(rng, 12, 2, 2)
	for _, mult := range []float64{0.1, 0.5, 1, 2, 10} {
		pm := power.New(2)
		res, err := Run(in, WithDelta(mult*pm.DefaultDelta()))
		if err != nil {
			t.Fatalf("delta×%v: %v", mult, err)
		}
		if err := sched.Verify(in, res.Schedule); err != nil {
			t.Fatalf("delta×%v: %v", mult, err)
		}
	}
}
