// Package core implements PD, the paper's online greedy primal-dual
// algorithm for profitable scheduling on multiple speed-scalable
// processors (Listing 1), together with its dual certificate.
//
// On every job arrival, PD raises the job's load variables x_jk on the
// atomic intervals with currently minimal marginal cost
// λ_jk = δ·∂P_k/∂x_jk, keeping all raised marginals equal, until either
// the whole job is placed (accept: y_j = 1, λ_j = current marginal) or
// the marginal reaches the job's value (reject: assignment reset,
// λ_j = v_j). The schedule actually executed applies Chen et al.'s
// per-interval algorithm to the accumulated work assignment.
//
// Because λ_jk = δ·α·w_j·s_jk^{α-1} has the same w_j on every interval,
// "all marginals equal" is the same as "job j runs at one common speed
// s across the intervals it uses". The continuous raising process of
// Listing 1 therefore has a closed form: for a water level s, interval
// T_k absorbs exactly chen.WorkAtSpeed(l_k, others, s) units of j's
// work, a continuous nondecreasing function of s. One scalar bisection
// on s replaces the infinitesimal loop exactly (up to float tolerance),
// so no discretization parameter exists anywhere in the implementation.
//
// Theorem 3: with δ = α^{1-α}, cost(PD) ≤ α^α·g(λ̃), and g(λ̃) ≤ OPT by
// weak duality. Both quantities are first-class outputs here, making
// the competitive-ratio claim machine-checkable per instance.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chen"
	"repro/internal/dual"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sched"
)

// Decision records what PD did with one arrival.
type Decision struct {
	JobID    int
	Accepted bool
	// Lambda is the final dual multiplier λ̃_j: the marginal cost per
	// unit of x_j at acceptance time, or v_j on rejection.
	Lambda float64
	// Speed is the common planned speed s̃_j the job was (or would have
	// been) assigned across its used intervals.
	Speed float64
}

// Scheduler is the online PD algorithm. Create one with New, feed
// arrivals in release-time order via Arrive, and extract the executed
// schedule with Schedule. The zero value is not usable.
type Scheduler struct {
	sys   chen.System
	delta float64

	part      *interval.Partition
	jobs      []job.Job
	decisions map[int]Decision
}

// Option customises a Scheduler.
type Option func(*Scheduler)

// WithDelta overrides PD's parameter δ. The default δ = α^{1-α} is the
// optimal choice proved in Section 4; other values are exposed for the
// ablation experiment T5.
func WithDelta(delta float64) Option {
	return func(s *Scheduler) {
		if delta > 0 {
			s.delta = delta
		}
	}
}

// New returns a PD scheduler for m processors under the power model.
func New(m int, pm power.Model, opts ...Option) *Scheduler {
	s := &Scheduler{
		sys:       chen.System{M: m, Power: pm},
		delta:     pm.DefaultDelta(),
		part:      &interval.Partition{},
		decisions: make(map[int]Decision),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Delta returns the δ parameter in use.
func (s *Scheduler) Delta() float64 { return s.delta }

// ObserveWindow refines the atomic-interval partition at t0 and t1
// without scheduling anything. PD's output is invariant under such
// refinements — the "Concerning the Time Partitioning" argument of
// Section 3: an algorithm that knows future boundaries a priori
// produces the identical schedule, because loads split proportionally
// and every per-interval quantity PD uses is homogeneous in interval
// length. Exposed so callers with partial foresight (e.g. known shift
// boundaries) can pre-partition, and so the invariance is testable.
func (s *Scheduler) ObserveWindow(t0, t1 float64) error {
	return s.part.Observe(t0, t1)
}

// othersOf collects the current work assignment of interval k as chen
// items (every job with positive load; the arriving job has none yet).
// Items are sorted by ID: map iteration order would otherwise leak into
// float summation order (capacity, energy, Chen's partition) and make
// replays differ in the last ulp from run to run.
func othersOf(iv *interval.Interval) []chen.Item {
	items := make([]chen.Item, 0, len(iv.Load))
	for id, w := range iv.Load {
		if w > 0 {
			items = append(items, chen.Item{ID: id, Work: w})
		}
	}
	sort.Slice(items, func(i, k int) bool { return items[i].ID < items[k].ID })
	return items
}

// Arrive processes the online arrival of job j and returns PD's
// decision. Jobs must be fed in nondecreasing release order; attributes
// are validated.
func (s *Scheduler) Arrive(j job.Job) (Decision, error) {
	if err := j.Validate(); err != nil {
		return Decision{}, err
	}
	if _, dup := s.decisions[j.ID]; dup {
		return Decision{}, fmt.Errorf("core: duplicate job ID %d", j.ID)
	}
	if err := s.part.Observe(j.Release, j.Deadline); err != nil {
		return Decision{}, err
	}
	s.jobs = append(s.jobs, j)

	ks := s.part.Covering(j.Release, j.Deadline)
	others := make([][]chen.Item, len(ks))
	lens := make([]float64, len(ks))
	for i, k := range ks {
		iv := s.part.At(k)
		others[i] = othersOf(iv)
		lens[i] = iv.Len()
	}

	// Total work job j can absorb at water level (common speed) sp.
	capacity := func(sp float64) float64 {
		var acc numeric.Accumulator
		for i := range ks {
			acc.Add(s.sys.WorkAtSpeed(lens[i], others[i], sp))
		}
		return acc.Value()
	}

	// Rejection threshold: the speed at which λ_jk = δ·α·w_j·s^{α-1}
	// reaches v_j (line 12 of Listing 1).
	sRej := s.sys.Power.RejectionSpeed(s.delta, j.Work, j.Value)
	dec := Decision{JobID: j.ID}
	if capacity(sRej) < j.Work {
		// The marginal hits v_j before the job is fully placed:
		// reject, reset x_j· to zero (we never wrote it), λ_j = v_j.
		dec.Accepted = false
		dec.Lambda = j.Value
		dec.Speed = sRej
		s.decisions[j.ID] = dec
		return dec, nil
	}

	// The water level solving Σ_k z_k(s) = w_j. sRej may be +Inf (jobs
	// that must be finished), so bracket growth starts from the job's
	// density rather than bisecting [0, sRej] directly.
	sp, err := numeric.SolveIncreasing(capacity, j.Density(), j.Work, numeric.DefaultTol)
	if err != nil {
		return Decision{}, fmt.Errorf("core: job %d: water level not found: %w", j.ID, err)
	}
	s.distribute(j, ks, others, lens, sp)
	dec.Accepted = true
	dec.Speed = sp
	dec.Lambda = s.delta * j.Work * s.sys.Power.Marginal(sp)
	s.decisions[j.ID] = dec
	return dec, nil
}

// distribute writes job j's accepted assignment at water level sp into
// the partition. Bisection leaves the total a hair away from w_j, so
// the per-interval amounts are rescaled to sum to w_j exactly.
func (s *Scheduler) distribute(j job.Job, ks []int, others [][]chen.Item, lens []float64, sp float64) {
	zs := make([]float64, len(ks))
	var total float64
	for i := range ks {
		zs[i] = s.sys.WorkAtSpeed(lens[i], others[i], sp)
		total += zs[i]
	}
	if total <= 0 {
		// Degenerate: w_j ≈ 0 was accepted at water level ~0. Place
		// everything in the job's first interval.
		zs[0], total = j.Work, j.Work
	}
	scale := j.Work / total
	for i, k := range ks {
		if zs[i] <= 0 {
			continue
		}
		s.part.At(k).Load[j.ID] += zs[i] * scale
	}

}

// IntervalState is a read-only snapshot of one atomic interval's
// current work assignment.
type IntervalState struct {
	T0, T1 float64
	// Load maps job ID to the workload assigned to this interval.
	Load map[int]float64
	// Speeds maps job ID to the execution speed Chen et al.'s
	// algorithm uses for it here.
	Speeds map[int]float64
	// Energy is P_k of the current assignment.
	Energy float64
}

// Snapshot returns the current per-interval state of the scheduler —
// the primal variables of the convex program, materialised. Useful for
// visualisation, debugging and the introspection CLI; the returned data
// is a deep copy.
func (s *Scheduler) Snapshot() []IntervalState {
	out := make([]IntervalState, 0, s.part.Len())
	for _, iv := range s.part.All() {
		st := IntervalState{
			T0: iv.T0, T1: iv.T1,
			Load:   make(map[int]float64, len(iv.Load)),
			Speeds: make(map[int]float64, len(iv.Load)),
		}
		items := othersOf(iv)
		p := s.sys.Partition(iv.Len(), items)
		for id, w := range iv.Load {
			if w <= 0 {
				continue
			}
			st.Load[id] = w
			st.Speeds[id] = p.SpeedOf(id)
		}
		if len(items) > 0 {
			st.Energy = s.sys.Energy(iv.Len(), items)
		}
		out = append(out, st)
	}
	return out
}

// Lambdas returns the dual multipliers λ̃ accumulated so far, keyed by
// job ID.
func (s *Scheduler) Lambdas() map[int]float64 {
	out := make(map[int]float64, len(s.decisions))
	for id, d := range s.decisions {
		out[id] = d.Lambda
	}
	return out
}

// Rejected lists the IDs of rejected jobs in arrival order.
func (s *Scheduler) Rejected() []int {
	var out []int
	for _, j := range s.jobs {
		if !s.decisions[j.ID].Accepted {
			out = append(out, j.ID)
		}
	}
	return out
}

// Schedule materialises the executed schedule: Chen et al.'s algorithm
// applied per atomic interval to the final work assignment.
func (s *Scheduler) Schedule() *sched.Schedule {
	out := &sched.Schedule{M: s.sys.M, Rejected: s.Rejected()}
	for _, iv := range s.part.All() {
		items := othersOf(iv)
		if len(items) == 0 {
			continue
		}
		out.Segments = append(out.Segments, s.sys.Timeline(iv.T0, iv.T1, items)...)
	}
	return out
}

// Energy returns the total energy of the current work assignment,
// evaluated through P_k per interval (identical to the schedule's
// metered energy, cheaper to compute).
func (s *Scheduler) Energy() float64 {
	var acc numeric.Accumulator
	for _, iv := range s.part.All() {
		items := othersOf(iv)
		if len(items) == 0 {
			continue
		}
		acc.Add(s.sys.Energy(iv.Len(), items))
	}
	return acc.Value()
}

// LostValue returns Σ v_j over rejected jobs.
func (s *Scheduler) LostValue() float64 {
	var acc numeric.Accumulator
	for _, j := range s.jobs {
		if !s.decisions[j.ID].Accepted {
			acc.Add(j.Value)
		}
	}
	return acc.Value()
}

// Cost returns energy plus lost value (Eq. 1).
func (s *Scheduler) Cost() float64 { return s.Energy() + s.LostValue() }

// DualValue evaluates the certificate g(λ̃) for the jobs seen so far
// (Lemma 6). By weak duality it lower-bounds the cost of every
// schedule for those jobs, so Cost()/DualValue() is a certified upper
// bound on PD's competitive ratio on this instance.
func (s *Scheduler) DualValue() float64 {
	return dual.Value(s.sys.Power, s.sys.M, s.jobs, s.Lambdas())
}

// Result bundles a complete offline-style run of PD over an instance.
type Result struct {
	Schedule  *sched.Schedule
	Decisions []Decision // in arrival order
	Energy    float64
	LostValue float64
	Cost      float64
	// Dual is g(λ̃) ≤ OPT; Cost/Dual certifies the competitive ratio.
	Dual float64
}

// CertifiedRatio returns Cost/Dual, an instance-specific upper bound on
// the competitive ratio (infinite when the dual value is zero, which
// only happens for empty instances).
func (r *Result) CertifiedRatio() float64 {
	if r.Dual <= 0 {
		if r.Cost <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return r.Cost / r.Dual
}

// Run replays an entire instance through PD in release order and
// gathers the outputs.
func Run(in *job.Instance, opts ...Option) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	inst := in.Clone()
	inst.Normalize()
	pm := power.Model{Alpha: inst.Alpha}
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	s := New(inst.M, pm, opts...)
	res := &Result{}
	for _, j := range inst.Jobs {
		d, err := s.Arrive(j)
		if err != nil {
			return nil, err
		}
		res.Decisions = append(res.Decisions, d)
	}
	res.Schedule = s.Schedule()
	res.Energy = s.Energy()
	res.LostValue = s.LostValue()
	res.Cost = res.Energy + res.LostValue
	res.Dual = s.DualValue()
	return res, nil
}
