// Package serve is the session host behind the schedd daemon: a
// sharded map of tenant → live engine session, created on demand from
// a registry Spec, with admission control (max sessions, bounded
// per-session backlog), per-tenant serialized arrival application,
// graceful drain on shutdown and a Prometheus-rendered metrics core.
//
// Concurrency model: tenant lookups hash into power-of-two shards so
// unrelated tenants never contend on one lock; within a tenant, a
// single applier goroutine drains a bounded arrival queue into the
// engine.Live run, so the policy — which is not synchronized — only
// ever sees one goroutine. Submitting to a full queue blocks, which
// is the backpressure the HTTP layer propagates to clients by simply
// not reading more of their request body.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/pool"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	ErrDraining   = errors.New("serve: host is draining")
	ErrNotFound   = errors.New("serve: no such session")
	ErrDuplicate  = errors.New("serve: session already exists")
	ErrAdmission  = errors.New("serve: session limit reached")
	ErrClosing    = errors.New("serve: session is closing")
	ErrOverloaded = errors.New("serve: overloaded")
	ErrSeqGap     = errors.New("serve: producer sequence gap")
	ErrTooLarge   = errors.New("serve: stamped batch exceeds the backlog bound")
)

// Config sizes the host. The zero value gets sensible defaults.
type Config struct {
	// Shards is the number of map shards, rounded up to a power of two
	// (default 16).
	Shards int
	// MaxSessions bounds concurrently live sessions (default 1024).
	MaxSessions int
	// MaxBacklog bounds each session's queued-but-unapplied arrivals;
	// submits beyond it block (default 256).
	MaxBacklog int
	// MaxApplyBatch caps how many queued arrivals the applier hands to
	// the engine per wakeup; 0 (the default) drains everything queued.
	// Lowering it trades ingest throughput for finer-grained metrics
	// and backpressure — the serve benchmarks use 1 to measure the
	// unbatched reference path.
	MaxApplyBatch int
	// Registry resolves session specs (default engine.DefaultRegistry).
	Registry *engine.Registry
	// WAL, when non-nil, makes every session durable: the applier logs
	// each drained batch before applying it, arrivals are acknowledged
	// only after their batch is fsynced (the store's group-commit
	// interval), and Recover rebuilds sessions byte-identical after a
	// crash. Nil keeps the host purely in-memory.
	WAL *wal.Store
	// CheckpointEvery compacts a session's log (checkpoint + truncate)
	// after this many arrivals since the last checkpoint. 0 disables
	// checkpointing; ignored without WAL. A session whose stream ever
	// refused an arrival is never checkpointed again, so the full log
	// stays replayable into the exact error state.
	CheckpointEvery int
	// ShedAfter bounds how long a submit may park on a full queue
	// before the host sheds it with ErrOverloaded (429 + Retry-After at
	// the HTTP layer) instead of stalling the client forever. 0 (the
	// default) keeps the legacy behavior: park until space, ctx death
	// or close. Per-tenant fair by construction — each session parks on
	// its own queue, so one tenant's saturation sheds only that
	// tenant's submits.
	ShedAfter time.Duration
	// MaxProducers bounds each session's dedup window: distinct
	// producer ids tracked per tenant (default 256). A saturated window
	// sheds new producers with ErrOverloaded rather than growing
	// without bound.
	MaxProducers int
	// ClosedResults sizes the host's cache of final Results for closed
	// sessions (default 128), which makes DELETE idempotent: a client
	// whose close ack was lost on the wire retries and receives the
	// same verified Result instead of a 404. Negative disables.
	ClosedResults int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	// Round up to a power of two so shardOf is a mask, not a modulo.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxBacklog <= 0 {
		c.MaxBacklog = 256
	}
	if c.MaxProducers <= 0 {
		c.MaxProducers = 256
	}
	if c.ClosedResults == 0 {
		c.ClosedResults = 128
	}
	if c.Registry == nil {
		c.Registry = engine.DefaultRegistry()
	}
	return c
}

// shard is one slice of the tenant map.
type shard struct {
	mu       sync.Mutex //schedlint:nocallout
	sessions map[string]*Session
}

// Host hosts live sessions for many tenants. Create a Host with
// NewHost; the zero value is not usable.
type Host struct {
	cfg     Config
	reg     *engine.Registry
	shards  []shard
	metrics *Metrics
	// backlog aggregates every session queue's depth so the /metrics
	// scrape never walks the shards. It is sharded into cache-line
	// padded cells — each session's queue writes through its own
	// stripe's cell — so concurrent appliers on different cores do not
	// contend on one gauge line.
	backlog *stats.ShardedInt64

	mu       sync.Mutex //schedlint:nocallout admission: live count + draining flag
	live     int
	draining bool
	// creating tracks creates that reserved a slot but have not yet
	// registered their session; Drain waits for it after flipping
	// draining, so no session can slip past the drain snapshot.
	creating sync.WaitGroup

	// closed is the bounded FIFO cache of final Results, keyed by
	// tenant id: the idempotent-close window. A DELETE retried after a
	// lost ack finds its Result here instead of a 404.
	closedMu    sync.Mutex
	closedRes   map[string]*engine.Result
	closedOrder []string

	nextID atomic.Uint64
}

// NewHost builds a host from the config.
func NewHost(cfg Config) *Host {
	cfg = cfg.withDefaults()
	h := &Host{
		cfg: cfg, reg: cfg.Registry,
		shards:  make([]shard, cfg.Shards),
		metrics: newMetrics(),
		backlog: stats.NewShardedInt64(stats.HistStripes),
	}
	for i := range h.shards {
		h.shards[i].sessions = make(map[string]*Session)
	}
	if cfg.ClosedResults > 0 {
		h.closedRes = make(map[string]*engine.Result)
	}
	return h
}

// cacheClosed remembers a closed session's final Result (bounded FIFO)
// so a retried DELETE can be answered idempotently.
func (h *Host) cacheClosed(id string, res *engine.Result) {
	if h.closedRes == nil || res == nil {
		return
	}
	h.closedMu.Lock()
	if _, dup := h.closedRes[id]; !dup {
		h.closedOrder = append(h.closedOrder, id)
		if len(h.closedOrder) > h.cfg.ClosedResults {
			evict := h.closedOrder[0]
			h.closedOrder = h.closedOrder[1:]
			delete(h.closedRes, evict)
		}
	}
	h.closedRes[id] = res
	h.closedMu.Unlock()
}

// ClosedResult returns the cached final Result of a recently closed
// session, if the idempotent-close window still holds it.
func (h *Host) ClosedResult(id string) (*engine.Result, bool) {
	if h.closedRes == nil {
		return nil, false
	}
	h.closedMu.Lock()
	res, ok := h.closedRes[id]
	h.closedMu.Unlock()
	return res, ok
}

// Metrics returns the host's metrics core.
func (h *Host) Metrics() *Metrics { return h.metrics }

// Registry returns the registry sessions are resolved against.
func (h *Host) Registry() *engine.Registry { return h.reg }

func (h *Host) shardOf(id string) *shard {
	f := fnv.New32a()
	f.Write([]byte(id))
	return &h.shards[f.Sum32()&uint32(len(h.shards)-1)]
}

// stripeOf maps a tenant onto a metrics stripe: stable per tenant (a
// recovered or migrated session lands on the same stripe), spread by
// the same hash as the shard map so concurrent appliers write
// different cache lines.
func stripeOf(id string) int {
	f := fnv.New32a()
	f.Write([]byte(id))
	return int(f.Sum32())
}

// Session is one tenant's live run: a bounded arrival ring drained in
// batches by a dedicated applier goroutine into an engine.Live.
type Session struct {
	// ID is the tenant identifier the session is registered under.
	ID string
	// Spec is the spec the session was created from.
	Spec engine.Spec

	host  *Host
	queue *arrq
	done  chan struct{} // applier exited
	// stripe is the session's stable index into the host's striped hot
	// counters (latency histogram, backlog cells).
	stripe int

	closeCh chan struct{} // closed when closing begins; releases parked submitters
	closed  sync.Once     // guards closeCh

	mu  sync.Mutex // serializes the run against Snapshot/Close
	run *engine.Live

	// wlog is the session's write-ahead log (nil on an in-memory host).
	// Only the applier appends to it, so the logged order is the applied
	// order; base is the log's arrival count when the session attached
	// (zero when fresh, the replayed count when recovered), which maps
	// the queue's enqueue positions onto log positions for durable acks.
	wlog *wal.Log
	base uint64

	// producers is the handler-side dedup window: per producer id, the
	// highest *submitted* sequence with its accepted count and
	// durable-ack log position. A retry whose seq is at or below the
	// window is acked from it without re-applying. Guarded by pmu; each
	// producer entry then serializes its own requests through its own
	// lock (a producer's batches are logically serial — one in flight —
	// so a timed-out original and its retry never race the window).
	pmu       sync.Mutex //schedlint:nocallout dedup window: map get/insert only
	producers map[string]*producer

	// logged is the applier-side dedup window: per producer, the highest
	// sequence actually written to the WAL. Only the applier goroutine
	// touches it (attach seeds it before the goroutine starts), so the
	// checkpoint — which also runs on the applier — records windows that
	// exactly match the logged history at the cut, never a submitted-
	// but-unlogged batch a crash would lose.
	logged map[string]walWindow

	// err is guarded separately from the run: the applier holds mu for
	// the whole of a (possibly slow) batch apply, and Submit must be
	// able to fail fast on a recorded error without waiting for it.
	errMu sync.Mutex
	err   error // first refused arrival; later submits fail fast with it
}

// producer is one producer's slot in the handler-side dedup window.
type producer struct {
	mu       sync.Mutex // serializes same-producer submits (incl. retries of an in-flight batch)
	seq      uint64     // highest submitted sequence; 0 = none yet
	accepted int        // line count of that batch, replayed in duplicate acks
	pos      uint64     // absolute log position of its last job — the durable-ack gate
}

// walWindow is the durable half of a producer's window: what the WAL
// (and so recovery) knows.
type walWindow struct {
	Seq      uint64
	Accepted int
}

// Create opens a session for the tenant id (a fresh "s-<n>" id when
// empty) from the spec. Admission control refuses once MaxSessions
// tenants are live, and a draining host refuses everything.
func (h *Host) Create(id string, spec engine.Spec) (*Session, error) {
	h.mu.Lock()
	if h.draining {
		h.mu.Unlock()
		return nil, ErrDraining
	}
	if h.live >= h.cfg.MaxSessions {
		h.mu.Unlock()
		h.metrics.admissionRefused()
		return nil, fmt.Errorf("%w (%d live)", ErrAdmission, h.cfg.MaxSessions)
	}
	h.live++ // reserve the slot before the (possibly slow) build
	// The Add happens under h.mu strictly before draining can flip, so
	// Drain's Wait observes every reservation that beat the flag.
	h.creating.Add(1)
	h.mu.Unlock()
	defer h.creating.Done()
	release := func() {
		h.mu.Lock()
		h.live--
		h.mu.Unlock()
	}

	run, err := h.reg.NewLive(spec)
	if err != nil {
		release()
		return nil, err
	}
	if id == "" {
		id = fmt.Sprintf("s-%d", h.nextID.Add(1))
	}
	var wlog *wal.Log
	if h.cfg.WAL != nil {
		// The open record — everything recovery needs to rebuild the
		// session shell — is durable before the create is acknowledged.
		wlog, err = h.cfg.WAL.Create(id, appendOpenJSON(make([]byte, 0, 128), id, spec))
		if err != nil {
			release()
			if errors.Is(err, wal.ErrExists) {
				return nil, fmt.Errorf("%w: %q", ErrDuplicate, id)
			}
			return nil, err
		}
	}
	stripe := stripeOf(id)
	s := &Session{
		ID: id, Spec: spec, host: h,
		queue:     newArrq(h.cfg.MaxBacklog, h.backlog.Cell(stripe)),
		done:      make(chan struct{}),
		closeCh:   make(chan struct{}),
		stripe:    stripe,
		run:       run,
		wlog:      wlog,
		producers: make(map[string]*producer),
		logged:    make(map[string]walWindow),
	}
	sh := h.shardOf(id)
	sh.mu.Lock()
	if _, dup := sh.sessions[id]; dup {
		sh.mu.Unlock()
		release()
		if wlog != nil {
			_ = wlog.CloseAndRemove() // nothing was ever logged
		}
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	sh.sessions[id] = s
	sh.mu.Unlock()
	go s.apply()
	h.metrics.sessionOpened()
	return s, nil
}

// Get returns the tenant's live session.
func (h *Host) Get(id string) (*Session, error) {
	sh := h.shardOf(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// remove unregisters the session; idempotent.
func (h *Host) remove(id string) bool {
	sh := h.shardOf(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if ok {
		h.mu.Lock()
		h.live--
		h.mu.Unlock()
		h.metrics.sessionClosed()
	}
	return ok
}

// Close drains and finalises the tenant's session: queued arrivals are
// applied, the policy plans, the schedule is verified, and the final
// Result is returned. The session is unregistered in every case.
func (h *Host) Close(id string) (*engine.Result, error) {
	return h.CloseCtx(context.Background(), id)
}

// CloseCtx is Close with a deadline: a done ctx abandons the wait for
// the applier (the session stays unregistered; its goroutine exits
// whenever the policy returns).
func (h *Host) CloseCtx(ctx context.Context, id string) (*engine.Result, error) {
	s, err := h.Get(id)
	if err != nil {
		return nil, err
	}
	if !h.remove(id) {
		// A concurrent Close won the race to unregister.
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	res, err := s.finish(ctx)
	if err == nil {
		// The idempotent-close window: a retried DELETE whose ack was
		// lost on the wire replays the same verified Result.
		h.cacheClosed(id, res)
	}
	return res, err
}

// Detach seals a session for migration: the tenant is unregistered
// (new submits 404), parked submitters are released, the applier
// drains what was already queued — so everything acked is in the log —
// and the log is closed *keeping* its directory, ready for
// wal.Store.Export. The engine run is abandoned, not finalized: the
// target rebuilds it from the exported log, byte-identical, and this
// host's copy was never asked for a final Result. After the target
// acknowledges the import, the caller drops the source state with the
// WAL store's Remove. A done ctx abandons the wait (the session stays
// unregistered; the log stays open and recovers at next boot).
func (h *Host) Detach(ctx context.Context, id string) error {
	if h.cfg.WAL == nil {
		return fmt.Errorf("serve: detach of %q: host has no WAL to export from", id)
	}
	s, err := h.Get(id)
	if err != nil {
		return err
	}
	if !h.remove(id) {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.closed.Do(func() { close(s.closeCh) })
	s.queue.close()
	select {
	case <-s.done:
	case <-ctx.Done():
		return fmt.Errorf("serve: detach of %q abandoned: %w", id, context.Cause(ctx))
	}
	if err := s.wlog.Close(); err != nil {
		return fmt.Errorf("serve: detach of %q: %w", id, err)
	}
	return nil
}

// Backlog returns the total queued-but-undrained arrivals across all
// sessions (the /metrics backlog gauge). It sums the sharded gauge's
// cells — the metrics scrape takes no shard or session lock.
func (h *Host) Backlog() int {
	if n := h.backlog.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// SessionIDs returns the live tenant ids, sorted.
func (h *Host) SessionIDs() []string {
	var ids []string
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for id := range sh.sessions {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(ids)
	return ids
}

// DrainResult is one session's outcome from a host drain.
type DrainResult struct {
	ID     string         `json:"id"`
	Result *engine.Result `json:"result,omitempty"`
	Err    string         `json:"error,omitempty"`
}

// Drain gracefully shuts the host down: new sessions and new arrivals
// are refused, every live session is closed (queued arrivals applied,
// schedules verified) on a bounded worker pool, and all final results
// are flushed back, sorted by tenant id. A done ctx abandons sessions
// not yet closed — they are reported with ctx's error — so a stuck
// policy cannot hold shutdown hostage. Drain is idempotent; later
// calls find no sessions.
func (h *Host) Drain(ctx context.Context) ([]DrainResult, error) {
	h.mu.Lock()
	h.draining = true
	h.mu.Unlock()
	// Creates that passed the draining check before the flag flipped
	// may still be registering; wait them out so the snapshot below
	// sees every session that was ever promised to a client.
	h.creating.Wait()

	ids := h.SessionIDs()
	round := make([]DrainResult, len(ids))
	err := pool.RunCtx(ctx, len(ids), 0, func(i int) error {
		res, err := h.CloseCtx(ctx, ids[i])
		if errors.Is(err, ErrNotFound) {
			// A concurrent DELETE closed it; handled elsewhere.
			return nil
		}
		round[i] = DrainResult{ID: ids[i], Result: res}
		if err != nil {
			round[i].Err = err.Error()
			return fmt.Errorf("session %q: %w", ids[i], err)
		}
		return nil
	})
	out := make([]DrainResult, 0, len(round))
	for i := range round {
		if round[i].ID == "" && ctx.Err() != nil {
			// The cancelled pool never started this slot.
			round[i] = DrainResult{ID: ids[i], Err: context.Cause(ctx).Error()}
		}
		if round[i].ID != "" {
			out = append(out, round[i])
		}
	}
	return out, err
}

// apply is the session's applier goroutine: it alone feeds the run,
// so arrival application is serialized per tenant. Each wakeup drains
// *everything* queued (up to MaxApplyBatch) and applies it as one
// engine.Live.ApplyBatch call — one lock acquisition, one latency
// measurement and, for batch-aware policies, one coalesced replan per
// same-release group, instead of all of those per job. Under load the
// queue refills while a batch is being applied, so ingest and
// application pipeline instead of ping-ponging. The applier keeps
// draining after an error (recording only the first) so that blocked
// submitters are never stranded on a full queue.
func (s *Session) apply() {
	defer close(s.done)
	max := s.host.cfg.MaxApplyBatch
	scratch := make([]job.Job, 0, s.host.cfg.MaxBacklog)
	for {
		batch, st, done := s.queue.drainTo(scratch[:0], max)
		if len(batch) > 0 {
			if s.wlog != nil {
				// Log the raw drained batch — refusals included, so replay
				// reproduces them — before the engine sees it. A stamped
				// batch drains whole and is journaled with its (producer,
				// seq), so recovery rebuilds the dedup window from the
				// same record that rebuilds the session. The append hits
				// the page cache only; durability is the group fsync's
				// job, and acks wait on it, not here. A dead log fails
				// the batch without applying it: state the WAL never saw
				// must not exist in memory either.
				if _, err := s.wlog.AppendStamped(st.producer, st.seq, batch); err != nil {
					s.recordErr(err)
					s.host.metrics.arrivalsFailed(len(batch))
					continue
				}
			}
			if st.producer != "" {
				// Applier-owned: the durable window the next checkpoint
				// meta records. Tracks logged state only, never a
				// submitted batch still in the ring.
				s.logged[st.producer] = walWindow{Seq: st.seq, Accepted: len(batch)}
			}
			s.mu.Lock()
			start := time.Now()
			applied, err := s.run.ApplyBatch(batch)
			d := time.Since(start)
			s.mu.Unlock()
			if applied > 0 {
				s.host.metrics.arrivalsApplied(s.stripe, applied, d)
			}
			if err != nil {
				s.recordErr(err)
				s.host.metrics.arrivalsFailed(len(batch) - applied)
			} else {
				s.maybeCheckpoint()
			}
			continue // the queue may have refilled while we applied
		}
		if done {
			return
		}
		s.queue.waitData()
	}
}

func (s *Session) recordErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Submit queues one arrival for application. A full queue blocks —
// that is the backpressure bound MaxBacklog — until space frees, the
// ctx is done, or the session starts closing. An arrival the policy
// refused earlier fails all later submits fast with that first error.
func (s *Session) Submit(ctx context.Context, j job.Job) error {
	one := [1]job.Job{j}
	_, err := s.SubmitBatch(ctx, one[:])
	return err
}

// SubmitBatch queues a run of arrivals, blocking while the queue is
// full, and returns how many were queued. It stops early — reporting
// the queued prefix — when the ctx dies, the session starts closing,
// or an earlier arrival was refused (fail-fast on the recorded
// error). The ingest handler decodes up to a batch of NDJSON lines
// and queues them all under one ring lock here, which with the
// batch-draining applier makes the per-arrival synchronization cost
// O(1/batch) instead of O(1).
func (s *Session) SubmitBatch(ctx context.Context, js []job.Job) (int, error) {
	queued := 0
	var shed <-chan time.Time
	var shedTimer *time.Timer
	for {
		if err := s.firstErr(); err != nil {
			return queued, err
		}
		k, closed := s.queue.push(js)
		if closed {
			return queued, fmt.Errorf("%w: %q", ErrClosing, s.ID)
		}
		queued += k
		js = js[k:]
		if len(js) == 0 {
			if shedTimer != nil {
				shedTimer.Stop()
			}
			return queued, nil
		}
		// Full: park until the applier frees space, the caller gives
		// up, the session starts closing (closeCh releases parked
		// submitters even when a stuck policy never frees space), or —
		// with ShedAfter set — the shed deadline passes and the host
		// degrades gracefully with 429 instead of an unbounded stall.
		if shed == nil && s.host.cfg.ShedAfter > 0 {
			shedTimer = time.NewTimer(s.host.cfg.ShedAfter)
			shed = shedTimer.C
		}
		select {
		case <-s.queue.space:
		case <-ctx.Done():
			if shedTimer != nil {
				shedTimer.Stop()
			}
			return queued, ctx.Err()
		case <-s.closeCh:
			if shedTimer != nil {
				shedTimer.Stop()
			}
			return queued, fmt.Errorf("%w: %q", ErrClosing, s.ID)
		case <-shed:
			s.host.metrics.shedRecorded(s.stripe)
			return queued, fmt.Errorf("%w: %q backlog full for %v", ErrOverloaded, s.ID, s.host.cfg.ShedAfter)
		}
	}
}

// lookupProducer reads the dedup window — the per-request cost of an
// idempotent submit. A map read on a string the HTTP layer already
// holds: no allocation, no new lock beyond pmu.
//
//schedlint:hotpath
func (s *Session) lookupProducer(prod string) *producer {
	s.pmu.Lock()
	p := s.producers[prod]
	s.pmu.Unlock()
	return p
}

// newProducer admits a producer into the dedup window, shedding when
// the window is saturated. Once per producer lifetime — cold.
//
//schedlint:coldpath
func (s *Session) newProducer(prod string) (*producer, error) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if p := s.producers[prod]; p != nil {
		return p, nil
	}
	if len(s.producers) >= s.host.cfg.MaxProducers {
		s.host.metrics.shedRecorded(s.stripe)
		return nil, fmt.Errorf("%w: %q dedup window full (%d producers)", ErrOverloaded, s.ID, s.host.cfg.MaxProducers)
	}
	p := &producer{}
	s.producers[prod] = p
	return p, nil
}

// SubmitStamped queues one producer-stamped batch exactly-once: a
// sequence at or below the producer's window is a duplicate delivery
// (client retry, redirect body replay, post-crash resend) and is acked
// from the window — accepted count and durable position of the
// original — without touching the queue; the next sequence is admitted
// atomically (whole batch, one WAL record downstream) and advances the
// window; anything further ahead is a client bug, refused with
// ErrSeqGap. dup reports the suppressed case; pos is the log position
// the caller must WaitDurable on before acking.
func (s *Session) SubmitStamped(ctx context.Context, prod string, seq uint64, js []job.Job) (accepted int, pos uint64, dup bool, err error) {
	if seq == 0 {
		return 0, 0, false, fmt.Errorf("%w: producer %q sequence must start at 1", ErrSeqGap, prod)
	}
	p := s.lookupProducer(prod)
	if p == nil {
		if p, err = s.newProducer(prod); err != nil {
			return 0, 0, false, err
		}
	}
	// One producer, one lock: a retry racing its still-in-flight
	// original parks here and then reads the settled window.
	p.mu.Lock()
	defer p.mu.Unlock()
	if seq <= p.seq {
		s.host.metrics.dedupSuppressed(s.stripe)
		return p.accepted, p.pos, true, nil
	}
	if seq != p.seq+1 {
		return 0, 0, false, fmt.Errorf("%w: producer %q sent seq %d after %d", ErrSeqGap, prod, seq, p.seq)
	}
	if len(js) == 0 {
		// An empty batch is a no-op: advance the window (the retry acks
		// as a duplicate) without queueing. Nothing reaches the WAL, so
		// a crash forgets it — and replaying a no-op is still a no-op.
		p.seq, p.accepted = seq, 0
		return 0, p.pos, false, nil
	}
	var shed <-chan time.Time
	var shedTimer *time.Timer
	for {
		if err := s.firstErr(); err != nil {
			return 0, 0, false, err
		}
		qpos, ok, closed, tooBig := s.queue.pushAll(js, prod, seq)
		if closed {
			return 0, 0, false, fmt.Errorf("%w: %q", ErrClosing, s.ID)
		}
		if tooBig {
			return 0, 0, false, fmt.Errorf("%w: %d jobs > backlog %d", ErrTooLarge, len(js), s.host.cfg.MaxBacklog)
		}
		if ok {
			if shedTimer != nil {
				shedTimer.Stop()
			}
			p.seq, p.accepted, p.pos = seq, len(js), s.base+qpos
			return len(js), p.pos, false, nil
		}
		if shed == nil && s.host.cfg.ShedAfter > 0 {
			shedTimer = time.NewTimer(s.host.cfg.ShedAfter)
			shed = shedTimer.C
		}
		select {
		case <-s.queue.space:
		case <-ctx.Done():
			if shedTimer != nil {
				shedTimer.Stop()
			}
			return 0, 0, false, ctx.Err()
		case <-s.closeCh:
			if shedTimer != nil {
				shedTimer.Stop()
			}
			return 0, 0, false, fmt.Errorf("%w: %q", ErrClosing, s.ID)
		case <-shed:
			s.host.metrics.shedRecorded(s.stripe)
			return 0, 0, false, fmt.Errorf("%w: %q backlog full for %v", ErrOverloaded, s.ID, s.host.cfg.ShedAfter)
		}
	}
}

func (s *Session) firstErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Backlog returns the session's queued-but-undrained arrival count.
func (s *Session) Backlog() int { return s.queue.length() }

// SessionSnapshot is a session's observable state: identity, backlog
// and the embedded mid-stream engine snapshot.
type SessionSnapshot struct {
	ID      string `json:"id"`
	Policy  string `json:"policy"`
	Backlog int    `json:"backlog"`
	engine.Snapshot
}

// Snapshot observes the live run between arrivals without disturbing
// it. Arrivals still queued are visible as Backlog, not in the
// engine's arrival count.
func (s *Session) Snapshot() SessionSnapshot {
	s.mu.Lock()
	snap := s.run.Snapshot()
	s.mu.Unlock()
	return SessionSnapshot{ID: s.ID, Policy: s.Spec.Name, Backlog: s.queue.length(), Snapshot: snap}
}

// finish seals the queue, waits for the applier to drain it, and
// closes the run. An arrival error surfaces here (alongside any
// close/verification error); the result is returned only for a fully
// clean session. A done ctx abandons the wait, so one stuck policy
// cannot hold a host drain hostage.
func (s *Session) finish(ctx context.Context) (*engine.Result, error) {
	// Release parked submitters, then seal the queue: the ring refuses
	// pushes from here on (no channel close/send race to choreograph)
	// and the applier exits once it has drained what remains.
	s.closed.Do(func() { close(s.closeCh) })
	s.queue.close()
	select {
	case <-s.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("session %q: close abandoned: %w", s.ID, context.Cause(ctx))
	}

	// The session is over either way: retire its log — close record
	// made durable first, then the tenant directory removed — so a
	// restart does not resurrect a session whose final answer was
	// already delivered. (An abandoned wait above keeps the log: the
	// applier may still be running, and the next boot recovers it.)
	var walErr error
	if s.wlog != nil {
		walErr = s.wlog.CloseAndRemove()
	}
	if err := s.firstErr(); err != nil {
		return nil, fmt.Errorf("session %q: arrival refused: %w", s.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.run.Close()
	if err != nil {
		return nil, fmt.Errorf("session %q: %w", s.ID, err)
	}
	if walErr != nil {
		return nil, fmt.Errorf("session %q: retiring wal: %w", s.ID, walErr)
	}
	return res, nil
}
