// The host's metrics core: a handful of counters and gauges plus the
// shared log-bucket latency histogram, rendered in Prometheus text
// exposition format. No client library — the format is a page of
// strconv appends, and keeping it in-tree means the daemon has zero
// dependencies beyond the standard library.
//
// Every hot-path update is a plain atomic, and batched: the applier
// reports a whole drained batch with two atomic adds and one O(1)
// histogram update (ObserveN), so metrics cost per arrival vanishes
// as batches grow. The scrape is a lock-free fast path too: it reads
// the atomics, renders into a pooled buffer with strconv (no fmt, no
// reflection) and writes once — a monitoring system polling /metrics
// steals no throughput from ingest.

package serve

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/promtext"
	"repro/internal/stats"
)

// Metrics aggregates the host's counters. All methods are safe for
// concurrent use; the write paths are contention-free.
type Metrics struct {
	start time.Time

	sessionsLive   atomic.Int64
	sessionsTotal  atomic.Uint64
	sessionsClosed atomic.Uint64
	arrivalErrors  atomic.Uint64
	refused        atomic.Uint64
	// latency is the amortized per-arrival apply latency in seconds,
	// striped across cache-line padded histogram stripes: each session's
	// applier writes through its own stripe, so many-core ingest never
	// ping-pongs the count/sum lines between cores. Its Count() is also
	// the applied-arrivals counter — every applied arrival is observed
	// exactly once — so there is no separate (contended) arrivals atomic.
	latency stats.StripedHistogram
	// dedup counts batches the idempotent-producer window suppressed
	// (duplicate deliveries acked from the watermark); shed counts
	// submits degraded with 429 instead of stalling. Both are striped
	// like the backlog gauge: concurrent tenants write their own cells.
	dedup *stats.ShardedInt64
	shed  *stats.ShardedInt64
}

func newMetrics() *Metrics {
	return &Metrics{
		start: time.Now(),
		dedup: stats.NewShardedInt64(stats.HistStripes),
		shed:  stats.NewShardedInt64(stats.HistStripes),
	}
}

func (m *Metrics) sessionOpened() {
	m.sessionsLive.Add(1)
	m.sessionsTotal.Add(1)
}

func (m *Metrics) sessionClosed() {
	m.sessionsLive.Add(-1)
	m.sessionsClosed.Add(1)
}

func (m *Metrics) admissionRefused() { m.refused.Add(1) }

// arrivalsApplied records a drained batch: n arrivals applied in d of
// policy time, observed through the session's histogram stripe. Each
// arrival is charged the batch's amortized per-arrival latency, so the
// histogram's count stays one entry per arrival (not per batch) and
// quantiles remain comparable across batch sizes.
//
//schedlint:hotpath
func (m *Metrics) arrivalsApplied(stripe, n int, d time.Duration) {
	if n <= 0 {
		return
	}
	m.latency.ObserveN(stripe, d.Seconds()/float64(n), uint64(n))
}

//schedlint:hotpath
func (m *Metrics) arrivalsFailed(n int) {
	if n > 0 {
		m.arrivalErrors.Add(uint64(n))
	}
}

// dedupSuppressed records one duplicate batch acked from the window
// without re-applying.
//
//schedlint:hotpath
func (m *Metrics) dedupSuppressed(stripe int) { m.dedup.Cell(stripe).Add(1) }

// shedRecorded records one submit degraded to 429 (full backlog past
// the shed deadline, or a saturated dedup window).
//
//schedlint:hotpath
func (m *Metrics) shedRecorded(stripe int) { m.shed.Cell(stripe).Add(1) }

// DedupSuppressed returns the duplicate-batches-suppressed counter.
func (m *Metrics) DedupSuppressed() uint64 {
	if n := m.dedup.Load(); n > 0 {
		return uint64(n)
	}
	return 0
}

// Sheds returns the shed-submits counter.
func (m *Metrics) Sheds() uint64 {
	if n := m.shed.Load(); n > 0 {
		return uint64(n)
	}
	return 0
}

// SessionsLive returns the live-session gauge.
func (m *Metrics) SessionsLive() int64 { return m.sessionsLive.Load() }

// Arrivals returns the applied-arrivals counter (the latency
// histogram's observation count — one entry per applied arrival).
func (m *Metrics) Arrivals() uint64 { return m.latency.Count() }

// Latency returns a snapshot of the arrival-latency histogram,
// mergeable with any other stats.Histogram.
func (m *Metrics) Latency() stats.Histogram { return m.latency.Snapshot() }

// scrapePool recycles the render buffers of /metrics responses.
var scrapePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// WritePrometheus renders every metric in Prometheus text exposition
// format. backlog is sampled by the caller (the host owns the
// aggregate gauge). The render takes no locks and allocates nothing
// beyond the pooled buffer.
//
//schedlint:hotpath
func (m *Metrics) WritePrometheus(w io.Writer, backlog int) error {
	bp := scrapePool.Get().(*[]byte)
	b := m.appendPrometheus((*bp)[:0], backlog)
	_, err := w.Write(b)
	*bp = b[:0]
	scrapePool.Put(bp)
	return err
}

// quantileGauges drives the p50/p99 gauge block of the scrape; a
// fixed package-level array so the render loop touches no fresh slice
// header (schedlint/hotalloc flags composite literals in hot code).
var quantileGauges = [...]struct {
	name string
	q    float64
}{{"schedd_arrival_latency_seconds_p50", 0.5}, {"schedd_arrival_latency_seconds_p99", 0.99}}

//schedlint:hotpath
func (m *Metrics) appendPrometheus(b []byte, backlog int) []byte {
	live := m.sessionsLive.Load()
	total, closed := m.sessionsTotal.Load(), m.sessionsClosed.Load()
	arrErrs, refused := m.arrivalErrors.Load(), m.refused.Load()
	lat := m.latency.Snapshot()
	arrivals := lat.Count()
	uptime := time.Since(m.start).Seconds()

	var rate float64
	if uptime > 0 {
		rate = float64(arrivals) / uptime
	}
	b = promtext.AppendInt(b, "schedd_sessions_live", "Sessions currently hosted.", "gauge", live)
	b = promtext.AppendUint(b, "schedd_sessions_opened_total", "Sessions ever created.", "counter", total)
	b = promtext.AppendUint(b, "schedd_sessions_closed_total", "Sessions closed (drained or deleted).", "counter", closed)
	b = promtext.AppendUint(b, "schedd_admission_refused_total", "Session creations refused by admission control.", "counter", refused)
	b = promtext.AppendUint(b, "schedd_arrivals_total", "Arrivals applied to live sessions.", "counter", arrivals)
	b = promtext.AppendUint(b, "schedd_arrival_errors_total", "Arrivals the policy or validator refused.", "counter", arrErrs)
	b = promtext.AppendUint(b, "schedd_dedup_suppressed_total", "Duplicate stamped batches acked from the dedup window without re-applying.", "counter", m.DedupSuppressed())
	b = promtext.AppendUint(b, "schedd_shed_total", "Submits shed with 429 under overload instead of stalling.", "counter", m.Sheds())
	b = promtext.AppendInt(b, "schedd_backlog", "Arrivals queued but not yet applied, across all sessions.", "gauge", int64(backlog))
	b = promtext.AppendFloat(b, "schedd_arrivals_per_second", "Applied arrival rate over the process lifetime.", "gauge", rate)
	b = promtext.AppendFloat(b, "schedd_uptime_seconds", "Seconds since the host started.", "gauge", uptime)

	b = promtext.AppendHistogram(b, "schedd_arrival_latency_seconds",
		"Amortized policy apply latency per arrival (batch time / batch size).", lat)
	// p50/p99 as plain gauges so dashboards (and the e2e test) need no
	// histogram math.
	for _, q := range quantileGauges {
		v := 0.0
		if lat.Count() > 0 {
			v = lat.Quantile(q.q)
		}
		b = promtext.AppendGauge(b, q.name, v)
	}
	return b
}
