// The host's metrics core: a handful of counters and gauges plus the
// shared log-bucket latency histogram, rendered in Prometheus text
// exposition format. No client library — the format is five lines of
// fmt, and keeping it in-tree means the daemon has zero dependencies
// beyond the standard library.
//
// Every hot-path update (one per arrival, across all tenants) is a
// plain atomic: there is no metrics lock for appliers to contend on,
// and histogram observation is lock-free too. Scrapes read each
// counter independently — a scrape racing an update may see the
// counters a hair apart, which is the usual Prometheus contract.

package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Metrics aggregates the host's counters. All methods are safe for
// concurrent use; the write paths are contention-free.
type Metrics struct {
	start time.Time

	sessionsLive   atomic.Int64
	sessionsTotal  atomic.Uint64
	sessionsClosed atomic.Uint64
	arrivals       atomic.Uint64
	arrivalErrors  atomic.Uint64
	refused        atomic.Uint64
	latency        stats.AtomicHistogram // policy apply latency, seconds
}

func newMetrics() *Metrics { return &Metrics{start: time.Now()} }

func (m *Metrics) sessionOpened() {
	m.sessionsLive.Add(1)
	m.sessionsTotal.Add(1)
}

func (m *Metrics) sessionClosed() {
	m.sessionsLive.Add(-1)
	m.sessionsClosed.Add(1)
}

func (m *Metrics) admissionRefused() { m.refused.Add(1) }

func (m *Metrics) arrivalApplied(d time.Duration) {
	m.arrivals.Add(1)
	m.latency.Observe(d.Seconds())
}

func (m *Metrics) arrivalFailed() { m.arrivalErrors.Add(1) }

// SessionsLive returns the live-session gauge.
func (m *Metrics) SessionsLive() int64 { return m.sessionsLive.Load() }

// Arrivals returns the applied-arrivals counter.
func (m *Metrics) Arrivals() uint64 { return m.arrivals.Load() }

// Latency returns a snapshot of the arrival-latency histogram,
// mergeable with any other stats.Histogram.
func (m *Metrics) Latency() stats.Histogram { return m.latency.Snapshot() }

// WritePrometheus renders every metric in Prometheus text exposition
// format. backlog is sampled by the caller (the host knows its queues).
func (m *Metrics) WritePrometheus(w io.Writer, backlog int) error {
	live := m.sessionsLive.Load()
	total, closed := m.sessionsTotal.Load(), m.sessionsClosed.Load()
	arrivals, arrErrs, refused := m.arrivals.Load(), m.arrivalErrors.Load(), m.refused.Load()
	lat := m.latency.Snapshot()
	uptime := time.Since(m.start).Seconds()

	var rate float64
	if uptime > 0 {
		rate = float64(arrivals) / uptime
	}
	for _, g := range []struct {
		name, help, typ string
		value           any
	}{
		{"schedd_sessions_live", "Sessions currently hosted.", "gauge", live},
		{"schedd_sessions_opened_total", "Sessions ever created.", "counter", total},
		{"schedd_sessions_closed_total", "Sessions closed (drained or deleted).", "counter", closed},
		{"schedd_admission_refused_total", "Session creations refused by admission control.", "counter", refused},
		{"schedd_arrivals_total", "Arrivals applied to live sessions.", "counter", arrivals},
		{"schedd_arrival_errors_total", "Arrivals the policy or validator refused.", "counter", arrErrs},
		{"schedd_backlog", "Arrivals queued but not yet applied, across all sessions.", "gauge", backlog},
		{"schedd_arrivals_per_second", "Applied arrival rate over the process lifetime.", "gauge", rate},
		{"schedd_uptime_seconds", "Seconds since the host started.", "gauge", uptime},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n",
			g.name, g.help, g.name, g.typ, g.name, g.value); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "# HELP schedd_arrival_latency_seconds Policy apply latency per arrival.\n# TYPE schedd_arrival_latency_seconds histogram\n"); err != nil {
		return err
	}
	for _, b := range lat.Buckets() {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = fmt.Sprintf("%g", b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "schedd_arrival_latency_seconds_bucket{le=%q} %d\n", le, b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "schedd_arrival_latency_seconds_sum %g\nschedd_arrival_latency_seconds_count %d\n",
		lat.Sum(), lat.Count()); err != nil {
		return err
	}
	// p50/p99 as plain gauges so dashboards (and the e2e test) need no
	// histogram math.
	for _, q := range []struct {
		name string
		q    float64
	}{{"schedd_arrival_latency_seconds_p50", 0.5}, {"schedd_arrival_latency_seconds_p99", 0.99}} {
		v := 0.0
		if lat.Count() > 0 {
			v = lat.Quantile(q.q)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", q.name, q.name, v); err != nil {
			return err
		}
	}
	return nil
}
