// The HTTP face of the host — the API cmd/schedd exposes:
//
//	POST   /v1/sessions                  create a session from a Spec
//	POST   /v1/sessions/{id}/arrivals    stream arrivals (NDJSON)
//	GET    /v1/sessions/{id}/snapshot    observe the live plan
//	DELETE /v1/sessions/{id}             close → final verified Result
//	GET    /v1/sessions                  list live tenant ids
//	GET    /v1/registry                  the policy registry
//	GET    /metrics                      Prometheus text format
//
// All request and response bodies reuse the engine's wire types
// (Spec, Snapshot, Result) — no parallel DTO layer. Errors come back
// as {"error": "..."} with a status the sentinel errors determine.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/engine"
	"repro/internal/job"
)

// NewHandler returns the daemon's HTTP handler over the host.
func NewHandler(h *Host) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		handleCreate(h, w, r)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/arrivals", func(w http.ResponseWriter, r *http.Request) {
		handleArrivals(h, w, r)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshot(h, w, r)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleClose(h, w, r)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": h.SessionIDs()})
	})
	mux.HandleFunc("GET /v1/registry", func(w http.ResponseWriter, r *http.Request) {
		handleRegistry(h, w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = h.Metrics().WritePrometheus(w, h.Backlog())
	})
	return mux
}

// statusOf maps host errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicate), errors.Is(err, ErrClosing):
		return http.StatusConflict
	case errors.Is(err, ErrAdmission):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; all we can do is cut the connection short.
		return
	}
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), map[string]string{"error": err.Error()})
}

// createRequest is the body of POST /v1/sessions.
type createRequest struct {
	// ID is the tenant id; empty means the host assigns one.
	ID string `json:"id,omitempty"`
	// Spec selects and parameterises the policy (engine wire format).
	Spec engine.Spec `json:"spec"`
}

// createResponse acknowledges a created session.
type createResponse struct {
	ID     string `json:"id"`
	Policy string `json:"policy"`
}

func handleCreate(h *Host, w http.ResponseWriter, r *http.Request) {
	var req createRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decoding create request: %w", err))
		return
	}
	s, err := h.Create(req.ID, req.Spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, createResponse{ID: s.ID, Policy: s.Spec.Name})
}

// arrivalsResponse acknowledges a consumed arrival stream.
type arrivalsResponse struct {
	ID       string `json:"id"`
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

// handleArrivals consumes an NDJSON stream of jobs (one job.Job per
// line) and queues each on the session. The request body is read no
// faster than the session's bounded queue admits — a slow policy or a
// full backlog stalls the read, and TCP flow control carries that
// backpressure to the client. The response reports how many arrivals
// were accepted (queued); a refused arrival stops the stream there.
func handleArrivals(h *Host, w http.ResponseWriter, r *http.Request) {
	s, err := h.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	accepted := 0
	dec := json.NewDecoder(r.Body)
	for {
		var j job.Job
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			writeJSON(w, http.StatusBadRequest, arrivalsResponse{
				ID: s.ID, Accepted: accepted,
				Error: fmt.Sprintf("decoding arrival %d: %v", accepted, err),
			})
			return
		}
		if err := s.Submit(r.Context(), j); err != nil {
			writeJSON(w, statusOf(err), arrivalsResponse{ID: s.ID, Accepted: accepted, Error: err.Error()})
			return
		}
		accepted++
	}
	writeJSON(w, http.StatusOK, arrivalsResponse{ID: s.ID, Accepted: accepted})
}

func handleSnapshot(h *Host, w http.ResponseWriter, r *http.Request) {
	s, err := h.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// closeResponse carries a closed session's final verified result.
type closeResponse struct {
	ID     string         `json:"id"`
	Result *engine.Result `json:"result"`
}

func handleClose(h *Host, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := h.Close(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, closeResponse{ID: id, Result: res})
}

// registryEntry is one row of GET /v1/registry.
type registryEntry struct {
	Name    string   `json:"name"`
	Summary string   `json:"summary"`
	MRange  string   `json:"mRange"`
	Model   string   `json:"model"`
	Mode    string   `json:"mode"`
	Params  []string `json:"params,omitempty"`
}

func handleRegistry(h *Host, w http.ResponseWriter) {
	var out []registryEntry
	for _, reg := range h.Registry().All() {
		out = append(out, registryEntry{
			Name: reg.Name, Summary: reg.Summary,
			MRange: reg.Caps.MRange(), Model: reg.Caps.Model(), Mode: reg.Caps.Mode(),
			Params: reg.Params,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"policies": out})
}
