// The HTTP face of the host — the API cmd/schedd exposes:
//
//	POST   /v1/sessions                  create a session from a Spec
//	POST   /v1/sessions/{id}/arrivals    stream arrivals (NDJSON)
//	GET    /v1/sessions/{id}/snapshot    observe the live plan
//	DELETE /v1/sessions/{id}             close → final verified Result
//	GET    /v1/sessions                  list live tenant ids
//	GET    /v1/registry                  the policy registry
//	GET    /metrics                      Prometheus text format
//
// All request and response bodies reuse the engine's wire types
// (Spec, Snapshot, Result) — no parallel DTO layer. Errors come back
// as {"error": "..."} with a status the sentinel errors determine.
//
// The arrivals endpoint is the daemon's hot path and is built around
// batches end to end: a pooled zero-allocation NDJSON decoder
// (internal/job) parses lines into a reused batch which is queued
// under one ring lock, and the acknowledgement is rendered by hand
// into a pooled buffer. The body is strict NDJSON — one job object
// per line — and is read no faster than the session's bounded queue
// admits, so a slow policy stalls the read and TCP flow control
// carries the backpressure to the client. Snapshot responses share
// the pooled hand-rolled encoding; cold endpoints (create, close,
// registry) keep encoding/json.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/job"
)

// NewHandler returns the daemon's HTTP handler over the host.
func NewHandler(h *Host) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		handleCreate(h, w, r)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/arrivals", func(w http.ResponseWriter, r *http.Request) {
		handleArrivals(h, w, r)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshot(h, w, r)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleClose(h, w, r)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": h.SessionIDs()})
	})
	mux.HandleFunc("GET /v1/registry", func(w http.ResponseWriter, r *http.Request) {
		handleRegistry(h, w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := h.Metrics().WritePrometheus(w, h.Backlog()); err != nil {
			return
		}
		_ = h.WriteWalMetrics(w)
	})
	return mux
}

// statusOf maps host errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicate), errors.Is(err, ErrClosing), errors.Is(err, ErrSeqGap):
		return http.StatusConflict
	case errors.Is(err, ErrAdmission), errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusBadRequest
	}
}

// retryAfter stamps shedding responses (429/503) with the standard
// back-off hint the resilient client honors.
func retryAfter(w http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; all we can do is cut the connection short.
		return
	}
}

func writeError(w http.ResponseWriter, err error) {
	status := statusOf(err)
	retryAfter(w, status)
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// --- pooled hand-rolled responses (hot path) ---

// respPool recycles response render buffers for the hot endpoints.
var respPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// writeRaw sends a pre-rendered JSON body and returns the buffer to
// the pool.
func writeRaw(w http.ResponseWriter, status int, bp *[]byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(*bp)))
	w.WriteHeader(status)
	_, _ = w.Write(*bp)
	*bp = (*bp)[:0]
	respPool.Put(bp)
}

// appendJSONString renders a JSON string literal through the wire
// format's single escaper, job.AppendString (moved there so the WAL's
// spec/snapshot encoders share it) — still byte-identical to the cold
// path's writeJSON, pinned by test.
func appendJSONString(b []byte, s string) []byte { return job.AppendString(b, s) }

// createRequest is the body of POST /v1/sessions.
type createRequest struct {
	// ID is the tenant id; empty means the host assigns one.
	ID string `json:"id,omitempty"`
	// Spec selects and parameterises the policy (engine wire format).
	Spec engine.Spec `json:"spec"`
}

// createResponse acknowledges a created session.
type createResponse struct {
	ID     string `json:"id"`
	Policy string `json:"policy"`
}

func handleCreate(h *Host, w http.ResponseWriter, r *http.Request) {
	var req createRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decoding create request: %w", err))
		return
	}
	s, err := h.Create(req.ID, req.Spec)
	if err != nil {
		// Idempotent create: a retried POST whose first response was
		// lost hits ErrDuplicate. If the live session's spec matches the
		// request byte-for-byte it is the same create, acked 200.
		if errors.Is(err, ErrDuplicate) && req.ID != "" {
			if live, gerr := h.Get(req.ID); gerr == nil &&
				string(live.Spec.AppendJSON(nil)) == string(req.Spec.AppendJSON(nil)) {
				writeJSON(w, http.StatusOK, createResponse{ID: live.ID, Policy: live.Spec.Name})
				return
			}
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, createResponse{ID: s.ID, Policy: s.Spec.Name})
}

// arrivalsResponse acknowledges a consumed arrival stream.
type arrivalsResponse struct {
	ID       string `json:"id"`
	Accepted int    `json:"accepted"`
	Deduped  bool   `json:"deduped,omitempty"`
	Error    string `json:"error,omitempty"`
}

// writeArrivals renders the acknowledgement by hand into a pooled
// buffer — the per-request response cost of the ingest hot path.
// deduped marks a replayed stamped batch acked from the window.
func writeArrivals(w http.ResponseWriter, status int, id string, accepted int, deduped bool, errMsg string) {
	retryAfter(w, status)
	bp := respPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"id":`...)
	b = appendJSONString(b, id)
	b = append(b, `,"accepted":`...)
	b = strconv.AppendInt(b, int64(accepted), 10)
	if deduped {
		b = append(b, `,"deduped":true`...)
	}
	if errMsg != "" {
		b = append(b, `,"error":`...)
		b = appendJSONString(b, errMsg)
	}
	b = append(b, '}', '\n')
	*bp = b
	writeRaw(w, status, bp)
}

// ingestBatch is how many decoded arrivals are buffered before a
// SubmitBatch. It bounds the handler's read-ahead past what the
// session queue has admitted (together with the decoder's read
// window), so backpressure still stalls the body read.
const ingestBatch = 512

// batchPool recycles the decoded-arrival scratch between requests.
var batchPool = sync.Pool{New: func() any {
	b := make([]job.Job, 0, ingestBatch)
	return &b
}}

// handleArrivals consumes a strict NDJSON stream (one job.Job per
// line) and queues the jobs on the session in batches. The response
// reports how many arrivals were accepted (queued); a refused arrival
// or malformed line stops the stream there. The request body is read
// no faster than the bounded queue admits — a slow policy or a full
// backlog stalls the read, and TCP flow control carries that
// backpressure to the client.
func handleArrivals(h *Host, w http.ResponseWriter, r *http.Request) {
	s, err := h.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if prod := r.Header.Get("X-Producer-Id"); prod != "" {
		handleStamped(s, w, r, prod)
		return
	}
	dec := job.GetDecoder(r.Body)
	defer job.PutDecoder(dec)
	bp := batchPool.Get().(*[]job.Job)
	batch := (*bp)[:0]
	defer func() {
		*bp = batch[:0]
		batchPool.Put(bp)
	}()

	accepted := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := s.SubmitBatch(r.Context(), batch)
		accepted += n
		batch = batch[:0]
		return err
	}
	for {
		batch = batch[:len(batch)+1]
		err := dec.Next(&batch[len(batch)-1])
		if err != nil {
			batch = batch[:len(batch)-1]
			if err == io.EOF {
				break
			}
			// Queue the lines that preceded the malformed one, then
			// report it; a submit failure takes precedence (it carries
			// the session's state, e.g. closing).
			if serr := flush(); serr != nil {
				writeArrivals(w, statusOf(serr), s.ID, accepted, false, serr.Error())
				return
			}
			writeArrivals(w, http.StatusBadRequest, s.ID, accepted, false,
				fmt.Sprintf("decoding arrival %d: %v", accepted, err))
			return
		}
		if len(batch) == cap(batch) {
			if serr := flush(); serr != nil {
				writeArrivals(w, statusOf(serr), s.ID, accepted, false, serr.Error())
				return
			}
		}
	}
	if serr := flush(); serr != nil {
		writeArrivals(w, statusOf(serr), s.ID, accepted, false, serr.Error())
		return
	}
	// Durable ack: on a WAL-backed host the 200 means "on disk", so
	// park until the group fsync covers everything this stream queued.
	if accepted > 0 {
		if derr := s.waitDurable(r.Context()); derr != nil {
			writeArrivals(w, http.StatusInternalServerError, s.ID, accepted, false,
				fmt.Sprintf("durability not confirmed: %v", derr))
			return
		}
	}
	writeArrivals(w, http.StatusOK, s.ID, accepted, false, "")
}

// handleStamped consumes one producer-stamped NDJSON batch
// (X-Producer-Id / X-Producer-Seq). Unlike the streaming path, the
// whole body is decoded before anything is submitted: the batch is
// the unit of idempotency, so a truncated or malformed body must
// consume no sequence number and apply nothing — the client then
// retries the entire batch under the same (producer, seq) and the
// dedup window guarantees at-most-once application.
func handleStamped(s *Session, w http.ResponseWriter, r *http.Request, prod string) {
	seq, err := strconv.ParseUint(r.Header.Get("X-Producer-Seq"), 10, 64)
	if err != nil {
		writeArrivals(w, http.StatusBadRequest, s.ID, 0, false,
			fmt.Sprintf("bad X-Producer-Seq: %v", err))
		return
	}
	dec := job.GetDecoder(r.Body)
	defer job.PutDecoder(dec)
	bp := batchPool.Get().(*[]job.Job)
	batch := (*bp)[:0]
	defer func() {
		*bp = batch[:0]
		batchPool.Put(bp)
	}()
	maxJobs := s.host.cfg.MaxBacklog
	for {
		if len(batch) > maxJobs {
			// Larger than the ring can ever admit: refuse before reading
			// further (SubmitStamped would refuse it anyway; stopping here
			// bounds the handler's buffering).
			writeArrivals(w, http.StatusRequestEntityTooLarge, s.ID, 0, false,
				fmt.Sprintf("stamped batch exceeds backlog bound %d", maxJobs))
			return
		}
		batch = append(batch, job.Job{})
		if err := dec.Next(&batch[len(batch)-1]); err != nil {
			batch = batch[:len(batch)-1]
			if err == io.EOF {
				break
			}
			writeArrivals(w, http.StatusBadRequest, s.ID, 0, false,
				fmt.Sprintf("decoding arrival %d: %v", len(batch), err))
			return
		}
	}
	accepted, pos, dup, err := s.SubmitStamped(r.Context(), prod, seq, batch)
	if err != nil {
		writeArrivals(w, statusOf(err), s.ID, 0, false, err.Error())
		return
	}
	// Durable ack: a duplicate waits on the original's position, so a
	// retry of a batch whose first ack was cut off still means "on
	// disk" when the 200 lands.
	if pos > 0 {
		if derr := s.waitDurablePos(r.Context(), pos); derr != nil {
			writeArrivals(w, http.StatusInternalServerError, s.ID, accepted, dup,
				fmt.Sprintf("durability not confirmed: %v", derr))
			return
		}
	}
	writeArrivals(w, http.StatusOK, s.ID, accepted, dup, "")
}

func handleSnapshot(h *Host, w http.ResponseWriter, r *http.Request) {
	s, err := h.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	snap := s.Snapshot()
	bp := respPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"id":`...)
	b = appendJSONString(b, snap.ID)
	b = append(b, `,"policy":`...)
	b = appendJSONString(b, snap.Policy)
	b = append(b, `,"backlog":`...)
	b = strconv.AppendInt(b, int64(snap.Backlog), 10)
	b = append(b, `,"at":`...)
	b = job.AppendFloat(b, snap.At)
	b = append(b, `,"arrivals":`...)
	b = strconv.AppendInt(b, int64(snap.Arrivals), 10)
	b = append(b, `,"pending":`...)
	b = strconv.AppendInt(b, int64(snap.Pending), 10)
	b = append(b, `,"pendingWork":`...)
	b = job.AppendFloat(b, snap.PendingWork)
	b = append(b, `,"speed":`...)
	b = job.AppendFloat(b, snap.Speed)
	if snap.Buffered {
		b = append(b, `,"buffered":true`...)
	}
	b = append(b, '}', '\n')
	*bp = b
	writeRaw(w, http.StatusOK, bp)
}

// closeResponse carries a closed session's final verified result.
type closeResponse struct {
	ID     string         `json:"id"`
	Result *engine.Result `json:"result"`
}

func handleClose(h *Host, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := h.Close(id)
	if err != nil {
		// Idempotent close: a retried DELETE whose first response was
		// lost finds the session gone — ack it again from the host's
		// closed-result cache instead of 404ing the retry.
		if errors.Is(err, ErrNotFound) {
			if cached, ok := h.ClosedResult(id); ok {
				writeJSON(w, http.StatusOK, closeResponse{ID: id, Result: cached})
				return
			}
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, closeResponse{ID: id, Result: res})
}

// registryEntry is one row of GET /v1/registry.
type registryEntry struct {
	Name    string   `json:"name"`
	Summary string   `json:"summary"`
	MRange  string   `json:"mRange"`
	Model   string   `json:"model"`
	Mode    string   `json:"mode"`
	Params  []string `json:"params,omitempty"`
}

func handleRegistry(h *Host, w http.ResponseWriter) {
	var out []registryEntry
	for _, reg := range h.Registry().All() {
		out = append(out, registryEntry{
			Name: reg.Name, Summary: reg.Summary,
			MRange: reg.Caps.MRange(), Model: reg.Caps.Model(), Mode: reg.Caps.Mode(),
			Params: reg.Params,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"policies": out})
}
