package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/workload"
)

// api wraps an httptest server over a fresh host for walkthroughs.
type api struct {
	t   *testing.T
	srv *httptest.Server
}

func newAPI(t *testing.T, cfg Config) (*api, *Host) {
	t.Helper()
	h := NewHost(cfg)
	srv := httptest.NewServer(NewHandler(h))
	t.Cleanup(srv.Close)
	return &api{t: t, srv: srv}, h
}

// do issues a request and decodes the JSON response into out (unless
// out is nil), asserting the expected status.
func (a *api) do(method, path string, body io.Reader, wantStatus int, out any) {
	a.t.Helper()
	req, err := http.NewRequest(method, a.srv.URL+path, body)
	if err != nil {
		a.t.Fatal(err)
	}
	resp, err := a.srv.Client().Do(req)
	if err != nil {
		a.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		a.t.Fatalf("%s %s: status %d, want %d (body %s)", method, path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			a.t.Fatalf("%s %s: decoding %s: %v", method, path, raw, err)
		}
	}
}

// ndjson renders jobs as an NDJSON stream body.
func ndjson(t *testing.T, jobs []job.Job) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, j := range jobs {
		if err := enc.Encode(j); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

func TestHTTPWalkthrough(t *testing.T) {
	a, _ := newAPI(t, Config{})
	in := workload.Diurnal(workload.Config{N: 25, M: 1, Alpha: 2.2, Seed: 5, ValueScale: 2})
	norm := in.Clone()
	norm.Normalize()

	// The registry lists the built-in policies.
	var reg struct {
		Policies []registryEntry `json:"policies"`
	}
	a.do("GET", "/v1/registry", nil, http.StatusOK, &reg)
	names := map[string]bool{}
	for _, p := range reg.Policies {
		names[p.Name] = true
	}
	if !names["pd"] || !names["oa"] || !names["yds"] {
		t.Fatalf("registry misses built-ins: %+v", reg.Policies)
	}

	// Create a session.
	var created createResponse
	a.do("POST", "/v1/sessions",
		strings.NewReader(`{"id":"acme","spec":{"name":"oa","m":1,"alpha":2.2}}`),
		http.StatusCreated, &created)
	if created.ID != "acme" || created.Policy != "oa" {
		t.Fatalf("created = %+v", created)
	}
	// A byte-identical duplicate create is a retried request: acked 200
	// (idempotent), not conflicted.
	var recreated createResponse
	a.do("POST", "/v1/sessions",
		strings.NewReader(`{"id":"acme","spec":{"name":"oa","m":1,"alpha":2.2}}`),
		http.StatusOK, &recreated)
	if recreated.ID != "acme" || recreated.Policy != "oa" {
		t.Fatalf("recreated = %+v", recreated)
	}
	// A duplicate tenant id with a different spec conflicts.
	a.do("POST", "/v1/sessions",
		strings.NewReader(`{"id":"acme","spec":{"name":"oa","m":1,"alpha":3.3}}`),
		http.StatusConflict, nil)

	// Stream all arrivals as NDJSON.
	var arr arrivalsResponse
	a.do("POST", "/v1/sessions/acme/arrivals", ndjson(t, norm.Jobs), http.StatusOK, &arr)
	if arr.Accepted != len(norm.Jobs) || arr.Error != "" {
		t.Fatalf("arrivals = %+v", arr)
	}

	// Snapshot shows the live plan once the backlog drains.
	deadline := time.Now().Add(5 * time.Second)
	var snap SessionSnapshot
	for {
		a.do("GET", "/v1/sessions/acme/snapshot", nil, http.StatusOK, &snap)
		if snap.Arrivals == len(norm.Jobs) && snap.Backlog == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
	if snap.ID != "acme" || snap.Policy != "oa" || snap.Buffered {
		t.Fatalf("snapshot = %+v", snap)
	}

	// The session list shows the tenant.
	var list struct {
		Sessions []string `json:"sessions"`
	}
	a.do("GET", "/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 1 || list.Sessions[0] != "acme" {
		t.Fatalf("sessions = %v", list.Sessions)
	}

	// Metrics render in Prometheus text format.
	resp, err := http.Get(a.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"schedd_sessions_live 1",
		fmt.Sprintf("schedd_arrivals_total %d", len(norm.Jobs)),
		"schedd_arrival_latency_seconds_bucket",
		"schedd_arrival_latency_seconds_p99",
	} {
		if !strings.Contains(string(metricsText), want) {
			t.Fatalf("metrics miss %q:\n%s", want, metricsText)
		}
	}

	// Close: the final Result is verified server-side and must match
	// batch replay byte for byte (timings masked).
	var closed closeResponse
	a.do("DELETE", "/v1/sessions/acme", nil, http.StatusOK, &closed)
	if closed.Result == nil || closed.Result.Schedule == nil {
		t.Fatalf("closed = %+v", closed)
	}
	want, err := engine.ReplayAllSpec([]*job.Instance{in}, engine.Spec{Name: "oa", M: 1, Alpha: 2.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(maskTimes(want[0]))
	bj, _ := json.Marshal(maskTimes(closed.Result))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("HTTP-served result differs from batch replay:\n%s\nvs\n%s", aj, bj)
	}

	// Gone afterwards — but a retried DELETE is idempotent: the cached
	// final result is re-served byte-identically instead of a 404.
	a.do("GET", "/v1/sessions/acme/snapshot", nil, http.StatusNotFound, nil)
	var reclosed closeResponse
	a.do("DELETE", "/v1/sessions/acme", nil, http.StatusOK, &reclosed)
	cj, _ := json.Marshal(maskTimes(reclosed.Result))
	if !bytes.Equal(bj, cj) {
		t.Fatalf("re-closed result differs from original:\n%s\nvs\n%s", bj, cj)
	}
	// A tenant that never existed is still a 404.
	a.do("DELETE", "/v1/sessions/nope", nil, http.StatusNotFound, nil)
}

func TestHTTPErrorMapping(t *testing.T) {
	a, h := newAPI(t, Config{MaxSessions: 1})

	// Malformed create bodies.
	a.do("POST", "/v1/sessions", strings.NewReader(`{`), http.StatusBadRequest, nil)
	a.do("POST", "/v1/sessions", strings.NewReader(`{"bogus":1}`), http.StatusBadRequest, nil)
	// Unknown policy and incompatible spec.
	a.do("POST", "/v1/sessions", strings.NewReader(`{"spec":{"name":"nope","m":1,"alpha":2}}`), http.StatusBadRequest, nil)
	a.do("POST", "/v1/sessions", strings.NewReader(`{"spec":{"name":"oa","m":4,"alpha":2}}`), http.StatusBadRequest, nil)

	// Admission: limit 1.
	a.do("POST", "/v1/sessions", strings.NewReader(`{"id":"only","spec":{"name":"oa","m":1,"alpha":2}}`), http.StatusCreated, nil)
	a.do("POST", "/v1/sessions", strings.NewReader(`{"spec":{"name":"oa","m":1,"alpha":2}}`), http.StatusTooManyRequests, nil)
	// Duplicate would also be refused by admission here; free the slot
	// and retake it to exercise the conflict path.
	a.do("DELETE", "/v1/sessions/only", nil, http.StatusOK, nil)
	a.do("POST", "/v1/sessions", strings.NewReader(`{"id":"only","spec":{"name":"oa","m":1,"alpha":2}}`), http.StatusCreated, nil)

	// Unknown session.
	a.do("POST", "/v1/sessions/ghost/arrivals", strings.NewReader(""), http.StatusNotFound, nil)
	a.do("GET", "/v1/sessions/ghost/snapshot", nil, http.StatusNotFound, nil)
	a.do("DELETE", "/v1/sessions/ghost", nil, http.StatusNotFound, nil)

	// A malformed arrival line reports the accepted count so far.
	var arr arrivalsResponse
	a.do("POST", "/v1/sessions/only/arrivals",
		strings.NewReader(`{"id":0,"release":0,"deadline":1,"work":1,"value":1}`+"\n"+`{broken`),
		http.StatusBadRequest, &arr)
	if arr.Accepted != 1 || arr.Error == "" {
		t.Fatalf("arrivals = %+v", arr)
	}

	// Draining refuses creates with 503.
	if _, err := h.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	a.do("POST", "/v1/sessions", strings.NewReader(`{"spec":{"name":"oa","m":1,"alpha":2}}`), http.StatusServiceUnavailable, nil)
}

func TestHTTPArrivalErrorSurfaces(t *testing.T) {
	a, _ := newAPI(t, Config{})
	a.do("POST", "/v1/sessions", strings.NewReader(`{"id":"x","spec":{"name":"oa","m":1,"alpha":2}}`), http.StatusCreated, nil)
	// Second arrival violates release order; the applier records it
	// and either this request or a later one observes the failure.
	a.do("POST", "/v1/sessions/x/arrivals",
		ndjson(t, []job.Job{
			{ID: 0, Release: 5, Deadline: 6, Work: 1, Value: 1},
			{ID: 1, Release: 1, Deadline: 2, Work: 1, Value: 1},
		}), http.StatusOK, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		req, _ := http.NewRequest("POST", a.srv.URL+"/v1/sessions/x/arrivals",
			ndjson(t, []job.Job{{ID: 99, Release: 9, Deadline: 10, Work: 1, Value: 1}}))
		resp, err := a.srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var arr arrivalsResponse
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		_ = json.Unmarshal(raw, &arr)
		if resp.StatusCode == http.StatusBadRequest && strings.Contains(arr.Error, "release order") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("arrival error never surfaced (last: %d %s)", resp.StatusCode, raw)
		}
		time.Sleep(time.Millisecond)
	}
	// The close reports the poisoned session rather than a result.
	req, _ := http.NewRequest("DELETE", a.srv.URL+"/v1/sessions/x", nil)
	resp, err := a.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "arrival refused") {
		t.Fatalf("close of poisoned session: %d %s", resp.StatusCode, raw)
	}
}
