package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
)

// mkJob builds a valid arrival with the given id and release.
func mkJob(id int, rel float64) job.Job {
	return job.Job{ID: id, Release: rel, Deadline: rel + 10, Work: 0.1, Value: 1}
}

// ndjsonLine renders one arrival line.
func ndjsonLine(j job.Job) []byte {
	return append(job.AppendJSON(nil, j), '\n')
}

// TestIngestBackpressureStallsBodyRead pins the no-unbounded-buffering
// guarantee of the batched path: with the policy stuck and the
// session queue full, the arrivals handler must stop reading the
// request body after its bounded read-ahead (decoder window plus one
// decode batch) — it must not slurp the stream into memory. Once the
// policy is released, every line is applied.
func TestIngestBackpressureStallsBodyRead(t *testing.T) {
	reg, gate := blockingRegistry(t)
	h := NewHost(Config{MaxBacklog: 8, Registry: reg})
	if _, err := h.Create("slow", engine.Spec{Name: "blocking", M: 1, Alpha: 2}); err != nil {
		t.Fatal(err)
	}

	const total = 5000
	pr, pw := io.Pipe()
	var written atomic.Int64
	go func() {
		for i := 0; i < total; i++ {
			line := ndjsonLine(mkJob(i, float64(i)))
			if _, err := pw.Write(line); err != nil {
				return
			}
			written.Add(int64(len(line)))
		}
		pw.Close()
	}()

	req := httptest.NewRequest("POST", "/v1/sessions/slow/arrivals", pr)
	rec := httptest.NewRecorder()
	doneServing := make(chan struct{})
	go func() {
		NewHandler(h).ServeHTTP(rec, req)
		close(doneServing)
	}()

	// Wait for the writer to stall: the written count must go quiet.
	deadline := time.Now().Add(10 * time.Second)
	var last int64 = -1
	for {
		cur := written.Load()
		if cur == last && cur > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("body writer never stalled against the blocked policy")
		}
		last = cur
		time.Sleep(50 * time.Millisecond)
	}
	// Bounded read-ahead: the decoder window (16 KiB at a time) plus
	// one decode batch of lines, with generous slack. The old bound to
	// beat is "everything": ~350 KiB for this stream.
	if stalled := written.Load(); stalled > 96<<10 {
		t.Fatalf("handler buffered %d bytes of a stalled stream; want bounded read-ahead", stalled)
	}
	select {
	case <-doneServing:
		t.Fatalf("handler returned while the stream was stalled: %s", rec.Body.String())
	default:
	}

	close(gate) // release the policy: everything must drain through
	<-doneServing
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), fmt.Sprintf(`"accepted":%d`, total)) {
		t.Fatalf("after release: %d %s", rec.Code, rec.Body.String())
	}
	res, err := h.Close("slow")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != total {
		t.Fatalf("policy saw %d arrivals, want %d", res.Rejected, total)
	}
}

// TestDrainAppliesEveryQueuedBatch pins graceful drain against the
// batched applier: arrivals queued (but unapplied) when the drain
// begins must all reach the policy before the final result is
// flushed.
func TestDrainAppliesEveryQueuedBatch(t *testing.T) {
	reg, gate := blockingRegistry(t)
	h := NewHost(Config{MaxBacklog: 64, Registry: reg})
	s, err := h.Create("drainy", engine.Spec{Name: "blocking", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	// First job parks the applier; the rest sit queued in one batch.
	const n = 40
	batch := make([]job.Job, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, mkJob(i, float64(i)))
	}
	if k, err := s.SubmitBatch(context.Background(), batch); k != n || err != nil {
		t.Fatalf("SubmitBatch = %d, %v", k, err)
	}

	drained := make(chan []DrainResult, 1)
	drainErr := make(chan error, 1)
	go func() {
		res, err := h.Drain(context.Background())
		drained <- res
		drainErr <- err
	}()
	// The drain must wait on the stuck applier, not abandon it.
	select {
	case <-drained:
		t.Fatal("drain finished while the policy was still stuck")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	res := <-drained
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(res) != 1 || res[0].Result == nil {
		t.Fatalf("drain results: %+v", res)
	}
	if res[0].Result.Rejected != n {
		t.Fatalf("drained result saw %d arrivals, want %d (queued batch dropped?)", res[0].Result.Rejected, n)
	}
}

// TestConcurrentSubmitCloseRace hammers SubmitBatch from several
// goroutines while the session is closed mid-stream — the race-
// detector e2e for the ring queue, the closeCh release and the
// batch-draining applier. Every submitter must return promptly with
// nil or ErrClosing, and the close must produce a verified result
// covering everything that was queued.
func TestConcurrentSubmitCloseRace(t *testing.T) {
	h := NewHost(Config{MaxBacklog: 16})
	_, err := h.Create("racy", engine.Spec{Name: "oa", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := h.Get("racy")

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Same release everywhere keeps arbitrary interleavings
				// release-ordered; IDs are disjoint per worker.
				batch := []job.Job{
					mkJob(w*1_000_000+2*i, 0),
					mkJob(w*1_000_000+2*i+1, 0),
				}
				if _, err := s.SubmitBatch(context.Background(), batch); err != nil {
					if !errors.Is(err, ErrClosing) {
						t.Errorf("worker %d: %v", w, err)
					}
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	res, err := h.Close("racy")
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("close during concurrent submits: %v", err)
	}
	if res.Schedule == nil {
		t.Fatal("close returned no schedule")
	}
	if h.Metrics().SessionsLive() != 0 {
		t.Fatalf("sessions live = %d", h.Metrics().SessionsLive())
	}
}

// TestIngestBatchedMatchesUnbatched pins the serving differential at
// the host layer: the same stream through the batch-draining applier
// and through a MaxApplyBatch=1 (per-job) applier must close to the
// same schedule bytes.
func TestIngestBatchedMatchesUnbatched(t *testing.T) {
	stream := &bytes.Buffer{}
	for i := 0; i < 500; i++ {
		stream.Write(ndjsonLine(mkJob(i, float64(i/7))))
	}
	run := func(cfg Config) *engine.Result {
		t.Helper()
		h := NewHost(cfg)
		srv := httptest.NewServer(NewHandler(h))
		defer srv.Close()
		a := &api{t: t, srv: srv}
		a.do("POST", "/v1/sessions", strings.NewReader(`{"id":"x","spec":{"name":"oa","m":1,"alpha":2}}`), 201, nil)
		var arr arrivalsResponse
		a.do("POST", "/v1/sessions/x/arrivals", bytes.NewReader(stream.Bytes()), 200, &arr)
		if arr.Accepted != 500 {
			t.Fatalf("accepted = %d", arr.Accepted)
		}
		var closed closeResponse
		a.do("DELETE", "/v1/sessions/x", nil, 200, &closed)
		return closed.Result
	}
	batched := run(Config{})
	unbatched := run(Config{MaxApplyBatch: 1})
	aj, _ := json.MarshalIndent(maskTimes(batched), "", " ")
	bj, _ := json.MarshalIndent(maskTimes(unbatched), "", " ")
	if !bytes.Equal(aj, bj) {
		t.Fatalf("batched and per-job ingest disagree:\n%s\nvs\n%s", aj, bj)
	}
}

// TestAppendJSONStringMatchesEncodingJSON pins the hot-path string
// escaping byte-identical to the cold path's encoding/json — quotes,
// backslashes, control characters, HTML-sensitive runes, the JS line
// separators U+2028/U+2029, and invalid UTF-8 replacement.
func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	for _, s := range []string{
		"", "plain", `quote"back\`, "tab\tnl\ncr\r", "<html>&x", "bell\x01\x1f",
		"line\u2028sep\u2029end", "héllo🙂", "bad\xffutf8",
	} {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(want, got) {
			t.Fatalf("escaping divergence for %q:\nencoding/json %s\nhand-rolled   %s", s, want, got)
		}
	}
}
