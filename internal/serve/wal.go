// The host's durability face: what the serve layer writes into the
// WAL's opaque payloads and how it rebuilds sessions from them.
//
// The WAL stores bytes; this file owns their meaning. A session-open
// record is {"id","spec"} (rendered with the engine's hand encoders,
// byte-identical to encoding/json). A checkpoint's meta is
// {"id","spec","snapshot"} where snapshot is the engine state at the
// cut — not replayed at recovery, but byte-compared against the
// snapshot of the rebuilt session, so a divergent replay refuses to
// serve instead of silently rewriting history.
//
// Recovery ordering: Host.Recover must run after NewHost and before
// any traffic. Each surviving tenant's checkpoint history and log
// tail are streamed through engine.Live.ApplyBatch exactly as the
// applier fed them — same batch boundaries, same refusals — so the
// rebuilt session is byte-identical to the uninterrupted run (modulo
// wall-clock timings), which the crash e2e pins.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/promtext"
	"repro/internal/wal"
)

// walOpen mirrors the session-open payload for decoding.
type walOpen struct {
	ID   string      `json:"id"`
	Spec engine.Spec `json:"spec"`
}

// walCkptMeta mirrors a checkpoint's meta payload for decoding.
// Snapshot stays raw: it is compared byte-for-byte, never re-encoded.
type walCkptMeta struct {
	ID        string          `json:"id"`
	Spec      engine.Spec     `json:"spec"`
	Snapshot  json.RawMessage `json:"snapshot"`
	Producers []ckptProducer  `json:"producers,omitempty"`
}

// ckptProducer is one producer's dedup-window entry in a checkpoint's
// meta: compaction folds stamped records into plain history batches,
// so the window they carried must survive in the meta or a replayed
// duplicate would re-apply after a post-checkpoint crash.
type ckptProducer struct {
	ID       string `json:"id"`
	Seq      uint64 `json:"seq"`
	Accepted int    `json:"accepted"`
}

// appendOpenJSON renders the session-open payload.
func appendOpenJSON(dst []byte, id string, spec engine.Spec) []byte {
	dst = append(dst, `{"id":`...)
	dst = job.AppendString(dst, id)
	dst = append(dst, `,"spec":`...)
	dst = spec.AppendJSON(dst)
	return append(dst, '}')
}

// appendCkptMeta renders a checkpoint's meta payload. Producer windows
// are sorted by id so the meta bytes are deterministic; an empty
// window keeps the pre-dedup byte shape.
func appendCkptMeta(dst []byte, id string, spec engine.Spec, snap engine.Snapshot, wins map[string]walWindow) []byte {
	dst = append(dst, `{"id":`...)
	dst = job.AppendString(dst, id)
	dst = append(dst, `,"spec":`...)
	dst = spec.AppendJSON(dst)
	dst = append(dst, `,"snapshot":`...)
	dst = snap.AppendJSON(dst)
	if len(wins) > 0 {
		ids := make([]string, 0, len(wins))
		for p := range wins {
			ids = append(ids, p)
		}
		sort.Strings(ids)
		dst = append(dst, `,"producers":[`...)
		for i, p := range ids {
			if i > 0 {
				dst = append(dst, ',')
			}
			w := wins[p]
			dst = append(dst, `{"id":`...)
			dst = job.AppendString(dst, p)
			dst = append(dst, `,"seq":`...)
			dst = strconv.AppendUint(dst, w.Seq, 10)
			dst = append(dst, `,"accepted":`...)
			dst = strconv.AppendInt(dst, int64(w.Accepted), 10)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// maybeCheckpoint compacts the session's log when enough arrivals
// accumulated since the last cut. Called by the applier after a clean
// batch, so "logged" and "accepted" agree; any refusal anywhere in
// the stream disables checkpointing for good (the full log must stay
// replayable into the exact error state). Runs on the applier
// goroutine — the checkpoint's file IO stalls this one tenant, never
// the host.
func (s *Session) maybeCheckpoint() {
	every := s.host.cfg.CheckpointEvery
	if s.wlog == nil || every <= 0 || s.wlog.SinceCheckpoint() < uint64(every) {
		return
	}
	if s.firstErr() != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// s.logged is applier-owned and maybeCheckpoint runs on the
	// applier, so the windows written here exactly cover the logged
	// history the checkpoint compacts — never a submitted batch still
	// in the ring, which a crash is allowed to forget.
	meta := appendCkptMeta(nil, s.ID, s.Spec, s.run.Snapshot(), s.logged)
	if err := s.wlog.Checkpoint(meta, s.run.History()); err != nil {
		s.recordErr(fmt.Errorf("checkpoint: %w", err))
	}
}

// waitDurable parks until every arrival the session's queue has
// admitted so far is covered by an fsync — the ack-after-durable gate
// the arrivals handler passes through before answering 200. The
// position is read after the caller's last submit, so it may include
// a concurrent producer's later arrivals: waiting for those too is
// merely conservative.
func (s *Session) waitDurable(ctx context.Context) error {
	if s.wlog == nil {
		return nil
	}
	return s.wlog.WaitDurable(ctx, s.base+s.queue.enqueued())
}

// waitDurablePos parks until the given absolute log position is
// durable — the stamped path's ack gate, where the position of the
// producer's batch is known exactly (a duplicate's position is the
// original's, already durable or about to be).
func (s *Session) waitDurablePos(ctx context.Context, pos uint64) error {
	if s.wlog == nil {
		return nil
	}
	return s.wlog.WaitDurable(ctx, pos)
}

// Recover rebuilds every session the WAL's data directory survives
// with, registering them on the host exactly as Create would. It must
// run before the host serves traffic and refuses (with an error) on
// any corruption short of a torn tail — the daemon exits rather than
// serve rewritten history.
func (h *Host) Recover() (wal.RecoveryStats, error) {
	if h.cfg.WAL == nil {
		return wal.RecoveryStats{}, nil
	}
	return h.cfg.WAL.Recover(h.recoverOne)
}

// Adopt attaches one tenant whose log was just imported into the
// host's WAL store (wal.Store.Import) — the target half of a live
// migration: the tenant's checkpoint and tail replay through the same
// integrity-gated path as boot-time recovery, and the session goes
// live on this host exactly as if it had always run here.
func (h *Host) Adopt(id string) (*Session, error) {
	if h.cfg.WAL == nil {
		return nil, fmt.Errorf("serve: adopting %q: host has no WAL", id)
	}
	if err := h.cfg.WAL.RecoverTenant(id, h.recoverOne); err != nil {
		return nil, err
	}
	return h.Get(id)
}

// recoverOne rebuilds one surviving tenant from its Recovered handle —
// the shared body of boot-time Recover and per-tenant Adopt.
func (h *Host) recoverOne(r *wal.Recovered) error {
	var id string
	var spec engine.Spec
	var wantSnap []byte
	wins := make(map[string]walWindow)
	if r.CkptMeta != nil {
		var m walCkptMeta
		if err := json.Unmarshal(r.CkptMeta, &m); err != nil {
			return fmt.Errorf("serve: recovering %q: checkpoint meta: %w", r.Tenant, err)
		}
		id, spec, wantSnap = m.ID, m.Spec, m.Snapshot
		// The dedup window at the cut: compaction folded the stamped
		// records into plain history batches, so the meta carries it.
		for _, p := range m.Producers {
			wins[p.ID] = walWindow{Seq: p.Seq, Accepted: p.Accepted}
		}
	} else {
		var m walOpen
		if err := json.Unmarshal(r.Open, &m); err != nil {
			return fmt.Errorf("serve: recovering %q: open record: %w", r.Tenant, err)
		}
		id, spec = m.ID, m.Spec
	}
	if id != r.Tenant {
		return fmt.Errorf("serve: recovering %q: log claims to belong to %q", r.Tenant, id)
	}
	run, err := h.reg.NewLive(spec)
	if err != nil {
		return fmt.Errorf("serve: recovering %q: %w", id, err)
	}
	// Replay with the recorded batch boundaries; a refused arrival
	// is replayed state (the uninterrupted run refused it too), not
	// a recovery failure.
	var firstErr error
	apply := func(js []job.Job) error {
		if _, err := run.ApplyBatch(js); err != nil && firstErr == nil {
			firstErr = err
		}
		return nil
	}
	if err := r.ReplayCheckpoint(apply); err != nil {
		return err
	}
	if wantSnap != nil {
		// Integrity gate: the session rebuilt from checkpointed
		// history must reproduce the exact snapshot stored at the
		// cut. Checkpoints only ever cover clean streams, so a
		// refusal here is corruption too.
		if firstErr != nil {
			return fmt.Errorf("serve: recovering %q: checkpointed history refused an arrival: %v", id, firstErr)
		}
		if got := run.Snapshot().AppendJSON(nil); !bytes.Equal(got, wantSnap) {
			return fmt.Errorf("serve: recovering %q: checkpoint integrity check failed: replayed snapshot %s != stored %s", id, got, wantSnap)
		}
	}
	if err := r.ReplayTail(func(js []job.Job, st wal.Stamp) error {
		if st.Producer != "" {
			// Tail stamps advance the window past the checkpoint's cut —
			// the same admission order the original run journaled.
			wins[st.Producer] = walWindow{Seq: st.Seq, Accepted: len(js)}
		}
		return apply(js)
	}); err != nil {
		return err
	}
	l, err := r.Resume()
	if err != nil {
		return err
	}
	if _, err := h.attach(id, spec, run, l, firstErr, wins); err != nil {
		// Leave the log closed, not registered: at boot the daemon exits
		// on this error; on an Adopt the tenant's files stay importable
		// for a retry instead of being pinned by a zombie open log.
		_ = l.Close()
		return fmt.Errorf("serve: recovering %q: %w", id, err)
	}
	return nil
}

// attach registers a recovered session: the same admission,
// registration and applier startup as Create, around a run and log
// that already exist. wins seeds both halves of the dedup window —
// everything replayed is durable, so every recovered producer's ack
// position is the already-durable base.
func (h *Host) attach(id string, spec engine.Spec, run *engine.Live, wlog *wal.Log, err0 error, wins map[string]walWindow) (*Session, error) {
	h.mu.Lock()
	if h.draining {
		h.mu.Unlock()
		return nil, ErrDraining
	}
	if h.live >= h.cfg.MaxSessions {
		h.mu.Unlock()
		h.metrics.admissionRefused()
		return nil, fmt.Errorf("%w (%d live)", ErrAdmission, h.cfg.MaxSessions)
	}
	h.live++
	h.creating.Add(1)
	h.mu.Unlock()
	defer h.creating.Done()

	stripe := stripeOf(id)
	base := wlog.Arrivals()
	producers := make(map[string]*producer, len(wins))
	logged := make(map[string]walWindow, len(wins))
	for p, w := range wins {
		producers[p] = &producer{seq: w.Seq, accepted: w.Accepted, pos: base}
		logged[p] = w
	}
	s := &Session{
		ID: id, Spec: spec, host: h,
		queue:     newArrq(h.cfg.MaxBacklog, h.backlog.Cell(stripe)),
		done:      make(chan struct{}),
		closeCh:   make(chan struct{}),
		stripe:    stripe,
		run:       run,
		wlog:      wlog,
		base:      base,
		err:       err0,
		producers: producers,
		logged:    logged,
	}
	sh := h.shardOf(id)
	sh.mu.Lock()
	if _, dup := sh.sessions[id]; dup {
		sh.mu.Unlock()
		h.mu.Lock()
		h.live--
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	sh.sessions[id] = s
	sh.mu.Unlock()
	go s.apply()
	h.metrics.sessionOpened()
	return s, nil
}

// WriteWalMetrics renders the WAL section of the /metrics scrape; a
// host without a WAL writes nothing.
func (h *Host) WriteWalMetrics(w io.Writer) error {
	store := h.cfg.WAL
	if store == nil {
		return nil
	}
	st := store.Stats()
	bp := scrapePool.Get().(*[]byte)
	b := (*bp)[:0]
	b = promtext.AppendUint(b, "schedd_wal_appends_total", "Batches appended to the write-ahead log.", "counter", st.Appends)
	b = promtext.AppendUint(b, "schedd_wal_appended_bytes_total", "Bytes appended to the write-ahead log.", "counter", st.AppendBytes)
	b = promtext.AppendUint(b, "schedd_wal_fsyncs_total", "Group-commit fsyncs issued.", "counter", st.Fsyncs)
	b = promtext.AppendUint(b, "schedd_wal_checkpoints_total", "Checkpoint/truncate compactions completed.", "counter", st.Checkpoints)
	b = promtext.AppendUint(b, "schedd_wal_recovered_sessions", "Sessions rebuilt by the last recovery pass.", "gauge", uint64(st.Recovery.Sessions))
	b = promtext.AppendUint(b, "schedd_wal_recovered_arrivals", "Arrivals replayed by the last recovery pass.", "gauge", st.Recovery.Arrivals)
	b = promtext.AppendUint(b, "schedd_wal_recovery_torn_bytes", "Unacked torn-tail bytes truncated by the last recovery pass.", "gauge", uint64(st.Recovery.TornBytes))
	b = promtext.AppendUint(b, "schedd_wal_recovery_swept_tenants", "Closed or aborted tenant logs swept by the last recovery pass.", "gauge", uint64(st.Recovery.Removed))
	b = promtext.AppendHistogram(b, "schedd_wal_fsync_seconds", "Group-commit fsync latency.", store.FsyncLatency())

	_, err := w.Write(b)
	*bp = b[:0]
	scrapePool.Put(bp)
	return err
}
