package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/workload"
)

// feed streams an instance's jobs into the session in release order.
func feed(t testing.TB, s *Session, in *job.Instance) {
	t.Helper()
	if err := workload.NewStream(in, 0).Play(context.Background(), func(j job.Job) error {
		return s.Submit(context.Background(), j)
	}); err != nil {
		t.Fatalf("feeding %s: %v", s.ID, err)
	}
}

// maskTimes zeroes the wall-clock fields so results compare stably.
func maskTimes(r *engine.Result) *engine.Result {
	cp := *r
	cp.MaxArrive, cp.TotalArrive, cp.PlanTime = 0, 0, 0
	return &cp
}

func TestHostServesAndMatchesReplay(t *testing.T) {
	h := NewHost(Config{})
	in := workload.Poisson(workload.Config{N: 30, M: 1, Alpha: 2.2, Seed: 21, ValueScale: 2})
	spec := engine.Spec{Name: "pd", M: 1, Alpha: in.Alpha}

	s, err := h.Create("tenant-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := h.Get("tenant-a"); err != nil || got != s {
		t.Fatalf("get: %v", err)
	}
	feed(t, s, in)
	res, err := h.Close("tenant-a")
	if err != nil {
		t.Fatal(err)
	}

	want, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(maskTimes(want[0]))
	bj, _ := json.Marshal(maskTimes(res))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("hosted session result differs from batch replay:\n%s\nvs\n%s", aj, bj)
	}
	if _, err := h.Get("tenant-a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("closed session still resolvable: %v", err)
	}
	if _, err := h.Close("tenant-a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double close: %v", err)
	}
	if h.Metrics().SessionsLive() != 0 {
		t.Fatal("live gauge not back to zero")
	}
	if h.Metrics().Arrivals() != 30 {
		t.Fatalf("arrivals counter = %d", h.Metrics().Arrivals())
	}
}

func TestHostAdmissionLimits(t *testing.T) {
	h := NewHost(Config{MaxSessions: 2})
	spec := engine.Spec{Name: "oa", M: 1, Alpha: 2}
	if _, err := h.Create("a", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create("b", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create("c", spec); !errors.Is(err, ErrAdmission) {
		t.Fatalf("third create: %v", err)
	}
	if _, err := h.Create("a", spec); !errors.Is(err, ErrAdmission) {
		// Still at the limit: admission fires before the duplicate check.
		t.Fatalf("duplicate at limit: %v", err)
	}
	if _, err := h.Close("a"); err != nil {
		t.Fatal(err)
	}
	// With a slot free, a duplicate id is refused as such.
	if _, err := h.Create("b", spec); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	// A bad spec must release its reserved slot, and so must the
	// refused duplicate: this create takes the last slot.
	if _, err := h.Create("e", engine.Spec{Name: "nope", M: 1, Alpha: 2}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := h.Create("d", spec); err != nil {
		t.Fatalf("slot leaked by refused creates: %v", err)
	}
}

func TestHostGeneratedIDsAndSharding(t *testing.T) {
	h := NewHost(Config{Shards: 3}) // rounds up to 4
	if len(h.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(h.shards))
	}
	spec := engine.Spec{Name: "avr", M: 1, Alpha: 2}
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		s, err := h.Create("", spec)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.ID] {
			t.Fatalf("generated id %q twice", s.ID)
		}
		seen[s.ID] = true
	}
	ids := h.SessionIDs()
	if len(ids) != 20 {
		t.Fatalf("SessionIDs = %d entries", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("SessionIDs not sorted")
		}
	}
	// Every session is reachable through its shard.
	for id := range seen {
		if _, err := h.Get(id); err != nil {
			t.Fatalf("get %q: %v", id, err)
		}
	}
}

func TestHostDrainFlushesAllResults(t *testing.T) {
	h := NewHost(Config{})
	specs := map[string]engine.Spec{
		"pd":  {Name: "pd", M: 2, Alpha: 2.2},
		"oa":  {Name: "oa", M: 1, Alpha: 2.2},
		"avr": {Name: "avr", M: 1, Alpha: 2.2},
	}
	const perPolicy = 3
	n := 0
	for name, spec := range specs {
		for k := 0; k < perPolicy; k++ {
			in := workload.Uniform(workload.Config{N: 12, M: spec.M, Alpha: spec.Alpha, Seed: int64(100*n + k), ValueScale: 3})
			s, err := h.Create(fmt.Sprintf("%s-%d", name, k), spec)
			if err != nil {
				t.Fatal(err)
			}
			feed(t, s, in)
			n++
		}
	}
	results, err := h.Drain(context.Background())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(results) != n {
		t.Fatalf("drained %d of %d sessions", len(results), n)
	}
	for i, dr := range results {
		if dr.Err != "" || dr.Result == nil {
			t.Fatalf("session %q: err=%q result=%v", dr.ID, dr.Err, dr.Result)
		}
		if dr.Result.Schedule == nil {
			t.Fatalf("session %q: no schedule", dr.ID)
		}
		if i > 0 && results[i-1].ID >= dr.ID {
			t.Fatal("drain results not sorted by id")
		}
	}
	// Draining host refuses new sessions; drain is idempotent.
	if _, err := h.Create("late", specs["oa"]); !errors.Is(err, ErrDraining) {
		t.Fatalf("create while draining: %v", err)
	}
	again, err := h.Drain(context.Background())
	if err != nil || len(again) != 0 {
		t.Fatalf("second drain: %v, %d results", err, len(again))
	}
	if h.Metrics().SessionsLive() != 0 {
		t.Fatal("live gauge nonzero after drain")
	}
}

// blockingPolicy parks in Arrive until released — the deterministic
// stand-in for a slow policy in backpressure and abandoned-drain tests.
type blockingPolicy struct {
	gate <-chan struct{}
	ids  []int
}

func (p *blockingPolicy) Name() string { return "blocking" }

func (p *blockingPolicy) Arrive(j job.Job) error {
	<-p.gate
	p.ids = append(p.ids, j.ID)
	return nil
}

// Close rejects everything it saw: a valid schedule with no segments.
func (p *blockingPolicy) Close() (*sched.Schedule, error) {
	return &sched.Schedule{M: 1, Rejected: p.ids}, nil
}

// blockingRegistry returns a registry hosting the blocking policy and
// the gate that releases it.
func blockingRegistry(t *testing.T) (*engine.Registry, chan struct{}) {
	t.Helper()
	reg := engine.NewRegistry()
	gate := make(chan struct{})
	if err := reg.Register(engine.Registration{
		Name:    "blocking",
		Summary: "test policy that blocks in Arrive",
		Caps:    engine.Caps{MinM: 1, Profit: true},
		Build:   func(engine.Spec) (engine.Policy, error) { return &blockingPolicy{gate: gate}, nil },
	}); err != nil {
		t.Fatal(err)
	}
	return reg, gate
}

func TestSessionBackpressureBlocksAndHonoursContext(t *testing.T) {
	reg, gate := blockingRegistry(t)
	// MaxApplyBatch 1 pins the applier to one job per wakeup so the
	// backlog settles at a deterministic level; the batched drain has
	// its own tests below.
	h := NewHost(Config{MaxBacklog: 2, Registry: reg, MaxApplyBatch: 1})
	s, err := h.Create("slow", engine.Spec{Name: "blocking", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int) job.Job {
		return job.Job{ID: id, Release: float64(id), Deadline: float64(id) + 1, Work: 1, Value: 1}
	}
	// Arrival 0 parks the applier in Arrive; 1 and 2 fill the queue.
	for i := 0; i < 3; i++ {
		if err := s.Submit(context.Background(), mk(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// The applier dequeues arrival 0 asynchronously; wait for the
	// backlog to settle at the queue capacity.
	for deadline := time.Now().Add(5 * time.Second); s.Backlog() != 2; {
		if time.Now().After(deadline) {
			t.Fatalf("backlog = %d, want 2", s.Backlog())
		}
		time.Sleep(time.Millisecond)
	}
	// The queue is full: the next submit must block until its ctx dies.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Submit(ctx, mk(3)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit into full queue: %v", err)
	}
	// Release the policy: everything drains and the close verifies.
	close(gate)
	res, err := h.Close("slow")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 3 {
		t.Fatalf("rejected = %d, want 3", res.Rejected)
	}
	// Submitting to a closed session fails fast.
	if err := s.Submit(context.Background(), mk(9)); !errors.Is(err, ErrClosing) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestDrainAbandonsStuckSession(t *testing.T) {
	reg, gate := blockingRegistry(t)
	h := NewHost(Config{Registry: reg, MaxBacklog: 1})
	s, err := h.Create("stuck", engine.Spec{Name: "blocking", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int) job.Job {
		return job.Job{ID: id, Release: float64(id), Deadline: float64(id) + 1, Work: 1, Value: 1}
	}
	// Arrival 0 parks the applier; arrival 1 fills the 1-slot queue.
	if err := s.Submit(context.Background(), mk(0)); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); s.Backlog() != 0; {
		if time.Now().After(deadline) {
			t.Fatal("applier never picked arrival 0")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Submit(context.Background(), mk(1)); err != nil {
		t.Fatal(err)
	}
	// A third submitter parks on the full queue (holding the session's
	// read lock) — the drain below must release it, not deadlock on it.
	parked := make(chan error, 1)
	go func() { parked <- s.Submit(context.Background(), mk(2)) }()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	results, err := h.Drain(ctx)
	if time.Since(start) > 5*time.Second {
		t.Fatal("drain hung on a stuck policy")
	}
	if err == nil {
		t.Fatal("drain of a stuck session must report an error")
	}
	if len(results) != 1 || results[0].Err == "" || !strings.Contains(results[0].Err, "abandoned") {
		t.Fatalf("drain results = %+v", results)
	}
	select {
	case perr := <-parked:
		if !errors.Is(perr, ErrClosing) {
			t.Fatalf("parked submitter got %v, want ErrClosing", perr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked submitter never released by the drain")
	}
	close(gate) // let the parked goroutine exit
}

func TestDrainCatchesRacingCreate(t *testing.T) {
	// Creates that slip past the draining check concurrently with the
	// drain must still be drained (closed and reported), not orphaned.
	h := NewHost(Config{})
	spec := engine.Spec{Name: "oa", M: 1, Alpha: 2}
	stop := make(chan struct{})
	created := make(chan string, 4096)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				close(created)
				return
			default:
			}
			s, err := h.Create(fmt.Sprintf("racer-%d", i), spec)
			if err != nil {
				continue
			}
			created <- s.ID
		}
	}()
	time.Sleep(5 * time.Millisecond)
	results, err := h.Drain(context.Background())
	close(stop)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	drained := map[string]bool{}
	for _, dr := range results {
		if dr.Result == nil {
			t.Fatalf("session %q drained without result: %q", dr.ID, dr.Err)
		}
		drained[dr.ID] = true
	}
	for id := range created {
		if !drained[id] {
			t.Fatalf("session %q was created but never drained", id)
		}
	}
	if ids := h.SessionIDs(); len(ids) != 0 {
		t.Fatalf("sessions survived drain: %v", ids)
	}
}

func TestSessionArrivalErrorFailsFastAndSurfacesAtClose(t *testing.T) {
	h := NewHost(Config{})
	s, err := h.Create("bad", engine.Spec{Name: "oa", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), job.Job{ID: 0, Release: 5, Deadline: 6, Work: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	// Out of release order: the applier refuses it asynchronously.
	if err := s.Submit(context.Background(), job.Job{ID: 1, Release: 1, Deadline: 2, Work: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	// Eventually later submits fail fast with the recorded error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Submit(context.Background(), job.Job{ID: 2, Release: 9, Deadline: 10, Work: 1, Value: 1})
		if err != nil {
			if !strings.Contains(err.Error(), "release order") {
				t.Fatalf("unexpected submit error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("arrival error never surfaced to Submit")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := h.Close("bad"); err == nil || !strings.Contains(err.Error(), "arrival refused") {
		t.Fatalf("close must surface the arrival error, got %v", err)
	}
}

func TestSessionSnapshotObservesLivePlan(t *testing.T) {
	h := NewHost(Config{})
	s, err := h.Create("obs", engine.Spec{Name: "oa", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), job.Job{ID: 0, Release: 0, Deadline: 2, Work: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.Snapshot()
		if snap.Arrivals == 1 {
			if snap.ID != "obs" || snap.Policy != "oa" || snap.Pending != 1 {
				t.Fatalf("snapshot = %+v", snap)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("arrival never applied")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := h.Close("obs"); err != nil {
		t.Fatal(err)
	}
}
