package serve

import (
	"fmt"
	"io/fs"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/wal"
	"repro/internal/workload"
)

// benchWalOpt feeds with the daemon's default group-commit tick; the
// zero Options value would fsync every append (the deterministic test
// mode) and turn setup into 50 000 synchronous fsyncs.
var benchWalOpt = wal.Options{FsyncInterval: 5 * time.Millisecond}

// BenchmarkHostRecover measures crash recovery as a function of the
// checkpoint interval: one 50 000-arrival pd session is fed through a
// WAL-backed host, crashed, and then recovered repeatedly (each
// iteration is a full boot — open the store, replay, resume, tear
// down). A smaller interval trades steady-state compaction work for
// less history to replay at boot; every=0 is the no-checkpoint
// baseline, replaying the entire log. log-bytes reports what the
// crash left on disk — the table in EXPERIMENTS.md reads this and
// ns/op side by side.
//
// Not part of scripts/bench.sh: recovery is a boot-time cost, not a
// hot path, and the trajectory gate tracks hot paths.
func BenchmarkHostRecover(b *testing.B) {
	// The serve-ingest benchmark's workload shape: heavy-tailed jobs on
	// a compressed horizon, so oa's pending set stays small and the
	// per-arrival policy cost sub-µs. The arms then differ by how much
	// history the boot must parse and apply — the knob under test —
	// not by replan economics (a pending-heavy trace makes the policy
	// dominate recovery and live ingest alike).
	const n = 50_000
	spec := engine.Spec{Name: "oa", M: 1, Alpha: 2}
	in := workload.HeavyTail(workload.Config{
		N: n, M: 1, Alpha: 2, Seed: 5, Horizon: n / 10, ValueScale: math.Inf(1),
	})

	for _, every := range []int{0, 50_000, 10_000, 2_000} {
		b.Run(fmt.Sprintf("every=%d/n=%d", every, n), func(b *testing.B) {
			dir := b.TempDir()
			st, err := wal.Open(dir, benchWalOpt)
			if err != nil {
				b.Fatal(err)
			}
			h := NewHost(Config{WAL: st, CheckpointEvery: every})
			s, err := h.Create("bench", spec)
			if err != nil {
				b.Fatal(err)
			}
			feed(b, s, in)
			crash(b, h, st)

			var disk int64
			filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
				if err == nil && !d.IsDir() {
					if info, ierr := d.Info(); ierr == nil {
						disk += info.Size()
					}
				}
				return nil
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st2, err := wal.Open(dir, benchWalOpt)
				if err != nil {
					b.Fatal(err)
				}
				h2 := NewHost(Config{WAL: st2, CheckpointEvery: every})
				stats, err := h2.Recover()
				if err != nil {
					b.Fatal(err)
				}
				if stats.Sessions != 1 || stats.Arrivals != n {
					b.Fatalf("recovery stats %+v", stats)
				}
				b.StopTimer()
				crash(b, h2, st2)
				b.StartTimer()
			}
			// After the loop: ResetTimer discards extra metrics reported
			// before it.
			b.ReportMetric(float64(disk), "log-bytes")
			b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "arrivals/sec")
		})
	}
}
