package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/wal"
	"repro/internal/workload"
)

// TestHostMigrationDifferential is the host-level half of the cluster's
// migration discipline: a tenant fed half its stream on one host,
// detached, exported, imported and adopted by a second host, then fed
// the rest there, must finish with a verified Result byte-identical to
// the uninterrupted single-host run — the same differential the
// cluster e2e pins at the HTTP surface.
func TestHostMigrationDifferential(t *testing.T) {
	ctx := context.Background()
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.2}
	in := workload.Poisson(workload.Config{N: 120, M: 1, Alpha: 2.2, Seed: 19, ValueScale: 2})
	cut := len(in.Jobs) / 2

	srcStore, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srcStore.Close()
	src := NewHost(Config{WAL: srcStore, CheckpointEvery: 25})
	s, err := src.Create("mover", spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitBatch(ctx, in.Jobs[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := s.waitDurable(ctx); err != nil {
		t.Fatal(err)
	}

	// Source side: seal, export, drop.
	if err := src.Detach(ctx, "mover"); err != nil {
		t.Fatalf("detach: %v", err)
	}
	if _, err := src.Get("mover"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("detached tenant still resolvable: %v", err)
	}
	var stream bytes.Buffer
	if err := srcStore.Export("mover", &stream); err != nil {
		t.Fatalf("export: %v", err)
	}

	// Target side: import, adopt, keep serving.
	dstStore, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dstStore.Close()
	dst := NewHost(Config{WAL: dstStore, CheckpointEvery: 25})
	if err := dstStore.Import("mover", bytes.NewReader(stream.Bytes())); err != nil {
		t.Fatalf("import: %v", err)
	}
	s2, err := dst.Adopt("mover")
	if err != nil {
		t.Fatalf("adopt: %v", err)
	}

	// The target acked; the source's final step frees its disk, and the
	// id becomes creatable there again.
	if err := srcStore.Remove("mover"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := src.Create("mover", spec); err != nil {
		t.Fatalf("recreate after migration away: %v", err)
	}

	// Mid-stream state carried over byte-identical.
	ref, err := engine.NewLive(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ApplyBatch(in.Jobs[:cut]); err != nil {
		t.Fatal(err)
	}
	want := ref.Snapshot().AppendJSON(nil)
	if got := s2.Snapshot().Snapshot.AppendJSON(nil); !bytes.Equal(got, want) {
		t.Fatalf("adopted snapshot differs:\n got %s\nwant %s", got, want)
	}

	if _, err := s2.SubmitBatch(ctx, in.Jobs[cut:]); err != nil {
		t.Fatal(err)
	}
	res, err := dst.Close("mover")
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(maskTimes(wantRes[0]))
	bj, _ := json.Marshal(maskTimes(res))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("migrated result differs from uninterrupted replay:\n%s\nvs\n%s", aj, bj)
	}
}

// TestHostDetachRefusals pins Detach's guards: unknown tenants and
// WAL-less hosts refuse, and Adopt refuses a tenant that was never
// imported.
func TestHostDetachRefusals(t *testing.T) {
	ctx := context.Background()
	if err := NewHost(Config{}).Detach(ctx, "x"); err == nil {
		t.Fatal("detach on a WAL-less host succeeded")
	}
	st, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	h := NewHost(Config{WAL: st})
	if err := h.Detach(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("detach of unknown tenant: %v", err)
	}
	if _, err := h.Adopt("ghost"); err == nil {
		t.Fatal("adopt of a never-imported tenant succeeded")
	}
}
