// The per-session arrival queue behind the batched ingest path: a
// bounded ring of jobs with one consumer (the session's applier) and
// any number of producers (HTTP handlers). It replaces the old
// chan job.Job, which charged one channel send/receive — a futex-able
// synchronization point — to every arrival. The ring moves whole
// batches under one mutex acquisition on each side: producers push
// slices, the consumer drains everything queued per wakeup, and the
// buffered signal channels exist only to park and wake the edge cases
// (empty queue on the consumer side, full queue on the producer side)
// without spinning. A full queue admits nothing — that is the
// MaxBacklog backpressure bound the HTTP layer propagates by stalling
// the request body read.

package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/job"
	"repro/internal/stats"
)

// mark delimits one producer-stamped batch inside the ring: jobs
// [start, start+count) of the admission order belong to (producer,
// seq) and must drain — and hit the WAL — as one record, or a crash
// between its halves would split an idempotent batch and break
// exactly-once replay.
type mark struct {
	start    uint64 // enq position of the batch's first job
	count    int
	producer string
	seq      uint64
}

// stamp is drainTo's per-batch verdict: which producer the drained
// slice belongs to (empty for unstamped runs).
type stamp struct {
	producer string
	seq      uint64
}

// arrq is the bounded multi-producer single-consumer arrival ring.
type arrq struct {
	mu     sync.Mutex //schedlint:nocallout
	buf    []job.Job  // ring storage; buf[head:head+n) wrapping
	head   int
	n      int
	closed bool
	// enq counts every job ever admitted. The applier drains (and the
	// WAL logs) in admission order, so enq is also the log position of
	// the last admitted job — the durable-ack wait point.
	enq uint64
	// deq counts every job ever drained; marks are consumed when deq
	// crosses them.
	deq uint64
	// marks is the FIFO of stamped-batch boundaries; mhead indexes the
	// next live mark (compacted when the FIFO empties).
	marks []mark
	mhead int

	// qlen mirrors n for lock-free Backlog reads; gauge — the session's
	// cell of the host's sharded backlog counter — feeds the lock-free
	// /metrics backlog fast path without sharing a cache line with
	// other sessions' queues.
	qlen  atomic.Int64
	gauge *stats.Int64Cell

	// space and data are 1-buffered wake signals: a producer parks on
	// space when the ring is full, the consumer parks on data when it
	// is empty. All sends happen under mu (so close cannot race them);
	// data is closed by close() to release the consumer for good.
	space chan struct{}
	data  chan struct{}
}

func newArrq(capacity int, gauge *stats.Int64Cell) *arrq {
	return &arrq{
		buf:   make([]job.Job, capacity),
		gauge: gauge,
		space: make(chan struct{}, 1),
		data:  make(chan struct{}, 1),
	}
}

// push enqueues as much of js as fits, returning how many were taken
// and whether the queue is closed. A full queue takes nothing; the
// caller parks on space. When capacity remains after a successful
// push, the space signal is forwarded so a second parked producer is
// not stranded behind the first one's wakeup.
//
//schedlint:hotpath
func (q *arrq) push(js []job.Job) (int, bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, true
	}
	k := len(q.buf) - q.n
	if k > len(js) {
		k = len(js)
	}
	if k > 0 {
		at := q.head + q.n
		for i := 0; i < k; i++ {
			p := at + i
			if p >= len(q.buf) {
				p -= len(q.buf)
			}
			q.buf[p] = js[i]
		}
		q.n += k
		q.enq += uint64(k)
		q.qlen.Store(int64(q.n))
		select {
		case q.data <- struct{}{}:
		default:
		}
		if q.n < len(q.buf) {
			select {
			case q.space <- struct{}{}:
			default:
			}
		}
	}
	q.mu.Unlock()
	// The backlog gauge is a padded atomic cell; updating it outside
	// the queue lock keeps the critical section call-free (the gauge
	// may momentarily lag the queue, which a gauge is allowed to do).
	if k > 0 && q.gauge != nil {
		q.gauge.Add(int64(k))
	}
	return k, false
}

// pushAll enqueues the whole batch atomically as one stamped unit, or
// nothing: the applier must see every job of a stamped batch before it
// can log the batch as a single WAL record, so partial admission is
// refused (ok=false; the caller parks on space and retries). tooBig
// reports a batch that can never fit the ring. pos is the admission
// position of the batch's last job — the durable-ack point. Runs once
// per stamped batch, not per job, so it stays off the hot path.
func (q *arrq) pushAll(js []job.Job, producer string, seq uint64) (pos uint64, ok, closed, tooBig bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, false, true, false
	}
	if len(js) > len(q.buf) {
		q.mu.Unlock()
		return 0, false, false, true
	}
	if len(q.buf)-q.n < len(js) {
		q.mu.Unlock()
		return 0, false, false, false
	}
	at := q.head + q.n
	for i := range js {
		p := at + i
		if p >= len(q.buf) {
			p -= len(q.buf)
		}
		q.buf[p] = js[i]
	}
	q.marks = append(q.marks, mark{start: q.enq, count: len(js), producer: producer, seq: seq})
	q.n += len(js)
	q.enq += uint64(len(js))
	pos = q.enq
	q.qlen.Store(int64(q.n))
	select {
	case q.data <- struct{}{}:
	default:
	}
	if q.n < len(q.buf) {
		select {
		case q.space <- struct{}{}:
		default:
		}
	}
	q.mu.Unlock()
	if q.gauge != nil {
		q.gauge.Add(int64(len(js)))
	}
	return pos, true, false, false
}

// drainTo moves up to max queued jobs (everything when max <= 0) into
// dst without blocking, stopping at stamped-batch boundaries: an
// unstamped run never crosses into a mark, and a stamped batch drains
// whole (its atomic push guarantees it is fully present) with its
// stamp returned — max does not split it, because the batch must land
// in the WAL as exactly one record. done reports closed-and-empty —
// the applier's exit condition.
//
//schedlint:hotpath
func (q *arrq) drainTo(dst []job.Job, max int) (out []job.Job, st stamp, done bool) {
	q.mu.Lock()
	k := q.n
	if max > 0 && k > max {
		k = max
	}
	if q.mhead < len(q.marks) {
		m := &q.marks[q.mhead]
		if q.deq < m.start {
			// Unstamped run first: stop short of the mark.
			if gap := int(m.start - q.deq); k > gap {
				k = gap
			}
		} else {
			// The mark is next: drain exactly its batch, whole.
			k = m.count
			st.producer = m.producer
			st.seq = m.seq
			q.mhead++
			if q.mhead == len(q.marks) {
				q.marks = q.marks[:0]
				q.mhead = 0
			}
		}
	}
	for i := 0; i < k; i++ {
		p := q.head + i
		if p >= len(q.buf) {
			p -= len(q.buf)
		}
		dst = append(dst, q.buf[p])
	}
	if k > 0 {
		q.head += k
		if q.head >= len(q.buf) {
			q.head -= len(q.buf)
		}
		q.n -= k
		q.deq += uint64(k)
		q.qlen.Store(int64(q.n))
		select {
		case q.space <- struct{}{}:
		default:
		}
	}
	done = q.closed && q.n == 0
	q.mu.Unlock()
	if k > 0 && q.gauge != nil {
		q.gauge.Add(int64(-k))
	}
	return dst, st, done
}

// waitData parks the consumer until a push signals or the queue
// closes. Spurious wakeups are fine: the applier re-drains and parks
// again.
func (q *arrq) waitData() { <-q.data }

// close seals the queue: producers are refused from now on and the
// consumer is released once it drains what remains. Idempotent.
func (q *arrq) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.data)
	}
	q.mu.Unlock()
}

// length returns the queued-but-undrained count without locking.
func (q *arrq) length() int { return int(q.qlen.Load()) }

// enqueued returns how many jobs were ever admitted — the durable-ack
// position of the most recent one.
func (q *arrq) enqueued() uint64 {
	q.mu.Lock()
	e := q.enq
	q.mu.Unlock()
	return e
}
