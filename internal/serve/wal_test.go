package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/job"
	"repro/internal/wal"
	"repro/internal/workload"
)

// crash simulates a kill: appliers are stopped after draining what
// was queued (so the "crash point" is deterministic — everything
// admitted is logged), no close records are written, no tenant dirs
// removed, and the store is shut. What is on disk is exactly what a
// SIGKILL at an idle moment leaves.
func crash(t testing.TB, h *Host, st *wal.Store) {
	t.Helper()
	for _, id := range h.SessionIDs() {
		s, err := h.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.waitDurable(context.Background()); err != nil {
			t.Fatalf("waiting out %s before crash: %v", id, err)
		}
		s.closed.Do(func() { close(s.closeCh) })
		s.queue.close()
		<-s.done
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// recoverHost opens a fresh store over dir and rebuilds a host from it.
func recoverHost(t *testing.T, dir string, cfg Config) (*Host, *wal.Store, wal.RecoveryStats) {
	t.Helper()
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = st
	h := NewHost(cfg)
	stats, err := h.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return h, st, stats
}

// TestHostWALRecoverDifferential is the package-level crash
// differential: sessions fed through a WAL-backed host, killed, and
// recovered must match the uninterrupted in-memory run byte for byte
// — mid-stream snapshots and final verified Results alike.
func TestHostWALRecoverDifferential(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(Config{WAL: st})

	tenants := []struct {
		id   string
		spec engine.Spec
		in   *job.Instance
	}{
		{"pd-1", engine.Spec{Name: "pd", M: 1, Alpha: 2.2}, workload.Poisson(workload.Config{N: 60, M: 1, Alpha: 2.2, Seed: 7, ValueScale: 2})},
		{"oa-1", engine.Spec{Name: "oa", M: 1, Alpha: 2}, workload.Poisson(workload.Config{N: 40, M: 1, Alpha: 2, Seed: 8})},
	}
	for _, tn := range tenants {
		s, err := h.Create(tn.id, tn.spec)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, s, tn.in)
	}
	crash(t, h, st)

	h2, st2, stats := recoverHost(t, dir, Config{})
	defer st2.Close()
	if stats.Sessions != len(tenants) {
		t.Fatalf("recovered %d sessions, want %d (stats %+v)", stats.Sessions, len(tenants), stats)
	}
	for _, tn := range tenants {
		s2, err := h2.Get(tn.id)
		if err != nil {
			t.Fatalf("recovered session %s: %v", tn.id, err)
		}
		// Mid-stream state: byte-identical snapshot to a fresh run fed
		// the same arrivals.
		ref, err := engine.NewLive(tn.spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyBatch(tn.in.Jobs); err != nil {
			t.Fatal(err)
		}
		want := ref.Snapshot().AppendJSON(nil)
		got := s2.Snapshot().Snapshot.AppendJSON(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s recovered snapshot differs:\n got %s\nwant %s", tn.id, got, want)
		}
		// Final state: byte-identical verified Result to batch replay.
		res, err := h2.Close(tn.id)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := engine.ReplayAllSpec([]*job.Instance{tn.in}, tn.spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(maskTimes(wantRes[0]))
		bj, _ := json.Marshal(maskTimes(res))
		if !bytes.Equal(aj, bj) {
			t.Fatalf("%s recovered result differs from replay:\n%s\nvs\n%s", tn.id, aj, bj)
		}
	}
	// Closing recovered sessions retired their logs: a third boot finds
	// a clean slate.
	_, st3, stats3 := recoverHost(t, dir, Config{})
	defer st3.Close()
	if stats3.Sessions != 0 {
		t.Fatalf("after closing recovered sessions, next boot still finds %d", stats3.Sessions)
	}
}

// TestHostWALCheckpointRecovery drives a session across several
// checkpoint/truncate cycles, crashes, and requires the same
// byte-identical recovery — now from checkpoint + tail instead of a
// full log.
func TestHostWALCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(Config{WAL: st, CheckpointEvery: 40})
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2.5}
	in := workload.Poisson(workload.Config{N: 200, M: 1, Alpha: 2.5, Seed: 11, ValueScale: 3})

	s, err := h.Create("ckpt", spec)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, in)
	if err := s.waitDurable(context.Background()); err != nil {
		t.Fatal(err)
	}
	// waitDurable covers the append, not the apply: on a starved
	// scheduler (one core under -race) the applier may still be inside
	// its final ApplyBatch here, with maybeCheckpoint yet to run. A
	// checkpoint is inevitable — 200 arrivals since the last cut with
	// CheckpointEvery 40 — so poll for it instead of racing it.
	for deadline := time.Now().Add(10 * time.Second); st.Stats().Checkpoints == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint happened; the test would not cover compaction")
		}
		time.Sleep(time.Millisecond)
	}
	// Compaction really truncated: segment 1 must be gone.
	td, err := os.ReadDir(filepath.Join(dir, "tenants"))
	if err != nil || len(td) != 1 {
		t.Fatalf("tenant dirs: %v, %v", td, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tenants", td[0].Name(), "00000001.wal")); !os.IsNotExist(err) {
		t.Fatal("checkpoint did not truncate segment 1")
	}
	crash(t, h, st)

	h2, st2, stats := recoverHost(t, dir, Config{CheckpointEvery: 40})
	defer st2.Close()
	if stats.Sessions != 1 || stats.Arrivals != 200 {
		t.Fatalf("stats = %+v, want 1 session with all 200 arrivals", stats)
	}
	res, err := h2.Close("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := engine.ReplayAllSpec([]*job.Instance{in}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(maskTimes(wantRes[0]))
	bj, _ := json.Marshal(maskTimes(res))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("post-checkpoint recovery differs from replay:\n%s\nvs\n%s", aj, bj)
	}
}

// TestHostWALErrorStateRecovery pins that a refused arrival is part of
// the durable history: after a crash the recovered session is in the
// same error state, failing submits fast and surfacing the same
// refusal at close.
func TestHostWALErrorStateRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(Config{WAL: st, CheckpointEvery: 4})
	s, err := h.Create("poison", engine.Spec{Name: "oa", M: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	good := make([]job.Job, 6)
	for i := range good {
		good[i] = job.Job{ID: i + 1, Release: float64(i), Deadline: float64(i) + 20, Work: 1, Value: 4}
	}
	if _, err := s.SubmitBatch(ctx, good); err != nil {
		t.Fatal(err)
	}
	// Duplicate ID: refused by the engine, but logged all the same.
	dup := []job.Job{{ID: 3, Release: 10, Deadline: 30, Work: 1, Value: 4}}
	if _, err := s.SubmitBatch(ctx, dup); err != nil {
		t.Fatal(err) // queued fine; the refusal happens at apply
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.firstErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("refusal never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	crash(t, h, st)

	h2, st2, stats := recoverHost(t, dir, Config{CheckpointEvery: 4})
	defer st2.Close()
	if stats.Sessions != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	s2, err := h2.Get("poison")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.SubmitBatch(ctx, good[:1]); err == nil {
		t.Fatal("recovered error state does not fail submits fast")
	}
	if _, err := h2.Close("poison"); err == nil || !strings.Contains(err.Error(), "duplicate job ID 3") {
		t.Fatalf("recovered close error = %v, want the original duplicate-ID refusal", err)
	}
}

// TestHostWALCloseRetiresLog pins the clean-shutdown side: a closed
// session leaves nothing behind, and a drained host recovers to zero
// sessions.
func TestHostWALCloseRetiresLog(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(Config{WAL: st})
	spec := engine.Spec{Name: "pd", M: 1, Alpha: 2}
	in := workload.Poisson(workload.Config{N: 20, M: 1, Alpha: 2, Seed: 3, ValueScale: 2})
	s, err := h.Create("bye", spec)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, in)
	if _, err := h.Close("bye"); err != nil {
		t.Fatal(err)
	}
	if ents, err := os.ReadDir(filepath.Join(dir, "tenants")); err != nil || len(ents) != 0 {
		t.Fatalf("closed session left tenant dirs: %v, %v", ents, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, stats := recoverHost(t, dir, Config{})
	defer st2.Close()
	if stats.Sessions != 0 || stats.Removed != 0 {
		t.Fatalf("stats after clean close = %+v, want nothing to recover", stats)
	}
}

// TestHostWALDuplicateAfterRecovery: a recovered tenant occupies its
// id — Create must refuse it as a duplicate, WAL-backed or not.
func TestHostWALDuplicateAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(Config{WAL: st})
	spec := engine.Spec{Name: "oa", M: 1, Alpha: 2}
	s, err := h.Create("dup", spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitBatch(context.Background(), []job.Job{{ID: 1, Release: 0, Deadline: 9, Work: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	crash(t, h, st)
	h2, st2, _ := recoverHost(t, dir, Config{})
	defer st2.Close()
	if _, err := h2.Create("dup", spec); err == nil {
		t.Fatal("create over a recovered tenant must refuse")
	} else if got := fmt.Sprint(err); !strings.Contains(got, "already exists") {
		t.Fatalf("unexpected duplicate error: %v", err)
	}
}
